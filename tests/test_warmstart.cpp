// Warm-start subsystem: corpus format strictness, MaskNet shape/gradient
// contracts, MaskWarmStart serialization + versioning, failpoint
// degradation, the paper-faithful bit-identity guarantee with the flag
// off, and a tiny end-to-end harvest -> train -> seeded-ILT fixture (the
// "warmstart"-labeled CTest subset; everything runs at a 32-pixel grid so
// the suite fits the TSan budget).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/failpoint.h"
#include "core/flow_engine.h"
#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "layout/generator.h"
#include "mpl/baselines.h"
#include "obs/metrics.h"
#include "opc/ilt.h"
#include "warmstart/corpus.h"
#include "warmstart/harvest.h"
#include "warmstart/masknet.h"
#include "warmstart/train.h"
#include "warmstart/warm_start.h"

namespace ldmo::warmstart {
namespace {

/// 32-pixel quick model over the generator's 1024nm clip.
litho::LithoConfig tiny_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 32;
  cfg.pixel_nm = 32.0;
  return cfg;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "ldmo_warmstart_" + name;
}

ClipRecord make_record(int grid, float base) {
  const std::size_t n = static_cast<std::size_t>(grid) * grid;
  ClipRecord r;
  for (std::vector<float>* plane :
       {&r.target, &r.raster1, &r.raster2, &r.mask1, &r.mask2}) {
    plane->resize(n);
    for (std::size_t i = 0; i < n; ++i)
      (*plane)[i] = base + static_cast<float>(i % 7) * 0.125f;
    base += 0.5f;
  }
  return r;
}

TEST(Corpus, RoundTripsRecordsAcrossReopens) {
  const std::string path = temp_path("roundtrip.bin");
  std::remove(path.c_str());
  {
    CorpusWriter writer(path, 8);
    writer.append(make_record(8, 0.0f));
    writer.append(make_record(8, 1.0f));
    EXPECT_EQ(writer.appended(), 2u);
  }
  {
    // Append-only: reopening validates the header and extends the file.
    CorpusWriter writer(path, 8);
    writer.append(make_record(8, 2.0f));
  }
  EXPECT_EQ(corpus_record_count(path), 3u);
  const Corpus corpus = read_corpus(path);
  EXPECT_EQ(corpus.grid_size, 8);
  ASSERT_EQ(corpus.records.size(), 3u);
  for (int k = 0; k < 3; ++k) {
    const ClipRecord want = make_record(8, static_cast<float>(k));
    EXPECT_EQ(corpus.records[static_cast<std::size_t>(k)].target, want.target);
    EXPECT_EQ(corpus.records[static_cast<std::size_t>(k)].raster1,
              want.raster1);
    EXPECT_EQ(corpus.records[static_cast<std::size_t>(k)].raster2,
              want.raster2);
    EXPECT_EQ(corpus.records[static_cast<std::size_t>(k)].mask1, want.mask1);
    EXPECT_EQ(corpus.records[static_cast<std::size_t>(k)].mask2, want.mask2);
  }
}

TEST(Corpus, RejectsBadMagicGridMismatchTruncationAndBitRot) {
  const std::string path = temp_path("corrupt.bin");
  std::remove(path.c_str());
  {
    CorpusWriter writer(path, 8);
    writer.append(make_record(8, 0.0f));
    writer.append(make_record(8, 1.0f));
  }

  // Grid mismatch: both the reopening writer and a reader opened with the
  // right grid still work; a writer at the wrong grid is rejected.
  EXPECT_THROW(CorpusWriter(path, 16), Error);

  // Truncation: chop 4 bytes off the tail -> no longer a whole number of
  // records; both entry points must refuse.
  std::string blob;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    blob = buf.str();
  }
  const std::string truncated_path = temp_path("truncated.bin");
  std::ofstream(truncated_path, std::ios::binary)
      << blob.substr(0, blob.size() - 4);
  EXPECT_THROW(read_corpus(truncated_path), Error);
  EXPECT_THROW(corpus_record_count(truncated_path), Error);

  // Bit rot: flip one payload byte in the second record -> its FNV-1a
  // checksum mismatches and the whole read is rejected (a corrupt corpus
  // never trains a model halfway).
  std::string rotten = blob;
  rotten[rotten.size() - 64] ^= 0x01;
  const std::string rotten_path = temp_path("rotten.bin");
  std::ofstream(rotten_path, std::ios::binary) << rotten;
  EXPECT_THROW(read_corpus(rotten_path), Error);

  // Bad magic.
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  const std::string bad_magic_path = temp_path("badmagic.bin");
  std::ofstream(bad_magic_path, std::ios::binary) << bad_magic;
  EXPECT_THROW(read_corpus(bad_magic_path), Error);
  EXPECT_THROW(CorpusWriter(bad_magic_path, 8), Error);
}

TEST(MaskNetModel, ShapesAndEvalDeterminism) {
  MaskNetConfig cfg;
  cfg.grid_size = 16;
  cfg.base_width = 2;
  MaskNet net(cfg);
  Rng rng(7);
  const nn::Tensor input = nn::Tensor::randn({2, 3, 16, 16}, rng, 0.5f);
  nn::Tensor out1 = net.forward(input, /*training=*/false);
  ASSERT_EQ(out1.shape(), (std::vector<int>{2, 2, 16, 16}));
  nn::Tensor out2 = net.forward(input, /*training=*/false);
  EXPECT_EQ(out1, out2);
  EXPECT_THROW(net.forward(nn::Tensor::zeros({1, 3, 8, 8}), false), Error);
}

// Whole-model gradient check, covering the skip-concat routing and the
// cold-init residual's pass-through input gradient. Directional derivative
// of loss = sum(out * d) against central finite differences.
TEST(MaskNetModel, InputGradientMatchesFiniteDifference) {
  MaskNetConfig cfg;
  cfg.grid_size = 8;
  cfg.base_width = 2;
  MaskNet net(cfg);
  Rng rng(11);
  nn::Tensor input = nn::Tensor::randn({1, 3, 8, 8}, rng, 0.5f);
  const nn::Tensor direction = nn::Tensor::randn({1, 2, 8, 8}, rng, 1.0f);

  net.forward(input, /*training=*/true);
  const nn::Tensor grad_input = net.backward(direction);
  ASSERT_EQ(grad_input.shape(), input.shape());

  auto loss_at = [&](nn::Tensor probe) {
    const nn::Tensor out = net.forward(probe, /*training=*/false);
    double loss = 0.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      loss += static_cast<double>(out[i]) * direction[i];
    return loss;
  };
  const float eps = 1e-2f;
  // A handful of probe indices across all three input channels.
  for (std::size_t i : {std::size_t{3}, std::size_t{40}, std::size_t{77},
                        std::size_t{100}, std::size_t{150}, std::size_t{190}}) {
    nn::Tensor plus = input, minus = input;
    plus[i] += eps;
    minus[i] -= eps;
    const double fd = (loss_at(plus) - loss_at(minus)) / (2.0 * eps);
    EXPECT_NEAR(grad_input[i], fd, 2e-2 + 2e-2 * std::abs(fd))
        << "input index " << i;
  }
}

TEST(MaskWarmStartModel, SaveLoadPreservesWeightsAndVersion) {
  MaskNetConfig cfg;
  cfg.grid_size = 16;
  cfg.base_width = 2;
  MaskWarmStart a(cfg);
  EXPECT_EQ(a.name(), "masknet");
  EXPECT_EQ(a.grid_size(), 16);
  EXPECT_NE(a.version(), 0u);

  const std::string path = temp_path("model.weights");
  a.save(path);
  MaskWarmStart b(cfg);
  b.load(path);
  EXPECT_EQ(a.version(), b.version());

  // Perturbing a weight changes the fingerprint after refresh_version(),
  // so caches keyed on the version retire.
  const std::uint64_t before = b.version();
  b.net().parameters().front()->value[0] += 1.0f;
  b.refresh_version();
  EXPECT_NE(b.version(), before);

  // Strict layout validation: a different base width cannot load.
  MaskNetConfig wide = cfg;
  wide.base_width = 3;
  MaskWarmStart c(wide);
  EXPECT_THROW(c.load(path), Error);
}

TEST(MaskWarmStartModel, SeedFillsGridsDeterministically) {
  const layout::Layout layout = layout::LayoutGenerator().generate(321);
  const layout::Assignment assignment =
      mpl::SpacingUniformityDecomposer().decompose(layout);
  MaskNetConfig cfg;
  cfg.grid_size = 32;
  cfg.base_width = 2;
  MaskWarmStart warm(cfg);

  GridF p1, p2;
  warm.seed(layout, assignment, p1, p2);
  ASSERT_EQ(p1.height(), 32);
  ASSERT_EQ(p1.width(), 32);
  ASSERT_EQ(p2.height(), 32);
  ASSERT_EQ(p2.width(), 32);
  GridF q1, q2;
  warm.seed(layout, assignment, q1, q2);
  EXPECT_EQ(p1, q1);
  EXPECT_EQ(p2, q2);
  // An untrained net is dominated by the cold-init residual, so the two
  // seeds reflect the two (different) decomposition rasters.
  EXPECT_NE(p1, p2);
}

// The paper-faithful guarantee: with warm_start.enabled == false, an
// installed initializer must leave the flow bit-identical to a run that
// never saw one.
TEST(WarmStartFlow, DisabledFlagIsBitIdentical) {
  const litho::LithoSimulator simulator(tiny_litho());
  core::RawPrintPredictor predictor(simulator);
  core::LdmoConfig cfg;
  cfg.ilt.max_iterations = 12;
  const opc::IltEngine engine(simulator, cfg.ilt);
  const layout::Layout layout = layout::LayoutGenerator().generate(555);

  const core::LdmoResult plain =
      core::run_ldmo_flow(engine, predictor, cfg, layout);
  ASSERT_FALSE(plain.failed);

  MaskNetConfig net_cfg;
  net_cfg.grid_size = 32;
  net_cfg.base_width = 2;
  MaskWarmStart warm(net_cfg);
  ASSERT_FALSE(cfg.warm_start.enabled);
  const core::LdmoResult with_model =
      core::run_ldmo_flow(engine, predictor, cfg, layout, {}, &warm);
  ASSERT_FALSE(with_model.failed);
  EXPECT_FALSE(with_model.warm_started);

  ASSERT_EQ(plain.ilt.mask1.size(), with_model.ilt.mask1.size());
  EXPECT_EQ(std::memcmp(plain.ilt.mask1.data(), with_model.ilt.mask1.data(),
                        plain.ilt.mask1.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(plain.ilt.mask2.data(), with_model.ilt.mask2.data(),
                        plain.ilt.mask2.size() * sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(plain.ilt.response.data(),
                        with_model.ilt.response.data(),
                        plain.ilt.response.size() * sizeof(double)),
            0);
}

// A firing warmstart.predict failpoint degrades every attempt to the cold
// init: the run still succeeds, just unseeded.
TEST(WarmStartFlow, PredictFailpointDegradesToColdInit) {
  core::FlowEngineConfig cfg;
  cfg.litho = tiny_litho();
  cfg.flow.ilt.max_iterations = 12;
  cfg.flow.warm_start.enabled = true;
  cfg.flow.warm_start.max_iterations = 6;
  core::FlowEngine engine(cfg);
  MaskNetConfig net_cfg;
  net_cfg.grid_size = 32;
  net_cfg.base_width = 2;
  engine.set_warm_start(std::make_shared<MaskWarmStart>(net_cfg));
  const layout::Layout layout = layout::LayoutGenerator().generate(777);

  fail::arm("warmstart.predict", fail::every_nth(1));
  const long long errors_before =
      obs::counter("warmstart.predict_errors").value();
  const core::LdmoResult degraded = engine.run(layout);
  fail::disarm_all();
  ASSERT_FALSE(degraded.failed);
  EXPECT_FALSE(degraded.warm_started);
  EXPECT_GT(obs::counter("warmstart.predict_errors").value(), errors_before);

  // Disarmed, the same engine seeds again.
  const core::LdmoResult seeded = engine.run(layout);
  ASSERT_FALSE(seeded.failed);
  EXPECT_TRUE(seeded.warm_started);
  EXPECT_LE(seeded.ilt.iterations_run, 6);
}

// Tiny end-to-end fixture: harvest 8 clips, train a short-budget model,
// and check the learned seed beats the paper's cold init — both as mask
// MSE and as the final ILT score at an equal, halved iteration budget.
TEST(WarmStartEndToEnd, SeededIltBeatsColdInitAtEqualBudget) {
  core::FlowEngineConfig cfg;
  cfg.litho = tiny_litho();
  cfg.flow.ilt.max_iterations = 20;
  const std::string corpus_path = temp_path("e2e.corpus");
  std::remove(corpus_path.c_str());

  {
    core::FlowEngine harvest_engine(cfg);
    HarvestConfig hcfg;
    hcfg.clip_count = 8;
    hcfg.seed0 = 4000;
    const HarvestStats stats =
        harvest_corpus(harvest_engine, hcfg, corpus_path);
    ASSERT_GE(stats.harvested, 6);
  }
  const Corpus corpus = read_corpus(corpus_path);
  ASSERT_EQ(corpus.grid_size, 32);

  MaskNetConfig net_cfg;
  net_cfg.grid_size = 32;
  net_cfg.base_width = 4;
  auto warm = std::make_shared<MaskWarmStart>(net_cfg);
  WarmTrainConfig tcfg;
  tcfg.epochs = 12;
  tcfg.batch_size = 2;
  train_masknet(warm->net(), corpus, tcfg);
  warm->refresh_version();

  // The trained net must beat the cold +/- initial_p init on its own
  // training clips (everything is deterministic, so no flake margin).
  const double learned = evaluate_masknet(warm->net(), corpus, tcfg.theta_m);
  const double cold = cold_init_loss(corpus, tcfg.theta_m);
  EXPECT_LT(learned, cold);

  // Equal halved budget, held-out clip: the learned seed must land at an
  // equal-or-better final score than the cold init.
  core::FlowEngineConfig half = cfg;
  half.flow.ilt.max_iterations = 10;
  core::FlowEngine cold_engine(half);
  core::FlowEngineConfig warm_half = half;
  warm_half.flow.warm_start.enabled = true;
  warm_half.flow.warm_start.max_iterations = 10;
  core::FlowEngine warm_engine(warm_half);
  warm_engine.set_warm_start(warm);

  const layout::Layout holdout = layout::LayoutGenerator().generate(6100);
  const core::LdmoResult cold_run = cold_engine.run(holdout);
  const core::LdmoResult warm_run = warm_engine.run(holdout);
  ASSERT_FALSE(cold_run.failed);
  ASSERT_FALSE(warm_run.failed);
  EXPECT_TRUE(warm_run.warm_started);
  EXPECT_EQ(warm_engine.session().warm_started_runs, 1);
  EXPECT_LE(warm_run.ilt.report.score(), cold_run.ilt.report.score());
}

}  // namespace
}  // namespace ldmo::warmstart
