// Fault-injection tests: the failpoint registry itself (modes, env-style
// specs, exactly-once arming across threads), then the failure path of
// every injected site through the stack — flow-level stage attribution,
// predict-stage degradation, and the server's retry / kFailed / cache
// fault handling. The concurrency cases are the TSan payload of the
// "sanitize" label; everything here also carries "faults".
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "core/flow_engine.h"
#include "flywheel/log.h"
#include "flywheel/sink.h"
#include "flywheel/tuner.h"
#include "layout/generator.h"
#include "serve/server.h"

namespace ldmo {
namespace {

/// Every test disarms on entry and exit: failpoints are process-global,
/// and a leaked armed site would fail unrelated tests in this binary.
struct FailpointGuard {
  FailpointGuard() { fail::disarm_all(); }
  ~FailpointGuard() { fail::disarm_all(); }
};

litho::LithoConfig fast_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 32;
  cfg.pixel_nm = 32.0;  // 32 px x 32 nm = the generator's 1024nm clip
  return cfg;
}

core::FlowEngineConfig fast_engine_config() {
  core::FlowEngineConfig cfg;
  cfg.litho = fast_litho();
  return cfg;
}

serve::ServeConfig fast_serve_config() {
  serve::ServeConfig cfg;
  cfg.engine = fast_engine_config();
  cfg.dispatchers = 2;
  return cfg;
}

layout::Layout test_layout(std::uint64_t seed) {
  return layout::LayoutGenerator().generate(seed);
}

/// Constant-score predictor: ranks nothing, touches no lithography — lets
/// a litho failpoint target the ILT phase instead of raw-print scoring.
class ConstantPredictor : public core::PrintabilityPredictor {
 public:
  double score(const layout::Layout&, const layout::Assignment&) override {
    return 0.0;
  }
  std::string name() const override { return "constant"; }
};

/// Backend that fails every scoring call with a plain std::runtime_error —
/// the shape of a real bug in a model backend, not a tagged FlowException.
class ThrowingPredictor : public core::PrintabilityPredictor {
 public:
  double score(const layout::Layout&, const layout::Assignment&) override {
    throw std::runtime_error("backend exploded");
  }
  std::string name() const override { return "throwing"; }
};

// --- registry semantics ---

TEST(Failpoint, DisarmedSiteNeverFires) {
  FailpointGuard guard;
  EXPECT_EQ(fail::armed_count(), 0);
  for (int i = 0; i < 100; ++i)
    EXPECT_FALSE(fail::should_fail("test.nowhere"));
}

TEST(Failpoint, OnceFiresExactlyOnce) {
  FailpointGuard guard;
  fail::arm("test.once", fail::once());
  EXPECT_EQ(fail::armed_count(), 1);
  int fires = 0;
  for (int i = 0; i < 50; ++i)
    if (fail::should_fail("test.once")) ++fires;
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(fail::armed_count(), 0);  // self-disarmed after firing
}

TEST(Failpoint, OnceFiresExactlyOnceAcrossThreads) {
  FailpointGuard guard;
  fail::arm("test.once_mt", fail::once());
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i)
        if (fail::should_fail("test.once_mt")) fires.fetch_add(1);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(fires.load(), 1);
}

TEST(Failpoint, EveryNthFiresOnThePeriod) {
  FailpointGuard guard;
  fail::arm("test.nth", fail::every_nth(3));
  std::vector<bool> pattern;
  for (int i = 0; i < 9; ++i) pattern.push_back(fail::should_fail("test.nth"));
  const std::vector<bool> expected = {false, false, true, false, false,
                                      true,  false, false, true};
  EXPECT_EQ(pattern, expected);
  EXPECT_EQ(fail::fire_count("test.nth"), 3);
}

TEST(Failpoint, EveryFirstFiresAlways) {
  FailpointGuard guard;
  fail::arm("test.always", fail::every_nth(1));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fail::should_fail("test.always"));
}

TEST(Failpoint, ProbabilityExtremesAndDeterminism) {
  FailpointGuard guard;
  fail::arm("test.p1", fail::probability(1.0));
  fail::arm("test.p0", fail::probability(0.0));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(fail::should_fail("test.p1"));
    EXPECT_FALSE(fail::should_fail("test.p0"));
  }
  // Same seed, same site evaluation order => identical firing pattern.
  const auto sample = [](std::uint64_t seed) {
    fail::arm("test.seeded", fail::probability(0.3, seed));
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i)
      pattern.push_back(fail::should_fail("test.seeded"));
    return pattern;
  };
  EXPECT_EQ(sample(42), sample(42));
  EXPECT_NE(sample(42), sample(43));  // astronomically unlikely to collide
}

TEST(Failpoint, ArmFromSpecParsesAllModes) {
  FailpointGuard guard;
  fail::arm_from_spec("a=once,b=every:2,c=prob:0.5:7,d=off");
  const std::vector<std::string> armed = fail::armed_sites();
  EXPECT_EQ(armed, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(fail::should_fail("a"));
  EXPECT_FALSE(fail::should_fail("b"));
  EXPECT_TRUE(fail::should_fail("b"));
}

TEST(Failpoint, ArmFromSpecRejectsGarbage) {
  FailpointGuard guard;
  EXPECT_THROW(fail::arm_from_spec("noequals"), Error);
  EXPECT_THROW(fail::arm_from_spec("site=never"), Error);
  EXPECT_THROW(fail::arm_from_spec("=once"), Error);
  EXPECT_THROW(fail::arm_from_spec("site=every:0"), Error);
  EXPECT_THROW(fail::arm_from_spec("site=prob:1.5"), Error);
}

TEST(Failpoint, FireCountSurvivesDisarm) {
  FailpointGuard guard;
  fail::arm("test.count", fail::every_nth(1));
  (void)fail::should_fail("test.count");
  (void)fail::should_fail("test.count");
  fail::disarm("test.count");
  EXPECT_EQ(fail::fire_count("test.count"), 2);
  EXPECT_FALSE(fail::should_fail("test.count"));
}

TEST(Failpoint, MaybeFailThrowsTaggedFlowException) {
  FailpointGuard guard;
  fail::arm("test.throwing", fail::once());
  try {
    fail::maybe_fail("test.throwing", FlowStage::kLitho);
    FAIL() << "failpoint did not throw";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.stage(), FlowStage::kLitho);
    EXPECT_NE(std::string(e.what()).find("test.throwing"),
              std::string::npos);
  }
  // Disarmed again: the site is free.
  fail::maybe_fail("test.throwing", FlowStage::kLitho);
}

// --- flow-level failure paths, one per injected site ---

TEST(FlowFaults, GenerateFaultFailsRunWithDecomposeStage) {
  FailpointGuard guard;
  core::FlowEngine engine(fast_engine_config());
  const layout::Layout layout = test_layout(1);
  fail::arm("mpl.generate", fail::once());
  const core::LdmoResult failed = engine.run(layout);
  EXPECT_TRUE(failed.failed);
  EXPECT_FALSE(failed.degraded);
  EXPECT_EQ(failed.error.stage, FlowStage::kDecompose);
  EXPECT_EQ(engine.session().failed_runs, 1);
  EXPECT_EQ(engine.session().runs, 0);
  // The engine is unharmed: the next run succeeds and enters the history.
  const core::LdmoResult ok = engine.run(layout);
  EXPECT_FALSE(ok.failed);
  EXPECT_GT(ok.ilt.iterations_run, 0);
  EXPECT_EQ(engine.session().runs, 1);
}

TEST(FlowFaults, PredictFaultDegradesToGenerationOrder) {
  FailpointGuard guard;
  core::FlowEngine engine(fast_engine_config());
  const layout::Layout layout = test_layout(2);
  fail::arm("predictor.score", fail::once());
  const core::LdmoResult degraded = engine.run(layout);
  EXPECT_FALSE(degraded.failed);
  EXPECT_TRUE(degraded.degraded);
  // Degraded runs still deliver violation-checked masks.
  EXPECT_GT(degraded.ilt.iterations_run, 0);
  EXPECT_GT(degraded.candidates_tried, 0);
  EXPECT_EQ(engine.session().degraded_runs, 1);
  EXPECT_EQ(engine.session().runs, 1);
}

TEST(FlowFaults, PredictFaultFailsWhenDegradeDisabled) {
  FailpointGuard guard;
  core::FlowEngineConfig cfg = fast_engine_config();
  cfg.flow.degrade_on_predict_failure = false;
  core::FlowEngine engine(cfg);
  fail::arm("predictor.score", fail::once());
  const core::LdmoResult result = engine.run(test_layout(3));
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.error.stage, FlowStage::kPredict);
}

TEST(FlowFaults, IltFaultFailsWithIltStage) {
  FailpointGuard guard;
  core::FlowEngine engine(fast_engine_config());
  fail::arm("opc.ilt.optimize", fail::once());
  const core::LdmoResult result = engine.run(test_layout(4));
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.error.stage, FlowStage::kIlt);
}

TEST(FlowFaults, LithoFaultInsideIltKeepsLithoStage) {
  FailpointGuard guard;
  // A predictor that never touches the simulator, so the first exposure —
  // and the armed failpoint — happens inside a speculative ILT attempt.
  // The FlowException's kLitho tag must survive the TaskGroup rethrow and
  // the ilt-phase catch.
  core::FlowEngine engine(fast_engine_config(),
                          std::make_unique<ConstantPredictor>());
  fail::arm("litho.expose", fail::once());
  const core::LdmoResult result = engine.run(test_layout(5));
  EXPECT_TRUE(result.failed);
  EXPECT_EQ(result.error.stage, FlowStage::kLitho);
}

TEST(FlowFaults, RunManyKeepsFailedSlotAligned) {
  FailpointGuard guard;
  core::FlowEngine engine(fast_engine_config());
  const std::vector<layout::Layout> layouts = {test_layout(6), test_layout(7),
                                               test_layout(8)};
  // Fires on the second run only: mpl.generate evaluates once per run.
  fail::arm("mpl.generate", fail::every_nth(2));
  const std::vector<core::LdmoResult> results = engine.run_many(layouts);
  fail::disarm_all();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].failed);
  EXPECT_TRUE(results[1].failed);
  EXPECT_EQ(results[1].error.stage, FlowStage::kDecompose);
  EXPECT_FALSE(results[2].failed);
  EXPECT_EQ(engine.session().failed_runs, 1);
  EXPECT_EQ(engine.session().runs, 2);
}

// --- server-level failure handling ---

TEST(ServeFaults, ThrowingBackendFailsRequestsNotTheServer) {
  FailpointGuard guard;
  serve::ServeConfig cfg = fast_serve_config();
  cfg.engine.flow.degrade_on_predict_failure = false;
  serve::Server server(cfg, std::make_unique<ThrowingPredictor>());
  constexpr int kRequests = 6;
  std::vector<serve::RequestTicket> tickets;
  for (int i = 0; i < kRequests; ++i) {
    serve::ServeRequest request;
    request.layout = test_layout(10 + static_cast<std::uint64_t>(i));
    tickets.push_back(server.submit(std::move(request)));
  }
  // Every future resolves (no std::terminate, no broken promise), each as
  // a stage-attributed failure.
  for (serve::RequestTicket& ticket : tickets) {
    const serve::ServeResponse response = ticket.response.get();
    EXPECT_EQ(response.status, serve::ServeStatus::kFailed);
    EXPECT_EQ(response.error.stage, FlowStage::kPredict);
    EXPECT_FALSE(response.error.message.empty());
  }
  EXPECT_EQ(server.status_count(serve::ServeStatus::kFailed), kRequests);
  EXPECT_GE(server.error_count(FlowStage::kPredict), kRequests);
  // The dispatchers survived: the server still accepts and finishes work.
  serve::ServeRequest again;
  again.layout = test_layout(10);
  serve::RequestTicket ticket = server.submit(std::move(again));
  EXPECT_EQ(ticket.response.get().status, serve::ServeStatus::kFailed);
  server.shutdown();
}

TEST(ServeFaults, RetryAbsorbsTransientFault) {
  FailpointGuard guard;
  serve::ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;  // one engine: the retry reuses the same session
  cfg.retry.max_attempts = 2;
  cfg.retry.initial_backoff_ms = 1.0;
  serve::Server server(cfg);
  fail::arm("mpl.generate", fail::once());
  serve::ServeRequest request;
  request.layout = test_layout(20);
  const serve::ServeResponse response =
      server.submit(std::move(request)).response.get();
  EXPECT_EQ(response.status, serve::ServeStatus::kOk);
  EXPECT_EQ(response.attempts, 2);
  EXPECT_EQ(server.retry_count(), 1);
  EXPECT_EQ(server.error_count(FlowStage::kDecompose), 1);
  server.shutdown();
}

TEST(ServeFaults, PersistentFaultExhaustsRetriesToFailed) {
  FailpointGuard guard;
  serve::ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;
  cfg.retry.max_attempts = 2;
  cfg.retry.initial_backoff_ms = 1.0;
  serve::Server server(cfg);
  fail::arm("mpl.generate", fail::every_nth(1));
  serve::ServeRequest request;
  request.layout = test_layout(21);
  const serve::ServeResponse response =
      server.submit(std::move(request)).response.get();
  fail::disarm_all();
  EXPECT_EQ(response.status, serve::ServeStatus::kFailed);
  EXPECT_EQ(response.attempts, 2);
  EXPECT_EQ(response.error.stage, FlowStage::kDecompose);
  EXPECT_EQ(server.error_count(FlowStage::kDecompose), 2);
  server.shutdown();
}

TEST(ServeFaults, CacheFaultDegradesToMiss) {
  FailpointGuard guard;
  serve::ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;
  serve::Server server(cfg);
  fail::arm("serve.cache", fail::every_nth(1));
  const layout::Layout layout = test_layout(22);
  for (int i = 0; i < 2; ++i) {
    serve::ServeRequest request;
    request.layout = layout;
    const serve::ServeResponse response =
        server.submit(std::move(request)).response.get();
    // Never kCached: every get fails over to a recompute and every put is
    // dropped — the cache fault costs latency, not correctness.
    EXPECT_EQ(response.status, serve::ServeStatus::kOk);
  }
  fail::disarm_all();
  // Both requests hit the get fault and the put fault.
  EXPECT_EQ(server.error_count(FlowStage::kCache), 4);
  server.shutdown();
}

TEST(ServeFaults, DegradedResponsesAreNotCached) {
  FailpointGuard guard;
  serve::ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;
  serve::Server server(cfg);
  // Every scoring call fails: each request degrades, and because degraded
  // results stay out of the result cache, the second request is kOk (a
  // fresh degraded run), not kCached.
  fail::arm("predictor.score", fail::every_nth(1));
  const layout::Layout layout = test_layout(23);
  for (int i = 0; i < 2; ++i) {
    serve::ServeRequest request;
    request.layout = layout;
    const serve::ServeResponse response =
        server.submit(std::move(request)).response.get();
    EXPECT_EQ(response.status, serve::ServeStatus::kOk);
    EXPECT_TRUE(response.degraded);
  }
  fail::disarm_all();
  EXPECT_EQ(server.degraded_count(), 2);
  EXPECT_EQ(server.status_count(serve::ServeStatus::kCached), 0);
  // With the predictor healthy again the same layout computes, caches, and
  // only then serves from cache.
  for (int i = 0; i < 2; ++i) {
    serve::ServeRequest request;
    request.layout = layout;
    const serve::ServeResponse response =
        server.submit(std::move(request)).response.get();
    EXPECT_EQ(response.status, i == 0 ? serve::ServeStatus::kOk
                                      : serve::ServeStatus::kCached);
    EXPECT_FALSE(response.degraded);
  }
  server.shutdown();
}

TEST(ServeFaults, MixedFaultDrillCompletesEveryRequest) {
  FailpointGuard guard;
  serve::ServeConfig cfg = fast_serve_config();
  cfg.retry.max_attempts = 2;
  cfg.retry.initial_backoff_ms = 1.0;
  serve::Server server(cfg);
  fail::arm("mpl.generate", fail::probability(0.2, 1));
  fail::arm("predictor.score", fail::probability(0.2, 2));
  fail::arm("opc.ilt.optimize", fail::probability(0.2, 3));
  fail::arm("serve.cache", fail::probability(0.2, 4));
  constexpr int kRequests = 12;
  std::atomic<int> next{0};
  std::atomic<int> resolved{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c)
    clients.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= kRequests) return;
        serve::ServeRequest request;
        request.layout = test_layout(30 + static_cast<std::uint64_t>(i % 4));
        const serve::ServeResponse response =
            server.submit(std::move(request)).response.get();
        EXPECT_TRUE(response.status == serve::ServeStatus::kOk ||
                    response.status == serve::ServeStatus::kCached ||
                    response.status == serve::ServeStatus::kFailed)
            << serve::status_name(response.status);
        resolved.fetch_add(1);
      }
    });
  for (std::thread& t : clients) t.join();
  fail::disarm_all();
  EXPECT_EQ(resolved.load(), kRequests);
  long long terminal = 0;
  for (int s = 0; s < serve::kServeStatusCount; ++s)
    terminal += server.status_count(static_cast<serve::ServeStatus>(s));
  EXPECT_EQ(terminal, kRequests);
  server.shutdown();
}

// --- flywheel fault drills (ISSUE-10) ---------------------------------------

TEST(FlywheelFaults, AppendFaultDropsPairsButNeverFailsRequests) {
  FailpointGuard guard;
  const std::string path = "test_failpoint_flywheel_append.bin";
  std::remove(path.c_str());
  {
    auto sink = std::make_shared<flywheel::TrainingLogSink>(
        flywheel::SinkConfig{.path = path, .image_size = 32});
    serve::ServeConfig cfg = fast_serve_config();
    cfg.capture = sink;
    serve::Server server(cfg);

    // Every second append faults mid-cycle. Capture is telemetry: the
    // request path must stay green while the writer eats the failures.
    fail::arm("flywheel.log.append", fail::every_nth(2));
    for (std::uint64_t seed = 60; seed < 66; ++seed) {
      serve::ServeRequest request;
      request.layout = test_layout(seed);
      const serve::ServeResponse response =
          server.submit(std::move(request)).response.get();
      EXPECT_EQ(response.status, serve::ServeStatus::kOk);
      EXPECT_FALSE(response.degraded);
    }
    sink->drain();
    fail::disarm_all();

    EXPECT_EQ(server.status_count(serve::ServeStatus::kFailed), 0);
    EXPECT_EQ(sink->captured(), 3);  // the odd-numbered appends survived
    EXPECT_EQ(sink->dropped(), 3);   // the fired ones were counted, not fatal
  }
  // The failpoint fires BEFORE any bytes land, so the log holds exactly
  // the surviving records and reads back clean — no torn tail.
  const flywheel::TrainingLog log = flywheel::read_training_log(path);
  EXPECT_FALSE(log.torn_tail);
  EXPECT_EQ(log.pairs.size(), 3u);
  std::remove(path.c_str());
}

TEST(FlywheelFaults, SaveFaultAbortsPromotionAndIncumbentKeepsServing) {
  FailpointGuard guard;
  const std::string path = "test_failpoint_flywheel_save.bin";
  const std::string scratch = path + ".candidate.bin";
  std::remove(path.c_str());
  const int side = 16;
  {
    flywheel::TrainingLogWriter writer(path, side);
    for (int i = 0; i < 16; ++i) {
      flywheel::TrainingPair pair;
      pair.image.assign(static_cast<std::size_t>(side) * side,
                        static_cast<float>(i + 1) / 16.0f);
      pair.score = static_cast<double>(i + 1) / 16.0;
      writer.append(pair);
    }
  }

  flywheel::TunerConfig tcfg;
  tcfg.log_path = path;
  tcfg.network.input_size = side;
  tcfg.network.width_multiplier = 0.125;
  tcfg.trainer.epochs = 4;
  tcfg.trainer.batch_size = 4;
  tcfg.min_new_records = 8;
  tcfg.holdout_every = 4;
  int promotions_seen = 0;
  flywheel::FineTuner tuner(
      tcfg, [&](std::uint64_t, const std::vector<std::uint8_t>&) {
        ++promotions_seen;
      });

  // Weight serialization faults mid-promotion: the round aborts, the
  // incumbent (here: none yet — version 0) keeps serving, and nothing
  // reaches the deployment edge.
  fail::arm("nn.save", fail::once());
  const flywheel::TuneRound faulted = tuner.run_once();
  EXPECT_TRUE(faulted.attempted);
  EXPECT_FALSE(faulted.promoted);
  EXPECT_NE(faulted.detail.find("promotion aborted"), std::string::npos);
  EXPECT_EQ(promotions_seen, 0);
  EXPECT_EQ(tuner.version(), 0u);
  fail::disarm_all();

  // Fresh data after the fault clears: the next round promotes normally —
  // the flywheel recovered on its own.
  {
    flywheel::TrainingLogWriter writer(path, side);
    for (int i = 0; i < 8; ++i) {
      flywheel::TrainingPair pair;
      pair.image.assign(static_cast<std::size_t>(side) * side,
                        1.0f - static_cast<float>(i + 1) / 16.0f);
      pair.score = 1.0 - static_cast<double>(i + 1) / 16.0;
      writer.append(pair);
    }
  }
  const flywheel::TuneRound recovered = tuner.run_once();
  EXPECT_TRUE(recovered.attempted);
  EXPECT_TRUE(recovered.promoted);
  EXPECT_EQ(promotions_seen, 1);
  EXPECT_EQ(tuner.version(), 1u);
  std::remove(path.c_str());
  std::remove(scratch.c_str());
}

}  // namespace
}  // namespace ldmo
