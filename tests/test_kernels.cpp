// Tests for the runtime-dispatched SIMD kernel layer: bit-equality sweeps
// of every exact-class op against the generic reference on each backend the
// host can run, tolerance sweeps for the approximate-class reductions,
// pinned goldens for GEMM/FFT/resist, dispatch and --backend flag
// semantics, and the SOCS kernel-truncation error bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "fft/fft.h"
#include "kernels/kernels.h"
#include "litho/aerial.h"
#include "litho/config.h"
#include "litho/kernels.h"
#include "litho/resist.h"

namespace ldmo::kernels {
namespace {

// Every backend this binary can actually execute here (generic always).
std::vector<const KernelTable*> usable_tables() {
  std::vector<const KernelTable*> out;
  for (Backend b : {Backend::kGeneric, Backend::kAvx2, Backend::kAvx512,
                    Backend::kNeon})
    if (supported(b)) out.push_back(detail::table_for(b));
  return out;
}

// Restores the process-wide selection after tests that switch backends.
class BackendGuard {
 public:
  BackendGuard() : saved_(&table()) {}
  ~BackendGuard() { select(saved_->backend); }

 private:
  const KernelTable* saved_;
};

std::vector<double> random_f64(Rng& rng, std::size_t n, double lo = -2.0,
                               double hi = 2.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(lo, hi);
  return v;
}

std::vector<float> random_f32(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-1.0, 1.0));
  return v;
}

std::vector<Complex> random_c128(Rng& rng, std::size_t n) {
  std::vector<Complex> v(n);
  for (Complex& z : v) z = Complex(rng.uniform(-2.0, 2.0),
                                   rng.uniform(-2.0, 2.0));
  return v;
}

bool bits_equal(const double* a, const double* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(double)) == 0;
}

bool bits_equal(const Complex* a, const Complex* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(Complex)) == 0;
}

bool bits_equal(const float* a, const float* b, std::size_t n) {
  return std::memcmp(a, b, n * sizeof(float)) == 0;
}

// ---------------------------------------------------------------------------
// Dispatch semantics.

TEST(KernelDispatchTest, GenericAlwaysUsable) {
  EXPECT_TRUE(compiled(Backend::kGeneric));
  EXPECT_TRUE(supported(Backend::kGeneric));
  const KernelTable* generic = detail::table_for(Backend::kGeneric);
  ASSERT_NE(generic, nullptr);
  EXPECT_STREQ(generic->name, "generic");
  EXPECT_TRUE(supported(detect_best()));
  // The active table is one of the usable ones.
  const KernelTable& active_table = table();
  EXPECT_TRUE(supported(active_table.backend));
}

TEST(KernelDispatchTest, ParseBackendNames) {
  Backend b = Backend::kGeneric;
  bool is_auto = false;
  EXPECT_TRUE(parse_backend("avx2", b, is_auto));
  EXPECT_EQ(b, Backend::kAvx2);
  EXPECT_FALSE(is_auto);
  EXPECT_TRUE(parse_backend("auto", b, is_auto));
  EXPECT_TRUE(is_auto);
  EXPECT_FALSE(parse_backend("sse9", b, is_auto));
  EXPECT_EQ(std::string(to_string(Backend::kAvx512)), "avx512");
}

TEST(KernelDispatchTest, UnsupportedSelectionThrows) {
  BackendGuard guard;
  EXPECT_THROW(select_by_name("bogus"), Error);
  for (Backend b : {Backend::kAvx2, Backend::kAvx512, Backend::kNeon}) {
    if (!supported(b)) EXPECT_THROW(select(b), Error);
  }
  // Every advertised-supported backend selects cleanly.
  for (const KernelTable* t : usable_tables()) {
    select_by_name(t->name);
    EXPECT_EQ(&table(), t);
  }
}

TEST(KernelDispatchTest, ApplyBackendFlagCompactsArgv) {
  BackendGuard guard;
  char prog[] = "prog", flag[] = "--backend", name[] = "generic",
       file[] = "clip.layout";
  char* argv[] = {prog, flag, name, file, nullptr};
  int argc = 4;
  const char* selected = apply_backend_flag(argc, argv);
  EXPECT_STREQ(selected, "generic");
  EXPECT_EQ(active(), Backend::kGeneric);
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "clip.layout");

  char eq_flag[] = "--backend=generic";
  char* argv2[] = {prog, eq_flag, file, nullptr};
  int argc2 = 3;
  apply_backend_flag(argc2, argv2);
  ASSERT_EQ(argc2, 2);
  EXPECT_STREQ(argv2[1], "clip.layout");

  char bad[] = "--backend=sse9";
  char* argv3[] = {prog, bad, nullptr};
  int argc3 = 2;
  EXPECT_THROW(apply_backend_flag(argc3, argv3), Error);
}

TEST(KernelDispatchTest, EnvOverrideHonored) {
  BackendGuard guard;
  setenv("LDMO_BACKEND", "generic", 1);
  detail::reset_for_tests();
  EXPECT_EQ(table().backend, Backend::kGeneric);
  setenv("LDMO_BACKEND", "not-a-backend", 1);
  detail::reset_for_tests();
  EXPECT_THROW(table(), Error);
  unsetenv("LDMO_BACKEND");
  detail::reset_for_tests();
  EXPECT_EQ(table().backend, detect_best());
}

// One-time init must be race-free: many threads hitting the unresolved
// table concurrently all observe the same table (TSan payload).
TEST(KernelDispatchTest, ConcurrentFirstUseResolvesOnce) {
  BackendGuard guard;
  detail::reset_for_tests();
  constexpr int kThreads = 8;
  std::vector<const KernelTable*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([i, &seen] { seen[static_cast<std::size_t>(i)] =
                                          &table(); });
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) EXPECT_EQ(seen[0], seen[i]);
  EXPECT_NE(seen[0], nullptr);
}

TEST(KernelDispatchTest, CpuFeaturesNonEmpty) {
  EXPECT_FALSE(cpu_features().empty());
  EXPECT_NE(supported_names().find("generic"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exact-class ops: bit-identical across every usable backend.

TEST(KernelExactOpsTest, ElementwiseF64BitIdentical) {
  Rng rng(7);
  constexpr std::size_t n = 1037;  // odd: exercises every tail path
  const std::vector<double> a = random_f64(rng, n);
  const std::vector<double> b = random_f64(rng, n, -0.2, 1.2);
  const KernelTable& g = *detail::table_for(Backend::kGeneric);

  std::vector<double> ref(n), out(n);
  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);

    g.resist_deriv_f64(a.data(), ref.data(), n, 120.0);
    t->resist_deriv_f64(a.data(), out.data(), n, 120.0);
    EXPECT_TRUE(bits_equal(ref.data(), out.data(), n));

    g.add_clamp1_f64(a.data(), b.data(), ref.data(), n);
    t->add_clamp1_f64(a.data(), b.data(), out.data(), n);
    EXPECT_TRUE(bits_equal(ref.data(), out.data(), n));

    ref = a; out = a;
    g.add_f64(b.data(), ref.data(), n);
    t->add_f64(b.data(), out.data(), n);
    EXPECT_TRUE(bits_equal(ref.data(), out.data(), n));

    g.clamp_max_f64(ref.data(), n, 1.0);
    t->clamp_max_f64(out.data(), n, 1.0);
    EXPECT_TRUE(bits_equal(ref.data(), out.data(), n));

    g.gate_lt1_f64(a.data(), b.data(), ref.data(), n);
    t->gate_lt1_f64(a.data(), b.data(), out.data(), n);
    EXPECT_TRUE(bits_equal(ref.data(), out.data(), n));

    EXPECT_EQ(g.max_abs_f64(a.data(), n), t->max_abs_f64(a.data(), n));

    ref = a; out = a;
    g.descend_f64(ref.data(), b.data(), 0.37, n);
    t->descend_f64(out.data(), b.data(), 0.37, n);
    EXPECT_TRUE(bits_equal(ref.data(), out.data(), n));

    ref = a; out = a;
    g.sigmoid_chain_f64(ref.data(), b.data(), 4.0, n);
    t->sigmoid_chain_f64(out.data(), b.data(), 4.0, n);
    EXPECT_TRUE(bits_equal(ref.data(), out.data(), n));
  }
}

TEST(KernelExactOpsTest, ComplexOpsBitIdentical) {
  Rng rng(11);
  constexpr std::size_t n = 517;
  const std::vector<Complex> a = random_c128(rng, n);
  const std::vector<Complex> b = random_c128(rng, n);
  const std::vector<double> r = random_f64(rng, n);
  const KernelTable& g = *detail::table_for(Backend::kGeneric);

  std::vector<Complex> cref(n), cout_(n);
  std::vector<double> dref(n), dout(n);
  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);

    cref = a; cout_ = a;
    g.cmul_f64(cref.data(), b.data(), n);
    t->cmul_f64(cout_.data(), b.data(), n);
    EXPECT_TRUE(bits_equal(cref.data(), cout_.data(), n));

    g.cmul_to_f64(a.data(), b.data(), cref.data(), n);
    t->cmul_to_f64(a.data(), b.data(), cout_.data(), n);
    EXPECT_TRUE(bits_equal(cref.data(), cout_.data(), n));

    cref = b; cout_ = b;
    g.cmul_conj_accum_f64(cref.data(), a.data(), b.data(), 0.83, n);
    t->cmul_conj_accum_f64(cout_.data(), a.data(), b.data(), 0.83, n);
    EXPECT_TRUE(bits_equal(cref.data(), cout_.data(), n));

    dref = r; dout = r;
    g.norm_weighted_accum_f64(dref.data(), a.data(), 0.29, n);
    t->norm_weighted_accum_f64(dout.data(), a.data(), 0.29, n);
    EXPECT_TRUE(bits_equal(dref.data(), dout.data(), n));

    g.real_mul_f64(r.data(), a.data(), cref.data(), n);
    t->real_mul_f64(r.data(), a.data(), cout_.data(), n);
    EXPECT_TRUE(bits_equal(cref.data(), cout_.data(), n));

    g.scaled_real_f64(a.data(), 2.0, dref.data(), n);
    t->scaled_real_f64(a.data(), 2.0, dout.data(), n);
    EXPECT_TRUE(bits_equal(dref.data(), dout.data(), n));

    cref = a; cout_ = a;
    g.scale_complex_f64(cref.data(), 1.0 / 64.0, n);
    t->scale_complex_f64(cout_.data(), 1.0 / 64.0, n);
    EXPECT_TRUE(bits_equal(cref.data(), cout_.data(), n));
  }
}

TEST(KernelExactOpsTest, FftPassBitIdentical) {
  Rng rng(13);
  constexpr int size = 64;
  const std::vector<Complex> data = random_c128(rng, size);
  const KernelTable& g = *detail::table_for(Backend::kGeneric);
  for (int len = 2; len <= size; len <<= 1) {
    const int half = len / 2;
    std::vector<Complex> twiddle(static_cast<std::size_t>(half));
    for (int k = 0; k < half; ++k) {
      const double angle = -2.0 * M_PI * k / len;
      twiddle[static_cast<std::size_t>(k)] =
          Complex(std::cos(angle), std::sin(angle));
    }
    std::vector<Complex> ref = data;
    g.fft_pass_f64(ref.data(), twiddle.data(), size, len);
    for (const KernelTable* t : usable_tables()) {
      SCOPED_TRACE(std::string(t->name) + " len=" + std::to_string(len));
      std::vector<Complex> out = data;
      t->fft_pass_f64(out.data(), twiddle.data(), size, len);
      // Values must match exactly; the half==1 direct add/sub stage may
      // differ from generic only in the sign of zero imaginary parts.
      for (int i = 0; i < size; ++i) {
        EXPECT_EQ(ref[static_cast<std::size_t>(i)].real(),
                  out[static_cast<std::size_t>(i)].real());
        EXPECT_EQ(ref[static_cast<std::size_t>(i)].imag(),
                  out[static_cast<std::size_t>(i)].imag());
      }
    }
  }
}

TEST(KernelExactOpsTest, GemmAndAxpyBitIdentical) {
  Rng rng(17);
  constexpr int m = 37, k = 29, n = 41;
  const std::vector<float> a = random_f32(rng, static_cast<std::size_t>(m * k));
  const std::vector<float> b = random_f32(rng, static_cast<std::size_t>(k * n));
  const KernelTable& g = *detail::table_for(Backend::kGeneric);

  std::vector<float> cref(static_cast<std::size_t>(m * n), 0.0f);
  g.gemm_rows_f32(a.data(), b.data(), cref.data(), 0, m, k, n);
  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    // Split the row range to exercise partial i ranges too.
    t->gemm_rows_f32(a.data(), b.data(), c.data(), 0, 13, k, n);
    t->gemm_rows_f32(a.data(), b.data(), c.data(), 13, m, k, n);
    EXPECT_TRUE(bits_equal(cref.data(), c.data(), cref.size()));

    std::vector<float> yref(b.begin(), b.begin() + 123);
    std::vector<float> y = yref;
    g.axpy_f32(0.71f, a.data(), yref.data(), 123);
    t->axpy_f32(0.71f, a.data(), y.data(), 123);
    EXPECT_TRUE(bits_equal(yref.data(), y.data(), y.size()));
  }
}

TEST(KernelExactOpsTest, BilinearLineBitIdentical) {
  Rng rng(19);
  constexpr int h = 16, w = 16;
  const std::vector<double> grid = random_f64(rng, h * w, 0.0, 1.0);
  const KernelTable& g = *detail::table_for(Backend::kGeneric);
  // The line starts out of bounds and walks across the grid, exercising
  // both clamped and interior samples.
  constexpr int count = 61;
  std::vector<double> ref(count), out(count);
  g.bilinear_line_f64(grid.data(), h, w, -2.5, 3.1, 0.37, 0.11, count,
                      ref.data());
  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);
    t->bilinear_line_f64(grid.data(), h, w, -2.5, 3.1, 0.37, 0.11, count,
                         out.data());
    EXPECT_TRUE(bits_equal(ref.data(), out.data(), count));
  }
}

// ---------------------------------------------------------------------------
// Approximate-class ops: per-backend deterministic, tolerance vs generic.

TEST(KernelApproxOpsTest, SigmoidToleranceAndDeterminism) {
  Rng rng(23);
  constexpr std::size_t n = 2003;
  std::vector<double> x = random_f64(rng, n, -800.0, 800.0);
  x[0] = 0.0; x[1] = -0.0; x[2] = -708.5; x[3] = 708.5;  // edge cases
  const KernelTable& g = *detail::table_for(Backend::kGeneric);
  std::vector<double> ref(n), out(n), out2(n);
  g.sigmoid_affine_f64(x.data(), ref.data(), n, 0.05, 1.3);
  for (std::size_t i = 0; i < n; ++i) {
    // The generic backend is the libm two-branch sigmoid, bit for bit.
    const double z = 0.05 * (x[i] - 1.3);
    const double expect = z >= 0.0 ? 1.0 / (1.0 + std::exp(-z))
                                   : std::exp(z) / (1.0 + std::exp(z));
    EXPECT_EQ(ref[i], expect);
  }
  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);
    t->sigmoid_affine_f64(x.data(), out.data(), n, 0.05, 1.3);
    t->sigmoid_affine_f64(x.data(), out2.data(), n, 0.05, 1.3);
    EXPECT_TRUE(bits_equal(out.data(), out2.data(), n));  // deterministic
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i], ref[i], 1e-12) << "i=" << i << " x=" << x[i];
      EXPECT_GE(out[i], 0.0);
      EXPECT_LE(out[i], 1.0);
    }
  }
}

TEST(KernelApproxOpsTest, CisToleranceAndDeterminism) {
  Rng rng(41);
  constexpr std::size_t n = 1021;  // odd: exercises every tail path
  std::vector<double> x = random_f64(rng, n, -2000.0, 2000.0);
  // Edge cases: signed zero, quadrant boundaries and interiors, large
  // arguments that stress the three-part pi/2 reduction.
  x[0] = 0.0;
  x[1] = -0.0;
  x[2] = M_PI_2;
  x[3] = -M_PI_2;
  x[4] = M_PI;
  x[5] = -M_PI;
  x[6] = 2.0 * M_PI;
  x[7] = 0.75 * M_PI;
  x[8] = -0.75 * M_PI;
  x[9] = 1e5;
  x[10] = -1e5;
  const KernelTable& g = *detail::table_for(Backend::kGeneric);
  std::vector<Complex> ref(n), out(n), out2(n);
  g.cis_f64(x.data(), ref.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    // The generic backend is libm cos/sin, bit for bit.
    EXPECT_EQ(ref[i].real(), std::cos(x[i]));
    EXPECT_EQ(ref[i].imag(), std::sin(x[i]));
  }
  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);
    t->cis_f64(x.data(), out.data(), n);
    t->cis_f64(x.data(), out2.data(), n);
    EXPECT_TRUE(bits_equal(out.data(), out2.data(), n));  // deterministic
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[i].real(), ref[i].real(), 1e-12)
          << "i=" << i << " x=" << x[i];
      EXPECT_NEAR(out[i].imag(), ref[i].imag(), 1e-12)
          << "i=" << i << " x=" << x[i];
      EXPECT_NEAR(std::abs(out[i]), 1.0, 1e-12);  // unit phasor
    }
  }
  // cis(0) is exactly 1 + 0i on every backend.
  for (const KernelTable* t : usable_tables()) {
    std::vector<double> zeros(8, 0.0);
    std::vector<Complex> z(8);
    t->cis_f64(zeros.data(), z.data(), 8);
    for (const Complex& v : z) {
      EXPECT_EQ(v.real(), 1.0);
      EXPECT_EQ(v.imag(), 0.0);
    }
  }
}

TEST(KernelApproxOpsTest, ReductionTolerances) {
  Rng rng(29);
  constexpr std::size_t n = 1531;
  const std::vector<double> a = random_f64(rng, n);
  const std::vector<double> b = random_f64(rng, n);
  const std::vector<double> w = random_f64(rng, n, 0.5, 2.0);
  const std::vector<float> xf = random_f32(rng, n);
  const std::vector<float> yf = random_f32(rng, n);
  const KernelTable& g = *detail::table_for(Backend::kGeneric);

  const double sq_ref = g.sq_diff_sum_f64(a.data(), b.data(), n);
  std::vector<double> dldt_ref(n), dldt_u_ref(n), dldt(n);
  const double loss_ref =
      g.loss_grad_f64(a.data(), b.data(), w.data(), dldt_ref.data(), n);
  const double lu_ref =
      g.loss_grad_f64(a.data(), b.data(), nullptr, dldt_u_ref.data(), n);
  const float dot_ref = g.dot_f32(xf.data(), yf.data(), static_cast<int>(n));

  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);
    EXPECT_NEAR(t->sq_diff_sum_f64(a.data(), b.data(), n), sq_ref,
                1e-10 * sq_ref);
    const double loss =
        t->loss_grad_f64(a.data(), b.data(), w.data(), dldt.data(), n);
    EXPECT_NEAR(loss, loss_ref, 1e-10 * loss_ref);
    // The written gradient is elementwise: exact across backends.
    EXPECT_TRUE(bits_equal(dldt_ref.data(), dldt.data(), n));
    // Unweighted path (weights == nullptr).
    const double lu =
        t->loss_grad_f64(a.data(), b.data(), nullptr, dldt.data(), n);
    EXPECT_NEAR(lu, lu_ref, 1e-10 * lu_ref);
    EXPECT_TRUE(bits_equal(dldt_u_ref.data(), dldt.data(), n));
    EXPECT_NEAR(t->dot_f32(xf.data(), yf.data(), static_cast<int>(n)),
                dot_ref, 1e-3);
  }
}

// ---------------------------------------------------------------------------
// Pinned goldens, swept per backend through the real entry points.

TEST(KernelGoldenTest, GemmIntegerGolden) {
  // Integer-valued floats multiply exactly, so every backend must hit the
  // analytic product dead on.
  constexpr int m = 5, k = 7, n = 6;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  for (int i = 0; i < m * k; ++i)
    a[static_cast<std::size_t>(i)] = static_cast<float>((i % 11) - 5);
  for (int i = 0; i < k * n; ++i)
    b[static_cast<std::size_t>(i)] = static_cast<float>((i % 7) - 3);
  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    t->gemm_rows_f32(a.data(), b.data(), c.data(), 0, m, k, n);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        double expect = 0.0;
        for (int p = 0; p < k; ++p)
          expect += static_cast<double>(a[static_cast<std::size_t>(i * k + p)]) *
                    static_cast<double>(b[static_cast<std::size_t>(p * n + j)]);
        EXPECT_EQ(static_cast<double>(c[static_cast<std::size_t>(i * n + j)]),
                  expect);
      }
    }
  }
}

TEST(KernelGoldenTest, FftImpulseGoldenPerBackend) {
  BackendGuard guard;
  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);
    select(t->backend);
    fft::FftPlan plan(8);
    std::vector<Complex> data(8, Complex(0.0, 0.0));
    data[0] = Complex(1.0, 0.0);
    plan.forward(data.data());
    for (int i = 0; i < 8; ++i) {
      EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(i)].real(), 1.0);
      EXPECT_DOUBLE_EQ(data[static_cast<std::size_t>(i)].imag(), 0.0);
    }
    // Constant input: all energy in the DC bin.
    std::vector<Complex> ones(8, Complex(1.0, 0.0));
    plan.forward(ones.data());
    EXPECT_NEAR(ones[0].real(), 8.0, 1e-12);
    for (int i = 1; i < 8; ++i)
      EXPECT_NEAR(std::abs(ones[static_cast<std::size_t>(i)]), 0.0, 1e-12);
    // Round trip restores the impulse.
    plan.inverse(data.data());
    EXPECT_NEAR(data[0].real(), 1.0, 1e-15);
    for (int i = 1; i < 8; ++i)
      EXPECT_NEAR(std::abs(data[static_cast<std::size_t>(i)]), 0.0, 1e-15);
  }
}

TEST(KernelGoldenTest, ResistGoldenPerBackend) {
  BackendGuard guard;
  litho::LithoConfig cfg;
  GridF intensity(2, 3);
  const double values[] = {0.0, 0.039, 0.078, 0.02, 0.35, 1.0};
  for (std::size_t i = 0; i < 6; ++i) intensity[i] = values[i];
  for (const KernelTable* t : usable_tables()) {
    SCOPED_TRACE(t->name);
    select(t->backend);
    const GridF r = litho::resist_response(intensity, cfg);
    for (std::size_t i = 0; i < 6; ++i)
      EXPECT_NEAR(r[i], litho::sigmoid(cfg.theta_z *
                                       (values[i] - cfg.intensity_threshold)),
                  1e-12);
    EXPECT_NEAR(r[1], 0.5, 1e-12);  // exactly at threshold
  }
}

// ---------------------------------------------------------------------------
// Real-input 2-D FFT.

TEST(RealFftTest, ForwardRealMatchesComplexForward) {
  Rng rng(31);
  constexpr int n = 32;
  GridF real(n, n);
  for (std::size_t i = 0; i < real.size(); ++i) real[i] = rng.uniform();
  fft::Fft2DPlan plan(n, n);
  fft::GridC full = fft::to_complex(real);
  plan.forward(full);
  fft::GridC half;
  plan.forward_real(real, half);
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_NEAR(std::abs(full[i] - half[i]), 0.0, 1e-9) << "i=" << i;
}

TEST(RealFftTest, DegenerateSingleRow) {
  GridF real(1, 8);
  for (std::size_t i = 0; i < 8; ++i) real[i] = static_cast<double>(i);
  fft::Fft2DPlan plan(1, 8);
  fft::GridC full = fft::to_complex(real);
  plan.forward(full);
  fft::GridC half;
  plan.forward_real(real, half);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(std::abs(full[i] - half[i]), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// SOCS kernel truncation: the configured knob and its provable bound.

litho::LithoConfig socs_config() {
  litho::LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  cfg.kernel_count = 6;
  return cfg;
}

TEST(SocsTruncationTest, KeepEnergyDropsTrailingKernels) {
  const litho::SocsKernels full = litho::build_socs_kernels(socs_config());
  ASSERT_GE(full.kernel_count(), 3);
  EXPECT_EQ(full.dropped_kernel_count, 0);
  EXPECT_EQ(full.truncation_error_bound, 0.0);
  EXPECT_EQ(full.kernel_l1_norms.size(), full.weights.size());

  litho::LithoConfig truncated_cfg = socs_config();
  truncated_cfg.kernel_keep_energy = 0.5;
  EXPECT_NE(truncated_cfg.kernel_cache_key(),
            socs_config().kernel_cache_key());
  const litho::SocsKernels trunc = litho::build_socs_kernels(truncated_cfg);
  EXPECT_LT(trunc.kernel_count(), full.kernel_count());
  EXPECT_GE(trunc.dropped_kernel_count, 1);
  EXPECT_GT(trunc.truncation_error_bound, 0.0);
  EXPECT_LE(trunc.captured_energy, full.captured_energy);

  litho::LithoConfig bad = socs_config();
  bad.kernel_keep_energy = 0.0;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(SocsTruncationTest, IntensityErrorWithinProvableBound) {
  // Drop the two weakest kernels of the calibrated model by hand and check
  // the pointwise intensity deviation against sum_dropped w_k ||h_k||_1^2
  // on random binary masks — the bound the knob reports.
  const litho::SocsKernels full = litho::build_socs_kernels(socs_config());
  ASSERT_GE(full.kernel_count(), 3);
  litho::SocsKernels trunc = full;
  const std::size_t keep = full.weights.size() - 2;
  double bound = 0.0;
  for (std::size_t k = keep; k < full.weights.size(); ++k)
    bound += full.weights[k] * full.kernel_l1_norms[k] *
             full.kernel_l1_norms[k];
  trunc.kernel_ffts.resize(keep);
  trunc.weights.resize(keep);
  trunc.kernel_l1_norms.resize(keep);
  ASSERT_GT(bound, 0.0);

  const litho::AerialSimulator full_sim(full);
  const litho::AerialSimulator trunc_sim(trunc);
  Rng rng(37);
  const int n = socs_config().grid_size;
  for (int trial = 0; trial < 3; ++trial) {
    GridF mask(n, n);
    for (std::size_t i = 0; i < mask.size(); ++i)
      mask[i] = rng.uniform() < 0.5 ? 1.0 : 0.0;
    const GridF i_full = full_sim.intensity(mask);
    const GridF i_trunc = trunc_sim.intensity(mask);
    for (std::size_t i = 0; i < i_full.size(); ++i) {
      const double diff = i_full[i] - i_trunc[i];
      // Dropping nonnegative-weight kernels only removes intensity.
      EXPECT_GE(diff, -1e-12);
      EXPECT_LE(diff, bound + 1e-12);
    }
  }
}

}  // namespace
}  // namespace ldmo::kernels
