// Tests for sampling: layout sampling (SIFT + k-medoids), decomposition
// sampling (MST + 3-wise), ILT labeling and z-score packaging.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "layout/generator.h"
#include "sampling/decomposition_sampling.h"
#include "sampling/layout_sampling.h"
#include "sampling/training_set.h"

namespace ldmo::sampling {
namespace {

litho::LithoConfig fast_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  cfg.kernel_count = 4;
  return cfg;
}

const litho::LithoSimulator& shared_simulator() {
  static litho::LithoSimulator sim(fast_litho());
  return sim;
}

std::vector<layout::Layout> small_corpus(int count) {
  layout::LayoutGenerator gen;
  return gen.generate_corpus(count, 500);
}

TEST(LayoutSampling, SelectsFromEveryNonEmptyCluster) {
  const auto corpus = small_corpus(12);
  LayoutSamplingConfig config;
  config.clusters = 3;
  config.per_cluster = 2;
  const LayoutSamplingResult result = sample_layouts(corpus, config);
  EXPECT_GE(result.selected.size(), 3u);
  EXPECT_LE(result.selected.size(), 6u);
  for (int idx : result.selected) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 12);
  }
  // No duplicates.
  std::set<int> unique(result.selected.begin(), result.selected.end());
  EXPECT_EQ(unique.size(), result.selected.size());
}

TEST(LayoutSampling, ClusterCountClampedToCorpus) {
  const auto corpus = small_corpus(3);
  LayoutSamplingConfig config;
  config.clusters = 10;
  config.per_cluster = 1;
  const LayoutSamplingResult result = sample_layouts(corpus, config);
  EXPECT_EQ(result.selected.size(), 3u);
}

TEST(LayoutSampling, DeterministicPerSeed) {
  const auto corpus = small_corpus(8);
  LayoutSamplingConfig config;
  config.clusters = 3;
  const auto a = sample_layouts(corpus, config).selected;
  const auto b = sample_layouts(corpus, config).selected;
  EXPECT_EQ(a, b);
}

TEST(LayoutSampling, RandomBaselineDrawsRequestedCount) {
  const auto indices = random_layout_indices(20, 7, 42);
  EXPECT_EQ(indices.size(), 7u);
  std::set<int> unique(indices.begin(), indices.end());
  EXPECT_EQ(unique.size(), 7u);
  for (int i : indices) EXPECT_LT(i, 20);
}

TEST(LayoutSampling, RandomBaselineClampsToCorpus) {
  EXPECT_EQ(random_layout_indices(3, 10, 1).size(), 3u);
}

TEST(DecompositionSampling, SamplesAreCanonicalUniqueAndSeparating) {
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(9);
  const auto samples = sample_decompositions(l);
  EXPECT_GE(samples.size(), 2u);
  std::set<layout::Assignment> unique(samples.begin(), samples.end());
  EXPECT_EQ(unique.size(), samples.size());
  for (const auto& s : samples) {
    EXPECT_EQ(s.size(), static_cast<std::size_t>(l.pattern_count()));
    EXPECT_EQ(s[0], 0);
  }
}

TEST(DecompositionSampling, ConflictPairsAlwaysSplit) {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({100, 100}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({240, 100}, 65, 65));  // 75nm
  l.add_pattern(geometry::Rect::from_size({700, 700}, 65, 65));
  for (const auto& s : sample_decompositions(l)) EXPECT_NE(s[0], s[1]);
}

TEST(DecompositionSampling, StaysFarBelowExhaustive) {
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(14);
  const auto samples = sample_decompositions(l);
  EXPECT_LT(samples.size(),
            (std::size_t{1} << (l.pattern_count() - 1)) / 2);
}

TEST(DecompositionSampling, RandomBaselineRespectsCanonicalForm) {
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(2);
  const auto samples = random_decompositions(l, 10, 3);
  EXPECT_GE(samples.size(), 5u);
  std::set<layout::Assignment> unique(samples.begin(), samples.end());
  EXPECT_EQ(unique.size(), samples.size());
  for (const auto& s : samples) EXPECT_EQ(s[0], 0);
}

TEST(DecompositionSampling, RandomBaselineTinyLayoutExhaustsSpace) {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({100, 100}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({400, 400}, 65, 65));
  const auto samples = random_decompositions(l, 50, 4);
  EXPECT_EQ(samples.size(), 2u);  // only 2 canonical assignments exist
}

TEST(TrainingSet, DecompositionTensorEncodesMaskLevels) {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({128, 448}, 128, 128));
  l.add_pattern(geometry::Rect::from_size({704, 448}, 128, 128));
  const nn::Tensor t = decomposition_tensor(l, {0, 1}, 32);
  EXPECT_EQ(t.shape(), (std::vector<int>{1, 32, 32}));
  float max_v = 0.0f, mid_v = 0.0f;
  for (std::size_t i = 0; i < t.size(); ++i) {
    max_v = std::max(max_v, t[i]);
    if (t[i] > 0.3f && t[i] < 0.7f) mid_v = t[i];
  }
  EXPECT_FLOAT_EQ(max_v, 1.0f);   // mask-1 gray level
  EXPECT_FLOAT_EQ(mid_v, 0.5f);   // mask-2 gray level
}

TEST(TrainingSet, BuildLabelsAndNormalizes) {
  layout::LayoutGenerator gen;
  std::vector<layout::Layout> layouts = {gen.generate(20)};
  // Two decompositions per layout keeps the ILT labeling cost tiny.
  DecompositionSamplingConfig dcfg;
  dcfg.max_samples = 2;
  std::vector<std::vector<layout::Assignment>> decomps = {
      sample_decompositions(layouts[0], dcfg)};

  opc::IltConfig ilt_cfg;
  ilt_cfg.max_iterations = 5;  // labeling speed over quality in tests
  opc::IltEngine engine(shared_simulator(), ilt_cfg);

  TrainingSetConfig tcfg;
  tcfg.image_size = 32;
  int progress_calls = 0;
  const TrainingSet set = build_training_set(
      layouts, decomps, engine, tcfg,
      [&](int done, int total) {
        ++progress_calls;
        EXPECT_LE(done, total);
      });

  ASSERT_EQ(set.examples.size(), decomps[0].size());
  EXPECT_EQ(progress_calls, static_cast<int>(decomps[0].size()));
  EXPECT_TRUE(set.normalizer.fitted());
  // Normalized labels have mean ~0 when more than one distinct score.
  double sum = 0.0;
  for (const auto& e : set.examples) sum += e.label;
  EXPECT_NEAR(sum / static_cast<double>(set.examples.size()), 0.0, 1e-5);
  // Raw scores round-trip through the normalizer.
  for (std::size_t i = 0; i < set.labeled.size(); ++i)
    EXPECT_NEAR(set.normalizer.inverse(set.examples[i].label),
                set.labeled[i].raw_score,
                1e-3 * (1.0 + std::abs(set.labeled[i].raw_score)));
}

TEST(TrainingSet, RejectsMismatchedInput) {
  opc::IltEngine engine(shared_simulator());
  EXPECT_THROW(build_training_set({}, {{}}, engine), ldmo::Error);
}

}  // namespace
}  // namespace ldmo::sampling
