// Tests for the ILT engine: initialization, loss descent, convergence on
// printable decompositions, violation-triggered aborts and trajectories.
#include <gtest/gtest.h>

#include "common/error.h"
#include "layout/raster.h"
#include "litho/resist.h"
#include "opc/ilt.h"

namespace ldmo::opc {
namespace {

litho::LithoConfig test_litho_config() {
  litho::LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  cfg.kernel_count = 5;
  return cfg;
}

const litho::LithoSimulator& shared_simulator() {
  static litho::LithoSimulator sim(test_litho_config());
  return sim;
}

layout::Layout isolated_contact() {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({480, 480}, 65, 65));
  return l;
}

layout::Layout contact_pair(std::int64_t gap) {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({430, 480}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({495 + gap, 480}, 65, 65));
  return l;
}

TEST(IltConfigTest, RejectsBadParameters) {
  IltConfig bad;
  bad.max_iterations = 0;
  EXPECT_THROW(IltEngine(shared_simulator(), bad), ldmo::Error);
  bad = IltConfig{};
  bad.step_decay = 1.5;
  EXPECT_THROW(IltEngine(shared_simulator(), bad), ldmo::Error);
  bad = IltConfig{};
  bad.violation_check_interval = 0;
  EXPECT_THROW(IltEngine(shared_simulator(), bad), ldmo::Error);
}

TEST(IltInit, ParameterSignsFollowAssignment) {
  IltEngine engine(shared_simulator());
  const layout::Layout l = contact_pair(120);
  const IltState state = engine.init_state(l, {0, 1});
  const layout::RasterTransform t{l.clip, shared_simulator().grid_size()};
  // Center pixel of pattern 0 (mask 1): p1 positive, p2 negative.
  const int cx0 = static_cast<int>(t.to_px_x(430 + 32));
  const int cy0 = static_cast<int>(t.to_px_y(480 + 32));
  EXPECT_GT(state.p1.at(cy0, cx0), 0.0);
  EXPECT_LT(state.p2.at(cy0, cx0), 0.0);
  // Background: both negative.
  EXPECT_LT(state.p1.at(2, 2), 0.0);
  EXPECT_LT(state.p2.at(2, 2), 0.0);
}

TEST(IltInit, AssignmentSizeMismatchThrows) {
  IltEngine engine(shared_simulator());
  EXPECT_THROW(engine.init_state(isolated_contact(), {0, 1}), ldmo::Error);
}

TEST(IltStep, LossDecreasesOverOptimization) {
  IltEngine engine(shared_simulator());
  const layout::Layout l = contact_pair(120);
  const GridF target =
      layout::rasterize_target(l, shared_simulator().grid_size());
  IltState state = engine.init_state(l, {0, 1});
  engine.step(state, target);
  const double first_loss = state.last_loss;
  for (int i = 0; i < 14; ++i) engine.step(state, target);
  engine.step(state, target);
  EXPECT_LT(state.last_loss, first_loss);
}

TEST(IltStep, ScratchOverloadIsBitIdenticalToWrapper) {
  // The pooled/scratch step must reproduce the allocation-per-call wrapper
  // exactly — the PR-2 determinism contract extended to the workspace layer.
  IltEngine engine(shared_simulator());
  const layout::Layout l = contact_pair(110);
  const GridF target =
      layout::rasterize_target(l, shared_simulator().grid_size());
  IltState plain = engine.init_state(l, {0, 1});
  IltState pooled = engine.init_state(l, {0, 1});
  IltScratch scratch;
  for (int i = 0; i < 4; ++i) {
    engine.step(plain, target);
    engine.step(pooled, target, scratch);
    ASSERT_EQ(pooled.last_loss, plain.last_loss) << "iteration " << i;
    EXPECT_EQ(pooled.current_step, plain.current_step);
    EXPECT_EQ(pooled.current_theta_m, plain.current_theta_m);
    for (std::size_t j = 0; j < plain.p1.size(); ++j) {
      ASSERT_EQ(pooled.p1[j], plain.p1[j]) << "iteration " << i;
      ASSERT_EQ(pooled.p2[j], plain.p2[j]) << "iteration " << i;
    }
  }
}

TEST(IltOptimize, IsolatedContactConverges) {
  IltEngine engine(shared_simulator());
  const layout::Layout l = isolated_contact();
  const IltResult result = engine.optimize(l, {0});
  EXPECT_EQ(result.report.violations.total(), 0);
  EXPECT_EQ(result.report.epe.violation_count, 0)
      << "max EPE " << result.report.epe.max_epe_nm;
  EXPECT_FALSE(result.aborted_on_violation);
  EXPECT_EQ(result.iterations_run, engine.config().max_iterations);
}

TEST(IltOptimize, ImprovesVpPairOverRawPrint) {
  // Two contacts in the VP interaction band (gap between nmin and nmax) on
  // the same mask: printable, but with proximity distortion ILT must reduce.
  IltEngine engine(shared_simulator());
  const layout::Layout l = contact_pair(90);
  const layout::Assignment same_mask = {0, 0};

  const GridF raw = shared_simulator().print_decomposition(l, same_mask);
  const litho::PrintabilityReport raw_report =
      shared_simulator().evaluate(raw, l);

  const IltResult optimized = engine.optimize(l, same_mask);
  EXPECT_LE(optimized.report.score(), raw_report.score());
}

TEST(IltOptimize, SplitConflictPairConverges) {
  IltEngine engine(shared_simulator());
  const layout::Layout l = contact_pair(72);  // below nmin
  const IltResult result = engine.optimize(l, {0, 1});
  EXPECT_EQ(result.report.violations.total(), 0);
  EXPECT_EQ(result.report.epe.violation_count, 0)
      << "max EPE " << result.report.epe.max_epe_nm;
}

TEST(IltOptimize, AbortsOnViolatingDecomposition) {
  // Same-mask conflict pair: the print violation fires at an early periodic
  // check and the abort flag comes back set.
  IltEngine engine(shared_simulator());
  const layout::Layout l = contact_pair(72);
  const IltResult result =
      engine.optimize(l, {0, 0}, /*abort_on_violation=*/true);
  if (result.aborted_on_violation) {
    EXPECT_LT(result.iterations_run, engine.config().max_iterations);
    EXPECT_EQ(result.iterations_run % engine.config().violation_check_interval,
              0);
  } else {
    // If ILT somehow rescued it, the final report must then be clean.
    EXPECT_EQ(result.report.violations.total(), 0);
  }
}

TEST(IltOptimize, TrajectoryRecordsEveryIteration) {
  IltEngine engine(shared_simulator());
  const layout::Layout l = isolated_contact();
  const IltResult result =
      engine.optimize(l, {0}, /*abort_on_violation=*/false,
                      /*record_trajectory=*/true);
  ASSERT_EQ(result.trajectory.size(),
            static_cast<std::size_t>(engine.config().max_iterations));
  for (std::size_t i = 0; i < result.trajectory.size(); ++i)
    EXPECT_EQ(result.trajectory[i].iteration, static_cast<int>(i) + 1);
  // Final trajectory point agrees with a from-scratch evaluation direction:
  // EPE count at the end should be no worse than at the start.
  EXPECT_LE(result.trajectory.back().epe_violations,
            result.trajectory.front().epe_violations);
}

TEST(IltOptimize, DeterministicAcrossRuns) {
  IltEngine engine(shared_simulator());
  const layout::Layout l = contact_pair(100);
  const IltResult a = engine.optimize(l, {0, 1});
  const IltResult b = engine.optimize(l, {0, 1});
  EXPECT_EQ(a.report.epe.violation_count, b.report.epe.violation_count);
  EXPECT_DOUBLE_EQ(a.report.l2, b.report.l2);
  EXPECT_EQ(a.mask1, b.mask1);
}

TEST(IltFinalize, MatchesOptimizeTail) {
  // finalize(state) after manually stepping must agree with the report an
  // optimize() run produces for the same schedule.
  IltEngine engine(shared_simulator());
  const layout::Layout l = isolated_contact();
  const GridF target =
      layout::rasterize_target(l, shared_simulator().grid_size());
  IltState state = engine.init_state(l, {0});
  for (int i = 0; i < engine.config().max_iterations; ++i)
    engine.step(state, target);
  const IltResult via_finalize = engine.finalize(state, l);
  const IltResult via_optimize = engine.optimize(l, {0});
  EXPECT_EQ(via_finalize.report.epe.violation_count,
            via_optimize.report.epe.violation_count);
  EXPECT_DOUBLE_EQ(via_finalize.report.l2, via_optimize.report.l2);
  EXPECT_EQ(via_finalize.mask1, via_optimize.mask1);
}

TEST(IltFinalize, PicksBestThreshold) {
  // With a deliberately bad threshold in front, the search must not return
  // a worse result than the plain 0.0 threshold.
  IltConfig cfg;
  cfg.max_iterations = 6;
  cfg.binarize_thresholds = {0.9, 0.0};  // 0.9 wipes out most of the mask
  IltEngine engine(shared_simulator(), cfg);
  IltConfig plain = cfg;
  plain.binarize_thresholds = {0.0};
  IltEngine plain_engine(shared_simulator(), plain);
  const layout::Layout l = isolated_contact();
  EXPECT_LE(engine.optimize(l, {0}).report.score(),
            plain_engine.optimize(l, {0}).report.score());
}

TEST(IltState, ThetaAnnealGrowsPerStep) {
  IltEngine engine(shared_simulator());
  const layout::Layout l = isolated_contact();
  const GridF target =
      layout::rasterize_target(l, shared_simulator().grid_size());
  IltState state = engine.init_state(l, {0});
  const double theta0 = state.current_theta_m;
  engine.step(state, target);
  EXPECT_NEAR(state.current_theta_m,
              theta0 * engine.config().theta_m_anneal, 1e-12);
}

TEST(IltBinarize, ThresholdsAtZero) {
  IltEngine engine(shared_simulator());
  GridF p(1, 3);
  p.at(0, 0) = -0.4;
  p.at(0, 1) = 0.0;
  p.at(0, 2) = 0.7;
  const GridF m = engine.binarize_parameters(p);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 1.0);
}

TEST(IltOptimize, MasksStayWithinGrid) {
  IltEngine engine(shared_simulator());
  const layout::Layout l = isolated_contact();
  const IltResult result = engine.optimize(l, {0});
  const int n = shared_simulator().grid_size();
  EXPECT_EQ(result.mask1.height(), n);
  EXPECT_EQ(result.mask1.width(), n);
  for (std::size_t i = 0; i < result.mask1.size(); ++i) {
    EXPECT_TRUE(result.mask1[i] == 0.0 || result.mask1[i] == 1.0);
    EXPECT_TRUE(result.mask2[i] == 0.0 || result.mask2[i] == 1.0);
  }
}

}  // namespace
}  // namespace ldmo::opc
