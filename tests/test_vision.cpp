// Tests for the vision substrate: image ops, SIFT invariances, the layout
// similarity metric (Eq. 7 / Alg. 2), and k-medoids clustering.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "vision/image_ops.h"
#include "vision/kmedoids.h"
#include "vision/sift.h"
#include "vision/similarity.h"

namespace ldmo::vision {
namespace {

// Synthetic "layout raster": a few bright squares on black background.
GridF squares_image(const std::vector<std::pair<int, int>>& positions,
                    int size = 128, int square = 10) {
  GridF image(size, size, 0.0);
  for (const auto& [cy, cx] : positions)
    for (int y = cy; y < cy + square && y < size; ++y)
      for (int x = cx; x < cx + square && x < size; ++x)
        image.at(y, x) = 1.0;
  return image;
}

GridF translate(const GridF& image, int dy, int dx) {
  GridF out(image.height(), image.width(), 0.0);
  for (int y = 0; y < image.height(); ++y)
    for (int x = 0; x < image.width(); ++x) {
      const int sy = y - dy, sx = x - dx;
      if (sy >= 0 && sy < image.height() && sx >= 0 && sx < image.width())
        out.at(y, x) = image.at(sy, sx);
    }
  return out;
}

// ------------------------------------------------------------- image ops --

TEST(ImageOps, GaussianBlurPreservesMass) {
  GridF image(32, 32, 0.0);
  image.at(16, 16) = 1.0;
  const GridF blurred = gaussian_blur(image, 2.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < blurred.size(); ++i) sum += blurred[i];
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_LT(blurred.at(16, 16), 1.0);
  EXPECT_GT(blurred.at(16, 18), 0.0);
}

TEST(ImageOps, GaussianBlurIsSymmetric) {
  GridF image(33, 33, 0.0);
  image.at(16, 16) = 1.0;
  const GridF blurred = gaussian_blur(image, 1.5);
  EXPECT_NEAR(blurred.at(16, 12), blurred.at(16, 20), 1e-12);
  EXPECT_NEAR(blurred.at(12, 16), blurred.at(20, 16), 1e-12);
}

TEST(ImageOps, DownsampleHalvesShape) {
  GridF image(32, 48, 0.5);
  const GridF small = downsample2(image);
  EXPECT_EQ(small.height(), 16);
  EXPECT_EQ(small.width(), 24);
}

TEST(ImageOps, GradientsOfRamp) {
  GridF image(8, 8);
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) image.at(y, x) = 2.0 * x + 3.0 * y;
  const GradientField g = gradients(image);
  EXPECT_NEAR(g.dx.at(4, 4), 2.0, 1e-12);
  EXPECT_NEAR(g.dy.at(4, 4), 3.0, 1e-12);
  // One-sided at borders, still the right slope for a linear ramp.
  EXPECT_NEAR(g.dx.at(4, 0), 2.0, 1e-12);
}

TEST(ImageOps, ResizeIdentityAndScale) {
  Rng rng(1);
  GridF image(16, 16);
  for (std::size_t i = 0; i < image.size(); ++i) image[i] = rng.uniform();
  const GridF same = resize(image, 16, 16);
  for (std::size_t i = 0; i < image.size(); ++i)
    EXPECT_NEAR(same[i], image[i], 1e-9);
  const GridF bigger = resize(image, 32, 32);
  EXPECT_EQ(bigger.height(), 32);
}

// ----------------------------------------------------------------- sift --

TEST(Sift, DetectsFeaturesOnStructuredImage) {
  const GridF image = squares_image({{30, 30}, {30, 80}, {80, 50}});
  const auto features = detect_sift(image);
  EXPECT_GE(features.size(), 4u);
  for (const auto& f : features) {
    double norm = 0.0;
    for (float v : f.descriptor) norm += static_cast<double>(v) * v;
    EXPECT_NEAR(norm, 1.0, 1e-3);  // unit descriptors
  }
}

TEST(Sift, BlankImageHasNoFeatures) {
  const GridF blank(64, 64, 0.3);
  EXPECT_TRUE(detect_sift(blank).empty());
}

TEST(Sift, TranslationMovesFeaturesNotDescriptors) {
  // The paper's rationale for SIFT: layout movement should not change the
  // extracted local features (Fig. 6).
  const GridF a = squares_image({{30, 30}, {30, 80}, {80, 50}});
  const GridF b = translate(a, 8, 12);
  const auto fa = detect_sift(a);
  const auto fb = detect_sift(b);
  ASSERT_GE(fa.size(), 3u);
  ASSERT_GE(fb.size(), 3u);
  // Each feature of a should find a near-zero-distance partner in b.
  int matched = 0;
  for (const auto& f : fa) {
    for (const auto& g : fb) {
      if (feature_distance(f, g, 0.7) < 0.3) {
        ++matched;
        break;
      }
    }
  }
  EXPECT_GE(matched, static_cast<int>(fa.size() * 2 / 3));
}

TEST(Sift, RespectsMaxFeatureBudget) {
  SiftConfig config;
  config.max_features = 5;
  // A grid of many squares produces plenty of corners.
  std::vector<std::pair<int, int>> positions;
  for (int y = 10; y < 110; y += 25)
    for (int x = 10; x < 110; x += 25) positions.push_back({y, x});
  const auto features = detect_sift(squares_image(positions), config);
  EXPECT_LE(features.size(), 5u);
}

TEST(Sift, RejectsTinyImages) {
  EXPECT_THROW(detect_sift(GridF(8, 8, 0.0)), ldmo::Error);
}

// ------------------------------------------------------------ similarity --

TEST(Similarity, IdenticalLayoutsScoreLowest) {
  const GridF a = squares_image({{30, 30}, {30, 80}, {80, 50}});
  const GridF b = squares_image({{40, 20}, {90, 90}});
  const auto fa = detect_sift(a);
  const auto fb = detect_sift(b);
  SimilarityConfig config;
  config.truncate_count = 10;
  const double self = layout_similarity(fa, fa, config);
  const double cross = layout_similarity(fa, fb, config);
  EXPECT_LT(self, cross);
}

TEST(Similarity, TranslatedLayoutIsCloserThanDifferentLayout) {
  const GridF a = squares_image({{30, 30}, {30, 80}, {80, 50}});
  const GridF shifted = translate(a, 6, 10);
  const GridF different = squares_image({{15, 15}, {60, 100}, {100, 20},
                                         {55, 55}});
  const auto fa = detect_sift(a);
  SimilarityConfig config;
  config.truncate_count = 10;
  const double d_shift = layout_similarity(fa, detect_sift(shifted), config);
  const double d_diff = layout_similarity(fa, detect_sift(different), config);
  EXPECT_LT(d_shift, d_diff);
}

TEST(Similarity, UnmatchedFeaturesCostFullPenalty) {
  const GridF a = squares_image({{30, 30}, {80, 80}});
  const auto fa = detect_sift(a);
  SimilarityConfig config;
  config.truncate_count = 5;
  // Empty other side: everything unmatched -> c * 1.0.
  EXPECT_DOUBLE_EQ(layout_similarity(fa, {}, config), 5.0);
  EXPECT_DOUBLE_EQ(layout_similarity({}, fa, config), 5.0);
}

TEST(Similarity, FeatureDistanceThresholdBehaviour) {
  SiftFeature p, q;
  p.descriptor[0] = 1.0f;
  q.descriptor[0] = 1.0f;
  EXPECT_DOUBLE_EQ(feature_distance(p, q, 0.7), 0.0);
  q.descriptor[0] = 0.0f;
  q.descriptor[1] = 1.0f;  // distance sqrt(2) > 0.7 -> unmatched
  EXPECT_DOUBLE_EQ(feature_distance(p, q, 0.7), 1.0);
}

TEST(Similarity, DistanceMatrixSymmetricZeroDiagonal) {
  std::vector<std::vector<SiftFeature>> sets;
  sets.push_back(detect_sift(squares_image({{30, 30}, {80, 80}})));
  sets.push_back(detect_sift(squares_image({{20, 60}, {90, 40}})));
  sets.push_back(detect_sift(squares_image({{50, 50}})));
  const auto matrix = distance_matrix(sets);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(matrix[i * 3 + i], 0.0);
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(matrix[i * 3 + j], matrix[j * 3 + i]);
  }
}

TEST(Similarity, SelfDistanceZeroWhenEnoughMatches) {
  // A layout matched against itself: every feature pairs at distance ~0,
  // so with c below the feature count the Alg. 2 sum vanishes.
  const GridF a = squares_image({{30, 30}, {30, 80}, {80, 50}, {90, 95}});
  const auto fa = detect_sift(a);
  ASSERT_GE(fa.size(), 4u);
  SimilarityConfig config;
  config.truncate_count = static_cast<int>(fa.size()) - 1;
  EXPECT_NEAR(layout_similarity(fa, fa, config), 0.0, 1e-9);
}

TEST(Similarity, TriangleInequalityHoldsApproximately) {
  // Alg. 2 is not a metric, but on real layout rasters gross violations
  // of d(a,c) <= d(a,b) + d(b,c) + slack would indicate a broken matcher.
  const auto fa = detect_sift(squares_image({{30, 30}, {80, 80}}));
  const auto fb = detect_sift(squares_image({{35, 40}, {85, 75}}));
  const auto fc = detect_sift(squares_image({{90, 20}, {20, 90}}));
  SimilarityConfig config;
  config.truncate_count = 8;
  const double ab = layout_similarity(fa, fb, config);
  const double bc = layout_similarity(fb, fc, config);
  const double ac = layout_similarity(fa, fc, config);
  EXPECT_LE(ac, ab + bc + 2.0);
}

// -------------------------------------------------------------- kmedoids --

// Distance matrix with two obvious groups: {0,1,2} tight, {3,4,5} tight,
// large inter-group distance.
std::vector<double> two_cluster_matrix() {
  const int n = 6;
  std::vector<double> d(n * n, 0.0);
  auto set = [&](int i, int j, double v) {
    d[static_cast<std::size_t>(i) * n + j] = v;
    d[static_cast<std::size_t>(j) * n + i] = v;
  };
  for (int i = 0; i < 3; ++i)
    for (int j = i + 1; j < 3; ++j) set(i, j, 1.0);
  for (int i = 3; i < 6; ++i)
    for (int j = i + 1; j < 6; ++j) set(i, j, 1.0);
  for (int i = 0; i < 3; ++i)
    for (int j = 3; j < 6; ++j) set(i, j, 10.0);
  return d;
}

TEST(KMedoids, RecoversTwoClusters) {
  KMedoidsConfig config;
  config.clusters = 2;
  const KMedoidsResult r = kmedoids(two_cluster_matrix(), 6, config);
  EXPECT_EQ(r.assignment[0], r.assignment[1]);
  EXPECT_EQ(r.assignment[1], r.assignment[2]);
  EXPECT_EQ(r.assignment[3], r.assignment[4]);
  EXPECT_EQ(r.assignment[4], r.assignment[5]);
  EXPECT_NE(r.assignment[0], r.assignment[3]);
  EXPECT_DOUBLE_EQ(r.sld, 4.0);  // 2 members x distance 1 per cluster
}

TEST(KMedoids, SldMatchesRecomputation) {
  KMedoidsConfig config;
  config.clusters = 2;
  const auto matrix = two_cluster_matrix();
  const KMedoidsResult r = kmedoids(matrix, 6, config);
  EXPECT_DOUBLE_EQ(
      r.sld, sum_of_layout_distance(matrix, 6, r.medoids, r.assignment));
}

TEST(KMedoids, OneClusterPicksCorpusCenter) {
  // Line metric 0-1-2-3-4: element 2 minimizes total distance.
  const int n = 5;
  std::vector<double> d(n * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      d[static_cast<std::size_t>(i) * n + j] = std::abs(i - j);
  KMedoidsConfig config;
  config.clusters = 1;
  const KMedoidsResult r = kmedoids(d, n, config);
  EXPECT_EQ(r.medoids[0], 2);
  EXPECT_DOUBLE_EQ(r.sld, 6.0);
}

TEST(KMedoids, ClustersEqualElementsGivesZeroSld) {
  KMedoidsConfig config;
  config.clusters = 6;
  const KMedoidsResult r = kmedoids(two_cluster_matrix(), 6, config);
  EXPECT_DOUBLE_EQ(r.sld, 0.0);
}

TEST(KMedoids, RejectsBadArguments) {
  KMedoidsConfig config;
  config.clusters = 7;
  EXPECT_THROW(kmedoids(two_cluster_matrix(), 6, config), ldmo::Error);
  EXPECT_THROW(kmedoids({0.0, 1.0}, 2, {}), ldmo::Error);
}

TEST(KMedoids, SwapPhaseNeverIncreasesSld) {
  // Random symmetric matrix; PAM must end at or below its initial SLD.
  Rng rng(42);
  const int n = 12;
  std::vector<double> d(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double v = rng.uniform(0.5, 5.0);
      d[static_cast<std::size_t>(i) * n + j] = v;
      d[static_cast<std::size_t>(j) * n + i] = v;
    }
  KMedoidsConfig config;
  config.clusters = 3;
  config.max_iterations = 1;  // heavily truncated
  const KMedoidsResult truncated = kmedoids(d, n, config);
  config.max_iterations = 50;
  const KMedoidsResult full = kmedoids(d, n, config);
  EXPECT_LE(full.sld, truncated.sld + 1e-12);
}

}  // namespace
}  // namespace ldmo::vision
