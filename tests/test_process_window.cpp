// Tests for process-window analysis: corner printing, PV band, and the
// physical monotonicities (defocus hurts, dose moves contour outward).
#include <gtest/gtest.h>

#include "common/error.h"
#include "layout/generator.h"
#include "layout/raster.h"
#include "litho/process_window.h"
#include "litho/resist.h"
#include "opc/ilt.h"

namespace ldmo::litho {
namespace {

LithoConfig fast_litho() {
  LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  cfg.kernel_count = 4;
  return cfg;
}

const LithoSimulator& simulator() {
  static LithoSimulator sim(fast_litho());
  return sim;
}

layout::Layout isolated_contact() {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({480, 480}, 65, 65));
  return l;
}

// Optimized masks for the isolated contact (computed once).
const opc::IltResult& optimized_contact() {
  static const opc::IltResult result = [] {
    opc::IltConfig cfg;
    cfg.max_iterations = 12;
    cfg.theta_m_anneal = 1.2;
    return opc::IltEngine(simulator(), cfg).optimize(isolated_contact(), {0});
  }();
  return result;
}

TEST(ProcessWindow, StandardCornersWellFormed) {
  const auto corners = standard_corners(40.0, 0.05);
  ASSERT_EQ(corners.size(), 3u);
  EXPECT_EQ(corners[0], (ProcessCorner{0.0, 1.0}));
  EXPECT_DOUBLE_EQ(corners[1].defocus_nm, 40.0);
  EXPECT_DOUBLE_EQ(corners[1].dose, 0.95);
  EXPECT_DOUBLE_EQ(corners[2].dose, 1.05);
}

TEST(ProcessWindow, NominalCornerMatchesSimulator) {
  const ProcessWindowAnalyzer analyzer(fast_litho());
  const auto& masks = optimized_contact();
  const GridF via_analyzer =
      analyzer.print_at(masks.mask1, masks.mask2, {0.0, 1.0});
  const GridF via_simulator = simulator().print(masks.mask1, masks.mask2);
  ASSERT_TRUE(via_analyzer.same_shape(via_simulator));
  for (std::size_t i = 0; i < via_analyzer.size(); ++i)
    EXPECT_NEAR(via_analyzer[i], via_simulator[i], 1e-12);
}

TEST(ProcessWindow, OverdoseGrowsPrintedArea) {
  const ProcessWindowAnalyzer analyzer(fast_litho());
  const auto& masks = optimized_contact();
  auto printed_area = [&](const ProcessCorner& corner) {
    const GridU8 printed =
        litho::binarize(analyzer.print_at(masks.mask1, masks.mask2, corner));
    int area = 0;
    for (std::size_t i = 0; i < printed.size(); ++i) area += printed[i];
    return area;
  };
  const int under = printed_area({0.0, 0.9});
  const int nominal = printed_area({0.0, 1.0});
  const int over = printed_area({0.0, 1.1});
  EXPECT_LT(under, nominal);
  EXPECT_LT(nominal, over);
}

TEST(ProcessWindow, AnalyzeAggregatesCorners) {
  const ProcessWindowAnalyzer analyzer(fast_litho());
  const auto& masks = optimized_contact();
  const ProcessWindowReport report =
      analyzer.analyze(masks.mask1, masks.mask2, isolated_contact());
  ASSERT_EQ(report.reports.size(), 3u);
  int sum = 0, worst = 0;
  for (const auto& r : report.reports) {
    sum += r.epe.violation_count;
    worst = std::max(worst, r.epe.violation_count);
  }
  EXPECT_EQ(report.total_epe_violations, sum);
  EXPECT_EQ(report.worst_corner_epe, worst);
  // Dose variation moves the contour, so the PV band is non-empty.
  EXPECT_GT(report.pv_band_pixels, 0);
}

TEST(ProcessWindow, PvBandZeroForSingleCorner) {
  const ProcessWindowAnalyzer analyzer(fast_litho());
  const auto& masks = optimized_contact();
  const ProcessWindowReport report = analyzer.analyze(
      masks.mask1, masks.mask2, isolated_contact(), {{0.0, 1.0}});
  EXPECT_EQ(report.pv_band_pixels, 0);
}

TEST(ProcessWindow, DefocusWorsensWorstCorner) {
  const ProcessWindowAnalyzer analyzer(fast_litho());
  const auto& masks = optimized_contact();
  const ProcessWindowReport mild = analyzer.analyze(
      masks.mask1, masks.mask2, isolated_contact(),
      standard_corners(20.0, 0.03));
  const ProcessWindowReport harsh = analyzer.analyze(
      masks.mask1, masks.mask2, isolated_contact(),
      standard_corners(120.0, 0.10));
  EXPECT_GE(harsh.total_epe_violations, mild.total_epe_violations);
  EXPECT_GE(harsh.pv_band_pixels, mild.pv_band_pixels);
}

TEST(ProcessWindow, RejectsBadInput) {
  const ProcessWindowAnalyzer analyzer(fast_litho());
  const auto& masks = optimized_contact();
  EXPECT_THROW(
      analyzer.print_at(masks.mask1, masks.mask2, {0.0, 0.0}), ldmo::Error);
  EXPECT_THROW(
      analyzer.analyze(masks.mask1, masks.mask2, isolated_contact(), {}),
      ldmo::Error);
}

}  // namespace
}  // namespace ldmo::litho
