# Included by ctest (TEST_INCLUDE_FILES) after gtest discovery populated
# test_workspace_TESTS. Discovery can only attach a single label — it
# flattens list-valued PROPERTIES — so the full label set lives here.
foreach(t IN LISTS test_workspace_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "sanitize;alloc")
endforeach()
