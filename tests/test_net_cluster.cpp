// Multi-process cluster drill: forks the real ldmo_cli binary (path baked
// in via LDMO_CLI_PATH) into a 3-process topology — router + 2 workers on
// ephemeral ports — and drives it with the in-process net::Client.
//
// This is the process-level counterpart of the in-process router tests in
// test_net.cpp: it proves the `serve` and `route` subcommands actually
// compose into a cluster (bind, print their port, answer frames, honor
// SIGTERM), that a SIGKILLed worker mid-load loses zero requests, and that
// a worker restart warm-starts from its cache snapshot.
//
// Every child runs the 32-pixel serving-tier lithography model so a full
// flow run stays in the tens-of-milliseconds budget.
#include <gtest/gtest.h>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "layout/generator.h"
#include "net/client.h"
#include "serve/request.h"

namespace ldmo::net {
namespace {

layout::Layout generated_layout(std::uint64_t seed) {
  return layout::LayoutGenerator().generate(seed);
}

/// One forked ldmo_cli child with its stdout on a pipe. The destructor
/// SIGKILLs and reaps whatever the test did not shut down itself, so a
/// failed assertion never leaks a daemon into the test runner.
class ChildProcess {
 public:
  ~ChildProcess() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      reap();
    }
    if (out_fd_ >= 0) ::close(out_fd_);
  }

  void spawn(const std::vector<std::string>& args) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    pid_ = ::fork();
    ASSERT_GE(pid_, 0);
    if (pid_ == 0) {
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<char*> argv;
      argv.push_back(const_cast<char*>(LDMO_CLI_PATH));
      for (const std::string& arg : args)
        argv.push_back(const_cast<char*>(arg.c_str()));
      argv.push_back(nullptr);
      ::execv(LDMO_CLI_PATH, argv.data());
      ::_exit(127);  // exec failed; the parent times out reading the port
    }
    ::close(fds[1]);
    out_fd_ = fds[0];
  }

  /// Reads child stdout until "listening on port N" appears (the serve and
  /// route subcommands print it once bound). Fails the test after 60s.
  int read_port() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    std::string buffer;
    while (std::chrono::steady_clock::now() < deadline) {
      pollfd pfd{};
      pfd.fd = out_fd_;
      pfd.events = POLLIN;
      if (::poll(&pfd, 1, 200) <= 0) continue;
      char chunk[256];
      const ssize_t n = ::read(out_fd_, chunk, sizeof chunk);
      if (n <= 0) break;  // child died before binding
      buffer.append(chunk, static_cast<std::size_t>(n));
      const std::size_t at = buffer.find("listening on port ");
      if (at == std::string::npos) continue;
      const std::size_t eol = buffer.find('\n', at);
      if (eol == std::string::npos) continue;
      port_ = std::atoi(buffer.c_str() + at + std::strlen("listening on port "));
      return port_;
    }
    ADD_FAILURE() << "child never printed its port; stdout so far: "
                  << buffer;
    return 0;
  }

  int port() const { return port_; }
  pid_t pid() const { return pid_; }

  void signal(int sig) {
    if (pid_ > 0) ::kill(pid_, sig);
  }

  /// Waits for the child to exit and forgets it.
  void reap() {
    if (pid_ <= 0) return;
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
  }

  /// SIGTERM + reap: the orderly shutdown path (serve writes its snapshot
  /// here).
  void terminate() {
    signal(SIGTERM);
    reap();
  }

 private:
  pid_t pid_ = -1;
  int out_fd_ = -1;
  int port_ = 0;
};

std::vector<std::string> worker_args() {
  return {"serve", "--listen", "0", "--grid", "32", "--pixel", "32",
          "--dispatchers", "2"};
}

TEST(NetCluster, ThreeProcessRouterSurvivesWorkerKillMidLoad) {
  ChildProcess worker_a, worker_b, router;
  worker_a.spawn(worker_args());
  worker_b.spawn(worker_args());
  const int port_a = worker_a.read_port();
  const int port_b = worker_b.read_port();
  ASSERT_GT(port_a, 0);
  ASSERT_GT(port_b, 0);

  router.spawn({"route", "--listen", "0", "--workers",
                std::to_string(port_a) + "," + std::to_string(port_b)});
  const int router_port = router.read_port();
  ASSERT_GT(router_port, 0);

  ClientConfig ccfg;
  ccfg.port = router_port;
  ccfg.net_retries = 5;  // a kill mid-frame costs retries, never requests

  {  // the cluster answers, and the router has learned the workers' config
    Client client(ccfg);
    serve::ServeRequest request;
    request.layout = generated_layout(900);
    ASSERT_TRUE(client.submit(request).ok());
    EXPECT_NE(client.stats().config_fingerprint, 0u);
  }

  // Kill one worker while three client threads are mid-load. Every request
  // must still get an ok() answer — the client retries transport faults and
  // the router fails over to the surviving shard.
  constexpr int kLoadRequests = 6;
  std::atomic<int> next{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c)
    clients.emplace_back([&] {
      Client client(ccfg);
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= kLoadRequests) return;
        serve::ServeRequest request;
        request.layout =
            generated_layout(901 + static_cast<std::uint64_t>(i));
        const serve::ServeResponse response = client.submit(request);
        if (response.ok()) answered.fetch_add(1);
      }
    });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  worker_a.signal(SIGKILL);
  worker_a.reap();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(answered.load(), kLoadRequests) << "lost requests after a kill";

  // The surviving shard alone still serves new work through the router.
  Client client(ccfg);
  serve::ServeRequest request;
  request.layout = generated_layout(920);
  EXPECT_TRUE(client.submit(request).ok());

  router.terminate();
  worker_b.terminate();
}

TEST(NetCluster, WorkerRestartWarmStartsFromSnapshot) {
  const std::string snapshot =
      "test_net_cluster_snapshot_" + std::to_string(::getpid()) + ".bin";
  std::vector<std::string> args = worker_args();
  args.push_back("--snapshot");
  args.push_back(snapshot);

  const layout::Layout layout = generated_layout(950);
  {
    ChildProcess worker;
    worker.spawn(args);
    const int port = worker.read_port();
    ASSERT_GT(port, 0);
    Client client(ClientConfig{.port = port});
    serve::ServeRequest request;
    request.layout = layout;
    ASSERT_EQ(client.submit(request).status, serve::ServeStatus::kOk);
    worker.terminate();  // orderly stop writes the snapshot
  }

  ChildProcess reborn;
  reborn.spawn(args);
  const int port = reborn.read_port();
  ASSERT_GT(port, 0);
  Client client(ClientConfig{.port = port});
  serve::ServeRequest request;
  request.layout = layout;
  EXPECT_EQ(client.submit(request).status, serve::ServeStatus::kCached)
      << "warm cache did not survive the restart";
  reborn.terminate();
  std::remove(snapshot.c_str());
}

}  // namespace
}  // namespace ldmo::net
