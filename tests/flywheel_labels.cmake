# Included by ctest (TEST_INCLUDE_FILES) after gtest discovery populated
# test_flywheel_TESTS. Discovery can only attach a single label — it
# flattens list-valued PROPERTIES — so the full label set lives here:
# "sanitize" (the suite exercises the capture sink's writer thread, the
# server's swap rwlock and the tuner loop under the TSan budget) plus
# "flywheel" (ctest -L flywheel runs the online-learning loop — log,
# sink, gated promotion, hot swap — on its own).
foreach(t IN LISTS test_flywheel_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "sanitize;flywheel")
endforeach()
