# Included by ctest (TEST_INCLUDE_FILES) after gtest discovery populated
# test_warmstart_TESTS. Discovery can only attach a single label — it
# flattens list-valued PROPERTIES — so the full label set lives here:
# "sanitize" (the suite exercises the MaskWarmStart mutex and failpoints
# under the TSan budget) plus "warmstart" (ctest -L warmstart runs the
# harvest -> train -> seeded-ILT end-to-end fixture and friends alone).
foreach(t IN LISTS test_warmstart_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "sanitize;warmstart")
endforeach()
