// Observability layer: metrics registry semantics, span trees, JSON
// writer/parser round-trips, run-report structure, and a multi-threaded
// registry smoke test.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/span.h"

namespace {

using namespace ldmo;

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::registry().reset();
    obs::tracer().clear();
    obs::set_tracing_enabled(false);
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::tracer().clear();
  }
};

TEST_F(ObsTest, CounterIncrementsAndResets) {
  obs::Counter& c = obs::counter("test.counter.a");
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);

  // Same name resolves to the same metric object.
  obs::counter("test.counter.a").inc();
  EXPECT_EQ(c.value(), 43);

  obs::registry().reset();
  EXPECT_EQ(c.value(), 0);  // reference survives reset
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  obs::Gauge& g = obs::gauge("test.gauge.a");
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST_F(ObsTest, HistogramBucketSemantics) {
  obs::Histogram& h = obs::histogram("test.hist.a", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1        -> bucket 0
  h.observe(1.0);    // == bound    -> bucket 0 (inclusive upper bound)
  h.observe(5.0);    // <= 10       -> bucket 1
  h.observe(100.0);  // <= 100      -> bucket 2
  h.observe(1e6);    // overflow    -> bucket 3
  EXPECT_EQ(h.count(), 5);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  const std::vector<long long> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2);
  EXPECT_EQ(buckets[1], 1);
  EXPECT_EQ(buckets[2], 1);
  EXPECT_EQ(buckets[3], 1);
}

TEST_F(ObsTest, HistogramRejectsUnsortedBounds) {
  EXPECT_THROW(obs::Histogram({3.0, 1.0}), std::invalid_argument);
}

TEST_F(ObsTest, HistogramBoundsMismatchIsCounted) {
  obs::Histogram& h = obs::histogram("test.hist.mismatch", {1.0, 2.0});
  const long long before =
      obs::counter("obs.histogram.bounds_mismatch").value();
  // Same bounds: no mismatch.
  obs::histogram("test.hist.mismatch", {1.0, 2.0});
  EXPECT_EQ(obs::counter("obs.histogram.bounds_mismatch").value(), before);
  // Different bounds: the original buckets win, but the conflict is
  // counted instead of silently ignored.
  obs::Histogram& again = obs::histogram("test.hist.mismatch", {5.0});
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(obs::counter("obs.histogram.bounds_mismatch").value(),
            before + 1);
}

TEST_F(ObsTest, SnapshotCapturesAllMetricTypesSorted) {
  obs::counter("test.snap.b").inc(2);
  obs::counter("test.snap.a").inc(1);
  obs::gauge("test.snap.g").set(7.0);
  obs::histogram("test.snap.h", {1.0}).observe(0.5);

  const obs::MetricsSnapshot snap = obs::registry().snapshot();
  const obs::CounterSample* a = snap.find_counter("test.snap.a");
  const obs::CounterSample* b = snap.find_counter("test.snap.b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->value, 1);
  EXPECT_EQ(b->value, 2);
  EXPECT_LT(a - &snap.counters[0], b - &snap.counters[0]);  // name-sorted

  const obs::GaugeSample* g = snap.find_gauge("test.snap.g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 7.0);

  const obs::HistogramSample* h = snap.find_histogram("test.snap.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1);
  ASSERT_EQ(h->buckets.size(), 2u);
  EXPECT_EQ(h->buckets[0], 1);
}

TEST_F(ObsTest, NestedSpansFormTree) {
  obs::set_tracing_enabled(true);
  {
    obs::Span root("root");
    root.attr("layout", std::string("T1"));
    root.attr("candidates", 12.0);
    {
      obs::Span child_a("phase_a");
      child_a.row("trace", {{"iter", 1.0}, {"loss", 9.5}});
      child_a.row("trace", {{"iter", 2.0}, {"loss", 4.5}});
      { obs::Span grandchild("leaf"); }
    }
    { obs::Span child_b("phase_b"); }
  }

  const std::vector<obs::SpanNode> roots = obs::tracer().snapshot();
  ASSERT_EQ(roots.size(), 1u);
  const obs::SpanNode& root = roots[0];
  EXPECT_EQ(root.name, "root");
  EXPECT_GE(root.seconds, 0.0);
  EXPECT_EQ(root.tree_size(), 4);
  ASSERT_EQ(root.children.size(), 2u);

  const double* candidates = root.find_num_attr("candidates");
  ASSERT_NE(candidates, nullptr);
  EXPECT_EQ(*candidates, 12.0);

  const obs::SpanNode* a = root.find("phase_a");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(a->find("leaf"), nullptr);
  const auto* trace = a->find_series("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_EQ(trace->size(), 2u);
  const double* loss = (*trace)[1].find("loss");
  ASSERT_NE(loss, nullptr);
  EXPECT_EQ(*loss, 4.5);
  // Children's time is contained in the parent's.
  EXPECT_LE(a->seconds, root.seconds);
}

TEST_F(ObsTest, TracerRetentionCapDropsOldestRoots) {
  obs::set_tracing_enabled(true);
  obs::tracer().set_max_roots(2);
  const long long counter_before =
      obs::counter("obs.trace.dropped_roots").value();
  const std::uint64_t dropped_before = obs::tracer().dropped_roots();
  { obs::Span s("first"); }
  { obs::Span s("second"); }
  { obs::Span s("third"); }
  const std::vector<obs::SpanNode> roots = obs::tracer().snapshot();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].name, "second");  // "first" aged out
  EXPECT_EQ(roots[1].name, "third");
  EXPECT_EQ(obs::tracer().dropped_roots(), dropped_before + 1);
  EXPECT_EQ(obs::counter("obs.trace.dropped_roots").value(),
            counter_before + 1);
  obs::tracer().set_max_roots(obs::Tracer::kDefaultMaxRoots);
}

TEST_F(ObsTest, SequentialRootsAccumulate) {
  obs::set_tracing_enabled(true);
  { obs::Span s("first"); }
  { obs::Span s("second"); }
  const std::vector<obs::SpanNode> roots = obs::tracer().snapshot();
  ASSERT_EQ(roots.size(), 2u);
  EXPECT_EQ(roots[0].name, "first");
  EXPECT_EQ(roots[1].name, "second");
}

TEST_F(ObsTest, DisabledTracingCollectsNothingButStillTimes) {
  obs::Span s("invisible");
  s.attr("k", 1.0);
  s.row("trace", {{"iter", 1.0}});
  EXPECT_GE(s.seconds(), 0.0);
  s.finish();
  EXPECT_TRUE(obs::tracer().snapshot().empty());
}

TEST_F(ObsTest, SpanRecordsOnException) {
  obs::set_tracing_enabled(true);
  try {
    obs::Span s("throwing");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  const std::vector<obs::SpanNode> roots = obs::tracer().snapshot();
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(roots[0].name, "throwing");
}

TEST_F(ObsTest, TimedPhaseAccountsThrowingBody) {
  PhaseTimer timer;
  EXPECT_THROW(
      timed_phase(timer, "explodes",
                  []() -> int { throw std::runtime_error("bang"); }),
      std::runtime_error);
  // The phase exists and recorded a non-negative duration despite the
  // exception (the pre-fix implementation lost it entirely).
  EXPECT_GT(timer.total(), 0.0);
  EXPECT_GE(timer.get("explodes"), 0.0);
  EXPECT_EQ(timer.get("explodes"), timer.total());

  const int out = timed_phase(timer, "returns", [] { return 7; });
  EXPECT_EQ(out, 7);
  EXPECT_GE(timer.get("returns"), 0.0);
}

TEST_F(ObsTest, JsonEscaping) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(obs::json_escape(std::string(1, '\x01')), "\\u0001");

  // Writer escapes; parser unescapes; round trip is identity.
  obs::JsonWriter w;
  const std::string nasty = "quote\" backslash\\ newline\n control\x02 end";
  w.begin_object();
  w.kv("s", nasty);
  w.end_object();
  const obs::JsonValue doc = obs::parse_json(w.str());
  const obs::JsonValue* s = doc.find("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string, nasty);
}

TEST_F(ObsTest, JsonNumberRoundTrip) {
  const double values[] = {0.0,   1.0,        -3.5,       0.1,
                           1e-9,  1.0 / 3.0,  -2.5e17,    12345678.25,
                           9007199254740991.0, 5e-324};
  for (double v : values) {
    obs::JsonWriter w;
    w.begin_array();
    w.value(v);
    w.end_array();
    const obs::JsonValue doc = obs::parse_json(w.str());
    ASSERT_EQ(doc.array.size(), 1u);
    EXPECT_EQ(doc.array[0].number, v) << "for value " << v;
  }
  // Non-finite doubles serialize as null (JSON has no NaN).
  EXPECT_EQ(obs::json_number(std::nan("")), "null");
  EXPECT_EQ(obs::json_number(INFINITY), "null");
}

TEST_F(ObsTest, JsonWriterNestingAndCommas) {
  obs::JsonWriter w;
  w.begin_object();
  w.kv("a", 1);
  w.key("b");
  w.begin_array();
  w.value(true);
  w.null();
  w.begin_object();
  w.kv("c", "d");
  w.end_object();
  w.end_array();
  w.kv("e", 2.5);
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[true,null,{"c":"d"}],"e":2.5})");

  const obs::JsonValue doc = obs::parse_json(w.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("a")->number, 1.0);
  EXPECT_EQ(doc.find("b")->array.size(), 3u);
  EXPECT_EQ(doc.find("b")->array[2].find("c")->string, "d");
}

TEST_F(ObsTest, JsonParserRejectsMalformedInput) {
  EXPECT_THROW(obs::parse_json(""), std::runtime_error);
  EXPECT_THROW(obs::parse_json("{"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("tru"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("\"unterminated"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("01x"), std::runtime_error);
  EXPECT_THROW(obs::parse_json("{\"a\":1\"b\":2}"), std::runtime_error);
}

TEST_F(ObsTest, RunReportStructureIsWellFormed) {
  obs::set_tracing_enabled(true);
  obs::counter("test.report.sims").inc(5);
  obs::gauge("test.report.ratio").set(0.4);
  obs::histogram("test.report.h", {1.0, 2.0}).observe(1.5);
  {
    obs::Span root("run");
    obs::Span child("ilt");
    child.row("trace", {{"iter", 1.0}, {"loss", 2.0}});
  }

  obs::RunReport report("test_tool");
  report.meta("flow", "ours");
  report.section("result", [](obs::JsonWriter& w) {
    w.begin_object();
    w.kv("score", 12.5);
    w.end_object();
  });

  const obs::JsonValue doc = obs::parse_json(report.to_json());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("tool")->string, "test_tool");
  EXPECT_FALSE(doc.find("generated_at")->string.empty());
  EXPECT_EQ(doc.find("meta")->find("flow")->string, "ours");

  const obs::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->find("counters")->find("test.report.sims")->number, 5.0);
  EXPECT_EQ(metrics->find("gauges")->find("test.report.ratio")->number, 0.4);
  const obs::JsonValue* h = metrics->find("histograms")->find("test.report.h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->find("count")->number, 1.0);
  EXPECT_EQ(h->find("buckets")->array.size(), 3u);

  const obs::JsonValue* spans = doc.find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->array.size(), 1u);
  const obs::JsonValue& run = spans->array[0];
  EXPECT_EQ(run.find("name")->string, "run");
  const obs::JsonValue& ilt = run.find("children")->array[0];
  EXPECT_EQ(ilt.find("name")->string, "ilt");
  const obs::JsonValue* trace = ilt.find("series")->find("trace");
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->array[0].find("loss")->number, 2.0);

  EXPECT_EQ(doc.find("result")->find("score")->number, 12.5);
}

TEST_F(ObsTest, ConcurrentRegistryHammering) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  obs::set_tracing_enabled(true);
  obs::Counter& c = obs::counter("test.mt.counter");
  obs::Histogram& h = obs::histogram("test.mt.hist", {0.25, 0.5, 0.75});

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &c, &h] {
      obs::Span span("worker_" + std::to_string(t));
      for (int i = 0; i < kIncrements; ++i) {
        c.inc();
        h.observe(static_cast<double>(i % 4) / 4.0);
        // Lookups from many threads must also be safe.
        obs::counter("test.mt.shared").inc();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(c.value(), static_cast<long long>(kThreads) * kIncrements);
  EXPECT_EQ(obs::counter("test.mt.shared").value(),
            static_cast<long long>(kThreads) * kIncrements);
  EXPECT_EQ(h.count(), static_cast<long long>(kThreads) * kIncrements);
  long long bucket_total = 0;
  for (long long b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.count());
  // One root span per worker thread.
  EXPECT_EQ(obs::tracer().snapshot().size(), static_cast<std::size_t>(kThreads));
}

}  // namespace
