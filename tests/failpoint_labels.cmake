# Included by ctest (TEST_INCLUDE_FILES) after gtest discovery populated
# test_failpoint_TESTS. Discovery can only attach a single label — it
# flattens list-valued PROPERTIES — so the full label set lives here:
# "sanitize" (concurrency payload) plus "faults" (ctest -L faults runs the
# whole failure-path suite on its own).
foreach(t IN LISTS test_failpoint_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "sanitize;faults")
endforeach()
