// Wire-protocol and cluster-component tests (tests run in-process; the
// multi-process drill lives in test_net_cluster.cpp):
//
//   - golden byte vectors pinning the little-endian primitive encodings and
//     the frame header layout (hand-computed, no run-to-pin),
//   - encoded-message digests pinning the field order of every compound
//     message (a codec reorder breaks these before it breaks a cluster),
//   - re-encode round trips plus a corrupt/truncated corpus: every strict
//     prefix of every message must throw, never misparse,
//   - frame I/O over a socketpair: clean EOF vs mid-frame EOF, bad magic/
//     version/type, checksum mismatch, oversized payload, failpoints,
//   - consistent-hash ring properties (determinism, distinct failover
//     order, minimal disruption on membership change),
//   - cache snapshot save/load/corruption and restart warm-start,
//   - ServeDaemon + Client loopback bit-identity against a direct
//     serve::Server, weight hot-swap, transport retries, AsyncClient,
//   - Router forwarding, failover to the surviving shard, swap broadcast,
//     and the server-less admin endpoint.
//
// Flow-running tests use the 32-pixel serving-tier lithography model, so a
// full run is tens of milliseconds (same budget as test_serve.cpp).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/hash.h"
#include "layout/fingerprint.h"
#include "layout/generator.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/frame.h"
#include "net/router.h"
#include "net/snapshot.h"
#include "net/socket.h"
#include "net/wire.h"
#include "nn/resnet.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "serve/admin.h"
#include "serve/cache_key.h"
#include "serve/server.h"
#include "warmstart/warm_start.h"

namespace ldmo::net {
namespace {

// --- shared fixtures -------------------------------------------------------

litho::LithoConfig fast_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 32;
  cfg.pixel_nm = 32.0;  // 32 px x 32 nm = the generator's 1024nm clip
  return cfg;
}

core::FlowEngineConfig fast_engine_config() {
  core::FlowEngineConfig cfg;
  cfg.litho = fast_litho();
  return cfg;
}

serve::ServeConfig fast_serve_config() {
  serve::ServeConfig cfg;
  cfg.engine = fast_engine_config();
  cfg.dispatchers = 2;
  return cfg;
}

layout::Layout generated_layout(std::uint64_t seed) {
  return layout::LayoutGenerator().generate(seed);
}

/// Hand-built layout for golden vectors: every byte of its encoding is a
/// pure function of these literals.
layout::Layout golden_layout() {
  layout::Layout layout;
  layout.name = "golden";
  layout.clip = geometry::Rect::make({0, 0}, {1024, 1024});
  layout.add_pattern(geometry::Rect::make({100, 200}, {160, 260}));
  layout.add_pattern(geometry::Rect::make({300, 200}, {360, 260}));
  return layout;
}

/// Hand-built LdmoResult exercising every codec field (small 2x2 grids).
core::LdmoResult golden_result() {
  core::LdmoResult result;
  result.chosen = {0, 1, 0};
  result.ilt.mask1 = GridF(2, 2, 0.25);
  result.ilt.mask2 = GridF(2, 2, 0.75);
  result.ilt.response = GridF(2, 2, 0.5);
  result.ilt.report.l2 = 12.5;
  result.ilt.report.epe.violation_count = 1;
  result.ilt.report.epe.max_epe_nm = 3.5;
  result.ilt.report.epe.mean_epe_nm = 1.25;
  litho::EpeMeasurement m;
  m.checkpoint.x_nm = 110.0;
  m.checkpoint.y_nm = 230.0;
  m.checkpoint.normal_x = 1.0;
  m.checkpoint.normal_y = 0.0;
  m.checkpoint.pattern_id = 0;
  m.epe_nm = 3.5;
  m.violation = true;
  m.contour_found = true;
  result.ilt.report.epe.measurements.push_back(m);
  result.ilt.report.violations.missing = 1;
  result.ilt.report.violations.bridges = 0;
  result.ilt.report.violations.extra = 2;
  result.ilt.trajectory.push_back({0, 20.0, 3, 1});
  result.ilt.trajectory.push_back({1, 12.5, 1, 0});
  result.ilt.iterations_run = 2;
  result.ilt.aborted_on_violation = false;
  result.ilt.cancelled = false;
  result.candidates_generated = 4;
  result.candidates_tried = 1;
  result.timing.add("generate", 0.5, 0.25);
  result.timing.add("ilt", 2.0, 1.5);
  result.total_seconds = 2.5;
  result.error = FlowError{FlowStage::kUnknown, ""};
  result.degraded = false;
  return result;
}

serve::ServeResponse golden_response() {
  serve::ServeResponse response;
  response.status = serve::ServeStatus::kOk;
  response.result = golden_result();
  response.request_id = 42;
  response.cache_key = 0x1122334455667788ull;
  response.completion_sequence = 7;
  response.queue_seconds = 0.125;
  response.service_seconds = 2.5;
  response.total_seconds = 2.625;
  response.attempts = 1;
  return response;
}

WorkerStats golden_stats() {
  WorkerStats stats;
  stats.config_fingerprint = 0xdeadbeefcafef00dull;
  stats.weights_version = 3;
  stats.predictor = "cnn@v3";
  stats.status_counts[0] = 10;
  stats.status_counts[1] = 20;
  stats.cache_hits = 19;
  stats.cache_misses = 11;
  stats.cache_entries = 6;
  stats.queue_depth = 2;
  return stats;
}

std::uint64_t digest_of(const WireWriter& w) {
  return common::fnv1a(w.bytes().data(), w.size());
}

/// Serialized parameters of a freshly initialized ResNet — a valid weight
/// blob for the kSwapWeights path (the daemon reconstitutes a CnnPredictor
/// from it). `path` is the staging file; the caller owns cleanup.
std::vector<std::uint8_t> fresh_weights_blob(const std::string& path) {
  nn::ResNetRegressor model;
  nn::save_parameters(model.parameters(), path);
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

/// The deterministic slice of an LdmoResult: everything except the measured
/// wall/CPU timings (those differ run to run by construction). Bit-identity
/// assertions compare these bytes.
std::vector<std::uint8_t> deterministic_result_bytes(
    const core::LdmoResult& result) {
  core::LdmoResult copy = result;
  copy.timing = PhaseTimer{};
  copy.total_seconds = 0.0;
  WireWriter w;
  write_result(w, copy);
  return w.take();
}

void send_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, 0);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
}

/// socketpair with RAII ends, for frame I/O tests without a listener.
struct FdPair {
  int a = -1, b = -1;
  FdPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~FdPair() {
    close_a();
    close_b();
  }
  void close_a() {
    if (a >= 0) ::close(a);
    a = -1;
  }
  void close_b() {
    if (b >= 0) ::close(b);
    b = -1;
  }
};

class NetTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::disarm_all(); }
  void TearDown() override {
    fail::disarm_all();
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }
  std::vector<std::string> cleanup_;
};

// --- golden vectors: primitives -------------------------------------------

TEST(WireGolden, PrimitiveEncodingsAreLittleEndian) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0x89ABCDEF);
  w.u64(0x0102030405060708ull);
  w.i32(-2);
  w.f64(1.5);  // IEEE-754: 0x3FF8000000000000
  w.str("hi");
  const std::vector<std::uint8_t> expected = {
      0xAB,                                            // u8
      0x34, 0x12,                                      // u16 LE
      0xEF, 0xCD, 0xAB, 0x89,                          // u32 LE
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // u64 LE
      0xFE, 0xFF, 0xFF, 0xFF,                          // i32 -2
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xF8, 0x3F,  // f64 1.5
      0x02, 0x00, 0x00, 0x00, 'h',  'i',               // str
  };
  EXPECT_EQ(w.bytes(), expected);
}

TEST(WireGolden, PrimitiveRoundTrip) {
  WireWriter w;
  w.u8(7).u16(65535).u32(0).u64(~0ull).i32(-123456).i64(-1).f64(-0.0);
  w.str("").str("layout name with spaces");
  GridF g(2, 3);
  for (std::size_t i = 0; i < g.size(); ++i)
    g[i] = static_cast<double>(i) * 0.5;
  w.grid(g);

  WireReader r(w.bytes(), "test");
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 65535);
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.u64(), ~0ull);
  EXPECT_EQ(r.i32(), -123456);
  EXPECT_EQ(r.i64(), -1);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit-exact, not value-equal
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "layout name with spaces");
  const GridF back = r.grid();
  ASSERT_EQ(back.height(), 2);
  ASSERT_EQ(back.width(), 3);
  for (std::size_t i = 0; i < back.size(); ++i) EXPECT_EQ(back[i], g[i]);
  r.expect_end();
}

TEST(WireGolden, FrameHeaderLayoutIsPinned) {
  // A kPing frame with an empty payload is exactly the 20-byte header; the
  // checksum of zero bytes is the FNV-1a offset basis.
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kPing, {});
  const std::vector<std::uint8_t> expected = {
      'L',  'D',  'M',  'O',                           // magic
      0x01, 0x00,                                      // version 1
      0x03, 0x00,                                      // type kPing
      0x00, 0x00, 0x00, 0x00,                          // payload length
      0x25, 0x23, 0x22, 0x84, 0xE4, 0x9C, 0xF2, 0xCB,  // fnv1a("") LE
  };
  EXPECT_EQ(frame, expected);
}

TEST(WireGolden, FrameChecksumCoversPayload) {
  const std::vector<std::uint8_t> payload = {0xDE, 0xAD, 0xBE, 0xEF};
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kStats, payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());
  WireReader r(frame, "test");
  r.u32();  // magic
  EXPECT_EQ(r.u16(), kProtocolVersion);
  EXPECT_EQ(r.u16(), static_cast<std::uint16_t>(MessageType::kStats));
  EXPECT_EQ(r.u32(), payload.size());
  EXPECT_EQ(r.u64(), common::fnv1a(payload.data(), payload.size()));
}

// --- golden vectors: compound message digests ------------------------------
//
// These digests pin the exact encoded bytes of each message built from the
// golden_* literals above. They fail on ANY codec change — field order,
// width, added or removed fields. That is the point: the wire format is
// frozen at version 1; a deliberate format change must bump
// kProtocolVersion (and these constants) in the same commit.

TEST(WireGolden, LayoutMessageBytesAreStable) {
  WireWriter w;
  write_layout(w, golden_layout());
  EXPECT_EQ(digest_of(w), 0x835e6ddfd7525fc9ull)
      << "encoded layout bytes changed — wire format break";
}

TEST(WireGolden, ConfigMessageBytesAreStable) {
  WireWriter w;
  write_config(w, fast_engine_config());
  EXPECT_EQ(digest_of(w), 0xa446625d7e9e9e0full)
      << "encoded config bytes changed — wire format break";
}

TEST(WireGolden, RequestMessageBytesAreStable) {
  serve::ServeRequest request;
  request.layout = golden_layout();
  request.priority = serve::Priority::kInteractive;
  request.deadline_seconds = 30.0;
  WireWriter w;
  write_request(w, request);
  EXPECT_EQ(digest_of(w), 0xa16e6494eab7dcd6ull)
      << "encoded request bytes changed — wire format break";
}

TEST(WireGolden, ResultMessageBytesAreStable) {
  WireWriter w;
  write_result(w, golden_result());
  EXPECT_EQ(digest_of(w), 0xd09dd1d153b8839eull)
      << "encoded result bytes changed — wire format break";
}

TEST(WireGolden, ResponseMessageBytesAreStable) {
  WireWriter w;
  write_response(w, golden_response());
  EXPECT_EQ(digest_of(w), 0xd1353112d5a242b4ull)
      << "encoded response bytes changed — wire format break";
}

TEST(WireGolden, StatsMessageBytesAreStable) {
  WireWriter w;
  write_stats(w, golden_stats());
  EXPECT_EQ(digest_of(w), 0x160d0ac1b79ca440ull)
      << "encoded stats bytes changed — wire format break";
}

// --- round trips and the corrupt/truncated corpus --------------------------

/// The corrupt corpus, shared by every message type below: every strict
/// prefix must throw (truncation sweep), a flipped tag must throw, and one
/// trailing byte must fail expect_end — never a misparse, never a crash.
template <typename ReadFn>
void check_corrupt_corpus(const std::vector<std::uint8_t>& bytes,
                          ReadFn read_fn) {
  // Every strict prefix throws a kNet FlowException — never a misparse,
  // never a crash.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    WireReader r(bytes.data(), len, "truncated");
    bool threw = false;
    try {
      (void)read_fn(r);
      r.expect_end();
    } catch (const FlowException& e) {
      threw = true;
      EXPECT_EQ(e.stage(), FlowStage::kNet);
    }
    EXPECT_TRUE(threw) << "prefix of " << len << " bytes decoded cleanly";
  }
  // Flipped tag byte: loud mismatch, not a misparse.
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[4] ^= 0xFF;  // first tag character (after the u32 length prefix)
    WireReader r(bad, "bad-tag");
    EXPECT_THROW((void)read_fn(r), FlowException);
  }
  // Trailing garbage after a well-formed message: expect_end throws.
  {
    std::vector<std::uint8_t> extra = bytes;
    extra.push_back(0x5A);
    WireReader r(extra, "trailing");
    (void)read_fn(r);
    EXPECT_THROW(r.expect_end(), FlowException);
  }
}

TEST(WireCorpus, LayoutRoundTripAndCorpus) {
  WireWriter w;
  write_layout(w, golden_layout());
  {
    WireReader r(w.bytes(), "test");
    const layout::Layout decoded = read_layout(r);
    r.expect_end();
    EXPECT_EQ(decoded.name, "golden");
    EXPECT_EQ(decoded.pattern_count(), 2);
    WireWriter again;
    write_layout(again, decoded);
    EXPECT_EQ(again.bytes(), w.bytes());
    EXPECT_EQ(layout::fingerprint(decoded),
              layout::fingerprint(golden_layout()));
  }
  check_corrupt_corpus(w.bytes(),
                       [](WireReader& r) { return read_layout(r); });
}

TEST(WireCorpus, ConfigRoundTripAndCorpus) {
  WireWriter w;
  write_config(w, fast_engine_config());
  {
    WireReader r(w.bytes(), "test");
    const core::FlowEngineConfig decoded = read_config(r);
    r.expect_end();
    WireWriter again;
    write_config(again, decoded);
    EXPECT_EQ(again.bytes(), w.bytes());
    // The fingerprint a server would compute from the decoded config
    // matches the sender's — the cluster-wide cache-key contract.
    EXPECT_EQ(serve::config_fingerprint(decoded, "p"),
              serve::config_fingerprint(fast_engine_config(), "p"));
  }
  check_corrupt_corpus(w.bytes(),
                       [](WireReader& r) { return read_config(r); });
}

TEST(WireCorpus, RequestRoundTripAndCorpus) {
  serve::ServeRequest request;
  request.layout = golden_layout();
  request.priority = serve::Priority::kBatch;
  request.deadline_seconds = 5.0;
  WireWriter w;
  write_request(w, request);
  {
    WireReader r(w.bytes(), "test");
    const serve::ServeRequest decoded = read_request(r);
    r.expect_end();
    EXPECT_EQ(decoded.priority, serve::Priority::kBatch);
    EXPECT_EQ(decoded.deadline_seconds, 5.0);
    WireWriter again;
    write_request(again, decoded);
    EXPECT_EQ(again.bytes(), w.bytes());
  }
  check_corrupt_corpus(w.bytes(),
                       [](WireReader& r) { return read_request(r); });
}

TEST(WireCorpus, ResultRoundTripAndCorpus) {
  WireWriter w;
  write_result(w, golden_result());
  {
    WireReader r(w.bytes(), "test");
    const core::LdmoResult decoded = read_result(r);
    r.expect_end();
    WireWriter again;
    write_result(again, decoded);
    EXPECT_EQ(again.bytes(), w.bytes());  // bit-identical masks included
    EXPECT_EQ(decoded.ilt.report.epe.measurements.size(), 1u);
    EXPECT_EQ(decoded.timing.get("ilt"), 2.0);
    EXPECT_EQ(decoded.timing.get_cpu("generate"), 0.25);
  }
  check_corrupt_corpus(w.bytes(),
                       [](WireReader& r) { return read_result(r); });
}

TEST(WireCorpus, ResponseRoundTripAndCorpus) {
  WireWriter w;
  write_response(w, golden_response());
  {
    WireReader r(w.bytes(), "test");
    const serve::ServeResponse decoded = read_response(r);
    r.expect_end();
    EXPECT_EQ(decoded.status, serve::ServeStatus::kOk);
    EXPECT_EQ(decoded.request_id, 42u);
    WireWriter again;
    write_response(again, decoded);
    EXPECT_EQ(again.bytes(), w.bytes());
  }
  check_corrupt_corpus(w.bytes(),
                       [](WireReader& r) { return read_response(r); });
}

TEST(WireCorpus, FailedResponseTravelsWithoutResult) {
  serve::ServeResponse response;
  response.status = serve::ServeStatus::kFailed;
  response.error = FlowError{FlowStage::kIlt, "diverged"};
  response.attempts = 3;
  WireWriter w;
  write_response(w, response);
  WireReader r(w.bytes(), "test");
  const serve::ServeResponse decoded = read_response(r);
  r.expect_end();
  EXPECT_EQ(decoded.status, serve::ServeStatus::kFailed);
  EXPECT_EQ(decoded.error.stage, FlowStage::kIlt);
  EXPECT_EQ(decoded.error.message, "diverged");
  EXPECT_EQ(decoded.attempts, 3);
  // No embedded result: the failed response is compact.
  EXPECT_LT(w.size(), 200u);
}

TEST(WireCorpus, StatsRoundTripAndCorpus) {
  WireWriter w;
  write_stats(w, golden_stats());
  {
    WireReader r(w.bytes(), "test");
    const WorkerStats decoded = read_stats(r);
    r.expect_end();
    EXPECT_EQ(decoded.config_fingerprint, 0xdeadbeefcafef00dull);
    EXPECT_EQ(decoded.predictor, "cnn@v3");
    WireWriter again;
    write_stats(again, decoded);
    EXPECT_EQ(again.bytes(), w.bytes());
  }
  check_corrupt_corpus(w.bytes(),
                       [](WireReader& r) { return read_stats(r); });
}

TEST(WireCorpus, OutOfRangeEnumsAreRejected) {
  {  // priority 7
    WireWriter w;
    write_layout(w.str("rq1"), golden_layout());
    w.u8(7).f64(0.0);
    WireReader r(w.bytes(), "test");
    EXPECT_THROW((void)read_request(r), FlowException);
  }
  {  // serve status 200
    WireWriter w;
    w.str("rp1").u8(200);
    WireReader r(w.bytes(), "test");
    EXPECT_THROW((void)read_response(r), FlowException);
  }
}

TEST(WireCorpus, HostileLengthsAreRejectedBeforeAllocation) {
  {  // implausible grid shape
    WireWriter w;
    w.i32(1 << 20).i32(2);
    WireReader r(w.bytes(), "test");
    EXPECT_THROW((void)r.grid(), FlowException);
  }
  {  // plausible shape, body longer than the remaining payload
    WireWriter w;
    w.i32(100).i32(100);
    WireReader r(w.bytes(), "test");
    EXPECT_THROW((void)r.grid(), FlowException);
  }
  {  // string length beyond the payload
    WireWriter w;
    w.u32(0xFFFFFFFF);
    WireReader r(w.bytes(), "test");
    EXPECT_THROW((void)r.str(), FlowException);
  }
  {  // layout pattern count beyond the payload
    WireWriter w;
    w.str("ly1").str("n");
    w.i64(0).i64(0).i64(8).i64(8);
    w.u32(0x00FFFFFF);
    WireReader r(w.bytes(), "test");
    EXPECT_THROW((void)read_layout(r), FlowException);
  }
}

TEST(WireCorpus, DecodeErrorsCarryContextAndOffset) {
  WireWriter w;
  w.u32(5);  // truncated string: length says 5, zero bytes follow
  WireReader r(w.bytes(), "127.0.0.1:4021");
  try {
    (void)r.str();
    FAIL() << "decode did not throw";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.stage(), FlowStage::kNet);
    const std::string what = e.what();
    EXPECT_NE(what.find("127.0.0.1:4021"), std::string::npos) << what;
    EXPECT_NE(what.find("at byte 4"), std::string::npos) << what;
  }
}

// --- frame I/O over a socketpair -------------------------------------------

TEST_F(NetTest, FrameRoundTripOverSocket) {
  FdPair fds;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  write_frame(fds.a, MessageType::kSubmitRequest, payload, "a");
  const std::optional<Frame> frame = read_frame(fds.b, "b");
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MessageType::kSubmitRequest);
  EXPECT_EQ(frame->payload, payload);
}

TEST_F(NetTest, CleanEofAtFrameBoundaryIsNotAnError) {
  FdPair fds;
  write_frame(fds.a, MessageType::kPing, {}, "a");
  fds.close_a();
  EXPECT_TRUE(read_frame(fds.b, "b").has_value());   // the ping
  EXPECT_FALSE(read_frame(fds.b, "b").has_value());  // orderly close
}

TEST_F(NetTest, MidFrameEofThrowsWithPeerAndOffset) {
  FdPair fds;
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kStats, {9, 9, 9});
  send_all(fds.a, {frame.begin(), frame.begin() + 10});  // half a header
  fds.close_a();
  try {
    (void)read_frame(fds.b, "worker-7");
    FAIL() << "mid-frame EOF did not throw";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.stage(), FlowStage::kNet);
    EXPECT_NE(std::string(e.what()).find("worker-7"), std::string::npos);
  }
}

TEST_F(NetTest, MidPayloadEofThrows) {
  FdPair fds;
  const std::vector<std::uint8_t> frame =
      encode_frame(MessageType::kStats, {9, 9, 9});
  send_all(fds.a, {frame.begin(), frame.end() - 1});  // payload short by one
  fds.close_a();
  EXPECT_THROW((void)read_frame(fds.b, "b"), FlowException);
}

TEST_F(NetTest, BadMagicVersionTypeAndChecksumAreRejected) {
  const std::vector<std::uint8_t> good =
      encode_frame(MessageType::kPong, {7});
  struct Corruption {
    std::size_t offset;
    const char* what;
  };
  // magic byte, version byte, type byte (99), payload byte (checksum
  // mismatch).
  const std::vector<Corruption> corpus = {
      {0, "magic"}, {4, "version"}, {6, "type"}, {20, "checksum"}};
  for (const Corruption& c : corpus) {
    FdPair fds;
    std::vector<std::uint8_t> bad = good;
    bad[c.offset] ^= 0x66;
    send_all(fds.a, bad);
    EXPECT_THROW((void)read_frame(fds.b, "b"), FlowException) << c.what;
  }
}

TEST_F(NetTest, OversizedPayloadIsRejectedFromTheHeaderAlone) {
  FdPair fds;
  WireWriter header;
  for (char c : kFrameMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u16(kProtocolVersion);
  header.u16(static_cast<std::uint16_t>(MessageType::kStats));
  header.u32(static_cast<std::uint32_t>(kMaxPayloadBytes) + 1);
  header.u64(0);
  send_all(fds.a, header.bytes());
  // No payload bytes are ever sent; the reader must reject on the header.
  EXPECT_THROW((void)read_frame(fds.b, "b"), FlowException);
}

TEST_F(NetTest, FrameFailpointsThrowAsNetFaults) {
  FdPair fds;
  fail::arm("net.frame.write", fail::once());
  EXPECT_THROW(write_frame(fds.a, MessageType::kPing, {}, "a"),
               FlowException);
  write_frame(fds.a, MessageType::kPing, {}, "a");  // disarmed again
  fail::arm("net.frame.read", fail::once());
  EXPECT_THROW((void)read_frame(fds.b, "b"), FlowException);
  EXPECT_TRUE(read_frame(fds.b, "b").has_value());
}

TEST_F(NetTest, ErrorFrameCarriesStageAndMessage) {
  FdPair fds;
  send_error_frame(fds.a, "a", static_cast<int>(FlowStage::kIlt),
                   "diverged badly");
  const std::optional<Frame> frame = read_frame(fds.b, "b");
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, MessageType::kError);
  WireReader r(frame->payload, "b");
  EXPECT_EQ(r.u8(), static_cast<std::uint8_t>(FlowStage::kIlt));
  EXPECT_EQ(r.str(), "diverged badly");
  r.expect_end();
}

// --- consistent-hash ring ---------------------------------------------------

TEST(HashRingTest, LookupIsDeterministicAcrossInstances) {
  const std::vector<int> ports = {5001, 5002, 5003};
  HashRing a(ports, 64), b(ports, 64);
  for (std::uint64_t key = 0; key < 200; ++key)
    EXPECT_EQ(a.lookup(key * 0x9E3779B97F4A7C15ull),
              b.lookup(key * 0x9E3779B97F4A7C15ull));
}

TEST(HashRingTest, LookupNReturnsEveryPortOnceInFailoverOrder) {
  HashRing ring({5001, 5002, 5003}, 64);
  for (std::uint64_t key = 1; key < 50; ++key) {
    const std::vector<int> order = ring.lookup_n(key * 7919, 3);
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], ring.lookup(key * 7919));
    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{5001, 5002, 5003}));
  }
}

TEST(HashRingTest, EveryPortOwnsAShareOfTheKeySpace) {
  HashRing ring({5001, 5002, 5003}, 64);
  int hits[3] = {0, 0, 0};
  for (std::uint64_t key = 0; key < 300; ++key)
    ++hits[ring.lookup(HashRing::route_key(1, key)) - 5001];
  // With 64 replicas each shard owns roughly a third; require at least a
  // tenth to catch a degenerate ring without flaking on hash variance.
  for (int h : hits) EXPECT_GT(h, 30);
}

TEST(HashRingTest, RemovingAShardOnlyMovesItsOwnKeys) {
  // The consistent-hashing contract: dropping port 5003 must not move any
  // key that 5001 or 5002 already owned. This is exact, not statistical —
  // removing a shard's points cannot change lower_bound for keys whose
  // first >= point belonged to a surviving shard.
  HashRing full({5001, 5002, 5003}, 64);
  HashRing survivors({5001, 5002}, 64);
  int moved = 0, kept = 0;
  for (std::uint64_t key = 0; key < 500; ++key) {
    const std::uint64_t k = HashRing::route_key(7, key);
    if (full.lookup(k) == 5003) {
      ++moved;
      continue;
    }
    EXPECT_EQ(survivors.lookup(k), full.lookup(k));
    ++kept;
  }
  EXPECT_GT(moved, 0);  // the dead shard did own something
  EXPECT_GT(kept, 0);
}

TEST(HashRingTest, RouteKeySeparatesConfigAndLayout) {
  EXPECT_EQ(HashRing::route_key(1, 2), HashRing::route_key(1, 2));
  EXPECT_NE(HashRing::route_key(1, 2), HashRing::route_key(2, 1));
  EXPECT_NE(HashRing::route_key(0, 2), HashRing::route_key(1, 2));
}

// --- cache snapshot ---------------------------------------------------------

TEST_F(NetTest, SnapshotRoundTripPreservesEntriesAndOrder) {
  const std::string path = "test_net_snapshot.bin";
  cleanup_.push_back(path);
  cleanup_.push_back(path + ".tmp");
  CacheSnapshot snapshot;
  snapshot.config_fingerprint = 0xABCDULL;
  snapshot.entries.emplace_back(11, golden_result());
  core::LdmoResult second = golden_result();
  second.total_seconds = 9.0;
  snapshot.entries.emplace_back(22, second);
  save_cache_snapshot(path, snapshot);

  const std::optional<CacheSnapshot> loaded = load_cache_snapshot(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->config_fingerprint, 0xABCDULL);
  ASSERT_EQ(loaded->entries.size(), 2u);
  EXPECT_EQ(loaded->entries[0].first, 11u);   // LRU-first order preserved
  EXPECT_EQ(loaded->entries[1].first, 22u);
  // Bit-identical result round trip through the file.
  WireWriter a, b;
  write_result(a, snapshot.entries[1].second);
  write_result(b, loaded->entries[1].second);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST_F(NetTest, SnapshotNeverPersistsDegradedResults) {
  // The live server refuses to cache degraded results; the snapshot must
  // not resurrect them across a restart either (ISSUE-10 satellite 3).
  const std::string path = "test_net_snapshot_degraded.bin";
  cleanup_.push_back(path);
  cleanup_.push_back(path + ".tmp");
  CacheSnapshot snapshot;
  snapshot.config_fingerprint = 7;
  snapshot.entries.emplace_back(11, golden_result());
  core::LdmoResult degraded = golden_result();
  degraded.degraded = true;
  degraded.error = FlowError{FlowStage::kPredict, "predictor down"};
  snapshot.entries.emplace_back(22, degraded);
  snapshot.entries.emplace_back(33, golden_result());
  save_cache_snapshot(path, snapshot);

  const std::optional<CacheSnapshot> loaded = load_cache_snapshot(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->entries.size(), 2u);  // header count matches records
  EXPECT_EQ(loaded->entries[0].first, 11u);
  EXPECT_EQ(loaded->entries[1].first, 33u);
  for (const auto& [key, result] : loaded->entries)
    EXPECT_FALSE(result.degraded);
}

TEST_F(NetTest, MissingSnapshotIsAColdStartNotAnError) {
  EXPECT_FALSE(load_cache_snapshot("no_such_snapshot.bin").has_value());
}

TEST_F(NetTest, CorruptSnapshotsThrowWithPathAttribution) {
  const std::string path = "test_net_snapshot_corrupt.bin";
  cleanup_.push_back(path);
  {  // garbage bytes
    std::ofstream out(path, std::ios::binary);
    out << "this is not a snapshot";
  }
  EXPECT_THROW((void)load_cache_snapshot(path), FlowException);

  {  // valid snapshot, then truncated mid-entry
    CacheSnapshot snapshot;
    snapshot.config_fingerprint = 1;
    snapshot.entries.emplace_back(5, golden_result());
    save_cache_snapshot(path, snapshot);
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 40u);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  try {
    (void)load_cache_snapshot(path);
    FAIL() << "truncated snapshot did not throw";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.stage(), FlowStage::kNet);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

// --- daemon + client loopback ----------------------------------------------

TEST_F(NetTest, DaemonServesBitIdenticalToDirectServer) {
  const layout::Layout layout = generated_layout(301);

  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon daemon(dcfg);
  Client client(ClientConfig{.port = daemon.port()});
  serve::ServeRequest request;
  request.layout = layout;
  const serve::ServeResponse over_wire = client.submit(request);
  ASSERT_EQ(over_wire.status, serve::ServeStatus::kOk);

  serve::Server direct(fast_serve_config());
  serve::ServeRequest again;
  again.layout = layout;
  const serve::ServeResponse local = direct.submit(std::move(again))
                                         .response.get();
  ASSERT_EQ(local.status, serve::ServeStatus::kOk);

  // The serving determinism contract extends across the wire: the decoded
  // result is bit-identical (masks, scores, report — everything but the
  // measured timings) to a local run.
  EXPECT_EQ(deterministic_result_bytes(over_wire.result),
            deterministic_result_bytes(local.result));
  EXPECT_EQ(over_wire.cache_key, local.cache_key);
}

TEST_F(NetTest, RepeatSubmitHitsTheWorkerCache) {
  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon daemon(dcfg);
  Client client(ClientConfig{.port = daemon.port()});
  serve::ServeRequest request;
  request.layout = generated_layout(302);
  EXPECT_EQ(client.submit(request).status, serve::ServeStatus::kOk);
  const serve::ServeResponse cached = client.submit(request);
  EXPECT_EQ(cached.status, serve::ServeStatus::kCached);
}

TEST_F(NetTest, PingAndStatsReportWorkerIdentity) {
  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon daemon(dcfg);
  Client client(ClientConfig{.port = daemon.port()});
  EXPECT_TRUE(client.ping());
  const WorkerStats stats = client.stats();
  const std::shared_ptr<serve::Server> server = daemon.server();
  EXPECT_EQ(stats.config_fingerprint, server->config_fingerprint());
  EXPECT_EQ(stats.predictor, server->predictor_name());
  EXPECT_EQ(stats.weights_version, 0u);
}

TEST_F(NetTest, EmptyBlobSwapKeepsTheWarmCache) {
  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon daemon(dcfg);
  Client client(ClientConfig{.port = daemon.port()});
  serve::ServeRequest request;
  request.layout = generated_layout(303);
  ASSERT_EQ(client.submit(request).status, serve::ServeStatus::kOk);
  const std::uint64_t fp_before = client.stats().config_fingerprint;

  // Rolling restart: an empty blob keeps the current weights, so the ack
  // reports the version that stays active (0 — nothing was ever pushed).
  const long long swaps_before = obs::counter("net.daemon.swaps").value();
  EXPECT_EQ(client.swap_weights(5, {}), 0u);
  EXPECT_EQ(daemon.weights_version(), 0u);
  EXPECT_EQ(obs::counter("net.daemon.swaps").value(), swaps_before + 1);

  // Identity unchanged -> cache was handed across the blue/green swap.
  EXPECT_EQ(client.stats().config_fingerprint, fp_before);
  EXPECT_EQ(client.submit(request).status, serve::ServeStatus::kCached);
}

TEST_F(NetTest, RealWeightSwapChangesIdentityAndRetiresTheCache) {
  const std::string staging = "test_net_swap_weights.bin";
  cleanup_.push_back(staging);
  const std::vector<std::uint8_t> blob = fresh_weights_blob(staging);
  ASSERT_FALSE(blob.empty());

  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon daemon(dcfg);
  Client client(ClientConfig{.port = daemon.port()});
  serve::ServeRequest request;
  request.layout = generated_layout(306);
  ASSERT_EQ(client.submit(request).status, serve::ServeStatus::kOk);
  const std::uint64_t fp_before = client.stats().config_fingerprint;

  EXPECT_EQ(client.swap_weights(5, blob), 5u);
  EXPECT_EQ(daemon.weights_version(), 5u);
  const WorkerStats stats = client.stats();
  // The version rides in the predictor name, so the fingerprint — and with
  // it every cache key — changed: stale results are unreachable, not wrong.
  EXPECT_EQ(stats.predictor, "cnn@v5");
  EXPECT_NE(stats.config_fingerprint, fp_before);
  EXPECT_EQ(stats.cache_entries, 0u);  // no handoff across an identity change
}

/// Serialized MaskNet weights at the serving-tier 32px grid — a valid
/// warm-start blob for the swap verb's optional warm section.
std::vector<std::uint8_t> fresh_warm_blob(const std::string& path) {
  warmstart::MaskNetConfig cfg;
  cfg.grid_size = 32;
  warmstart::MaskWarmStart warm(cfg);
  warm.save(path);
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST_F(NetTest, WarmStartSwapRetiresWarmStartDependentCacheKeys) {
  // Regression test for the swap bug: handle_swap used to replace only the
  // predictor, leaving the worker on its old warm-start MaskNet after a
  // weight push. The warm blob must flow through the same versioned-
  // fingerprint path, so warm-start-dependent cache keys retire.
  const std::string staging = "test_net_warm_swap.bin";
  cleanup_.push_back(staging);
  const std::vector<std::uint8_t> warm_blob = fresh_warm_blob(staging);
  ASSERT_FALSE(warm_blob.empty());

  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  dcfg.warm_net.grid_size = 32;
  ServeDaemon daemon(dcfg);
  Client client(ClientConfig{.port = daemon.port()});
  serve::ServeRequest request;
  request.layout = generated_layout(307);
  ASSERT_EQ(client.submit(request).status, serve::ServeStatus::kOk);
  ASSERT_EQ(client.submit(request).status, serve::ServeStatus::kCached);
  const std::uint64_t fp_before = client.stats().config_fingerprint;

  // Push ONLY warm-start weights (empty CNN blob = keep current weights).
  // The weights version stays 0, but the warm model's weight fingerprint
  // feeds the config fingerprint — the cache cannot be handed across.
  EXPECT_EQ(client.swap_weights(0, {}, warm_blob), 0u);
  const WorkerStats stats = client.stats();
  EXPECT_NE(stats.config_fingerprint, fp_before);
  EXPECT_EQ(stats.cache_entries, 0u);
  const std::shared_ptr<serve::Server> server = daemon.server();
  ASSERT_NE(server->config().warm_start, nullptr);
  EXPECT_TRUE(server->config().engine.flow.warm_start.enabled);
  EXPECT_NE(server->config().warm_start->version(), 0u);

  // The old cached result is unreachable; the warm-started run recomputes
  // and re-caches under the new fingerprint.
  EXPECT_EQ(client.submit(request).status, serve::ServeStatus::kOk);
  EXPECT_EQ(client.submit(request).status, serve::ServeStatus::kCached);
}

TEST_F(NetTest, CombinedCnnAndWarmSwapCarriesBothModels) {
  const std::string cnn_staging = "test_net_combined_cnn.bin";
  const std::string warm_staging = "test_net_combined_warm.bin";
  cleanup_.push_back(cnn_staging);
  cleanup_.push_back(warm_staging);
  const std::vector<std::uint8_t> cnn_blob = fresh_weights_blob(cnn_staging);
  const std::vector<std::uint8_t> warm_blob = fresh_warm_blob(warm_staging);

  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  dcfg.warm_net.grid_size = 32;
  ServeDaemon daemon(dcfg);
  Client client(ClientConfig{.port = daemon.port()});

  EXPECT_EQ(client.swap_weights(6, cnn_blob, warm_blob), 6u);
  EXPECT_EQ(daemon.weights_version(), 6u);
  const WorkerStats stats = client.stats();
  EXPECT_EQ(stats.predictor, "cnn@v6");
  const std::shared_ptr<serve::Server> server = daemon.server();
  ASSERT_NE(server->config().warm_start, nullptr);
  EXPECT_EQ(server->config().warm_start->name(), "masknet");

  // The worker serves (warm-start seeded, CNN ranked) after the swap.
  serve::ServeRequest request;
  request.layout = generated_layout(308);
  EXPECT_EQ(client.submit(request).status, serve::ServeStatus::kOk);
}

TEST_F(NetTest, DaemonRestartRestoresCacheFromSnapshot) {
  const std::string path = "test_net_daemon_snapshot.bin";
  cleanup_.push_back(path);
  cleanup_.push_back(path + ".tmp");
  const layout::Layout layout = generated_layout(304);

  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  dcfg.snapshot_path = path;
  {
    ServeDaemon daemon(dcfg);
    Client client(ClientConfig{.port = daemon.port()});
    serve::ServeRequest request;
    request.layout = layout;
    ASSERT_EQ(client.submit(request).status, serve::ServeStatus::kOk);
  }  // stop() writes the snapshot

  ServeDaemon reborn(dcfg);
  EXPECT_GE(reborn.restored_entries(), 1u);
  Client client(ClientConfig{.port = reborn.port()});
  serve::ServeRequest request;
  request.layout = layout;
  EXPECT_EQ(client.submit(request).status, serve::ServeStatus::kCached);
}

TEST_F(NetTest, ClientRetriesAbsorbAnInjectedFrameFault) {
  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon daemon(dcfg);
  Client client(ClientConfig{.port = daemon.port()});
  const long long retries_before =
      obs::counter("net.client.retries").value();

  fail::arm("net.frame.write", fail::once());
  serve::ServeRequest request;
  request.layout = generated_layout(305);
  const serve::ServeResponse response = client.submit(request);
  EXPECT_TRUE(response.ok());
  EXPECT_GE(obs::counter("net.client.retries").value(), retries_before + 1);
}

TEST_F(NetTest, ConnectRetriesAbsorbAnInjectedConnectFault) {
  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon daemon(dcfg);
  Client client(ClientConfig{.port = daemon.port()});
  fail::arm("net.connect", fail::once());
  EXPECT_TRUE(client.ping());  // second connect attempt succeeds
}

TEST_F(NetTest, ExhaustedRetriesSurfaceTheTransportFault) {
  // No daemon on this port: grab one ephemerally and release it.
  int dead_port;
  {
    TcpListener probe(0);
    dead_port = probe.port();
  }
  Client client(ClientConfig{
      .port = dead_port, .connect_attempts = 2,
      .connect_retry_seconds = 0.01, .net_retries = 1});
  serve::ServeRequest request;
  request.layout = golden_layout();
  try {
    (void)client.submit(request);
    FAIL() << "submit to a dead port did not throw";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.stage(), FlowStage::kNet);
    EXPECT_NE(std::string(e.what())
                  .find("127.0.0.1:" + std::to_string(dead_port)),
              std::string::npos);
  }
}

TEST_F(NetTest, AsyncClientPumpsConcurrentSubmits) {
  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon daemon(dcfg);
  AsyncClient client(ClientConfig{.port = daemon.port()}, 3);
  std::vector<std::future<serve::ServeResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    serve::ServeRequest request;
    request.layout = generated_layout(310 + static_cast<std::uint64_t>(i % 2));
    futures.push_back(client.submit(std::move(request)));
  }
  int ok = 0;
  for (auto& f : futures) ok += f.get().ok() ? 1 : 0;
  EXPECT_EQ(ok, 6);
}

TEST_F(NetTest, UnexpectedFrameTypeGetsAnErrorAnswer) {
  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon daemon(dcfg);
  Socket sock = connect_loopback(daemon.port(), 10.0, 20);
  // A daemon never expects a kPong out of the blue.
  write_frame(sock.fd(), MessageType::kPong, {}, "test");
  const std::optional<Frame> answer = read_frame(sock.fd(), "test");
  ASSERT_TRUE(answer.has_value());
  EXPECT_EQ(answer->type, MessageType::kError);
}

// --- router -----------------------------------------------------------------

TEST_F(NetTest, RouterSpreadsRequestsAndSurvivesAWorkerKill) {
  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  auto worker_a = std::make_unique<ServeDaemon>(dcfg);
  auto worker_b = std::make_unique<ServeDaemon>(dcfg);
  const int port_a = worker_a->port();
  const int port_b = worker_b->port();

  RouterConfig rcfg;
  rcfg.worker_ports = {port_a, port_b};
  Router router(rcfg);
  Client client(ClientConfig{.port = router.port()});

  const std::uint64_t config_fp = client.stats().config_fingerprint;
  ASSERT_NE(config_fp, 0u);

  // Find seeds that route to each shard, so both assertions below are
  // deterministic for whatever ephemeral ports this run drew.
  HashRing ring({port_a, port_b}, rcfg.ring_replicas);
  std::uint64_t seed_a = 0, seed_b = 0;
  for (std::uint64_t seed = 400; seed_a == 0 || seed_b == 0; ++seed) {
    const layout::Layout layout = generated_layout(seed);
    const int target = ring.lookup(
        HashRing::route_key(config_fp, layout::fingerprint(layout)));
    if (target == port_a && seed_a == 0) seed_a = seed;
    if (target == port_b && seed_b == 0) seed_b = seed;
  }

  const auto forwarded = [](int port) {
    return obs::counter("net.router.shard." + std::to_string(port) +
                        ".forwarded")
        .value();
  };
  const long long a_before = forwarded(port_a);
  const long long b_before = forwarded(port_b);

  serve::ServeRequest to_a, to_b;
  to_a.layout = generated_layout(seed_a);
  to_b.layout = generated_layout(seed_b);
  EXPECT_TRUE(client.submit(to_a).ok());
  EXPECT_TRUE(client.submit(to_b).ok());
  EXPECT_EQ(forwarded(port_a), a_before + 1);
  EXPECT_EQ(forwarded(port_b), b_before + 1);

  // Kill the shard that owns seed_a; the router must fail the request over
  // to the survivor — zero lost requests.
  const long long failovers_before =
      obs::counter("net.router.failovers").value();
  worker_a->stop();
  worker_a.reset();
  serve::ServeRequest again;
  again.layout = generated_layout(seed_a);
  const serve::ServeResponse response = client.submit(again);
  EXPECT_TRUE(response.ok());
  EXPECT_GE(obs::counter("net.router.failovers").value(),
            failovers_before + 1);
  EXPECT_EQ(forwarded(port_a), a_before + 1);  // dead shard got nothing new
}

TEST_F(NetTest, RouterWithAllWorkersDownAnswersWithAnError) {
  int dead_port;
  {
    TcpListener probe(0);
    dead_port = probe.port();
  }
  RouterConfig rcfg;
  rcfg.worker_ports = {dead_port};
  rcfg.worker_net_retries = 0;
  Router router(rcfg);
  Client client(
      ClientConfig{.port = router.port(), .net_retries = 0});
  serve::ServeRequest request;
  request.layout = golden_layout();
  const long long exhausted_before =
      obs::counter("net.router.exhausted").value();
  EXPECT_THROW((void)client.submit(request), FlowException);
  EXPECT_EQ(obs::counter("net.router.exhausted").value(),
            exhausted_before + 1);
}

TEST_F(NetTest, RouterBroadcastsWeightSwaps) {
  const std::string staging = "test_net_router_swap_weights.bin";
  cleanup_.push_back(staging);
  const std::vector<std::uint8_t> blob = fresh_weights_blob(staging);

  DaemonConfig dcfg;
  dcfg.serve = fast_serve_config();
  ServeDaemon worker_a(dcfg), worker_b(dcfg);
  RouterConfig rcfg;
  rcfg.worker_ports = {worker_a.port(), worker_b.port()};
  Router router(rcfg);
  Client client(ClientConfig{.port = router.port()});
  EXPECT_EQ(client.swap_weights(9, blob), 9u);
  EXPECT_EQ(worker_a.weights_version(), 9u);
  EXPECT_EQ(worker_b.weights_version(), 9u);
}

// --- server-less admin endpoint (the router's scrape target) ----------------

TEST_F(NetTest, ServerlessAdminServesRegistryBackedEndpoints) {
  obs::counter("net.frame.writes").inc();  // ensure the family exists
  serve::AdminConfig cfg;
  cfg.enabled = true;
  serve::AdminServer admin(cfg, "router");
  ASSERT_GT(admin.port(), 0);

  const serve::HttpResponse health = serve::http_get(admin.port(), "/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("router"), std::string::npos);

  const serve::HttpResponse varz = serve::http_get(admin.port(), "/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_NE(varz.body.find("net.frame.writes"), std::string::npos);

  const serve::HttpResponse metrics =
      serve::http_get(admin.port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_FALSE(metrics.body.empty());
}

}  // namespace
}  // namespace ldmo::net
