// Tests for the CNN substrate. Every layer's backward pass is validated
// against central finite differences, both for input gradients and
// parameter gradients; the ResNet regressor is checked end-to-end and shown
// to actually fit data.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/deconv.h"
#include "nn/gemm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/pooling.h"
#include "nn/resnet.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "nn/upsample.h"

namespace ldmo::nn {
namespace {

// Scalar loss L = sum 0.5 * y_i^2 used by all gradient checks.
double half_square_sum(const Tensor& t) {
  double l = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i)
    l += 0.5 * static_cast<double>(t[i]) * t[i];
  return l;
}

Tensor loss_grad(const Tensor& t) {
  Tensor g(t.shape());
  for (std::size_t i = 0; i < t.size(); ++i) g[i] = t[i];
  return g;
}

// Checks d(half_square_sum(layer(x)))/dx against finite differences at a
// few probe positions, and likewise for every parameter.
void check_layer_gradients(Layer& layer, Tensor input, double tol = 2e-2,
                           bool training = true) {
  Tensor out = layer.forward(input, training);
  for (Parameter* p : layer.parameters()) p->zero_grad();
  const Tensor grad_input = layer.backward(loss_grad(out));

  const float eps = 1e-2f;  // float32 forward: bigger eps, central diff
  auto loss_with_input = [&](const Tensor& x) {
    return half_square_sum(layer.forward(x, training));
  };

  // Probe a handful of input positions.
  const std::size_t stride = std::max<std::size_t>(1, input.size() / 7);
  for (std::size_t i = 0; i < input.size(); i += stride) {
    Tensor plus = input;
    plus[i] += eps;
    Tensor minus = input;
    minus[i] -= eps;
    const double numeric =
        (loss_with_input(plus) - loss_with_input(minus)) / (2.0 * eps);
    EXPECT_NEAR(grad_input[i], numeric, tol * (1.0 + std::abs(numeric)))
        << "input position " << i;
  }

  // Probe each parameter tensor.
  int param_index = 0;
  for (Parameter* p : layer.parameters()) {
    const std::size_t pstride = std::max<std::size_t>(1, p->value.size() / 5);
    for (std::size_t i = 0; i < p->value.size(); i += pstride) {
      const float saved = p->value[i];
      p->value[i] = saved + eps;
      const double lp = loss_with_input(input);
      p->value[i] = saved - eps;
      const double lm = loss_with_input(input);
      p->value[i] = saved;
      const double numeric = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], numeric, tol * (1.0 + std::abs(numeric)))
          << "parameter " << param_index << " position " << i;
    }
    ++param_index;
  }
}

// ------------------------------------------------------------------ gemm --

TEST(Gemm, MatchesNaiveReference) {
  Rng rng(1);
  const int m = 9, k = 7, n = 11;
  std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (int i = 0; i < m; ++i)
    for (int p = 0; p < k; ++p)
      for (int j = 0; j < n; ++j) ref[i * n + j] += a[i * k + p] * b[p * n + j];
  for (int i = 0; i < m * n; ++i) EXPECT_NEAR(c[i], ref[i], 1e-4);
}

TEST(Gemm, TransposedVariantsMatch) {
  Rng rng(2);
  const int m = 6, k = 8, n = 5;
  std::vector<float> at(k * m), a(m * k), b(k * n), bt(n * k);
  for (int p = 0; p < k; ++p)
    for (int i = 0; i < m; ++i) {
      const float v = static_cast<float>(rng.normal());
      at[p * m + i] = v;
      a[i * k + p] = v;
    }
  for (int p = 0; p < k; ++p)
    for (int j = 0; j < n; ++j) {
      const float v = static_cast<float>(rng.normal());
      b[p * n + j] = v;
      bt[j * k + p] = v;
    }
  std::vector<float> c1(m * n, 0.0f), c2(m * n, 0.0f), c3(m * n, 0.0f);
  gemm(a.data(), b.data(), c1.data(), m, k, n);
  gemm_at_b_accumulate(at.data(), b.data(), c2.data(), m, k, n);
  gemm_a_bt_accumulate(a.data(), bt.data(), c3.data(), m, k, n);
  for (int i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c1[i], c2[i], 1e-4);
    EXPECT_NEAR(c1[i], c3[i], 1e-4);
  }
}

TEST(Gemm, LargeBlockedMatchesSmallPath) {
  Rng rng(3);
  const int m = 130, k = 70, n = 90;  // exceeds the 64 block size
  std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  gemm(a.data(), b.data(), c.data(), m, k, n);
  for (int i = 0; i < m; ++i)
    for (int p = 0; p < k; ++p) {
      const float av = a[i * k + p];
      for (int j = 0; j < n; ++j) ref[i * n + j] += av * b[p * n + j];
    }
  double max_err = 0.0;
  for (int i = 0; i < m * n; ++i)
    max_err = std::max(max_err, std::abs(static_cast<double>(c[i]) - ref[i]));
  EXPECT_LT(max_err, 1e-3);
}

// ---------------------------------------------------------------- tensor --

TEST(TensorTest, ShapeAndAccessors) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.size(), 120u);
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_FLOAT_EQ(t[119], 7.0f);
  Tensor flat = t.reshaped({2, 60});
  EXPECT_FLOAT_EQ(flat.at2(1, 59), 7.0f);
}

TEST(TensorTest, ReshapeRejectsCountMismatch) {
  Tensor t({2, 3});
  EXPECT_THROW(t.reshaped({4, 2}), ldmo::Error);
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(4);
  Tensor t = Tensor::randn({1, 1, 64, 64}, rng, 0.5f);
  double sum = 0.0, sq = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += static_cast<double>(t[i]) * t[i];
  }
  EXPECT_NEAR(sum / static_cast<double>(t.size()), 0.0, 0.05);
  EXPECT_NEAR(sq / static_cast<double>(t.size()), 0.25, 0.05);
}

// ---------------------------------------------------------------- layers --

TEST(ReluLayer, ForwardAndGradient) {
  ReLU relu;
  Tensor x({1, 1, 2, 2});
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = 3.0f;
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  const Tensor g = relu.backward(loss_grad(y));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 2.0f);
}

TEST(ConvLayer, KnownConvolution) {
  Rng rng(5);
  Conv2d conv(1, 1, 3, 1, 1, false, rng);
  conv.weight().value.fill(1.0f);  // 3x3 box filter
  Tensor x({1, 1, 3, 3});
  x.fill(1.0f);
  const Tensor y = conv.forward(x, true);
  // Center sees all 9 ones, corner sees 4.
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 9.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 4.0f);
}

TEST(ConvLayer, StrideAndPaddingShapes) {
  Rng rng(6);
  Conv2d conv(2, 4, 3, 2, 1, true, rng);
  Tensor x = Tensor::randn({2, 2, 8, 8}, rng);
  const Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 4, 4, 4}));
}

TEST(ConvLayer, GradientsMatchFiniteDifference) {
  Rng rng(7);
  Conv2d conv(2, 3, 3, 1, 1, true, rng);
  check_layer_gradients(conv, Tensor::randn({2, 2, 5, 5}, rng, 0.5f));
}

TEST(ConvLayer, StridedGradientsMatchFiniteDifference) {
  Rng rng(8);
  Conv2d conv(1, 2, 3, 2, 1, false, rng);
  check_layer_gradients(conv, Tensor::randn({1, 1, 6, 6}, rng, 0.5f));
}

TEST(BatchNormLayer, NormalizesBatchInTraining) {
  BatchNorm2d bn(2);
  Rng rng(9);
  Tensor x = Tensor::randn({4, 2, 3, 3}, rng, 2.0f);
  const Tensor y = bn.forward(x, true);
  for (int c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    for (int n = 0; n < 4; ++n)
      for (int h = 0; h < 3; ++h)
        for (int w = 0; w < 3; ++w) {
          sum += y.at4(n, c, h, w);
          sq += static_cast<double>(y.at4(n, c, h, w)) * y.at4(n, c, h, w);
        }
    EXPECT_NEAR(sum / 36.0, 0.0, 1e-4);
    EXPECT_NEAR(sq / 36.0, 1.0, 1e-2);
  }
}

TEST(BatchNormLayer, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  Rng rng(10);
  // Train on a few batches to move the running stats.
  for (int i = 0; i < 20; ++i) {
    Tensor x = Tensor::randn({4, 1, 4, 4}, rng, 3.0f);
    for (std::size_t j = 0; j < x.size(); ++j) x[j] += 5.0f;
    bn.forward(x, true);
  }
  Tensor probe({1, 1, 1, 1});
  probe[0] = 5.0f;  // at the running mean -> normalized to ~0
  const Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y[0], 0.0f, 0.3f);
}

TEST(BatchNormLayer, GradientsMatchFiniteDifference) {
  Rng rng(11);
  BatchNorm2d bn(2);
  check_layer_gradients(bn, Tensor::randn({3, 2, 3, 3}, rng, 1.0f), 3e-2);
}

TEST(MaxPoolLayer, ForwardPicksMaxAndRoutesGradient) {
  MaxPool2d pool(2, 2, 0);
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = 3.0f;
  x[3] = 2.0f;
  const Tensor y = pool.forward(x, true);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor g({1, 1, 1, 1});
  g[0] = 1.0f;
  const Tensor gx = pool.backward(g);
  EXPECT_FLOAT_EQ(gx[1], 1.0f);
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
}

TEST(MaxPoolLayer, GradientsMatchFiniteDifference) {
  Rng rng(12);
  MaxPool2d pool(3, 2, 1);
  check_layer_gradients(pool, Tensor::randn({2, 2, 6, 6}, rng, 1.0f));
}

TEST(GapLayer, AveragesAndBackpropagates) {
  GlobalAvgPool gap;
  Tensor x({1, 2, 2, 2});
  for (int i = 0; i < 4; ++i) x[static_cast<std::size_t>(i)] = i + 1.0f;
  for (int i = 0; i < 4; ++i) x[static_cast<std::size_t>(4 + i)] = 10.0f;
  const Tensor y = gap.forward(x, true);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 10.0f);
  Tensor g({1, 2});
  g[0] = 4.0f;
  g[1] = 8.0f;
  const Tensor gx = gap.backward(g);
  EXPECT_FLOAT_EQ(gx[0], 1.0f);
  EXPECT_FLOAT_EQ(gx[5], 2.0f);
}

TEST(LinearLayer, KnownAffineTransform) {
  Rng rng(13);
  Linear fc(2, 1, rng);
  fc.weight().value[0] = 2.0f;
  fc.weight().value[1] = -1.0f;
  fc.bias().value[0] = 0.5f;
  Tensor x({1, 2});
  x[0] = 3.0f;
  x[1] = 4.0f;
  const Tensor y = fc.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 2.0f * 3.0f - 4.0f + 0.5f);
}

TEST(LinearLayer, GradientsMatchFiniteDifference) {
  Rng rng(14);
  Linear fc(6, 4, rng);
  check_layer_gradients(fc, Tensor::randn({3, 6}, rng, 1.0f));
}

TEST(BasicBlockLayer, IdentityShortcutGradients) {
  Rng rng(15);
  BasicBlock block(4, 4, 1, rng);
  check_layer_gradients(block, Tensor::randn({2, 4, 4, 4}, rng, 0.5f), 4e-2);
}

TEST(BasicBlockLayer, ProjectionShortcutGradients) {
  Rng rng(16);
  BasicBlock block(3, 6, 2, rng);
  // Composite block in float32 with batch-norm statistics: finite
  // differences are noisier than for single layers, hence the wider band
  // (each constituent layer is tightly checked above).
  check_layer_gradients(block, Tensor::randn({2, 3, 6, 6}, rng, 0.5f), 7e-2);
}

// --------------------------------------------------------------- decoder --

TEST(DeconvLayer, AdjointOfConvolution) {
  // ConvTranspose2d forward must equal Conv2d backward-through-input with
  // the same (transposed) kernel: <conv(x), y> == <x, deconv(y)>.
  Rng rng(40);
  const int in_c = 2, out_c = 3, k = 3, stride = 2, pad = 1;
  Conv2d conv(out_c, in_c, k, stride, pad, false, rng);
  ConvTranspose2d deconv(in_c, out_c, k, stride, pad, false, rng);
  // Share weights: conv.weight is [in_c, out_c*k*k] viewed as gathering
  // out_c planes; deconv.weight is [in_c, out_c*k*k] scattering them.
  deconv.weight().value = conv.weight().value;

  Tensor y = Tensor::randn({1, out_c, 7, 7}, rng, 0.7f);  // conv input
  Tensor x = Tensor::randn({1, in_c, 4, 4}, rng, 0.7f);   // deconv input
  const Tensor conv_y = conv.forward(y, false);    // [1, in_c, 4, 4]
  const Tensor deconv_x = deconv.forward(x, false);  // [1, out_c, 7, 7]
  ASSERT_EQ(conv_y.shape(), x.shape());
  ASSERT_EQ(deconv_x.shape(), y.shape());
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    lhs += static_cast<double>(conv_y[i]) * x[i];
  for (std::size_t i = 0; i < y.size(); ++i)
    rhs += static_cast<double>(deconv_x[i]) * y[i];
  EXPECT_NEAR(lhs, rhs, 1e-3 * (1.0 + std::abs(lhs)));
}

TEST(DeconvLayer, DoublesSpatialSizeAtK2S2) {
  Rng rng(41);
  ConvTranspose2d deconv(4, 2, 2, 2, 0, true, rng);
  Tensor x = Tensor::randn({2, 4, 8, 8}, rng);
  const Tensor y = deconv.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{2, 2, 16, 16}));
}

TEST(DeconvLayer, GradientsMatchFiniteDifference) {
  Rng rng(42);
  ConvTranspose2d deconv(2, 3, 2, 2, 0, true, rng);
  check_layer_gradients(deconv, Tensor::randn({2, 2, 4, 4}, rng, 0.5f));
}

TEST(DeconvLayer, StridedPaddedGradientsMatchFiniteDifference) {
  Rng rng(43);
  ConvTranspose2d deconv(3, 2, 3, 2, 1, false, rng);
  check_layer_gradients(deconv, Tensor::randn({1, 3, 5, 5}, rng, 0.5f));
}

TEST(UpsampleLayer, ReplicatesPixels) {
  Upsample2x up;
  Tensor x({1, 1, 2, 2});
  for (int i = 0; i < 4; ++i) x[static_cast<std::size_t>(i)] = i + 1.0f;
  const Tensor y = up.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<int>{1, 1, 4, 4}));
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 1, 1), 1.0f);
  EXPECT_FLOAT_EQ(y.at4(0, 0, 3, 3), 4.0f);
}

TEST(UpsampleLayer, GradientsMatchFiniteDifference) {
  Rng rng(44);
  Upsample2x up;
  check_layer_gradients(up, Tensor::randn({2, 3, 3, 3}, rng, 1.0f));
}

TEST(ConcatChannels, RoundTripAndAdjoint) {
  Rng rng(45);
  Tensor a = Tensor::randn({2, 3, 4, 4}, rng);
  Tensor b = Tensor::randn({2, 2, 4, 4}, rng);
  const Tensor cat = concat_channels(a, b);
  ASSERT_EQ(cat.shape(), (std::vector<int>{2, 5, 4, 4}));
  EXPECT_FLOAT_EQ(cat.at4(1, 0, 2, 3), a.at4(1, 0, 2, 3));
  EXPECT_FLOAT_EQ(cat.at4(1, 4, 2, 3), b.at4(1, 1, 2, 3));

  // split(concat(a, b)) is the identity — which, because concat is a pure
  // copy, is exactly the finite-difference adjoint check.
  Tensor ga, gb;
  split_channels(cat, 3, ga, gb);
  EXPECT_EQ(ga, a);
  EXPECT_EQ(gb, b);
}

TEST(ConcatChannels, ShapeMismatchThrows) {
  Tensor a({1, 2, 4, 4}), b({1, 2, 3, 4});
  EXPECT_THROW(concat_channels(a, b), ldmo::Error);
  Tensor g({1, 4, 4, 4}), ga, gb;
  EXPECT_THROW(split_channels(g, 4, ga, gb), ldmo::Error);
}

// ------------------------------------------------------------------ loss --

TEST(Loss, MaeValueAndGradient) {
  Tensor pred({2, 1}), target({2, 1});
  pred[0] = 1.0f;
  pred[1] = -2.0f;
  target[0] = 0.0f;
  target[1] = 0.0f;
  const LossResult r = mae_loss(pred, target);
  EXPECT_DOUBLE_EQ(r.value, 1.5);
  EXPECT_FLOAT_EQ(r.grad[0], 0.5f);
  EXPECT_FLOAT_EQ(r.grad[1], -0.5f);
}

TEST(Loss, MseValueAndGradient) {
  Tensor pred({1, 1}), target({1, 1});
  pred[0] = 3.0f;
  target[0] = 1.0f;
  const LossResult r = mse_loss(pred, target);
  EXPECT_DOUBLE_EQ(r.value, 4.0);
  EXPECT_FLOAT_EQ(r.grad[0], 4.0f);
}

TEST(Loss, ShapeMismatchThrows) {
  EXPECT_THROW(mae_loss(Tensor({1, 2}), Tensor({2, 1})), ldmo::Error);
}

// ------------------------------------------------------------------ adam --

TEST(AdamOptimizer, DrivesQuadraticToMinimum) {
  // Minimize (w - 3)^2 with Adam: w must approach 3.
  Parameter w({1});
  w.value[0] = 0.0f;
  AdamConfig cfg;
  cfg.learning_rate = 0.1;
  Adam adam({&w}, cfg);
  for (int i = 0; i < 200; ++i) {
    w.grad[0] = 2.0f * (w.value[0] - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(w.value[0], 3.0f, 0.05f);
}

TEST(AdamOptimizer, StepClearsGradients) {
  Parameter w({2});
  Adam adam({&w});
  w.grad[0] = 1.0f;
  adam.step();
  EXPECT_FLOAT_EQ(w.grad[0], 0.0f);
}

// ---------------------------------------------------------------- resnet --

ResNetConfig tiny_config() {
  ResNetConfig cfg;
  cfg.input_size = 32;
  cfg.width_multiplier = 0.125;
  return cfg;
}

TEST(ResNet, ForwardShapeAndDeterminism) {
  ResNetRegressor net(tiny_config());
  Rng rng(17);
  Tensor x = Tensor::randn({2, 1, 32, 32}, rng, 1.0f);
  const Tensor y1 = net.forward(x, false);
  const Tensor y2 = net.forward(x, false);
  EXPECT_EQ(y1.shape(), (std::vector<int>{2, 1}));
  EXPECT_EQ(y1, y2);
}

TEST(ResNet, RejectsWrongInputSize) {
  ResNetRegressor net(tiny_config());
  Rng rng(18);
  Tensor bad = Tensor::randn({1, 1, 16, 16}, rng);
  EXPECT_THROW(net.forward(bad, false), ldmo::Error);
}

TEST(ResNet, ParameterCountScalesWithWidth) {
  ResNetConfig slim = tiny_config();
  ResNetConfig wide = tiny_config();
  wide.width_multiplier = 0.25;
  ResNetRegressor a(slim), b(wide);
  EXPECT_GT(b.parameter_count(), 2 * a.parameter_count());
}

TEST(ResNet, PaperConfigBuilds) {
  // Full ResNet18 at 224x224: construct + one forward (no training here,
  // it is the paper's architecture but too slow to train in unit tests).
  ResNetRegressor net(ResNetConfig::paper_resnet18());
  EXPECT_GT(net.parameter_count(), 10'000'000u);  // ~11M like ResNet18
}

TEST(ResNet, OverfitsTinyDataset) {
  // Four distinguishable images with distinct labels: a working training
  // stack must drive training MAE well below the label spread.
  ResNetRegressor net(tiny_config());
  Rng rng(19);
  std::vector<Example> data;
  for (int i = 0; i < 4; ++i) {
    Tensor img({1, 32, 32});
    for (int h = 0; h < 32; ++h)
      for (int w = 0; w < 32; ++w)
        img[static_cast<std::size_t>(h) * 32 + w] =
            (h / 8 == i || w / 8 == i) ? 1.0f : 0.0f;
    data.push_back({std::move(img), static_cast<float>(i) - 1.5f});
  }
  TrainerConfig tcfg;
  tcfg.epochs = 60;
  tcfg.batch_size = 4;
  tcfg.adam.learning_rate = 3e-3;
  const auto history = train_regressor(net, data, tcfg);
  EXPECT_LT(history.back().mean_loss, history.front().mean_loss);
  EXPECT_LT(evaluate_mae(net, data), 0.5);
}

TEST(Trainer, LrDecayReducesStepSizes) {
  // With aggressive decay the parameters barely move in late epochs.
  ResNetRegressor net_a(tiny_config());
  ResNetRegressor net_b(tiny_config());
  Rng rng(21);
  std::vector<Example> data;
  for (int i = 0; i < 4; ++i)
    data.push_back({Tensor::randn({1, 32, 32}, rng, 0.3f),
                    static_cast<float>(i)});
  TrainerConfig slow;
  slow.epochs = 6;
  slow.lr_decay_per_epoch = 0.1;  // effectively stops after 2 epochs
  TrainerConfig steady;
  steady.epochs = 6;
  steady.lr_decay_per_epoch = 1.0;
  const auto ha = train_regressor(net_a, data, slow);
  const auto hb = train_regressor(net_b, data, steady);
  ASSERT_EQ(ha.size(), 6u);
  // Decayed training changes less between the last two epochs.
  const double delta_a = std::abs(ha[5].mean_loss - ha[4].mean_loss);
  const double delta_b = std::abs(hb[5].mean_loss - hb[4].mean_loss);
  EXPECT_LE(delta_a, delta_b + 1e-6);
}

TEST(Trainer, BackToBackRoundsSeeIdenticalLrSchedules) {
  // Regression test for the LR-decay compounding bug: train() used to
  // decay the optimizer's learning rate IN PLACE, so a second round on the
  // same Adam started from decay^epochs of the base rate instead of the
  // base rate. Two identical rounds over one caller-owned optimizer must
  // now report bit-identical schedules, each starting at the base rate.
  ResNetRegressor net(tiny_config());
  Rng rng(23);
  std::vector<Example> data;
  for (int i = 0; i < 4; ++i)
    data.push_back({Tensor::randn({1, 32, 32}, rng, 0.3f),
                    static_cast<float>(i) * 0.5f});
  TrainerConfig cfg;
  cfg.epochs = 3;
  cfg.lr_decay_per_epoch = 0.5;
  const double base_lr = 2e-3;
  AdamConfig acfg;
  acfg.learning_rate = base_lr;
  Adam optimizer(net.parameters(), acfg);

  const auto round1 = train_regressor(net, data, cfg, optimizer);
  const auto round2 = train_regressor(net, data, cfg, optimizer);
  ASSERT_EQ(round1.size(), 3u);
  ASSERT_EQ(round2.size(), 3u);
  for (std::size_t e = 0; e < 3; ++e) {
    // Schedule is a pure function of the base rate and the epoch index.
    EXPECT_DOUBLE_EQ(round1[e].learning_rate,
                     base_lr * std::pow(0.5, static_cast<double>(e)));
    EXPECT_DOUBLE_EQ(round2[e].learning_rate, round1[e].learning_rate);
  }
  // And the base rate itself survived both rounds un-decayed.
  EXPECT_DOUBLE_EQ(optimizer.config().learning_rate, base_lr);
}

TEST(SequentialContainer, AggregatesParametersInOrder) {
  Rng rng(22);
  Sequential seq;
  auto* conv = seq.emplace<Conv2d>(1, 2, 3, 1, 1, true, rng);
  seq.emplace<ReLU>();
  auto* fc = seq.emplace<Linear>(2, 1, rng);
  const auto params = seq.parameters();
  ASSERT_EQ(params.size(), 4u);  // conv w+b, linear w+b
  EXPECT_EQ(params[0], &conv->weight());
  EXPECT_EQ(params[1], &conv->bias());
  EXPECT_EQ(params[2], &fc->weight());
  EXPECT_EQ(params[3], &fc->bias());
}

// ------------------------------------------------------------- serialize --

TEST(Serialize, RoundTripRestoresPredictions) {
  const std::string path = "test_nn_weights.bin";
  ResNetRegressor a(tiny_config());
  Rng rng(20);
  Tensor x = Tensor::randn({1, 1, 32, 32}, rng);
  // Perturb a's weights so it differs from a fresh net with the same seed.
  for (Parameter* p : a.parameters())
    for (std::size_t i = 0; i < p->value.size(); i += 3) p->value[i] += 0.1f;
  const Tensor ya = a.forward(x, false);
  save_parameters(a.parameters(), path);

  ResNetRegressor b(tiny_config());
  const Tensor yb_before = b.forward(x, false);
  EXPECT_NE(ya[0], yb_before[0]);
  load_parameters(b.parameters(), path);
  const Tensor yb = b.forward(x, false);
  EXPECT_FLOAT_EQ(ya[0], yb[0]);
  std::remove(path.c_str());
}

TEST(Serialize, ArchitectureMismatchThrows) {
  const std::string path = "test_nn_mismatch.bin";
  ResNetRegressor a(tiny_config());
  save_parameters(a.parameters(), path);
  ResNetConfig other = tiny_config();
  other.width_multiplier = 0.25;
  ResNetRegressor b(other);
  EXPECT_THROW(load_parameters(b.parameters(), path), ldmo::Error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  ResNetRegressor a(tiny_config());
  EXPECT_THROW(load_parameters(a.parameters(), "/nonexistent/weights.bin"),
               ldmo::Error);
}

namespace {

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

// Corrupt-file corpus: every malformed variant of a valid weight file must
// be rejected up front, never partially loaded into a live network.
TEST(Serialize, CorruptFileCorpusRejected) {
  const std::string good_path = "test_nn_corpus_good.bin";
  const std::string bad_path = "test_nn_corpus_bad.bin";
  ResNetRegressor net(tiny_config());
  save_parameters(net.parameters(), good_path);
  const std::vector<char> good = read_file(good_path);
  ASSERT_GT(good.size(), 16u);

  const auto expect_rejected = [&](std::vector<char> bytes) {
    write_file(bad_path, bytes);
    ResNetRegressor victim(tiny_config());
    EXPECT_THROW(load_parameters(victim.parameters(), bad_path),
                 ldmo::Error);
  };

  // Bad magic: first byte flipped.
  std::vector<char> bad_magic = good;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x5A);
  expect_rejected(bad_magic);

  // Truncated header: shorter than magic + count.
  expect_rejected(std::vector<char>(good.begin(), good.begin() + 7));

  // Truncated payload: last tensor loses its tail.
  expect_rejected(std::vector<char>(good.begin(), good.end() - 9));

  // Oversized count: header promises far more tensors than the file (or
  // the network) holds.
  std::vector<char> oversized = good;
  oversized[4] = static_cast<char>(0xFF);
  oversized[5] = static_cast<char>(0xFF);
  expect_rejected(oversized);

  // Trailing bytes after the last tensor.
  std::vector<char> trailing = good;
  trailing.insert(trailing.end(), {1, 2, 3, 4});
  expect_rejected(trailing);

  // The pristine file still loads: the corpus rejected structure, not the
  // loader.
  ResNetRegressor ok(tiny_config());
  load_parameters(ok.parameters(), good_path);
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

// Atomic save: a fault mid-write must leave the previously saved weights
// untouched (write-to-tmp-then-rename), with no stray .tmp file behind.
TEST(Serialize, FailedSaveLeavesPreviousWeightsIntact) {
  const std::string path = "test_nn_atomic.bin";
  fail::disarm_all();
  ResNetRegressor a(tiny_config());
  save_parameters(a.parameters(), path);
  const std::vector<char> original = read_file(path);

  ResNetRegressor b(tiny_config());
  for (Parameter* p : b.parameters())
    for (std::size_t i = 0; i < p->value.size(); i += 2) p->value[i] += 1.0f;
  fail::arm("nn.save", fail::once());
  EXPECT_THROW(save_parameters(b.parameters(), path), ldmo::Error);
  fail::disarm_all();

  EXPECT_EQ(read_file(path), original);  // previous weights survive
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());  // tmp cleaned up

  // The next save (no fault) replaces the file normally.
  save_parameters(b.parameters(), path);
  EXPECT_NE(read_file(path), original);
  std::remove(path.c_str());
}

TEST(Serialize, LoadFailpointThrowsTagged) {
  const std::string path = "test_nn_loadfp.bin";
  fail::disarm_all();
  ResNetRegressor net(tiny_config());
  save_parameters(net.parameters(), path);
  fail::arm("nn.load", fail::once());
  EXPECT_THROW(load_parameters(net.parameters(), path), FlowException);
  fail::disarm_all();
  load_parameters(net.parameters(), path);  // site clean again
  std::remove(path.c_str());
}

TEST(ResNet, ForwardFailpointThrowsTagged) {
  fail::disarm_all();
  ResNetRegressor net(tiny_config());
  Rng rng(7);
  const Tensor x = Tensor::randn({1, 1, 32, 32}, rng);
  fail::arm("nn.forward", fail::once());
  try {
    (void)net.forward(x, false);
    FAIL() << "forward did not throw";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.stage(), FlowStage::kPredict);
  }
  fail::disarm_all();
  (void)net.forward(x, false);  // network unharmed
}

}  // namespace
}  // namespace ldmo::nn
