// Tests for MEEF analysis and the edge-weighted ILT loss extension.
#include <gtest/gtest.h>

#include "common/error.h"
#include "layout/generator.h"
#include "layout/raster.h"
#include "litho/meef.h"
#include "opc/ilt.h"

namespace ldmo::litho {
namespace {

LithoConfig fast_litho() {
  LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  cfg.kernel_count = 4;
  return cfg;
}

const LithoSimulator& simulator() {
  static LithoSimulator sim(fast_litho());
  return sim;
}

layout::Layout isolated_contact() {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({480, 480}, 65, 65));
  return l;
}

TEST(BiasMask, GrowAndShrinkByOnePixel) {
  GridF mask(8, 8, 0.0);
  for (int y = 3; y <= 5; ++y)
    for (int x = 3; x <= 5; ++x) mask.at(y, x) = 1.0;
  const GridF grown = bias_mask(mask, 1);
  EXPECT_DOUBLE_EQ(grown.at(2, 4), 1.0);   // extended upward
  EXPECT_DOUBLE_EQ(grown.at(2, 2), 0.0);   // diagonal NOT extended (4-conn)
  const GridF shrunk = bias_mask(mask, -1);
  EXPECT_DOUBLE_EQ(shrunk.at(4, 4), 1.0);  // center survives
  EXPECT_DOUBLE_EQ(shrunk.at(3, 4), 0.0);  // boundary eroded
}

TEST(BiasMask, RejectsLargeBias) {
  EXPECT_THROW(bias_mask(GridF(4, 4, 0.0), 2), ldmo::Error);
}

TEST(BiasMask, ErodeThenDilateIsContractive) {
  // Opening never adds pixels.
  GridF mask(16, 16, 0.0);
  for (int y = 5; y <= 10; ++y)
    for (int x = 5; x <= 10; ++x) mask.at(y, x) = 1.0;
  mask.at(2, 2) = 1.0;  // isolated pixel: removed by opening
  const GridF opened = bias_mask(bias_mask(mask, -1), 1);
  for (std::size_t i = 0; i < mask.size(); ++i)
    EXPECT_LE(opened[i], mask[i]);
  EXPECT_DOUBLE_EQ(opened.at(2, 2), 0.0);
}

TEST(MeasureCds, NominalContactPrintsNearTargetCd) {
  const layout::Layout l = isolated_contact();
  const int n = simulator().grid_size();
  const GridF mask = layout::rasterize_target(l, n);
  const GridF response = simulator().print(mask, GridF(n, n, 0.0));
  const auto cds = measure_printed_cds(simulator(), response, l);
  ASSERT_EQ(cds.size(), 1u);
  // Calibration puts the contour at the contact edge: CD ~ 65nm.
  EXPECT_NEAR(cds[0], 65.0, 8.0);
}

TEST(MeasureCds, MissingPatternReportsNegative) {
  const layout::Layout l = isolated_contact();
  const int n = simulator().grid_size();
  const GridF empty(n, n, 0.0);
  const GridF response = simulator().print(empty, empty);
  const auto cds = measure_printed_cds(simulator(), response, l);
  EXPECT_DOUBLE_EQ(cds[0], -1.0);
}

TEST(Meef, ContactNearResolutionLimitHasElevatedMeef) {
  const layout::Layout l = isolated_contact();
  const int n = simulator().grid_size();
  const GridF mask = layout::rasterize_target(l, n);
  const MeefReport report =
      measure_meef(simulator(), mask, GridF(n, n, 0.0), l);
  ASSERT_EQ(report.entries.size(), 1u);
  ASSERT_TRUE(report.entries[0].valid);
  // k1 ~ 0.25 contact: mask errors amplify (MEEF > 1), but the model must
  // stay physical (finite, positive).
  EXPECT_GT(report.mean_meef, 1.0);
  EXPECT_LT(report.mean_meef, 20.0);
  EXPECT_DOUBLE_EQ(report.max_meef, report.entries[0].meef);
}

TEST(Meef, InvalidEntriesExcludedFromAggregates) {
  // Two contacts, only one printed (the other's mask is empty).
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({300, 480}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({660, 480}, 65, 65));
  const int n = simulator().grid_size();
  const GridF mask1 = layout::rasterize_mask(l, {0, 1}, 0, n);
  const MeefReport report =
      measure_meef(simulator(), mask1, GridF(n, n, 0.0), l);
  ASSERT_EQ(report.entries.size(), 2u);
  EXPECT_TRUE(report.entries[0].valid);
  EXPECT_FALSE(report.entries[1].valid);
  EXPECT_DOUBLE_EQ(report.mean_meef, report.entries[0].meef);
}

TEST(EdgeWeightedIlt, WeightsMarkTargetEdgesOnly) {
  opc::IltConfig cfg;
  cfg.edge_weight = 2.0;
  opc::IltEngine engine(simulator(), cfg);
  const layout::Layout l = isolated_contact();
  const opc::IltState state = engine.init_state(l, {0});
  ASSERT_FALSE(state.loss_weights.empty());
  const layout::RasterTransform t = simulator().transform_for(l);
  const int cy = static_cast<int>(t.to_px_y(512));
  const int cx = static_cast<int>(t.to_px_x(512));
  EXPECT_DOUBLE_EQ(state.loss_weights.at(2, 2), 1.0);     // far background
  EXPECT_DOUBLE_EQ(state.loss_weights.at(cy, cx), 1.0);   // pattern interior
  const int edge_x = static_cast<int>(t.to_px_x(480));    // left edge
  EXPECT_GT(state.loss_weights.at(cy, edge_x), 1.0);
}

TEST(EdgeWeightedIlt, DisabledByDefault) {
  opc::IltEngine engine(simulator());
  const opc::IltState state = engine.init_state(isolated_contact(), {0});
  EXPECT_TRUE(state.loss_weights.empty());
}

TEST(EdgeWeightedIlt, ConvergesOnIsolatedContact) {
  opc::IltConfig cfg;
  cfg.max_iterations = 12;
  cfg.theta_m_anneal = 1.2;
  cfg.edge_weight = 3.0;
  opc::IltEngine engine(simulator(), cfg);
  const opc::IltResult result = engine.optimize(isolated_contact(), {0});
  EXPECT_EQ(result.report.violations.total(), 0);
  EXPECT_LE(result.report.epe.violation_count, 1);
}

}  // namespace
}  // namespace ldmo::litho
