// Unit tests for geometry: rect math, distances, spatial index.
#include <gtest/gtest.h>

#include "common/error.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "geometry/spatial_index.h"

namespace ldmo::geometry {
namespace {

TEST(Point, Arithmetic) {
  const Point a{3, 4};
  const Point b{1, 2};
  EXPECT_EQ(a + b, (Point{4, 6}));
  EXPECT_EQ(a - b, (Point{2, 2}));
}

TEST(Point, Distance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
}

TEST(Rect, MakeNormalizesCorners) {
  const Rect r = Rect::make({5, 1}, {2, 7});
  EXPECT_EQ(r.lo, (Point{2, 1}));
  EXPECT_EQ(r.hi, (Point{5, 7}));
}

TEST(Rect, FromSizeAndAccessors) {
  const Rect r = Rect::from_size({10, 20}, 30, 40);
  EXPECT_EQ(r.width(), 30);
  EXPECT_EQ(r.height(), 40);
  EXPECT_EQ(r.area(), 1200);
  EXPECT_EQ(r.center(), (Point{25, 40}));
}

TEST(Rect, FromSizeRejectsNegative) {
  EXPECT_THROW(Rect::from_size({0, 0}, -1, 5), Error);
}

TEST(Rect, ContainsIncludesBoundary) {
  const Rect r = Rect::from_size({0, 0}, 10, 10);
  EXPECT_TRUE(r.contains({0, 0}));
  EXPECT_TRUE(r.contains({10, 10}));
  EXPECT_TRUE(r.contains({5, 5}));
  EXPECT_FALSE(r.contains({11, 5}));
}

TEST(Rect, IntersectsIncludesTouching) {
  const Rect a = Rect::from_size({0, 0}, 10, 10);
  EXPECT_TRUE(a.intersects(Rect::from_size({10, 0}, 5, 5)));  // share edge
  EXPECT_TRUE(a.intersects(Rect::from_size({5, 5}, 10, 10)));
  EXPECT_FALSE(a.intersects(Rect::from_size({11, 0}, 5, 5)));
}

TEST(Rect, InflateAndDeflate) {
  const Rect r = Rect::from_size({10, 10}, 10, 10);
  EXPECT_EQ(r.inflated(5), Rect::from_size({5, 5}, 20, 20));
  EXPECT_EQ(r.inflated(-2), Rect::from_size({12, 12}, 6, 6));
}

TEST(Rect, OverDeflateCollapsesToCenter) {
  const Rect r = Rect::from_size({0, 0}, 10, 10);
  const Rect collapsed = r.inflated(-20);
  EXPECT_EQ(collapsed.width(), 0);
  EXPECT_EQ(collapsed.height(), 0);
}

TEST(Rect, Translated) {
  const Rect r = Rect::from_size({0, 0}, 4, 4).translated({3, -2});
  EXPECT_EQ(r.lo, (Point{3, -2}));
  EXPECT_EQ(r.hi, (Point{7, 2}));
}

TEST(RectDistance, OverlappingIsZero) {
  const Rect a = Rect::from_size({0, 0}, 10, 10);
  const Rect b = Rect::from_size({5, 5}, 10, 10);
  EXPECT_DOUBLE_EQ(rect_distance(a, b), 0.0);
}

TEST(RectDistance, TouchingIsZero) {
  const Rect a = Rect::from_size({0, 0}, 10, 10);
  const Rect b = Rect::from_size({10, 0}, 10, 10);
  EXPECT_DOUBLE_EQ(rect_distance(a, b), 0.0);
}

TEST(RectDistance, AxisAlignedGap) {
  const Rect a = Rect::from_size({0, 0}, 10, 10);
  const Rect b = Rect::from_size({17, 0}, 10, 10);
  EXPECT_DOUBLE_EQ(rect_distance(a, b), 7.0);
}

TEST(RectDistance, DiagonalGapIsEuclidean) {
  const Rect a = Rect::from_size({0, 0}, 10, 10);
  const Rect b = Rect::from_size({13, 14}, 10, 10);
  EXPECT_DOUBLE_EQ(rect_distance(a, b), 5.0);  // gap (3, 4)
}

TEST(RectDistance, Symmetric) {
  const Rect a = Rect::from_size({0, 0}, 5, 5);
  const Rect b = Rect::from_size({20, 11}, 3, 3);
  EXPECT_DOUBLE_EQ(rect_distance(a, b), rect_distance(b, a));
}

TEST(RectPointDistance, InsideIsZeroOutsideEuclidean) {
  const Rect r = Rect::from_size({0, 0}, 10, 10);
  EXPECT_DOUBLE_EQ(rect_point_distance(r, {5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(rect_point_distance(r, {13, 14}), 5.0);
}

class SpatialIndexTest : public ::testing::Test {
 protected:
  SpatialIndexTest()
      : index_(Rect::from_size({0, 0}, 1000, 1000), 100) {}
  SpatialIndex index_;
};

TEST_F(SpatialIndexTest, InsertAssignsSequentialIds) {
  EXPECT_EQ(index_.insert(Rect::from_size({0, 0}, 10, 10)), 0);
  EXPECT_EQ(index_.insert(Rect::from_size({50, 50}, 10, 10)), 1);
  EXPECT_EQ(index_.size(), 2u);
}

TEST_F(SpatialIndexTest, QueryWithinFindsNeighbors) {
  const int a = index_.insert(Rect::from_size({100, 100}, 10, 10));
  const int b = index_.insert(Rect::from_size({150, 100}, 10, 10));  // 40 gap
  const int c = index_.insert(Rect::from_size({400, 400}, 10, 10));
  (void)b;
  (void)c;
  const auto near = index_.query_within(index_.rect(a), 45.0, a);
  EXPECT_EQ(near, (std::vector<int>{1}));
}

TEST_F(SpatialIndexTest, QueryRadiusBoundaryInclusive) {
  const int a = index_.insert(Rect::from_size({100, 100}, 10, 10));
  index_.insert(Rect::from_size({140, 100}, 10, 10));  // 30nm gap
  EXPECT_EQ(index_.query_within(index_.rect(a), 30.0, a).size(), 1u);
  EXPECT_EQ(index_.query_within(index_.rect(a), 29.0, a).size(), 0u);
}

TEST_F(SpatialIndexTest, QueryAcrossCellBoundaries) {
  // Rects straddling grid cells must still be found exactly once.
  const int a = index_.insert(Rect::from_size({95, 95}, 10, 10));
  const auto hits = index_.query_within(
      Rect::from_size({90, 90}, 30, 30), 0.0);
  EXPECT_EQ(hits, (std::vector<int>{a}));
}

TEST_F(SpatialIndexTest, QueryIntersecting) {
  index_.insert(Rect::from_size({0, 0}, 50, 50));
  index_.insert(Rect::from_size({60, 60}, 50, 50));
  const auto hits = index_.query_intersecting(Rect::from_size({40, 40}, 25, 25));
  EXPECT_EQ(hits.size(), 2u);
}

TEST_F(SpatialIndexTest, RectOutOfRangeThrows) {
  EXPECT_THROW(index_.rect(0), ldmo::Error);
}

TEST(SpatialIndex, RejectsNonPositiveCellSize) {
  EXPECT_THROW(SpatialIndex(Rect::from_size({0, 0}, 10, 10), 0), ldmo::Error);
}

TEST(SpatialIndex, ManyRectsMatchBruteForce) {
  const Rect world = Rect::from_size({0, 0}, 2000, 2000);
  SpatialIndex index(world, 128);
  std::vector<Rect> rects;
  // Deterministic pseudo-grid of rects with varied sizes.
  for (int i = 0; i < 200; ++i) {
    const std::int64_t x = (i * 131) % 1900;
    const std::int64_t y = (i * 197) % 1900;
    const Rect r = Rect::from_size({x, y}, 20 + (i % 30), 20 + (i % 17));
    rects.push_back(r);
    index.insert(r);
  }
  const Rect query = Rect::from_size({900, 900}, 60, 60);
  const double radius = 150.0;
  std::vector<int> expected;
  for (int i = 0; i < 200; ++i)
    if (rect_distance(rects[static_cast<std::size_t>(i)], query) <= radius)
      expected.push_back(i);
  EXPECT_EQ(index.query_within(query, radius), expected);
}

}  // namespace
}  // namespace ldmo::geometry
