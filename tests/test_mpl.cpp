// Tests for the mpl module: Eq. 6 classification, conflict graphs, MST +
// n-wise decomposition generation (Algorithm 1) and the baseline
// decomposers.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "layout/generator.h"
#include "mpl/baselines.h"
#include "mpl/classify.h"
#include "mpl/decomposition_generator.h"

namespace ldmo::mpl {
namespace {

// Layout with a known class structure: A-B at 75nm (both SP), C at 90nm
// from B (VP), D isolated (NP).
layout::Layout classed_layout() {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({100, 100}, 65, 65));   // A
  l.add_pattern(geometry::Rect::from_size({240, 100}, 65, 65));   // B: 75 from A
  l.add_pattern(geometry::Rect::from_size({395, 100}, 65, 65));   // C: 90 from B
  l.add_pattern(geometry::Rect::from_size({700, 700}, 65, 65));   // D: isolated
  return l;
}

TEST(Classify, AppliesEquationSix) {
  const PatternClassification c = classify_patterns(classed_layout());
  EXPECT_EQ(c.classes[0], PatternClass::Separated);
  EXPECT_EQ(c.classes[1], PatternClass::Separated);
  EXPECT_EQ(c.classes[2], PatternClass::Violated);
  EXPECT_EQ(c.classes[3], PatternClass::Normal);
  EXPECT_EQ(c.sp, (std::vector<int>{0, 1}));
  EXPECT_EQ(c.vp, (std::vector<int>{2}));
  EXPECT_EQ(c.np, (std::vector<int>{3}));
}

TEST(Classify, BoundaryDistancesAreInclusive) {
  // Exactly nmin -> SP; exactly nmax -> VP (Eq. 6 uses <=).
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({100, 100}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({245, 100}, 65, 65));  // 80nm
  PatternClassification c = classify_patterns(l);
  EXPECT_EQ(c.classes[0], PatternClass::Separated);

  layout::Layout l2;
  l2.clip = l.clip;
  l2.add_pattern(geometry::Rect::from_size({100, 100}, 65, 65));
  l2.add_pattern(geometry::Rect::from_size({263, 100}, 65, 65));  // 98nm
  c = classify_patterns(l2);
  EXPECT_EQ(c.classes[0], PatternClass::Violated);
}

TEST(Classify, RejectsBadThresholds) {
  ClassifyConfig bad;
  bad.nmax_nm = bad.nmin_nm;
  EXPECT_THROW(classify_patterns(classed_layout(), bad), ldmo::Error);
}

TEST(ConflictGraph, EdgesWithinRangeOnly) {
  const layout::Layout l = classed_layout();
  const graph::Graph g = build_conflict_graph(l, {0, 1, 2}, 80.0);
  // Only A-B (75nm) qualifies at 80nm range.
  ASSERT_EQ(g.edges().size(), 1u);
  EXPECT_DOUBLE_EQ(g.edges()[0].weight, 75.0);

  const graph::Graph g2 = build_conflict_graph(l, {0, 1, 2}, 98.0);
  EXPECT_EQ(g2.edges().size(), 2u);  // A-B and B-C
}

TEST(Generator, CandidatesSeparateMstPairs) {
  const layout::Layout l = classed_layout();
  const GenerationResult r = generate_decompositions(l);
  ASSERT_FALSE(r.candidates.empty());
  for (const auto& candidate : r.candidates) {
    EXPECT_TRUE(respects_mst_separation(r, candidate));
    // A and B are MST-adjacent SP patterns: always split.
    EXPECT_NE(candidate[0], candidate[1]);
  }
}

TEST(Generator, CandidatesAreCanonicalAndUnique) {
  const layout::Layout l = classed_layout();
  const GenerationResult r = generate_decompositions(l);
  std::set<layout::Assignment> unique(r.candidates.begin(),
                                      r.candidates.end());
  EXPECT_EQ(unique.size(), r.candidates.size());
  for (const auto& candidate : r.candidates)
    EXPECT_EQ(candidate[0], 0);  // pattern 0 pinned to M1
}

TEST(Generator, CoversAllVpNpCombinations) {
  // With 1 VP and 1 NP factor the product must contain every (VP, NP)
  // combination given the pinned SP orientation.
  const layout::Layout l = classed_layout();
  const GenerationResult r = generate_decompositions(l);
  std::set<std::pair<int, int>> combos;
  for (const auto& candidate : r.candidates)
    combos.insert({candidate[2], candidate[3]});
  EXPECT_EQ(combos.size(), 4u);
}

TEST(Generator, SingleCandidateForLonePattern) {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({480, 480}, 65, 65));
  const GenerationResult r = generate_decompositions(l);
  ASSERT_EQ(r.candidates.size(), 1u);
  EXPECT_EQ(r.candidates[0], (layout::Assignment{0}));
}

TEST(Generator, CandidateCountStaysFarBelowExhaustive) {
  // n-wise is the whole point: candidates grow slowly, not as 2^(n-1).
  layout::LayoutGenerator gen;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const layout::Layout l = gen.generate(seed);
    const GenerationResult r = generate_decompositions(l);
    const std::size_t exhaustive =
        std::size_t{1} << (l.pattern_count() - 1);
    EXPECT_LT(r.candidates.size(), exhaustive)
        << "seed " << seed << ", " << l.pattern_count() << " patterns";
    EXPECT_GE(r.candidates.size(), 2u) << "seed " << seed;
  }
}

TEST(Generator, DeterministicPerSeed) {
  const layout::Layout l = classed_layout();
  const GenerationResult a = generate_decompositions(l);
  const GenerationResult b = generate_decompositions(l);
  EXPECT_EQ(a.candidates, b.candidates);
}

TEST(Generator, MaxCandidatesCapRespected) {
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(3);
  GenerationConfig config;
  config.max_candidates = 3;
  const GenerationResult r = generate_decompositions(l, config);
  EXPECT_EQ(r.candidates.size(), 3u);
}

TEST(Generator, MstComponentsSolvedIndependently) {
  // Two separate SP chains -> two components, each pinned internally but
  // with independent orientations covered across candidates.
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({100, 100}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({240, 100}, 65, 65));  // 75 from #0
  l.add_pattern(geometry::Rect::from_size({100, 700}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({240, 700}, 65, 65));  // 75 from #2
  const GenerationResult r = generate_decompositions(l);
  EXPECT_EQ(r.sp_component_count, 2);
  std::set<std::pair<int, int>> orientations;
  for (const auto& c : r.candidates) {
    EXPECT_NE(c[0], c[1]);
    EXPECT_NE(c[2], c[3]);
    orientations.insert({c[0], c[2]});
  }
  // Pattern 0 pinned: component 2's orientation must take both values.
  EXPECT_EQ(orientations.size(), 2u);
}

TEST(Baselines, SpacingUniformitySplitsConflicts) {
  const layout::Layout l = classed_layout();
  const layout::Assignment a = SpacingUniformityDecomposer().decompose(l);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_NE(a[0], a[1]);  // the 75nm pair must split
  EXPECT_EQ(a[0], 0);     // canonical
}

TEST(Baselines, BalancedDecomposerSplitsConflictsAndBalances) {
  const layout::Layout l = classed_layout();
  const layout::Assignment a = BalancedDecomposer().decompose(l);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_NE(a[0], a[1]);
  int ones = 0;
  for (int v : a) ones += v;
  EXPECT_GE(ones, 1);  // not everything dumped on one mask
  EXPECT_LE(ones, 3);
}

TEST(Baselines, ExhaustiveEnumeratesAllCanonical) {
  const auto all = enumerate_all_decompositions(classed_layout());
  EXPECT_EQ(all.size(), 8u);  // 2^(4-1)
  std::set<layout::Assignment> unique(all.begin(), all.end());
  EXPECT_EQ(unique.size(), 8u);
  for (const auto& a : all) EXPECT_EQ(a[0], 0);
}

TEST(Baselines, ExhaustiveRejectsHugeLayouts) {
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(1);
  EXPECT_THROW(enumerate_all_decompositions(l, 4), ldmo::Error);
}

// Property sweep over generated layouts: every candidate from Algorithm 1
// respects MST separation and canonical form.
class GeneratorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSweep, InvariantsHold) {
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(GetParam());
  const GenerationResult r = generate_decompositions(l);
  std::set<layout::Assignment> seen;
  for (const auto& candidate : r.candidates) {
    EXPECT_EQ(candidate.size(),
              static_cast<std::size_t>(l.pattern_count()));
    EXPECT_EQ(candidate[0], 0);
    EXPECT_TRUE(respects_mst_separation(r, candidate));
    EXPECT_TRUE(seen.insert(candidate).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, GeneratorSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace ldmo::mpl
