// Tests for the runtime execution engine: pool lifecycle, task-group
// joining and exception propagation, MPMC queue stress, cooperative
// cancellation, splittable RNG streams, and the determinism contract
// (parallel execution bit-identical to serial at any thread count).
//
// These tests (label "sanitize") are the intended payload of
// -DLDMO_SANITIZE=thread builds — see the top-level CMakeLists.txt.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "layout/generator.h"
#include "litho/simulator.h"
#include "nn/gemm.h"
#include "nn/resnet.h"
#include "opc/ilt.h"
#include "runtime/cancellation.h"
#include "runtime/parallel_for.h"
#include "runtime/task_queue.h"
#include "runtime/thread_pool.h"

namespace ldmo::runtime {
namespace {

/// Restores the global thread count on scope exit so tests can reconfigure
/// parallelism without leaking state into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) : saved_(thread_count()) {
    set_thread_count(threads);
  }
  ~ScopedThreads() { set_thread_count(saved_); }

 private:
  int saved_;
};

// ---------------------------------------------------------------------------
// ThreadPool lifecycle

TEST(ThreadPoolTest, StartsAndStopsCleanly) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 32; ++i) group.run([&ran] { ran.fetch_add(1); });
  group.wait();
  EXPECT_EQ(ran.load(), 32);
  // Destructor joins the workers; nothing to assert beyond not hanging.
}

TEST(ThreadPoolTest, SubmitReturnsFutureValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsEverythingInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0);
  const std::thread::id self = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  TaskGroup group(&pool);
  for (std::size_t i = 0; i < seen.size(); ++i)
    group.run([&seen, i] { seen[i] = std::this_thread::get_id(); });
  group.wait();
  for (const std::thread::id& id : seen) EXPECT_EQ(id, self);
}

TEST(ThreadPoolTest, WorkerBusySecondsAccumulate) {
  ThreadPool pool(1);
  TaskGroup group(&pool);
  group.run([] {
    // A task with measurable duration even on coarse clocks.
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i) sink = sink + 1.0;
  });
  group.wait();
  const std::vector<double> busy = pool.worker_busy_seconds();
  ASSERT_EQ(busy.size(), 1u);
  // The waiter may have claimed the task inline, so only non-negativity is
  // guaranteed; the gauge must never go backwards or NaN.
  EXPECT_GE(busy[0], 0.0);
}

// ---------------------------------------------------------------------------
// TaskGroup semantics

TEST(TaskGroupTest, PropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> survivors{0};
  group.run([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 8; ++i) group.run([&survivors] { survivors.fetch_add(1); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  // Every non-throwing task still ran to completion before the join.
  EXPECT_EQ(survivors.load(), 8);
}

TEST(TaskGroupTest, ReusableAfterWait) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  group.run([&count] { count.fetch_add(1); });
  group.wait();
  group.run([&count] { count.fetch_add(1); });
  group.wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(TaskGroupTest, NestedGroupsCannotDeadlock) {
  // More nested groups than workers: the waiting tasks must claim and run
  // their children inline rather than starve on pool capacity.
  ThreadPool pool(2);
  std::atomic<int> leaf_count{0};
  TaskGroup outer(&pool);
  for (int i = 0; i < 6; ++i) {
    outer.run([&pool, &leaf_count] {
      TaskGroup inner(&pool);
      for (int j = 0; j < 4; ++j)
        inner.run([&leaf_count] { leaf_count.fetch_add(1); });
      inner.wait();
    });
  }
  outer.wait();
  EXPECT_EQ(leaf_count.load(), 24);
}

// ---------------------------------------------------------------------------
// MPMC queue stress

TEST(TaskQueueTest, MpmcStressDeliversEveryTaskExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  TaskQueue queue;
  std::vector<std::atomic<int>> executed(
      static_cast<std::size_t>(kProducers * kPerProducer));
  for (auto& e : executed) e.store(0);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&queue] {
      TaskQueue::Task task;
      while (queue.pop(task)) {
        task();
        task = nullptr;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, &executed, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const std::size_t id =
            static_cast<std::size_t>(p * kPerProducer + i);
        queue.push([&executed, id] { executed[id].fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.close();  // closed queues still drain
  for (std::thread& t : consumers) t.join();

  for (const auto& e : executed) EXPECT_EQ(e.load(), 1);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(TaskQueueTest, TryPopOnEmptyReturnsFalse) {
  TaskQueue queue;
  TaskQueue::Task task;
  EXPECT_FALSE(queue.try_pop(task));
  queue.push([] {});
  EXPECT_TRUE(queue.try_pop(task));
  EXPECT_FALSE(queue.try_pop(task));
}

// ---------------------------------------------------------------------------
// Cancellation

TEST(CancellationTest, DefaultTokenNeverCancels) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
}

TEST(CancellationTest, TokenObservesSource) {
  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_FALSE(token.cancelled());
  source.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(source.cancelled());
}

TEST(CancellationTest, IltWindsDownOnCancelledToken) {
  litho::LithoConfig lcfg;
  lcfg.grid_size = 64;
  lcfg.pixel_nm = 16.0;
  lcfg.kernel_count = 4;
  const litho::LithoSimulator simulator(lcfg);
  opc::IltConfig icfg;
  icfg.max_iterations = 8;
  opc::IltEngine engine(simulator, icfg);
  layout::LayoutGenerator gen;
  const layout::Layout layout = gen.generate(9);
  layout::Assignment alt(static_cast<std::size_t>(layout.pattern_count()), 0);
  for (std::size_t i = 0; i < alt.size(); ++i) alt[i] = static_cast<int>(i) % 2;

  CancellationSource source;
  source.cancel();  // cancelled before the first iteration
  const opc::IltResult result =
      engine.optimize(layout, alt, false, false, source.token());
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.iterations_run, 0);
  EXPECT_TRUE(result.mask1.empty());  // wound down before finalization
}

// ---------------------------------------------------------------------------
// Splittable RNG streams

TEST(RngSplitTest, DeterministicAndSideEffectFree) {
  Rng master(42);
  Rng reference(42);
  // Splitting is const and does not advance the master state.
  Rng s0 = master.split(0);
  Rng s1 = master.split(1);
  EXPECT_EQ(master.next_u64(), reference.next_u64());

  // Same (state, stream) always yields the same stream.
  Rng master2(42);
  Rng s0_again = master2.split(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s0.next_u64(), s0_again.next_u64());

  // Distinct stream ids decorrelate.
  Rng s1_copy = master2.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    Rng probe = master2.split(2);
    (void)probe;
    if (s1.next_u64() == s1_copy.next_u64()) ++equal;  // same stream: equal
  }
  EXPECT_EQ(equal, 64);
  Rng a = Rng(7).split(0);
  Rng b = Rng(7).split(1);
  int collisions = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++collisions;
  EXPECT_LT(collisions, 4);
}

// ---------------------------------------------------------------------------
// Chunk planning + parallel_for determinism

TEST(ChunkPlanTest, CoversRangeIndependentOfThreadCount) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 1000u, 4097u}) {
    const ChunkPlan plan = plan_chunks(n, 8);
    std::size_t covered = 0;
    for (std::size_t c = 0; c < plan.chunk_count; ++c) {
      EXPECT_EQ(plan.begin(c), covered);
      EXPECT_LE(plan.end(c), n);
      covered = plan.end(c);
      if (c + 1 < plan.chunk_count) {
        EXPECT_GE(plan.end(c) - plan.begin(c), 8u);  // min_chunk respected
      }
    }
    EXPECT_EQ(covered, n);
    // The plan is a pure function of (n, min_chunk, max_chunks): thread
    // count must not influence it.
    ScopedThreads serial(1);
    const ChunkPlan replanned = plan_chunks(n, 8);
    EXPECT_EQ(replanned.chunk_count, plan.chunk_count);
    EXPECT_EQ(replanned.chunk_size, plan.chunk_size);
  }
}

TEST(ParallelForTest, VisitsEveryIndexOnce) {
  ScopedThreads threads(4);
  std::vector<std::atomic<int>> visits(1000);
  for (auto& v : visits) v.store(0);
  parallel_for(visits.size(), [&](std::size_t i) { visits[i].fetch_add(1); });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForTest, DeterministicReduceMatchesSerialFold) {
  auto map = [](std::size_t i) {
    // Values chosen so summation order changes the floating-point result.
    return 1.0 / static_cast<double>(i + 1) * ((i % 2 == 0) ? 1.0 : -1e-8);
  };
  auto combine = [](double acc, double v) { return acc + v; };
  double serial_sum;
  {
    ScopedThreads serial(1);
    serial_sum = deterministic_reduce(5000, 0.0, map, combine);
  }
  double parallel_sum;
  {
    ScopedThreads parallel(4);
    parallel_sum = deterministic_reduce(5000, 0.0, map, combine);
  }
  EXPECT_EQ(serial_sum, parallel_sum);  // bit-identical, not approximately
}

// ---------------------------------------------------------------------------
// Determinism contract on real kernels

TEST(DeterminismTest, ParallelGemmBitIdenticalToSerial) {
  const int m = 256, k = 96, n = 64;  // large enough to cross the
                                      // parallelism threshold
  std::vector<float> a(static_cast<std::size_t>(m) * k);
  std::vector<float> b(static_cast<std::size_t>(k) * n);
  Rng rng(123);
  for (float& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (float& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> c_serial(static_cast<std::size_t>(m) * n);
  {
    ScopedThreads serial(1);
    nn::gemm(a.data(), b.data(), c_serial.data(), m, k, n);
  }
  std::vector<float> c_parallel(static_cast<std::size_t>(m) * n);
  {
    ScopedThreads parallel(4);
    nn::gemm(a.data(), b.data(), c_parallel.data(), m, k, n);
  }
  EXPECT_EQ(std::memcmp(c_serial.data(), c_parallel.data(),
                        c_serial.size() * sizeof(float)),
            0);
}

TEST(DeterminismTest, FullFlowBitIdenticalAcrossThreadCounts) {
  litho::LithoConfig lcfg;
  lcfg.grid_size = 64;
  lcfg.pixel_nm = 16.0;
  lcfg.kernel_count = 4;
  const litho::LithoSimulator simulator(lcfg);

  nn::ResNetConfig ncfg;
  ncfg.input_size = 32;
  ncfg.width_multiplier = 0.125;
  core::CnnPredictor predictor(std::make_unique<nn::ResNetRegressor>(ncfg));

  core::LdmoConfig config;
  config.ilt.max_iterations = 6;
  core::LdmoFlow flow(simulator, predictor, config);
  layout::LayoutGenerator gen;
  const layout::Layout layout = gen.generate(31);

  core::LdmoResult serial;
  {
    ScopedThreads threads(1);
    serial = flow.run(layout);
  }
  core::LdmoResult parallel;
  {
    ScopedThreads threads(4);
    parallel = flow.run(layout);
  }

  // The speculative parallel ILT must pick the same winner the serial
  // fallback chain picks, and every mask pixel must match bit-for-bit.
  EXPECT_EQ(serial.chosen, parallel.chosen);
  EXPECT_EQ(serial.candidates_generated, parallel.candidates_generated);
  EXPECT_EQ(serial.candidates_tried, parallel.candidates_tried);
  EXPECT_EQ(serial.ilt.report.epe.violation_count,
            parallel.ilt.report.epe.violation_count);
  EXPECT_EQ(serial.ilt.mask1, parallel.ilt.mask1);
  EXPECT_EQ(serial.ilt.mask2, parallel.ilt.mask2);
  EXPECT_EQ(serial.ilt.response, parallel.ilt.response);
}

TEST(DeterminismTest, ScoreBatchMatchesSerialScoreLoop) {
  litho::LithoConfig lcfg;
  lcfg.grid_size = 64;
  lcfg.pixel_nm = 16.0;
  lcfg.kernel_count = 4;
  const litho::LithoSimulator simulator(lcfg);

  nn::ResNetConfig ncfg;
  ncfg.input_size = 32;
  ncfg.width_multiplier = 0.125;
  core::CnnPredictor predictor(std::make_unique<nn::ResNetRegressor>(ncfg));

  layout::LayoutGenerator gen;
  const layout::Layout layout = gen.generate(17);
  const std::size_t pats = static_cast<std::size_t>(layout.pattern_count());
  std::vector<layout::Assignment> candidates;
  for (int c = 0; c < 20; ++c) {  // crosses one kBatch=16 boundary
    layout::Assignment a(pats, 0);
    for (std::size_t i = 0; i < pats; ++i)
      a[i] = static_cast<int>((i + static_cast<std::size_t>(c)) % 2);
    candidates.push_back(std::move(a));
  }

  std::vector<double> looped;
  for (const layout::Assignment& a : candidates)
    looped.push_back(predictor.score(layout, a));
  ScopedThreads threads(4);
  const std::vector<double> batched =
      predictor.score_batch(layout, candidates);
  ASSERT_EQ(batched.size(), looped.size());
  for (std::size_t i = 0; i < looped.size(); ++i)
    EXPECT_EQ(batched[i], looped[i]) << "candidate " << i;
}

}  // namespace
}  // namespace ldmo::runtime
