// Unit tests for graph: union-find, MST/forest, two-coloring heuristics.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "graph/coloring.h"
#include "graph/disjoint_set.h"
#include "graph/graph.h"
#include "graph/mst.h"

namespace ldmo::graph {
namespace {

TEST(DisjointSet, StartsFullyDisjoint) {
  DisjointSet dsu(4);
  EXPECT_EQ(dsu.set_count(), 4);
  EXPECT_FALSE(dsu.connected(0, 1));
}

TEST(DisjointSet, UniteMergesOnce) {
  DisjointSet dsu(4);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_FALSE(dsu.unite(1, 0));
  EXPECT_TRUE(dsu.connected(0, 1));
  EXPECT_EQ(dsu.set_count(), 3);
}

TEST(DisjointSet, TransitiveConnectivity) {
  DisjointSet dsu(5);
  dsu.unite(0, 1);
  dsu.unite(1, 2);
  dsu.unite(3, 4);
  EXPECT_TRUE(dsu.connected(0, 2));
  EXPECT_FALSE(dsu.connected(2, 3));
  EXPECT_EQ(dsu.set_count(), 2);
}

TEST(DisjointSet, FindOutOfRangeThrows) {
  DisjointSet dsu(2);
  EXPECT_THROW(dsu.find(2), ldmo::Error);
  EXPECT_THROW(dsu.find(-1), ldmo::Error);
}

TEST(Graph, AddEdgeUpdatesAdjacency) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.neighbors(0), (std::vector<int>{1}));
  EXPECT_EQ(g.edges().size(), 2u);
}

TEST(Graph, RejectsSelfLoopAndOutOfRange) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 0, 1.0), ldmo::Error);
  EXPECT_THROW(g.add_edge(0, 2, 1.0), ldmo::Error);
}

TEST(Graph, ConnectedComponentsLabels) {
  Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto [labels, count] = g.connected_components();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[2], labels[3]);
}

TEST(Mst, PathGraphKeepsAllEdges) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  const MstResult mst = minimum_spanning_forest(g);
  EXPECT_EQ(mst.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(mst.total_weight, 6.0);
}

TEST(Mst, DropsHeaviestCycleEdge) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 10.0);
  const MstResult mst = minimum_spanning_forest(g);
  EXPECT_EQ(mst.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(mst.total_weight, 3.0);
}

TEST(Mst, ForestOverDisconnectedComponents) {
  // Mirrors Fig. 3: two components solved independently.
  Graph g(6);
  g.add_edge(0, 1, 75.0);
  g.add_edge(1, 2, 78.0);
  g.add_edge(0, 2, 60.0);
  g.add_edge(3, 4, 76.0);
  g.add_edge(4, 5, 60.0);
  const MstResult mst = minimum_spanning_forest(g);
  EXPECT_EQ(mst.component_count, 2);
  EXPECT_EQ(mst.edges.size(), 4u);
  // Component 1 keeps 60 + 75 (drops 78), component 2 keeps both.
  EXPECT_DOUBLE_EQ(mst.total_weight, 60.0 + 75.0 + 76.0 + 60.0);
}

TEST(Mst, DeterministicTieBreaking) {
  Graph g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 2, 5.0);
  g.add_edge(0, 2, 5.0);
  const MstResult a = minimum_spanning_forest(g);
  const MstResult b = minimum_spanning_forest(g);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.edges.size(), 2u);
  // Input order wins ties: first two edges are kept.
  EXPECT_EQ(a.edges[0].u, 0);
  EXPECT_EQ(a.edges[1].u, 1);
}

TEST(TwoColorForest, AlternatesAlongTree) {
  const std::vector<Edge> edges = {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}};
  const auto color = two_color_forest(4, edges);
  EXPECT_EQ(color[0], 0);
  EXPECT_EQ(color[1], 1);
  EXPECT_EQ(color[2], 0);
  EXPECT_EQ(color[3], 1);
}

TEST(TwoColorForest, IsolatedVerticesGetZero) {
  const auto color = two_color_forest(3, {});
  EXPECT_EQ(color, (std::vector<int>{0, 0, 0}));
}

TEST(TwoColorForest, RejectsCycles) {
  const std::vector<Edge> cycle = {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  EXPECT_THROW(two_color_forest(3, cycle), ldmo::Error);
}

TEST(Coloring, BipartiteGraphColorsCleanly) {
  Graph g(4);
  g.add_edge(0, 1, 80.0);
  g.add_edge(1, 2, 80.0);
  g.add_edge(2, 3, 80.0);
  const ColoringResult r = bipartite_or_greedy_coloring(g);
  EXPECT_EQ(r.conflict_count, 0);
  EXPECT_NE(r.color[0], r.color[1]);
  EXPECT_NE(r.color[1], r.color[2]);
}

TEST(Coloring, OddCycleHasAtLeastOneConflict) {
  Graph g(3);
  g.add_edge(0, 1, 70.0);
  g.add_edge(1, 2, 70.0);
  g.add_edge(0, 2, 70.0);
  const ColoringResult r = bipartite_or_greedy_coloring(g);
  EXPECT_GE(r.conflict_count, 1);
}

TEST(Coloring, EvaluateCountsMonochromaticEdges) {
  Graph g(3);
  g.add_edge(0, 1, 9.0);
  g.add_edge(1, 2, 9.0);
  const ColoringResult r = evaluate_coloring(g, {0, 0, 0});
  EXPECT_EQ(r.conflict_count, 2);
  EXPECT_NEAR(r.spacing_penalty, 2.0 / 10.0, 1e-12);
}

TEST(Coloring, EvaluateRejectsSizeMismatch) {
  Graph g(3);
  EXPECT_THROW(evaluate_coloring(g, {0, 1}), ldmo::Error);
}

TEST(Coloring, SpacingUniformityNeverWorseThanGreedy) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = rng.uniform_int(4, 12);
    Graph g(n);
    for (int u = 0; u < n; ++u)
      for (int v = u + 1; v < n; ++v)
        if (rng.bernoulli(0.3)) g.add_edge(u, v, rng.uniform(60.0, 100.0));
    const ColoringResult greedy = bipartite_or_greedy_coloring(g);
    const ColoringResult refined = spacing_uniformity_coloring(g);
    EXPECT_LE(refined.conflict_count, greedy.conflict_count);
  }
}

TEST(Coloring, BalancedColoringBalancesIsolatedVertices) {
  Graph g(6);  // no edges: free to balance 3/3
  const ColoringResult r = balanced_coloring(g);
  int ones = 0;
  for (int c : r.color) ones += c;
  EXPECT_EQ(ones, 3);
  EXPECT_EQ(r.conflict_count, 0);
}

TEST(Coloring, BalancedRespectsConflictsFirst) {
  Graph g(4);
  g.add_edge(0, 1, 70.0);
  g.add_edge(2, 3, 70.0);
  const ColoringResult r = balanced_coloring(g);
  EXPECT_EQ(r.conflict_count, 0);
  EXPECT_NE(r.color[0], r.color[1]);
  EXPECT_NE(r.color[2], r.color[3]);
}

}  // namespace
}  // namespace ldmo::graph
