// Live-telemetry tests: OpenMetrics exposition format, snapshot
// differencing, histogram quantiles, the sliding-window sampler, the
// flight recorder (including wraparound and concurrent recording), Chrome
// trace export, and the HTTP admin endpoint — /metrics scrape format, the
// /healthz fault-drill flip-and-recover, and a concurrent
// scrape-during-traffic smoke (the TSan payload of the "sanitize" label).
//
// Flow-running tests use the 32-pixel serving-tier lithography model, so a
// full request is tens of milliseconds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "layout/generator.h"
#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_export.h"
#include "obs/window.h"
#include "serve/admin.h"
#include "serve/server.h"

namespace ldmo {
namespace {

litho::LithoConfig fast_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 32;
  cfg.pixel_nm = 32.0;  // 32 px x 32 nm = the generator's 1024nm clip
  return cfg;
}

serve::ServeConfig fast_serve_config() {
  serve::ServeConfig cfg;
  cfg.engine.litho = fast_litho();
  cfg.dispatchers = 2;
  return cfg;
}

serve::ServeConfig admin_config(double interval = 0.05,
                                std::size_t capacity = 4) {
  serve::ServeConfig cfg = fast_serve_config();
  cfg.admin.enabled = true;
  cfg.admin.port = 0;  // kernel-assigned ephemeral port
  cfg.admin.window_interval_seconds = interval;
  cfg.admin.window_capacity = capacity;
  return cfg;
}

layout::Layout test_layout(std::uint64_t seed) {
  return layout::LayoutGenerator().generate(seed);
}

serve::ServeResponse submit_one(serve::Server& server, std::uint64_t seed) {
  serve::ServeRequest request;
  request.layout = test_layout(seed);
  return server.submit(std::move(request)).response.get();
}

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fail::disarm_all();
    obs::registry().reset();
    obs::tracer().clear();
    obs::set_tracing_enabled(false);
  }
  void TearDown() override {
    fail::disarm_all();
    obs::set_tracing_enabled(false);
    obs::tracer().clear();
  }
};

// --- HistogramSample::quantile ---

TEST_F(TelemetryTest, QuantileOfEmptyHistogramIsZero) {
  obs::HistogramSample h;
  h.bounds = {1.0, 2.0};
  h.buckets = {0, 0, 0};
  h.count = 0;
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(1.0), 0.0);
}

TEST_F(TelemetryTest, QuantileInterpolatesLinearlyWithinBuckets) {
  // 4 observations uniformly in (0, 10], 4 in (10, 20].
  obs::HistogramSample h;
  h.bounds = {10.0, 20.0};
  h.buckets = {4, 4, 0};
  h.count = 8;
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 5.0);   // rank 2 of 4 into (0,10]
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);   // exactly the bucket edge
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 15.0);  // rank 2 of 4 into (10,20]
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  // q is clamped to [0, 1].
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST_F(TelemetryTest, QuantileFirstBucketLowerEdgeIsZero) {
  obs::HistogramSample h;
  h.bounds = {1.0};
  h.buckets = {3, 0};
  h.count = 3;
  // rank 1.5 of 3 into (0, 1].
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5);
}

TEST_F(TelemetryTest, QuantileOverflowClampsToLargestBound) {
  obs::HistogramSample h;
  h.bounds = {10.0, 20.0};
  h.buckets = {0, 0, 5};  // everything overflowed
  h.count = 5;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 20.0);
}

// --- OpenMetrics exposition ---

TEST_F(TelemetryTest, OpenMetricsNameSanitization) {
  EXPECT_EQ(obs::openmetrics_name("serve.cache.hits"), "serve_cache_hits");
  EXPECT_EQ(obs::openmetrics_name("a:b_c9"), "a:b_c9");
  EXPECT_EQ(obs::openmetrics_name("weird-name/x"), "weird_name_x");
  EXPECT_EQ(obs::openmetrics_name("9starts.with.digit"),
            "_9starts_with_digit");
}

TEST_F(TelemetryTest, OpenMetricsGoldenDocument) {
  // A private registry keeps the golden compare independent of whatever
  // the process-wide registry has accumulated.
  obs::Registry reg;
  reg.counter("serve.cache.hits").inc(3);
  reg.gauge("serve.queue.depth").set(2.5);
  obs::Histogram& h = reg.histogram("serve.latency.seconds", {0.25, 1.0});
  h.observe(0.25);  // inclusive upper bound -> bucket 0
  h.observe(0.25);
  h.observe(0.5);
  h.observe(5.0);  // overflow
  const std::string expected =
      "# TYPE serve_cache_hits counter\n"
      "serve_cache_hits_total 3\n"
      "# TYPE serve_queue_depth gauge\n"
      "serve_queue_depth 2.5\n"
      "# TYPE serve_latency_seconds histogram\n"
      "serve_latency_seconds_bucket{le=\"0.25\"} 2\n"
      "serve_latency_seconds_bucket{le=\"1\"} 3\n"
      "serve_latency_seconds_bucket{le=\"+Inf\"} 4\n"
      "serve_latency_seconds_sum 6\n"
      "serve_latency_seconds_count 4\n"
      "# EOF\n";
  EXPECT_EQ(obs::to_openmetrics(reg.snapshot()), expected);
}

// --- snapshot differencing ---

TEST_F(TelemetryTest, SnapshotDeltaRatesAndResetRestart) {
  obs::Registry reg;
  reg.counter("req.ok").inc(10);
  reg.counter("req.failed").inc(2);
  reg.histogram("lat", {1.0}).observe(0.5);
  const obs::MetricsSnapshot older = reg.snapshot();

  reg.counter("req.ok").inc(30);
  reg.counter("req.failed").reset();  // counter restart
  reg.counter("req.failed").inc(1);
  reg.histogram("lat", {1.0}).observe(0.25);
  reg.histogram("lat", {1.0}).observe(2.0);
  const obs::MetricsSnapshot newer = reg.snapshot();

  const obs::SnapshotDelta delta = obs::diff_snapshots(newer, older, 10.0);
  EXPECT_DOUBLE_EQ(delta.rate("req.ok"), 3.0);
  // Shrunk counter is treated as reset-and-restarted: delta = newer value.
  EXPECT_EQ(delta.find_counter("req.failed")->delta, 1);
  EXPECT_DOUBLE_EQ(delta.rate_prefix("req."), 3.0 + 0.1);
  EXPECT_DOUBLE_EQ(delta.rate("req.missing"), 0.0);

  const obs::HistogramSample* lat = delta.find_histogram("lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 2);  // only the window's observations
  ASSERT_EQ(lat->buckets.size(), 2u);
  EXPECT_EQ(lat->buckets[0], 1);
  EXPECT_EQ(lat->buckets[1], 1);
}

TEST_F(TelemetryTest, HistogramDeltaMismatchedBoundsReturnsNewer) {
  obs::HistogramSample older;
  older.bounds = {1.0};
  older.buckets = {5, 0};
  older.count = 5;
  obs::HistogramSample newer;
  newer.bounds = {2.0};
  newer.buckets = {7, 0};
  newer.count = 7;
  const obs::HistogramSample d = obs::histogram_delta(newer, older);
  EXPECT_EQ(d.count, 7);  // no meaningful delta across a re-bucketing
  EXPECT_EQ(d.bounds, newer.bounds);
}

// --- WindowSampler (driven manually via sample_now) ---

TEST_F(TelemetryTest, WindowSamplerDeltasAndTrimming) {
  obs::Registry reg;
  obs::WindowConfig cfg;
  cfg.capacity = 2;  // window = 2 intervals = 3 retained snapshots
  int pre_sample_calls = 0;
  cfg.pre_sample = [&] { ++pre_sample_calls; };
  obs::WindowSampler window(cfg, &reg);

  EXPECT_EQ(window.samples(), 0u);
  EXPECT_DOUBLE_EQ(window.counter_rate("req.ok"), 0.0);

  window.sample_now();
  reg.counter("req.ok").inc(5);
  reg.counter("req.failed").inc(1);
  reg.gauge("queue.depth").set(3.0);
  reg.histogram("lat", {1.0, 10.0}).observe(0.5);
  window.sample_now();
  EXPECT_EQ(window.samples(), 2u);
  EXPECT_EQ(window.counter_delta("req.ok"), 5);
  EXPECT_EQ(window.counter_delta_prefix("req."), 6);
  EXPECT_DOUBLE_EQ(window.latest_gauge("queue.depth"), 3.0);
  // One observation in (0, 1]: the median interpolates inside it.
  EXPECT_DOUBLE_EQ(window.quantile("lat", 0.5), 0.5);
  EXPECT_EQ(pre_sample_calls, 2);

  // Old increments fall out as the ring slides past them.
  window.sample_now();
  window.sample_now();
  window.sample_now();
  EXPECT_EQ(window.samples(), 3u);  // capacity + 1, trimmed
  EXPECT_EQ(window.counter_delta("req.ok"), 0);
  EXPECT_EQ(window.timeline().size(), 2u);
}

TEST_F(TelemetryTest, WindowSamplerBackgroundThreadSamples) {
  obs::Registry reg;
  obs::WindowConfig cfg;
  cfg.interval_seconds = 0.02;
  cfg.capacity = 50;
  obs::WindowSampler window(cfg, &reg);
  // Pin one pre-increment snapshot as the window's oldest edge: the delta
  // below is newest-vs-oldest, so every background sample must sit after
  // the increment for it to count.
  window.sample_now();
  reg.counter("bg.ticks").inc(7);
  window.start();
  for (int i = 0; i < 250 && window.samples() < 3; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  window.stop();
  EXPECT_GE(window.samples(), 3u);
  EXPECT_EQ(window.counter_delta("bg.ticks"), 7);
  EXPECT_GT(window.window_seconds(), 0.0);
}

// --- flight recorder ---

TEST_F(TelemetryTest, FlightRecorderWrapsAroundKeepingNewest) {
  obs::FlightRecorder recorder(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    obs::FlightEvent event;
    event.id = i;
    event.set_status(i == 9 ? "failed" : "ok");
    recorder.record(event);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  const std::vector<obs::FlightEvent> events = recorder.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first: sequences 7..10 (1-based), ids 6..9.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].sequence, 7 + i);
    EXPECT_EQ(events[i].id, 6 + i);
  }
  EXPECT_STREQ(events.back().status, "failed");
}

TEST_F(TelemetryTest, FlightRecorderTruncatesTags) {
  obs::FlightEvent event;
  event.set_status("a-status-name-much-longer-than-the-buffer");
  event.set_error(std::string(500, 'x'));
  EXPECT_EQ(std::string(event.status).size(), sizeof event.status - 1);
  EXPECT_EQ(std::string(event.error).size(), sizeof event.error - 1);
}

TEST_F(TelemetryTest, FlightRecorderJsonRoundTrips) {
  obs::FlightRecorder recorder(8);
  obs::FlightEvent event;
  event.id = 42;
  event.total_seconds = 0.25;
  event.attempts = 2;
  event.degraded = true;
  event.set_status("failed");
  event.set_stage("ilt");
  event.set_error("boom \"quoted\"");
  recorder.record(event);

  const obs::JsonValue doc = obs::parse_json(recorder.to_json());
  EXPECT_EQ(doc.find("capacity")->number, 8.0);
  EXPECT_EQ(doc.find("recorded")->number, 1.0);
  const obs::JsonValue& e = doc.find("events")->array.at(0);
  EXPECT_EQ(e.find("id")->number, 42.0);
  EXPECT_EQ(e.find("status")->string, "failed");
  EXPECT_EQ(e.find("stage")->string, "ilt");
  EXPECT_EQ(e.find("error")->string, "boom \"quoted\"");
  EXPECT_EQ(e.find("attempts")->number, 2.0);
}

TEST_F(TelemetryTest, FlightRecorderConcurrentRecording) {
  constexpr int kThreads = 4;
  constexpr int kEach = 1000;
  obs::FlightRecorder recorder(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kEach; ++i) {
        obs::FlightEvent event;
        event.id = static_cast<std::uint64_t>(t) * kEach + i;
        event.set_status("ok");
        recorder.record(event);
      }
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.recorded(),
            static_cast<std::uint64_t>(kThreads) * kEach);
  const std::vector<obs::FlightEvent> events = recorder.snapshot();
  EXPECT_EQ(events.size(), 64u);
  for (const obs::FlightEvent& e : events) EXPECT_STREQ(e.status, "ok");
}

// --- Chrome trace export ---

TEST_F(TelemetryTest, ChromeTraceExportsSpanTree) {
  obs::set_tracing_enabled(true);
  {
    obs::Span root("request");
    root.attr("layout", std::string("T1"));
    root.attr("candidates", 3.0);
    { obs::Span child("ilt"); }
  }
  { obs::Span other("second_root"); }

  const obs::JsonValue doc =
      obs::parse_json(obs::to_chrome_trace(obs::tracer().snapshot()));
  EXPECT_EQ(doc.find("displayTimeUnit")->string, "ms");
  const obs::JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->array.size(), 3u);

  const obs::JsonValue* request = nullptr;
  const obs::JsonValue* ilt = nullptr;
  const obs::JsonValue* second = nullptr;
  for (const obs::JsonValue& e : events->array) {
    EXPECT_EQ(e.find("ph")->string, "X");
    if (e.find("name")->string == "request") request = &e;
    if (e.find("name")->string == "ilt") ilt = &e;
    if (e.find("name")->string == "second_root") second = &e;
  }
  ASSERT_NE(request, nullptr);
  ASSERT_NE(ilt, nullptr);
  ASSERT_NE(second, nullptr);
  // Roots start at t=0 on their own tracks; the child nests inside the
  // parent's duration on the parent's track.
  EXPECT_EQ(request->find("ts")->number, 0.0);
  EXPECT_EQ(second->find("ts")->number, 0.0);
  EXPECT_NE(request->find("tid")->number, second->find("tid")->number);
  EXPECT_EQ(ilt->find("tid")->number, request->find("tid")->number);
  EXPECT_LE(ilt->find("dur")->number, request->find("dur")->number);
  EXPECT_EQ(request->find("args")->find("layout")->string, "T1");
  EXPECT_EQ(request->find("args")->find("candidates")->number, 3.0);
}

// --- admin endpoint over real HTTP ---

TEST_F(TelemetryTest, AdminServesMetricsHealthVarzAndErrors) {
  serve::Server server(admin_config());
  ASSERT_GT(server.admin_port(), 0);
  EXPECT_EQ(submit_one(server, 100).status, serve::ServeStatus::kOk);

  const serve::HttpResponse metrics =
      serve::http_get(server.admin_port(), "/metrics");
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.content_type.rfind("text/plain", 0), 0u);
  EXPECT_NE(metrics.body.find("serve_requests_submitted_total"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("serve_latency_seconds_bucket"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("# EOF\n"), std::string::npos);

  const serve::HttpResponse healthz =
      serve::http_get(server.admin_port(), "/healthz");
  EXPECT_EQ(healthz.status, 200);
  const serve::HttpResponse readyz =
      serve::http_get(server.admin_port(), "/readyz");
  EXPECT_EQ(readyz.status, 200);

  const serve::HttpResponse varz =
      serve::http_get(server.admin_port(), "/varz");
  EXPECT_EQ(varz.status, 200);
  EXPECT_EQ(varz.content_type.rfind("application/json", 0), 0u);
  const obs::JsonValue doc = obs::parse_json(varz.body);
  ASSERT_TRUE(doc.is_object());
  EXPECT_NE(doc.find("serve"), nullptr);
  EXPECT_NE(doc.find("window"), nullptr);

  const serve::HttpResponse flight =
      serve::http_get(server.admin_port(), "/flightrecorder");
  EXPECT_EQ(flight.status, 200);
  EXPECT_GE(obs::parse_json(flight.body).find("recorded")->number, 1.0);

  EXPECT_EQ(serve::http_get(server.admin_port(), "/nope").status, 404);
  EXPECT_EQ(serve::http_get(server.admin_port(), "/").status, 200);

  server.shutdown();
  EXPECT_FALSE(server.healthy());
}

TEST_F(TelemetryTest, AdminTraceEndpointExportsSpans) {
  obs::set_tracing_enabled(true);
  serve::Server server(admin_config());
  EXPECT_EQ(submit_one(server, 101).status, serve::ServeStatus::kOk);
  // The serve.request span finishes (and reaches the tracer) shortly
  // AFTER the response future resolves — poll rather than race it.
  bool traced = false;
  for (int i = 0; i < 200 && !traced; ++i) {
    const serve::HttpResponse trace =
        serve::http_get(server.admin_port(), "/trace");
    EXPECT_EQ(trace.status, 200);
    traced = !obs::parse_json(trace.body).find("traceEvents")->array.empty();
    if (!traced) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(traced);
  server.shutdown();
}

TEST_F(TelemetryTest, AdminHandleRoutesMethodsAndPaths) {
  // handle() is the transport-free router, callable without a socket. A
  // second AdminServer against the same Server is fine: each binds its
  // own ephemeral port.
  serve::Server server(fast_serve_config());
  serve::AdminConfig admin;
  admin.port = 0;
  serve::AdminServer router(admin, server);
  EXPECT_GT(router.port(), 0);
  EXPECT_EQ(router.handle("POST", "/metrics").status, 405);
  EXPECT_EQ(router.handle("GET", "/nope").status, 404);
  EXPECT_EQ(router.handle("GET", "/metrics").status, 200);
  EXPECT_EQ(router.handle("GET", "/healthz").status, 200);
  router.stop();
  server.shutdown();
}

TEST_F(TelemetryTest, HealthzFlipsDuringFaultDrillAndRecovers) {
  // Narrow window (4 x 50ms) so recovery doesn't stall the suite.
  serve::ServeConfig cfg = admin_config(/*interval=*/0.05, /*capacity=*/4);
  serve::Server server(cfg);
  EXPECT_TRUE(server.healthy());

  // Drill: every ILT run fails; with max_attempts=1 each request is a
  // terminal kFailed.
  fail::arm("opc.ilt.optimize", fail::every_nth(1));
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_EQ(submit_one(server, 200 + i).status,
              serve::ServeStatus::kFailed);
  fail::disarm_all();

  // The sampler picks the failures up within an interval or two.
  bool flipped = false;
  for (int i = 0; i < 200 && !flipped; ++i) {
    flipped = !server.healthy();
    if (!flipped) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(flipped);
  std::string detail;
  if (!server.healthy(&detail)) {
    EXPECT_NE(detail.find("unhealthy"), std::string::npos);
    EXPECT_EQ(serve::http_get(server.admin_port(), "/healthz").status, 503);
  }

  // Recovery: the window slides past the drill with no new failures.
  bool recovered = false;
  for (int i = 0; i < 500 && !recovered; ++i) {
    recovered = server.healthy();
    if (!recovered)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(serve::http_get(server.admin_port(), "/healthz").status, 200);
  // Requests succeed again after the drill.
  EXPECT_EQ(submit_one(server, 300).status, serve::ServeStatus::kOk);
  server.shutdown();
}

TEST_F(TelemetryTest, FailedRequestDumpsFlightRecorder) {
  const std::string path = "test_telemetry_flight_dump.json";
  std::remove(path.c_str());
  serve::ServeConfig cfg = fast_serve_config();
  cfg.flight.dump_path = path;
  serve::Server server(cfg);
  fail::arm("opc.ilt.optimize", fail::once());
  EXPECT_EQ(submit_one(server, 400).status, serve::ServeStatus::kFailed);
  fail::disarm_all();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const obs::JsonValue doc = obs::parse_json(buffer.str());
  ASSERT_FALSE(doc.find("events")->array.empty());
  const obs::JsonValue& last = doc.find("events")->array.back();
  EXPECT_EQ(last.find("status")->string, "failed");
  EXPECT_EQ(last.find("stage")->string, "ilt");
  server.shutdown();
  std::remove(path.c_str());
}

// The TSan payload: scrape every endpoint continuously while clients push
// traffic — admin threads, the window sampler, dispatchers and the metric
// hot path all race here if anything is unsynchronized.
TEST_F(TelemetryTest, ConcurrentScrapesDuringTraffic) {
  obs::set_tracing_enabled(true);
  serve::Server server(admin_config(/*interval=*/0.02, /*capacity=*/10));
  const int port = server.admin_port();

  constexpr int kRequests = 10;
  std::atomic<int> next{0};
  std::atomic<bool> done{false};
  std::atomic<int> scrape_failures{0};
  std::vector<std::thread> scrapers;
  const char* paths[] = {"/metrics", "/varz", "/healthz", "/flightrecorder"};
  for (int s = 0; s < 2; ++s)
    scrapers.emplace_back([&, s] {
      for (int i = 0; !done.load(); ++i) {
        const serve::HttpResponse resp =
            serve::http_get(port, paths[(s * 2 + i) % 4]);
        if (resp.status != 200) scrape_failures.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    });

  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c)
    clients.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= kRequests) return;
        EXPECT_TRUE(
            submit_one(server, 500 + static_cast<std::uint64_t>(i % 3))
                .ok());
      }
    });
  for (std::thread& t : clients) t.join();
  done.store(true);
  for (std::thread& t : scrapers) t.join();

  EXPECT_EQ(scrape_failures.load(), 0);
  const serve::HttpResponse metrics = serve::http_get(port, "/metrics");
  EXPECT_NE(metrics.body.find("serve_requests_submitted_total"),
            std::string::npos);
  server.shutdown();
}

}  // namespace
}  // namespace ldmo
