// Tests for the lithography substrate: eigensolvers, TCC physics, SOCS
// kernels, aerial imaging, resist model and metrology.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "layout/raster.h"
#include "litho/aerial.h"
#include "litho/config.h"
#include "litho/eig.h"
#include "litho/kernels.h"
#include "litho/metrics.h"
#include "litho/resist.h"
#include "litho/simulator.h"
#include "litho/tcc.h"

namespace ldmo::litho {
namespace {

// Small test configuration: 64px at 16nm keeps kernel construction fast
// while staying in the same optical regime (1024nm field).
LithoConfig test_config() {
  LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  cfg.kernel_count = 5;
  return cfg;
}

layout::Layout single_square_layout(std::int64_t size_nm,
                                    std::int64_t field_nm = 1024) {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, field_nm, field_nm);
  l.add_pattern(geometry::Rect::from_size(
      {(field_nm - size_nm) / 2, (field_nm - size_nm) / 2}, size_nm, size_nm));
  return l;
}

// ---------------------------------------------------------------- eigen --

TEST(JacobiEig, DiagonalMatrixIsItsOwnDecomposition) {
  const std::vector<double> m = {3, 0, 0, 0, 1, 0, 0, 0, 2};
  const SymmetricEig eig = jacobi_eigendecompose(m, 3);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 1.0, 1e-12);
}

TEST(JacobiEig, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  const SymmetricEig eig = jacobi_eigendecompose({2, 1, 1, 2}, 2);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(eig.eigenvectors[0][0]), 1.0 / std::sqrt(2.0), 1e-10);
}

TEST(JacobiEig, ReconstructsRandomSymmetricMatrix) {
  Rng rng(4);
  const int n = 12;
  std::vector<double> m(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j) {
      const double v = rng.normal();
      m[static_cast<std::size_t>(i) * n + j] = v;
      m[static_cast<std::size_t>(j) * n + i] = v;
    }
  const SymmetricEig eig = jacobi_eigendecompose(m, n);
  // Check A v = lambda v for every pair.
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      double av = 0.0;
      for (int j = 0; j < n; ++j)
        av += m[static_cast<std::size_t>(i) * n + j] *
              eig.eigenvectors[static_cast<std::size_t>(k)]
                              [static_cast<std::size_t>(j)];
      EXPECT_NEAR(av,
                  eig.eigenvalues[static_cast<std::size_t>(k)] *
                      eig.eigenvectors[static_cast<std::size_t>(k)]
                                      [static_cast<std::size_t>(i)],
                  1e-8);
    }
  }
}

TEST(JacobiEig, EigenvectorsOrthonormal) {
  Rng rng(8);
  const int n = 10;
  std::vector<double> m(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i)
    for (int j = i; j < n; ++j) {
      const double v = rng.uniform(-1, 1);
      m[static_cast<std::size_t>(i) * n + j] = v;
      m[static_cast<std::size_t>(j) * n + i] = v;
    }
  const SymmetricEig eig = jacobi_eigendecompose(m, n);
  for (int a = 0; a < n; ++a)
    for (int b = 0; b < n; ++b) {
      double dot = 0.0;
      for (int i = 0; i < n; ++i)
        dot += eig.eigenvectors[static_cast<std::size_t>(a)]
                               [static_cast<std::size_t>(i)] *
               eig.eigenvectors[static_cast<std::size_t>(b)]
                               [static_cast<std::size_t>(i)];
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
}

TEST(JacobiEig, RejectsAsymmetric) {
  EXPECT_THROW(jacobi_eigendecompose({1, 2, 3, 4}, 2), ldmo::Error);
}

TEST(HermitianEig, RealMatrixMatchesSymmetricPath) {
  const std::vector<std::complex<double>> m = {{2, 0}, {1, 0}, {1, 0}, {2, 0}};
  const HermitianEig eig = hermitian_eigendecompose(m, 2);
  ASSERT_EQ(eig.eigenvalues.size(), 2u);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
}

TEST(HermitianEig, ComplexHermitianReconstruction) {
  // H = [[2, i], [-i, 2]] has eigenvalues 3 and 1.
  const std::vector<std::complex<double>> m = {
      {2, 0}, {0, 1}, {0, -1}, {2, 0}};
  const HermitianEig eig = hermitian_eigendecompose(m, 2);
  ASSERT_EQ(eig.eigenvalues.size(), 2u);
  EXPECT_NEAR(eig.eigenvalues[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 1.0, 1e-10);
  // Verify H v = lambda v for the leading pair.
  for (int i = 0; i < 2; ++i) {
    std::complex<double> hv(0, 0);
    for (int j = 0; j < 2; ++j)
      hv += m[static_cast<std::size_t>(i) * 2 + j] *
            eig.eigenvectors[0][static_cast<std::size_t>(j)];
    EXPECT_NEAR(std::abs(hv - eig.eigenvalues[0] * eig.eigenvectors[0]
                                  [static_cast<std::size_t>(i)]),
                0.0, 1e-9);
  }
}

TEST(HermitianEig, RandomHermitianEigenpairsValid) {
  Rng rng(15);
  const int n = 8;
  std::vector<std::complex<double>> m(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n; ++i) {
    m[static_cast<std::size_t>(i) * n + i] = {rng.normal(), 0.0};
    for (int j = i + 1; j < n; ++j) {
      const std::complex<double> v(rng.normal(), rng.normal());
      m[static_cast<std::size_t>(i) * n + j] = v;
      m[static_cast<std::size_t>(j) * n + i] = std::conj(v);
    }
  }
  const HermitianEig eig = hermitian_eigendecompose(m, n);
  ASSERT_EQ(eig.eigenvalues.size(), static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      std::complex<double> hv(0, 0);
      for (int j = 0; j < n; ++j)
        hv += m[static_cast<std::size_t>(i) * n + j] *
              eig.eigenvectors[static_cast<std::size_t>(k)]
                              [static_cast<std::size_t>(j)];
      EXPECT_NEAR(std::abs(hv - eig.eigenvalues[static_cast<std::size_t>(k)] *
                                    eig.eigenvectors[static_cast<std::size_t>(
                                        k)][static_cast<std::size_t>(i)]),
                  0.0, 1e-8)
          << "eigenpair " << k;
    }
  }
  // Orthonormality under the complex inner product.
  for (int a = 0; a < n; ++a)
    for (int b = a; b < n; ++b) {
      std::complex<double> dot(0, 0);
      for (int i = 0; i < n; ++i)
        dot += std::conj(eig.eigenvectors[static_cast<std::size_t>(a)]
                                         [static_cast<std::size_t>(i)]) *
               eig.eigenvectors[static_cast<std::size_t>(b)]
                               [static_cast<std::size_t>(i)];
      EXPECT_NEAR(std::abs(dot), a == b ? 1.0 : 0.0, 1e-8);
    }
}

// ------------------------------------------------------------------ tcc --

TEST(Config, ValidatesAndRejects) {
  LithoConfig ok = test_config();
  EXPECT_NO_THROW(ok.validate());
  LithoConfig bad = test_config();
  bad.grid_size = 100;  // not a power of two
  EXPECT_THROW(bad.validate(), ldmo::Error);
  bad = test_config();
  bad.sigma_inner = 0.9;  // inner >= outer
  EXPECT_THROW(bad.validate(), ldmo::Error);
}

TEST(Pupil, CutoffCircle) {
  const LithoConfig cfg = test_config();
  const double fc = cfg.cutoff_frequency();
  EXPECT_EQ(pupil_value(cfg, fc * 1.01, 0.0), std::complex<double>(0, 0));
  EXPECT_EQ(pupil_value(cfg, fc * 0.99, 0.0), std::complex<double>(1, 0));
  EXPECT_EQ(pupil_value(cfg, 0.0, 0.0), std::complex<double>(1, 0));
}

TEST(Pupil, DefocusAddsPhaseInsideOnly) {
  LithoConfig cfg = test_config();
  cfg.defocus_nm = 50.0;
  const double fc = cfg.cutoff_frequency();
  const std::complex<double> p = pupil_value(cfg, fc * 0.5, 0.0);
  EXPECT_NEAR(std::abs(p), 1.0, 1e-12);
  EXPECT_NE(p.imag(), 0.0);
  EXPECT_EQ(pupil_value(cfg, fc * 1.1, 0.0), std::complex<double>(0, 0));
}

TEST(Source, AnnulusMembership) {
  const LithoConfig cfg = test_config();
  const double fc = cfg.cutoff_frequency();
  const double mid = 0.5 * (cfg.sigma_inner + cfg.sigma_outer);
  EXPECT_FALSE(source_contains(cfg, 0.0, 0.0));  // inside the hole
  EXPECT_TRUE(source_contains(cfg, mid * fc, 0.0));
  EXPECT_FALSE(source_contains(cfg, (cfg.sigma_outer + 0.1) * fc, 0.0));
  EXPECT_FALSE(source_contains(cfg, (cfg.sigma_inner - 0.1) * fc, 0.0));
}

TEST(Tcc, MatrixIsHermitianPsd) {
  const TccResult tcc = build_tcc(test_config(), 2);
  const int dim = tcc.dimension();
  ASSERT_GT(dim, 10);
  for (int i = 0; i < dim; ++i)
    for (int j = 0; j < dim; ++j)
      EXPECT_NEAR(std::abs(tcc.matrix[static_cast<std::size_t>(i) * dim + j] -
                           std::conj(tcc.matrix[static_cast<std::size_t>(j) *
                                                    dim +
                                                i])),
                  0.0, 1e-12);
  // Diagonal (power per frequency) nonnegative, DC strongest.
  int dc_index = -1;
  for (int i = 0; i < dim; ++i) {
    EXPECT_GE(tcc.matrix[static_cast<std::size_t>(i) * dim + i].real(),
              -1e-12);
    if (tcc.support[static_cast<std::size_t>(i)] == std::make_pair(0, 0))
      dc_index = i;
  }
  ASSERT_GE(dc_index, 0);
  const double dc =
      tcc.matrix[static_cast<std::size_t>(dc_index) * dim + dc_index].real();
  EXPECT_NEAR(dc, 1.0, 1e-9);  // whole annular source passes the pupil
  for (int i = 0; i < dim; ++i)
    EXPECT_LE(tcc.matrix[static_cast<std::size_t>(i) * dim + i].real(),
              dc + 1e-9);
}

TEST(Tcc, InFocusMatrixIsReal) {
  const TccResult tcc = build_tcc(test_config(), 2);
  for (const auto& v : tcc.matrix) EXPECT_NEAR(v.imag(), 0.0, 1e-12);
}

TEST(Tcc, SupportRadiusMatchesBand) {
  const LithoConfig cfg = test_config();
  const TccResult tcc = build_tcc(cfg, 2);
  const double band_px =
      (1.0 + cfg.sigma_outer) * cfg.cutoff_frequency() * cfg.field_nm();
  for (const auto& [kx, ky] : tcc.support)
    EXPECT_LE(kx * kx + ky * ky, band_px * band_px + 1e-9);
}

// -------------------------------------------------------------- kernels --

TEST(Kernels, WeightsPositiveDescendingAndEnergyCaptured) {
  const SocsKernels k = build_socs_kernels(test_config());
  ASSERT_GE(k.kernel_count(), 3);
  for (int i = 1; i < k.kernel_count(); ++i)
    EXPECT_LE(k.weights[static_cast<std::size_t>(i)],
              k.weights[static_cast<std::size_t>(i - 1)]);
  EXPECT_GT(k.weights.back(), 0.0);
  EXPECT_GT(k.captured_energy, 0.5);  // top-5 kernels carry most energy
}

TEST(Kernels, CalibrationPutsContactEdgeOnThreshold) {
  const LithoConfig cfg = test_config();
  const SocsKernels& k = cached_kernels(cfg);
  AerialSimulator aerial(k);
  const int n = cfg.grid_size;
  // Rebuild the calibration probe: centered square of the contact size.
  layout::Layout probe = single_square_layout(
      static_cast<std::int64_t>(cfg.calibration_feature_nm));
  const GridF intensity = aerial.intensity(layout::rasterize_target(probe, n));
  const layout::RasterTransform transform{probe.clip, n};
  const auto& shape = probe.patterns[0].shape;
  const double edge = sample_bilinear(
      intensity, transform.to_px_x(static_cast<double>(shape.hi.x)),
      transform.to_px_y((shape.lo.y + shape.hi.y) / 2.0));
  EXPECT_NEAR(edge, cfg.intensity_threshold, 1e-9);
  // Contact center prints bright; far corner of the field is dark.
  EXPECT_GT(sample_bilinear(intensity,
                            transform.to_px_x((shape.lo.x + shape.hi.x) / 2.0),
                            transform.to_px_y((shape.lo.y + shape.hi.y) / 2.0)),
            cfg.intensity_threshold);
  EXPECT_LT(intensity.at(n / 8, n / 8), 0.2 * cfg.intensity_threshold);
}

TEST(Kernels, DefocusExercisesComplexHermitianPath) {
  // With defocus the pupil is complex, the TCC genuinely Hermitian, and
  // kernel construction runs through the embedded-Jacobi path end-to-end.
  LithoConfig cfg = test_config();
  cfg.defocus_nm = 60.0;
  const TccResult tcc = build_tcc(cfg, 2);
  bool any_imag = false;
  for (const auto& v : tcc.matrix)
    if (std::abs(v.imag()) > 1e-9) any_imag = true;
  EXPECT_TRUE(any_imag);

  const SocsKernels kernels = build_socs_kernels(cfg);
  EXPECT_GE(kernels.kernel_count(), 3);
  // Defocused image of the calibration contact is still bright at center
  // (calibration holds by construction at the edge).
  AerialSimulator aerial(kernels);
  const layout::Layout probe = single_square_layout(
      static_cast<std::int64_t>(cfg.calibration_feature_nm));
  const GridF intensity =
      aerial.intensity(layout::rasterize_target(probe, cfg.grid_size));
  double max_i = 0.0;
  for (std::size_t i = 0; i < intensity.size(); ++i)
    max_i = std::max(max_i, intensity[i]);
  EXPECT_GT(max_i, cfg.intensity_threshold);
}

TEST(Kernels, CacheKeyDistinguishesDefocus) {
  LithoConfig a = test_config();
  LithoConfig b = test_config();
  b.defocus_nm = 40.0;
  EXPECT_NE(a.kernel_cache_key(), b.kernel_cache_key());
}

TEST(Kernels, DefocusReducesContrast) {
  // Physical sanity: defocus lowers the peak intensity of a small feature.
  LithoConfig focus = test_config();
  LithoConfig blur = test_config();
  blur.defocus_nm = 100.0;
  AerialSimulator a_focus(cached_kernels(focus));
  AerialSimulator a_blur(cached_kernels(blur));
  const layout::Layout probe = single_square_layout(65);
  const GridF raster = layout::rasterize_target(probe, focus.grid_size);
  const GridF i_focus = a_focus.intensity(raster);
  const GridF i_blur = a_blur.intensity(raster);
  double peak_focus = 0.0, peak_blur = 0.0;
  for (std::size_t i = 0; i < i_focus.size(); ++i) {
    peak_focus = std::max(peak_focus, i_focus[i]);
    peak_blur = std::max(peak_blur, i_blur[i]);
  }
  // Both are calibrated to put the feature edge AT threshold, so compare
  // the peak-to-threshold contrast ratio instead of raw peaks.
  EXPECT_LT(peak_blur / blur.intensity_threshold,
            peak_focus / focus.intensity_threshold);
}

TEST(Kernels, CacheReturnsSameInstance) {
  const LithoConfig cfg = test_config();
  const SocsKernels& a = cached_kernels(cfg);
  const SocsKernels& b = cached_kernels(cfg);
  EXPECT_EQ(&a, &b);
}

// ---------------------------------------------------------------- aerial --

TEST(Aerial, EmptyMaskGivesZeroIntensity) {
  AerialSimulator aerial(cached_kernels(test_config()));
  const int n = aerial.grid_size();
  const GridF intensity = aerial.intensity(GridF(n, n, 0.0));
  for (std::size_t i = 0; i < intensity.size(); ++i)
    EXPECT_NEAR(intensity[i], 0.0, 1e-15);
}

TEST(Aerial, IntensityNonNegativeAndBlursEdges) {
  const LithoConfig cfg = test_config();
  AerialSimulator aerial(cached_kernels(cfg));
  const int n = cfg.grid_size;
  GridF mask(n, n, 0.0);
  for (int y = 24; y < 40; ++y)
    for (int x = 24; x < 40; ++x) mask.at(y, x) = 1.0;
  const GridF intensity = aerial.intensity(mask);
  double min_v = 1e9, max_v = -1e9;
  for (std::size_t i = 0; i < intensity.size(); ++i) {
    min_v = std::min(min_v, intensity[i]);
    max_v = std::max(max_v, intensity[i]);
  }
  EXPECT_GE(min_v, -1e-12);
  EXPECT_GT(max_v, cfg.intensity_threshold);
  // Blur: intensity just outside the mask edge is non-zero.
  EXPECT_GT(intensity.at(32, 42), 1e-5);
}

TEST(Aerial, GradientMatchesFiniteDifference) {
  // The adjoint backpropagate() must agree with numeric differentiation of
  // L = sum (I - I0)^2 w.r.t. the mask — this validates the entire ILT
  // gradient chain through the optical model.
  LithoConfig cfg = test_config();
  cfg.kernel_count = 3;
  AerialSimulator aerial(cached_kernels(cfg));
  const int n = cfg.grid_size;
  Rng rng(99);
  GridF mask(n, n, 0.0);
  for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = rng.uniform();

  const AerialFields fields = aerial.intensity_with_fields(mask);
  // L = 0.5 * sum I^2  ->  dL/dI = I.
  GridF dldi = fields.intensity;
  const GridF grad = aerial.backpropagate(dldi, fields);

  double l0 = 0.0;
  for (std::size_t i = 0; i < fields.intensity.size(); ++i)
    l0 += 0.5 * fields.intensity[i] * fields.intensity[i];

  (void)l0;
  // Central differences kill the truncation error of the quartic loss.
  const double eps = 1e-5;
  auto loss_at = [&](const GridF& m) {
    const GridF intensity2 = aerial.intensity(m);
    double l = 0.0;
    for (std::size_t i = 0; i < intensity2.size(); ++i)
      l += 0.5 * intensity2[i] * intensity2[i];
    return l;
  };
  for (const auto& [y, x] : {std::pair{n / 2, n / 2}, {10, 20}, {40, 33}}) {
    GridF plus = mask;
    plus.at(y, x) += eps;
    GridF minus = mask;
    minus.at(y, x) -= eps;
    const double numeric = (loss_at(plus) - loss_at(minus)) / (2.0 * eps);
    EXPECT_NEAR(grad.at(y, x), numeric,
                1e-5 + 1e-5 * std::abs(numeric))
        << "at (" << y << ", " << x << ")";
  }
}

TEST(Aerial, IntensityOnlyPathIsBitIdenticalToFieldsPath) {
  // The streaming intensity-only overload (no AerialFields materialized)
  // must reproduce the fields path bit-for-bit — it is what expose() and
  // the flow's violation checks run on.
  const LithoConfig cfg = test_config();
  AerialSimulator aerial(cached_kernels(cfg));
  const int n = cfg.grid_size;
  Rng rng(123);
  GridF mask(n, n, 0.0);
  for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = rng.uniform();

  const AerialFields fields = aerial.intensity_with_fields(mask);
  GridF streamed;
  aerial.intensity(mask, streamed);
  ASSERT_TRUE(streamed.same_shape(fields.intensity));
  for (std::size_t i = 0; i < streamed.size(); ++i)
    EXPECT_EQ(streamed[i], fields.intensity[i]) << "pixel " << i;
}

TEST(Aerial, OutParamOverloadsReuseWarmBuffersBitIdentically) {
  const LithoConfig cfg = test_config();
  AerialSimulator aerial(cached_kernels(cfg));
  const int n = cfg.grid_size;
  Rng rng(321);
  GridF mask(n, n, 0.0);
  for (std::size_t i = 0; i < mask.size(); ++i) mask[i] = rng.uniform();

  const AerialFields once = aerial.intensity_with_fields(mask);
  AerialFields reused;
  aerial.intensity_with_fields(mask, reused);  // cold fill
  aerial.intensity_with_fields(mask, reused);  // warm refill, same storage
  ASSERT_EQ(reused.fields.size(), once.fields.size());
  for (std::size_t i = 0; i < once.intensity.size(); ++i)
    EXPECT_EQ(reused.intensity[i], once.intensity[i]);

  const GridF grad_once = aerial.backpropagate(once.intensity, once);
  GridF grad_reused;
  aerial.backpropagate(reused.intensity, reused, grad_reused);
  aerial.backpropagate(reused.intensity, reused, grad_reused);
  for (std::size_t i = 0; i < grad_once.size(); ++i)
    EXPECT_EQ(grad_reused[i], grad_once[i]);
}

TEST(Simulator, ExposeAndPrintOutParamsMatchValueOverloads) {
  const LithoSimulator sim(test_config());
  const int n = sim.grid_size();
  Rng rng(456);
  GridF m1(n, n, 0.0), m2(n, n, 0.0);
  for (std::size_t i = 0; i < m1.size(); ++i) {
    m1[i] = rng.uniform();
    m2[i] = rng.uniform();
  }
  const GridF exposed = sim.expose(m1);
  GridF exposed_into;
  sim.expose_into(m1, exposed_into);
  sim.expose_into(m1, exposed_into);  // warm second pass
  for (std::size_t i = 0; i < exposed.size(); ++i)
    EXPECT_EQ(exposed_into[i], exposed[i]);

  const GridF printed = sim.print(m1, m2);
  GridF printed_into;
  sim.print_into(m1, m2, printed_into);
  for (std::size_t i = 0; i < printed.size(); ++i)
    EXPECT_EQ(printed_into[i], printed[i]);

  std::vector<GridF> responses;
  GridF multi;
  sim.print_masks_into({m1, m2}, responses, multi);
  const GridF multi_value = sim.print_masks({m1, m2});
  ASSERT_EQ(responses.size(), 2u);
  for (std::size_t i = 0; i < multi.size(); ++i)
    EXPECT_EQ(multi[i], multi_value[i]);
}

// ---------------------------------------------------------------- resist --

TEST(Resist, SigmoidBasics) {
  EXPECT_DOUBLE_EQ(sigmoid(0.0), 0.5);
  EXPECT_NEAR(sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(sigmoid(1.0) + sigmoid(-1.0), 1.0, 1e-12);
}

TEST(Resist, ResponseCrossesHalfAtThreshold) {
  const LithoConfig cfg = test_config();
  GridF intensity(1, 3);
  intensity.at(0, 0) = cfg.intensity_threshold;
  intensity.at(0, 1) = cfg.intensity_threshold + 0.05;
  intensity.at(0, 2) = cfg.intensity_threshold - 0.05;
  const GridF t = resist_response(intensity, cfg);
  EXPECT_NEAR(t.at(0, 0), 0.5, 1e-12);
  EXPECT_GT(t.at(0, 1), 0.95);
  EXPECT_LT(t.at(0, 2), 0.05);
}

TEST(Resist, DerivativePeaksAtThreshold) {
  const LithoConfig cfg = test_config();
  GridF t(1, 3);
  t.at(0, 0) = 0.5;
  t.at(0, 1) = 0.99;
  t.at(0, 2) = 0.01;
  const GridF d = resist_derivative(t, cfg);
  EXPECT_NEAR(d.at(0, 0), cfg.theta_z * 0.25, 1e-12);
  EXPECT_LT(d.at(0, 1), d.at(0, 0));
  EXPECT_LT(d.at(0, 2), d.at(0, 0));
}

TEST(Resist, CombineExposuresSaturatesAtOne) {
  GridF a(1, 2), b(1, 2);
  a.at(0, 0) = 0.7;
  b.at(0, 0) = 0.6;
  a.at(0, 1) = 0.2;
  b.at(0, 1) = 0.3;
  const GridF t = combine_exposures(a, b);
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 0.5);
  const GridF mask = combine_gradient_mask(a, b);
  EXPECT_DOUBLE_EQ(mask.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(mask.at(0, 1), 1.0);
}

TEST(Resist, BinarizeThreshold) {
  GridF t(1, 2);
  t.at(0, 0) = 0.51;
  t.at(0, 1) = 0.49;
  const GridU8 b = binarize(t);
  EXPECT_EQ(b.at(0, 0), 1);
  EXPECT_EQ(b.at(0, 1), 0);
}

// --------------------------------------------------------------- metrics --

TEST(Metrics, BilinearSamplingInterpolates) {
  GridF g(2, 2);
  g.at(0, 0) = 0.0;
  g.at(0, 1) = 1.0;
  g.at(1, 0) = 2.0;
  g.at(1, 1) = 3.0;
  // Center of the 2x2 block is the average.
  EXPECT_NEAR(sample_bilinear(g, 1.0, 1.0), 1.5, 1e-12);
  // Exactly at a pixel center.
  EXPECT_NEAR(sample_bilinear(g, 0.5, 0.5), 0.0, 1e-12);
  EXPECT_NEAR(sample_bilinear(g, 1.5, 1.5), 3.0, 1e-12);
}

TEST(Metrics, CheckpointsPerContactAreFourMidpoints) {
  const layout::Layout l = single_square_layout(64);
  const auto cps = make_checkpoints(l, 40.0);
  ASSERT_EQ(cps.size(), 4u);
  for (const auto& cp : cps)
    EXPECT_NEAR(std::hypot(cp.normal_x, cp.normal_y), 1.0, 1e-12);
}

TEST(Metrics, LongEdgesGetMultipleCheckpoints) {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({100, 100}, 200, 64));
  const auto cps = make_checkpoints(l, 40.0);
  // 200nm edges get 5 checkpoints each, 64nm edges get 1: 2*5 + 2*1 = 12.
  EXPECT_EQ(cps.size(), 12u);
}

TEST(Metrics, PerfectPrintHasZeroEpe) {
  // Synthesize an ideal response: exactly the target raster smoothed by
  // nothing — contour lies exactly on the pattern edges.
  const layout::Layout l = single_square_layout(256);
  const LithoConfig cfg = test_config();
  const layout::RasterTransform transform{l.clip, cfg.grid_size};
  const GridF response = layout::rasterize_target(l, cfg.grid_size);
  const EpeReport report = measure_epe(response, l, transform, cfg);
  EXPECT_EQ(report.violation_count, 0);
  EXPECT_LT(report.max_epe_nm, cfg.epe_threshold_nm);
}

TEST(Metrics, UniformlyShrunkPrintMeasuresTheBias) {
  const layout::Layout target = single_square_layout(256);
  layout::Layout shrunk = single_square_layout(224);  // 16nm per side bias
  const LithoConfig cfg = test_config();
  const layout::RasterTransform transform{target.clip, cfg.grid_size};
  const GridF response = layout::rasterize_target(shrunk, cfg.grid_size);
  const EpeReport report = measure_epe(response, target, transform, cfg);
  EXPECT_EQ(report.violation_count,
            static_cast<int>(report.measurements.size()));
  for (const auto& m : report.measurements) EXPECT_NEAR(m.epe_nm, 16.0, 2.5);
}

TEST(Metrics, MissingPatternClampsToSearchRange) {
  const layout::Layout l = single_square_layout(256);
  const LithoConfig cfg = test_config();
  const layout::RasterTransform transform{l.clip, cfg.grid_size};
  const GridF response(cfg.grid_size, cfg.grid_size, 0.0);  // prints nothing
  const EpeReport report = measure_epe(response, l, transform, cfg);
  for (const auto& m : report.measurements) {
    EXPECT_FALSE(m.contour_found);
    EXPECT_DOUBLE_EQ(m.epe_nm, cfg.epe_search_range_nm);
    EXPECT_TRUE(m.violation);
  }
}

TEST(Metrics, EpeTracksUniformShiftOfThePrint) {
  // Shifting the printed image by one pixel along x must register as an
  // ~pixel-sized EPE on the x-normal checkpoints and leave y-normal
  // checkpoints (of a square) nearly unchanged.
  const layout::Layout l = single_square_layout(256);
  const LithoConfig cfg = test_config();
  const layout::RasterTransform transform{l.clip, cfg.grid_size};
  const GridF nominal = layout::rasterize_target(l, cfg.grid_size);
  GridF shifted(cfg.grid_size, cfg.grid_size, 0.0);
  for (int y = 0; y < cfg.grid_size; ++y)
    for (int x = 1; x < cfg.grid_size; ++x)
      shifted.at(y, x) = nominal.at(y, x - 1);
  const EpeReport report = measure_epe(shifted, l, transform, cfg);
  const double px = transform.nm_per_pixel();
  for (const auto& m : report.measurements) {
    if (m.checkpoint.normal_x != 0.0)
      EXPECT_NEAR(m.epe_nm, px, 1.5) << "x-normal checkpoint";
    else
      EXPECT_LT(m.epe_nm, 2.0) << "y-normal checkpoint";
  }
}

TEST(Metrics, L2ErrorOfIdenticalImagesIsZero) {
  GridF a(8, 8, 0.3);
  EXPECT_DOUBLE_EQ(l2_error(a, a), 0.0);
  GridF b = a;
  b.at(0, 0) += 2.0;
  EXPECT_DOUBLE_EQ(l2_error(a, b), 4.0);
}

TEST(Metrics, ViolationDetectorFindsMissing) {
  const layout::Layout l = single_square_layout(256);
  const layout::RasterTransform transform{l.clip, 64};
  const GridU8 printed(64, 64, 0);
  const ViolationReport report = detect_print_violations(printed, l, transform);
  EXPECT_EQ(report.missing, 1);
  EXPECT_EQ(report.bridges, 0);
  EXPECT_EQ(report.extra, 0);
}

TEST(Metrics, ViolationDetectorFindsBridge) {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({256, 448}, 128, 128));
  l.add_pattern(geometry::Rect::from_size({640, 448}, 128, 128));
  const layout::RasterTransform transform{l.clip, 64};
  // Printed: one blob covering both patterns and the gap between them.
  GridU8 printed(64, 64, 0);
  for (int y = 28; y < 36; ++y)
    for (int x = 16; x < 48; ++x) printed.at(y, x) = 1;
  const ViolationReport report = detect_print_violations(printed, l, transform);
  EXPECT_EQ(report.bridges, 1);
  EXPECT_EQ(report.missing, 0);
}

TEST(Metrics, ViolationDetectorFindsExtra) {
  const layout::Layout l = single_square_layout(256);
  const layout::RasterTransform transform{l.clip, 64};
  GridU8 printed(64, 64, 0);
  // Print the real pattern (center 16x16 block = 256nm at 16nm/px).
  for (int y = 24; y < 40; ++y)
    for (int x = 24; x < 40; ++x) printed.at(y, x) = 1;
  // Plus a spurious blob in a corner.
  for (int y = 2; y < 6; ++y)
    for (int x = 2; x < 6; ++x) printed.at(y, x) = 1;
  const ViolationReport report = detect_print_violations(printed, l, transform);
  EXPECT_EQ(report.extra, 1);
  EXPECT_EQ(report.missing, 0);
}

// -------------------------------------------------------------- simulator --

TEST(Simulator, IsolatedContactPrintsOnTarget) {
  // End-to-end physics check: an isolated contact at the calibration size
  // must print with no violations and no EPE violations even without OPC
  // (the dose is anchored to exactly this feature).
  const LithoConfig cfg = test_config();
  LithoSimulator sim(cfg);
  const layout::Layout l = single_square_layout(
      static_cast<std::int64_t>(cfg.calibration_feature_nm));
  const GridF response = sim.print_decomposition(l, {0});
  const PrintabilityReport report = sim.evaluate(response, l);
  EXPECT_EQ(report.violations.total(), 0);
  EXPECT_EQ(report.epe.violation_count, 0)
      << "max EPE " << report.epe.max_epe_nm;
}

TEST(Simulator, ConflictPairPrintsWorseOnOneMaskThanSplit) {
  // The decomposition premise: two contacts at sub-nmin spacing print badly
  // on one mask (pitch below the resolution limit) and fine on two.
  LithoConfig cfg = test_config();
  LithoSimulator sim(cfg);
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({412, 480}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({547, 480}, 65, 65));  // 70nm gap

  const GridF same_mask = sim.print_decomposition(l, {0, 0});
  const GridF split = sim.print_decomposition(l, {0, 1});
  const PrintabilityReport same_report = sim.evaluate(same_mask, l);
  const PrintabilityReport split_report = sim.evaluate(split, l);

  // Split pair prints cleanly; same-mask pair shows the proximity failure.
  EXPECT_EQ(split_report.violations.total(), 0);
  EXPECT_GT(same_report.epe.violation_count + same_report.violations.total(),
            split_report.epe.violation_count +
                split_report.violations.total());
  EXPECT_LT(split_report.score(), same_report.score());
}

TEST(Simulator, MismatchedClipThrows) {
  LithoSimulator sim(test_config());
  layout::Layout l = single_square_layout(256, 2048);  // 2048nm clip
  EXPECT_THROW(sim.print_decomposition(l, {0}), ldmo::Error);
}

TEST(Simulator, ScoreFollowsEquationNine) {
  PrintabilityReport report;
  report.l2 = 100.0;
  report.epe.violation_count = 2;
  report.violations.missing = 1;
  EXPECT_DOUBLE_EQ(report.score(), 100.0 + 3500.0 * 2 + 8000.0 * 1);
  const ScoreWeights custom{2.0, 10.0, 100.0};
  EXPECT_DOUBLE_EQ(report.score(custom), 200.0 + 20.0 + 100.0);
}

}  // namespace
}  // namespace ldmo::litho
