// Online-learning flywheel tests (DESIGN.md §16):
//
//   - training-log framing: round trip, resumed appends, torn-tail
//     tolerance (dropped + flagged + healed by the next writer) vs
//     mid-file corruption (throws — bit rot must not train a model),
//   - the serve-time capture sink: sampling, the max_records cap
//     (counting records that predate this process), drop-not-block
//     accounting, and the server integration — kOk fresh runs are
//     captured, cached and degraded responses never are,
//   - Server::swap_backend: the in-process blue/green path retires every
//     cached result via the config-fingerprint change while queued and
//     future requests keep succeeding,
//   - FineTuner: no-op without data, the min_new_records gate, bootstrap
//     promotion, the min_gain gate holding, recovery of a mistrained
//     incumbent through gated promotion, and the serve -> capture ->
//     fine-tune -> hot-swap loop end to end (local_promoter).
//
// Flow-running tests use the 32-pixel serving-tier lithography model
// (same budget as test_serve.cpp). Synthetic tuner fixtures use constant-
// brightness images whose score IS the brightness — rankable by a tiny
// CNN in a handful of epochs, deterministic by construction.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/failpoint.h"
#include "core/predictor.h"
#include "flywheel/log.h"
#include "flywheel/sink.h"
#include "flywheel/tuner.h"
#include "layout/generator.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "serve/server.h"

namespace ldmo::flywheel {
namespace {

litho::LithoConfig fast_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 32;
  cfg.pixel_nm = 32.0;  // 32 px x 32 nm = the generator's 1024nm clip
  return cfg;
}

core::FlowEngineConfig fast_engine_config() {
  core::FlowEngineConfig cfg;
  cfg.litho = fast_litho();
  return cfg;
}

serve::ServeConfig fast_serve_config() {
  serve::ServeConfig cfg;
  cfg.engine = fast_engine_config();
  cfg.dispatchers = 2;
  return cfg;
}

layout::Layout test_layout(std::uint64_t seed) {
  return layout::LayoutGenerator().generate(seed);
}

/// Tiny predictor network matched to the synthetic 16px training pairs.
nn::ResNetConfig tiny_network() {
  nn::ResNetConfig cfg;
  cfg.input_size = 16;
  cfg.width_multiplier = 0.125;
  return cfg;
}

/// Constant-brightness pair: every pixel is `brightness`, and the actual
/// score is the brightness itself — the simplest rankable dataset.
TrainingPair flat_pair(int image_size, double brightness) {
  TrainingPair pair;
  pair.image.assign(static_cast<std::size_t>(image_size) *
                        static_cast<std::size_t>(image_size),
                    static_cast<float>(brightness));
  pair.score = brightness;
  return pair;
}

/// Writes `count` flat pairs with distinct brightnesses to a fresh log.
void write_flat_log(const std::string& path, int image_size, int count,
                    bool negate_scores = false) {
  TrainingLogWriter writer(path, image_size);
  for (int i = 0; i < count; ++i) {
    TrainingPair pair =
        flat_pair(image_size, static_cast<double>(i + 1) /
                                  static_cast<double>(count));
    if (negate_scores) pair.score = -pair.score;
    writer.append(pair);
  }
}

/// Serialized-weights blob of a model trained to rank flat images by
/// NEGATED brightness — a deliberately mistrained incumbent.
std::vector<std::uint8_t> mistrained_blob(const std::string& staging) {
  nn::ResNetRegressor model(tiny_network());
  std::vector<nn::Example> wrong;
  for (int i = 0; i < 12; ++i) {
    const TrainingPair pair =
        flat_pair(16, static_cast<double>(i + 1) / 12.0);
    nn::Example example;
    example.image = nn::Tensor({1, 16, 16});
    std::copy(pair.image.begin(), pair.image.end(), example.image.data());
    example.label = static_cast<float>(1.0 - 2.0 * pair.score);  // inverted
    wrong.push_back(std::move(example));
  }
  nn::TrainerConfig tcfg;
  tcfg.epochs = 12;
  tcfg.batch_size = 4;
  tcfg.adam.learning_rate = 3e-3;
  nn::train_regressor(model, wrong, tcfg);
  nn::save_parameters(model.parameters(), staging);
  std::ifstream in(staging, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

class FlywheelTest : public ::testing::Test {
 protected:
  void SetUp() override { fail::disarm_all(); }
  void TearDown() override {
    fail::disarm_all();
    for (const std::string& path : cleanup_) std::remove(path.c_str());
  }
  /// Registers a path for removal and returns it.
  std::string scratch(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }
  std::vector<std::string> cleanup_;
};

// --- training log framing ---------------------------------------------------

TEST_F(FlywheelTest, LogRoundTripPreservesPairsAndOrder) {
  const std::string path = scratch("test_flywheel_roundtrip.bin");
  {
    TrainingLogWriter writer(path, 8);
    EXPECT_EQ(writer.image_size(), 8);
    writer.append(flat_pair(8, 0.25));
    writer.append(flat_pair(8, 0.75));
    writer.append(flat_pair(8, 0.5));
    EXPECT_EQ(writer.appended(), 3u);
  }
  EXPECT_EQ(training_log_record_count(path), 3u);
  const TrainingLog log = read_training_log(path);
  EXPECT_EQ(log.image_size, 8);
  EXPECT_FALSE(log.torn_tail);
  ASSERT_EQ(log.pairs.size(), 3u);
  EXPECT_DOUBLE_EQ(log.pairs[0].score, 0.25);
  EXPECT_DOUBLE_EQ(log.pairs[1].score, 0.75);
  EXPECT_DOUBLE_EQ(log.pairs[2].score, 0.5);
  ASSERT_EQ(log.pairs[0].image.size(), 64u);
  EXPECT_FLOAT_EQ(log.pairs[0].image[0], 0.25f);
  EXPECT_FLOAT_EQ(log.pairs[0].image[63], 0.25f);
}

TEST_F(FlywheelTest, LogRecordBytesMatchesLayout) {
  // image_size^2 float32 + f64 score + u64 checksum.
  EXPECT_EQ(training_log_record_bytes(8), 8u * 8u * 4u + 8u + 8u);
}

TEST_F(FlywheelTest, ReopenedWriterAppendsAfterExistingRecords) {
  const std::string path = scratch("test_flywheel_reopen.bin");
  { TrainingLogWriter(path, 8).append(flat_pair(8, 0.1)); }
  {
    TrainingLogWriter writer(path, 8);
    EXPECT_EQ(writer.appended(), 0u);  // per-writer, not per-file
    writer.append(flat_pair(8, 0.2));
  }
  const TrainingLog log = read_training_log(path);
  ASSERT_EQ(log.pairs.size(), 2u);
  EXPECT_DOUBLE_EQ(log.pairs[0].score, 0.1);
  EXPECT_DOUBLE_EQ(log.pairs[1].score, 0.2);
}

TEST_F(FlywheelTest, MismatchedImageSizeRefusesToOpen) {
  const std::string path = scratch("test_flywheel_mismatch.bin");
  { TrainingLogWriter(path, 8).append(flat_pair(8, 0.5)); }
  EXPECT_THROW(TrainingLogWriter(path, 16), Error);
}

TEST_F(FlywheelTest, BadMagicThrows) {
  const std::string path = scratch("test_flywheel_badmagic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a flywheel log";
  }
  EXPECT_THROW((void)read_training_log(path), Error);
  EXPECT_THROW(TrainingLogWriter(path, 8), Error);
}

TEST_F(FlywheelTest, TornTailIsDroppedFlaggedAndHealedByTheNextWriter) {
  const std::string path = scratch("test_flywheel_torn.bin");
  write_flat_log(path, 8, 3);
  // Crash mid-append: the file ends half way through record 3.
  const std::size_t record = training_log_record_bytes(8);
  const std::size_t header = 12;  // magic + u32 image size
  std::filesystem::resize_file(path, header + 2 * record + record / 2);

  EXPECT_EQ(training_log_record_count(path), 2u);
  const TrainingLog torn = read_training_log(path);
  EXPECT_TRUE(torn.torn_tail);
  ASSERT_EQ(torn.pairs.size(), 2u);

  // The next writer truncates the partial record and appends cleanly.
  TrainingLogWriter(path, 8).append(flat_pair(8, 0.9));
  const TrainingLog healed = read_training_log(path);
  EXPECT_FALSE(healed.torn_tail);
  ASSERT_EQ(healed.pairs.size(), 3u);
  EXPECT_DOUBLE_EQ(healed.pairs[2].score, 0.9);
}

TEST_F(FlywheelTest, CorruptFinalChecksumIsATornTailNotAnError) {
  const std::string path = scratch("test_flywheel_tailsum.bin");
  write_flat_log(path, 8, 2);
  {
    // Flip a byte inside the LAST record's image payload.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(12 + static_cast<std::streamoff>(
                        training_log_record_bytes(8)) + 4);
    file.put(static_cast<char>(0xFF));
  }
  const TrainingLog log = read_training_log(path);
  EXPECT_TRUE(log.torn_tail);
  ASSERT_EQ(log.pairs.size(), 1u);
}

TEST_F(FlywheelTest, CorruptionBeforeTheTailThrows) {
  const std::string path = scratch("test_flywheel_rot.bin");
  write_flat_log(path, 8, 3);
  {
    // Flip a byte inside the FIRST record: bit rot, not a torn append.
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(12 + 4);
    file.put(static_cast<char>(0xFF));
  }
  EXPECT_THROW((void)read_training_log(path), Error);
}

// --- capture sink -----------------------------------------------------------

TEST_F(FlywheelTest, SinkSamplesOneOfEveryN) {
  const std::string path = scratch("test_flywheel_sample.bin");
  SinkConfig cfg;
  cfg.path = path;
  cfg.image_size = 16;
  cfg.sample_every = 2;
  const layout::Layout layout = test_layout(11);
  const layout::Assignment assignment(layout.patterns.size(), 0);
  {
    TrainingLogSink sink(cfg);
    for (int i = 0; i < 6; ++i)
      sink.on_result(layout, assignment, static_cast<double>(i));
    sink.drain();
    EXPECT_EQ(sink.captured(), 3);
    EXPECT_EQ(sink.dropped(), 0);  // sampled-out is not a drop
  }
  const TrainingLog log = read_training_log(path);
  ASSERT_EQ(log.pairs.size(), 3u);
  // 1-of-2 sampling keeps the 1st, 3rd, 5th eligible result.
  EXPECT_DOUBLE_EQ(log.pairs[0].score, 0.0);
  EXPECT_DOUBLE_EQ(log.pairs[1].score, 2.0);
  EXPECT_DOUBLE_EQ(log.pairs[2].score, 4.0);
}

TEST_F(FlywheelTest, SinkStopsAtMaxRecordsCountingPreexistingOnes) {
  const std::string path = scratch("test_flywheel_cap.bin");
  write_flat_log(path, 16, 2);  // two records predate the sink
  SinkConfig cfg;
  cfg.path = path;
  cfg.image_size = 16;
  cfg.max_records = 3;
  const layout::Layout layout = test_layout(12);
  const layout::Assignment assignment(layout.patterns.size(), 0);
  {
    TrainingLogSink sink(cfg);
    sink.on_result(layout, assignment, 0.5);
    sink.drain();
    sink.on_result(layout, assignment, 0.6);  // over the cap
    sink.on_result(layout, assignment, 0.7);
    sink.drain();
    EXPECT_EQ(sink.captured(), 1);
    EXPECT_EQ(sink.dropped(), 2);
  }
  EXPECT_EQ(training_log_record_count(path), 3u);
}

TEST_F(FlywheelTest, ServerCapturesFreshOkRunsOnly) {
  const std::string path = scratch("test_flywheel_serve_capture.bin");
  auto sink = std::make_shared<TrainingLogSink>(SinkConfig{
      .path = path, .image_size = 32, .sample_every = 1});
  serve::ServeConfig cfg = fast_serve_config();
  cfg.capture = sink;
  serve::Server server(cfg);

  serve::ServeRequest first;
  first.layout = test_layout(21);
  const serve::ServeResponse fresh =
      server.submit(std::move(first)).response.get();
  ASSERT_EQ(fresh.status, serve::ServeStatus::kOk);

  serve::ServeRequest repeat;
  repeat.layout = test_layout(21);
  const serve::ServeResponse cached =
      server.submit(std::move(repeat)).response.get();
  ASSERT_EQ(cached.status, serve::ServeStatus::kCached);

  sink->drain();
  // The fresh run was captured with its ACTUAL post-ILT score; the cache
  // hit replayed work the hook already saw and must not be re-captured.
  EXPECT_EQ(sink->captured(), 1);
  const TrainingLog log = read_training_log(path);
  ASSERT_EQ(log.pairs.size(), 1u);
  EXPECT_DOUBLE_EQ(log.pairs[0].score, fresh.result.ilt.report.score());
  EXPECT_EQ(log.image_size, 32);
}

/// Backend that fails every scoring call: the server degrades the request
/// (generation-order candidate ranking) instead of failing it.
class ThrowingPredictor : public core::PrintabilityPredictor {
 public:
  double score(const layout::Layout&, const layout::Assignment&) override {
    throw std::runtime_error("backend exploded");
  }
  std::string name() const override { return "throwing"; }
};

TEST_F(FlywheelTest, DegradedResultsAreNeverCaptured) {
  const std::string path = scratch("test_flywheel_degraded.bin");
  auto sink = std::make_shared<TrainingLogSink>(SinkConfig{
      .path = path, .image_size = 32, .sample_every = 1});
  serve::ServeConfig cfg = fast_serve_config();
  cfg.capture = sink;
  serve::Server server(cfg, std::make_unique<ThrowingPredictor>());

  serve::ServeRequest request;
  request.layout = test_layout(22);
  const serve::ServeResponse response =
      server.submit(std::move(request)).response.get();
  ASSERT_EQ(response.status, serve::ServeStatus::kOk);
  ASSERT_TRUE(response.degraded);

  sink->drain();
  // A degraded ranking is generation order, not model output — feeding it
  // back would poison the fine-tune set (ISSUE-10 satellite 3).
  EXPECT_EQ(sink->captured(), 0);
  EXPECT_EQ(training_log_record_count(path), 0u);
}

// --- in-process blue/green swap ---------------------------------------------

/// Constant scorer with a distinct name, for swap-identity assertions.
class ConstantPredictor : public core::PrintabilityPredictor {
 public:
  double score(const layout::Layout&, const layout::Assignment&) override {
    return 0.0;
  }
  std::string name() const override { return "constant"; }
};

TEST_F(FlywheelTest, SwapBackendRetiresCacheAndKeepsServing) {
  serve::Server server(fast_serve_config());
  serve::ServeRequest first;
  first.layout = test_layout(31);
  ASSERT_EQ(server.submit(std::move(first)).response.get().status,
            serve::ServeStatus::kOk);
  serve::ServeRequest warm;
  warm.layout = test_layout(31);
  ASSERT_EQ(server.submit(std::move(warm)).response.get().status,
            serve::ServeStatus::kCached);
  const std::uint64_t fp_before = server.config_fingerprint();
  const std::string name_before = server.predictor_name();

  server.swap_backend(std::make_unique<core::VersionedPredictor>(
      std::make_unique<ConstantPredictor>(), 1));
  EXPECT_EQ(server.backend_swaps(), 1);
  EXPECT_EQ(server.predictor_name(), "constant@v1");
  EXPECT_NE(server.predictor_name(), name_before);
  // The version rides in the predictor name and the name in the config
  // fingerprint, so every cached result key is now unreachable.
  EXPECT_NE(server.config_fingerprint(), fp_before);

  serve::ServeRequest recompute;
  recompute.layout = test_layout(31);
  EXPECT_EQ(server.submit(std::move(recompute)).response.get().status,
            serve::ServeStatus::kOk);  // not kCached: the old entry retired
  serve::ServeRequest recached;
  recached.layout = test_layout(31);
  EXPECT_EQ(server.submit(std::move(recached)).response.get().status,
            serve::ServeStatus::kCached);  // the new model caches afresh
}

// --- fine-tuner -------------------------------------------------------------

TunerConfig tiny_tuner(const std::string& log_path) {
  TunerConfig cfg;
  cfg.log_path = log_path;
  cfg.network = tiny_network();
  cfg.trainer.epochs = 16;
  cfg.trainer.batch_size = 6;
  cfg.trainer.adam.learning_rate = 3e-3;
  cfg.min_new_records = 12;
  cfg.holdout_every = 4;
  return cfg;
}

TEST_F(FlywheelTest, TunerIsANoOpWithoutALog) {
  FineTuner tuner(tiny_tuner("test_flywheel_no_such_log.bin"), nullptr);
  const TuneRound round = tuner.run_once();
  EXPECT_FALSE(round.attempted);
  EXPECT_FALSE(round.promoted);
  EXPECT_EQ(tuner.rounds(), 0);
}

TEST_F(FlywheelTest, TunerWaitsForMinNewRecords) {
  const std::string path = scratch("test_flywheel_waiting.bin");
  write_flat_log(path, 16, 6);  // min_new_records is 12
  FineTuner tuner(tiny_tuner(path), nullptr);
  const TuneRound round = tuner.run_once();
  EXPECT_FALSE(round.attempted);
  EXPECT_EQ(round.records, 6u);
  EXPECT_EQ(tuner.rounds(), 0);
}

TEST_F(FlywheelTest, BootstrapRoundTrainsAndPromotes) {
  const std::string path = scratch("test_flywheel_bootstrap.bin");
  scratch(path + ".candidate.bin");
  write_flat_log(path, 16, 24);

  std::uint64_t promoted_version = 0;
  std::vector<std::uint8_t> promoted_blob;
  FineTuner tuner(tiny_tuner(path),
                  [&](std::uint64_t version,
                      const std::vector<std::uint8_t>& blob) {
                    promoted_version = version;
                    promoted_blob = blob;
                  });
  const TuneRound round = tuner.run_once();
  EXPECT_TRUE(round.attempted);
  EXPECT_EQ(round.records, 24u);
  EXPECT_EQ(round.train_count, 18u);
  EXPECT_EQ(round.holdout_count, 6u);
  // No incumbent was ever set: the sentinel guarantees the first trained
  // candidate wins, bootstrapping the loop.
  EXPECT_DOUBLE_EQ(round.incumbent_corr, -2.0);
  EXPECT_GT(round.candidate_corr, 0.5);  // it actually learned the ranking
  EXPECT_TRUE(round.promoted);
  EXPECT_EQ(round.version, 1u);
  EXPECT_EQ(promoted_version, 1u);
  EXPECT_FALSE(promoted_blob.empty());
  EXPECT_EQ(tuner.promotions(), 1);

  // Same log, no new pairs: the next round must not fire.
  const TuneRound idle = tuner.run_once();
  EXPECT_FALSE(idle.attempted);
  EXPECT_EQ(tuner.rounds(), 1);
}

TEST_F(FlywheelTest, UnreachableMinGainHoldsTheGate) {
  const std::string path = scratch("test_flywheel_gate.bin");
  write_flat_log(path, 16, 24);
  TunerConfig cfg = tiny_tuner(path);
  cfg.min_gain = 10.0;  // no correlation gain can clear this
  bool promoted = false;
  FineTuner tuner(cfg, [&](std::uint64_t, const std::vector<std::uint8_t>&) {
    promoted = true;
  });
  const TuneRound round = tuner.run_once();
  EXPECT_TRUE(round.attempted);
  EXPECT_FALSE(round.promoted);
  EXPECT_FALSE(promoted);
  EXPECT_EQ(tuner.version(), 0u);
  EXPECT_NE(round.detail.find("gate held"), std::string::npos);
}

TEST_F(FlywheelTest, MistrainedIncumbentRecoversViaGatedPromotion) {
  const std::string path = scratch("test_flywheel_recovery.bin");
  scratch(path + ".candidate.bin");
  scratch(path + ".candidate.bin.incumbent");
  const std::string staging = scratch("test_flywheel_mistrained.bin");
  write_flat_log(path, 16, 24);

  FineTuner tuner(tiny_tuner(path), nullptr);
  // Deploy a model trained on inverted labels: its held-out rank
  // correlation is deeply negative — the mistrained-predictor scenario the
  // recovery drill models.
  tuner.set_incumbent(mistrained_blob(staging));
  const TuneRound round = tuner.run_once();
  EXPECT_TRUE(round.attempted);
  EXPECT_LT(round.incumbent_corr, 0.0);
  // Fine-tuning on the true labels must beat the inverted incumbent, and
  // the gate promotes the recovery automatically.
  EXPECT_GT(round.candidate_corr, round.incumbent_corr);
  EXPECT_TRUE(round.promoted);
  EXPECT_EQ(tuner.promotions(), 1);
}

TEST_F(FlywheelTest, ServeCaptureTuneSwapLoopEndToEnd) {
  const std::string path = scratch("test_flywheel_loop.bin");
  const std::string weights = scratch("test_flywheel_loop_weights.bin");
  scratch(path + ".candidate.bin");

  auto sink = std::make_shared<TrainingLogSink>(SinkConfig{
      .path = path, .image_size = 32, .sample_every = 1});
  serve::ServeConfig cfg = fast_serve_config();
  cfg.capture = sink;
  serve::Server server(cfg);

  // Serve traffic: each fresh run feeds the sink a real (decomposition
  // image, actual ILT score) pair.
  for (std::uint64_t seed = 41; seed < 49; ++seed) {
    serve::ServeRequest request;
    request.layout = test_layout(seed);
    ASSERT_EQ(server.submit(std::move(request)).response.get().status,
              serve::ServeStatus::kOk);
  }
  sink->drain();
  ASSERT_EQ(sink->captured(), 8);
  const std::uint64_t fp_before = server.config_fingerprint();

  // One flywheel round through the real local deployment edge.
  TunerConfig tcfg;
  tcfg.log_path = path;
  tcfg.network.input_size = 32;
  tcfg.network.width_multiplier = 0.125;
  tcfg.trainer.epochs = 4;
  tcfg.trainer.batch_size = 6;
  tcfg.min_new_records = 8;
  tcfg.holdout_every = 3;
  FineTuner tuner(tcfg, local_promoter(server, tcfg.network, weights));
  const TuneRound round = tuner.run_once();
  EXPECT_TRUE(round.attempted);
  ASSERT_TRUE(round.promoted);

  // The promoted CNN is live, versioned, and every pre-swap cache entry is
  // unreachable: the served corpus gets re-scored by the new model.
  EXPECT_EQ(server.predictor_name(), "cnn@v1");
  EXPECT_EQ(server.backend_swaps(), 1);
  EXPECT_NE(server.config_fingerprint(), fp_before);
  serve::ServeRequest recompute;
  recompute.layout = test_layout(41);
  EXPECT_EQ(server.submit(std::move(recompute)).response.get().status,
            serve::ServeStatus::kOk);
}

}  // namespace
}  // namespace ldmo::flywheel
