// End-to-end integration tests: the complete paper pipeline at miniature
// scale — corpus generation -> sampling -> ILT labeling -> CNN training ->
// CNN-driven LDMO flow — plus cross-module consistency checks.
#include <gtest/gtest.h>

#include <memory>

#include "core/baseline_flows.h"
#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "layout/generator.h"
#include "mpl/baselines.h"
#include "mpl/decomposition_generator.h"
#include "nn/trainer.h"
#include "sampling/decomposition_sampling.h"
#include "sampling/layout_sampling.h"
#include "sampling/training_set.h"

namespace ldmo {
namespace {

litho::LithoConfig tiny_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  cfg.kernel_count = 4;
  return cfg;
}

const litho::LithoSimulator& simulator() {
  static litho::LithoSimulator sim(tiny_litho());
  return sim;
}

opc::IltConfig quick_ilt() {
  opc::IltConfig cfg;
  cfg.max_iterations = 10;
  cfg.theta_m_anneal = 1.25;  // reach full binarization in 10 iterations
  return cfg;
}

TEST(Integration, FullCnnPipelineRunsEndToEnd) {
  // 1. Corpus + layout sampling.
  layout::LayoutGenerator gen;
  const std::vector<layout::Layout> corpus = gen.generate_corpus(6, 700);
  sampling::LayoutSamplingConfig lcfg;
  lcfg.clusters = 2;
  lcfg.per_cluster = 1;
  const auto selection = sampling::sample_layouts(corpus, lcfg);
  ASSERT_GE(selection.selected.size(), 1u);

  // 2. Decomposition sampling + labeling.
  std::vector<layout::Layout> layouts;
  std::vector<std::vector<layout::Assignment>> decomps;
  for (int idx : selection.selected) {
    layouts.push_back(corpus[static_cast<std::size_t>(idx)]);
    sampling::DecompositionSamplingConfig dcfg;
    dcfg.max_samples = 4;
    decomps.push_back(sampling::sample_decompositions(layouts.back(), dcfg));
  }
  opc::IltEngine engine(simulator(), quick_ilt());
  sampling::TrainingSetConfig tcfg;
  tcfg.image_size = 32;
  const sampling::TrainingSet set =
      sampling::build_training_set(layouts, decomps, engine, tcfg);
  ASSERT_GE(set.examples.size(), 4u);

  // 3. CNN training.
  nn::ResNetConfig ncfg;
  ncfg.input_size = 32;
  ncfg.width_multiplier = 0.125;
  auto network = std::make_unique<nn::ResNetRegressor>(ncfg);
  nn::TrainerConfig train_cfg;
  train_cfg.epochs = 3;
  const auto history = nn::train_regressor(*network, set.examples, train_cfg);
  EXPECT_EQ(history.size(), 3u);

  // 4. CNN-driven flow on a held-out layout.
  core::CnnPredictor predictor(std::move(network));
  core::LdmoConfig flow_cfg;
  flow_cfg.ilt = quick_ilt();
  core::LdmoFlow flow(simulator(), predictor, flow_cfg);
  const core::LdmoResult result = flow.run(gen.generate(800));
  EXPECT_GT(result.candidates_generated, 0);
  EXPECT_FALSE(result.ilt.mask1.empty());
  // The flow must produce a full metrology report.
  EXPECT_FALSE(result.ilt.report.epe.measurements.empty());
}

TEST(Integration, AllFlowsAgreeOnLayoutGeometry) {
  // Every flow must return masks of the simulator grid and an assignment
  // of the layout's size, whatever path it took.
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(801);
  const int n = simulator().grid_size();

  core::TwoStageFlow two_stage(
      simulator(),
      [](const layout::Layout& layout) {
        return mpl::BalancedDecomposer().decompose(layout);
      },
      quick_ilt());
  const auto r1 = two_stage.run(l);
  EXPECT_EQ(r1.ilt.mask1.height(), n);
  EXPECT_EQ(static_cast<int>(r1.chosen.size()), l.pattern_count());

  core::UnifiedGreedyConfig ucfg;
  ucfg.ilt = quick_ilt();
  ucfg.initial_pool = 3;
  core::UnifiedGreedyFlow unified(simulator(), ucfg);
  const auto r2 = unified.run(l);
  EXPECT_EQ(r2.ilt.mask2.width(), n);
  EXPECT_EQ(static_cast<int>(r2.chosen.size()), l.pattern_count());

  core::RawPrintPredictor predictor(simulator());
  core::LdmoConfig lcfg;
  lcfg.ilt = quick_ilt();
  core::LdmoFlow ours(simulator(), predictor, lcfg);
  const auto r3 = ours.run(l);
  EXPECT_EQ(r3.ilt.response.height(), n);
  EXPECT_EQ(static_cast<int>(r3.chosen.size()), l.pattern_count());
}

TEST(Integration, MasksUnionCoversEveryPattern) {
  // Physical sanity across the whole stack: after any flow, every target
  // pattern must be covered by opening(s) in at least one mask.
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(802);
  core::RawPrintPredictor predictor(simulator());
  core::LdmoConfig cfg;
  cfg.ilt = quick_ilt();
  core::LdmoFlow flow(simulator(), predictor, cfg);
  const core::LdmoResult result = flow.run(l);

  const layout::RasterTransform t = simulator().transform_for(l);
  for (const layout::Pattern& p : l.patterns) {
    const int cx = static_cast<int>(
        t.to_px_x(static_cast<double>(p.shape.center().x)));
    const int cy = static_cast<int>(
        t.to_px_y(static_cast<double>(p.shape.center().y)));
    const double coverage =
        result.ilt.mask1.at(cy, cx) + result.ilt.mask2.at(cy, cx);
    EXPECT_GT(coverage, 0.0) << "pattern " << p.id << " lost by the flow";
  }
}

TEST(Integration, ScoreRanksTrackEpeRanks) {
  // The Eq. 9 score must rank candidates consistently with EPE counts when
  // violation counts are equal — the property the CNN learns against.
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(803);
  opc::IltEngine engine(simulator(), quick_ilt());
  const auto candidates = sampling::random_decompositions(l, 6, 3);
  litho::PrintabilityReport best_report;
  double best_score = 1e300;
  int best_epe = -1;
  for (const auto& c : candidates) {
    const auto report = engine.optimize(l, c).report;
    if (report.score() < best_score) {
      best_score = report.score();
      best_report = report;
      best_epe = report.epe.violation_count;
    }
  }
  // The best-scoring candidate can't have more EPE violations than every
  // other candidate when its violation term is minimal.
  for (const auto& c : candidates) {
    const auto report = engine.optimize(l, c).report;
    if (report.violations.total() == best_report.violations.total())
      EXPECT_LE(best_epe, report.epe.violation_count + 1);
  }
}

}  // namespace
}  // namespace ldmo
