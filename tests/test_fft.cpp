// Unit + property tests for the FFT module: round trips, known transforms,
// Parseval, linearity, and the convolution theorem.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "fft/fft.h"

namespace ldmo::fft {
namespace {

TEST(FftUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(129), 256);
  EXPECT_THROW(next_pow2(0), ldmo::Error);
}

TEST(FftUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(FftPlan, RejectsNonPow2) { EXPECT_THROW(FftPlan(12), ldmo::Error); }

TEST(FftPlan, DeltaTransformsToConstant) {
  FftPlan plan(8);
  std::vector<Complex> data(8, Complex(0, 0));
  data[0] = Complex(1, 0);
  plan.forward(data.data());
  for (const Complex& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(FftPlan, ConstantTransformsToScaledDelta) {
  FftPlan plan(8);
  std::vector<Complex> data(8, Complex(1, 0));
  plan.forward(data.data());
  EXPECT_NEAR(data[0].real(), 8.0, 1e-12);
  for (int i = 1; i < 8; ++i) EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-12);
}

TEST(FftPlan, SingleToneLandsInOneBin) {
  const int n = 32;
  FftPlan plan(n);
  std::vector<Complex> data(n);
  const int k = 5;
  for (int i = 0; i < n; ++i) {
    const double angle = 2.0 * M_PI * k * i / n;
    data[i] = Complex(std::cos(angle), std::sin(angle));
  }
  plan.forward(data.data());
  for (int i = 0; i < n; ++i) {
    if (i == k)
      EXPECT_NEAR(data[i].real(), n, 1e-9);
    else
      EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-9);
  }
}

TEST(FftPlan, RoundTripIsIdentity) {
  Rng rng(13);
  FftPlan plan(64);
  std::vector<Complex> data(64), original(64);
  for (int i = 0; i < 64; ++i)
    data[i] = original[i] = Complex(rng.normal(), rng.normal());
  plan.forward(data.data());
  plan.inverse(data.data());
  for (int i = 0; i < 64; ++i)
    EXPECT_NEAR(std::abs(data[i] - original[i]), 0.0, 1e-10);
}

TEST(FftPlan, ParsevalHolds) {
  Rng rng(21);
  const int n = 128;
  FftPlan plan(n);
  std::vector<Complex> data(n);
  double time_energy = 0.0;
  for (int i = 0; i < n; ++i) {
    data[i] = Complex(rng.normal(), rng.normal());
    time_energy += std::norm(data[i]);
  }
  plan.forward(data.data());
  double freq_energy = 0.0;
  for (const Complex& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy / n, time_energy, 1e-8 * time_energy);
}

TEST(FftPlan, Linearity) {
  Rng rng(5);
  const int n = 32;
  FftPlan plan(n);
  std::vector<Complex> a(n), b(n), sum(n);
  for (int i = 0; i < n; ++i) {
    a[i] = Complex(rng.normal(), rng.normal());
    b[i] = Complex(rng.normal(), rng.normal());
    sum[i] = a[i] + 2.0 * b[i];
  }
  plan.forward(a.data());
  plan.forward(b.data());
  plan.forward(sum.data());
  for (int i = 0; i < n; ++i)
    EXPECT_NEAR(std::abs(sum[i] - (a[i] + 2.0 * b[i])), 0.0, 1e-9);
}

TEST(Fft2D, RoundTripIsIdentity) {
  Rng rng(31);
  Fft2DPlan plan(16, 32);
  GridC grid(16, 32);
  GridC original(16, 32);
  for (std::size_t i = 0; i < grid.size(); ++i)
    grid[i] = original[i] = Complex(rng.normal(), rng.normal());
  plan.forward(grid);
  plan.inverse(grid);
  for (std::size_t i = 0; i < grid.size(); ++i)
    EXPECT_NEAR(std::abs(grid[i] - original[i]), 0.0, 1e-10);
}

TEST(Fft2D, ShapeMismatchThrows) {
  Fft2DPlan plan(8, 8);
  GridC wrong(8, 16);
  EXPECT_THROW(plan.forward(wrong), ldmo::Error);
}

TEST(Fft2D, DcBinEqualsSum) {
  Fft2DPlan plan(8, 8);
  GridC grid(8, 8);
  double sum = 0.0;
  for (int y = 0; y < 8; ++y)
    for (int x = 0; x < 8; ++x) {
      grid.at(y, x) = Complex(y + 0.5 * x, 0);
      sum += y + 0.5 * x;
    }
  plan.forward(grid);
  EXPECT_NEAR(grid.at(0, 0).real(), sum, 1e-9);
}

// Convolution theorem: circular convolution via FFT equals direct circular
// convolution. This is the exact operation the litho simulator relies on.
TEST(Fft2D, ConvolutionTheorem) {
  Rng rng(77);
  const int n = 16;
  Fft2DPlan plan(n, n);
  GridF a(n, n), b(n, n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform();
    b[i] = rng.uniform();
  }
  // Direct circular convolution.
  GridF direct(n, n, 0.0);
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      double acc = 0.0;
      for (int v = 0; v < n; ++v)
        for (int u = 0; u < n; ++u)
          acc += a.at(v, u) * b.at((y - v + n) % n, (x - u + n) % n);
      direct.at(y, x) = acc;
    }
  // FFT path.
  GridC fa = to_complex(a);
  GridC fb = to_complex(b);
  plan.forward(fa);
  plan.forward(fb);
  multiply_inplace(fa, fb);
  plan.inverse(fa);
  const GridF via_fft = real_part(fa);
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x)
      EXPECT_NEAR(via_fft.at(y, x), direct.at(y, x), 1e-8);
}

TEST(Fft2D, MultiplyConjMatchesManual) {
  GridC a(1, 2), b(1, 2);
  a.at(0, 0) = Complex(1, 2);
  a.at(0, 1) = Complex(3, -1);
  b.at(0, 0) = Complex(2, 1);
  b.at(0, 1) = Complex(0, 1);
  multiply_conj_inplace(a, b);
  EXPECT_NEAR(std::abs(a.at(0, 0) - Complex(1, 2) * Complex(2, -1)), 0, 1e-12);
  EXPECT_NEAR(std::abs(a.at(0, 1) - Complex(3, -1) * Complex(0, -1)), 0,
              1e-12);
}

TEST(Fft2D, RealPartAndToComplexRoundTrip) {
  GridF g(2, 2);
  g.at(0, 0) = 1.5;
  g.at(1, 1) = -2.5;
  EXPECT_EQ(real_part(to_complex(g)), g);
}

// Parameterized round-trip across all the grid sizes the framework uses.
class FftSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(FftSizeSweep, RoundTrip) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(n));
  Fft2DPlan plan(n, n);
  GridC grid(n, n), original(n, n);
  for (std::size_t i = 0; i < grid.size(); ++i)
    grid[i] = original[i] = Complex(rng.normal(), rng.normal());
  plan.forward(grid);
  plan.inverse(grid);
  double max_err = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i)
    max_err = std::max(max_err, std::abs(grid[i] - original[i]));
  EXPECT_LT(max_err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizeSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

TEST(FftPlanCache, PlanForReturnsOneSharedPlanPerShape) {
  const Fft2DPlan& a = plan_for(32, 16);
  const Fft2DPlan& b = plan_for(32, 16);
  const Fft2DPlan& c = plan_for(16, 32);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  EXPECT_EQ(a.height(), 32);
  EXPECT_EQ(a.width(), 16);
}

TEST(FftOutParam, ToComplexAndRealPartRoundTrip) {
  GridF real(5, 3);
  for (std::size_t i = 0; i < real.size(); ++i)
    real[i] = static_cast<double>(i) - 6.5;
  GridC complex_out;
  to_complex(real, complex_out);
  ASSERT_EQ(complex_out.height(), real.height());
  ASSERT_EQ(complex_out.width(), real.width());
  GridF back;
  real_part(complex_out, back);
  for (std::size_t i = 0; i < real.size(); ++i) {
    EXPECT_EQ(back[i], real[i]);
    EXPECT_EQ(complex_out[i].imag(), 0.0);
  }
}

TEST(FftOutParam, ConvolveSpectrumMatchesManualPipeline) {
  Rng rng(42);
  const int n = 16;
  const Fft2DPlan& plan = plan_for(n, n);
  GridC spectrum(n, n), kernel(n, n);
  for (std::size_t i = 0; i < spectrum.size(); ++i) {
    spectrum[i] = Complex(rng.normal(), rng.normal());
    kernel[i] = Complex(rng.normal(), rng.normal());
  }
  GridC manual = spectrum;
  multiply_inplace(manual, kernel);
  plan.inverse(manual);

  GridC out(n, n);  // pre-shaped: the call must reuse this storage
  const Complex* storage = out.data();
  plan.convolve_spectrum(spectrum, kernel, out);
  EXPECT_EQ(out.data(), storage);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], manual[i]);
}

TEST(FftRawPointer, MatchesGridTransform) {
  Rng rng(7);
  const int n = 8;
  Fft2DPlan plan(n, n);
  GridC grid(n, n);
  for (std::size_t i = 0; i < grid.size(); ++i)
    grid[i] = Complex(rng.normal(), rng.normal());
  std::vector<Complex> raw(grid.data(), grid.data() + grid.size());
  plan.forward(grid);
  plan.forward(raw.data());
  for (std::size_t i = 0; i < grid.size(); ++i) EXPECT_EQ(raw[i], grid[i]);
}

}  // namespace
}  // namespace ldmo::fft
