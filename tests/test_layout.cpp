// Unit tests for layout: data model, generator statistics, DRC, raster, IO.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/error.h"
#include "common/failpoint.h"
#include "layout/drc.h"
#include "layout/fingerprint.h"
#include "layout/generator.h"
#include "layout/io.h"
#include "layout/layout.h"
#include "layout/raster.h"

namespace ldmo::layout {
namespace {

Layout two_contact_layout(std::int64_t gap) {
  Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({100, 100}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({165 + gap, 100}, 65, 65));
  return l;
}

TEST(Layout, AddPatternAssignsSequentialIds) {
  Layout l = two_contact_layout(80);
  EXPECT_EQ(l.pattern_count(), 2);
  EXPECT_EQ(l.patterns[0].id, 0);
  EXPECT_EQ(l.patterns[1].id, 1);
}

TEST(Layout, NearestDistance) {
  Layout l = two_contact_layout(77);
  EXPECT_DOUBLE_EQ(l.nearest_distance(0), 77.0);
  EXPECT_DOUBLE_EQ(l.nearest_distance(1), 77.0);
}

TEST(Layout, NearestDistanceSinglePatternIsInfinite) {
  Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 100, 100);
  l.add_pattern(geometry::Rect::from_size({10, 10}, 20, 20));
  EXPECT_TRUE(std::isinf(l.nearest_distance(0)));
}

TEST(Layout, CanonicalizePinsFirstPatternToMaskOne) {
  EXPECT_EQ(canonicalize({0, 1, 0}), (Assignment{0, 1, 0}));
  EXPECT_EQ(canonicalize({1, 0, 1}), (Assignment{0, 1, 0}));
  EXPECT_EQ(canonicalize({}), (Assignment{}));
}

TEST(Generator, ProducesDrcCleanLayouts) {
  LayoutGenerator gen;
  const DrcRules rules{gen.config().min_spacing_nm,
                       gen.config().contact_size_nm,
                       gen.config().clip_margin_nm / 2};
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Layout l = gen.generate(seed);
    EXPECT_GE(l.pattern_count(), gen.config().min_contacts);
    EXPECT_LE(l.pattern_count(), gen.config().max_contacts);
    EXPECT_TRUE(check_drc(l, rules).empty()) << "seed " << seed;
  }
}

TEST(Generator, DeterministicPerSeed) {
  LayoutGenerator gen;
  const Layout a = gen.generate(7);
  const Layout b = gen.generate(7);
  ASSERT_EQ(a.pattern_count(), b.pattern_count());
  for (int i = 0; i < a.pattern_count(); ++i)
    EXPECT_EQ(a.patterns[static_cast<std::size_t>(i)].shape,
              b.patterns[static_cast<std::size_t>(i)].shape);
}

TEST(Generator, CorpusHasConflictPairs) {
  // The whole point of decomposition: a healthy fraction of layouts must
  // contain pattern pairs closer than nmin (SP pairs).
  LayoutGenerator gen;
  int layouts_with_conflicts = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Layout l = gen.generate(seed);
    bool found = false;
    for (int i = 0; i < l.pattern_count() && !found; ++i)
      if (l.nearest_distance(i) < static_cast<double>(gen.config().nmin_nm))
        found = true;
    if (found) ++layouts_with_conflicts;
  }
  EXPECT_GE(layouts_with_conflicts, 15);
}

TEST(Generator, GenerateCorpusCount) {
  LayoutGenerator gen;
  const auto corpus = gen.generate_corpus(5, 100);
  EXPECT_EQ(corpus.size(), 5u);
}

TEST(Generator, NamedCellsHaveExpectedSizes) {
  LayoutGenerator gen;
  const Layout buf = gen.generate_cell("BUF_X1");
  const Layout nand3 = gen.generate_cell("NAND3_X2");
  const Layout aoi = gen.generate_cell("AOI211_X1");
  EXPECT_EQ(buf.name, "BUF_X1");
  EXPECT_LT(buf.pattern_count(), nand3.pattern_count());
  EXPECT_LE(nand3.pattern_count(), aoi.pattern_count());
}

TEST(Generator, UnknownCellThrows) {
  LayoutGenerator gen;
  EXPECT_THROW(gen.generate_cell("XOR9_X9"), ldmo::Error);
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig cfg;
  cfg.min_spacing_nm = 90;  // >= nmin: no SP pairs possible
  EXPECT_THROW(LayoutGenerator{cfg}, ldmo::Error);
}

TEST(Drc, DetectsSpacingViolation) {
  const Layout l = two_contact_layout(50);
  const auto v = check_drc(l, DrcRules{70, 60, 20});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, DrcViolationKind::Spacing);
  EXPECT_DOUBLE_EQ(v[0].measured_nm, 50.0);
  EXPECT_FALSE(v[0].describe().empty());
}

TEST(Drc, CleanLayoutPasses) {
  const Layout l = two_contact_layout(80);
  EXPECT_TRUE(check_drc(l, DrcRules{70, 60, 20}).empty());
}

TEST(Drc, DetectsWidthViolation) {
  Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({100, 100}, 40, 65));
  const auto v = check_drc(l, DrcRules{70, 60, 20});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, DrcViolationKind::Width);
}

TEST(Drc, DetectsBoundaryViolation) {
  Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({5, 100}, 65, 65));
  const auto v = check_drc(l, DrcRules{70, 60, 20});
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, DrcViolationKind::Boundary);
}

TEST(Drc, ReportsEachPairOnce) {
  const Layout l = two_contact_layout(10);
  const auto v = check_drc(l, DrcRules{70, 60, 20});
  EXPECT_EQ(v.size(), 1u);
}

TEST(Raster, TargetCoversPatternArea) {
  Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 512, 512);
  l.add_pattern(geometry::Rect::from_size({128, 128}, 128, 128));
  const GridF g = rasterize_target(l, 128);  // 4nm per pixel
  // Pattern covers pixels [32, 64) x [32, 64) exactly.
  EXPECT_DOUBLE_EQ(g.at(40, 40), 1.0);
  EXPECT_DOUBLE_EQ(g.at(31, 40), 0.0);
  EXPECT_DOUBLE_EQ(g.at(40, 64), 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) sum += g[i];
  EXPECT_NEAR(sum, 32.0 * 32.0, 1e-9);
}

TEST(Raster, SubPixelEdgeGetsFractionalCoverage) {
  Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 512, 512);
  l.add_pattern(geometry::Rect::from_size({130, 128}, 128, 128));
  const GridF g = rasterize_target(l, 128);
  // Left edge at 130nm = pixel 32.5: pixel 32 half covered.
  EXPECT_NEAR(g.at(40, 32), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(g.at(40, 33), 1.0);
}

TEST(Raster, MaskSelectionFollowsAssignment) {
  Layout l = two_contact_layout(100);
  const Assignment assign = {0, 1};
  const GridF m1 = rasterize_mask(l, assign, 0, 128);
  const GridF m2 = rasterize_mask(l, assign, 1, 128);
  double s1 = 0.0, s2 = 0.0;
  for (std::size_t i = 0; i < m1.size(); ++i) {
    s1 += m1[i];
    s2 += m2[i];
  }
  EXPECT_GT(s1, 0.0);
  EXPECT_GT(s2, 0.0);
  // Masks partition the target.
  const GridF target = rasterize_target(l, 128);
  double st = 0.0;
  for (std::size_t i = 0; i < target.size(); ++i) st += target[i];
  EXPECT_NEAR(s1 + s2, st, 1e-9);
}

TEST(Raster, AssignmentSizeMismatchThrows) {
  Layout l = two_contact_layout(100);
  EXPECT_THROW(rasterize_mask(l, {0}, 0, 64), ldmo::Error);
}

TEST(Raster, DecompositionImageLevelsAndDuality) {
  Layout l = two_contact_layout(100);
  const GridF img_a = decomposition_image(l, {0, 1}, 224);
  const GridF img_b = decomposition_image(l, {1, 0}, 224);  // dual
  EXPECT_EQ(img_a, img_b);  // Fig. 4(c): dual decompositions, same image
  double max_v = 0.0;
  for (std::size_t i = 0; i < img_a.size(); ++i)
    max_v = std::max(max_v, img_a[i]);
  EXPECT_DOUBLE_EQ(max_v, 1.0);
}

TEST(Raster, TransformRoundTrip) {
  const RasterTransform t{geometry::Rect::from_size({0, 0}, 1024, 1024), 128};
  EXPECT_DOUBLE_EQ(t.nm_per_pixel(), 8.0);
  EXPECT_DOUBLE_EQ(t.to_nm_x(t.to_px_x(300.0)), 300.0);
  EXPECT_DOUBLE_EQ(t.to_px_y(t.to_nm_y(64.0)), 64.0);
}

// Property sweep: for any generated layout, rasterized area equals the
// summed pattern area (no pattern overlaps in DRC-clean layouts), at any
// grid resolution.
class RasterAreaSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(RasterAreaSweep, CoverageMatchesGeometry) {
  const auto [seed, grid] = GetParam();
  LayoutGenerator gen;
  const Layout l = gen.generate(seed);
  const GridF raster = rasterize_target(l, grid);
  double raster_area_px = 0.0;
  for (std::size_t i = 0; i < raster.size(); ++i) raster_area_px += raster[i];
  double geometry_area_nm2 = 0.0;
  for (const Pattern& p : l.patterns)
    geometry_area_nm2 += static_cast<double>(p.shape.area());
  const double nm_per_px = static_cast<double>(l.clip.width()) / grid;
  EXPECT_NEAR(raster_area_px * nm_per_px * nm_per_px, geometry_area_nm2,
              1e-6 * geometry_area_nm2);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RasterAreaSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(64, 128, 224)));

// Mask partition property: for any assignment, per-mask rasters sum to the
// target raster pixel-for-pixel.
class RasterPartitionSweep : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RasterPartitionSweep, MasksPartitionTarget) {
  LayoutGenerator gen;
  const Layout l = gen.generate(GetParam());
  Assignment a(static_cast<std::size_t>(l.pattern_count()), 0);
  for (int i = 0; i < l.pattern_count(); ++i)
    a[static_cast<std::size_t>(i)] = (i * 7 + 3) % 2;
  const GridF m1 = rasterize_mask(l, a, 0, 96);
  const GridF m2 = rasterize_mask(l, a, 1, 96);
  const GridF target = rasterize_target(l, 96);
  for (std::size_t i = 0; i < target.size(); ++i)
    EXPECT_NEAR(m1[i] + m2[i], target[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RasterPartitionSweep,
                         ::testing::Values(10, 20, 30, 40));

TEST(Io, PgmValueMapping) {
  GridF g(1, 3);
  g.at(0, 0) = 0.0;
  g.at(0, 1) = 0.5;
  g.at(0, 2) = 1.0;
  const std::string path = "test_pgm_values.pgm";
  write_pgm(g, path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  in.get();  // single whitespace after header
  unsigned char bytes[3];
  in.read(reinterpret_cast<char*>(bytes), 3);
  EXPECT_EQ(bytes[0], 0);
  EXPECT_EQ(bytes[1], 128);  // 0.5 * 255 + 0.5 rounds to 128
  EXPECT_EQ(bytes[2], 255);
  std::remove(path.c_str());
}

TEST(Io, PgmClampsOutOfRange) {
  GridF g(1, 2);
  g.at(0, 0) = -3.0;
  g.at(0, 1) = 42.0;
  const std::string path = "test_pgm_clamp.pgm";
  write_pgm(g, path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w, h, maxval;
  in >> magic >> w >> h >> maxval;
  in.get();
  unsigned char bytes[2];
  in.read(reinterpret_cast<char*>(bytes), 2);
  EXPECT_EQ(bytes[0], 0);
  EXPECT_EQ(bytes[1], 255);
  std::remove(path.c_str());
}

class IoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : cleanup_) std::remove(p.c_str());
  }
  std::vector<std::string> cleanup_;
};

TEST_F(IoTest, LayoutTextRoundTrip) {
  const Layout original = two_contact_layout(88);
  const std::string path = "test_layout_roundtrip.txt";
  cleanup_.push_back(path);
  write_layout_text(original, path);
  const Layout loaded = read_layout_text(path);
  EXPECT_EQ(loaded.clip, original.clip);
  ASSERT_EQ(loaded.pattern_count(), original.pattern_count());
  for (int i = 0; i < loaded.pattern_count(); ++i)
    EXPECT_EQ(loaded.patterns[static_cast<std::size_t>(i)].shape,
              original.patterns[static_cast<std::size_t>(i)].shape);
}

TEST_F(IoTest, NameWithInternalWhitespaceRoundTrips) {
  // The name owns the rest of its header line, so any horizontal
  // whitespace — internal, leading, trailing, runs of it — must survive a
  // write/read cycle byte-for-byte. (The old `in >> name` reader chopped
  // the name at the first space and misparsed everything after it.)
  const std::vector<std::string> names = {
      "clip 7 (rev B)", "a\tb", " leading", "trailing ",
      "double  space",  "x",    "many words in a row"};
  const std::string path = "test_layout_name_ws.txt";
  cleanup_.push_back(path);
  for (const std::string& name : names) {
    Layout original = two_contact_layout(88);
    original.name = name;
    write_layout_text(original, path);
    const Layout loaded = read_layout_text(path);
    EXPECT_EQ(loaded.name, name);
    EXPECT_EQ(loaded.clip, original.clip);
    EXPECT_EQ(loaded.pattern_count(), original.pattern_count());
  }
}

TEST_F(IoTest, StructuralCharactersInNameAreSanitized) {
  const std::string path = "test_layout_name_struct.txt";
  cleanup_.push_back(path);
  // Line breaks are structural in the format: the writer flattens them to
  // spaces rather than corrupting the file.
  Layout broken = two_contact_layout(88);
  broken.name = "line1\nline2\rline3";
  write_layout_text(broken, path);
  EXPECT_EQ(read_layout_text(path).name, "line1 line2 line3");
  // An empty name would leave the header line bare; it becomes a
  // placeholder instead.
  Layout unnamed = two_contact_layout(88);
  unnamed.name.clear();
  write_layout_text(unnamed, path);
  EXPECT_EQ(read_layout_text(path).name, "unnamed");
}

TEST_F(IoTest, PgmWriteProducesValidHeader) {
  GridF g(4, 4, 0.5);
  const std::string path = "test_io.pgm";
  cleanup_.push_back(path);
  write_pgm(g, path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 4);
  EXPECT_EQ(maxval, 255);
}

TEST_F(IoTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_layout_text("/nonexistent/nowhere.txt"), ldmo::Error);
}

TEST_F(IoTest, ParseErrorsNameThePathAndByteOffset) {
  // A daemon reading layouts off disk must be able to report *which* file
  // broke and *where* — the error carries the path and the byte offset the
  // stream had reached when parsing stopped.
  const std::string path = "test_layout_corrupt.txt";
  cleanup_.push_back(path);
  {
    std::ofstream out(path);
    out << "name broken\n"
        << "clip 0 0 not-a-number 1024\n";
  }
  try {
    (void)read_layout_text(path);
    FAIL() << "corrupt layout did not throw";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.stage(), FlowStage::kLayout);
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("at byte"), std::string::npos) << what;
    EXPECT_NE(what.find("malformed clip line"), std::string::npos) << what;
  }
}

TEST_F(IoTest, IoFailpointsThrowTaggedLayoutStage) {
  const std::string path = "test_layout_fp.txt";
  cleanup_.push_back(path);
  fail::disarm_all();
  const Layout original = two_contact_layout(88);
  fail::arm("io.layout.write", fail::once());
  EXPECT_THROW(write_layout_text(original, path), FlowException);
  write_layout_text(original, path);  // disarmed again: write succeeds
  fail::arm("io.layout.read", fail::once());
  try {
    (void)read_layout_text(path);
    FAIL() << "read did not throw";
  } catch (const FlowException& e) {
    EXPECT_EQ(e.stage(), FlowStage::kLayout);
  }
  fail::disarm_all();
  EXPECT_EQ(read_layout_text(path).pattern_count(),
            original.pattern_count());
}

// --- Content fingerprint (layout/fingerprint.h) ---

TEST(Fingerprint, DistinctAcrossGeneratorCorpus) {
  // Collision smoke: 64 generator layouts, 64 distinct fingerprints.
  LayoutGenerator generator;
  std::set<std::uint64_t> seen;
  for (std::uint64_t seed = 0; seed < 64; ++seed)
    seen.insert(fingerprint(generator.generate(seed)));
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Fingerprint, IgnoresName) {
  Layout a = two_contact_layout(80);
  Layout b = two_contact_layout(80);
  a.name = "alpha";
  b.name = "beta";
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, SensitiveToGeometry) {
  // 1nm of pattern movement or a different clip must change the hash.
  EXPECT_NE(fingerprint(two_contact_layout(80)),
            fingerprint(two_contact_layout(81)));
  Layout resized = two_contact_layout(80);
  resized.clip = geometry::Rect::from_size({0, 0}, 2048, 2048);
  EXPECT_NE(fingerprint(resized), fingerprint(two_contact_layout(80)));
}

TEST(Fingerprint, SensitiveToPatternCount) {
  Layout base = two_contact_layout(200);
  Layout extended = two_contact_layout(200);
  extended.add_pattern(geometry::Rect::from_size({500, 500}, 65, 65));
  EXPECT_NE(fingerprint(base), fingerprint(extended));
}

TEST(Fingerprint, StableAcrossProcessRuns) {
  // Golden value: the fingerprint is part of the serving cache contract,
  // so it must not drift across platforms or library changes. If this
  // test fails after an intentional format change, bump the version tag
  // in layout::fingerprint AND update this constant.
  const std::uint64_t fp = fingerprint(two_contact_layout(80));
  EXPECT_EQ(fp, fingerprint(two_contact_layout(80)));
  EXPECT_EQ(fp, 0x6bb0e572a7b59907ull);
}

}  // namespace
}  // namespace ldmo::layout
