// Tests for the core module: predictors and the three end-to-end flows.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/error.h"
#include "core/baseline_flows.h"
#include "core/flow_engine.h"
#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "layout/generator.h"
#include "mpl/baselines.h"
#include "obs/json.h"

namespace ldmo::core {
namespace {

litho::LithoConfig fast_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  cfg.kernel_count = 4;
  return cfg;
}

const litho::LithoSimulator& shared_simulator() {
  static litho::LithoSimulator sim(fast_litho());
  return sim;
}

opc::IltConfig fast_ilt() {
  opc::IltConfig cfg;
  cfg.max_iterations = 8;
  return cfg;
}

layout::Layout test_layout(std::uint64_t seed = 9) {
  layout::LayoutGenerator gen;
  return gen.generate(seed);
}

// A deterministic fake predictor with a recorded call count.
class CountingPredictor : public PrintabilityPredictor {
 public:
  double score(const layout::Layout& /*layout*/,
               const layout::Assignment& assignment) override {
    ++calls;
    // Prefer balanced assignments: |#mask1 - #mask2| as the score.
    int ones = 0;
    for (int v : assignment) ones += v;
    return std::abs(static_cast<int>(assignment.size()) - 2 * ones);
  }
  std::string name() const override { return "counting"; }
  int calls = 0;
};

TEST(Predictors, RawPrintRanksConflictSplitBetter) {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({412, 480}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({547, 480}, 65, 65));  // 70nm gap
  RawPrintPredictor predictor(shared_simulator());
  EXPECT_LT(predictor.score(l, {0, 1}), predictor.score(l, {0, 0}));
}

TEST(Predictors, IltOracleMatchesDirectOptimization) {
  const layout::Layout l = test_layout();
  opc::IltEngine engine(shared_simulator(), fast_ilt());
  IltOraclePredictor oracle(engine);
  layout::Assignment alt(static_cast<std::size_t>(l.pattern_count()), 0);
  for (int i = 0; i < l.pattern_count(); ++i) alt[static_cast<std::size_t>(i)] = i % 2;
  const double via_predictor = oracle.score(l, alt);
  const double direct = engine.optimize(l, alt).report.score();
  EXPECT_DOUBLE_EQ(via_predictor, direct);
}

TEST(Predictors, CnnPredictorScoresAndSerializes) {
  nn::ResNetConfig ncfg;
  ncfg.input_size = 32;
  ncfg.width_multiplier = 0.125;
  CnnPredictor predictor(std::make_unique<nn::ResNetRegressor>(ncfg));
  const layout::Layout l = test_layout();
  layout::Assignment a(static_cast<std::size_t>(l.pattern_count()), 0);
  const double s1 = predictor.score(l, a);
  const double s2 = predictor.score(l, a);
  EXPECT_DOUBLE_EQ(s1, s2);  // eval mode is deterministic

  const std::string path = "test_core_predictor.bin";
  predictor.save(path);
  CnnPredictor other(std::make_unique<nn::ResNetRegressor>(ncfg));
  other.load(path);
  EXPECT_DOUBLE_EQ(other.score(l, a), s1);
  std::remove(path.c_str());
}

TEST(LdmoFlowTest, ProducesMasksAndTiming) {
  const layout::Layout l = test_layout();
  CountingPredictor predictor;
  LdmoConfig config;
  config.ilt = fast_ilt();
  LdmoFlow flow(shared_simulator(), predictor, config);
  const LdmoResult result = flow.run(l);

  EXPECT_GT(result.candidates_generated, 1);
  EXPECT_EQ(predictor.calls, result.candidates_generated);
  EXPECT_GE(result.candidates_tried, 1);
  EXPECT_EQ(result.chosen.size(),
            static_cast<std::size_t>(l.pattern_count()));
  EXPECT_GT(result.timing.get("generate"), 0.0);
  EXPECT_GT(result.timing.get("predict"), 0.0);
  EXPECT_GT(result.timing.get("ilt"), 0.0);
  EXPECT_GT(result.total_seconds, 0.0);
  // Masks exist and are binary.
  EXPECT_EQ(result.ilt.mask1.height(), shared_simulator().grid_size());
}

TEST(LdmoFlowTest, FallbackBoundedByConfig) {
  const layout::Layout l = test_layout(31);
  CountingPredictor predictor;
  LdmoConfig config;
  config.ilt = fast_ilt();
  config.max_fallbacks = 0;  // exactly one ILT attempt allowed
  LdmoFlow flow(shared_simulator(), predictor, config);
  const LdmoResult result = flow.run(l);
  EXPECT_EQ(result.candidates_tried, 1);
  EXPECT_FALSE(result.ilt.aborted_on_violation);  // final attempt completes
}

// A predictor whose every scoring call throws a plain std::runtime_error —
// the shape of a real backend bug, untagged by any FlowException.
class BrokenPredictor : public PrintabilityPredictor {
 public:
  double score(const layout::Layout&, const layout::Assignment&) override {
    throw std::runtime_error("scoring backend down");
  }
  std::string name() const override { return "broken"; }
};

TEST(LdmoFlowTest, PredictorFailureDegradesByDefault) {
  const layout::Layout l = test_layout(33);
  BrokenPredictor predictor;
  LdmoConfig config;
  config.ilt = fast_ilt();
  LdmoFlow flow(shared_simulator(), predictor, config);
  // No exception escapes: the run degrades to generation-order ranking and
  // still produces finalized masks.
  const LdmoResult result = flow.run(l);
  EXPECT_FALSE(result.failed);
  EXPECT_TRUE(result.degraded);
  EXPECT_GT(result.candidates_tried, 0);
  EXPECT_EQ(result.ilt.mask1.height(), shared_simulator().grid_size());
}

TEST(LdmoFlowTest, PredictorFailureFailsWhenDegradeDisabled) {
  const layout::Layout l = test_layout(33);
  BrokenPredictor predictor;
  LdmoConfig config;
  config.ilt = fast_ilt();
  config.degrade_on_predict_failure = false;
  LdmoFlow flow(shared_simulator(), predictor, config);
  const LdmoResult result = flow.run(l);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.degraded);
  EXPECT_EQ(result.error.stage, FlowStage::kPredict);
  EXPECT_NE(result.error.message.find("scoring backend down"),
            std::string::npos);
  // Failed runs carry timing but no masks.
  EXPECT_EQ(result.candidates_tried, 0);
}

TEST(LdmoFlowTest, OraclePredictorBeatsAdversarialOracle) {
  // With fallbacks disabled, the flow's final quality is exactly the
  // quality of the predictor's top-ranked candidate, so the true-score
  // oracle must do at least as well as its negation (which deliberately
  // picks the worst candidate). Note that a RAW-print predictor would NOT
  // pass this test — pre-OPC printability mispredicts post-ILT quality,
  // which is precisely the paper's Fig. 1(b) motivation for learning the
  // post-ILT score.
  class Negated : public PrintabilityPredictor {
   public:
    explicit Negated(PrintabilityPredictor& inner) : inner_(inner) {}
    double score(const layout::Layout& l,
                 const layout::Assignment& a) override {
      return -inner_.score(l, a);
    }
    std::string name() const override { return "negated"; }

   private:
    PrintabilityPredictor& inner_;
  };

  const layout::Layout l = test_layout(12);
  opc::IltEngine engine(shared_simulator(), fast_ilt());
  IltOraclePredictor good(engine);
  Negated bad(good);
  LdmoConfig config;
  config.ilt = fast_ilt();
  config.max_fallbacks = 0;
  const LdmoResult good_result =
      LdmoFlow(shared_simulator(), good, config).run(l);
  const LdmoResult bad_result =
      LdmoFlow(shared_simulator(), bad, config).run(l);
  EXPECT_LE(good_result.ilt.report.score(), bad_result.ilt.report.score());
}

TEST(FlowEngineTest, RunMatchesTheLdmoFlowShimBitwise) {
  // FlowEngine owns its own simulator/predictor stack, but the kernels
  // come from the process cache and the pipeline is the same free
  // function, so a session run must reproduce the shim bit-for-bit.
  const layout::Layout l = test_layout();
  FlowEngineConfig config;
  config.litho = fast_litho();
  config.flow.ilt = fast_ilt();
  FlowEngine engine(config);
  const LdmoResult session_result = engine.run(l);

  RawPrintPredictor raw(shared_simulator());
  LdmoFlow shim(shared_simulator(), raw, config.flow);
  const LdmoResult shim_result = shim.run(l);

  EXPECT_EQ(session_result.chosen, shim_result.chosen);
  ASSERT_TRUE(session_result.ilt.mask1.same_shape(shim_result.ilt.mask1));
  for (std::size_t i = 0; i < session_result.ilt.mask1.size(); ++i) {
    EXPECT_EQ(session_result.ilt.mask1[i], shim_result.ilt.mask1[i]);
    EXPECT_EQ(session_result.ilt.mask2[i], shim_result.ilt.mask2[i]);
  }
  EXPECT_EQ(session_result.ilt.report.score(),
            shim_result.ilt.report.score());
}

TEST(FlowEngineTest, RunManyAccumulatesSessionStats) {
  FlowEngineConfig config;
  config.litho = fast_litho();
  config.flow.ilt = fast_ilt();
  FlowEngine engine(config);
  engine.warmup();  // must not count as a run
  EXPECT_EQ(engine.session().runs, 0);

  const std::vector<layout::Layout> layouts = {test_layout(9),
                                               test_layout(31)};
  const std::vector<LdmoResult> results = engine.run_many(layouts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(engine.session().runs, 2);
  ASSERT_EQ(engine.session().history.size(), 2u);
  EXPECT_EQ(engine.session().history[0].layout, layouts[0].name);
  EXPECT_GT(engine.session().total_seconds, 0.0);
  EXPECT_GE(engine.session().candidates_generated, 2);
  EXPECT_GE(engine.session().candidates_tried, 2);
  EXPECT_EQ(engine.session().history[1].candidates_tried,
            results[1].candidates_tried);
}

TEST(FlowEngineTest, SessionReportCarriesHistoryAndWorkspaceGauges) {
  FlowEngineConfig config;
  config.litho = fast_litho();
  config.flow.ilt = fast_ilt();
  FlowEngine engine(config);
  (void)engine.run(test_layout());

  const obs::JsonValue doc = obs::parse_json(engine.session_report().to_json());
  const obs::JsonValue* session = doc.find("session");
  ASSERT_NE(session, nullptr);
  ASSERT_NE(session->find("runs"), nullptr);
  EXPECT_EQ(session->find("runs")->number, 1.0);
  ASSERT_NE(session->find("history"), nullptr);
  ASSERT_EQ(session->find("history")->array.size(), 1u);
  // Pool gauges were published into the metric snapshot by the report.
  const obs::JsonValue* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  const obs::JsonValue* gauges = metrics->find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("workspace.pooled_bytes"), nullptr);
  EXPECT_GT(gauges->find("workspace.pooled_bytes")->number, 0.0);
}

TEST(FlowEngineTest, AdoptsCallerPredictor) {
  FlowEngineConfig config;
  config.litho = fast_litho();
  config.flow.ilt = fast_ilt();
  auto counting = std::make_unique<CountingPredictor>();
  CountingPredictor* counting_raw = counting.get();
  FlowEngine engine(config, std::move(counting));
  const LdmoResult result = engine.run(test_layout());
  EXPECT_EQ(counting_raw->calls, result.candidates_generated);
}

TEST(TwoStageFlowTest, RunsBothBaselineDecomposers) {
  const layout::Layout l = test_layout();
  for (const auto& decomposer :
       {TwoStageFlow::Decomposer([](const layout::Layout& layout) {
          return mpl::SpacingUniformityDecomposer().decompose(layout);
        }),
        TwoStageFlow::Decomposer([](const layout::Layout& layout) {
          return mpl::BalancedDecomposer().decompose(layout);
        })}) {
    TwoStageFlow flow(shared_simulator(), decomposer, fast_ilt());
    const BaselineFlowResult result = flow.run(l);
    EXPECT_EQ(result.chosen.size(),
              static_cast<std::size_t>(l.pattern_count()));
    EXPECT_GT(result.timing.get("mo"), 0.0);
    EXPECT_GT(result.total_seconds, 0.0);
  }
}

TEST(UnifiedGreedyFlowTest, PrunesPoolAndSplitsTiming) {
  const layout::Layout l = test_layout();
  UnifiedGreedyConfig config;
  config.ilt = fast_ilt();
  config.initial_pool = 4;
  UnifiedGreedyFlow flow(shared_simulator(), config);
  const BaselineFlowResult result = flow.run(l);
  EXPECT_EQ(result.chosen.size(),
            static_cast<std::size_t>(l.pattern_count()));
  // The hallmark of [10]: decomposition selection consumes real time
  // alongside mask optimization (Fig. 1(c) breakdown).
  EXPECT_GT(result.timing.get("ds"), 0.0);
  EXPECT_GT(result.timing.get("mo"), 0.0);
}

TEST(UnifiedGreedyFlowTest, RejectsBadConfig) {
  UnifiedGreedyConfig bad;
  bad.keep_fraction = 1.0;
  EXPECT_THROW(UnifiedGreedyFlow(shared_simulator(), bad), ldmo::Error);
  bad = UnifiedGreedyConfig{};
  bad.initial_pool = 0;
  EXPECT_THROW(UnifiedGreedyFlow(shared_simulator(), bad), ldmo::Error);
}

TEST(UnifiedGreedyFlowTest, SlowerThanOurFlowPerLayout) {
  // The runtime relation Table I reports: the unified baseline pays for
  // lithography-based selection; our flow predicts instead.
  const layout::Layout l = test_layout(17);
  CountingPredictor predictor;
  LdmoConfig ours_config;
  ours_config.ilt = fast_ilt();
  ours_config.max_fallbacks = 0;
  const LdmoResult ours =
      LdmoFlow(shared_simulator(), predictor, ours_config).run(l);

  UnifiedGreedyConfig unified_config;
  unified_config.ilt = fast_ilt();
  unified_config.initial_pool = 6;
  const BaselineFlowResult unified =
      UnifiedGreedyFlow(shared_simulator(), unified_config).run(l);
  EXPECT_GT(unified.total_seconds, ours.total_seconds);
}

}  // namespace
}  // namespace ldmo::core
