# Included by ctest (TEST_INCLUDE_FILES) after gtest discovery populated
# test_net_TESTS / test_net_cluster_TESTS. Discovery can only attach a
# single label — it flattens list-valued PROPERTIES — so the full label set
# lives here: "sanitize" (daemon/router/client threading is the TSan
# payload) plus "net" (ctest -L net runs the wire-protocol and cluster
# suites on their own). The cluster drill forks real ldmo_cli processes, so
# it gets a generous timeout and never runs concurrently with itself.
foreach(t IN LISTS test_net_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "sanitize;net")
endforeach()
foreach(t IN LISTS test_net_cluster_TESTS)
  set_tests_properties("${t}" PROPERTIES LABELS "sanitize;net" TIMEOUT 600)
endforeach()
