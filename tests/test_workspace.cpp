// Tests for the runtime workspace/buffer pools (DESIGN.md §9): checkout
// lifecycle, bit-identity of recycled buffers, stats accounting, concurrent
// checkout + stats reads (the TSan payload), and the zero-allocation steady
// state of the ILT loop.
//
// Pool counters are cumulative per thread and the gtest main thread reuses
// one workspace across all tests, so every assertion works on deltas and
// each test uses shapes/sizes no other test touches.
#include <gtest/gtest.h>

#include <complex>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "layout/raster.h"
#include "obs/metrics.h"
#include "opc/ilt.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"
#include "runtime/workspace.h"

namespace ldmo::runtime {
namespace {

using Complex = std::complex<double>;

TEST(WorkspaceGrid, CheckoutRecyclesTheReturnedBuffer) {
  Workspace& ws = Workspace::this_thread();
  const double* ptr = nullptr;
  {
    PooledGrid<double> g = ws.grid_f(13, 17);
    EXPECT_EQ(g->height(), 13);
    EXPECT_EQ(g->width(), 17);
    ptr = g->data();
    g->fill(3.5);
  }
  // LIFO free list: the same storage comes back, zeroed.
  PooledGrid<double> again = ws.grid_f(13, 17);
  EXPECT_EQ(again->data(), ptr);
  for (std::size_t i = 0; i < again->size(); ++i)
    EXPECT_EQ((*again)[i], 0.0);
}

TEST(WorkspaceGrid, ZeroedCheckoutMatchesFreshGrid) {
  Workspace& ws = Workspace::this_thread();
  {
    PooledGrid<Complex> g = ws.grid_c(9, 21);
    g->fill(Complex(-1.5, 2.5));
  }
  PooledGrid<Complex> recycled = ws.grid_c(9, 21);
  const Grid<Complex> fresh(9, 21);
  ASSERT_EQ(recycled->size(), fresh.size());
  EXPECT_EQ(std::memcmp(recycled->data(), fresh.data(),
                        fresh.size() * sizeof(Complex)),
            0);
}

TEST(WorkspaceGrid, UninitCheckoutSkipsZeroing) {
  Workspace& ws = Workspace::this_thread();
  {
    PooledGrid<double> g = ws.grid_f(7, 31);
    g->fill(7.25);
  }
  // Stale contents survive — this is the contract _uninit call sites rely
  // on being allowed to break (they must fully overwrite before reading).
  PooledGrid<double> stale = ws.grid_f_uninit(7, 31);
  EXPECT_EQ((*stale)[0], 7.25);
  EXPECT_EQ((*stale)[stale->size() - 1], 7.25);
}

TEST(WorkspaceGrid, MovedFromGridIsNotPooled) {
  Workspace& ws = Workspace::this_thread();
  const PoolStats before = ws.stats().grid_f;
  {
    PooledGrid<double> g = ws.grid_f(19, 23);
    Grid<double> stolen = std::move(*g);  // leaves a shape/storage mismatch
    EXPECT_EQ(stolen.height(), 19);
  }
  // The hollow grid must be dropped, not parked under the (19, 23) key.
  const PoolStats after = ws.stats().grid_f;
  EXPECT_EQ(after.pooled, before.pooled);
  EXPECT_EQ(after.outstanding, before.outstanding);
  PooledGrid<double> g2 = ws.grid_f(19, 23);
  ASSERT_EQ(g2->size(), static_cast<std::size_t>(19 * 23));
  for (std::size_t i = 0; i < g2->size(); ++i) EXPECT_EQ((*g2)[i], 0.0);
}

TEST(WorkspaceVector, CoveringCapacityCountsAsHit) {
  Workspace& ws = Workspace::this_thread();
  const PoolStats start = ws.stats().vec_f64;
  { PooledVector<double> v = ws.vec_f64(1 << 20); }  // bigger than any pooled
  const PoolStats warmed = ws.stats().vec_f64;
  EXPECT_EQ(warmed.misses - start.misses, 1);
  {
    // Smaller request: the parked capacity covers it — a hit, zeroed.
    PooledVector<double> v = ws.vec_f64(1000);
    EXPECT_EQ(v.size(), 1000u);
    for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v.data()[i], 0.0);
  }
  const PoolStats after = ws.stats().vec_f64;
  EXPECT_EQ(after.hits - warmed.hits, 1);
  EXPECT_EQ(after.misses, warmed.misses);
}

TEST(WorkspaceVector, GrowingARecycledVectorCountsAsMiss) {
  Workspace& ws = Workspace::this_thread();
  { PooledVector<float> v = ws.vec_f32(333); }
  const PoolStats warmed = ws.stats().vec_f32;
  // 2^21 floats exceed every capacity this suite parks in the f32 pool, so
  // the recycled buffer must reallocate — an honest miss.
  { PooledVector<float> v = ws.vec_f32(1 << 21); }
  const PoolStats after = ws.stats().vec_f32;
  EXPECT_EQ(after.misses - warmed.misses, 1);
  EXPECT_EQ(after.hits, warmed.hits);
}

TEST(WorkspaceStats, TracksOutstandingAndPooledBytes) {
  Workspace& ws = Workspace::this_thread();
  const PoolStats before = ws.stats().grid_c;
  {
    PooledGrid<Complex> g = ws.grid_c(11, 29);
    const PoolStats during = ws.stats().grid_c;
    EXPECT_EQ(during.outstanding - before.outstanding, 1);
  }
  const PoolStats after = ws.stats().grid_c;
  EXPECT_EQ(after.outstanding, before.outstanding);
  EXPECT_EQ(after.pooled - before.pooled, 1);
  EXPECT_EQ(after.pooled_bytes - before.pooled_bytes,
            11u * 29u * sizeof(Complex));
}

TEST(WorkspaceStats, ExplicitClearDropsParkedBuffers) {
  Workspace& ws = Workspace::this_thread();
  { PooledVector<Complex> v = ws.vec_c128(555); }
  EXPECT_GT(ws.stats().vec_c128.pooled, 0);
  ws.clear();
  const WorkspaceStats after = ws.stats();
  EXPECT_EQ(after.total().pooled, 0);
  EXPECT_EQ(after.total().pooled_bytes, 0u);
  // Counters survive the clear (they are lifetime totals).
  EXPECT_GT(after.total().hits + after.total().misses, 0);
}

TEST(WorkspaceMetrics, PublishesGaugesAndLiveCounters) {
  { PooledGrid<double> g = Workspace::this_thread().grid_f(6, 37); }
  publish_workspace_metrics();
  EXPECT_GT(obs::gauge("workspace.pooled_bytes").value(), 0.0);
  EXPECT_GT(obs::gauge("workspace.pooled_buffers").value(), 0.0);
  EXPECT_GE(obs::gauge("workspace.threads").value(), 1.0);
  EXPECT_GT(obs::counter("workspace.hits").value() +
                obs::counter("workspace.misses").value(),
            0);
}

TEST(WorkspaceThreads, ConcurrentCheckoutsAndStatsReads) {
  // Four checkout threads hammering their own workspaces while a fifth
  // aggregates stats and publishes gauges: the TSan payload for the
  // owner-thread free lists + relaxed-atomic stats split.
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      Workspace& ws = Workspace::this_thread();
      for (int i = 0; i < kIters; ++i) {
        PooledGrid<double> g = ws.grid_f(24, 24);
        (*g)[0] = static_cast<double>(i);
        PooledVector<Complex> v = ws.vec_c128_uninit(96);
        v.data()[0] = Complex(1.0, 2.0);
      }
    });
  }
  std::thread reader([] {
    for (int i = 0; i < 100; ++i) {
      (void)workspace_stats();
      publish_workspace_metrics();
    }
  });
  for (std::thread& w : workers) w.join();
  reader.join();
  const PoolStats total = workspace_stats().total();
  EXPECT_GE(total.hits + total.misses,
            static_cast<long long>(kThreads) * kIters * 2);
  EXPECT_GE(workspace_stats().grid_f.pooled, 1);
}

TEST(WorkspaceThreads, ForkJoinWorkersWriteCheckedOutBuffer) {
  // A buffer checked out on this thread may be written by parallel_for
  // workers; the join is the happens-before edge the contract names.
  Workspace& ws = Workspace::this_thread();
  PooledVector<double> v = ws.vec_f64(1024);
  parallel_for(1024, [&](std::size_t i) {
    v.data()[i] = static_cast<double>(i);
  });
  double sum = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) sum += v.data()[i];
  EXPECT_EQ(sum, 1023.0 * 1024.0 / 2.0);
}

layout::Layout steady_state_layout() {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({430, 480}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({615, 480}, 65, 65));
  return l;
}

TEST(WorkspaceSteadyState, IltIterationsHaveZeroPoolMissesAfterWarmup) {
  // The tentpole acceptance criterion: after the first ILT iteration warms
  // the shapes, further iterations perform zero pool misses (and therefore
  // zero heap allocations in the pooled paths). Runs serial because the
  // parallel chunk->thread assignment is nondeterministic — a worker that
  // sees its first chunk late would record a legitimate cold miss.
  const int saved_threads = thread_count();
  set_thread_count(1);
  {
    litho::LithoConfig cfg;
    cfg.grid_size = 64;
    cfg.pixel_nm = 16.0;
    cfg.kernel_count = 5;
    const litho::LithoSimulator sim(cfg);
    const opc::IltEngine engine(sim);
    const layout::Layout l = steady_state_layout();
    const GridF target = layout::rasterize_target(l, sim.grid_size());
    opc::IltState state = engine.init_state(l, {0, 1});
    opc::IltScratch scratch;
    engine.step(state, target, scratch);  // warmup: shapes + pool entries

    const long long misses_before =
        obs::counter("workspace.misses").value();
    const long long hits_before = obs::counter("workspace.hits").value();
    for (int i = 0; i < 5; ++i) engine.step(state, target, scratch);
    EXPECT_EQ(obs::counter("workspace.misses").value() - misses_before, 0)
        << "steady-state ILT iterations must not allocate pooled buffers";
    EXPECT_GT(obs::counter("workspace.hits").value() - hits_before, 0)
        << "the pooled paths should actually be exercising the pools";
  }
  set_thread_count(saved_threads);
}

}  // namespace
}  // namespace ldmo::runtime
