// Tests for the triple-patterning extension: k-coloring, TPL candidate
// generation, k-mask printing, multi-mask ILT, and the headline property —
// TPL resolves odd conflict cycles that DPL cannot.
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "graph/coloring.h"
#include "layout/generator.h"
#include "litho/resist.h"
#include "mpl/tpl.h"
#include "opc/mpl_ilt.h"

namespace ldmo {
namespace {

litho::LithoConfig fast_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  cfg.kernel_count = 4;
  return cfg;
}

const litho::LithoSimulator& simulator() {
  static litho::LithoSimulator sim(fast_litho());
  return sim;
}

// Three contacts in a mutual-conflict triangle: pairwise gaps < 80nm.
// 2-uncolorable, 3-colorable.
layout::Layout conflict_triangle() {
  layout::Layout l;
  l.clip = geometry::Rect::from_size({0, 0}, 1024, 1024);
  l.add_pattern(geometry::Rect::from_size({410, 400}, 65, 65));
  l.add_pattern(geometry::Rect::from_size({545, 400}, 65, 65));  // 70nm right
  l.add_pattern(geometry::Rect::from_size({478, 518}, 65, 65));  // ~70 diag
  return l;
}

TEST(KColoring, TriangleNeedsThreeColors) {
  graph::Graph g(3);
  g.add_edge(0, 1, 70);
  g.add_edge(1, 2, 70);
  g.add_edge(0, 2, 70);
  const graph::ColoringResult two = graph::greedy_k_coloring(g, 2);
  EXPECT_GE(two.conflict_count, 1);
  const graph::ColoringResult three = graph::greedy_k_coloring(g, 3);
  EXPECT_EQ(three.conflict_count, 0);
  std::set<int> used(three.color.begin(), three.color.end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(KColoring, BipartiteNeedsOnlyTwo) {
  graph::Graph g(4);
  g.add_edge(0, 1, 70);
  g.add_edge(1, 2, 70);
  g.add_edge(2, 3, 70);
  const graph::ColoringResult r = graph::greedy_k_coloring(g, 3);
  EXPECT_EQ(r.conflict_count, 0);
}

TEST(KColoring, RejectsBadK) {
  graph::Graph g(2);
  EXPECT_THROW(graph::greedy_k_coloring(g, 0), ldmo::Error);
}

TEST(CanonicalizeK, RelabelsByFirstAppearance) {
  EXPECT_EQ(layout::canonicalize_k({2, 0, 1, 2}, 3),
            (layout::Assignment{0, 1, 2, 0}));
  EXPECT_EQ(layout::canonicalize_k({1, 1, 0}, 3),
            (layout::Assignment{0, 0, 1}));
  // Binary case agrees with canonicalize().
  EXPECT_EQ(layout::canonicalize_k({1, 0, 1}, 2),
            layout::canonicalize({1, 0, 1}));
}

TEST(CanonicalizeK, AllPermutationsCollapse) {
  // Every relabeling of the same partition canonicalizes identically.
  const layout::Assignment base = {0, 1, 2, 1, 0};
  std::set<layout::Assignment> canon;
  const int perms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                           {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& p : perms) {
    layout::Assignment relabeled = base;
    for (int& v : relabeled) v = p[v];
    canon.insert(layout::canonicalize_k(std::move(relabeled), 3));
  }
  EXPECT_EQ(canon.size(), 1u);
}

TEST(CanonicalizeK, RejectsOutOfRange) {
  EXPECT_THROW(layout::canonicalize_k({0, 3}, 3), ldmo::Error);
}

TEST(TplGeneration, TriangleCandidatesSeparateAllConflicts) {
  const layout::Layout l = conflict_triangle();
  const mpl::TplGenerationResult r = mpl::generate_tpl_decompositions(l);
  EXPECT_EQ(r.sp_coloring.conflict_count, 0);
  ASSERT_FALSE(r.candidates.empty());
  for (const auto& c : r.candidates) {
    // All three patterns mutually conflict: all on distinct masks.
    EXPECT_TRUE(c[0] != c[1] && c[1] != c[2] && c[0] != c[2]);
    EXPECT_TRUE(mpl::respects_tpl_separation(r, l, c));
  }
  // Mask-permutation symmetry: the triangle has exactly ONE canonical
  // 3-partition.
  std::set<layout::Assignment> unique(r.candidates.begin(),
                                      r.candidates.end());
  EXPECT_EQ(unique.size(), 1u);
}

TEST(TplGeneration, CandidatesCanonicalAndUnique) {
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(5);
  const mpl::TplGenerationResult r = mpl::generate_tpl_decompositions(l);
  std::set<layout::Assignment> unique(r.candidates.begin(),
                                      r.candidates.end());
  EXPECT_EQ(unique.size(), r.candidates.size());
  for (const auto& c : r.candidates) {
    EXPECT_EQ(c[0], 0);  // first pattern relabels to mask 0
    for (int v : c) EXPECT_LT(v, 3);
  }
}

TEST(TplGeneration, RejectsUnsupportedMaskCount) {
  mpl::TplGenerationConfig cfg;
  cfg.mask_count = 4;
  EXPECT_THROW(
      mpl::generate_tpl_decompositions(conflict_triangle(), cfg),
      ldmo::Error);
}

TEST(MultiPrint, ThreeMaskUnionMatchesTwoMaskWhenThirdEmpty) {
  const layout::Layout l = conflict_triangle();
  const GridF two = simulator().print_decomposition(l, {0, 1, 0});
  const GridF three = simulator().print_decomposition_k(l, {0, 1, 0}, 3);
  // An empty exposure still contributes the resist's dark response
  // sigmoid(-theta_z * I_th) ~ 0.009 per pixel, so the continuous
  // responses differ by that DC floor — but the printed result must match.
  const double dark = litho::sigmoid(-simulator().config().theta_z *
                                     simulator().config().intensity_threshold);
  for (std::size_t i = 0; i < two.size(); ++i)
    EXPECT_NEAR(three[i], std::min(two[i] + dark, 1.0), 1e-9);
  EXPECT_EQ(litho::binarize(two), litho::binarize(three));
}

TEST(MplIlt, TriangleUnsolvableWithTwoMasksSolvableWithThree) {
  // The headline TPL property, end to end through the optimizer.
  const layout::Layout l = conflict_triangle();
  opc::IltConfig cfg;
  cfg.max_iterations = 12;
  cfg.theta_m_anneal = 1.2;

  // Best DPL assignment (two patterns must share a mask).
  opc::MplIltEngine dpl(simulator(), 2, cfg);
  const opc::MplIltResult r2 = dpl.optimize(l, {0, 1, 1});
  // TPL: all three separated.
  opc::MplIltEngine tpl(simulator(), 3, cfg);
  const opc::MplIltResult r3 = tpl.optimize(l, {0, 1, 2});

  EXPECT_LT(r3.report.score(), r2.report.score());
  EXPECT_EQ(r3.report.violations.total(), 0);
  EXPECT_GT(r2.report.epe.violation_count + r2.report.violations.total(),
            r3.report.epe.violation_count + r3.report.violations.total());
}

TEST(MplIlt, TwoMaskEngineMatchesDedicatedDplEngine) {
  // MplIltEngine with k = 2 must produce the same result as IltEngine
  // (they implement the same math).
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(3);
  layout::Assignment a(static_cast<std::size_t>(l.pattern_count()), 0);
  for (int i = 0; i < l.pattern_count(); ++i)
    a[static_cast<std::size_t>(i)] = i % 2;
  opc::IltConfig cfg;
  cfg.max_iterations = 6;
  opc::IltEngine dedicated(simulator(), cfg);
  opc::MplIltEngine generic(simulator(), 2, cfg);
  const opc::IltResult r1 = dedicated.optimize(l, a);
  const opc::MplIltResult r2 = generic.optimize(l, a);
  EXPECT_DOUBLE_EQ(r1.report.l2, r2.report.l2);
  EXPECT_EQ(r1.report.epe.violation_count, r2.report.epe.violation_count);
  EXPECT_EQ(r1.mask1, r2.masks[0]);
  EXPECT_EQ(r1.mask2, r2.masks[1]);
}

TEST(MplIlt, InitStateValidatesMaskRange) {
  opc::MplIltEngine engine(simulator(), 3);
  EXPECT_THROW(engine.init_state(conflict_triangle(), {0, 1, 3}),
               ldmo::Error);
  EXPECT_THROW(opc::MplIltEngine(simulator(), 1), ldmo::Error);
}

TEST(MplIlt, AbortOnViolationWorksForThreeMasks) {
  // All three triangle patterns on one mask: guaranteed print violation.
  opc::IltConfig cfg;
  cfg.max_iterations = 12;
  cfg.violation_check_warmup = 3;  // check early in this short schedule
  opc::MplIltEngine engine(simulator(), 3, cfg);
  const opc::MplIltResult r =
      engine.optimize(conflict_triangle(), {0, 0, 0},
                      /*abort_on_violation=*/true);
  EXPECT_TRUE(r.aborted_on_violation);
  EXPECT_LT(r.iterations_run, cfg.max_iterations);
}

}  // namespace
}  // namespace ldmo
