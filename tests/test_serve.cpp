// Serving-layer tests: cancellation/deadline plumbing, the sharded LRU
// cache, cross-request batching bit-identity, admission backpressure,
// deadline-aborted ILT, priority scheduling, and a multi-producer
// concurrency smoke (the TSan payload of the "sanitize" label).
//
// Every flow-running test uses a 32-pixel lithography model over the
// generator's 1024nm clip, so a full run is tens of milliseconds.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/flow_engine.h"
#include "layout/fingerprint.h"
#include "layout/generator.h"
#include "mpl/decomposition_generator.h"
#include "obs/metrics.h"
#include "runtime/cancellation.h"
#include "serve/batcher.h"
#include "serve/cache_key.h"
#include "serve/result_cache.h"
#include "serve/server.h"

namespace ldmo::serve {
namespace {

litho::LithoConfig fast_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 32;
  cfg.pixel_nm = 32.0;  // 32 px x 32 nm = the generator's 1024nm clip
  return cfg;
}

core::FlowEngineConfig fast_engine_config() {
  core::FlowEngineConfig cfg;
  cfg.litho = fast_litho();
  return cfg;
}

ServeConfig fast_serve_config() {
  ServeConfig cfg;
  cfg.engine = fast_engine_config();
  cfg.dispatchers = 2;
  return cfg;
}

layout::Layout test_layout(std::uint64_t seed) {
  return layout::LayoutGenerator().generate(seed);
}

// --- cancellation tokens: deadlines and linking ---

TEST(Cancellation, DefaultTokenNeverCancelled) {
  runtime::CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
}

TEST(Cancellation, ExpiredDeadlineCancels) {
  runtime::CancellationToken token;
  EXPECT_TRUE(token.with_timeout(-1.0).cancelled());
  EXPECT_FALSE(token.with_timeout(3600.0).cancelled());
}

TEST(Cancellation, CombiningDeadlinesKeepsEarlier) {
  runtime::CancellationToken token =
      runtime::CancellationToken{}.with_timeout(3600.0).with_timeout(-1.0);
  EXPECT_TRUE(token.cancelled());
  // The later deadline must not overwrite the earlier one.
  runtime::CancellationToken keep =
      runtime::CancellationToken{}.with_timeout(-1.0).with_timeout(3600.0);
  EXPECT_TRUE(keep.cancelled());
}

TEST(Cancellation, LinkedSourceObservesParent) {
  runtime::CancellationSource parent;
  runtime::CancellationSource child(parent.token());
  EXPECT_FALSE(child.token().cancelled());
  parent.cancel();
  EXPECT_TRUE(child.token().cancelled());
  EXPECT_TRUE(child.cancelled());
}

TEST(Cancellation, ChildCancelLeavesParentUntouched) {
  runtime::CancellationSource parent;
  runtime::CancellationSource child(parent.token());
  child.cancel();
  EXPECT_TRUE(child.token().cancelled());
  EXPECT_FALSE(parent.token().cancelled());
}

// --- FlowEngine::run_many with a token ---

TEST(FlowEngineCancel, PreCancelledTokenYieldsNoResults) {
  core::FlowEngine engine(fast_engine_config());
  runtime::CancellationSource source;
  source.cancel();
  const std::vector<core::LdmoResult> results = engine.run_many(
      {test_layout(1), test_layout(2)}, source.token());
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(engine.session().runs, 0);
}

TEST(FlowEngineCancel, DeadlineTruncatesBatch) {
  core::FlowEngine engine(fast_engine_config());
  // Calibrate: how long does one run take on this machine?
  const auto t0 = std::chrono::steady_clock::now();
  core::LdmoResult cold = engine.run(test_layout(3));
  const double cold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(cold.cancelled);
  // A deadline worth ~1.2 cold runs cannot complete all three layouts.
  const std::vector<core::LdmoResult> results = engine.run_many(
      {test_layout(4), test_layout(5), test_layout(6)},
      runtime::CancellationToken{}.with_timeout(1.2 * cold_seconds));
  EXPECT_LT(results.size(), 3u);
  for (const core::LdmoResult& r : results) EXPECT_FALSE(r.cancelled);
}

// --- sharded LRU cache ---

TEST(ResultCache, HitReturnsStoredValueAndCounts) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.metric_prefix = "test.cache.hit";
  ShardedLruCache<int> cache(cfg, [](const int&) { return 8u; });
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, 42);
  ASSERT_TRUE(cache.get(1).has_value());
  EXPECT_EQ(*cache.get(1), 42);
  EXPECT_EQ(cache.misses(), 1);
  EXPECT_GE(cache.hits(), 2);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCache, ByteBudgetEvictsLeastRecentlyUsed) {
  CacheConfig cfg;
  cfg.shards = 1;
  // Room for exactly two entries (value 36 + overhead 64 = 100 each).
  cfg.budget_bytes = 200;
  cfg.metric_prefix = "test.cache.lru";
  ShardedLruCache<int> cache(cfg, [](const int&) { return 36u; });
  cache.put(1, 10);
  cache.put(2, 20);
  (void)cache.get(1);  // refresh 1 -> victim is 2
  cache.put(3, 30);
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_TRUE(cache.get(3).has_value());
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_LE(cache.bytes(), 200u);
}

TEST(ResultCache, OversizeValueIsNotCached) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.budget_bytes = 100;
  cfg.metric_prefix = "test.cache.oversize";
  ShardedLruCache<int> cache(cfg, [](const int&) { return 1000u; });
  cache.put(1, 10);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(ResultCache, DisabledCacheNeverStores) {
  CacheConfig cfg;
  cfg.enabled = false;
  cfg.metric_prefix = "test.cache.disabled";
  ShardedLruCache<int> cache(cfg, [](const int&) { return 8u; });
  cache.put(1, 10);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(ResultCache, RefreshReplacesValueInPlace) {
  CacheConfig cfg;
  cfg.shards = 1;
  cfg.metric_prefix = "test.cache.refresh";
  ShardedLruCache<int> cache(cfg, [](const int&) { return 8u; });
  cache.put(1, 10);
  cache.put(1, 11);
  EXPECT_EQ(*cache.get(1), 11);
  EXPECT_EQ(cache.entries(), 1u);
}

// --- cache keys ---

TEST(CacheKey, ConfigChangesChangeTheKey) {
  const core::FlowEngineConfig base = fast_engine_config();
  core::FlowEngineConfig tweaked = base;
  tweaked.flow.ilt.max_iterations += 1;
  const std::uint64_t fp_base = config_fingerprint(base, "raw-print");
  EXPECT_NE(fp_base, config_fingerprint(tweaked, "raw-print"));
  EXPECT_NE(fp_base, config_fingerprint(base, "cnn"));
  EXPECT_EQ(fp_base, config_fingerprint(base, "raw-print"));
}

TEST(CacheKey, ResultKeyIsContentAddressed) {
  const std::uint64_t fp =
      config_fingerprint(fast_engine_config(), "raw-print");
  layout::Layout a = test_layout(7);
  layout::Layout renamed = a;
  renamed.name = "other-name";
  EXPECT_EQ(result_cache_key(fp, a), result_cache_key(fp, renamed));
  EXPECT_NE(result_cache_key(fp, a), result_cache_key(fp, test_layout(8)));
}

TEST(CacheKey, ScoreKeySeparatesCandidates) {
  const std::uint64_t fp =
      config_fingerprint(fast_engine_config(), "raw-print");
  const std::uint64_t lfp = layout::fingerprint(test_layout(7));
  EXPECT_NE(score_cache_key(fp, lfp, {0, 1, 0}),
            score_cache_key(fp, lfp, {0, 1, 1}));
  EXPECT_EQ(score_cache_key(fp, lfp, {0, 1, 0}),
            score_cache_key(fp, lfp, {0, 1, 0}));
}

// --- cross-request batching bit-identity ---

TEST(Batcher, ConcurrentScoresMatchSoloExactly) {
  const litho::LithoSimulator simulator(fast_litho());
  core::RawPrintPredictor solo(simulator);
  core::RawPrintPredictor shared(simulator);
  BatcherConfig cfg;
  cfg.flush_candidates = 64;   // force cross-request coalescing
  cfg.flush_timeout_ms = 20.0;
  InferenceBatcher batcher(shared, cfg);

  constexpr int kJobs = 4;
  std::vector<layout::Layout> layouts;
  std::vector<std::vector<layout::Assignment>> candidates;
  std::vector<std::vector<double>> expected;
  for (int j = 0; j < kJobs; ++j) {
    layouts.push_back(test_layout(20 + static_cast<std::uint64_t>(j)));
    candidates.push_back(
        mpl::generate_decompositions(layouts.back()).candidates);
    expected.push_back(solo.score_batch(layouts.back(), candidates.back()));
  }

  std::vector<std::vector<double>> actual(kJobs);
  std::vector<std::thread> threads;
  for (int j = 0; j < kJobs; ++j)
    threads.emplace_back([&, j] {
      actual[static_cast<std::size_t>(j)] = batcher.score(
          layouts[static_cast<std::size_t>(j)],
          candidates[static_cast<std::size_t>(j)]);
    });
  for (std::thread& t : threads) t.join();

  for (int j = 0; j < kJobs; ++j) {
    ASSERT_EQ(actual[j].size(), expected[j].size());
    for (std::size_t c = 0; c < expected[j].size(); ++c)
      EXPECT_EQ(actual[j][c], expected[j][c])  // exact, not near
          << "job " << j << " candidate " << c;
  }
}

TEST(Batcher, CnnMultiJobFlushMatchesPerJobExactly) {
  // The CNN path actually shares fixed-size inference batches across job
  // boundaries — the strongest bit-identity case. Untrained (seeded)
  // weights are fine: only determinism is under test.
  nn::ResNetConfig net_cfg;
  net_cfg.input_size = 32;
  net_cfg.blocks_per_stage = 1;
  core::CnnPredictor cnn(std::make_unique<nn::ResNetRegressor>(net_cfg));

  std::vector<layout::Layout> layouts;
  std::vector<std::vector<layout::Assignment>> candidates;
  for (int j = 0; j < 3; ++j) {
    layouts.push_back(test_layout(50 + static_cast<std::uint64_t>(j)));
    candidates.push_back(
        mpl::generate_decompositions(layouts.back()).candidates);
  }
  std::vector<core::ScoringJob> jobs;
  for (std::size_t j = 0; j < layouts.size(); ++j)
    jobs.push_back({&layouts[j], &candidates[j]});

  const std::vector<std::vector<double>> multi = cnn.score_batch_multi(jobs);
  ASSERT_EQ(multi.size(), layouts.size());
  for (std::size_t j = 0; j < layouts.size(); ++j)
    EXPECT_EQ(multi[j], cnn.score_batch(layouts[j], candidates[j]))
        << "job " << j;
}

TEST(Batcher, DisabledBatcherStillSerializesAndMatches) {
  const litho::LithoSimulator simulator(fast_litho());
  core::RawPrintPredictor solo(simulator);
  core::RawPrintPredictor shared(simulator);
  BatcherConfig cfg;
  cfg.enabled = false;
  InferenceBatcher batcher(shared, cfg);
  const layout::Layout l = test_layout(24);
  const std::vector<layout::Assignment> cands =
      mpl::generate_decompositions(l).candidates;
  EXPECT_EQ(batcher.score(l, cands), solo.score_batch(l, cands));
}

TEST(BatchingPredictor, ScoreCacheHitsAreExact) {
  const litho::LithoSimulator simulator(fast_litho());
  core::RawPrintPredictor solo(simulator);
  core::RawPrintPredictor shared(simulator);
  InferenceBatcher batcher(shared, {});
  CacheConfig cache_cfg;
  cache_cfg.metric_prefix = "test.score_cache";
  ShardedLruCache<double> cache(cache_cfg,
                                [](const double&) { return 8u; });
  BatchingPredictor predictor(
      batcher, &cache,
      config_fingerprint(fast_engine_config(), shared.name()));

  const layout::Layout l = test_layout(25);
  const std::vector<layout::Assignment> cands =
      mpl::generate_decompositions(l).candidates;
  const std::vector<double> expected = solo.score_batch(l, cands);
  const std::vector<double> first = predictor.score_batch(l, cands);
  const long long hits_before = cache.hits();
  const std::vector<double> second = predictor.score_batch(l, cands);
  EXPECT_EQ(first, expected);
  EXPECT_EQ(second, expected);
  EXPECT_GE(cache.hits() - hits_before,
            static_cast<long long>(cands.size()));
}

// --- server end-to-end ---

TEST(Server, CacheHitIsBitIdenticalToColdSoloRun) {
  const layout::Layout l = test_layout(30);

  // Ground truth: cold, solo, unserved.
  core::FlowEngine solo(fast_engine_config());
  const core::LdmoResult reference = solo.run(l);

  Server server(fast_serve_config());
  ServeRequest first_request;
  first_request.layout = l;
  const ServeResponse computed =
      server.submit(std::move(first_request)).response.get();
  ASSERT_EQ(computed.status, ServeStatus::kOk);
  ServeRequest second_request;
  second_request.layout = l;
  const ServeResponse cached =
      server.submit(std::move(second_request)).response.get();
  ASSERT_EQ(cached.status, ServeStatus::kCached);
  EXPECT_EQ(cached.cache_key, computed.cache_key);

  for (const core::LdmoResult* r : {&computed.result, &cached.result}) {
    EXPECT_EQ(r->chosen, reference.chosen);
    EXPECT_EQ(r->ilt.mask1, reference.ilt.mask1);  // Grid == is memcmp-like
    EXPECT_EQ(r->ilt.mask2, reference.ilt.mask2);
    EXPECT_EQ(r->ilt.report.score(), reference.ilt.report.score());
  }
  server.shutdown();
}

TEST(Server, BackpressureRejectsWhenFull) {
  ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;
  cfg.queue_capacity = 2;
  cfg.start_paused = true;  // nothing drains until start()
  Server server(cfg);

  std::vector<RequestTicket> tickets;
  for (int i = 0; i < 2; ++i) {
    ServeRequest request;
    request.layout = test_layout(31);
    tickets.push_back(server.submit(std::move(request)));
  }
  EXPECT_EQ(server.queue_depth(), 2u);

  ServeRequest overflow;
  overflow.layout = test_layout(31);
  RequestTicket rejected = server.submit(std::move(overflow));
  EXPECT_EQ(rejected.response.get().status, ServeStatus::kRejected);

  ServeRequest try_overflow;
  try_overflow.layout = test_layout(31);
  EXPECT_FALSE(server.try_submit(std::move(try_overflow)).has_value());
  EXPECT_EQ(server.status_count(ServeStatus::kRejected), 2);

  server.start();
  for (RequestTicket& t : tickets)
    EXPECT_TRUE(t.response.get().ok());
  server.shutdown();
}

TEST(Server, ExpiredDeadlineTimesOutWithoutRunning) {
  ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;
  cfg.start_paused = true;
  Server server(cfg);
  ServeRequest request;
  request.layout = test_layout(32);
  request.deadline_seconds = 0.001;
  RequestTicket ticket = server.submit(std::move(request));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.start();
  const ServeResponse response = ticket.response.get();
  EXPECT_EQ(response.status, ServeStatus::kTimeout);
  EXPECT_EQ(response.result.ilt.mask1.size(), 0u);  // never computed
  server.shutdown();
}

TEST(Server, DeadlineAbortsIltMidRun) {
  // Calibrate a cold run; skip on machines too fast to catch mid-flight.
  core::FlowEngine solo(fast_engine_config());
  const auto t0 = std::chrono::steady_clock::now();
  (void)solo.run(test_layout(33));
  const double cold_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (cold_seconds < 0.02)
    GTEST_SKIP() << "flow too fast to interrupt reliably";

  ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;
  Server server(cfg);
  ServeRequest request;
  request.layout = test_layout(33);
  request.deadline_seconds = 0.3 * cold_seconds;
  const ServeResponse response =
      server.submit(std::move(request)).response.get();
  EXPECT_EQ(response.status, ServeStatus::kTimeout);
  EXPECT_EQ(response.result.ilt.mask1.size(), 0u);
  server.shutdown();
}

TEST(Server, CancelBeforeDispatchYieldsCancelled) {
  ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;
  cfg.start_paused = true;
  Server server(cfg);
  ServeRequest request;
  request.layout = test_layout(34);
  RequestTicket ticket = server.submit(std::move(request));
  ticket.cancel();
  server.start();
  EXPECT_EQ(ticket.response.get().status, ServeStatus::kCancelled);
  server.shutdown();
}

TEST(Server, PriorityClassesDrainInOrder) {
  ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;  // one consumer -> strict drain order
  cfg.start_paused = true;
  Server server(cfg);

  ServeRequest batch_request;
  batch_request.layout = test_layout(35);
  batch_request.priority = Priority::kBatch;
  ServeRequest normal_request;
  normal_request.layout = test_layout(36);
  normal_request.priority = Priority::kNormal;
  ServeRequest interactive_request;
  interactive_request.layout = test_layout(37);
  interactive_request.priority = Priority::kInteractive;

  // Submitted worst-priority first; completion order must invert it.
  RequestTicket batch_ticket = server.submit(std::move(batch_request));
  RequestTicket normal_ticket = server.submit(std::move(normal_request));
  RequestTicket interactive_ticket =
      server.submit(std::move(interactive_request));
  server.start();

  const ServeResponse batch_response = batch_ticket.response.get();
  const ServeResponse normal_response = normal_ticket.response.get();
  const ServeResponse interactive_response =
      interactive_ticket.response.get();
  EXPECT_LT(interactive_response.completion_sequence,
            normal_response.completion_sequence);
  EXPECT_LT(normal_response.completion_sequence,
            batch_response.completion_sequence);
  server.shutdown();
}

TEST(Server, ShutdownWithoutDrainCancelsQueued) {
  ServeConfig cfg = fast_serve_config();
  cfg.dispatchers = 1;
  cfg.start_paused = true;
  Server server(cfg);
  ServeRequest request;
  request.layout = test_layout(38);
  RequestTicket ticket = server.submit(std::move(request));
  server.shutdown(/*drain=*/false);
  EXPECT_EQ(ticket.response.get().status, ServeStatus::kCancelled);
}

TEST(Server, MultiProducerConcurrencySmoke) {
  // Small but genuinely concurrent: 4 producers x 3 requests over 2
  // unique layouts against 2 dispatchers with batching + both cache
  // tiers. TSan (ctest -L sanitize under -DLDMO_SANITIZE=thread) checks
  // the queue/batcher/cache locking.
  Server server(fast_serve_config());
  const std::vector<layout::Layout> pool = {test_layout(40),
                                            test_layout(41)};
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 3;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ServeRequest request;
        request.layout = pool[static_cast<std::size_t>((p + i) % 2)];
        ServeResponse response =
            server.submit(std::move(request)).response.get();
        if (response.ok()) ok_count.fetch_add(1);
      }
    });
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(ok_count.load(), kProducers * kPerProducer);
  server.shutdown();
}

// A scoring backend that throws plain std::runtime_error on every call.
class AlwaysThrowingBackend : public core::PrintabilityPredictor {
 public:
  double score(const layout::Layout&, const layout::Assignment&) override {
    throw std::runtime_error("backend down");
  }
  std::string name() const override { return "always-throwing"; }
};

TEST(Server, ThrowingBackendDegradesGracefullyByDefault) {
  // Regression for the dispatcher fault model: before Server::process
  // contained the flow outcome, a throwing backend unwound through the
  // dispatcher thread and std::terminate'd the whole process. Now, with
  // degradation on (the default), every request completes kOk — degraded,
  // uncached, but carrying real violation-checked masks.
  Server server(fast_serve_config(),
                std::make_unique<AlwaysThrowingBackend>());
  const layout::Layout layout = test_layout(50);
  for (int i = 0; i < 3; ++i) {
    ServeRequest request;
    request.layout = layout;
    const ServeResponse response =
        server.submit(std::move(request)).response.get();
    EXPECT_EQ(response.status, ServeStatus::kOk);
    EXPECT_TRUE(response.degraded);
    EXPECT_GT(response.result.ilt.iterations_run, 0);
  }
  // Degraded results never enter the result cache.
  EXPECT_EQ(server.status_count(ServeStatus::kCached), 0);
  EXPECT_EQ(server.degraded_count(), 3);
  server.shutdown();
}

}  // namespace
}  // namespace ldmo::serve
