// Unit + property tests for the covering-array generator (PICT substitute).
#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "coverage/covering_array.h"

namespace ldmo::coverage {
namespace {

TEST(CoveringArray, ZeroFactorsYieldsSingleEmptyRow) {
  const CoveringArray a = generate_covering_array(0, 3);
  EXPECT_EQ(a.rows.size(), 1u);
  EXPECT_TRUE(a.rows[0].empty());
  EXPECT_TRUE(verify_coverage(a));
}

TEST(CoveringArray, StrengthAtLeastFactorsIsCartesianProduct) {
  const CoveringArray a = generate_covering_array(3, 3);
  EXPECT_EQ(a.rows.size(), 8u);
  std::set<std::vector<std::uint8_t>> unique(a.rows.begin(), a.rows.end());
  EXPECT_EQ(unique.size(), 8u);
  EXPECT_TRUE(verify_coverage(a));
}

TEST(CoveringArray, StrengthAboveFactorsAlsoCartesian) {
  const CoveringArray a = generate_covering_array(2, 5);
  EXPECT_EQ(a.rows.size(), 4u);
}

TEST(CoveringArray, RejectsBadArguments) {
  EXPECT_THROW(generate_covering_array(-1, 2), ldmo::Error);
  EXPECT_THROW(generate_covering_array(4, 0), ldmo::Error);
  EXPECT_THROW(generate_covering_array(63, 2), ldmo::Error);
}

TEST(CoveringArray, PairwiseFourFactorsSmall) {
  // The paper's example: pairwise over 4 binary factors needs ~5 rows.
  const CoveringArray a = generate_covering_array(4, 2);
  EXPECT_TRUE(verify_coverage(a));
  EXPECT_LE(a.rows.size(), 8u);  // greedy bound; optimal is 5
  EXPECT_GE(a.rows.size(), 5u);  // information-theoretic lower bound
}

TEST(CoveringArray, DeterministicPerSeed) {
  GeneratorOptions opt;
  opt.seed = 99;
  const CoveringArray a = generate_covering_array(8, 2, opt);
  const CoveringArray b = generate_covering_array(8, 2, opt);
  EXPECT_EQ(a.rows, b.rows);
}

TEST(CoveringArray, RequiredTupleCount) {
  EXPECT_EQ(required_tuple_count(4, 2), 6u * 4u);   // C(4,2)*4
  EXPECT_EQ(required_tuple_count(5, 3), 10u * 8u);  // C(5,3)*8
  EXPECT_EQ(required_tuple_count(2, 5), 1u * 4u);   // clamped strength
}

TEST(CoveringArray, VerifyDetectsMissingCoverage) {
  CoveringArray broken;
  broken.factor_count = 3;
  broken.strength = 2;
  broken.rows = {{0, 0, 0}, {1, 1, 1}};  // (0,1) combos missing everywhere
  EXPECT_FALSE(verify_coverage(broken));
}

// Property sweep: coverage holds for all factor counts and strengths we use
// in the decomposition generator, and arrays stay far below 2^factors.
class CoverageSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CoverageSweep, CoversAndStaysCompact) {
  const auto [factors, strength] = GetParam();
  const CoveringArray a = generate_covering_array(factors, strength);
  EXPECT_TRUE(verify_coverage(a))
      << "factors=" << factors << " strength=" << strength;
  for (const auto& row : a.rows)
    EXPECT_EQ(row.size(), static_cast<std::size_t>(factors));
  if (factors > strength + 2) {
    const std::size_t exhaustive = std::size_t{1} << factors;
    EXPECT_LT(a.rows.size(), exhaustive / 2)
        << "array not compact for factors=" << factors;
  }
  // Growth is logarithmic-ish in factors: 16 binary factors pairwise should
  // need far fewer than 40 rows even with a greedy generator.
  if (strength == 2) {
    EXPECT_LE(a.rows.size(), 40u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoverageSweep,
    ::testing::Combine(::testing::Values(3, 4, 5, 6, 8, 10, 12, 16),
                       ::testing::Values(2, 3)));

TEST(CoveringArray, ThreeWiseTwelveFactorsCompact) {
  const CoveringArray a = generate_covering_array(12, 3);
  EXPECT_TRUE(verify_coverage(a));
  EXPECT_LT(a.rows.size(), 120u);  // full product would be 4096
}

// ----------------------------------------------------- mixed arity (TPL) --

TEST(MixedArity, TernaryPairwiseCovers) {
  // Triple-patterning factors: 8 ternary masks, pairwise coverage.
  const CoveringArray a =
      generate_covering_array_mixed(std::vector<int>(8, 3), 2);
  EXPECT_TRUE(verify_coverage(a));
  // Lower bound 9 (3x3 combos must all appear); greedy stays well under
  // the 6561-row product.
  EXPECT_GE(a.rows.size(), 9u);
  EXPECT_LT(a.rows.size(), 40u);
  for (const auto& row : a.rows)
    for (auto v : row) EXPECT_LT(v, 3);
}

TEST(MixedArity, HeterogeneousFactors) {
  // Mixed factor levels (component-permutation factor of arity 6 plus
  // ternary pattern factors).
  const CoveringArray a = generate_covering_array_mixed({6, 3, 3, 2, 3}, 2);
  EXPECT_TRUE(verify_coverage(a));
  for (const auto& row : a.rows) {
    EXPECT_LT(row[0], 6);
    EXPECT_LT(row[3], 2);
  }
}

TEST(MixedArity, CartesianFallbackForHighStrength) {
  const CoveringArray a = generate_covering_array_mixed({3, 2, 3}, 3);
  EXPECT_EQ(a.rows.size(), 18u);  // 3*2*3
  std::set<std::vector<std::uint8_t>> unique(a.rows.begin(), a.rows.end());
  EXPECT_EQ(unique.size(), 18u);
}

TEST(MixedArity, RejectsBadArity) {
  EXPECT_THROW(generate_covering_array_mixed({3, 1}, 2), ldmo::Error);
}

TEST(MixedArity, TernaryThreeWiseCovers) {
  const CoveringArray a =
      generate_covering_array_mixed(std::vector<int>(6, 3), 3);
  EXPECT_TRUE(verify_coverage(a));
  EXPECT_GE(a.rows.size(), 27u);   // 3^3 combos per column triple
  EXPECT_LT(a.rows.size(), 200u);  // far below 729
}

TEST(MixedArity, DeterministicPerSeed) {
  GeneratorOptions opt;
  opt.seed = 5;
  const CoveringArray a =
      generate_covering_array_mixed(std::vector<int>(7, 3), 2, opt);
  const CoveringArray b =
      generate_covering_array_mixed(std::vector<int>(7, 3), 2, opt);
  EXPECT_EQ(a.rows, b.rows);
}

}  // namespace
}  // namespace ldmo::coverage
