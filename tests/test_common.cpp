// Unit tests for the common module: errors, RNG, timers, stats, grid.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.h"
#include "common/grid.h"
#include "common/hash.h"
#include "common/log.h"
#include "obs/json.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/timer.h"

namespace ldmo {
namespace {

TEST(Error, RaiseThrowsWithMessage) {
  try {
    raise("boom");
    FAIL() << "raise did not throw";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(Error, RequirePassesOnTrue) { EXPECT_NO_THROW(require(true, "ok")); }

TEST(Error, RequireThrowsOnFalse) {
  EXPECT_THROW(require(false, "bad"), Error);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(2, 5));
  EXPECT_EQ(seen, (std::set<int>{2, 3, 4, 5}));
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 2), Error);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(3);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_NEAR(stddev(v), std::sqrt(1.25), 1e-12);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
}

TEST(ZScore, TransformStandardizes) {
  ZScoreNormalizer z;
  z.fit({2, 4, 6, 8});
  EXPECT_NEAR(z.transform(5.0), 0.0, 1e-12);
  // Round trip.
  EXPECT_NEAR(z.inverse(z.transform(7.3)), 7.3, 1e-12);
}

TEST(ZScore, DegenerateFitMapsToZero) {
  ZScoreNormalizer z;
  z.fit({5, 5, 5});
  EXPECT_DOUBLE_EQ(z.transform(5.0), 0.0);
  EXPECT_DOUBLE_EQ(z.transform(100.0), 0.0);
}

TEST(ZScore, TransformBeforeFitThrows) {
  ZScoreNormalizer z;
  EXPECT_THROW(z.transform(1.0), Error);
}

TEST(ZScore, FitEmptyThrows) {
  ZScoreNormalizer z;
  EXPECT_THROW(z.fit({}), Error);
}

TEST(Spearman, PerfectMonotoneIsOneEvenWhenNonlinear) {
  // Rank correlation sees through monotone warps — the property the
  // flywheel's promotion gate relies on (predictor scores drift in scale
  // while ranking correctly).
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> exp_x = {2.7, 7.4, 20.1, 54.6, 148.4};
  EXPECT_DOUBLE_EQ(spearman_rank_correlation(x, exp_x), 1.0);
  const std::vector<double> reversed = {5, 4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(spearman_rank_correlation(x, reversed), -1.0);
}

TEST(Spearman, TiesGetAverageRanks) {
  // Textbook worked example: one tied pair in each sample.
  const std::vector<double> a = {1, 2, 2, 4};
  const std::vector<double> b = {1, 3, 3, 2};
  // ranks(a) = {1, 2.5, 2.5, 4}, ranks(b) = {1, 3.5, 3.5, 2}; Pearson of
  // those rank vectors: cov 1.5 / (sqrt(4.5) * sqrt(4.5)) = 1/3.
  EXPECT_NEAR(spearman_rank_correlation(a, b), 1.0 / 3.0, 1e-12);
}

TEST(Spearman, DegenerateInputsAreZeroNotNan) {
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({1.0}, {2.0}), 0.0);
  // Zero rank variance (all tied) on either side.
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({3, 3, 3}, {1, 2, 3}), 0.0);
  EXPECT_DOUBLE_EQ(spearman_rank_correlation({1, 2, 3}, {7, 7, 7}), 0.0);
}

TEST(Spearman, UncorrelatedPermutationIsBetweenBounds) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> b = {3, 8, 1, 6, 2, 7, 4, 5};
  const double rho = spearman_rank_correlation(a, b);
  EXPECT_GT(rho, -1.0);
  EXPECT_LT(rho, 1.0);
}

TEST(PhaseTimer, AccumulatesAndFractions) {
  PhaseTimer timer;
  timer.add("ds", 3.0);
  timer.add("mo", 1.0);
  timer.add("ds", 1.0);
  EXPECT_DOUBLE_EQ(timer.get("ds"), 4.0);
  EXPECT_DOUBLE_EQ(timer.total(), 5.0);
  EXPECT_DOUBLE_EQ(timer.fraction("ds"), 0.8);
  EXPECT_DOUBLE_EQ(timer.get("missing"), 0.0);
}

TEST(PhaseTimer, EmptyTotalsZero) {
  PhaseTimer timer;
  EXPECT_DOUBLE_EQ(timer.total(), 0.0);
  EXPECT_DOUBLE_EQ(timer.fraction("x"), 0.0);
}

TEST(Timer, MeasuresNonNegativeElapsed) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Grid, ShapeAndFill) {
  GridF g(3, 4, 1.5);
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.width(), 4);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_DOUBLE_EQ(g.at(2, 3), 1.5);
  g.fill(0.0);
  EXPECT_DOUBLE_EQ(g.at(0, 0), 0.0);
}

TEST(Grid, RowMajorLinearAccess) {
  GridF g(2, 3);
  g.at(1, 2) = 7.0;
  EXPECT_DOUBLE_EQ(g[1 * 3 + 2], 7.0);
}

TEST(Grid, InBounds) {
  GridF g(2, 2);
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(1, 1));
  EXPECT_FALSE(g.in_bounds(2, 0));
  EXPECT_FALSE(g.in_bounds(0, -1));
}

TEST(Grid, SameShapeComparison) {
  GridF a(2, 3), b(2, 3), c(3, 2);
  EXPECT_TRUE(a.same_shape(b));
  EXPECT_FALSE(a.same_shape(c));
}

// --- FNV-1a hashing (common/hash.h) ---

TEST(Hash, Fnv1aReferenceVectors) {
  // Classic 64-bit FNV-1a test vectors.
  EXPECT_EQ(common::fnv1a(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(common::fnv1a("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(common::fnv1a("foobar"), 0x85944171f73967e8ull);
}

TEST(Hash, Fnv1aBytesMatchesStringView) {
  const char data[] = {'f', 'o', 'o'};
  EXPECT_EQ(common::fnv1a(data, 3), common::fnv1a("foo"));
}

TEST(Hash, ChainedFeedsAreOrderSensitive) {
  const std::uint64_t ab = common::Fnv1a().u64(1).u64(2).digest();
  const std::uint64_t ba = common::Fnv1a().u64(2).u64(1).digest();
  EXPECT_NE(ab, ba);
}

TEST(Hash, StringFeedIsLengthPrefixed) {
  // Without a length prefix "ab"+"c" and "a"+"bc" would collide.
  const std::uint64_t split1 = common::Fnv1a().str("ab").str("c").digest();
  const std::uint64_t split2 = common::Fnv1a().str("a").str("bc").digest();
  EXPECT_NE(split1, split2);
}

TEST(Hash, DoubleFeedIsBitExact) {
  // -0.0 == 0.0 numerically but differs bitwise; the hash must see bits.
  const std::uint64_t pos = common::Fnv1a().f64(0.0).digest();
  const std::uint64_t neg = common::Fnv1a().f64(-0.0).digest();
  EXPECT_NE(pos, neg);
  EXPECT_EQ(common::Fnv1a().f64(1.5).digest(),
            common::Fnv1a().f64(1.5).digest());
}

TEST(Hash, SignedFeedDistinguishesNegatives) {
  EXPECT_NE(common::Fnv1a().i64(-1).digest(),
            common::Fnv1a().i64(1).digest());
}

TEST(Log, ParseLogLevelNamesAndFallback) {
  EXPECT_EQ(parse_log_level("DEBUG", LogLevel::Off), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("warning", LogLevel::Off), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::Error), LogLevel::Error);
}

TEST(Log, TextFormatLine) {
  const LogFormat saved = log_format();
  set_log_format(LogFormat::Text);
  const std::string line =
      detail::format_log_line(LogLevel::Warn, "disk almost full");
  set_log_format(saved);
  // "[<iso8601>] [WARN] disk almost full"
  EXPECT_EQ(line.front(), '[');
  EXPECT_NE(line.find("] [WARN] disk almost full"), std::string::npos);
}

TEST(Log, JsonFormatLineIsParseableAndEscaped) {
  const LogFormat saved = log_format();
  set_log_format(LogFormat::Json);
  const std::string line = detail::format_log_line(
      LogLevel::Error, "bad \"input\"\nsecond line");
  set_log_format(saved);
  const obs::JsonValue doc = obs::parse_json(line);
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("level")->string, "error");
  EXPECT_EQ(doc.find("msg")->string, "bad \"input\"\nsecond line");
  EXPECT_FALSE(doc.find("ts")->string.empty());
  // One object per line: embedded newlines in the message must not break
  // line-oriented consumers.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace ldmo
