# Empty dependencies file for test_opc.
# This may be replaced when dependencies are built.
