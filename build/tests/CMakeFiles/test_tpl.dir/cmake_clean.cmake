file(REMOVE_RECURSE
  "CMakeFiles/test_tpl.dir/test_tpl.cpp.o"
  "CMakeFiles/test_tpl.dir/test_tpl.cpp.o.d"
  "test_tpl"
  "test_tpl.pdb"
  "test_tpl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
