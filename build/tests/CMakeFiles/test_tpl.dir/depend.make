# Empty dependencies file for test_tpl.
# This may be replaced when dependencies are built.
