file(REMOVE_RECURSE
  "CMakeFiles/test_meef.dir/test_meef.cpp.o"
  "CMakeFiles/test_meef.dir/test_meef.cpp.o.d"
  "test_meef"
  "test_meef.pdb"
  "test_meef[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
