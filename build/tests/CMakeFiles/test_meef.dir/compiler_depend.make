# Empty compiler generated dependencies file for test_meef.
# This may be replaced when dependencies are built.
