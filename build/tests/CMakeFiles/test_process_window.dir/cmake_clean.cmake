file(REMOVE_RECURSE
  "CMakeFiles/test_process_window.dir/test_process_window.cpp.o"
  "CMakeFiles/test_process_window.dir/test_process_window.cpp.o.d"
  "test_process_window"
  "test_process_window.pdb"
  "test_process_window[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_process_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
