# Empty compiler generated dependencies file for test_process_window.
# This may be replaced when dependencies are built.
