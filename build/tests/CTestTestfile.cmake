# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_fft[1]_include.cmake")
include("/root/repo/build/tests/test_layout[1]_include.cmake")
include("/root/repo/build/tests/test_litho[1]_include.cmake")
include("/root/repo/build/tests/test_opc[1]_include.cmake")
include("/root/repo/build/tests/test_mpl[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_vision[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_tpl[1]_include.cmake")
include("/root/repo/build/tests/test_process_window[1]_include.cmake")
include("/root/repo/build/tests/test_meef[1]_include.cmake")
