# Empty dependencies file for ldmo_mpl.
# This may be replaced when dependencies are built.
