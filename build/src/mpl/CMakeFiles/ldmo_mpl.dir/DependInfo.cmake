
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpl/baselines.cpp" "src/mpl/CMakeFiles/ldmo_mpl.dir/baselines.cpp.o" "gcc" "src/mpl/CMakeFiles/ldmo_mpl.dir/baselines.cpp.o.d"
  "/root/repo/src/mpl/classify.cpp" "src/mpl/CMakeFiles/ldmo_mpl.dir/classify.cpp.o" "gcc" "src/mpl/CMakeFiles/ldmo_mpl.dir/classify.cpp.o.d"
  "/root/repo/src/mpl/decomposition_generator.cpp" "src/mpl/CMakeFiles/ldmo_mpl.dir/decomposition_generator.cpp.o" "gcc" "src/mpl/CMakeFiles/ldmo_mpl.dir/decomposition_generator.cpp.o.d"
  "/root/repo/src/mpl/tpl.cpp" "src/mpl/CMakeFiles/ldmo_mpl.dir/tpl.cpp.o" "gcc" "src/mpl/CMakeFiles/ldmo_mpl.dir/tpl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ldmo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ldmo_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ldmo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/ldmo_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/ldmo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
