file(REMOVE_RECURSE
  "CMakeFiles/ldmo_mpl.dir/baselines.cpp.o"
  "CMakeFiles/ldmo_mpl.dir/baselines.cpp.o.d"
  "CMakeFiles/ldmo_mpl.dir/classify.cpp.o"
  "CMakeFiles/ldmo_mpl.dir/classify.cpp.o.d"
  "CMakeFiles/ldmo_mpl.dir/decomposition_generator.cpp.o"
  "CMakeFiles/ldmo_mpl.dir/decomposition_generator.cpp.o.d"
  "CMakeFiles/ldmo_mpl.dir/tpl.cpp.o"
  "CMakeFiles/ldmo_mpl.dir/tpl.cpp.o.d"
  "libldmo_mpl.a"
  "libldmo_mpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_mpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
