file(REMOVE_RECURSE
  "libldmo_mpl.a"
)
