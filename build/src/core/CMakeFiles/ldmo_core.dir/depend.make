# Empty dependencies file for ldmo_core.
# This may be replaced when dependencies are built.
