file(REMOVE_RECURSE
  "libldmo_core.a"
)
