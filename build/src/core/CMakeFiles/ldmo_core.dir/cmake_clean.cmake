file(REMOVE_RECURSE
  "CMakeFiles/ldmo_core.dir/baseline_flows.cpp.o"
  "CMakeFiles/ldmo_core.dir/baseline_flows.cpp.o.d"
  "CMakeFiles/ldmo_core.dir/ldmo_flow.cpp.o"
  "CMakeFiles/ldmo_core.dir/ldmo_flow.cpp.o.d"
  "CMakeFiles/ldmo_core.dir/predictor.cpp.o"
  "CMakeFiles/ldmo_core.dir/predictor.cpp.o.d"
  "libldmo_core.a"
  "libldmo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
