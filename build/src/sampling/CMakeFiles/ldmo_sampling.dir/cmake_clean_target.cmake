file(REMOVE_RECURSE
  "libldmo_sampling.a"
)
