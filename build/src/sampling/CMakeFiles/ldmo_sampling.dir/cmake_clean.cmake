file(REMOVE_RECURSE
  "CMakeFiles/ldmo_sampling.dir/decomposition_sampling.cpp.o"
  "CMakeFiles/ldmo_sampling.dir/decomposition_sampling.cpp.o.d"
  "CMakeFiles/ldmo_sampling.dir/layout_sampling.cpp.o"
  "CMakeFiles/ldmo_sampling.dir/layout_sampling.cpp.o.d"
  "CMakeFiles/ldmo_sampling.dir/training_set.cpp.o"
  "CMakeFiles/ldmo_sampling.dir/training_set.cpp.o.d"
  "libldmo_sampling.a"
  "libldmo_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
