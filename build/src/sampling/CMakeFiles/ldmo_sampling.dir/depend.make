# Empty dependencies file for ldmo_sampling.
# This may be replaced when dependencies are built.
