file(REMOVE_RECURSE
  "CMakeFiles/ldmo_opc.dir/ilt.cpp.o"
  "CMakeFiles/ldmo_opc.dir/ilt.cpp.o.d"
  "CMakeFiles/ldmo_opc.dir/mpl_ilt.cpp.o"
  "CMakeFiles/ldmo_opc.dir/mpl_ilt.cpp.o.d"
  "libldmo_opc.a"
  "libldmo_opc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_opc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
