file(REMOVE_RECURSE
  "libldmo_opc.a"
)
