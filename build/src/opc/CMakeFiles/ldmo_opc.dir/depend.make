# Empty dependencies file for ldmo_opc.
# This may be replaced when dependencies are built.
