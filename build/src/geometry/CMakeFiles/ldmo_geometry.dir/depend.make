# Empty dependencies file for ldmo_geometry.
# This may be replaced when dependencies are built.
