file(REMOVE_RECURSE
  "libldmo_geometry.a"
)
