file(REMOVE_RECURSE
  "CMakeFiles/ldmo_geometry.dir/rect.cpp.o"
  "CMakeFiles/ldmo_geometry.dir/rect.cpp.o.d"
  "CMakeFiles/ldmo_geometry.dir/spatial_index.cpp.o"
  "CMakeFiles/ldmo_geometry.dir/spatial_index.cpp.o.d"
  "libldmo_geometry.a"
  "libldmo_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
