# Empty compiler generated dependencies file for ldmo_vision.
# This may be replaced when dependencies are built.
