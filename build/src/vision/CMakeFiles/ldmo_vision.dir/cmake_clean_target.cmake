file(REMOVE_RECURSE
  "libldmo_vision.a"
)
