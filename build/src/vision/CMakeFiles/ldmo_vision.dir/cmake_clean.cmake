file(REMOVE_RECURSE
  "CMakeFiles/ldmo_vision.dir/image_ops.cpp.o"
  "CMakeFiles/ldmo_vision.dir/image_ops.cpp.o.d"
  "CMakeFiles/ldmo_vision.dir/kmedoids.cpp.o"
  "CMakeFiles/ldmo_vision.dir/kmedoids.cpp.o.d"
  "CMakeFiles/ldmo_vision.dir/sift.cpp.o"
  "CMakeFiles/ldmo_vision.dir/sift.cpp.o.d"
  "CMakeFiles/ldmo_vision.dir/similarity.cpp.o"
  "CMakeFiles/ldmo_vision.dir/similarity.cpp.o.d"
  "libldmo_vision.a"
  "libldmo_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
