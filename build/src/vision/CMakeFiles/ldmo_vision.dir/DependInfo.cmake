
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/image_ops.cpp" "src/vision/CMakeFiles/ldmo_vision.dir/image_ops.cpp.o" "gcc" "src/vision/CMakeFiles/ldmo_vision.dir/image_ops.cpp.o.d"
  "/root/repo/src/vision/kmedoids.cpp" "src/vision/CMakeFiles/ldmo_vision.dir/kmedoids.cpp.o" "gcc" "src/vision/CMakeFiles/ldmo_vision.dir/kmedoids.cpp.o.d"
  "/root/repo/src/vision/sift.cpp" "src/vision/CMakeFiles/ldmo_vision.dir/sift.cpp.o" "gcc" "src/vision/CMakeFiles/ldmo_vision.dir/sift.cpp.o.d"
  "/root/repo/src/vision/similarity.cpp" "src/vision/CMakeFiles/ldmo_vision.dir/similarity.cpp.o" "gcc" "src/vision/CMakeFiles/ldmo_vision.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ldmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
