file(REMOVE_RECURSE
  "CMakeFiles/ldmo_layout.dir/drc.cpp.o"
  "CMakeFiles/ldmo_layout.dir/drc.cpp.o.d"
  "CMakeFiles/ldmo_layout.dir/generator.cpp.o"
  "CMakeFiles/ldmo_layout.dir/generator.cpp.o.d"
  "CMakeFiles/ldmo_layout.dir/io.cpp.o"
  "CMakeFiles/ldmo_layout.dir/io.cpp.o.d"
  "CMakeFiles/ldmo_layout.dir/layout.cpp.o"
  "CMakeFiles/ldmo_layout.dir/layout.cpp.o.d"
  "CMakeFiles/ldmo_layout.dir/raster.cpp.o"
  "CMakeFiles/ldmo_layout.dir/raster.cpp.o.d"
  "libldmo_layout.a"
  "libldmo_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
