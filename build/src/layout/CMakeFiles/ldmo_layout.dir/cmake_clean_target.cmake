file(REMOVE_RECURSE
  "libldmo_layout.a"
)
