
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/drc.cpp" "src/layout/CMakeFiles/ldmo_layout.dir/drc.cpp.o" "gcc" "src/layout/CMakeFiles/ldmo_layout.dir/drc.cpp.o.d"
  "/root/repo/src/layout/generator.cpp" "src/layout/CMakeFiles/ldmo_layout.dir/generator.cpp.o" "gcc" "src/layout/CMakeFiles/ldmo_layout.dir/generator.cpp.o.d"
  "/root/repo/src/layout/io.cpp" "src/layout/CMakeFiles/ldmo_layout.dir/io.cpp.o" "gcc" "src/layout/CMakeFiles/ldmo_layout.dir/io.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "src/layout/CMakeFiles/ldmo_layout.dir/layout.cpp.o" "gcc" "src/layout/CMakeFiles/ldmo_layout.dir/layout.cpp.o.d"
  "/root/repo/src/layout/raster.cpp" "src/layout/CMakeFiles/ldmo_layout.dir/raster.cpp.o" "gcc" "src/layout/CMakeFiles/ldmo_layout.dir/raster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ldmo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/ldmo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
