# Empty compiler generated dependencies file for ldmo_layout.
# This may be replaced when dependencies are built.
