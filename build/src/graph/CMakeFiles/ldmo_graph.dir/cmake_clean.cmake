file(REMOVE_RECURSE
  "CMakeFiles/ldmo_graph.dir/coloring.cpp.o"
  "CMakeFiles/ldmo_graph.dir/coloring.cpp.o.d"
  "CMakeFiles/ldmo_graph.dir/disjoint_set.cpp.o"
  "CMakeFiles/ldmo_graph.dir/disjoint_set.cpp.o.d"
  "CMakeFiles/ldmo_graph.dir/graph.cpp.o"
  "CMakeFiles/ldmo_graph.dir/graph.cpp.o.d"
  "CMakeFiles/ldmo_graph.dir/mst.cpp.o"
  "CMakeFiles/ldmo_graph.dir/mst.cpp.o.d"
  "libldmo_graph.a"
  "libldmo_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
