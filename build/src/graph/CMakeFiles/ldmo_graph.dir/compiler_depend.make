# Empty compiler generated dependencies file for ldmo_graph.
# This may be replaced when dependencies are built.
