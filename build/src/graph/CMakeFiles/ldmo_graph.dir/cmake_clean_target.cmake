file(REMOVE_RECURSE
  "libldmo_graph.a"
)
