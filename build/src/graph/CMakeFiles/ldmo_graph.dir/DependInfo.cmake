
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/coloring.cpp" "src/graph/CMakeFiles/ldmo_graph.dir/coloring.cpp.o" "gcc" "src/graph/CMakeFiles/ldmo_graph.dir/coloring.cpp.o.d"
  "/root/repo/src/graph/disjoint_set.cpp" "src/graph/CMakeFiles/ldmo_graph.dir/disjoint_set.cpp.o" "gcc" "src/graph/CMakeFiles/ldmo_graph.dir/disjoint_set.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/ldmo_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/ldmo_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/mst.cpp" "src/graph/CMakeFiles/ldmo_graph.dir/mst.cpp.o" "gcc" "src/graph/CMakeFiles/ldmo_graph.dir/mst.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ldmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
