file(REMOVE_RECURSE
  "CMakeFiles/ldmo_coverage.dir/covering_array.cpp.o"
  "CMakeFiles/ldmo_coverage.dir/covering_array.cpp.o.d"
  "libldmo_coverage.a"
  "libldmo_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
