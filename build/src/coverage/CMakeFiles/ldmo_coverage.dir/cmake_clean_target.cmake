file(REMOVE_RECURSE
  "libldmo_coverage.a"
)
