# Empty dependencies file for ldmo_coverage.
# This may be replaced when dependencies are built.
