file(REMOVE_RECURSE
  "CMakeFiles/ldmo_common.dir/error.cpp.o"
  "CMakeFiles/ldmo_common.dir/error.cpp.o.d"
  "CMakeFiles/ldmo_common.dir/log.cpp.o"
  "CMakeFiles/ldmo_common.dir/log.cpp.o.d"
  "CMakeFiles/ldmo_common.dir/rng.cpp.o"
  "CMakeFiles/ldmo_common.dir/rng.cpp.o.d"
  "CMakeFiles/ldmo_common.dir/stats.cpp.o"
  "CMakeFiles/ldmo_common.dir/stats.cpp.o.d"
  "CMakeFiles/ldmo_common.dir/timer.cpp.o"
  "CMakeFiles/ldmo_common.dir/timer.cpp.o.d"
  "libldmo_common.a"
  "libldmo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
