# Empty compiler generated dependencies file for ldmo_common.
# This may be replaced when dependencies are built.
