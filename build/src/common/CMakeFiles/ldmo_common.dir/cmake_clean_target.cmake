file(REMOVE_RECURSE
  "libldmo_common.a"
)
