# Empty compiler generated dependencies file for ldmo_fft.
# This may be replaced when dependencies are built.
