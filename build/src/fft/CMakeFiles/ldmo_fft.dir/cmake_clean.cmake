file(REMOVE_RECURSE
  "CMakeFiles/ldmo_fft.dir/fft.cpp.o"
  "CMakeFiles/ldmo_fft.dir/fft.cpp.o.d"
  "libldmo_fft.a"
  "libldmo_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
