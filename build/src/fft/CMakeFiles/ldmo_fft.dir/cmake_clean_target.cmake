file(REMOVE_RECURSE
  "libldmo_fft.a"
)
