file(REMOVE_RECURSE
  "CMakeFiles/ldmo_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/ldmo_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/conv.cpp.o"
  "CMakeFiles/ldmo_nn.dir/conv.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/gemm.cpp.o"
  "CMakeFiles/ldmo_nn.dir/gemm.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/layers.cpp.o"
  "CMakeFiles/ldmo_nn.dir/layers.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/linear.cpp.o"
  "CMakeFiles/ldmo_nn.dir/linear.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/loss.cpp.o"
  "CMakeFiles/ldmo_nn.dir/loss.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/optimizer.cpp.o"
  "CMakeFiles/ldmo_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/pooling.cpp.o"
  "CMakeFiles/ldmo_nn.dir/pooling.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/resnet.cpp.o"
  "CMakeFiles/ldmo_nn.dir/resnet.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/serialize.cpp.o"
  "CMakeFiles/ldmo_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/tensor.cpp.o"
  "CMakeFiles/ldmo_nn.dir/tensor.cpp.o.d"
  "CMakeFiles/ldmo_nn.dir/trainer.cpp.o"
  "CMakeFiles/ldmo_nn.dir/trainer.cpp.o.d"
  "libldmo_nn.a"
  "libldmo_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
