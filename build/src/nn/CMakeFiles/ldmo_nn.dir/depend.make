# Empty dependencies file for ldmo_nn.
# This may be replaced when dependencies are built.
