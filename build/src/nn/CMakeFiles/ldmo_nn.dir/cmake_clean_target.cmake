file(REMOVE_RECURSE
  "libldmo_nn.a"
)
