
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/gemm.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/gemm.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/resnet.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/resnet.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/resnet.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/ldmo_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/ldmo_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ldmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
