
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/litho/aerial.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/aerial.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/aerial.cpp.o.d"
  "/root/repo/src/litho/config.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/config.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/config.cpp.o.d"
  "/root/repo/src/litho/eig.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/eig.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/eig.cpp.o.d"
  "/root/repo/src/litho/kernels.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/kernels.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/kernels.cpp.o.d"
  "/root/repo/src/litho/meef.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/meef.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/meef.cpp.o.d"
  "/root/repo/src/litho/metrics.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/metrics.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/metrics.cpp.o.d"
  "/root/repo/src/litho/process_window.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/process_window.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/process_window.cpp.o.d"
  "/root/repo/src/litho/resist.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/resist.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/resist.cpp.o.d"
  "/root/repo/src/litho/simulator.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/simulator.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/simulator.cpp.o.d"
  "/root/repo/src/litho/tcc.cpp" "src/litho/CMakeFiles/ldmo_litho.dir/tcc.cpp.o" "gcc" "src/litho/CMakeFiles/ldmo_litho.dir/tcc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ldmo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/ldmo_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ldmo_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/ldmo_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
