file(REMOVE_RECURSE
  "libldmo_litho.a"
)
