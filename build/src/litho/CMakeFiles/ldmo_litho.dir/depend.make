# Empty dependencies file for ldmo_litho.
# This may be replaced when dependencies are built.
