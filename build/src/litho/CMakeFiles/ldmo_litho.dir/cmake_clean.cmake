file(REMOVE_RECURSE
  "CMakeFiles/ldmo_litho.dir/aerial.cpp.o"
  "CMakeFiles/ldmo_litho.dir/aerial.cpp.o.d"
  "CMakeFiles/ldmo_litho.dir/config.cpp.o"
  "CMakeFiles/ldmo_litho.dir/config.cpp.o.d"
  "CMakeFiles/ldmo_litho.dir/eig.cpp.o"
  "CMakeFiles/ldmo_litho.dir/eig.cpp.o.d"
  "CMakeFiles/ldmo_litho.dir/kernels.cpp.o"
  "CMakeFiles/ldmo_litho.dir/kernels.cpp.o.d"
  "CMakeFiles/ldmo_litho.dir/meef.cpp.o"
  "CMakeFiles/ldmo_litho.dir/meef.cpp.o.d"
  "CMakeFiles/ldmo_litho.dir/metrics.cpp.o"
  "CMakeFiles/ldmo_litho.dir/metrics.cpp.o.d"
  "CMakeFiles/ldmo_litho.dir/process_window.cpp.o"
  "CMakeFiles/ldmo_litho.dir/process_window.cpp.o.d"
  "CMakeFiles/ldmo_litho.dir/resist.cpp.o"
  "CMakeFiles/ldmo_litho.dir/resist.cpp.o.d"
  "CMakeFiles/ldmo_litho.dir/simulator.cpp.o"
  "CMakeFiles/ldmo_litho.dir/simulator.cpp.o.d"
  "CMakeFiles/ldmo_litho.dir/tcc.cpp.o"
  "CMakeFiles/ldmo_litho.dir/tcc.cpp.o.d"
  "libldmo_litho.a"
  "libldmo_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
