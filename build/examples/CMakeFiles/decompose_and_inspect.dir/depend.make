# Empty dependencies file for decompose_and_inspect.
# This may be replaced when dependencies are built.
