file(REMOVE_RECURSE
  "CMakeFiles/decompose_and_inspect.dir/decompose_and_inspect.cpp.o"
  "CMakeFiles/decompose_and_inspect.dir/decompose_and_inspect.cpp.o.d"
  "decompose_and_inspect"
  "decompose_and_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decompose_and_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
