file(REMOVE_RECURSE
  "CMakeFiles/triple_patterning.dir/triple_patterning.cpp.o"
  "CMakeFiles/triple_patterning.dir/triple_patterning.cpp.o.d"
  "triple_patterning"
  "triple_patterning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triple_patterning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
