# Empty dependencies file for triple_patterning.
# This may be replaced when dependencies are built.
