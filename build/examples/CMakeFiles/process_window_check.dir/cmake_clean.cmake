file(REMOVE_RECURSE
  "CMakeFiles/process_window_check.dir/process_window_check.cpp.o"
  "CMakeFiles/process_window_check.dir/process_window_check.cpp.o.d"
  "process_window_check"
  "process_window_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_window_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
