# Empty dependencies file for process_window_check.
# This may be replaced when dependencies are built.
