file(REMOVE_RECURSE
  "CMakeFiles/compare_flows.dir/compare_flows.cpp.o"
  "CMakeFiles/compare_flows.dir/compare_flows.cpp.o.d"
  "compare_flows"
  "compare_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
