# Empty dependencies file for compare_flows.
# This may be replaced when dependencies are built.
