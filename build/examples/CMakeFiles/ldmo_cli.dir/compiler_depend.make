# Empty compiler generated dependencies file for ldmo_cli.
# This may be replaced when dependencies are built.
