file(REMOVE_RECURSE
  "CMakeFiles/ldmo_cli.dir/ldmo_cli.cpp.o"
  "CMakeFiles/ldmo_cli.dir/ldmo_cli.cpp.o.d"
  "ldmo_cli"
  "ldmo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
