# Empty dependencies file for bench_micro_litho.
# This may be replaced when dependencies are built.
