file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_litho.dir/bench_micro_litho.cpp.o"
  "CMakeFiles/bench_micro_litho.dir/bench_micro_litho.cpp.o.d"
  "bench_micro_litho"
  "bench_micro_litho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_litho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
