file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sampling.dir/bench_micro_sampling.cpp.o"
  "CMakeFiles/bench_micro_sampling.dir/bench_micro_sampling.cpp.o.d"
  "bench_micro_sampling"
  "bench_micro_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
