file(REMOVE_RECURSE
  "libldmo_bench_util.a"
)
