
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_util.cpp" "bench/CMakeFiles/ldmo_bench_util.dir/bench_util.cpp.o" "gcc" "bench/CMakeFiles/ldmo_bench_util.dir/bench_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ldmo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/ldmo_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/ldmo_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/mpl/CMakeFiles/ldmo_mpl.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ldmo_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/ldmo_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/opc/CMakeFiles/ldmo_opc.dir/DependInfo.cmake"
  "/root/repo/build/src/litho/CMakeFiles/ldmo_litho.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ldmo_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/ldmo_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/ldmo_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ldmo_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldmo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
