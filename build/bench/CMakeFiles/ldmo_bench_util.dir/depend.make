# Empty dependencies file for ldmo_bench_util.
# This may be replaced when dependencies are built.
