file(REMOVE_RECURSE
  "CMakeFiles/ldmo_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/ldmo_bench_util.dir/bench_util.cpp.o.d"
  "libldmo_bench_util.a"
  "libldmo_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldmo_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
