// Microbenchmarks of the lithography/ILT hot path: 2-D FFT, SOCS forward
// pass, full ILT gradient step, EPE metrology.
#include <benchmark/benchmark.h>

#include "alloc_probe.h"
#include "kernels/kernels.h"
#include "runtime/thread_pool.h"
#include "common/rng.h"
#include "fft/fft.h"
#include "layout/generator.h"
#include "layout/raster.h"
#include "litho/metrics.h"
#include "litho/simulator.h"
#include "opc/ilt.h"

namespace {

using namespace ldmo;

litho::LithoConfig litho_config(int grid) {
  litho::LithoConfig cfg;
  cfg.grid_size = grid;
  cfg.pixel_nm = 1024.0 / grid;
  return cfg;
}

void BM_Fft2D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  fft::Fft2DPlan plan(n, n);
  Rng rng(1);
  fft::GridC grid(n, n);
  for (std::size_t i = 0; i < grid.size(); ++i)
    grid[i] = {rng.normal(), rng.normal()};
  bench_alloc::PoolProbe probe;
  for (auto _ : state) {
    plan.forward(grid);
    plan.inverse(grid);
    benchmark::DoNotOptimize(grid.data());
  }
  probe.finish(state);
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Fft2D)->Arg(64)->Arg(128)->Arg(256);

void BM_AerialForward(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const litho::LithoSimulator sim(litho_config(n));
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(1);
  const GridF mask = layout::rasterize_target(l, n);
  // Warm out-param, as the simulator's expose path holds one.
  GridF intensity;
  sim.aerial().intensity(mask, intensity);
  bench_alloc::PoolProbe probe;
  for (auto _ : state) {
    sim.aerial().intensity(mask, intensity);
    benchmark::DoNotOptimize(intensity.data());
  }
  probe.finish(state);
}
BENCHMARK(BM_AerialForward)->Arg(64)->Arg(128);

void BM_IltStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const litho::LithoSimulator sim(litho_config(n));
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(2);
  layout::Assignment assignment(
      static_cast<std::size_t>(l.pattern_count()), 0);
  for (int i = 0; i < l.pattern_count(); ++i)
    assignment[static_cast<std::size_t>(i)] = i % 2;
  opc::IltEngine engine(sim);
  const GridF target = layout::rasterize_target(l, n);
  opc::IltState ilt_state = engine.init_state(l, assignment);
  // One scratch across iterations — exactly how optimize() runs the loop;
  // after the first iteration warms it, steps are allocation-free.
  opc::IltScratch scratch;
  engine.step(ilt_state, target, scratch);
  bench_alloc::PoolProbe probe;
  for (auto _ : state) {
    engine.step(ilt_state, target, scratch);
    benchmark::DoNotOptimize(ilt_state.p1.data());
  }
  probe.finish(state);
}
BENCHMARK(BM_IltStep)->Arg(64)->Arg(128);

void BM_EpeMeasurement(benchmark::State& state) {
  const int n = 128;
  const litho::LithoSimulator sim(litho_config(n));
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(3);
  layout::Assignment assignment(
      static_cast<std::size_t>(l.pattern_count()), 0);
  const GridF response = sim.print_decomposition(l, assignment);
  const layout::RasterTransform transform = sim.transform_for(l);
  for (auto _ : state) {
    const litho::EpeReport report =
        litho::measure_epe(response, l, transform, sim.config());
    benchmark::DoNotOptimize(report.violation_count);
  }
}
BENCHMARK(BM_EpeMeasurement);

void BM_KernelConstruction(benchmark::State& state) {
  // Full TCC + Jacobi + calibration (one-time setup cost per config).
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const litho::SocsKernels kernels =
        litho::build_socs_kernels(litho_config(n));
    benchmark::DoNotOptimize(kernels.weights.data());
  }
}
BENCHMARK(BM_KernelConstruction)->Arg(64)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() equivalent, with our --threads flag stripped out of
// argv before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  ldmo::runtime::apply_threads_flag(argc, argv);
  ldmo::kernels::apply_backend_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
