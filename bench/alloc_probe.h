// Allocation probe for the micro benches: replaces the global operator
// new/delete pair with counting wrappers so a benchmark can report
// allocations-per-iteration alongside wall time. Include from exactly one
// translation unit per binary (each micro bench is a single TU).
//
// The probe counts every heap allocation in the process, including
// google-benchmark's own bookkeeping, so measure deltas around the timed
// loop and expect a small constant floor rather than a hard zero.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/metrics.h"

namespace bench_alloc {

inline std::atomic<unsigned long long>& allocation_count() {
  static std::atomic<unsigned long long> count{0};
  return count;
}

inline unsigned long long allocations() {
  return allocation_count().load(std::memory_order_relaxed);
}

/// Snapshot-and-report helper: construct before the timed loop, call
/// finish() after it to attach allocations-per-iteration and workspace
/// pool hit/miss counters to the benchmark state. The workspace counters
/// read 0 when no pooled path ran.
struct PoolProbe {
  unsigned long long allocs0 = allocations();
  long long hits0 = ldmo::obs::counter("workspace.hits").value();
  long long misses0 = ldmo::obs::counter("workspace.misses").value();

  void finish(benchmark::State& state) {
    const double iters = static_cast<double>(state.iterations());
    const double allocs =
        static_cast<double>(allocations() - allocs0);
    const double hits = static_cast<double>(
        ldmo::obs::counter("workspace.hits").value() - hits0);
    const double misses = static_cast<double>(
        ldmo::obs::counter("workspace.misses").value() - misses0);
    state.counters["allocs_per_iter"] = iters > 0.0 ? allocs / iters : 0.0;
    state.counters["pool_checkouts_per_iter"] =
        iters > 0.0 ? (hits + misses) / iters : 0.0;
    state.counters["pool_hit_rate"] =
        (hits + misses) > 0.0 ? hits / (hits + misses) : 0.0;
  }
};

}  // namespace bench_alloc

void* operator new(std::size_t size) {
  bench_alloc::allocation_count().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  bench_alloc::allocation_count().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
