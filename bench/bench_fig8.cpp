// Reproduces Fig. 8: our sampling strategy vs random sampling.
//
// Two predictors are trained with identical budgets — one with the paper's
// layout sampling (SIFT + k-medoids) and decomposition sampling
// (MST + 3-wise), one with uniform random layouts and random
// decompositions. Both drive the full LDMO flow over a held-out layout
// set; the paper reports the random-sampling flow accumulating about twice
// the EPE violations at comparable runtime.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/log.h"
#include "core/ldmo_flow.h"
#include "kernels/kernels.h"
#include "runtime/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ldmo;
  runtime::apply_threads_flag(argc, argv);
  kernels::apply_backend_flag(argc, argv);
  set_log_level(LogLevel::Warn);
  const litho::LithoSimulator simulator(bench::experiment_litho());

  bench::PredictorOptions ours_opt;  // defaults: both strategies ours
  ours_opt.cache_tag = "ours";
  bench::PredictorOptions random_opt;
  random_opt.our_layout_sampling = false;
  random_opt.our_decomp_sampling = false;
  // Budget parity: the MST+3-wise sampler yields ~5 decompositions per
  // layout (covering arrays are small by design), so the random strategy
  // gets the same labeling budget rather than its configured maximum.
  random_opt.decomps_per_layout = 5;
  random_opt.cache_tag = "random";

  bench::PredictorBundle ours_bundle =
      bench::get_or_train_predictor(simulator, ours_opt);
  bench::PredictorBundle random_bundle =
      bench::get_or_train_predictor(simulator, random_opt);

  core::LdmoConfig cfg;
  cfg.ilt = bench::paper_ilt();
  core::LdmoFlow ours_flow(simulator, *ours_bundle.predictor, cfg);
  core::LdmoFlow random_flow(simulator, *random_bundle.predictor, cfg);

  int ours_epe = 0, random_epe = 0;
  double ours_time = 0.0, random_time = 0.0;
  const std::vector<layout::Layout> layouts = bench::table1_layouts();
  for (const layout::Layout& l : layouts) {
    const core::LdmoResult a = ours_flow.run(l);
    const core::LdmoResult b = random_flow.run(l);
    ours_epe += a.ilt.report.epe.violation_count;
    random_epe += b.ilt.report.epe.violation_count;
    ours_time += a.total_seconds;
    random_time += b.total_seconds;
  }

  std::printf("Fig. 8 reproduction: sampling strategy comparison over %zu "
              "layouts\n",
              layouts.size());
  std::printf("%-18s | %10s | %10s\n", "strategy", "EPE# total",
              "time (s)");
  std::printf("-------------------+------------+-----------\n");
  std::printf("%-18s | %10d | %10.1f\n", "Ours", ours_epe, ours_time);
  std::printf("%-18s | %10d | %10.1f\n", "Random sampling", random_epe,
              random_time);
  const double epe_ratio =
      static_cast<double>(random_epe) / std::max(1, ours_epe);
  std::printf("\nEPE ratio (random / ours) = %.2f  (paper: ~2.0)\n",
              epe_ratio);
  std::printf("Runtime ratio (random / ours) = %.2f  (paper: ~1.0)\n",
              random_time / std::max(1e-9, ours_time));
  std::printf("SHAPE random_epe_worse=%s\n",
              random_epe > ours_epe ? "yes" : "no");
  return 0;
}
