// Microbenchmarks of the sampling substrates: covering arrays, SIFT,
// layout similarity, k-medoids and decomposition generation.
#include <benchmark/benchmark.h>

#include "kernels/kernels.h"
#include "runtime/thread_pool.h"
#include "coverage/covering_array.h"
#include "layout/generator.h"
#include "layout/raster.h"
#include "mpl/decomposition_generator.h"
#include "vision/kmedoids.h"
#include "vision/sift.h"
#include "vision/similarity.h"

namespace {

using namespace ldmo;

void BM_CoveringArray(benchmark::State& state) {
  const int factors = static_cast<int>(state.range(0));
  const int strength = static_cast<int>(state.range(1));
  for (auto _ : state) {
    const coverage::CoveringArray array =
        coverage::generate_covering_array(factors, strength);
    benchmark::DoNotOptimize(array.rows.size());
  }
}
BENCHMARK(BM_CoveringArray)
    ->Args({8, 2})
    ->Args({16, 2})
    ->Args({8, 3})
    ->Args({12, 3});

void BM_SiftDetect(benchmark::State& state) {
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(5);
  const GridF raster = layout::rasterize_target(l, 128);
  for (auto _ : state) {
    const auto features = vision::detect_sift(raster);
    benchmark::DoNotOptimize(features.size());
  }
}
BENCHMARK(BM_SiftDetect)->Unit(benchmark::kMillisecond);

void BM_LayoutSimilarity(benchmark::State& state) {
  layout::LayoutGenerator gen;
  const auto fa =
      vision::detect_sift(layout::rasterize_target(gen.generate(6), 128));
  const auto fb =
      vision::detect_sift(layout::rasterize_target(gen.generate(7), 128));
  for (auto _ : state) {
    const double d = vision::layout_similarity(fa, fb);
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_LayoutSimilarity);

void BM_KMedoids(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(8);
  std::vector<double> d(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double v = rng.uniform(0.1, 3.0);
      d[static_cast<std::size_t>(i) * n + j] = v;
      d[static_cast<std::size_t>(j) * n + i] = v;
    }
  vision::KMedoidsConfig cfg;
  cfg.clusters = 5;
  for (auto _ : state) {
    const auto result = vision::kmedoids(d, n, cfg);
    benchmark::DoNotOptimize(result.sld);
  }
}
BENCHMARK(BM_KMedoids)->Arg(30)->Arg(60);

void BM_DecompositionGeneration(benchmark::State& state) {
  layout::LayoutGenerator gen;
  const layout::Layout l = gen.generate(9);
  for (auto _ : state) {
    const mpl::GenerationResult result = mpl::generate_decompositions(l);
    benchmark::DoNotOptimize(result.candidates.size());
  }
}
BENCHMARK(BM_DecompositionGeneration);

}  // namespace

// BENCHMARK_MAIN() equivalent, with our --threads flag stripped out of
// argv before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  ldmo::runtime::apply_threads_flag(argc, argv);
  ldmo::kernels::apply_backend_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
