// Reproduces Fig. 1(b) and Fig. 1(c):
//  (b) EPE-violation convergence trajectories of three different
//      decompositions of the same layout through full ILT — demonstrating
//      that intermediate printability mispredicts final printability (the
//      curves cross), which is why greedy pruning on intermediate results
//      is sub-optimal.
//  (c) runtime breakdown of the unified greedy flow [10] into
//      decomposition selection (DS) and mask optimization (MO) — DS is
//      reported at 59.1% in the paper.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/log.h"
#include "core/baseline_flows.h"
#include "core/predictor.h"
#include "kernels/kernels.h"
#include "runtime/thread_pool.h"
#include "sampling/decomposition_sampling.h"

int main(int argc, char** argv) {
  using namespace ldmo;
  runtime::apply_threads_flag(argc, argv);
  kernels::apply_backend_flag(argc, argv);
  set_log_level(LogLevel::Warn);
  bench::BenchReport obs_report("bench_fig1");
  obs_report.meta("experiment",
                  "Fig. 1(b) EPE trajectories; Fig. 1(c) DS/MO split");
  const litho::LithoSimulator simulator(bench::experiment_litho());
  opc::IltEngine engine(simulator, bench::paper_ilt());

  // One layout, three decompositions spread across the quality range
  // (best / middle / worst by raw-print score, drawn from the FULL
  // decomposition space — Fig. 1(a) deliberately shows decompositions of
  // very different final quality, so conflict-violating ones must be
  // eligible here, unlike in the candidate generator).
  layout::LayoutGenerator gen = bench::experiment_generator();
  const layout::Layout layout = gen.generate(9100);
  const std::vector<layout::Assignment> candidates =
      sampling::random_decompositions(layout, 24, 9100);
  core::RawPrintPredictor ranker(simulator);
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t i = 0; i < candidates.size(); ++i)
    ranked.push_back({ranker.score(layout, candidates[i]), i});
  std::sort(ranked.begin(), ranked.end());
  const std::vector<std::size_t> picks = {
      ranked.front().second, ranked[ranked.size() / 2].second,
      ranked.back().second};

  std::printf("Fig. 1(b) reproduction: EPE convergence of 3 decompositions "
              "(layout %s, %d sampled from the full space)\n",
              layout.name.c_str(), static_cast<int>(candidates.size()));
  std::printf("%-10s", "iteration");
  for (std::size_t d = 0; d < picks.size(); ++d)
    std::printf(" DECMP#%zu", d + 1);
  std::printf("\n");

  std::vector<opc::IltResult> runs;
  for (std::size_t pick : picks)
    runs.push_back(engine.optimize(layout, candidates[pick],
                                   /*abort_on_violation=*/false,
                                   /*record_trajectory=*/true));
  for (std::size_t it = 0; it < runs[0].trajectory.size(); ++it) {
    std::printf("%-10d", runs[0].trajectory[it].iteration);
    for (const opc::IltResult& run : runs)
      std::printf(" %7d", run.trajectory[it].epe_violations);
    std::printf("\n");
  }

  // Crossing detection: does any intermediate EPE ranking differ from the
  // final ranking? (The paper's argument for not pruning early: a greedy
  // pruner acting on any such iteration would discard the eventual winner.)
  auto rank_at = [&](std::size_t it) {
    std::vector<std::pair<int, std::size_t>> r;
    for (std::size_t d = 0; d < runs.size(); ++d)
      r.push_back({runs[d].trajectory[it].epe_violations, d});
    std::sort(r.begin(), r.end());
    std::vector<std::size_t> order;
    for (const auto& [epe, d] : r) order.push_back(d);
    return order;
  };
  const auto final_rank = rank_at(runs[0].trajectory.size() - 1);
  bool crossing = false;
  for (std::size_t it = 0; it + 1 < runs[0].trajectory.size(); ++it)
    if (rank_at(it) != final_rank) crossing = true;
  std::printf("SHAPE trajectories_cross=%s\n", crossing ? "yes" : "no");

  // --- Fig. 1(c): DS vs MO runtime split of the unified greedy flow.
  core::UnifiedGreedyConfig cfg;
  cfg.ilt = bench::paper_ilt();
  core::UnifiedGreedyFlow unified(simulator, cfg);
  const core::BaselineFlowResult result = unified.run(layout);
  const double ds = result.timing.get("ds");
  const double mo = result.timing.get("mo");
  const double ds_pct = 100.0 * ds / (ds + mo);
  std::printf("\nFig. 1(c) reproduction: unified-flow runtime breakdown\n");
  std::printf("DS %.1f%%  MO %.1f%%  (paper: DS 59.1%%, MO 40.9%%)\n",
              ds_pct, 100.0 - ds_pct);
  std::printf("SHAPE ds_dominates=%s\n", ds_pct > 50.0 ? "yes" : "no");
  return 0;
}
