// Microbenchmarks of the CNN substrate: GEMM, conv forward/backward,
// ResNet regressor inference and training step.
#include <benchmark/benchmark.h>

#include "alloc_probe.h"
#include "kernels/kernels.h"
#include "runtime/thread_pool.h"
#include "common/rng.h"
#include "nn/conv.h"
#include "nn/gemm.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/resnet.h"

namespace {

using namespace ldmo;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(a.size()), c(a.size());
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2d conv(16, 16, 3, 1, 1, false, rng);
  nn::Tensor x = nn::Tensor::randn({1, 16, 32, 32}, rng, 1.0f);
  bench_alloc::PoolProbe probe;
  for (auto _ : state) {
    nn::Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
  probe.finish(state);
}
BENCHMARK(BM_ConvForward);

void BM_ConvBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(16, 16, 3, 1, 1, false, rng);
  nn::Tensor x = nn::Tensor::randn({1, 16, 32, 32}, rng, 1.0f);
  nn::Tensor y = conv.forward(x, true);
  bench_alloc::PoolProbe probe;
  for (auto _ : state) {
    nn::Tensor g = conv.backward(y);
    benchmark::DoNotOptimize(g.data());
  }
  probe.finish(state);
}
BENCHMARK(BM_ConvBackward);

void BM_ResNetInference(benchmark::State& state) {
  // The predictor cost that replaces a full ILT run in the LDMO flow.
  nn::ResNetConfig cfg;
  cfg.input_size = 64;
  cfg.width_multiplier = 0.25;
  nn::ResNetRegressor net(cfg);
  Rng rng(4);
  nn::Tensor image = nn::Tensor::randn({1, 64, 64}, rng, 0.3f);
  bench_alloc::PoolProbe probe;
  for (auto _ : state) {
    const double score = net.predict_one(image);
    benchmark::DoNotOptimize(score);
  }
  probe.finish(state);
  state.SetLabel("slim-resnet18@64px");
}
BENCHMARK(BM_ResNetInference)->Unit(benchmark::kMillisecond);

void BM_ResNetTrainStep(benchmark::State& state) {
  nn::ResNetConfig cfg;
  cfg.input_size = 64;
  cfg.width_multiplier = 0.25;
  nn::ResNetRegressor net(cfg);
  nn::Adam adam(net.parameters());
  Rng rng(5);
  nn::Tensor batch = nn::Tensor::randn({4, 1, 64, 64}, rng, 0.3f);
  nn::Tensor targets({4, 1});
  for (auto _ : state) {
    adam.zero_grad();
    const nn::Tensor pred = net.forward(batch, true);
    const nn::LossResult loss = nn::mae_loss(pred, targets);
    net.backward(loss.grad);
    adam.step();
    benchmark::DoNotOptimize(loss.value);
  }
  state.SetLabel("batch=4");
}
BENCHMARK(BM_ResNetTrainStep)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN() equivalent, with our --threads flag stripped out of
// argv before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  ldmo::runtime::apply_threads_flag(argc, argv);
  ldmo::kernels::apply_backend_flag(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
