// Warm-start acceptance experiment (ROADMAP item 2): harvest a corpus by
// replaying the flow, train the MaskNet warm start on it, then run a
// held-out set of clips through two FlowEngine sessions — the paper's
// cold +/- initial_p init at the full 50-iteration ILT budget, and the
// learned seed at --warm-iters (default 25, i.e. half). The claim under
// test: equal-or-better final score at >= 2x fewer ILT iterations.
//
// Uses the quick 64-pixel lithography model (the CLI's model, not the
// 128-pixel experiment model): the acceptance criterion is a ratio of
// iteration counts at matched quality, which the quick model measures in
// minutes instead of hours. Harvested corpora are cached on disk
// (./ldmo_cache_warmstart.corpus) like the predictor weights caches.
//
// Writes warmstart_before.txt (cold session) and warmstart_after.txt
// (seeded session + verdict) into --report-dir (default ".").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/log.h"
#include "core/flow_engine.h"
#include "kernels/kernels.h"
#include "layout/generator.h"
#include "runtime/thread_pool.h"
#include "warmstart/corpus.h"
#include "warmstart/harvest.h"
#include "warmstart/train.h"
#include "warmstart/warm_start.h"

namespace {

using namespace ldmo;

const char* flag_value(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[i + 1];
  return fallback;
}

litho::LithoConfig quick_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 64;
  cfg.pixel_nm = 16.0;
  return cfg;
}

struct EvalRow {
  std::uint64_t seed = 0;
  double score = 0.0;
  double l2 = 0.0;
  int epe = 0;
  int iterations = 0;
  double seconds = 0.0;
  bool warm_started = false;
};

EvalRow eval_one(core::FlowEngine& engine, const layout::Layout& layout,
                 std::uint64_t seed) {
  const core::LdmoResult r = engine.run(layout);
  if (r.failed) {
    std::fprintf(stderr, "bench_warmstart: run failed for seed %llu: %s\n",
                 static_cast<unsigned long long>(seed),
                 r.error.message.c_str());
    std::exit(1);
  }
  EvalRow row;
  row.seed = seed;
  row.score = r.ilt.report.score();
  row.l2 = r.ilt.report.l2;
  row.epe = r.ilt.report.epe.violation_count;
  row.iterations = r.ilt.iterations_run;
  row.seconds = r.total_seconds;
  row.warm_started = r.warm_started;
  return row;
}

void write_table(std::FILE* f, const char* title,
                 const std::vector<EvalRow>& rows, bool warm_column) {
  std::fprintf(f, "%s\n", title);
  std::fprintf(f, "%-8s | %9s | %8s | %4s | %5s | %7s%s\n", "seed", "score",
               "L2", "EPE#", "iters", "seconds",
               warm_column ? " | seeded" : "");
  std::fprintf(f, "---------+-----------+----------+------+-------+--------%s\n",
               warm_column ? "+-------" : "");
  double score_sum = 0.0;
  long long iter_sum = 0;
  double sec_sum = 0.0;
  for (const EvalRow& row : rows) {
    std::fprintf(f, "%-8llu | %9.2f | %8.2f | %4d | %5d | %7.2f%s%s\n",
                 static_cast<unsigned long long>(row.seed), row.score, row.l2,
                 row.epe, row.iterations, row.seconds,
                 warm_column ? " | " : "",
                 warm_column ? (row.warm_started ? "yes" : "NO") : "");
    score_sum += row.score;
    iter_sum += row.iterations;
    sec_sum += row.seconds;
  }
  const double n = static_cast<double>(rows.size());
  std::fprintf(f, "mean score %.2f, total ILT iterations %lld, "
               "total %.2fs over %zu held-out clips\n",
               score_sum / n, iter_sum, sec_sum, rows.size());
}

}  // namespace

int main(int argc, char** argv) {
  runtime::apply_threads_flag(argc, argv);
  kernels::apply_backend_flag(argc, argv);
  set_log_level(LogLevel::Warn);

  const int clips = std::atoi(flag_value(argc, argv, "--clips", "48"));
  const int epochs = std::atoi(flag_value(argc, argv, "--epochs", "24"));
  const int width = std::atoi(flag_value(argc, argv, "--width", "8"));
  const int holdout = std::atoi(flag_value(argc, argv, "--holdout", "8"));
  const int warm_iters =
      std::atoi(flag_value(argc, argv, "--warm-iters", "25"));
  const std::string report_dir = flag_value(argc, argv, "--report-dir", ".");
  const std::string corpus_path = "ldmo_cache_warmstart.corpus";

  core::FlowEngineConfig cfg;
  cfg.litho = quick_litho();

  // --- harvest (disk-cached) ---
  std::size_t have = 0;
  try {
    have = warmstart::corpus_record_count(corpus_path);
  } catch (const std::exception&) {
    have = 0;  // absent or stale-format cache: re-harvest
  }
  if (have < static_cast<std::size_t>(clips)) {
    std::printf("harvesting %d clips into %s (cached: %zu)...\n", clips,
                corpus_path.c_str(), have);
    core::FlowEngine harvest_engine(cfg);
    warmstart::HarvestConfig hcfg;
    hcfg.clip_count = clips - static_cast<int>(have);
    hcfg.seed0 = 900 + have;
    const warmstart::HarvestStats stats =
        warmstart::harvest_corpus(harvest_engine, hcfg, corpus_path);
    std::printf("harvest: %d attempted, %d harvested, %d failed\n",
                stats.attempted, stats.harvested, stats.failed);
  } else {
    std::printf("corpus cache hit: %zu records in %s\n", have,
                corpus_path.c_str());
  }

  // --- train ---
  const warmstart::Corpus corpus = warmstart::read_corpus(corpus_path);
  warmstart::MaskNetConfig net_cfg;
  net_cfg.grid_size = cfg.litho.grid_size;
  net_cfg.base_width = width;
  auto warm = std::make_shared<warmstart::MaskWarmStart>(net_cfg);
  warmstart::WarmTrainConfig tcfg;
  tcfg.epochs = epochs;
  std::printf("training MaskNet (width %d, %zu parameters) on %zu records "
              "for %d epochs...\n",
              width, warm->net().parameter_count(), corpus.records.size(),
              epochs);
  const std::vector<warmstart::WarmEpochStats> curve = warmstart::train_masknet(
      warm->net(), corpus, tcfg, [](const warmstart::WarmEpochStats& e) {
        std::printf("  epoch %2d  mask MSE %.6f\n", e.epoch, e.mean_loss);
      });
  warm->refresh_version();
  const double cold_mse = warmstart::cold_init_loss(corpus, tcfg.theta_m);
  std::printf("train-set mask MSE: learned %.6f vs cold init %.6f\n",
              curve.back().mean_loss, cold_mse);

  // --- held-out evaluation: cold 50-iteration vs seeded warm_iters ---
  layout::LayoutGenerator generator;
  std::vector<layout::Layout> layouts;
  std::vector<std::uint64_t> seeds;
  for (int k = 0; k < holdout; ++k) {
    seeds.push_back(5000 + static_cast<std::uint64_t>(k));
    layouts.push_back(generator.generate(seeds.back()));
  }

  core::FlowEngine cold_engine(cfg);
  cold_engine.warmup();
  std::vector<EvalRow> cold_rows;
  for (int k = 0; k < holdout; ++k)
    cold_rows.push_back(eval_one(cold_engine, layouts[k], seeds[k]));

  core::FlowEngineConfig warm_cfg = cfg;
  warm_cfg.flow.warm_start.enabled = true;
  warm_cfg.flow.warm_start.max_iterations = warm_iters;
  core::FlowEngine warm_engine(warm_cfg);
  warm_engine.set_warm_start(warm);
  warm_engine.warmup();
  std::vector<EvalRow> warm_rows;
  for (int k = 0; k < holdout; ++k)
    warm_rows.push_back(eval_one(warm_engine, layouts[k], seeds[k]));

  // --- reports + verdict ---
  const std::string before_path = report_dir + "/warmstart_before.txt";
  const std::string after_path = report_dir + "/warmstart_after.txt";
  std::FILE* before = std::fopen(before_path.c_str(), "w");
  std::FILE* after = std::fopen(after_path.c_str(), "w");
  if (!before || !after) {
    std::fprintf(stderr, "bench_warmstart: cannot write reports under %s\n",
                 report_dir.c_str());
    return 1;
  }
  std::fprintf(before,
               "Cold baseline: paper +/- initial_p init, %d-iteration ILT "
               "budget\n(held-out seeds disjoint from the %zu-record "
               "training corpus)\n\n",
               cfg.flow.ilt.max_iterations, corpus.records.size());
  write_table(before, "per-clip results (cold)", cold_rows, false);

  long long cold_iters = 0, warm_iters_total = 0;
  double cold_score = 0.0, warm_score = 0.0;
  bool all_seeded = true;
  for (int k = 0; k < holdout; ++k) {
    cold_iters += cold_rows[static_cast<std::size_t>(k)].iterations;
    warm_iters_total += warm_rows[static_cast<std::size_t>(k)].iterations;
    cold_score += cold_rows[static_cast<std::size_t>(k)].score;
    warm_score += warm_rows[static_cast<std::size_t>(k)].score;
    all_seeded = all_seeded && warm_rows[static_cast<std::size_t>(k)].warm_started;
  }
  const double iter_ratio = static_cast<double>(cold_iters) /
                            static_cast<double>(warm_iters_total);
  std::fprintf(after,
               "Learned warm start: MaskNet seed (width %d, trained %d "
               "epochs on %zu clips), %d-iteration ILT budget\n\n",
               width, epochs, corpus.records.size(), warm_iters);
  write_table(after, "per-clip results (seeded)", warm_rows, true);
  std::fprintf(after,
               "\nverdict vs cold baseline:\n"
               "  ILT iterations: %lld -> %lld (%.2fx fewer; target >= 2x)\n"
               "  mean score:     %.2f -> %.2f (%s; target equal-or-better)\n"
               "  every winning attempt seeded: %s\n"
               "  ACCEPTANCE %s\n",
               cold_iters, warm_iters_total, iter_ratio,
               cold_score / holdout, warm_score / holdout,
               warm_score <= cold_score ? "equal-or-better" : "WORSE",
               all_seeded ? "yes" : "NO",
               (iter_ratio >= 2.0 && warm_score <= cold_score) ? "PASS"
                                                               : "FAIL");
  std::fclose(before);
  std::fclose(after);

  std::printf("\ncold:   %lld ILT iterations, mean score %.2f\n", cold_iters,
              cold_score / holdout);
  std::printf("seeded: %lld ILT iterations, mean score %.2f (%.2fx fewer "
              "iterations)\n",
              warm_iters_total, warm_score / holdout, iter_ratio);
  std::printf("wrote %s and %s\n", before_path.c_str(), after_path.c_str());
  const bool pass = iter_ratio >= 2.0 && warm_score <= cold_score;
  std::printf("SHAPE warmstart_acceptance=%s\n", pass ? "pass" : "FAIL");
  return pass ? 0 : 1;
}
