#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/log.h"
#include "common/timer.h"
#include "nn/serialize.h"
#include "obs/report.h"
#include "nn/trainer.h"
#include "runtime/parallel_for.h"
#include "sampling/decomposition_sampling.h"
#include "sampling/layout_sampling.h"
#include "sampling/training_set.h"

namespace ldmo::bench {

litho::LithoConfig experiment_litho() {
  litho::LithoConfig cfg;  // defaults are already the experiment scale
  return cfg;
}

opc::IltConfig paper_ilt() {
  // Library defaults: 50-iteration annealed schedule (our substrate's
  // quality plateau; the paper's engine used 29) with the paper's
  // check-every-3-iterations violation cadence.
  return opc::IltConfig{};
}

layout::LayoutGenerator experiment_generator() {
  return layout::LayoutGenerator{};
}

std::vector<layout::Layout> table1_layouts() {
  // Seeds 9000+: disjoint from the training corpus (seeds 100..).
  layout::LayoutGenerator gen = experiment_generator();
  std::vector<layout::Layout> layouts;
  for (int i = 0; i < 13; ++i) {
    layouts.push_back(gen.generate(9000 + static_cast<std::uint64_t>(i)));
    layouts.back().name = "T" + std::to_string(i + 1);
  }
  return layouts;
}

namespace {

nn::ResNetConfig predictor_network_config() {
  nn::ResNetConfig cfg;
  cfg.input_size = kPredictorImageSize;
  cfg.width_multiplier = 0.25;
  return cfg;
}

std::string cache_path(const PredictorOptions& options) {
  return "ldmo_cache_predictor_" + options.cache_tag + ".weights";
}

}  // namespace

PredictorBundle get_or_train_predictor(const litho::LithoSimulator& simulator,
                                       const PredictorOptions& options) {
  PredictorBundle bundle;
  bundle.predictor = std::make_unique<core::CnnPredictor>(
      std::make_unique<nn::ResNetRegressor>(predictor_network_config()));

  // Fast path: cached weights from a previous bench run.
  const std::string path = cache_path(options);
  {
    std::ifstream probe(path, std::ios::binary);
    if (probe.good()) {
      probe.close();
      bundle.predictor->load(path);
      std::fprintf(stderr, "[bench] predictor '%s' loaded from %s\n",
                   options.cache_tag.c_str(), path.c_str());
      return bundle;
    }
  }

  Timer timer;
  std::fprintf(stderr,
               "[bench] training predictor '%s' (layout sampling: %s, "
               "decomposition sampling: %s)...\n",
               options.cache_tag.c_str(),
               options.our_layout_sampling ? "SIFT+k-medoids" : "random",
               options.our_decomp_sampling ? "MST+3-wise" : "random");

  // Corpus and layout selection.
  layout::LayoutGenerator gen = experiment_generator();
  const std::vector<layout::Layout> corpus =
      gen.generate_corpus(options.corpus_size, 100);
  std::vector<int> selected;
  if (options.our_layout_sampling) {
    sampling::LayoutSamplingConfig lcfg;
    lcfg.clusters = std::max(1, options.target_layouts / 2);
    lcfg.per_cluster = 2;
    selected = sampling::sample_layouts(corpus, lcfg).selected;
  } else {
    selected = sampling::random_layout_indices(options.corpus_size,
                                               options.target_layouts, 17);
  }

  // Decomposition selection per layout: per-layout independent (each
  // random_decompositions call owns its per-index seed), so the selection
  // fills indexed slots in parallel with the lists the serial loop built.
  std::vector<layout::Layout> layouts(selected.size());
  std::vector<std::vector<layout::Assignment>> decompositions(selected.size());
  runtime::parallel_for(selected.size(), [&](std::size_t s) {
    const int idx = selected[s];
    layouts[s] = corpus[static_cast<std::size_t>(idx)];
    if (options.our_decomp_sampling) {
      sampling::DecompositionSamplingConfig dcfg;
      dcfg.max_samples = options.decomps_per_layout;
      decompositions[s] = sampling::sample_decompositions(layouts[s], dcfg);
    } else {
      decompositions[s] = sampling::random_decompositions(
          layouts[s], options.decomps_per_layout,
          400 + static_cast<std::uint64_t>(idx));
    }
  });

  // ILT labeling (reduced iteration count keeps the cost tractable; the
  // z-scored ranking is what matters for training). The anneal factor is
  // raised so the shorter schedule still terminates at the same mask
  // sigmoid steepness as the full-length evaluation ILT.
  opc::IltConfig label_cfg = paper_ilt();
  const double full_terminal = std::pow(label_cfg.theta_m_anneal,
                                        label_cfg.max_iterations);
  label_cfg.max_iterations = options.label_ilt_iterations;
  label_cfg.theta_m_anneal =
      std::pow(full_terminal, 1.0 / options.label_ilt_iterations);
  opc::IltEngine engine(simulator, label_cfg);
  sampling::TrainingSetConfig tcfg;
  tcfg.image_size = kPredictorImageSize;
  tcfg.per_layout_zscore = true;  // selection compares within one layout
  const sampling::TrainingSet set = sampling::build_training_set(
      layouts, decompositions, engine, tcfg, [](int done, int total) {
        if (done % 16 == 0 || done == total)
          std::fprintf(stderr, "[bench]   labeled %d/%d\n", done, total);
      });
  // Physically-exact D4 augmentation (the optics are rotation/mirror
  // invariant): 8x the examples for free.
  const std::vector<nn::Example> examples =
      sampling::augment_with_symmetries(set.examples);
  bundle.training_examples = static_cast<int>(examples.size());

  // CNN training (Adam + MAE, paper Section IV-C).
  nn::TrainerConfig train_cfg;
  train_cfg.epochs = options.train_epochs;
  train_cfg.batch_size = 8;
  train_cfg.adam.learning_rate = 2e-3;
  train_cfg.lr_decay_per_epoch = 0.8;
  const auto history = nn::train_regressor(
      bundle.predictor->network(), examples, train_cfg,
      [](const nn::EpochStats& stats) {
        std::fprintf(stderr, "[bench]   epoch %d MAE %.4f\n", stats.epoch,
                     stats.mean_loss);
      });
  bundle.final_train_mae = history.back().mean_loss;
  bundle.build_seconds = timer.seconds();
  bundle.predictor->save(path);
  std::fprintf(stderr, "[bench] predictor '%s' trained in %.1fs (%d examples), cached to %s\n",
               options.cache_tag.c_str(), bundle.build_seconds,
               bundle.training_examples, path.c_str());
  return bundle;
}

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {
  obs::set_tracing_enabled(true);
  obs::tracer().clear();
  obs::registry().reset();
}

void BenchReport::meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, value);
}

BenchReport::~BenchReport() {
  const std::string path = name_ + "_report.json";
  try {
    runtime::publish_metrics();  // pool gauges into the metrics snapshot
    obs::RunReport report(name_);
    report.meta("threads", std::to_string(runtime::thread_count()));
    for (const auto& [k, v] : meta_) report.meta(k, v);
    report.write(path);
    std::fprintf(stderr, "[bench] wrote run report %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[bench] run report %s failed: %s\n", path.c_str(),
                 e.what());
  }
}

}  // namespace ldmo::bench
