// Serving-layer load experiment: cold vs warm-cache throughput and the
// effect of cross-request inference batching.
//
// Four closed-loop passes over the same request mix (N requests drawn
// round-robin from K unique layouts, C concurrent clients):
//
//   cold          fresh server, caches on, batching on
//   warm          SAME server, second pass — every layout now hits the
//                 result cache (the ISSUE-4 acceptance: warm >= 5x cold)
//   cold-nobatch  fresh server, caches on, batching off (batching delta)
//   cold-nocache  fresh server, caches off (steady-state compute floor)
//
// Then the telemetry-overhead drill (ISSUE-6 acceptance: a 1 Hz /metrics
// scrape loop changes warm throughput by <2%): two fixed-duration warm
// passes against freshly warmed servers — one without an admin endpoint,
// one with the endpoint up and a client scraping /metrics once per second
// — redirect to bench/reports/telemetry_scrape.txt.
//
// Finally the cluster scaling drill (ISSUE-7): cold throughput of a
// loopback cluster behind the consistent-hash router, 1 worker vs 2
// workers over all-distinct layouts. The >=1.25x scaling acceptance only
// gates on machines with >=4 hardware cores — two workers cannot compute
// in parallel on a single-core box, so there the ratio is informational.
//
// Output: one table row per pass (throughput, p50/p95/p99, per-status
// counts, cache hits) on stdout — redirect to bench/reports/serve_*.txt —
// plus bench_serve_report.json with the serve.cache.* / serve.batch.* /
// queue-depth metrics of the final pass.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "kernels/kernels.h"
#include "layout/generator.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/router.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "runtime/thread_pool.h"
#include "serve/admin.h"
#include "serve/server.h"

namespace {

using namespace ldmo;

constexpr int kRequests = 24;
constexpr int kUnique = 6;
constexpr int kClients = 6;
constexpr int kDispatchers = 3;

/// Serving-tier lithography model: 32 px at 32nm covers the generator's
/// 1024nm clip at interactive latency (the experiment-grade 128-px model
/// is for the paper-reproduction benches, not load tests).
litho::LithoConfig serve_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 32;
  cfg.pixel_nm = 32.0;
  return cfg;
}

struct PassStats {
  std::string name;
  double seconds = 0.0;
  double throughput = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
  long long ok = 0, cached = 0;
  long long cache_hits = 0;
};

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::size_t index = static_cast<std::size_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(sorted.size()))));
  return sorted[std::min(index - 1, sorted.size() - 1)];
}

/// One closed-loop pass of the standard request mix against `server`.
PassStats run_pass(serve::Server& server, const std::string& name,
                   const std::vector<layout::Layout>& pool) {
  const long long ok_before =
      server.status_count(serve::ServeStatus::kOk);
  const long long cached_before =
      server.status_count(serve::ServeStatus::kCached);

  std::atomic<int> next{0};
  std::mutex mu;
  std::vector<double> latencies;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= kRequests) return;
        serve::ServeRequest request;
        request.layout = pool[static_cast<std::size_t>(i % kUnique)];
        serve::ServeResponse response =
            server.submit(std::move(request)).response.get();
        if (response.ok()) {
          std::lock_guard<std::mutex> lock(mu);
          latencies.push_back(response.total_seconds);
        }
      }
    });
  for (std::thread& t : clients) t.join();

  PassStats stats;
  stats.name = name;
  stats.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  stats.throughput = static_cast<double>(kRequests) / stats.seconds;
  std::sort(latencies.begin(), latencies.end());
  stats.p50 = percentile(latencies, 0.50);
  stats.p95 = percentile(latencies, 0.95);
  stats.p99 = percentile(latencies, 0.99);
  stats.ok = server.status_count(serve::ServeStatus::kOk) - ok_before;
  stats.cached =
      server.status_count(serve::ServeStatus::kCached) - cached_before;
  return stats;
}

/// Fixed-duration closed-loop pass: kClients threads hammer the (already
/// warmed) server for `seconds`, round-robin over the pool. Returns the
/// completed-request throughput. Used by the telemetry-overhead drill,
/// where a fixed wall-clock budget makes the with/without-scrape passes
/// directly comparable.
double run_timed(serve::Server& server, const std::vector<layout::Layout>& pool,
                 double seconds) {
  std::atomic<long long> completed{0};
  std::atomic<int> next{0};
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds));
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&] {
      while (std::chrono::steady_clock::now() < deadline) {
        const int i = next.fetch_add(1);
        serve::ServeRequest request;
        request.layout = pool[static_cast<std::size_t>(i % kUnique)];
        serve::ServeResponse response =
            server.submit(std::move(request)).response.get();
        if (response.ok()) completed.fetch_add(1);
      }
    });
  for (std::thread& t : clients) t.join();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  return static_cast<double>(completed.load()) / elapsed;
}

serve::ServeConfig make_config(bool cache, bool batch) {
  serve::ServeConfig cfg;
  cfg.engine.litho = serve_litho();
  cfg.dispatchers = kDispatchers;
  cfg.queue_capacity = kRequests;
  cfg.overflow = serve::OverflowPolicy::kBlock;
  cfg.batcher.enabled = batch;
  cfg.result_cache.enabled = cache;
  cfg.score_cache.enabled = cache;
  return cfg;
}

/// Cold throughput of an n-worker loopback cluster behind the
/// consistent-hash router: every request is a distinct layout (seeded from
/// `seed_base`), so nothing hits a result cache and the measurement is the
/// compute path fanned out over the shards. kClients threads each drive
/// their own wire connection to the router.
double cluster_cold_rps(int n_workers, std::uint64_t seed_base) {
  layout::LayoutGenerator generator;
  std::vector<layout::Layout> pool;
  pool.reserve(kRequests);
  for (int k = 0; k < kRequests; ++k)
    pool.push_back(
        generator.generate(seed_base + static_cast<std::uint64_t>(k)));

  std::vector<std::unique_ptr<net::ServeDaemon>> workers;
  net::RouterConfig router_cfg;
  for (int w = 0; w < n_workers; ++w) {
    net::DaemonConfig daemon_cfg;
    daemon_cfg.serve = make_config(/*cache=*/true, /*batch=*/true);
    workers.push_back(std::make_unique<net::ServeDaemon>(daemon_cfg));
    router_cfg.worker_ports.push_back(workers.back()->port());
  }
  net::Router router(router_cfg);

  std::atomic<int> next{0};
  std::atomic<long long> completed{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&] {
      net::ClientConfig client_cfg;
      client_cfg.port = router.port();
      net::Client client(client_cfg);
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= kRequests) return;
        serve::ServeRequest request;
        request.layout = pool[static_cast<std::size_t>(i)];
        if (client.submit(request).ok()) completed.fetch_add(1);
      }
    });
  for (std::thread& t : clients) t.join();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  router.stop();
  for (auto& worker : workers) worker->stop();
  return static_cast<double>(completed.load()) / elapsed;
}

void print_row(const PassStats& s) {
  std::printf("%-13s %8.2f req/s  p50 %7.3fs  p95 %7.3fs  p99 %7.3fs  "
              "ok %3lld  cached %3lld\n",
              s.name.c_str(), s.throughput, s.p50, s.p95, s.p99, s.ok,
              s.cached);
}

}  // namespace

int main(int argc, char** argv) {
  runtime::apply_threads_flag(argc, argv);
  kernels::apply_backend_flag(argc, argv);
  bench::BenchReport report("bench_serve");
  report.meta("requests", std::to_string(kRequests));
  report.meta("unique_layouts", std::to_string(kUnique));
  report.meta("clients", std::to_string(kClients));
  report.meta("dispatchers", std::to_string(kDispatchers));

  layout::LayoutGenerator generator;
  std::vector<layout::Layout> pool;
  pool.reserve(kUnique);
  for (int k = 0; k < kUnique; ++k)
    pool.push_back(generator.generate(9000 + static_cast<std::uint64_t>(k)));

  std::printf("bench_serve: %d requests (%d unique layouts), %d clients, "
              "%d dispatchers\n\n",
              kRequests, kUnique, kClients, kDispatchers);

  std::vector<PassStats> rows;
  {
    // Cold then warm against the SAME server: pass 2 re-requests the same
    // layouts, so the result cache answers everything.
    serve::Server server(make_config(/*cache=*/true, /*batch=*/true));
    rows.push_back(run_pass(server, "cold", pool));
    print_row(rows.back());
    rows.push_back(run_pass(server, "warm", pool));
    rows.back().cache_hits =
        obs::counter("serve.cache.hits").value();
    print_row(rows.back());
    server.shutdown();
  }
  {
    serve::Server server(make_config(/*cache=*/true, /*batch=*/false));
    rows.push_back(run_pass(server, "cold-nobatch", pool));
    print_row(rows.back());
    server.shutdown();
  }
  {
    serve::Server server(make_config(/*cache=*/false, /*batch=*/true));
    rows.push_back(run_pass(server, "cold-nocache", pool));
    print_row(rows.back());
    server.shutdown();
  }

  // Telemetry-overhead drill: warm throughput with no admin endpoint vs
  // with the admin endpoint up and a 1 Hz /metrics scrape loop running.
  // Single timed passes are too noisy to resolve a ~1% effect (run-to-run
  // variance on a loaded box is several percent), so the two
  // configurations run as interleaved trials (A B A B ...) against
  // long-lived warmed servers, and the medians are compared.
  constexpr double kTimedSeconds = 2.0;
  constexpr int kTrials = 5;
  std::vector<double> base_trials, scrape_trials;
  long long scrapes = 0;
  {
    serve::Server base_server(make_config(/*cache=*/true, /*batch=*/true));
    serve::ServeConfig cfg = make_config(/*cache=*/true, /*batch=*/true);
    cfg.admin.enabled = true;  // port 0: kernel-assigned ephemeral port
    serve::Server scrape_server(cfg);
    run_pass(base_server, "warmup", pool);  // fill result caches (untimed)
    run_pass(scrape_server, "warmup", pool);

    std::atomic<bool> stop{false};
    std::thread scraper([&] {
      while (!stop.load()) {
        serve::HttpResponse r =
            serve::http_get(scrape_server.admin_port(), "/metrics");
        if (r.status == 200) ++scrapes;
        for (int i = 0; i < 10 && !stop.load(); ++i)
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
    for (int t = 0; t < kTrials; ++t) {
      base_trials.push_back(run_timed(base_server, pool, kTimedSeconds));
      scrape_trials.push_back(run_timed(scrape_server, pool, kTimedSeconds));
    }
    stop.store(true);
    scraper.join();
    scrape_server.shutdown();
    base_server.shutdown();
  }
  std::sort(base_trials.begin(), base_trials.end());
  std::sort(scrape_trials.begin(), scrape_trials.end());
  const double base_rps = base_trials[kTrials / 2];
  const double scrape_rps = scrape_trials[kTrials / 2];
  const double delta_pct = (scrape_rps - base_rps) / base_rps * 100.0;
  std::printf("\ntelemetry overhead (median of %d interleaved %.0fs warm "
              "passes each):\n", kTrials, kTimedSeconds);
  std::printf("  warm-noadmin    %10.2f req/s  (min %.0f  max %.0f)\n",
              base_rps, base_trials.front(), base_trials.back());
  std::printf("  warm-scrape-1hz %10.2f req/s  (min %.0f  max %.0f, "
              "%lld scrapes)\n",
              scrape_rps, scrape_trials.front(), scrape_trials.back(),
              scrapes);
  std::printf("  delta: %+.2f%% (acceptance: |delta| < 2%%)\n", delta_pct);
  report.meta("scrape_overhead_pct", std::to_string(delta_pct));

  // Cluster scaling drill (ISSUE-7): cold throughput through the
  // consistent-hash router with 1 worker vs 2 workers, all-distinct
  // layouts so every request pays the compute path. Near-linear scaling
  // needs genuine parallel headroom — two workers' dispatcher pools only
  // run concurrently when the machine has cores for them — so the >=1.25x
  // acceptance gates only on sufficiently parallel hardware; on smaller
  // boxes the ratio is reported without judging it.
  const unsigned cores = std::thread::hardware_concurrency();
  const bool gate_scaling = cores >= 4;
  const double rps1 = cluster_cold_rps(1, /*seed_base=*/41000);
  const double rps2 = cluster_cold_rps(2, /*seed_base=*/42000);
  const double scaling = rps2 / rps1;
  std::printf("\ncluster cold throughput via router (%d distinct layouts, "
              "%d clients):\n", kRequests, kClients);
  std::printf("  1 worker  %8.2f req/s\n", rps1);
  std::printf("  2 workers %8.2f req/s\n", rps2);
  std::printf("  scaling: %.2fx (%s: >= 1.25x on >=4 cores; this machine "
              "has %u)\n",
              scaling, gate_scaling ? "acceptance" : "not gated", cores);
  report.meta("cluster_scaling_2w", std::to_string(scaling));
  report.meta("hardware_cores", std::to_string(cores));

  const double speedup = rows[1].throughput / rows[0].throughput;
  std::printf("\nwarm/cold throughput ratio: %.1fx (acceptance: >= 5x)\n",
              speedup);
  report.meta("warm_cold_speedup", std::to_string(speedup));
  if (speedup < 5.0) return 1;
  if (gate_scaling && scaling < 1.25) return 1;
  return 0;
}
