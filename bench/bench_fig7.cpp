// Reproduces Fig. 7: qualitative comparison of the final masks / printed
// images of the unified ICCAD'17 flow [10] vs. ours on three NanGate-like
// cells (AOI211_X1, NAND3_X2, BUF_X1 analogues).
//
// Emits PGM images (fig7_<cell>_<flow>_{target,mask1,mask2,print}.pgm)
// plus the EPE-violation counts; the paper's claim is that our flow
// removes the EPE violations the baseline leaves behind.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/log.h"
#include "core/baseline_flows.h"
#include "core/ldmo_flow.h"
#include "kernels/kernels.h"
#include "layout/io.h"
#include "layout/raster.h"
#include "runtime/thread_pool.h"

int main(int argc, char** argv) {
  using namespace ldmo;
  runtime::apply_threads_flag(argc, argv);
  kernels::apply_backend_flag(argc, argv);
  set_log_level(LogLevel::Warn);
  const litho::LithoSimulator simulator(bench::experiment_litho());
  bench::PredictorBundle bundle = bench::get_or_train_predictor(simulator);

  core::UnifiedGreedyConfig unified_cfg;
  unified_cfg.ilt = bench::paper_ilt();
  core::UnifiedGreedyFlow unified(simulator, unified_cfg);
  core::LdmoConfig ours_cfg;
  ours_cfg.ilt = bench::paper_ilt();
  core::LdmoFlow ours(simulator, *bundle.predictor, ours_cfg);

  layout::LayoutGenerator gen = bench::experiment_generator();
  std::printf("Fig. 7 reproduction: qualitative comparison vs ICCAD'17 [10]\n");
  std::printf("%-12s | %12s | %12s\n", "cell", "[10] EPE#", "Ours EPE#");
  std::printf("-------------+--------------+-------------\n");

  bool ours_never_worse = true;
  for (const std::string cell : {"AOI211_X1", "NAND3_X2", "BUF_X1"}) {
    const layout::Layout l = gen.generate_cell(cell);
    const core::BaselineFlowResult r10 = unified.run(l);
    const core::LdmoResult r_ours = ours.run(l);
    const int epe10 = r10.ilt.report.epe.violation_count;
    const int epe_ours = r_ours.ilt.report.epe.violation_count;
    std::printf("%-12s | %12d | %12d\n", cell.c_str(), epe10, epe_ours);
    if (epe_ours > epe10) ours_never_worse = false;

    const GridF target =
        layout::rasterize_target(l, simulator.grid_size());
    layout::write_pgm(target, "fig7_" + cell + "_target.pgm");
    layout::write_pgm(r10.ilt.mask1, "fig7_" + cell + "_iccad17_mask1.pgm");
    layout::write_pgm(r10.ilt.mask2, "fig7_" + cell + "_iccad17_mask2.pgm");
    layout::write_pgm(r10.ilt.response, "fig7_" + cell + "_iccad17_print.pgm");
    layout::write_pgm(r_ours.ilt.mask1, "fig7_" + cell + "_ours_mask1.pgm");
    layout::write_pgm(r_ours.ilt.mask2, "fig7_" + cell + "_ours_mask2.pgm");
    layout::write_pgm(r_ours.ilt.response, "fig7_" + cell + "_ours_print.pgm");
  }
  std::printf("\nPGM images written to the working directory "
              "(fig7_<cell>_<flow>_*.pgm)\n");
  std::printf("SHAPE ours_never_worse=%s\n", ours_never_worse ? "yes" : "no");
  return 0;
}
