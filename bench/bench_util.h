// Shared experiment configuration for the paper-reproduction benches.
//
// Every bench draws its layouts, lithography model, ILT settings and CNN
// predictor from here so the experiments stay mutually consistent. The
// trained predictor is cached on disk (./ldmo_cache_*.weights): the first
// bench that needs it pays the training cost, reruns load in milliseconds.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "layout/generator.h"
#include "litho/simulator.h"
#include "opc/ilt.h"

namespace ldmo::bench {

/// The experiment-grade lithography model: 128 px at 8nm over a 1024nm
/// clip, 6 SOCS kernels (DESIGN.md section 2 documents the scale-down from
/// the paper's testbed).
litho::LithoConfig experiment_litho();

/// The paper's ILT settings (29 iterations, violation checks every 3).
opc::IltConfig paper_ilt();

/// Layout generator matching the lithography field.
layout::LayoutGenerator experiment_generator();

/// The 13 evaluation layouts of the Table I reproduction (seeded, disjoint
/// from every training corpus seed range).
std::vector<layout::Layout> table1_layouts();

/// A trained CNN predictor plus its provenance.
struct PredictorBundle {
  std::unique_ptr<core::CnnPredictor> predictor;
  double build_seconds = 0.0;  ///< 0 when loaded from cache
  int training_examples = 0;
  double final_train_mae = 0.0;
};

/// Options controlling how the predictor's training set is built.
struct PredictorOptions {
  bool our_layout_sampling = true;   ///< SIFT+k-medoids vs random layouts
  bool our_decomp_sampling = true;   ///< MST+3-wise vs random decomps
  int corpus_size = 80;
  int target_layouts = 20;           ///< layouts entering the training set
  int decomps_per_layout = 14;
  /// Labeling ILT iteration count. MUST equal the evaluation schedule:
  /// shortened labeling ILT ranks decompositions almost independently of
  /// the full ILT (measured Spearman 0.27 at 25 vs 50 iterations) — the
  /// paper's Fig. 1(b) observation applied to our own training pipeline.
  int label_ilt_iterations = 50;
  /// Epochs over the 8x-augmented set (10 epochs ~ 80 unaugmented passes).
  int train_epochs = 10;
  std::string cache_tag = "ours";    ///< disk-cache discriminator
};

/// Trains (or loads from cache) a slim ResNet predictor following the
/// paper's Fig. 5 pipeline on the experiment lithography model.
PredictorBundle get_or_train_predictor(const litho::LithoSimulator& simulator,
                                       const PredictorOptions& options = {});

/// CNN input-side used by all experiment predictors.
inline constexpr int kPredictorImageSize = 64;

/// RAII observability harness for a bench binary: enables span tracing at
/// construction and writes "<name>_report.json" (metrics snapshot + span
/// trees + ILT iteration traces) next to the bench's stdout table at
/// destruction. Meta key/values land in the report's "meta" object.
class BenchReport {
 public:
  explicit BenchReport(std::string name);
  ~BenchReport();
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void meta(const std::string& key, const std::string& value);

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
};

}  // namespace ldmo::bench
