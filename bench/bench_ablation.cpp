// Ablation studies of the framework's design choices (not in the paper;
// they quantify the decisions DESIGN.md calls out):
//
//   A. n-wise strength (2 vs 3 vs exhaustive) — candidate count vs the
//      quality of the best candidate in the set.
//   B. Violation-fallback (Fig. 2 loop) on vs off under a deliberately
//      poor predictor.
//   C. SOCS kernel count — forward-model accuracy vs captured TCC energy.
//   D. Final binarization threshold search on vs off.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/log.h"
#include "core/ldmo_flow.h"
#include "core/predictor.h"
#include "kernels/kernels.h"
#include "litho/kernels.h"
#include "mpl/decomposition_generator.h"
#include "runtime/thread_pool.h"

namespace {

using namespace ldmo;

void ablation_nwise(const litho::LithoSimulator& simulator) {
  std::printf("A. n-wise strength vs candidate-set quality\n");
  std::printf("%-10s | %10s | %14s\n", "strength", "candidates",
              "best EPE in set");
  opc::IltEngine engine(simulator, bench::paper_ilt());
  layout::LayoutGenerator gen = bench::experiment_generator();
  for (int strength : {2, 3, 4}) {
    int total_candidates = 0;
    int total_best = 0;
    for (std::uint64_t seed : {9004, 9008, 9012}) {
      const layout::Layout l = gen.generate(seed);
      mpl::GenerationConfig cfg;
      cfg.strength_sp_vp = strength;
      cfg.strength_np = strength - 1;
      const auto generated = mpl::generate_decompositions(l, cfg);
      total_candidates += static_cast<int>(generated.candidates.size());
      int best = 1 << 20;
      // Full-ILT labeling is the expensive part; 12 candidates per
      // (layout, strength) keeps the study under a minute per row while
      // still separating the strengths.
      const std::size_t budget =
          std::min<std::size_t>(12, generated.candidates.size());
      for (std::size_t c = 0; c < budget; ++c)
        best = std::min(best, engine.optimize(l, generated.candidates[c])
                                  .report.epe.violation_count);
      total_best += best;
    }
    std::printf("%-10d | %10d | %14d\n", strength, total_candidates,
                total_best);
  }
}

void ablation_fallback(const litho::LithoSimulator& simulator) {
  std::printf("\nB. violation fallback with an adversarial predictor\n");
  // Predictor that prefers putting everything on one mask (pathological).
  class Pathological : public core::PrintabilityPredictor {
   public:
    double score(const layout::Layout&,
                 const layout::Assignment& a) override {
      int ones = 0;
      for (int v : a) ones += v;
      return ones;  // prefers all-zero assignments (maximal conflicts)
    }
    std::string name() const override { return "pathological"; }
  } predictor;

  layout::LayoutGenerator gen = bench::experiment_generator();
  for (int fallbacks : {0, 6}) {
    core::LdmoConfig cfg;
    cfg.ilt = bench::paper_ilt();
    cfg.max_fallbacks = fallbacks;
    core::LdmoFlow flow(simulator, predictor, cfg);
    int epe = 0, viol = 0, tried = 0;
    for (std::uint64_t seed : {9004, 9008, 9012}) {
      const core::LdmoResult r = flow.run(gen.generate(seed));
      epe += r.ilt.report.epe.violation_count;
      viol += r.ilt.report.violations.total();
      tried += r.candidates_tried;
    }
    std::printf("  max_fallbacks=%d: total EPE %d, violations %d, ILT "
                "attempts %d\n",
                fallbacks, epe, viol, tried);
  }
}

void ablation_kernels() {
  std::printf("\nC. SOCS kernel count vs captured TCC energy\n");
  std::printf("%-8s | %-15s | %s\n", "kernels", "energy captured",
              "intensity drift vs K=10");
  // Reference intensity with many kernels.
  litho::LithoConfig ref_cfg = bench::experiment_litho();
  ref_cfg.kernel_count = 10;
  const litho::SocsKernels& ref = litho::cached_kernels(ref_cfg);
  litho::AerialSimulator ref_aerial(ref);
  layout::LayoutGenerator gen = bench::experiment_generator();
  const GridF mask = layout::rasterize_target(gen.generate(9001),
                                              ref_cfg.grid_size);
  const GridF ref_intensity = ref_aerial.intensity(mask);
  for (int k : {2, 4, 6, 8}) {
    litho::LithoConfig cfg = bench::experiment_litho();
    cfg.kernel_count = k;
    const litho::SocsKernels& kernels = litho::cached_kernels(cfg);
    litho::AerialSimulator aerial(kernels);
    const GridF intensity = aerial.intensity(mask);
    double max_drift = 0.0;
    for (std::size_t i = 0; i < intensity.size(); ++i)
      max_drift = std::max(max_drift,
                           std::abs(intensity[i] - ref_intensity[i]));
    std::printf("%-8d | %14.1f%% | %.5f (threshold %.3f)\n", k,
                kernels.captured_energy * 100.0, max_drift,
                cfg.intensity_threshold);
  }
}

void ablation_edge_weight(const litho::LithoSimulator& simulator) {
  std::printf("\nE. edge-weighted ILT loss (extension; 0 = paper-plain)\n");
  layout::LayoutGenerator gen = bench::experiment_generator();
  for (double weight : {0.0, 2.0, 4.0}) {
    opc::IltConfig cfg = bench::paper_ilt();
    cfg.edge_weight = weight;
    opc::IltEngine engine(simulator, cfg);
    int epe = 0;
    double l2 = 0.0;
    for (std::uint64_t seed : {9004, 9008, 9012}) {
      const layout::Layout l = gen.generate(seed);
      const auto candidate = mpl::generate_decompositions(l).candidates[0];
      const auto report = engine.optimize(l, candidate).report;
      epe += report.epe.violation_count;
      l2 += report.l2;
    }
    std::printf("  edge_weight %.1f: total EPE %d, total L2 %.1f\n", weight,
                epe, l2);
  }
}

void ablation_binarize(const litho::LithoSimulator& simulator) {
  std::printf("\nD. final binarization threshold search on/off\n");
  layout::LayoutGenerator gen = bench::experiment_generator();
  for (bool search : {false, true}) {
    opc::IltConfig cfg = bench::paper_ilt();
    if (!search) cfg.binarize_thresholds = {0.0};
    opc::IltEngine engine(simulator, cfg);
    int epe = 0;
    for (std::uint64_t seed : {9004, 9008, 9012}) {
      const layout::Layout l = gen.generate(seed);
      const auto candidate = mpl::generate_decompositions(l).candidates[0];
      epe += engine.optimize(l, candidate).report.epe.violation_count;
    }
    std::printf("  threshold search %s: total EPE %d\n",
                search ? "on " : "off", epe);
  }
}

}  // namespace

int main(int argc, char** argv) {
  runtime::apply_threads_flag(argc, argv);
  kernels::apply_backend_flag(argc, argv);
  set_log_level(LogLevel::Warn);
  const litho::LithoSimulator simulator(bench::experiment_litho());
  std::printf("Ablation studies (3 evaluation layouts each)\n\n");
  ablation_nwise(simulator);
  ablation_fallback(simulator);
  ablation_kernels();
  ablation_edge_weight(simulator);
  ablation_binarize(simulator);
  return 0;
}
