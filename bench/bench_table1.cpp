// Reproduces Table I: EPE violations and runtime of the four flows —
//   [16]+[6]  spacing-uniformity decomposition + ILT      (two-stage)
//   [17]+[6]  balanced decomposition + ILT                (two-stage)
//   [10]      unified greedy simultaneous LDMO            (ICCAD'17)
//   Ours      CNN-predicted decomposition + ILT fallback  (this paper)
// over 13 generated standard-cell-like contact layouts.
//
// Shape targets (paper): Ours has the fewest EPE violations (>= 68% fewer
// than any baseline) and the lowest runtime; [10] has the second-best EPE
// at the highest runtime. Absolute numbers differ from the paper (our
// substrate simulates the authors' testbed; see EXPERIMENTS.md).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/log.h"
#include "core/baseline_flows.h"
#include "core/ldmo_flow.h"
#include "kernels/kernels.h"
#include "mpl/baselines.h"
#include "runtime/thread_pool.h"

namespace {

using namespace ldmo;

struct FlowStats {
  std::vector<int> epe;
  std::vector<double> seconds;

  void add(int epe_count, double s) {
    epe.push_back(epe_count);
    seconds.push_back(s);
  }
  double mean_epe() const {
    double sum = 0.0;
    for (int e : epe) sum += e;
    return sum / static_cast<double>(epe.size());
  }
  double mean_seconds() const {
    double sum = 0.0;
    for (double s : seconds) sum += s;
    return sum / static_cast<double>(seconds.size());
  }
};

}  // namespace

int main(int argc, char** argv) {
  runtime::apply_threads_flag(argc, argv);
  kernels::apply_backend_flag(argc, argv);
  set_log_level(LogLevel::Warn);
  bench::BenchReport obs_report("bench_table1");
  obs_report.meta("experiment", "Table I: EPE and runtime of four flows");
  const litho::LithoSimulator simulator(bench::experiment_litho());
  bench::PredictorBundle bundle =
      bench::get_or_train_predictor(simulator);

  // The four flows.
  core::TwoStageFlow suald_flow(
      simulator,
      [](const layout::Layout& l) {
        return mpl::SpacingUniformityDecomposer().decompose(l);
      },
      bench::paper_ilt());
  core::TwoStageFlow balanced_flow(
      simulator,
      [](const layout::Layout& l) {
        return mpl::BalancedDecomposer().decompose(l);
      },
      bench::paper_ilt());
  core::UnifiedGreedyConfig unified_cfg;
  unified_cfg.ilt = bench::paper_ilt();
  core::UnifiedGreedyFlow unified_flow(simulator, unified_cfg);
  core::LdmoConfig ours_cfg;
  ours_cfg.ilt = bench::paper_ilt();
  core::LdmoFlow ours_flow(simulator, *bundle.predictor, ours_cfg);

  FlowStats suald, balanced, unified, ours;

  std::printf("Table I reproduction: EPE violations and runtime per flow\n");
  std::printf(
      "%-4s | %-14s | %-14s | %-14s | %-14s\n", "ID", "[16]+[6]",
      "[17]+[6]", "[10]", "Ours");
  std::printf("%-4s | %6s %7s | %6s %7s | %6s %7s | %6s %7s\n", "", "EPE#",
              "Time(s)", "EPE#", "Time(s)", "EPE#", "Time(s)", "EPE#",
              "Time(s)");
  std::printf("-----+----------------+----------------+----------------+---------------\n");

  const std::vector<layout::Layout> layouts = bench::table1_layouts();
  for (std::size_t i = 0; i < layouts.size(); ++i) {
    const layout::Layout& l = layouts[i];
    const core::BaselineFlowResult r16 = suald_flow.run(l);
    const core::BaselineFlowResult r17 = balanced_flow.run(l);
    const core::BaselineFlowResult r10 = unified_flow.run(l);
    const core::LdmoResult r_ours = ours_flow.run(l);

    suald.add(r16.ilt.report.epe.violation_count, r16.total_seconds);
    balanced.add(r17.ilt.report.epe.violation_count, r17.total_seconds);
    unified.add(r10.ilt.report.epe.violation_count, r10.total_seconds);
    ours.add(r_ours.ilt.report.epe.violation_count, r_ours.total_seconds);

    std::printf("%-4zu | %6d %7.2f | %6d %7.2f | %6d %7.2f | %6d %7.2f\n",
                i + 1, suald.epe.back(), suald.seconds.back(),
                balanced.epe.back(), balanced.seconds.back(),
                unified.epe.back(), unified.seconds.back(), ours.epe.back(),
                ours.seconds.back());
  }

  std::printf("-----+----------------+----------------+----------------+---------------\n");
  std::printf("%-4s | %6.2f %7.2f | %6.2f %7.2f | %6.2f %7.2f | %6.2f %7.2f\n",
              "Ave.", suald.mean_epe(), suald.mean_seconds(),
              balanced.mean_epe(), balanced.mean_seconds(),
              unified.mean_epe(), unified.mean_seconds(), ours.mean_epe(),
              ours.mean_seconds());
  const double ours_epe = std::max(ours.mean_epe(), 1e-9);
  const double ours_time = std::max(ours.mean_seconds(), 1e-9);
  std::printf(
      "%-4s | %6.2f %7.2f | %6.2f %7.2f | %6.2f %7.2f | %6.2f %7.2f\n",
      "Rat.", suald.mean_epe() / ours_epe, suald.mean_seconds() / ours_time,
      balanced.mean_epe() / ours_epe,
      balanced.mean_seconds() / ours_time, unified.mean_epe() / ours_epe,
      unified.mean_seconds() / ours_time, 1.0, 1.0);

  // Headline checks in machine-greppable form.
  const bool epe_wins = ours.mean_epe() <= unified.mean_epe() &&
                        ours.mean_epe() <= suald.mean_epe() &&
                        ours.mean_epe() <= balanced.mean_epe();
  const bool faster_than_unified =
      ours.mean_seconds() < unified.mean_seconds();
  std::printf("\nSHAPE ours_lowest_epe=%s ours_faster_than_[10]=%s\n",
              epe_wins ? "yes" : "no", faster_than_unified ? "yes" : "no");
  return 0;
}
