// Online-learning flywheel acceptance (ROADMAP item 5, ISSUE-10):
//
//   1. Capture-overhead drill: fresh-run serve latency with the training-
//      log sink attached vs without. Single passes cannot resolve a
//      sub-percent effect on a loaded box, so the two configurations run
//      as interleaved trials (A B A B ...) against long-lived servers and
//      the MEDIAN p95s are compared. Acceptance: |delta| < 2%.
//
//   2. Recovery drill: a deliberately mistrained predictor CNN (trained on
//      inverted labels, so its held-out rank correlation is deeply
//      negative) serves live traffic; the capture sink logs (decomposition
//      image, actual ILT score) pairs; the background fine-tuner fires a
//      round and the promotion gate swaps in the recovered candidate —
//      while the server keeps answering requests with zero failures.
//      Acceptance: the round promotes, held-out rank correlation recovers
//      (candidate > incumbent), and the swap is visible in the predictor
//      identity ("cnn@v1").
//
// Uses the 32-pixel serving-tier lithography model (same budget as
// test_serve.cpp): the acceptance criteria are ratios and correlations,
// not absolute quality numbers. Writes flywheel_capture.txt and
// flywheel_recovery.txt into --report-dir (default ".").
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/log.h"
#include "core/predictor.h"
#include "flywheel/log.h"
#include "flywheel/sink.h"
#include "flywheel/tuner.h"
#include "kernels/kernels.h"
#include "layout/generator.h"
#include "nn/serialize.h"
#include "nn/trainer.h"
#include "runtime/thread_pool.h"
#include "serve/server.h"

namespace {

using namespace ldmo;

const char* flag_value(int argc, char** argv, const char* name,
                       const char* fallback) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) return argv[i + 1];
  return fallback;
}

litho::LithoConfig fast_litho() {
  litho::LithoConfig cfg;
  cfg.grid_size = 32;
  cfg.pixel_nm = 32.0;  // 32 px x 32 nm = the generator's 1024nm clip
  return cfg;
}

serve::ServeConfig fast_serve_config() {
  serve::ServeConfig cfg;
  cfg.engine.litho = fast_litho();
  cfg.dispatchers = 2;
  return cfg;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// One trial: `count` FRESH sequential requests (globally unique seeds, so
/// neither server ever serves from cache); returns the trial's p95 latency.
double fresh_p95(serve::Server& server, std::uint64_t& next_seed, int count) {
  layout::LayoutGenerator generator;
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    serve::ServeRequest request;
    request.layout = generator.generate(next_seed++);
    const auto t0 = std::chrono::steady_clock::now();
    const serve::ServeResponse response =
        server.submit(std::move(request)).response.get();
    const auto t1 = std::chrono::steady_clock::now();
    if (response.status != serve::ServeStatus::kOk) {
      std::fprintf(stderr, "bench_flywheel: fresh run not kOk\n");
      std::exit(1);
    }
    latencies.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(latencies.begin(), latencies.end());
  return percentile(latencies, 0.95);
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    std::fprintf(stderr, "bench_flywheel: cannot read %s\n", path.c_str());
    std::exit(1);
  }
  std::vector<std::uint8_t> bytes;
  unsigned char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    bytes.insert(bytes.end(), buf, buf + n);
  std::fclose(f);
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  runtime::apply_threads_flag(argc, argv);
  kernels::apply_backend_flag(argc, argv);
  set_log_level(LogLevel::Warn);

  const int trials = std::atoi(flag_value(argc, argv, "--trials", "9"));
  const int per_trial = std::atoi(flag_value(argc, argv, "--per-trial", "16"));
  const int corpus = std::atoi(flag_value(argc, argv, "--corpus", "24"));
  const std::string report_dir = flag_value(argc, argv, "--report-dir", ".");
  const std::string log_path = "ldmo_bench_flywheel.log";
  const std::string scratch = "ldmo_bench_flywheel_scratch.bin";
  std::remove(log_path.c_str());

  // --- 1. capture-overhead drill -------------------------------------------
  std::uint64_t next_seed = 7000;
  serve::Server plain_server(fast_serve_config());

  auto overhead_sink = std::make_shared<flywheel::TrainingLogSink>(
      flywheel::SinkConfig{.path = log_path,
                           .image_size = 32,
                           .sample_every = 1,
                           .max_records = 0});
  serve::ServeConfig captured_cfg = fast_serve_config();
  captured_cfg.capture = overhead_sink;
  serve::Server captured_server(captured_cfg);

  // One unmeasured warmup pass each (thread pools, kernel dispatch, BN
  // statistics all settle), then interleaved measured trials.
  (void)fresh_p95(plain_server, next_seed, per_trial);
  (void)fresh_p95(captured_server, next_seed, per_trial);
  std::vector<double> plain_p95s, captured_p95s;
  for (int t = 0; t < trials; ++t) {
    plain_p95s.push_back(fresh_p95(plain_server, next_seed, per_trial));
    captured_p95s.push_back(fresh_p95(captured_server, next_seed, per_trial));
    std::printf("trial %d: p95 capture-off %.3fs  capture-on %.3fs\n", t + 1,
                plain_p95s.back(), captured_p95s.back());
  }
  overhead_sink->drain();
  std::sort(plain_p95s.begin(), plain_p95s.end());
  std::sort(captured_p95s.begin(), captured_p95s.end());
  const double base_p95 = plain_p95s[static_cast<std::size_t>(trials / 2)];
  const double cap_p95 = captured_p95s[static_cast<std::size_t>(trials / 2)];
  const double delta_pct = (cap_p95 - base_p95) / base_p95 * 100.0;
  const bool overhead_ok = delta_pct < 2.0;

  const std::string capture_path = report_dir + "/flywheel_capture.txt";
  if (std::FILE* f = std::fopen(capture_path.c_str(), "w")) {
    std::fprintf(f,
                 "# Flywheel capture overhead (ISSUE-10 acceptance)\n#\n"
                 "# Fresh-run p95 latency, training-log sink attached vs "
                 "absent.\n# Medians of %d interleaved trials x %d "
                 "all-distinct fresh runs\n# each, long-lived servers, "
                 "unmeasured warmup pass per server.\n#\n"
                 "# The sink's request-path cost is one sampling check and "
                 "a bounded\n# queue push of copies; rasterization and "
                 "file I/O run on its own\n# writer thread.\n\n",
                 trials, per_trial);
    std::fprintf(f, "capture-off p95 %.3fs  (min %.3f  max %.3f)\n", base_p95,
                 plain_p95s.front(), plain_p95s.back());
    std::fprintf(f, "capture-on  p95 %.3fs  (min %.3f  max %.3f)\n", cap_p95,
                 captured_p95s.front(), captured_p95s.back());
    std::fprintf(f, "delta: %+.2f%% (acceptance: < 2%%) -> %s\n", delta_pct,
                 overhead_ok ? "PASS" : "FAIL");
    std::fprintf(f, "pairs captured during the drill: %lld, dropped: %lld\n",
                 overhead_sink->captured(), overhead_sink->dropped());
    std::fclose(f);
  }
  std::printf("capture overhead: p95 %.3fs -> %.3fs (%+.2f%%)\n", base_p95,
              cap_p95, delta_pct);

  // --- 2. recovery drill ---------------------------------------------------
  std::remove(log_path.c_str());
  const nn::ResNetConfig network = [] {
    nn::ResNetConfig cfg;
    cfg.input_size = 32;
    cfg.width_multiplier = 0.125;
    return cfg;
  }();

  auto sink = std::make_shared<flywheel::TrainingLogSink>(
      flywheel::SinkConfig{.path = log_path,
                           .image_size = 32,
                           .sample_every = 1,
                           .max_records = 0});
  serve::ServeConfig cfg = fast_serve_config();
  cfg.capture = sink;
  serve::Server server(
      cfg, std::make_unique<core::CnnPredictor>(
               std::make_unique<nn::ResNetRegressor>(network)));

  std::printf("serving %d fresh layouts to build the training log...\n",
              corpus);
  layout::LayoutGenerator generator;
  for (int i = 0; i < corpus; ++i) {
    serve::ServeRequest request;
    request.layout = generator.generate(8000 + static_cast<std::uint64_t>(i));
    const serve::ServeResponse response =
        server.submit(std::move(request)).response.get();
    if (response.status != serve::ServeStatus::kOk || response.degraded) {
      std::fprintf(stderr, "bench_flywheel: corpus run %d not clean\n", i);
      return 1;
    }
  }
  sink->drain();

  // Mistrain an incumbent on the captured pairs with INVERTED labels: its
  // held-out rank correlation lands deeply negative — the worst realistic
  // starting point for the flywheel.
  std::printf("mistraining the incumbent on inverted labels...\n");
  const flywheel::TrainingLog log = flywheel::read_training_log(log_path);
  nn::ResNetRegressor mistrained(network);
  {
    std::vector<double> scores;
    for (const flywheel::TrainingPair& pair : log.pairs)
      scores.push_back(pair.score);
    const double lo = *std::min_element(scores.begin(), scores.end());
    const double hi = *std::max_element(scores.begin(), scores.end());
    const double span = hi > lo ? hi - lo : 1.0;
    std::vector<nn::Example> inverted;
    for (const flywheel::TrainingPair& pair : log.pairs) {
      nn::Example example;
      example.image = nn::Tensor({1, 32, 32});
      std::copy(pair.image.begin(), pair.image.end(), example.image.data());
      example.label =
          static_cast<float>(1.0 - 2.0 * (pair.score - lo) / span);
      inverted.push_back(std::move(example));
    }
    nn::TrainerConfig tcfg;
    tcfg.epochs = 12;
    tcfg.batch_size = 6;
    tcfg.adam.learning_rate = 3e-3;
    nn::train_regressor(mistrained, inverted, tcfg);
  }
  nn::save_parameters(mistrained.parameters(), scratch);
  const std::vector<std::uint8_t> mistrained_blob = file_bytes(scratch);

  // Deploy the mistrained model (versioned v0) and point the tuner at it.
  {
    auto net = std::make_unique<nn::ResNetRegressor>(network);
    nn::load_parameters(net->parameters(), scratch);
    server.swap_backend(std::make_unique<core::VersionedPredictor>(
        std::make_unique<core::CnnPredictor>(std::move(net)), 0));
  }

  flywheel::TunerConfig tcfg;
  tcfg.log_path = log_path;
  tcfg.network = network;
  tcfg.trainer.epochs = 8;
  tcfg.trainer.batch_size = 6;
  tcfg.trainer.adam.learning_rate = 3e-3;
  tcfg.min_new_records = static_cast<std::size_t>(corpus);
  tcfg.holdout_every = 4;
  tcfg.poll_interval_ms = 50;
  tcfg.scratch_path = scratch + ".candidate";
  flywheel::FineTuner tuner(tcfg,
                            flywheel::local_promoter(server, network, scratch));
  tuner.set_incumbent(mistrained_blob);

  // The flywheel round runs while the server keeps taking traffic — the
  // drill's availability clause: the swap must cost zero failed requests.
  std::printf("running the flywheel round during live traffic...\n");
  const long long failed_before =
      server.status_count(serve::ServeStatus::kFailed);
  std::atomic<bool> done{false};
  std::atomic<long long> traffic_served{0};
  std::thread traffic([&] {
    std::uint64_t traffic_seed = 9000;
    layout::LayoutGenerator traffic_generator;
    while (!done.load()) {
      serve::ServeRequest request;
      request.layout = traffic_generator.generate(traffic_seed++);
      (void)server.submit(std::move(request)).response.get();
      traffic_served.fetch_add(1);
    }
  });
  const flywheel::TuneRound round = tuner.run_once();
  done.store(true);
  traffic.join();
  const long long failed_during =
      server.status_count(serve::ServeStatus::kFailed) - failed_before;

  const bool promoted = round.promoted && tuner.promotions() > 0;
  const bool recovered = round.candidate_corr > round.incumbent_corr;
  const std::string recovery_path = report_dir + "/flywheel_recovery.txt";
  if (std::FILE* f = std::fopen(recovery_path.c_str(), "w")) {
    std::fprintf(f,
                 "# Flywheel recovery drill (ISSUE-10 acceptance)\n#\n"
                 "# A CNN predictor mistrained on inverted labels serves "
                 "live traffic;\n# the capture sink logs %d (decomposition "
                 "image, actual ILT score)\n# pairs; the background "
                 "fine-tuner fires a gated round and promotes\n# the "
                 "recovered candidate through the in-process blue/green "
                 "swap.\n\n",
                 corpus);
    std::fprintf(f,
                 "training log: %zu pairs (%zu train / %zu held out per "
                 "round)\n",
                 round.records, round.train_count, round.holdout_count);
    std::fprintf(f, "held-out rank correlation: incumbent %+.3f -> "
                 "candidate %+.3f\n",
                 round.incumbent_corr, round.candidate_corr);
    std::fprintf(f, "promotions: %lld (version v%llu)\n", tuner.promotions(),
                 static_cast<unsigned long long>(tuner.version()));
    std::fprintf(f, "live predictor after the drill: %s\n",
                 server.predictor_name().c_str());
    std::fprintf(f, "backend swaps observed by the server: %lld\n",
                 server.backend_swaps());
    std::fprintf(f,
                 "requests served while the round ran: %lld, failed: %lld\n",
                 traffic_served.load(), failed_during);
    std::fprintf(f, "ACCEPTANCE %s\n",
                 (promoted && recovered && failed_during == 0) ? "PASS"
                                                               : "FAIL");
    std::fclose(f);
  }

  std::printf("recovery: promoted=%s corr %+.3f -> %+.3f live=%s "
              "failed-during=%lld\n",
              promoted ? "yes" : "NO", round.incumbent_corr,
              round.candidate_corr, server.predictor_name().c_str(),
              failed_during);
  std::remove(scratch.c_str());
  std::remove((scratch + ".candidate").c_str());
  std::remove((scratch + ".candidate.incumbent").c_str());
  std::remove(log_path.c_str());

  const bool pass = overhead_ok && promoted && recovered &&
                    failed_during == 0;
  std::printf("SHAPE flywheel_acceptance=%s\n", pass ? "pass" : "FAIL");
  return pass ? 0 : 1;
}
