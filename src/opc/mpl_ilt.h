// Multiple-patterning ILT: the IltEngine generalized to k masks
// (triple patterning and beyond; the LELE...LE wafer image is the
// saturated sum of all exposures, so the Eq. 1-3 machinery extends
// directly). The two-mask IltEngine stays as the paper-exact path; this
// engine backs the MPL extension (DESIGN.md: the paper's own title and
// references [1, 3, 4] frame the double-patterning flow inside general
// multiple patterning).
#pragma once

#include <vector>

#include "layout/layout.h"
#include "litho/simulator.h"
#include "opc/ilt.h"

namespace ldmo::opc {

/// Resumable k-mask optimization state.
struct MplIltState {
  std::vector<GridF> p;  ///< one parameter field per mask
  int iteration = 0;
  double current_step = 0.0;
  double current_theta_m = 0.0;
  double last_loss = 0.0;
};

/// Reusable per-run scratch for the k-mask step (cf. IltScratch): per-mask
/// forward/adjoint buffers plus the combined print. optimize() threads one
/// instance through all iterations so the steady-state loop stays
/// allocation-free in the pooled paths.
struct MplIltScratch {
  std::vector<GridF> masks;                ///< Eq. 1 continuous masks
  std::vector<litho::AerialFields> fields; ///< per-mask kernel fields
  std::vector<GridF> responses;            ///< per-exposure resist responses
  std::vector<GridF> grads;                ///< per-mask parameter gradients
  GridF t;                                 ///< combined print
  GridF upstream;                          ///< dL/dT through the min() gate
  GridF response;                          ///< violation-check print
};

/// Final result of a k-mask optimization.
struct MplIltResult {
  std::vector<GridF> masks;  ///< binarized final masks
  GridF response;
  litho::PrintabilityReport report;
  std::vector<IltIterationStats> trajectory;
  int iterations_run = 0;
  bool aborted_on_violation = false;
  /// True when optimize() was cancelled through its token (no masks).
  bool cancelled = false;
};

/// k-mask gradient-descent ILT engine sharing IltConfig semantics with the
/// two-mask engine.
class MplIltEngine {
 public:
  MplIltEngine(const litho::LithoSimulator& simulator, int mask_count,
               IltConfig config = {});

  int mask_count() const { return mask_count_; }
  const IltConfig& config() const { return config_; }

  /// P fields from a k-ary decomposition (values in [0, mask_count)).
  MplIltState init_state(const layout::Layout& layout,
                         const layout::Assignment& assignment) const;

  /// One gradient-descent iteration.
  void step(MplIltState& state, const GridF& target) const;

  /// Scratch-reusing variant (identical arithmetic; see IltEngine::step).
  void step(MplIltState& state, const GridF& target,
            MplIltScratch& scratch) const;

  /// Combined continuous-mask response of the current state.
  GridF response_of(const MplIltState& state) const;

  /// Full optimization loop (same contract as IltEngine::optimize,
  /// including per-iteration cooperative cancellation).
  MplIltResult optimize(const layout::Layout& layout,
                        const layout::Assignment& assignment,
                        bool abort_on_violation = false,
                        bool record_trajectory = false,
                        runtime::CancellationToken token = {}) const;

  /// Best-threshold binarization of a state (cf. IltEngine::finalize).
  MplIltResult finalize(const MplIltState& state,
                        const layout::Layout& layout) const;

 private:
  GridF mask_of(const GridF& p, double theta_m) const;
  void mask_of_into(const GridF& p, double theta_m, GridF& out) const;

  const litho::LithoSimulator& simulator_;
  int mask_count_;
  IltConfig config_;
};

}  // namespace ldmo::opc
