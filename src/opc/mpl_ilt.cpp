#include "opc/mpl_ilt.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "layout/raster.h"
#include "litho/resist.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"

namespace ldmo::opc {
namespace {

double max_abs(const GridF& g) {
  double m = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i)
    m = std::max(m, std::abs(g[i]));
  return m;
}

}  // namespace

MplIltEngine::MplIltEngine(const litho::LithoSimulator& simulator,
                           int mask_count, IltConfig config)
    : simulator_(simulator), mask_count_(mask_count), config_(config) {
  require(mask_count >= 2, "MplIltEngine: need at least two masks");
  require(config_.theta_m > 0.0 && config_.max_iterations >= 1 &&
              config_.violation_check_interval >= 1 &&
              config_.step_size > 0.0 && config_.step_decay > 0.0 &&
              config_.step_decay <= 1.0 && config_.theta_m_anneal >= 1.0 &&
              !config_.binarize_thresholds.empty(),
          "MplIltEngine: invalid configuration");
}

GridF MplIltEngine::mask_of(const GridF& p, double theta_m) const {
  GridF m;
  mask_of_into(p, theta_m, m);
  return m;
}

void MplIltEngine::mask_of_into(const GridF& p, double theta_m,
                                GridF& out) const {
  out.resize(p.height(), p.width());
  for (std::size_t i = 0; i < p.size(); ++i)
    out[i] = litho::sigmoid(theta_m * p[i]);
}

MplIltState MplIltEngine::init_state(
    const layout::Layout& layout,
    const layout::Assignment& assignment) const {
  require(static_cast<int>(assignment.size()) == layout.pattern_count(),
          "MplIltEngine::init_state: assignment size mismatch");
  for (int v : assignment)
    require(v >= 0 && v < mask_count_,
            "MplIltEngine::init_state: mask id out of range");
  simulator_.transform_for(layout);
  const int n = simulator_.grid_size();

  MplIltState state;
  state.current_step = config_.step_size;
  state.current_theta_m = config_.theta_m;
  state.p.reserve(static_cast<std::size_t>(mask_count_));
  for (int m = 0; m < mask_count_; ++m) {
    const GridF raster = layout::rasterize_mask(layout, assignment, m, n);
    GridF p(n, n);
    for (std::size_t i = 0; i < p.size(); ++i)
      p[i] = config_.initial_p * (2.0 * raster[i] - 1.0);
    state.p.push_back(std::move(p));
  }
  return state;
}

GridF MplIltEngine::response_of(const MplIltState& state) const {
  std::vector<GridF> masks;
  masks.reserve(state.p.size());
  for (const GridF& p : state.p)
    masks.push_back(mask_of(p, state.current_theta_m));
  return simulator_.print_masks(masks);
}

void MplIltEngine::step(MplIltState& state, const GridF& target) const {
  MplIltScratch scratch;
  step(state, target, scratch);
}

void MplIltEngine::step(MplIltState& state, const GridF& target,
                        MplIltScratch& s) const {
  const litho::LithoConfig& litho_cfg = simulator_.config();
  const litho::AerialSimulator& aerial = simulator_.aerial();
  const std::size_t k = static_cast<std::size_t>(mask_count_);

  // Forward pass per mask, retaining the fields for the adjoint. Masks are
  // independent simulations writing indexed scratch slots, so they run as
  // parallel tasks with results identical to the serial loop; transient
  // per-mask derivative buffers come from each worker's thread workspace.
  s.masks.resize(k);
  s.fields.resize(k);
  s.responses.resize(k);
  s.grads.resize(k);
  runtime::parallel_for(k, [&](std::size_t m) {
    mask_of_into(state.p[m], state.current_theta_m, s.masks[m]);
    aerial.intensity_with_fields(s.masks[m], s.fields[m]);
    litho::resist_response_into(s.fields[m].intensity, litho_cfg,
                                s.responses[m]);
  });
  litho::combine_exposures_n_into(s.responses, s.t);
  const GridF& t = s.t;

  double loss = 0.0;
  s.upstream.resize(t.height(), t.width());
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double d = t[i] - target[i];
    loss += d * d;
    // Gradient of min(sum, 1): flows only where the sum is unsaturated.
    double total = 0.0;
    for (const GridF& r : s.responses) total += r[i];
    s.upstream[i] = total < 1.0 ? 2.0 * d : 0.0;
  }
  state.last_loss = loss;

  // Per-mask adjoint and max-normalized update (normalized jointly over
  // all masks so the relative scaling between masks is preserved). The
  // adjoints fill indexed slots in parallel; g_max folds serially in mask
  // order afterwards (max is order-independent, the fold just keeps the
  // structure uniform with the rest of the deterministic call sites).
  runtime::parallel_for(k, [&](std::size_t m) {
    runtime::Workspace& ws = runtime::Workspace::this_thread();
    runtime::PooledGrid<double> dt =
        ws.grid_f_uninit(t.height(), t.width());  // fully overwritten
    litho::resist_derivative_into(s.responses[m], litho_cfg, *dt);
    runtime::PooledGrid<double> dldi =
        ws.grid_f_uninit(t.height(), t.width());
    for (std::size_t i = 0; i < t.size(); ++i)
      (*dldi)[i] = s.upstream[i] * (*dt)[i];
    aerial.backpropagate(*dldi, s.fields[m], s.grads[m]);
    const GridF& mask = s.masks[m];
    for (std::size_t i = 0; i < s.grads[m].size(); ++i)
      s.grads[m][i] *= state.current_theta_m * mask[i] * (1.0 - mask[i]);
  });
  double g_max = 0.0;
  for (const GridF& g : s.grads) g_max = std::max(g_max, max_abs(g));
  if (g_max > 1e-300) {
    const double scale = state.current_step / g_max;
    for (std::size_t m = 0; m < k; ++m)
      for (std::size_t i = 0; i < s.grads[m].size(); ++i)
        state.p[m][i] -= scale * s.grads[m][i];
  }
  state.current_step *= config_.step_decay;
  state.current_theta_m *= config_.theta_m_anneal;
  ++state.iteration;
}

MplIltResult MplIltEngine::finalize(const MplIltState& state,
                                    const layout::Layout& layout) const {
  MplIltResult result;
  result.iterations_run = state.iteration;
  // Thresholds evaluate in parallel into indexed slots; the winner is
  // picked serially in threshold order, preserving the serial loop's
  // strict-less tie-breaking.
  struct Candidate {
    std::vector<GridF> masks;
    GridF response;
    litho::PrintabilityReport report;
  };
  const std::size_t count = config_.binarize_thresholds.size();
  std::vector<Candidate> candidates(count);
  runtime::parallel_for(count, [&](std::size_t t) {
    Candidate& c = candidates[t];
    const double threshold = config_.binarize_thresholds[t];
    c.masks.reserve(state.p.size());
    for (const GridF& p : state.p) {
      GridF m(p.height(), p.width());
      for (std::size_t i = 0; i < p.size(); ++i)
        m[i] = p[i] >= threshold ? 1.0 : 0.0;
      c.masks.push_back(std::move(m));
    }
    c.response = simulator_.print_masks(c.masks);
    c.report = simulator_.evaluate(c.response, layout);
  });
  bool first = true;
  double best_score = 0.0;
  for (Candidate& c : candidates) {
    const double score = c.report.score();
    if (first || score < best_score) {
      first = false;
      best_score = score;
      result.masks = std::move(c.masks);
      result.response = std::move(c.response);
      result.report = std::move(c.report);
    }
  }
  return result;
}

MplIltResult MplIltEngine::optimize(const layout::Layout& layout,
                                    const layout::Assignment& assignment,
                                    bool abort_on_violation,
                                    bool record_trajectory,
                                    runtime::CancellationToken token) const {
  const GridF target =
      layout::rasterize_target(layout, simulator_.grid_size());
  MplIltState state = init_state(layout, assignment);

  MplIltResult result;
  // One scratch for the whole run (see IltEngine::optimize).
  MplIltScratch scratch;
  for (int iter = 0; iter < config_.max_iterations; ++iter) {
    if (token.cancelled()) {
      result.cancelled = true;
      return result;
    }
    step(state, target, scratch);
    const bool check_now =
        (iter + 1 > config_.violation_check_warmup &&
         (iter + 1) % config_.violation_check_interval == 0) ||
        iter + 1 == config_.max_iterations;
    litho::ViolationReport violations;
    if (check_now || record_trajectory) {
      // Same computation as response_of(state) through the run scratch
      // (step() overwrites these buffers next iteration anyway).
      for (std::size_t m = 0; m < state.p.size(); ++m)
        mask_of_into(state.p[m], state.current_theta_m, scratch.masks[m]);
      simulator_.print_masks_into(scratch.masks, scratch.responses,
                                  scratch.response);
      const GridF& response = scratch.response;
      violations = litho::detect_print_violations(
          litho::binarize(response), layout, simulator_.transform_for(layout));
      if (record_trajectory) {
        const litho::PrintabilityReport continuous =
            simulator_.evaluate(response, layout);
        result.trajectory.push_back({state.iteration, continuous.l2,
                                     continuous.epe.violation_count,
                                     violations.total()});
      }
    }
    result.iterations_run = state.iteration;
    if (abort_on_violation && check_now && violations.total() > 0) {
      result.aborted_on_violation = true;
      break;
    }
  }

  MplIltResult finalized = finalize(state, layout);
  finalized.trajectory = std::move(result.trajectory);
  finalized.iterations_run = result.iterations_run;
  finalized.aborted_on_violation = result.aborted_on_violation;
  return finalized;
}

}  // namespace ldmo::opc
