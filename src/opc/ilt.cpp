#include "opc/ilt.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/failpoint.h"
#include "kernels/kernels.h"
#include "layout/raster.h"
#include "litho/resist.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "runtime/parallel_for.h"

namespace ldmo::opc {

IltEngine::IltEngine(const litho::LithoSimulator& simulator, IltConfig config)
    : simulator_(simulator), config_(config) {
  require(config_.theta_m > 0.0, "IltEngine: theta_m must be positive");
  require(config_.max_iterations >= 1, "IltEngine: need >= 1 iteration");
  require(config_.violation_check_interval >= 1,
          "IltEngine: check interval must be >= 1");
  require(config_.step_size > 0.0 && config_.step_decay > 0.0 &&
              config_.step_decay <= 1.0,
          "IltEngine: bad step schedule");
  require(config_.theta_m_anneal >= 1.0, "IltEngine: anneal factor < 1");
  require(config_.violation_check_warmup >= 0,
          "IltEngine: negative check warmup");
  require(!config_.binarize_thresholds.empty(),
          "IltEngine: need at least one binarization threshold");
}

GridF IltEngine::mask_of(const GridF& p, double theta_m) const {
  GridF m;
  mask_of_into(p, theta_m, m);
  return m;
}

void IltEngine::mask_of_into(const GridF& p, double theta_m,
                             GridF& out) const {
  out.resize(p.height(), p.width());
  kernels::table().sigmoid_affine_f64(p.data(), out.data(), p.size(), theta_m,
                                      0.0);
}

GridF IltEngine::binarize_parameters(const GridF& p, double threshold) const {
  GridF m(p.height(), p.width());
  for (std::size_t i = 0; i < p.size(); ++i)
    m[i] = p[i] >= threshold ? 1.0 : 0.0;
  return m;
}

IltState IltEngine::init_state(const layout::Layout& layout,
                               const layout::Assignment& assignment) const {
  require(static_cast<int>(assignment.size()) == layout.pattern_count(),
          "IltEngine::init_state: assignment size mismatch");
  const int n = simulator_.grid_size();
  simulator_.transform_for(layout);  // validates clip/field agreement

  IltState state;
  state.current_step = config_.step_size;
  state.current_theta_m = config_.theta_m;
  const GridF r1 = layout::rasterize_mask(layout, assignment, 0, n);
  const GridF r2 = layout::rasterize_mask(layout, assignment, 1, n);
  state.p1 = GridF(n, n);
  state.p2 = GridF(n, n);
  for (std::size_t i = 0; i < state.p1.size(); ++i) {
    state.p1[i] = config_.initial_p * (2.0 * r1[i] - 1.0);
    state.p2[i] = config_.initial_p * (2.0 * r2[i] - 1.0);
  }
  if (config_.edge_weight > 0.0) {
    // Edge map of the target: any pixel whose 4-neighborhood spans both
    // inside and outside gets the extra loss weight.
    const GridF target = layout::rasterize_target(layout, n);
    state.loss_weights = GridF(n, n, 1.0);
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        double lo = target.at(y, x), hi = lo;
        if (y > 0) { lo = std::min(lo, target.at(y - 1, x)); hi = std::max(hi, target.at(y - 1, x)); }
        if (y + 1 < n) { lo = std::min(lo, target.at(y + 1, x)); hi = std::max(hi, target.at(y + 1, x)); }
        if (x > 0) { lo = std::min(lo, target.at(y, x - 1)); hi = std::max(hi, target.at(y, x - 1)); }
        if (x + 1 < n) { lo = std::min(lo, target.at(y, x + 1)); hi = std::max(hi, target.at(y, x + 1)); }
        if (hi > 0.0 && lo < 1.0 && hi != lo)
          state.loss_weights.at(y, x) = 1.0 + config_.edge_weight;
      }
    }
  }
  return state;
}

GridF IltEngine::response_of(const IltState& state) const {
  return simulator_.print(mask_of(state.p1, state.current_theta_m),
                          mask_of(state.p2, state.current_theta_m));
}

void IltEngine::step(IltState& state, const GridF& target) const {
  IltScratch scratch;
  step(state, target, scratch);
}

void IltEngine::step(IltState& state, const GridF& target,
                     IltScratch& s) const {
  const litho::LithoConfig& litho_cfg = simulator_.config();
  const litho::AerialSimulator& aerial = simulator_.aerial();
  const kernels::KernelTable& kt = kernels::table();

  // Forward pass, retaining per-kernel fields for the adjoint. Every
  // intermediate lands in caller scratch — at steady state (shapes warm
  // after the first iteration) nothing below allocates.
  mask_of_into(state.p1, state.current_theta_m, s.m1);
  mask_of_into(state.p2, state.current_theta_m, s.m2);
  aerial.intensity_with_fields(s.m1, s.f1);
  aerial.intensity_with_fields(s.m2, s.f2);
  litho::resist_response_into(s.f1.intensity, litho_cfg, s.t1);
  litho::resist_response_into(s.f2.intensity, litho_cfg, s.t2);
  litho::combine_exposures_into(s.t1, s.t2, s.t);

  // Loss and dL/dT = 2 w (T - T') with optional per-pixel edge weights.
  const bool weighted = !state.loss_weights.empty();
  s.dldt.resize(s.t.height(), s.t.width());
  state.last_loss = kt.loss_grad_f64(
      s.t.data(), target.data(),
      weighted ? state.loss_weights.data() : nullptr, s.dldt.data(),
      s.t.size());

  // Through the min(): gradient flows only where T1 + T2 < 1.
  litho::combine_gradient_mask_into(s.t1, s.t2, s.gate);
  // Through the resist sigmoid: dT_i/dI_i = theta_z T_i (1 - T_i).
  litho::resist_derivative_into(s.t1, litho_cfg, s.dt1);
  litho::resist_derivative_into(s.t2, litho_cfg, s.dt2);
  s.dldi1.resize(s.t.height(), s.t.width());
  s.dldi2.resize(s.t.height(), s.t.width());
  for (std::size_t i = 0; i < s.t.size(); ++i) {
    const double upstream = s.dldt[i] * s.gate[i];
    s.dldi1[i] = upstream * s.dt1[i];
    s.dldi2[i] = upstream * s.dt2[i];
  }

  // Through the optics (adjoint convolution), then the mask sigmoid.
  aerial.backpropagate(s.dldi1, s.f1, s.g1);
  aerial.backpropagate(s.dldi2, s.f2, s.g2);
  kt.sigmoid_chain_f64(s.g1.data(), s.m1.data(), state.current_theta_m,
                       s.g1.size());
  kt.sigmoid_chain_f64(s.g2.data(), s.m2.data(), state.current_theta_m,
                       s.g2.size());

  // Max-normalized descent: the largest parameter moves exactly
  // current_step, which keeps the update scale-free w.r.t. the loss
  // magnitude and decays geometrically for convergence.
  const double g_max = std::max(kt.max_abs_f64(s.g1.data(), s.g1.size()),
                                kt.max_abs_f64(s.g2.data(), s.g2.size()));
  if (g_max > 1e-300) {
    const double scale = state.current_step / g_max;
    kt.descend_f64(state.p1.data(), s.g1.data(), scale, state.p1.size());
    kt.descend_f64(state.p2.data(), s.g2.data(), scale, state.p2.size());
  }
  state.current_step *= config_.step_decay;
  state.current_theta_m *= config_.theta_m_anneal;
  ++state.iteration;
}

litho::PrintabilityReport IltEngine::evaluate(
    const IltState& state, const layout::Layout& layout) const {
  const GridF response = simulator_.print(binarize_parameters(state.p1),
                                          binarize_parameters(state.p2));
  return simulator_.evaluate(response, layout);
}

IltResult IltEngine::optimize(const layout::Layout& layout,
                              const layout::Assignment& assignment,
                              bool abort_on_violation,
                              bool record_trajectory,
                              runtime::CancellationToken token) const {
  return optimize_impl(layout, assignment, nullptr, nullptr,
                       config_.max_iterations, abort_on_violation,
                       record_trajectory, token);
}

IltResult IltEngine::optimize_seeded(const layout::Layout& layout,
                                     const layout::Assignment& assignment,
                                     const GridF& seed_p1,
                                     const GridF& seed_p2, int max_iterations,
                                     bool abort_on_violation,
                                     bool record_trajectory,
                                     runtime::CancellationToken token) const {
  const int n = simulator_.grid_size();
  require(seed_p1.height() == n && seed_p1.width() == n &&
              seed_p2.height() == n && seed_p2.width() == n,
          "IltEngine::optimize_seeded: seed grid does not match simulator");
  require(max_iterations >= 1,
          "IltEngine::optimize_seeded: need >= 1 iteration");
  return optimize_impl(layout, assignment, &seed_p1, &seed_p2, max_iterations,
                       abort_on_violation, record_trajectory, token);
}

IltResult IltEngine::optimize_impl(const layout::Layout& layout,
                                   const layout::Assignment& assignment,
                                   const GridF* seed_p1, const GridF* seed_p2,
                                   int max_iterations,
                                   bool abort_on_violation,
                                   bool record_trajectory,
                                   runtime::CancellationToken token) const {
  static obs::Counter& runs_counter = obs::counter("ilt.runs");
  static obs::Counter& iter_counter = obs::counter("ilt.iterations");
  static obs::Counter& check_counter = obs::counter("ilt.violation_checks");
  static obs::Counter& check_hit_counter =
      obs::counter("ilt.violation_checks_failed");
  static obs::Counter& abort_counter = obs::counter("ilt.aborts");
  static obs::Counter& cancel_counter = obs::counter("ilt.cancellations");
  static obs::Histogram& iters_histogram =
      obs::histogram("ilt.iterations_run", {5, 10, 15, 20, 30, 40, 50});
  runs_counter.inc();
  fail::maybe_fail("opc.ilt.optimize", FlowStage::kIlt);

  obs::Span span("ilt.optimize");
  const GridF target =
      layout::rasterize_target(layout, simulator_.grid_size());
  IltState state = init_state(layout, assignment);
  if (seed_p1 != nullptr) {
    // Warm start: keep init_state's schedule/loss-weight setup but replace
    // the +/- initial_p fields with the learned prediction.
    static obs::Counter& seeded_counter = obs::counter("ilt.seeded_runs");
    seeded_counter.inc();
    state.p1 = *seed_p1;
    state.p2 = *seed_p2;
    span.attr("seeded", 1.0);
  }

  IltResult result;
  // One scratch for the whole run: iteration 1 warms every shape, the
  // remaining ~50 iterations run allocation-free through the pooled paths.
  IltScratch scratch;
  for (int iter = 0; iter < max_iterations; ++iter) {
    if (token.cancelled()) {
      // Wind down without finalizing: the caller is discarding this run.
      result.cancelled = true;
      cancel_counter.inc();
      span.attr("cancelled", 1.0);
      span.attr("cancel_iteration", state.iteration);
      return result;
    }
    step(state, target, scratch);
    iter_counter.inc();

    const bool check_now =
        (iter + 1 > config_.violation_check_warmup &&
         (iter + 1) % config_.violation_check_interval == 0) ||
        iter + 1 == max_iterations;
    litho::ViolationReport violations;
    if (check_now || record_trajectory) {
      // Same computation as response_of(state), but reusing the run's
      // scratch masks/response (step() overwrites them next iteration).
      mask_of_into(state.p1, state.current_theta_m, scratch.m1);
      mask_of_into(state.p2, state.current_theta_m, scratch.m2);
      simulator_.print_into(scratch.m1, scratch.m2, scratch.response);
      const GridF& response = scratch.response;
      violations = litho::detect_print_violations(
          litho::binarize(response), layout, simulator_.transform_for(layout));
      if (check_now) {
        check_counter.inc();
        if (violations.total() > 0) check_hit_counter.inc();
      }
      if (record_trajectory) {
        const litho::PrintabilityReport continuous =
            simulator_.evaluate(response, layout);
        result.trajectory.push_back({state.iteration, continuous.l2,
                                     continuous.epe.violation_count,
                                     violations.total()});
        span.row("trace", {{"iter", static_cast<double>(state.iteration)},
                           {"loss", state.last_loss},
                           {"l2", continuous.l2},
                           {"epe_violations",
                            static_cast<double>(
                                continuous.epe.violation_count)},
                           {"print_violations",
                            static_cast<double>(violations.total())}});
      } else {
        // Loss is free (already computed by step()); violation counts only
        // exist on check iterations.
        span.row("trace", {{"iter", static_cast<double>(state.iteration)},
                           {"loss", state.last_loss},
                           {"print_violations",
                            static_cast<double>(violations.total())}});
      }
    } else if (obs::tracing_enabled()) {
      span.row("trace", {{"iter", static_cast<double>(state.iteration)},
                         {"loss", state.last_loss}});
    }

    result.iterations_run = state.iteration;
    if (abort_on_violation && check_now && violations.total() > 0) {
      result.aborted_on_violation = true;
      abort_counter.inc();
      span.attr("abort_iteration", state.iteration);
      span.attr("abort_print_violations", violations.total());
      break;
    }
  }

  // Final poll before finalization: a token that fired on the last
  // iteration (typical for deadline tokens) skips the 5-threshold
  // binarize/print/evaluate sweep whose result would be discarded anyway.
  if (token.cancelled()) {
    result.cancelled = true;
    cancel_counter.inc();
    span.attr("cancelled", 1.0);
    span.attr("cancel_iteration", state.iteration);
    return result;
  }

  IltResult finalized = finalize(state, layout);
  finalized.trajectory = std::move(result.trajectory);
  finalized.iterations_run = result.iterations_run;
  finalized.aborted_on_violation = result.aborted_on_violation;

  iters_histogram.observe(finalized.iterations_run);
  span.attr("iterations_run", finalized.iterations_run);
  span.attr("aborted", finalized.aborted_on_violation ? 1.0 : 0.0);
  span.attr("final_loss", state.last_loss);
  span.attr("final_l2", finalized.report.l2);
  span.attr("final_epe_violations", finalized.report.epe.violation_count);
  span.attr("final_print_violations", finalized.report.violations.total());
  span.attr("final_score", finalized.report.score());
  return finalized;
}

IltResult IltEngine::finalize(const IltState& state,
                              const layout::Layout& layout) const {
  // Final binarization: try the configured thresholds (a cheap mask-bias
  // retarget) and keep the best-scoring manufactured mask. Each threshold
  // is an independent print+evaluate, so they run as parallel tasks; the
  // winner is then picked serially in threshold order, which preserves the
  // serial loop's strict-less tie-breaking (first best threshold wins).
  IltResult result;
  result.iterations_run = state.iteration;
  struct Candidate {
    GridF m1, m2, response;
    litho::PrintabilityReport report;
  };
  const std::size_t count = config_.binarize_thresholds.size();
  std::vector<Candidate> candidates(count);
  runtime::parallel_for(count, [&](std::size_t t) {
    Candidate& c = candidates[t];
    const double threshold = config_.binarize_thresholds[t];
    c.m1 = binarize_parameters(state.p1, threshold);
    c.m2 = binarize_parameters(state.p2, threshold);
    c.response = simulator_.print(c.m1, c.m2);
    c.report = simulator_.evaluate(c.response, layout);
  });
  bool first = true;
  double best_score = 0.0;
  for (Candidate& c : candidates) {
    const double score = c.report.score();
    if (first || score < best_score) {
      first = false;
      best_score = score;
      result.mask1 = std::move(c.m1);
      result.mask2 = std::move(c.m2);
      result.response = std::move(c.response);
      result.report = std::move(c.report);
    }
  }
  return result;
}

}  // namespace ldmo::opc
