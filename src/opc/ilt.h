// Gradient-descent inverse lithography (ILT) mask optimization for double
// patterning (Section II of the paper).
//
// Masks are parameterized by unbounded fields P via M = sigmoid(theta_m * P)
// (Eq. 1, theta_m = 8); the loss ||T - T'||^2 is differentiated through the
// resist sigmoid (Eq. 2), the DPL combination (Eq. 3) and the Hopkins/SOCS
// optics, and P descends the (per-iteration max-normalized) gradient.
//
// The engine exposes a resumable IltState so callers can run partial
// optimizations: the paper's flow checks print violations every 3 iterations
// and aborts, and the ICCAD'17 greedy baseline prunes a candidate pool on
// intermediate printability.
#pragma once

#include <vector>

#include "layout/layout.h"
#include "litho/simulator.h"
#include "runtime/cancellation.h"

namespace ldmo::opc {

/// ILT hyperparameters. Defaults follow the paper where it pins them.
struct IltConfig {
  double theta_m = 8.0;       ///< mask sigmoid slope (Eq. 1)
  /// The paper's engine converges in 29 iterations; our from-scratch
  /// substrate needs a gentler annealing schedule and reaches the same
  /// quality plateau at 50 (measured in the hyperparameter sweep recorded
  /// in EXPERIMENTS.md). The violation-check cadence stays the paper's.
  int max_iterations = 50;
  int violation_check_interval = 3;  ///< paper: check prints every 3 iters
  /// Iterations before the first violation check. During the early anneal
  /// phase the continuous masks transiently bridge/pinch even for good
  /// decompositions; checking from iteration 1 (as a naive reading of the
  /// paper would) aborts candidates that converge fine. The final-quality
  /// check cadence is unchanged once past the warmup.
  int violation_check_warmup = 12;
  double step_size = 0.3;     ///< max |delta P| per iteration
  double step_decay = 1.0;    ///< geometric per-iteration step decay
  double initial_p = 0.25;    ///< +/- P init inside/outside patterns
  /// Progressive binarization: theta_m is multiplied by this factor each
  /// iteration, steepening the mask sigmoid so the continuous mask
  /// approaches the manufactured binary mask by the final iteration
  /// (removes the classic ILT continuous-to-binary quality gap).
  double theta_m_anneal = 1.045;
  /// Binarization thresholds (on P) tried at the end of optimize(); the one
  /// with the best Eq. 9 score wins. Mimics final mask-bias retargeting.
  std::vector<double> binarize_thresholds = {-0.1, -0.05, 0.0, 0.05, 0.1};
  /// Edge-weighted loss (extension, 0 = the paper's plain L2): pixels on
  /// target edges — where EPE is measured — get loss weight
  /// (1 + edge_weight); interiors stay at 1. Focuses the optimizer on the
  /// contour instead of bulk area.
  double edge_weight = 0.0;
};

/// Resumable optimization state: the two parameter fields plus bookkeeping.
struct IltState {
  GridF p1;
  GridF p2;
  int iteration = 0;
  double current_step = 0.0;
  double current_theta_m = 0.0;
  double last_loss = 0.0;
  /// Per-pixel loss weights (empty unless edge weighting is enabled).
  GridF loss_weights;
};

/// Reusable scratch for step(): every intermediate grid of one gradient
/// iteration (masks, aerial fields, resist responses, adjoint buffers).
/// optimize() owns one per run and threads it through all ~50 iterations,
/// so after the first iteration warms the shapes, the loop performs zero
/// heap allocations in the pooled paths. All members are plain outputs —
/// fully overwritten each step — so a default-constructed IltScratch is
/// always valid input.
struct IltScratch {
  GridF m1, m2;                    ///< Eq. 1 continuous masks
  litho::AerialFields f1, f2;      ///< per-kernel fields for the adjoint
  GridF t1, t2, t;                 ///< resist responses + combined print
  GridF dldt, gate, dt1, dt2;      ///< loss/resist derivative chain
  GridF dldi1, dldi2;              ///< dL/dI per exposure
  GridF g1, g2;                    ///< parameter gradients
  GridF response;                  ///< violation-check / trajectory print
};

/// Per-iteration metrology snapshot (drives Fig. 1(b) trajectories).
struct IltIterationStats {
  int iteration = 0;
  double l2 = 0.0;
  int epe_violations = 0;
  int print_violations = 0;
};

/// Final result of an optimize() run.
struct IltResult {
  GridF mask1;  ///< binarized final mask (0/1)
  GridF mask2;
  GridF response;  ///< combined resist response of the binarized masks
  litho::PrintabilityReport report;  ///< metrology of `response`
  std::vector<IltIterationStats> trajectory;
  int iterations_run = 0;
  bool aborted_on_violation = false;
  /// True when optimize() was cancelled through its token: the run wound
  /// down before finalization, so masks/report are NOT populated and the
  /// caller must discard the result.
  bool cancelled = false;
};

/// Double-patterning ILT engine bound to one lithography simulator.
class IltEngine {
 public:
  /// Keeps references; both must outlive the engine.
  IltEngine(const litho::LithoSimulator& simulator, IltConfig config = {});

  const IltConfig& config() const { return config_; }

  /// Initializes P fields from a decomposition: +initial_p inside a mask's
  /// patterns, -initial_p elsewhere.
  IltState init_state(const layout::Layout& layout,
                      const layout::Assignment& assignment) const;

  /// One gradient-descent iteration (updates `state` in place; the loss
  /// before the update lands in state.last_loss).
  void step(IltState& state, const GridF& target) const;

  /// Scratch-reusing variant: identical arithmetic, but all intermediates
  /// live in `scratch` so repeated calls with the same shapes allocate
  /// nothing. The convenience overload above is a thin wrapper over this.
  void step(IltState& state, const GridF& target, IltScratch& scratch) const;

  /// Current continuous-mask response without updating (for evaluation).
  GridF response_of(const IltState& state) const;

  /// Metrology of the current state using binarized masks.
  litho::PrintabilityReport evaluate(const IltState& state,
                                     const layout::Layout& layout) const;

  /// Final binarization of a state: tries the configured thresholds and
  /// returns the best-scoring manufactured masks with full metrology.
  /// trajectory/iteration fields of the result reflect `state` only.
  IltResult finalize(const IltState& state,
                     const layout::Layout& layout) const;

  /// Full optimization loop.
  ///
  /// `abort_on_violation`: stop early when the periodic (every
  /// violation_check_interval iterations) print-violation check fires —
  /// the LDMO flow uses this to fall back to another decomposition.
  /// `record_trajectory`: capture per-iteration stats (costs one EPE
  /// measurement per iteration).
  /// `token`: cooperative cancellation, polled once per iteration — the
  /// speculative flow uses it to stop attempts a better-ranked candidate
  /// has already beaten. A cancelled result has `cancelled = true` and no
  /// finalized masks.
  IltResult optimize(const layout::Layout& layout,
                     const layout::Assignment& assignment,
                     bool abort_on_violation = false,
                     bool record_trajectory = false,
                     runtime::CancellationToken token = {}) const;

  /// Warm-started optimization: identical loop, but the P fields start from
  /// caller-provided seeds (e.g. the `warmstart` MaskNet prediction) instead
  /// of the +/- initial_p raster, and the iteration budget can be cut below
  /// config().max_iterations. Seeds must match the simulator grid. The
  /// annealing/step schedules and violation-check cadence are unchanged, so
  /// a seeded run with max_iterations == config().max_iterations and
  /// +/-initial_p seeds is bit-identical to optimize().
  IltResult optimize_seeded(const layout::Layout& layout,
                            const layout::Assignment& assignment,
                            const GridF& seed_p1, const GridF& seed_p2,
                            int max_iterations,
                            bool abort_on_violation = false,
                            bool record_trajectory = false,
                            runtime::CancellationToken token = {}) const;

  /// Binarizes a parameter field into a 0/1 mask grid (P >= threshold -> 1).
  GridF binarize_parameters(const GridF& p, double threshold = 0.0) const;

 private:
  /// Shared loop behind optimize()/optimize_seeded(). `seed_p1/p2` null for
  /// the paper-faithful cold init.
  IltResult optimize_impl(const layout::Layout& layout,
                          const layout::Assignment& assignment,
                          const GridF* seed_p1, const GridF* seed_p2,
                          int max_iterations, bool abort_on_violation,
                          bool record_trajectory,
                          runtime::CancellationToken token) const;
  GridF mask_of(const GridF& p, double theta_m) const;  ///< Eq. 1 sigmoid
  /// Out-param Eq. 1 sigmoid: reshapes and fully overwrites `out`.
  void mask_of_into(const GridF& p, double theta_m, GridF& out) const;

  const litho::LithoSimulator& simulator_;
  IltConfig config_;
};

}  // namespace ldmo::opc
