// Sliding-window SLO statistics: a background sampler that snapshots the
// metrics registry at a fixed interval and keeps a ring of recent
// snapshots, so a live server can answer "what happened over the last N
// seconds" — rolling latency quantiles, per-stage error rates, queue-depth
// and cache-hit timelines — without ever touching the metric hot path
// (instrumentation sites stay one relaxed atomic op; all aggregation runs
// on the sampler and scrape threads).
//
// Window aggregates difference the newest retained snapshot against the
// oldest, so counter rates and histogram quantiles cover only the window,
// not process lifetime. timeline() exposes the per-interval deltas for
// sparkline-style consumers (/varz, dashboards).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/exporter.h"
#include "obs/metrics.h"

namespace ldmo::obs {

struct WindowConfig {
  double interval_seconds = 1.0;
  /// Intervals retained; the window spans capacity * interval_seconds.
  std::size_t capacity = 30;
  /// Invoked before every sample (e.g. runtime::publish_metrics, which the
  /// obs layer cannot call itself without a dependency cycle).
  std::function<void()> pre_sample;
};

/// One retained interval: when it ended (seconds since sampler start) and
/// what changed during it.
struct IntervalSample {
  double t = 0.0;        ///< interval end, seconds since sampler start
  SnapshotDelta delta;   ///< vs the previous sample
};

class WindowSampler {
 public:
  /// Samples `reg` (default: the process-wide registry()).
  explicit WindowSampler(WindowConfig config, Registry* reg = nullptr);
  ~WindowSampler();  ///< stops the thread

  WindowSampler(const WindowSampler&) = delete;
  WindowSampler& operator=(const WindowSampler&) = delete;

  /// Spawns the background thread (idempotent).
  void start();
  /// Stops and joins it (idempotent; safe without start()).
  void stop();

  /// Takes one sample now — the background tick, also callable directly
  /// (tests, or callers that drive their own cadence).
  void sample_now();

  /// Snapshots retained (the window is samples()-1 intervals wide).
  std::size_t samples() const;
  /// Seconds between the oldest and newest retained snapshots.
  double window_seconds() const;

  /// Counter rate (per second) across the whole window; 0 when unknown.
  double counter_rate(const std::string& name) const;
  /// Summed window rate of counters whose names start with `prefix`.
  double counter_rate_prefix(const std::string& prefix) const;
  /// Window-wide counter delta (not divided by time).
  long long counter_delta(const std::string& name) const;
  long long counter_delta_prefix(const std::string& prefix) const;
  /// Newest sampled gauge value; 0 when the gauge has never been sampled.
  double latest_gauge(const std::string& name) const;
  /// Quantile of observations recorded during the window (newest-vs-oldest
  /// histogram delta through HistogramSample::quantile).
  double quantile(const std::string& histogram_name, double q) const;

  /// Per-interval deltas, oldest first.
  std::vector<IntervalSample> timeline() const;
  /// Newest retained snapshot (empty before the first sample).
  MetricsSnapshot latest() const;

 private:
  struct Entry {
    std::chrono::steady_clock::time_point when;
    double t = 0.0;
    MetricsSnapshot snapshot;
  };

  SnapshotDelta window_delta_locked() const;  ///< newest vs oldest
  void run();

  const WindowConfig config_;
  Registry* const registry_;
  const std::chrono::steady_clock::time_point start_;

  mutable std::mutex mu_;
  std::deque<Entry> entries_;  ///< capacity_+1 snapshots = capacity_ intervals

  std::mutex thread_mu_;
  std::condition_variable stop_cv_;
  std::thread thread_;
  bool stopping_ = false;
};

}  // namespace ldmo::obs
