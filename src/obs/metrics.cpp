#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

namespace ldmo::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<long long>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<long long> Histogram::bucket_counts() const {
  std::vector<long long> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const CounterSample* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const CounterSample& s : counters)
    if (s.name == name) return &s;
  return nullptr;
}

const GaugeSample* MetricsSnapshot::find_gauge(const std::string& name) const {
  for (const GaugeSample& s : gauges)
    if (s.name == name) return &s;
  return nullptr;
}

const HistogramSample* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const HistogramSample& s : histograms)
    if (s.name == name) return &s;
  return nullptr;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    snap.histograms.push_back(
        {name, h->bounds(), h->bucket_counts(), h->count(), h->sum()});
  return snap;  // std::map iteration is already name-sorted
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlive all users
  return *instance;
}

}  // namespace ldmo::obs
