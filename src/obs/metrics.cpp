#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace ldmo::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  buckets_ = std::make_unique<std::atomic<long long>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const std::size_t idx = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<long long> Histogram::bucket_counts() const {
  std::vector<long long> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSample::quantile(double q) const {
  if (count <= 0 || bounds.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(count);
  long long cumulative = 0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank && buckets[i] > 0) {
      const double lower = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
      const double upper = bounds[i];
      const double into_bucket =
          rank - static_cast<double>(cumulative - buckets[i]);
      return lower +
             (upper - lower) * into_bucket / static_cast<double>(buckets[i]);
    }
  }
  return bounds.back();  // rank lies in the overflow bucket
}

HistogramSample histogram_delta(const HistogramSample& newer,
                                const HistogramSample& older) {
  if (newer.bounds != older.bounds) return newer;
  HistogramSample delta = newer;
  for (std::size_t i = 0; i < delta.buckets.size(); ++i)
    delta.buckets[i] = std::max(0LL, newer.buckets[i] - older.buckets[i]);
  delta.count = std::max(0LL, newer.count - older.count);
  delta.sum = std::max(0.0, newer.sum - older.sum);
  return delta;
}

const CounterSample* MetricsSnapshot::find_counter(
    const std::string& name) const {
  for (const CounterSample& s : counters)
    if (s.name == name) return &s;
  return nullptr;
}

const GaugeSample* MetricsSnapshot::find_gauge(const std::string& name) const {
  for (const GaugeSample& s : gauges)
    if (s.name == name) return &s;
  return nullptr;
}

const HistogramSample* MetricsSnapshot::find_histogram(
    const std::string& name) const {
  for (const HistogramSample& s : histograms)
    if (s.name == name) return &s;
  return nullptr;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_locked(name);
}

Counter& Registry::counter_locked(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  } else if (slot->bounds() != upper_bounds) {
    counter_locked("obs.histogram.bounds_mismatch").inc();
    std::fprintf(stderr,
                 "obs: histogram '%s' re-registered with different bounds; "
                 "keeping the original buckets\n",
                 name.c_str());
  }
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_)
    snap.histograms.push_back(
        {name, h->bounds(), h->bucket_counts(), h->count(), h->sum()});
  return snap;  // std::map iteration is already name-sorted
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: outlive all users
  return *instance;
}

}  // namespace ldmo::obs
