#include "obs/flight_recorder.h"

#include <algorithm>

#include "obs/json.h"

namespace ldmo::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)),
      slots_(std::make_unique<Slot[]>(capacity_)),
      start_(std::chrono::steady_clock::now()) {}

void FlightRecorder::record(FlightEvent event) {
  const std::uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  event.sequence = seq + 1;
  event.t = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_)
                .count();
  Slot& slot = slots_[seq % capacity_];
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.event = event;
  slot.filled = true;
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> events;
  events.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[i];
    std::lock_guard<std::mutex> lock(slot.mu);
    if (slot.filled) events.push_back(slot.event);
  }
  std::sort(events.begin(), events.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.sequence < b.sequence;
            });
  return events;
}

std::string FlightRecorder::to_json() const {
  const std::vector<FlightEvent> events = snapshot();
  JsonWriter w;
  w.begin_object();
  w.kv("capacity", static_cast<long long>(capacity_));
  w.kv("recorded", static_cast<unsigned long long>(recorded()));
  w.key("events");
  w.begin_array();
  for (const FlightEvent& e : events) {
    w.begin_object();
    w.kv("seq", static_cast<unsigned long long>(e.sequence));
    w.kv("id", static_cast<unsigned long long>(e.id));
    w.kv("t", e.t);
    w.kv("status", e.status);
    w.kv("queue_seconds", e.queue_seconds);
    w.kv("total_seconds", e.total_seconds);
    w.kv("attempts", e.attempts);
    if (e.degraded) w.kv("degraded", true);
    if (e.stage[0] != '\0') w.kv("stage", e.stage);
    if (e.error[0] != '\0') w.kv("error", e.error);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace ldmo::obs
