// Chrome trace-event JSON export of finished span trees, loadable in
// chrome://tracing and Perfetto (ui.perfetto.dev).
//
// SpanNode stores durations only, not start timestamps, so the exporter
// synthesizes a timeline: each root tree starts at t=0 on its own track
// (tid = root index + 1), and children are laid end-to-end from their
// parent's start in recorded order. Sibling gaps ("self time") therefore
// collapse to zero — the visualization is exact in durations and nesting,
// approximate in absolute offsets. Span attributes export as event args;
// series export as their row count (the full rows stay in the RunReport).
#pragma once

#include <string>
#include <vector>

#include "obs/span.h"

namespace ldmo::obs {

/// Renders `roots` as a Chrome trace JSON document ("traceEvents" array of
/// complete "X" events, microsecond units).
std::string to_chrome_trace(const std::vector<SpanNode>& roots);

}  // namespace ldmo::obs
