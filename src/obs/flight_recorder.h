// Flight recorder: a fixed-capacity ring of recent request events for
// postmortems. The server records one event per terminal response; on a
// failure (and at shutdown) the ring is dumped as JSON, so the last N
// requests leading up to an incident are always recoverable.
//
// The record path is lock-minimal: one relaxed fetch_add claims a slot,
// then a per-slot mutex guards the field copy — writers only contend when
// the ring wraps fast enough that two of them land on the same slot, and
// readers (snapshot/dump on the admin thread) take each slot lock for one
// trivially-copyable struct copy. Events hold fixed-size char buffers, not
// std::string, so recording never allocates.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ldmo::obs {

/// One recorded request outcome. `status`/`stage` are short caller-chosen
/// tags (e.g. "failed" / "ilt"); `error` is truncated to fit.
struct FlightEvent {
  std::uint64_t sequence = 0;  ///< 1-based global record order (set by ring)
  std::uint64_t id = 0;        ///< caller's request id
  double t = 0.0;              ///< seconds since recorder construction
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
  int attempts = 1;
  bool degraded = false;
  char status[24] = {};
  char stage[24] = {};
  char error[104] = {};

  /// Truncating setters for the fixed-size tag buffers.
  void set_status(const char* s) { copy_tag(status, sizeof status, s); }
  void set_stage(const char* s) { copy_tag(stage, sizeof stage, s); }
  void set_error(const std::string& s) {
    copy_tag(error, sizeof error, s.c_str());
  }

 private:
  static void copy_tag(char* dst, std::size_t cap, const char* src) {
    std::strncpy(dst, src, cap - 1);
    dst[cap - 1] = '\0';
  }
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  /// Records `event` (sequence and t are stamped here). Never allocates.
  void record(FlightEvent event);

  /// The retained events, oldest first. Taken under per-slot locks, so a
  /// snapshot racing the ring wrapping may miss a just-overwritten slot —
  /// it is a postmortem view, not a transaction.
  std::vector<FlightEvent> snapshot() const;

  /// {"capacity":N,"recorded":M,"events":[...]} via JsonWriter.
  std::string to_json() const;

  std::size_t capacity() const { return capacity_; }
  /// Total events ever recorded (recorded - capacity have been overwritten).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot {
    mutable std::mutex mu;
    FlightEvent event;
    bool filled = false;
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  const std::chrono::steady_clock::time_point start_;
};

}  // namespace ldmo::obs
