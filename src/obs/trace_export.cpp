#include "obs/trace_export.h"

#include "obs/json.h"

namespace ldmo::obs {

namespace {

constexpr double kMicros = 1e6;

void write_events(JsonWriter& w, const SpanNode& node, double start_us,
                  int tid) {
  w.begin_object();
  w.kv("name", node.name);
  w.kv("cat", "ldmo");
  w.kv("ph", "X");
  w.kv("ts", start_us);
  w.kv("dur", node.seconds * kMicros);
  w.kv("pid", 1);
  w.kv("tid", tid);
  if (!node.num_attrs.empty() || !node.str_attrs.empty() ||
      !node.series.empty()) {
    w.key("args");
    w.begin_object();
    for (const auto& [k, v] : node.num_attrs) w.kv(k, v);
    for (const auto& [k, v] : node.str_attrs) w.kv(k, v);
    for (const auto& [name, rows] : node.series)
      w.kv("series." + name + ".rows", static_cast<long long>(rows.size()));
    w.end_object();
  }
  w.end_object();

  double child_start = start_us;
  for (const SpanNode& child : node.children) {
    write_events(w, child, child_start, tid);
    child_start += child.seconds * kMicros;
  }
}

}  // namespace

std::string to_chrome_trace(const std::vector<SpanNode>& roots) {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (std::size_t i = 0; i < roots.size(); ++i)
    write_events(w, roots[i], 0.0, static_cast<int>(i) + 1);
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.str();
}

}  // namespace ldmo::obs
