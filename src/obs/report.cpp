#include "obs/report.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <mutex>
#include <stdexcept>

namespace ldmo::obs {

std::string iso8601_utc_now() {
  using namespace std::chrono;
  const system_clock::time_point now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis);
  return buf;
}

void write_span_json(JsonWriter& w, const SpanNode& node) {
  w.begin_object();
  w.kv("name", node.name);
  w.kv("seconds", node.seconds);
  if (!node.num_attrs.empty() || !node.str_attrs.empty()) {
    w.key("attrs");
    w.begin_object();
    for (const auto& [k, v] : node.num_attrs) w.kv(k, v);
    for (const auto& [k, v] : node.str_attrs) w.kv(k, v);
    w.end_object();
  }
  if (!node.series.empty()) {
    w.key("series");
    w.begin_object();
    for (const auto& [name, rows] : node.series) {
      w.key(name);
      w.begin_array();
      for (const SpanNode::SeriesRow& row : rows) {
        w.begin_object();
        for (const auto& [k, v] : row.cells) w.kv(k, v);
        w.end_object();
      }
      w.end_array();
    }
    w.end_object();
  }
  if (!node.children.empty()) {
    w.key("children");
    w.begin_array();
    for (const SpanNode& child : node.children) write_span_json(w, child);
    w.end_array();
  }
  w.end_object();
}

void write_metrics_json(JsonWriter& w, const MetricsSnapshot& snapshot) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const CounterSample& c : snapshot.counters) w.kv(c.name, c.value);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const GaugeSample& g : snapshot.gauges) w.kv(g.name, g.value);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const HistogramSample& h : snapshot.histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (double b : h.bounds) w.value(b);
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (long long b : h.buckets) w.value(b);
    w.end_array();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

namespace {
std::mutex g_global_meta_mu;
std::vector<std::pair<std::string, std::string>>& global_meta() {
  static std::vector<std::pair<std::string, std::string>> meta;
  return meta;
}
}  // namespace

void RunReport::meta(const std::string& key, const std::string& value) {
  meta_.emplace_back(key, value);
}

void RunReport::set_global_meta(const std::string& key,
                                const std::string& value) {
  std::lock_guard<std::mutex> lock(g_global_meta_mu);
  for (auto& [k, v] : global_meta()) {
    if (k == key) {
      v = value;
      return;
    }
  }
  global_meta().emplace_back(key, value);
}

void RunReport::section(const std::string& key,
                        std::function<void(JsonWriter&)> emit) {
  sections_.emplace_back(key, std::move(emit));
}

std::string RunReport::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("tool", tool_);
  w.kv("generated_at", iso8601_utc_now());
  w.key("meta");
  w.begin_object();
  {
    std::lock_guard<std::mutex> lock(g_global_meta_mu);
    for (const auto& [k, v] : global_meta()) {
      bool overridden = false;
      for (const auto& [ik, iv] : meta_) {
        if (ik == k) {
          overridden = true;
          break;
        }
      }
      if (!overridden) w.kv(k, v);
    }
  }
  for (const auto& [k, v] : meta_) w.kv(k, v);
  w.end_object();
  w.key("metrics");
  write_metrics_json(w, registry().snapshot());
  w.key("spans");
  w.begin_array();
  for (const SpanNode& root : tracer().snapshot()) write_span_json(w, root);
  w.end_array();
  for (const auto& [key, emit] : sections_) {
    w.key(key);
    emit(w);
  }
  w.end_object();
  return w.str();
}

void RunReport::write(const std::string& path) const {
  const std::string json = to_json();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("RunReport: cannot open " + path);
  out << json << '\n';
  if (!out) throw std::runtime_error("RunReport: write failed for " + path);
}

}  // namespace ldmo::obs
