// Minimal hand-rolled JSON: a streaming writer (report emission) and a
// small recursive-descent parser (report validation, round-trip tests).
// No external dependencies — the observability layer must stay loadable
// from every module without pulling anything in.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ldmo::obs {

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(const std::string& s);

/// Shortest decimal form of `v` that parses back to the same double.
/// Non-finite values render as "null" (JSON has no NaN/Inf).
std::string json_number(double v);

/// Streaming JSON writer with automatic comma/nesting management.
///
///   JsonWriter w;
///   w.begin_object();
///   w.kv("name", "ilt");
///   w.key("trace"); w.begin_array(); w.value(1.5); w.end_array();
///   w.end_object();
///   w.str();  // {"name":"ilt","trace":[1.5]}
class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by exactly one value or container.
  void key(const std::string& k);

  void value(double v);
  void value(long long v);
  void value(int v) { value(static_cast<long long>(v)); }
  void value(unsigned long long v);
  void value(bool v);
  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void null();

  /// key() + value() in one call.
  template <typename T>
  void kv(const std::string& k, const T& v) {
    key(k);
    value(v);
  }

  /// Finished document. Valid once every container has been closed.
  const std::string& str() const { return out_; }

 private:
  void separate();  ///< emits ',' between siblings

  struct Level {
    char container;  // 'o' or 'a'
    int members = 0;
  };
  std::string out_;
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

/// Parsed JSON document node (object member order preserved).
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  /// First member named `key` (objects only); nullptr when absent.
  const JsonValue* find(const std::string& key) const;

  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_number() const { return type == Type::Number; }
  bool is_string() const { return type == Type::String; }
};

/// Parses a complete JSON document; throws std::runtime_error (with byte
/// offset) on malformed input or trailing garbage.
JsonValue parse_json(const std::string& text);

}  // namespace ldmo::obs
