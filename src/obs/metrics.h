// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms with relaxed-atomic hot paths and snapshot-on-read.
//
// Increment cost is one relaxed fetch_add; the registry mutex is only taken
// on first lookup of a name (hot paths cache the returned reference in a
// function-local static) and on snapshot()/reset().
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ldmo::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void inc(long long delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  long long value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long long> value_{0};
};

/// Last-write-wins floating-point metric.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
/// extra overflow bucket counts the rest. Bounds are fixed at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<long long> bucket_counts() const;
  long long count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;  ///< ascending upper bounds
  std::unique_ptr<std::atomic<long long>[]> buckets_;  ///< bounds+1 slots
  std::atomic<long long> count_{0};
  std::atomic<double> sum_{0.0};
};

struct CounterSample {
  std::string name;
  long long value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<long long> buckets;  ///< bounds.size() + 1 (overflow last)
  long long count = 0;
  double sum = 0.0;

  /// Estimated q-quantile (q clamped to [0,1]) by linear interpolation
  /// within the bucket holding rank q*count, assuming observations are
  /// uniformly distributed inside each bucket. The first bucket's lower
  /// edge is min(0, bounds[0]); a rank landing in the overflow bucket
  /// clamps to the largest finite bound (its upper edge is unknown).
  /// Returns 0.0 for an empty histogram.
  double quantile(double q) const;
};

/// Per-interval histogram: `newer - older` bucket-wise (deltas clamped to
/// >= 0, so a reset between samples degrades to the newer sample alone).
/// When the bounds differ (the histogram was re-registered), `newer` is
/// returned unchanged — there is no meaningful delta across a re-bucketing.
HistogramSample histogram_delta(const HistogramSample& newer,
                                const HistogramSample& older);

/// Consistent point-in-time copy of every registered metric, name-sorted.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* find_counter(const std::string& name) const;
  const GaugeSample* find_gauge(const std::string& name) const;
  const HistogramSample* find_histogram(const std::string& name) const;
};

/// Name -> metric map. Returned references stay valid for the registry's
/// lifetime (metrics are never unregistered, only reset).
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers with `upper_bounds` on first use; later calls for the same
  /// name return the existing histogram. Re-registering with different
  /// bounds keeps the original buckets but is no longer silent: each
  /// mismatch increments the "obs.histogram.bounds_mismatch" counter and
  /// warns on stderr, so a site observing into unexpected buckets shows up
  /// in every snapshot instead of hiding.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (registrations survive; references stay valid).
  void reset();

 private:
  Counter& counter_locked(const std::string& name);  ///< mu_ already held

  mutable std::mutex mu_;  ///< guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry every instrumentation site reports into.
Registry& registry();

/// Shorthands for the common `registry().x(name)` pattern.
inline Counter& counter(const std::string& name) {
  return registry().counter(name);
}
inline Gauge& gauge(const std::string& name) {
  return registry().gauge(name);
}
inline Histogram& histogram(const std::string& name,
                            std::vector<double> upper_bounds) {
  return registry().histogram(name, std::move(upper_bounds));
}

}  // namespace ldmo::obs
