#include "obs/exporter.h"

#include <cctype>

#include "obs/json.h"

namespace ldmo::obs {

namespace {

void append_value(std::string& out, double v) { out += json_number(v); }

void append_value(std::string& out, long long v) {
  out += std::to_string(v);
}

}  // namespace

std::string openmetrics_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0])))
    out += '_';
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                    c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_openmetrics(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    const std::string name = openmetrics_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + "_total ";
    append_value(out, c.value);
    out += '\n';
  }
  for (const GaugeSample& g : snapshot.gauges) {
    const std::string name = openmetrics_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ';
    append_value(out, g.value);
    out += '\n';
  }
  for (const HistogramSample& h : snapshot.histograms) {
    const std::string name = openmetrics_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    long long cumulative = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cumulative += h.buckets[i];
      out += name + "_bucket{le=\"" + json_number(h.bounds[i]) + "\"} ";
      append_value(out, cumulative);
      out += '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    append_value(out, h.count);
    out += '\n';
    out += name + "_sum ";
    append_value(out, h.sum);
    out += '\n';
    out += name + "_count ";
    append_value(out, h.count);
    out += '\n';
  }
  out += "# EOF\n";
  return out;
}

const CounterDelta* SnapshotDelta::find_counter(
    const std::string& name) const {
  for (const CounterDelta& c : counters)
    if (c.name == name) return &c;
  return nullptr;
}

const HistogramSample* SnapshotDelta::find_histogram(
    const std::string& name) const {
  for (const HistogramSample& h : histograms)
    if (h.name == name) return &h;
  return nullptr;
}

double SnapshotDelta::rate(const std::string& name) const {
  const CounterDelta* c = find_counter(name);
  return c ? c->per_second : 0.0;
}

double SnapshotDelta::rate_prefix(const std::string& prefix) const {
  double total = 0.0;
  for (const CounterDelta& c : counters)
    if (c.name.compare(0, prefix.size(), prefix) == 0) total += c.per_second;
  return total;
}

SnapshotDelta diff_snapshots(const MetricsSnapshot& newer,
                             const MetricsSnapshot& older, double seconds) {
  SnapshotDelta delta;
  delta.seconds = seconds;
  delta.counters.reserve(newer.counters.size());
  for (const CounterSample& c : newer.counters) {
    const CounterSample* before = older.find_counter(c.name);
    const long long prev = before ? before->value : 0;
    CounterDelta d;
    d.name = c.name;
    d.delta = c.value >= prev ? c.value - prev : c.value;  // reset-restart
    d.per_second =
        seconds > 0.0 ? static_cast<double>(d.delta) / seconds : 0.0;
    delta.counters.push_back(std::move(d));
  }
  delta.gauges = newer.gauges;
  delta.histograms.reserve(newer.histograms.size());
  for (const HistogramSample& h : newer.histograms) {
    const HistogramSample* before = older.find_histogram(h.name);
    delta.histograms.push_back(before ? histogram_delta(h, *before) : h);
  }
  return delta;
}

}  // namespace ldmo::obs
