#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ldmo::obs {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);  // UTF-8 passes through untouched
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  // Integers up to 2^53 print exactly without an exponent or fraction.
  if (v == std::floor(v) && std::abs(v) < 9007199254740992.0) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  // Shortest form that round-trips: try increasing precision.
  char buf[40];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

void JsonWriter::separate() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair, no comma
  }
  if (!stack_.empty() && stack_.back().members > 0) out_ += ',';
  if (!stack_.empty()) ++stack_.back().members;
}

void JsonWriter::begin_object() {
  separate();
  out_ += '{';
  stack_.push_back({'o', 0});
}

void JsonWriter::end_object() {
  stack_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  separate();
  out_ += '[';
  stack_.push_back({'a', 0});
}

void JsonWriter::end_array() {
  stack_.pop_back();
  out_ += ']';
}

void JsonWriter::key(const std::string& k) {
  if (!stack_.empty() && stack_.back().members > 0) out_ += ',';
  if (!stack_.empty()) ++stack_.back().members;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
}

void JsonWriter::value(double v) {
  separate();
  out_ += json_number(v);
}

void JsonWriter::value(long long v) {
  separate();
  out_ += std::to_string(v);
}

void JsonWriter::value(unsigned long long v) {
  separate();
  out_ += std::to_string(v);
}

void JsonWriter::value(bool v) {
  separate();
  out_ += v ? "true" : "false";
}

void JsonWriter::value(const std::string& v) {
  separate();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::null() {
  separate();
  out_ += "null";
}

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

// Recursive-descent parser over a raw string view.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': {
        v.type = JsonValue::Type::Object;
        ++pos_;
        skip_ws();
        if (peek() == '}') { ++pos_; return v; }
        while (true) {
          skip_ws();
          std::string key = parse_string_body();
          skip_ws();
          expect(':');
          v.object.emplace_back(std::move(key), parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') { ++pos_; continue; }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = JsonValue::Type::Array;
        ++pos_;
        skip_ws();
        if (peek() == ']') { ++pos_; return v; }
        while (true) {
          v.array.push_back(parse_value(depth + 1));
          skip_ws();
          if (peek() == ',') { ++pos_; continue; }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = JsonValue::Type::String;
        v.string = parse_string_body();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type = JsonValue::Type::Bool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type = JsonValue::Type::Bool;
        v.boolean = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.type = JsonValue::Type::Null;
        return v;
      default:
        v.type = JsonValue::Type::Number;
        v.number = parse_number();
        return v;
    }
  }

  std::string parse_string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') { out += c; continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are rare in our
          // reports; unpaired surrogates encode as-is, matching lenient
          // validators).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("malformed number");
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("malformed fraction");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        fail("malformed exponent");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    return std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
  }

  static constexpr int kMaxDepth = 128;
  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return Parser(text).parse_document();
}

}  // namespace ldmo::obs
