// Span-based tracing: RAII, nestable, thread-aware. A full LdmoFlow::run
// produces a tree (generate -> predict -> per-candidate ILT attempt ->
// per-violation-check); finished root spans accumulate in the global
// Tracer until snapshot()/clear().
//
// Collection is off by default: a Span constructed while tracing is
// disabled still measures wall time (so PhaseTimer keeps working) but
// allocates nothing and records nothing. Spans nest per thread; a span
// opened on a worker thread roots its own tree.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ldmo::obs {

/// One named, timed node in a finished span tree. Value-semantic so
/// snapshots are plain copies.
struct SpanNode {
  /// One sparse sample row inside a named series (e.g. an ILT iteration:
  /// {"iter": 7, "loss": 123.4, "print_violations": 0}).
  struct SeriesRow {
    std::vector<std::pair<std::string, double>> cells;
    const double* find(const std::string& key) const;
  };

  std::string name;
  double seconds = 0.0;
  std::vector<std::pair<std::string, double>> num_attrs;
  std::vector<std::pair<std::string, std::string>> str_attrs;
  /// Named per-span sample series (ILT iteration traces, trainer epochs).
  std::vector<std::pair<std::string, std::vector<SeriesRow>>> series;
  std::vector<SpanNode> children;

  /// First direct child named `child_name`; nullptr when absent.
  const SpanNode* find(const std::string& child_name) const;
  /// Direct children named `child_name`.
  std::vector<const SpanNode*> find_all(const std::string& child_name) const;
  const double* find_num_attr(const std::string& key) const;
  const std::vector<SeriesRow>* find_series(const std::string& key) const;
  /// Nodes in this subtree (including this one).
  int tree_size() const;
};

/// Globally enables/disables span collection. Cheap relaxed-atomic read on
/// every Span construction.
void set_tracing_enabled(bool enabled);
bool tracing_enabled();

/// RAII span. Nesting follows scope: a Span constructed while another is
/// live on the same thread becomes its child.
class Span {
 public:
  explicit Span(std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Wall seconds since construction (live) or total duration (finished).
  double seconds() const;

  /// Attributes and series rows are dropped when tracing is disabled.
  void attr(const std::string& key, double value);
  void attr(const std::string& key, const std::string& value);
  void row(const std::string& series_name,
           std::initializer_list<std::pair<const char*, double>> cells);

  /// Ends the span early (idempotent; the destructor calls it too).
  void finish();

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  double finished_seconds_ = -1.0;
  SpanNode* node_ = nullptr;  ///< null when tracing was off at construction
};

/// While alive on a thread, span collection on that thread is isolated:
/// previously live spans are hidden (new spans root fresh) and finished
/// root trees land in `roots` instead of the global Tracer. The runtime
/// wraps every task body in one of these so a task's spans can be shipped
/// back to the submitting thread and grafted under the caller's live span
/// in deterministic (submission) order — direct child attachment from
/// worker threads would race on the parent's children vector.
///
/// No-op (nothing hidden, nothing captured) while tracing is disabled.
class SpanCapture {
 public:
  SpanCapture();
  ~SpanCapture();
  SpanCapture(const SpanCapture&) = delete;
  SpanCapture& operator=(const SpanCapture&) = delete;

  /// Finished root trees, in finish order. Take with std::move after the
  /// captured work is done.
  std::vector<SpanNode> roots;

 private:
  struct Impl;
  Impl* impl_ = nullptr;  ///< null when tracing was off at construction
};

/// Grafts finished span trees as children of the calling thread's innermost
/// live span, preserving order. With no live span they become top-level
/// roots in the global Tracer (the data is never dropped).
void adopt_spans(std::vector<SpanNode>&& spans);

/// Owns finished root span trees (process-wide). Retention is capped:
/// once `max_roots()` trees are held, adding another drops the oldest and
/// increments the "obs.trace.dropped_roots" counter — a long-running
/// server with tracing on keeps the most recent trees instead of growing
/// without bound.
class Tracer {
 public:
  /// Default retention cap (finished root trees kept).
  static constexpr std::size_t kDefaultMaxRoots = 512;

  /// Copies the finished roots accumulated so far (oldest first).
  std::vector<SpanNode> snapshot() const;
  void clear();

  /// Sets the retention cap (>= 1); excess oldest roots drop immediately.
  void set_max_roots(std::size_t cap);
  std::size_t max_roots() const;
  /// Roots dropped to the cap since construction (also mirrored in the
  /// "obs.trace.dropped_roots" counter, which registry().reset() zeroes).
  std::uint64_t dropped_roots() const;

  // Internal: called by ~Span for root spans.
  void add_finished_root(SpanNode&& root);

 private:
  void drop_to_cap_locked();

  mutable std::mutex mu_;
  std::deque<SpanNode> finished_roots_;
  std::size_t max_roots_ = kDefaultMaxRoots;
  std::uint64_t dropped_roots_ = 0;
};

Tracer& tracer();

}  // namespace ldmo::obs
