// OpenMetrics/Prometheus text exposition of a MetricsSnapshot, plus the
// snapshot differ that turns cumulative counters into per-interval rates.
//
// Exposition rules (DESIGN.md §12 documents the conventions):
//   - metric names are sanitized for the exposition charset: every
//     character outside [a-zA-Z0-9_:] becomes '_' (so "serve.cache.hits"
//     exports as "serve_cache_hits"); a leading digit gains a '_' prefix
//   - counters export as "<name>_total" with "# TYPE <name> counter"
//   - gauges export verbatim with "# TYPE <name> gauge"
//   - histograms export cumulative "<name>_bucket{le="..."}" rows (the
//     registry stores per-bucket counts; the exporter accumulates), the
//     "+Inf" bucket, and "<name>_sum" / "<name>_count"
//   - the document ends with "# EOF" (OpenMetrics terminator; Prometheus'
//     text parser ignores it)
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ldmo::obs {

/// Sanitizes `name` for the OpenMetrics exposition charset (see above).
std::string openmetrics_name(const std::string& name);

/// Renders `snapshot` as an OpenMetrics text document.
std::string to_openmetrics(const MetricsSnapshot& snapshot);

/// One counter's change across an interval.
struct CounterDelta {
  std::string name;
  long long delta = 0;       ///< clamped to >= 0 except across a reset
  double per_second = 0.0;   ///< delta / interval seconds
};

/// What changed between two snapshots taken `seconds` apart: counter
/// deltas/rates, the newer gauge values, and bucket-wise histogram deltas.
/// A counter that shrank between samples is treated as reset-and-restarted
/// (delta = newer value), matching Prometheus rate() semantics.
struct SnapshotDelta {
  double seconds = 0.0;
  std::vector<CounterDelta> counters;      ///< every counter in `newer`
  std::vector<GaugeSample> gauges;         ///< newer values verbatim
  std::vector<HistogramSample> histograms; ///< per-interval via histogram_delta

  const CounterDelta* find_counter(const std::string& name) const;
  const HistogramSample* find_histogram(const std::string& name) const;
  /// Rate of one counter (0 when absent or the interval is empty).
  double rate(const std::string& name) const;
  /// Summed rate of every counter whose name starts with `prefix` — e.g.
  /// rate_prefix("serve.errors.") is the total per-stage error rate.
  double rate_prefix(const std::string& prefix) const;
};

/// Differences `newer` against `older` (`seconds` apart). Counters and
/// histograms absent from `older` are treated as having been zero.
SnapshotDelta diff_snapshots(const MetricsSnapshot& newer,
                             const MetricsSnapshot& older, double seconds);

}  // namespace ldmo::obs
