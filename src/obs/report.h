// Structured JSON run reports: one file per run capturing the metric
// snapshot, the finished span trees (with per-span attribute and series
// data such as ILT iteration traces), plus caller-supplied metadata and
// custom sections.
//
// Schema (DESIGN.md "Observability" documents it in full):
//   {
//     "tool": "...", "generated_at": "ISO-8601",
//     "meta": {"k": "v", ...},
//     "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}},
//     "spans": [ {"name", "seconds", "attrs", "series", "children"}, ... ],
//     <custom sections>
//   }
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace ldmo::obs {

/// Current UTC wall time as "YYYY-MM-DDTHH:MM:SS.mmmZ".
std::string iso8601_utc_now();

/// Serializes one span tree node (recursively) into `w` as an object.
void write_span_json(JsonWriter& w, const SpanNode& node);

/// Serializes a metrics snapshot into `w` as an object.
void write_metrics_json(JsonWriter& w, const MetricsSnapshot& snapshot);

/// Accumulates report content, then snapshots the global registry and
/// tracer at render time.
class RunReport {
 public:
  explicit RunReport(std::string tool) : tool_(std::move(tool)) {}

  /// Free-form string metadata ("flow": "ours", "layout": "T3", ...).
  void meta(const std::string& key, const std::string& value);

  /// Process-wide metadata stamped into every report's "meta" object (the
  /// kernel backend, detected CPU features, ...). Instance meta with the
  /// same key wins. Thread-safe; last set_global_meta per key wins.
  static void set_global_meta(const std::string& key,
                              const std::string& value);

  /// Custom top-level section: `emit` must write exactly one JSON value
  /// (typically begin_object()...end_object()).
  void section(const std::string& key,
               std::function<void(JsonWriter&)> emit);

  /// Renders the full report (registry + tracer snapshots taken now).
  std::string to_json() const;

  /// Renders and writes to `path`; throws std::runtime_error on I/O error.
  void write(const std::string& path) const;

 private:
  std::string tool_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::vector<std::pair<std::string, std::function<void(JsonWriter&)>>>
      sections_;
};

}  // namespace ldmo::obs
