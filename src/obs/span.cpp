#include "obs/span.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "obs/metrics.h"

namespace ldmo::obs {
namespace {

std::atomic<bool> g_tracing_enabled{false};

// Per-thread chain of live spans, deepest last. New spans attach to the
// back; appends only ever touch the deepest live span's children vector,
// so node pointers held by live ancestors never move.
struct ThreadTrace {
  std::vector<SpanNode*> stack;
  // Root nodes are heap-allocated and owned here until their Span
  // finishes, at which point they move into the global Tracer (or the
  // active SpanCapture).
  std::vector<std::unique_ptr<SpanNode>> root_storage;
  SpanCapture* capture = nullptr;  ///< innermost active capture, if any
};

ThreadTrace& thread_trace() {
  thread_local ThreadTrace trace;
  return trace;
}

}  // namespace

const double* SpanNode::SeriesRow::find(const std::string& key) const {
  for (const auto& [k, v] : cells)
    if (k == key) return &v;
  return nullptr;
}

const SpanNode* SpanNode::find(const std::string& child_name) const {
  for (const SpanNode& c : children)
    if (c.name == child_name) return &c;
  return nullptr;
}

std::vector<const SpanNode*> SpanNode::find_all(
    const std::string& child_name) const {
  std::vector<const SpanNode*> out;
  for (const SpanNode& c : children)
    if (c.name == child_name) out.push_back(&c);
  return out;
}

const double* SpanNode::find_num_attr(const std::string& key) const {
  for (const auto& [k, v] : num_attrs)
    if (k == key) return &v;
  return nullptr;
}

const std::vector<SpanNode::SeriesRow>* SpanNode::find_series(
    const std::string& key) const {
  for (const auto& [k, rows] : series)
    if (k == key) return &rows;
  return nullptr;
}

int SpanNode::tree_size() const {
  int n = 1;
  for (const SpanNode& c : children) n += c.tree_size();
  return n;
}

void set_tracing_enabled(bool enabled) {
  g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool tracing_enabled() {
  return g_tracing_enabled.load(std::memory_order_relaxed);
}

Span::Span(std::string name) : start_(Clock::now()) {
  if (!tracing_enabled()) return;
  ThreadTrace& trace = thread_trace();
  if (trace.stack.empty()) {
    trace.root_storage.push_back(std::make_unique<SpanNode>());
    node_ = trace.root_storage.back().get();
  } else {
    SpanNode* parent = trace.stack.back();
    parent->children.emplace_back();
    node_ = &parent->children.back();
  }
  node_->name = std::move(name);
  trace.stack.push_back(node_);
}

Span::~Span() { finish(); }

double Span::seconds() const {
  if (finished_seconds_ >= 0.0) return finished_seconds_;
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

void Span::attr(const std::string& key, double value) {
  if (node_) node_->num_attrs.emplace_back(key, value);
}

void Span::attr(const std::string& key, const std::string& value) {
  if (node_) node_->str_attrs.emplace_back(key, value);
}

void Span::row(const std::string& series_name,
               std::initializer_list<std::pair<const char*, double>> cells) {
  if (!node_) return;
  std::vector<SpanNode::SeriesRow>* rows = nullptr;
  for (auto& [k, r] : node_->series)
    if (k == series_name) { rows = &r; break; }
  if (!rows) {
    node_->series.emplace_back(series_name,
                               std::vector<SpanNode::SeriesRow>{});
    rows = &node_->series.back().second;
  }
  SpanNode::SeriesRow row;
  row.cells.reserve(cells.size());
  for (const auto& [k, v] : cells) row.cells.emplace_back(k, v);
  rows->push_back(std::move(row));
}

void Span::finish() {
  if (finished_seconds_ < 0.0) finished_seconds_ = seconds();
  if (!node_) return;
  node_->seconds = finished_seconds_;

  ThreadTrace& trace = thread_trace();
  // Normal case: this span is the deepest live one. Out-of-order finishes
  // (heap-held spans) abandon any deeper entries, which keeps the stack
  // consistent without crashing.
  while (!trace.stack.empty()) {
    SpanNode* top = trace.stack.back();
    trace.stack.pop_back();
    if (top == node_) break;
  }
  for (std::size_t i = 0; i < trace.root_storage.size(); ++i) {
    if (trace.root_storage[i].get() == node_) {
      if (trace.capture)
        trace.capture->roots.push_back(std::move(*trace.root_storage[i]));
      else
        tracer().add_finished_root(std::move(*trace.root_storage[i]));
      trace.root_storage.erase(trace.root_storage.begin() +
                               static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  node_ = nullptr;
}

struct SpanCapture::Impl {
  std::vector<SpanNode*> saved_stack;
  std::vector<std::unique_ptr<SpanNode>> saved_root_storage;
  SpanCapture* saved_capture = nullptr;
};

SpanCapture::SpanCapture() {
  if (!tracing_enabled()) return;
  impl_ = new Impl();
  ThreadTrace& trace = thread_trace();
  impl_->saved_stack.swap(trace.stack);
  impl_->saved_root_storage.swap(trace.root_storage);
  impl_->saved_capture = trace.capture;
  trace.capture = this;
}

SpanCapture::~SpanCapture() {
  if (!impl_) return;
  ThreadTrace& trace = thread_trace();
  trace.stack.swap(impl_->saved_stack);
  trace.root_storage.swap(impl_->saved_root_storage);
  trace.capture = impl_->saved_capture;
  delete impl_;
}

void adopt_spans(std::vector<SpanNode>&& spans) {
  if (spans.empty()) return;
  ThreadTrace& trace = thread_trace();
  if (trace.stack.empty()) {
    for (SpanNode& node : spans) tracer().add_finished_root(std::move(node));
    return;
  }
  // Appending to the innermost live span's children is safe: by the stack
  // invariant it has no live children whose node pointers a reallocation
  // could move.
  SpanNode* parent = trace.stack.back();
  for (SpanNode& node : spans) parent->children.push_back(std::move(node));
}

std::vector<SpanNode> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {finished_roots_.begin(), finished_roots_.end()};
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  finished_roots_.clear();
}

void Tracer::set_max_roots(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  max_roots_ = std::max<std::size_t>(1, cap);
  drop_to_cap_locked();
}

std::size_t Tracer::max_roots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_roots_;
}

std::uint64_t Tracer::dropped_roots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_roots_;
}

void Tracer::add_finished_root(SpanNode&& root) {
  std::lock_guard<std::mutex> lock(mu_);
  finished_roots_.push_back(std::move(root));
  drop_to_cap_locked();
}

void Tracer::drop_to_cap_locked() {
  while (finished_roots_.size() > max_roots_) {
    finished_roots_.pop_front();
    ++dropped_roots_;
    counter("obs.trace.dropped_roots").inc();
  }
}

Tracer& tracer() {
  static Tracer* instance = new Tracer();  // leaked: outlive all users
  return *instance;
}

}  // namespace ldmo::obs
