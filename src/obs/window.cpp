#include "obs/window.h"

#include <algorithm>
#include <utility>

namespace ldmo::obs {

WindowSampler::WindowSampler(WindowConfig config, Registry* reg)
    : config_(std::move(config)),
      registry_(reg ? reg : &registry()),
      start_(std::chrono::steady_clock::now()) {}

WindowSampler::~WindowSampler() { stop(); }

void WindowSampler::start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { run(); });
}

void WindowSampler::stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stopping_ = true;
    stop_cv_.notify_all();
  }
  thread_.join();
  std::lock_guard<std::mutex> lock(thread_mu_);
  thread_ = std::thread();
}

void WindowSampler::run() {
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(std::max(0.001,
                                             config_.interval_seconds)));
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, interval, [this] { return stopping_; }))
      return;
    lock.unlock();
    sample_now();
    lock.lock();
  }
}

void WindowSampler::sample_now() {
  if (config_.pre_sample) config_.pre_sample();
  Entry entry;
  entry.when = std::chrono::steady_clock::now();
  entry.t = std::chrono::duration<double>(entry.when - start_).count();
  entry.snapshot = registry_->snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(std::move(entry));
  while (entries_.size() > config_.capacity + 1) entries_.pop_front();
}

std::size_t WindowSampler::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

double WindowSampler::window_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() < 2) return 0.0;
  return entries_.back().t - entries_.front().t;
}

SnapshotDelta WindowSampler::window_delta_locked() const {
  if (entries_.empty()) return {};
  if (entries_.size() == 1)
    return diff_snapshots(entries_.back().snapshot, MetricsSnapshot{},
                          entries_.back().t);
  return diff_snapshots(entries_.back().snapshot, entries_.front().snapshot,
                        entries_.back().t - entries_.front().t);
}

double WindowSampler::counter_rate(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_delta_locked().rate(name);
}

double WindowSampler::counter_rate_prefix(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_delta_locked().rate_prefix(prefix);
}

long long WindowSampler::counter_delta(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const SnapshotDelta delta = window_delta_locked();
  const CounterDelta* c = delta.find_counter(name);
  return c ? c->delta : 0;
}

long long WindowSampler::counter_delta_prefix(
    const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  long long total = 0;
  for (const CounterDelta& c : window_delta_locked().counters)
    if (c.name.compare(0, prefix.size(), prefix) == 0) total += c.delta;
  return total;
}

double WindowSampler::latest_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return 0.0;
  const GaugeSample* g = entries_.back().snapshot.find_gauge(name);
  return g ? g->value : 0.0;
}

double WindowSampler::quantile(const std::string& histogram_name,
                               double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  const SnapshotDelta delta = window_delta_locked();
  const HistogramSample* h = delta.find_histogram(histogram_name);
  return h ? h->quantile(q) : 0.0;
}

std::vector<IntervalSample> WindowSampler::timeline() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<IntervalSample> out;
  if (entries_.size() < 2) return out;
  out.reserve(entries_.size() - 1);
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    IntervalSample sample;
    sample.t = entries_[i].t;
    sample.delta =
        diff_snapshots(entries_[i].snapshot, entries_[i - 1].snapshot,
                       entries_[i].t - entries_[i - 1].t);
    out.push_back(std::move(sample));
  }
  return out;
}

MetricsSnapshot WindowSampler::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.empty() ? MetricsSnapshot{} : entries_.back().snapshot;
}

}  // namespace ldmo::obs
