#include "litho/config.h"

#include <sstream>

#include "common/error.h"
#include "fft/fft.h"

namespace ldmo::litho {

void LithoConfig::validate() const {
  require(fft::is_pow2(grid_size), "LithoConfig: grid_size must be 2^k");
  require(pixel_nm > 0.0, "LithoConfig: pixel_nm must be positive");
  require(wavelength_nm > 0.0, "LithoConfig: wavelength must be positive");
  require(numerical_aperture > 0.0 && numerical_aperture < 1.5,
          "LithoConfig: NA out of range");
  require(sigma_inner >= 0.0 && sigma_inner < sigma_outer &&
              sigma_outer <= 1.0,
          "LithoConfig: need 0 <= sigma_inner < sigma_outer <= 1");
  require(kernel_count >= 1, "LithoConfig: kernel_count must be >= 1");
  require(kernel_keep_energy > 0.0 && kernel_keep_energy <= 1.0,
          "LithoConfig: kernel_keep_energy out of (0,1]");
  require(theta_z > 0.0, "LithoConfig: theta_z must be positive");
  require(intensity_threshold > 0.0 && intensity_threshold < 1.0,
          "LithoConfig: intensity threshold out of (0,1)");
  require(epe_threshold_nm > 0.0, "LithoConfig: EPE threshold must be > 0");
  require(calibration_feature_nm >= 2.0 * pixel_nm,
          "LithoConfig: calibration feature below two pixels");
  require(calibration_feature_nm < field_nm() / 2.0,
          "LithoConfig: calibration feature too large for the field");
  // The pupil must contain at least a few frequency samples or the model
  // degenerates to a single DC kernel.
  const double pupil_radius_px = cutoff_frequency() * field_nm();
  require(pupil_radius_px >= 2.0,
          "LithoConfig: pupil radius below 2 frequency samples; enlarge the "
          "field or NA");
}

std::string LithoConfig::kernel_cache_key() const {
  std::ostringstream key;
  key << grid_size << ":" << pixel_nm << ":" << wavelength_nm << ":"
      << numerical_aperture << ":" << sigma_inner << ":" << sigma_outer << ":"
      << defocus_nm << ":" << kernel_count << ":" << kernel_keep_energy
      << ":" << intensity_threshold << ":" << calibration_feature_nm;
  return key.str();
}

}  // namespace ldmo::litho
