// Process-window analysis (extension beyond the paper's nominal-condition
// evaluation; the baselines it compares against — MOSAIC [6], Su et al.
// [9] — are process-window-aware, so a credible release must measure it).
//
// A process corner is a (defocus, dose) pair. The printed image at a
// corner uses defocused SOCS kernels and a scaled intensity threshold;
// the process window report aggregates EPE across corners and derives the
// PV (process-variation) band — the area printed at some corners but not
// all, the standard manufacturing-robustness metric.
#pragma once

#include <vector>

#include "layout/layout.h"
#include "litho/simulator.h"

namespace ldmo::litho {

/// One process corner: absolute defocus in nm and relative dose.
struct ProcessCorner {
  double defocus_nm = 0.0;
  double dose = 1.0;  ///< multiplies the aerial intensity

  friend bool operator==(const ProcessCorner&, const ProcessCorner&) = default;
};

/// The standard 3-corner window: nominal, defocused underdose (worst
/// contact shrink), focused overdose (worst bridge risk).
std::vector<ProcessCorner> standard_corners(double defocus_nm = 40.0,
                                            double dose_delta = 0.05);

/// Per-corner printability plus aggregate robustness numbers.
struct ProcessWindowReport {
  std::vector<ProcessCorner> corners;
  std::vector<PrintabilityReport> reports;  ///< aligned with `corners`
  /// Sum of EPE violations across all corners.
  int total_epe_violations = 0;
  /// Worst single-corner EPE violation count.
  int worst_corner_epe = 0;
  /// PV band area in pixels: printed in >= 1 corner but not in all.
  int pv_band_pixels = 0;
};

/// Evaluates fixed masks across process corners. The same LithoConfig is
/// re-kerneled per defocus value (cached process-wide), and dose scales
/// the intensity before the resist model.
class ProcessWindowAnalyzer {
 public:
  /// `base` must be the configuration the masks were optimized for.
  explicit ProcessWindowAnalyzer(const LithoConfig& base);

  /// Printed response of a mask pair at one corner.
  GridF print_at(const GridF& mask1, const GridF& mask2,
                 const ProcessCorner& corner) const;

  /// Full multi-corner evaluation of a mask pair against a layout.
  ProcessWindowReport analyze(const GridF& mask1, const GridF& mask2,
                              const layout::Layout& layout,
                              const std::vector<ProcessCorner>& corners =
                                  standard_corners()) const;

 private:
  const SocsKernels& kernels_for(double defocus_nm) const;

  LithoConfig base_;
};

}  // namespace ldmo::litho
