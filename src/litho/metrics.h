// Printability metrology: EPE (Definition 1), L2 error (Definition 2) and
// print-violation detection.
//
// EPE is measured the ICCAD-contest way: checkpoints are placed on the
// target pattern edges, and at each checkpoint the printed contour (resist
// response = 0.5, equivalently intensity = I_th) is located along the edge
// normal with sub-pixel bilinear interpolation. A checkpoint whose contour
// displacement exceeds the threshold (10nm in the paper) is an EPE
// violation.
//
// Print violations are the catastrophic failures the LDMO flow checks every
// three ILT iterations: target patterns that fail to print (missing),
// distinct patterns whose prints merge (bridging), and spurious printing
// away from any pattern (extra).
#pragma once

#include <vector>

#include "common/grid.h"
#include "layout/layout.h"
#include "layout/raster.h"
#include "litho/config.h"

namespace ldmo::litho {

/// One EPE measurement site: a point on a target edge plus outward normal.
struct EpeCheckpoint {
  double x_nm = 0.0;
  double y_nm = 0.0;
  double normal_x = 0.0;  ///< unit outward normal
  double normal_y = 0.0;
  int pattern_id = -1;
};

/// Checkpoints for every pattern edge. Edges shorter than 1.5 * interval get
/// a single midpoint checkpoint (the contact case); longer edges are sampled
/// every `interval_nm`.
std::vector<EpeCheckpoint> make_checkpoints(const layout::Layout& layout,
                                            double interval_nm = 40.0);

/// Result at one checkpoint. `epe_nm` is the unsigned contour displacement,
/// clamped to the search range when the contour is not found (missing or
/// bridged print).
struct EpeMeasurement {
  EpeCheckpoint checkpoint;
  double epe_nm = 0.0;
  bool violation = false;
  bool contour_found = false;
};

struct EpeReport {
  std::vector<EpeMeasurement> measurements;
  int violation_count = 0;
  double max_epe_nm = 0.0;
  double mean_epe_nm = 0.0;
};

/// Bilinear sample of a grid at continuous pixel coordinates, pixel-center
/// convention: grid.at(y, x) lives at (x + 0.5, y + 0.5). Clamped at edges.
double sample_bilinear(const GridF& grid, double px, double py);

/// Measures EPE of the combined resist response against the layout.
EpeReport measure_epe(const GridF& response, const layout::Layout& layout,
                      const layout::RasterTransform& transform,
                      const LithoConfig& config);

/// L2 error between the (continuous) printed image and the target raster:
/// ||T - T'||_2^2 (Definition 2).
double l2_error(const GridF& response, const GridF& target);

/// Print-violation classification.
struct ViolationReport {
  int missing = 0;  ///< target patterns with < 30% printed coverage
  int bridges = 0;  ///< excess pattern-pairs merged into one printed blob
  int extra = 0;    ///< printed blobs (>= 4 px) touching no pattern
  int total() const { return missing + bridges + extra; }
};

/// Classifies violations from a binarized print.
ViolationReport detect_print_violations(
    const GridU8& printed, const layout::Layout& layout,
    const layout::RasterTransform& transform);

}  // namespace ldmo::litho
