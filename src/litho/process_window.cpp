#include "litho/process_window.h"

#include "common/error.h"
#include "layout/raster.h"
#include "litho/resist.h"

namespace ldmo::litho {

std::vector<ProcessCorner> standard_corners(double defocus_nm,
                                            double dose_delta) {
  return {
      {0.0, 1.0},                        // nominal
      {defocus_nm, 1.0 - dose_delta},    // defocused underdose
      {0.0, 1.0 + dose_delta},           // focused overdose
  };
}

ProcessWindowAnalyzer::ProcessWindowAnalyzer(const LithoConfig& base)
    : base_(base) {
  base_.validate();
}

const SocsKernels& ProcessWindowAnalyzer::kernels_for(
    double defocus_nm) const {
  LithoConfig cfg = base_;
  cfg.defocus_nm = defocus_nm;
  return cached_kernels(cfg);
}

GridF ProcessWindowAnalyzer::print_at(const GridF& mask1, const GridF& mask2,
                                      const ProcessCorner& corner) const {
  require(corner.dose > 0.0, "ProcessWindowAnalyzer: dose must be positive");
  AerialSimulator aerial(kernels_for(corner.defocus_nm));
  GridF i1 = aerial.intensity(mask1);
  GridF i2 = aerial.intensity(mask2);
  for (std::size_t i = 0; i < i1.size(); ++i) {
    i1[i] *= corner.dose;
    i2[i] *= corner.dose;
  }
  return combine_exposures(resist_response(i1, base_),
                           resist_response(i2, base_));
}

ProcessWindowReport ProcessWindowAnalyzer::analyze(
    const GridF& mask1, const GridF& mask2, const layout::Layout& layout,
    const std::vector<ProcessCorner>& corners) const {
  require(!corners.empty(), "ProcessWindowAnalyzer: no corners");
  const LithoSimulator nominal(base_);
  const layout::RasterTransform transform = nominal.transform_for(layout);
  const GridF target = layout::rasterize_target(layout, base_.grid_size);

  ProcessWindowReport report;
  report.corners = corners;
  // Track per-pixel printed-at-any / printed-at-all for the PV band.
  GridU8 printed_any(base_.grid_size, base_.grid_size, 0);
  GridU8 printed_all(base_.grid_size, base_.grid_size, 1);

  for (const ProcessCorner& corner : corners) {
    const GridF response = print_at(mask1, mask2, corner);
    PrintabilityReport corner_report;
    corner_report.l2 = l2_error(response, target);
    corner_report.epe = measure_epe(response, layout, transform, base_);
    const GridU8 printed = binarize(response);
    corner_report.violations =
        detect_print_violations(printed, layout, transform);
    report.total_epe_violations += corner_report.epe.violation_count;
    report.worst_corner_epe = std::max(report.worst_corner_epe,
                                       corner_report.epe.violation_count);
    for (std::size_t i = 0; i < printed.size(); ++i) {
      printed_any[i] = static_cast<unsigned char>(printed_any[i] | printed[i]);
      printed_all[i] = static_cast<unsigned char>(printed_all[i] & printed[i]);
    }
    report.reports.push_back(std::move(corner_report));
  }
  for (std::size_t i = 0; i < printed_any.size(); ++i)
    if (printed_any[i] && !printed_all[i]) ++report.pv_band_pixels;
  return report;
}

}  // namespace ldmo::litho
