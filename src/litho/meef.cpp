#include "litho/meef.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "layout/raster.h"
#include "litho/metrics.h"

namespace ldmo::litho {

GridF bias_mask(const GridF& mask, int pixels) {
  require(pixels == 1 || pixels == -1, "bias_mask: bias must be +/- 1 px");
  const int h = mask.height(), w = mask.width();
  GridF out(h, w);
  const bool grow = pixels > 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      // 4-neighborhood max (dilate) or min (erode); edges clamp.
      double v = mask.at(y, x);
      const int ys[2] = {std::max(0, y - 1), std::min(h - 1, y + 1)};
      const int xs[2] = {std::max(0, x - 1), std::min(w - 1, x + 1)};
      for (int yy : ys)
        v = grow ? std::max(v, mask.at(yy, x)) : std::min(v, mask.at(yy, x));
      for (int xx : xs)
        v = grow ? std::max(v, mask.at(y, xx)) : std::min(v, mask.at(y, xx));
      out.at(y, x) = v;
    }
  }
  return out;
}

std::vector<double> measure_printed_cds(const LithoSimulator& simulator,
                                        const GridF& response,
                                        const layout::Layout& layout) {
  const layout::RasterTransform transform = simulator.transform_for(layout);
  std::vector<double> cds;
  cds.reserve(static_cast<std::size_t>(layout.pattern_count()));
  for (const layout::Pattern& p : layout.patterns) {
    const double cy = transform.to_px_y(
        (static_cast<double>(p.shape.lo.y) + p.shape.hi.y) / 2.0);
    const double cx = transform.to_px_x(
        (static_cast<double>(p.shape.lo.x) + p.shape.hi.x) / 2.0);
    // The pattern prints if the response at its center clears threshold.
    if (sample_bilinear(response, cx, cy) < 0.5) {
      cds.push_back(-1.0);
      continue;
    }
    // March left and right from the center to the 0.5 contour.
    const double step = 0.25;  // pixels
    const double limit = transform.to_px_x(static_cast<double>(
                             p.shape.width())) /
                         transform.nm_per_pixel();  // pattern width in px
    auto contour = [&](double direction) {
      double prev = cx;
      double prev_v = sample_bilinear(response, prev, cy);
      for (double d = step; d < 2.0 * limit + 8.0; d += step) {
        const double x = cx + direction * d;
        const double v = sample_bilinear(response, x, cy);
        if (v < 0.5) {
          const double frac = (prev_v - 0.5) / (prev_v - v);
          return prev + direction * frac * step - cx;
        }
        prev = x;
        prev_v = v;
      }
      return direction * (2.0 * limit + 8.0);  // never crossed (bridged)
    };
    const double left = contour(-1.0);
    const double right = contour(1.0);
    cds.push_back((right - left) * transform.nm_per_pixel());
  }
  return cds;
}

MeefReport measure_meef(const LithoSimulator& simulator, const GridF& mask1,
                        const GridF& mask2, const layout::Layout& layout) {
  // Nominal / grown / shrunk prints. A one-pixel isotropic bias changes
  // each mask CD by 2 pixels (both edges move).
  const double mask_cd_delta_nm = 2.0 * simulator.config().pixel_nm;
  const GridF nominal = simulator.print(mask1, mask2);
  const GridF grown =
      simulator.print(bias_mask(mask1, 1), bias_mask(mask2, 1));
  const GridF shrunk =
      simulator.print(bias_mask(mask1, -1), bias_mask(mask2, -1));

  const std::vector<double> cd_nominal =
      measure_printed_cds(simulator, nominal, layout);
  const std::vector<double> cd_grown =
      measure_printed_cds(simulator, grown, layout);
  const std::vector<double> cd_shrunk =
      measure_printed_cds(simulator, shrunk, layout);

  MeefReport report;
  double sum = 0.0;
  int valid = 0;
  for (int i = 0; i < layout.pattern_count(); ++i) {
    MeefEntry entry;
    entry.pattern_id = i;
    entry.nominal_cd_nm = cd_nominal[static_cast<std::size_t>(i)];
    const double g = cd_grown[static_cast<std::size_t>(i)];
    const double s = cd_shrunk[static_cast<std::size_t>(i)];
    if (entry.nominal_cd_nm > 0.0 && g > 0.0) {
      if (s > 0.0) {
        // Central difference across the +/- 1 px mask bias.
        entry.meef = (g - s) / (2.0 * mask_cd_delta_nm);
      } else {
        // The eroded mask no longer prints (coarse grids: 1 px is a large
        // CD step near the resolution limit) — forward difference.
        entry.meef = (g - entry.nominal_cd_nm) / mask_cd_delta_nm;
      }
      entry.valid = true;
      sum += entry.meef;
      report.max_meef = std::max(report.max_meef, entry.meef);
      ++valid;
    }
    report.entries.push_back(entry);
  }
  if (valid > 0) report.mean_meef = sum / valid;
  return report;
}

}  // namespace ldmo::litho
