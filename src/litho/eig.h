// Dense symmetric / Hermitian eigendecomposition (cyclic Jacobi).
//
// The transmission cross coefficient (TCC) operator of Hopkins imaging is a
// positive semi-definite Hermitian matrix over in-band frequency samples;
// its leading eigenpairs are the SOCS kernels. Matrices here are small
// (a few hundred rows), so the cubic but unconditionally stable Jacobi
// iteration is the right tool — no external LAPACK needed.
#pragma once

#include <complex>
#include <vector>

namespace ldmo::litho {

/// Eigendecomposition result, eigenvalues sorted descending.
struct SymmetricEig {
  std::vector<double> eigenvalues;
  /// eigenvectors[k] is the unit eigenvector for eigenvalues[k].
  std::vector<std::vector<double>> eigenvectors;
};

struct HermitianEig {
  std::vector<double> eigenvalues;
  std::vector<std::vector<std::complex<double>>> eigenvectors;
};

/// Jacobi eigendecomposition of a real symmetric matrix given in row-major
/// order (n x n). `max_sweeps` cyclic sweeps; converges long before the
/// default for our sizes. Throws on non-square/asymmetric input.
SymmetricEig jacobi_eigendecompose(const std::vector<double>& matrix, int n,
                                   int max_sweeps = 30);

/// Hermitian eigendecomposition via the real embedding
/// [[Re, -Im], [Im, Re]]: each complex eigenpair appears twice in the
/// embedding; duplicates are removed by complex-Gram-Schmidt filtering.
/// Input is row-major n x n, must be Hermitian.
HermitianEig hermitian_eigendecompose(
    const std::vector<std::complex<double>>& matrix, int n,
    int max_sweeps = 30);

}  // namespace ldmo::litho
