// Constant-threshold resist model and double-patterning image combination.
//
// Paper Eq. (2): T_i = sigmoid(theta_z * (I_i - I_th)) turns the aerial
// intensity of exposure i into a differentiable resist response, and
// Eq. (3): T = min(T_1 + T_2, 1) combines the two LELE exposures (the wafer
// pattern is the union of the two prints).
#pragma once

#include <vector>

#include "common/grid.h"
#include "litho/config.h"

namespace ldmo::litho {

/// Numerically stable logistic function.
double sigmoid(double x);

/// Resist response T = sigmoid(theta_z * (I - I_th)) per pixel.
GridF resist_response(const GridF& intensity, const LithoConfig& config);

/// Out-param variant: reshapes `out` if needed and fully overwrites it —
/// allocation-free at steady state. (Same contract for every _into / "out"
/// overload below; `out` must not alias the inputs.)
void resist_response_into(const GridF& intensity, const LithoConfig& config,
                          GridF& out);

/// Derivative dT/dI = theta_z * T * (1 - T) per pixel, given T.
GridF resist_derivative(const GridF& response, const LithoConfig& config);
void resist_derivative_into(const GridF& response, const LithoConfig& config,
                            GridF& out);

/// Double-patterning combination T = min(T1 + T2, 1) (Eq. 3).
GridF combine_exposures(const GridF& t1, const GridF& t2);
void combine_exposures_into(const GridF& t1, const GridF& t2, GridF& out);

/// N-exposure generalization for multiple patterning (LELE...LE):
/// T = min(sum_i T_i, 1). Requires at least one exposure.
GridF combine_exposures_n(const std::vector<GridF>& responses);
void combine_exposures_n_into(const std::vector<GridF>& responses, GridF& out);

/// Gradient mask of the min(): 1 where t1 + t2 < 1, else 0. Multiplying
/// dL/dT by this gives dL/dT_i.
GridF combine_gradient_mask(const GridF& t1, const GridF& t2);
void combine_gradient_mask_into(const GridF& t1, const GridF& t2, GridF& out);

/// Binary print: response thresholded at 0.5 (equivalently I at I_th).
GridU8 binarize(const GridF& response, double threshold = 0.5);

}  // namespace ldmo::litho
