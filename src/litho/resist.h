// Constant-threshold resist model and double-patterning image combination.
//
// Paper Eq. (2): T_i = sigmoid(theta_z * (I_i - I_th)) turns the aerial
// intensity of exposure i into a differentiable resist response, and
// Eq. (3): T = min(T_1 + T_2, 1) combines the two LELE exposures (the wafer
// pattern is the union of the two prints).
#pragma once

#include <vector>

#include "common/grid.h"
#include "litho/config.h"

namespace ldmo::litho {

/// Numerically stable logistic function.
double sigmoid(double x);

/// Resist response T = sigmoid(theta_z * (I - I_th)) per pixel.
GridF resist_response(const GridF& intensity, const LithoConfig& config);

/// Derivative dT/dI = theta_z * T * (1 - T) per pixel, given T.
GridF resist_derivative(const GridF& response, const LithoConfig& config);

/// Double-patterning combination T = min(T1 + T2, 1) (Eq. 3).
GridF combine_exposures(const GridF& t1, const GridF& t2);

/// N-exposure generalization for multiple patterning (LELE...LE):
/// T = min(sum_i T_i, 1). Requires at least one exposure.
GridF combine_exposures_n(const std::vector<GridF>& responses);

/// Gradient mask of the min(): 1 where t1 + t2 < 1, else 0. Multiplying
/// dL/dT by this gives dL/dT_i.
GridF combine_gradient_mask(const GridF& t1, const GridF& t2);

/// Binary print: response thresholded at 0.5 (equivalently I at I_th).
GridU8 binarize(const GridF& response, double threshold = 0.5);

}  // namespace ldmo::litho
