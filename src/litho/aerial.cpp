#include "litho/aerial.h"

#include <vector>

#include "common/error.h"
#include "runtime/parallel_for.h"

namespace ldmo::litho {

AerialSimulator::AerialSimulator(const SocsKernels& kernels)
    : kernels_(kernels),
      plan_(kernels.config.grid_size, kernels.config.grid_size) {
  require(!kernels.kernel_ffts.empty(), "AerialSimulator: no kernels");
}

AerialFields AerialSimulator::intensity_with_fields(const GridF& mask) const {
  const int n = grid_size();
  require(mask.height() == n && mask.width() == n,
          "AerialSimulator: mask shape mismatch");

  fft::GridC mask_freq = fft::to_complex(mask);
  plan_.forward(mask_freq);

  AerialFields out;
  out.intensity = GridF(n, n, 0.0);
  const std::size_t kernel_count = kernels_.kernel_ffts.size();
  out.fields.assign(kernel_count, fft::GridC());
  // Each kernel's field is an independent FFT into its own slot; the
  // intensity sum is then folded serially in kernel order so the floating
  // point accumulation matches the serial loop bit-for-bit.
  runtime::parallel_for(kernel_count, [&](std::size_t k) {
    fft::GridC field = mask_freq;
    fft::multiply_inplace(field, kernels_.kernel_ffts[k]);
    plan_.inverse(field);
    out.fields[k] = std::move(field);
  });
  for (std::size_t k = 0; k < kernel_count; ++k) {
    const double w = kernels_.weights[k];
    const fft::GridC& field = out.fields[k];
    for (std::size_t i = 0; i < field.size(); ++i)
      out.intensity[i] += w * std::norm(field[i]);
  }
  return out;
}

GridF AerialSimulator::intensity(const GridF& mask) const {
  return intensity_with_fields(mask).intensity;
}

GridF AerialSimulator::backpropagate(const GridF& dldi,
                                     const AerialFields& fields) const {
  const int n = grid_size();
  require(dldi.height() == n && dldi.width() == n,
          "backpropagate: gradient shape mismatch");
  require(fields.fields.size() == kernels_.kernel_ffts.size(),
          "backpropagate: field count mismatch");

  // dL/dM(x') = sum_k 2 w_k Re[ sum_x G(x) E_k(x) conj(h_k(x - x')) ], i.e.
  // the correlation of G * E_k with conj(h_k(-x)), whose spectrum is
  // conj(h_hat). Accumulate sum_k w_k FFT(G * E_k) * conj(h_hat_k) in the
  // frequency domain, then one inverse FFT.
  // Per-kernel spectra are independent; compute each into its own slot and
  // fold into `accum` serially in kernel order (bit-identical to the serial
  // interleaved accumulation, which also added kernel k fully before k+1).
  std::vector<fft::GridC> spectra(fields.fields.size());
  runtime::parallel_for(fields.fields.size(), [&](std::size_t k) {
    const fft::GridC& field = fields.fields[k];
    fft::GridC scratch(n, n);
    for (std::size_t i = 0; i < scratch.size(); ++i)
      scratch[i] = dldi[i] * field[i];
    plan_.forward(scratch);
    spectra[k] = std::move(scratch);
  });
  fft::GridC accum(n, n, {0.0, 0.0});
  for (std::size_t k = 0; k < spectra.size(); ++k) {
    const double w = kernels_.weights[k];
    const fft::GridC& kernel = kernels_.kernel_ffts[k];
    const fft::GridC& spectrum = spectra[k];
    for (std::size_t i = 0; i < accum.size(); ++i)
      accum[i] += w * spectrum[i] * std::conj(kernel[i]);
  }
  plan_.inverse(accum);
  GridF grad(n, n);
  for (std::size_t i = 0; i < grad.size(); ++i)
    grad[i] = 2.0 * accum[i].real();
  return grad;
}

}  // namespace ldmo::litho
