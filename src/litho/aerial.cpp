#include "litho/aerial.h"

#include <vector>

#include "common/error.h"
#include "kernels/kernels.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"

namespace ldmo::litho {

using runtime::Workspace;

AerialSimulator::AerialSimulator(const SocsKernels& kernels)
    : kernels_(kernels),
      plan_(fft::plan_for(kernels.config.grid_size,
                          kernels.config.grid_size)) {
  require(!kernels.kernel_ffts.empty(), "AerialSimulator: no kernels");
}

AerialFields AerialSimulator::intensity_with_fields(const GridF& mask) const {
  AerialFields out;
  intensity_with_fields(mask, out);
  return out;
}

void AerialSimulator::intensity_with_fields(const GridF& mask,
                                            AerialFields& out) const {
  const int n = grid_size();
  require(mask.height() == n && mask.width() == n,
          "AerialSimulator: mask shape mismatch");

  // Pooled scratch, fully overwritten by the real-input forward FFT
  // (masks are real, so the Hermitian path does half the butterflies).
  runtime::PooledGrid<fft::Complex> mask_freq =
      Workspace::this_thread().grid_c_uninit(n, n);
  plan_.forward_real(mask.data(), mask_freq->data());

  const std::size_t kernel_count = kernels_.kernel_ffts.size();
  out.fields.resize(kernel_count);  // keeps warm grids across refills
  out.intensity.resize(n, n);
  out.intensity.fill(0.0);
  // Each kernel's field is an independent convolution into its own slot;
  // the intensity sum is then folded serially in kernel order so the
  // floating point accumulation matches the serial loop bit-for-bit.
  runtime::parallel_for(kernel_count, [&](std::size_t k) {
    plan_.convolve_spectrum(*mask_freq, kernels_.kernel_ffts[k],
                            out.fields[k]);
  });
  const kernels::KernelTable& kt = kernels::table();
  for (std::size_t k = 0; k < kernel_count; ++k) {
    const fft::GridC& field = out.fields[k];
    kt.norm_weighted_accum_f64(out.intensity.data(), field.data(),
                               kernels_.weights[k], field.size());
  }
}

GridF AerialSimulator::intensity(const GridF& mask) const {
  GridF out;
  intensity(mask, out);
  return out;
}

void AerialSimulator::intensity(const GridF& mask, GridF& out) const {
  const int n = grid_size();
  require(mask.height() == n && mask.width() == n,
          "AerialSimulator: mask shape mismatch");
  const std::size_t pixels =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  const std::size_t kernel_count = kernels_.kernel_ffts.size();

  Workspace& ws = Workspace::this_thread();
  runtime::PooledGrid<fft::Complex> mask_freq = ws.grid_c_uninit(n, n);
  plan_.forward_real(mask.data(), mask_freq->data());

  // Per-kernel fields live as slices of one flat pooled stack instead of
  // materialized AerialFields grids; each slice is fully overwritten, and
  // the weighted-norm fold below runs serially in kernel order with the
  // exact arithmetic of the fields path (bit-identical intensities).
  const kernels::KernelTable& kt = kernels::table();
  runtime::PooledVector<fft::Complex> stack =
      ws.vec_c128_uninit(kernel_count * pixels);
  runtime::parallel_for(kernel_count, [&](std::size_t k) {
    fft::Complex* slice = stack.data() + k * pixels;
    kt.cmul_to_f64(mask_freq->data(), kernels_.kernel_ffts[k].data(), slice,
                   pixels);
    plan_.inverse(slice);
  });

  out.resize(n, n);
  out.fill(0.0);
  for (std::size_t k = 0; k < kernel_count; ++k) {
    const fft::Complex* slice = stack.data() + k * pixels;
    kt.norm_weighted_accum_f64(out.data(), slice, kernels_.weights[k],
                               pixels);
  }
}

GridF AerialSimulator::backpropagate(const GridF& dldi,
                                     const AerialFields& fields) const {
  GridF grad;
  backpropagate(dldi, fields, grad);
  return grad;
}

void AerialSimulator::backpropagate(const GridF& dldi,
                                    const AerialFields& fields,
                                    GridF& grad_out) const {
  const int n = grid_size();
  require(dldi.height() == n && dldi.width() == n,
          "backpropagate: gradient shape mismatch");
  require(fields.fields.size() == kernels_.kernel_ffts.size(),
          "backpropagate: field count mismatch");
  const std::size_t pixels =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  const std::size_t kernel_count = fields.fields.size();

  // dL/dM(x') = sum_k 2 w_k Re[ sum_x G(x) E_k(x) conj(h_k(x - x')) ], i.e.
  // the correlation of G * E_k with conj(h_k(-x)), whose spectrum is
  // conj(h_hat). Accumulate sum_k w_k FFT(G * E_k) * conj(h_hat_k) in the
  // frequency domain, then one inverse FFT.
  // Per-kernel spectra are independent slices of one pooled stack; each is
  // fully overwritten in parallel, then folded into `accum` serially in
  // kernel order (bit-identical to the serial interleaved accumulation).
  Workspace& ws = Workspace::this_thread();
  const kernels::KernelTable& kt = kernels::table();
  runtime::PooledVector<fft::Complex> spectra =
      ws.vec_c128_uninit(kernel_count * pixels);
  runtime::parallel_for(kernel_count, [&](std::size_t k) {
    const fft::GridC& field = fields.fields[k];
    fft::Complex* slice = spectra.data() + k * pixels;
    kt.real_mul_f64(dldi.data(), field.data(), slice, pixels);
    plan_.forward(slice);
  });
  runtime::PooledGrid<fft::Complex> accum = ws.grid_c(n, n);
  for (std::size_t k = 0; k < kernel_count; ++k) {
    const fft::Complex* slice = spectra.data() + k * pixels;
    kt.cmul_conj_accum_f64(accum->data(), slice,
                           kernels_.kernel_ffts[k].data(),
                           kernels_.weights[k], pixels);
  }
  plan_.inverse(*accum);
  grad_out.resize(n, n);
  kt.scaled_real_f64(accum->data(), 2.0, grad_out.data(), pixels);
}

}  // namespace ldmo::litho
