#include "litho/tcc.h"

#include <cmath>
#include <vector>

#include "common/error.h"
#include "kernels/kernels.h"

namespace ldmo::litho {

std::complex<double> pupil_value(const LithoConfig& config, double fx,
                                 double fy) {
  const double f2 = fx * fx + fy * fy;
  const double cutoff = config.cutoff_frequency();
  if (f2 > cutoff * cutoff) return {0.0, 0.0};
  if (config.defocus_nm == 0.0) return {1.0, 0.0};
  // Fresnel defocus phase: phi = -pi * lambda * z * |f|^2.
  const double phase = -M_PI * config.wavelength_nm * config.defocus_nm * f2;
  return {std::cos(phase), std::sin(phase)};
}

bool source_contains(const LithoConfig& config, double fx, double fy) {
  const double cutoff = config.cutoff_frequency();
  const double r2 = fx * fx + fy * fy;
  const double inner = config.sigma_inner * cutoff;
  const double outer = config.sigma_outer * cutoff;
  return r2 >= inner * inner && r2 <= outer * outer;
}

TccResult build_tcc(const LithoConfig& config, int source_supersample) {
  config.validate();
  require(source_supersample >= 1, "build_tcc: bad supersample");

  const int n = config.grid_size;
  const double df = 1.0 / config.field_nm();
  const double cutoff = config.cutoff_frequency();
  const double band = (1.0 + config.sigma_outer) * cutoff;

  TccResult result;
  // In-band lattice points: |f| <= band. Deterministic scan order.
  for (int ky = -n / 2; ky < n / 2; ++ky) {
    for (int kx = -n / 2; kx < n / 2; ++kx) {
      const double fx = kx * df;
      const double fy = ky * df;
      if (fx * fx + fy * fy <= band * band)
        result.support.emplace_back(kx, ky);
    }
  }
  const int dim = result.dimension();
  require(dim >= 1, "build_tcc: empty band");

  // Source sample points on a supersampled lattice over the annulus;
  // weights normalized so sum J = 1 (open-frame intensity = TCC(0,0) = 1
  // when sigma_outer <= 1, i.e. the whole source passes the pupil).
  struct SourcePoint {
    double fx, fy;
  };
  std::vector<SourcePoint> source;
  const double sdf = df / source_supersample;
  const int s_extent =
      static_cast<int>(std::ceil(config.sigma_outer * cutoff / sdf)) + 1;
  for (int sy = -s_extent; sy <= s_extent; ++sy) {
    for (int sx = -s_extent; sx <= s_extent; ++sx) {
      const double fx = sx * sdf;
      const double fy = sy * sdf;
      if (source_contains(config, fx, fy)) source.push_back({fx, fy});
    }
  }
  require(!source.empty(),
          "build_tcc: no source samples; increase supersampling");
  const double j_weight = 1.0 / static_cast<double>(source.size());

  // Cache pupil values P(s + f_i) per source point, then form the rank-1
  // accumulation TCC += J(s) p p^H. Only the upper triangle is computed.
  // Defocused pupils batch their Fresnel phases through the dispatched
  // cis_f64 phasor kernel instead of per-point libm cos/sin; in focus the
  // pupil is {0, 1} and needs no trig at all. The generic backend's cis is
  // elementwise libm, so results there are bit-identical to pupil_value.
  result.matrix.assign(static_cast<std::size_t>(dim) * dim, {0.0, 0.0});
  std::vector<std::complex<double>> p(static_cast<std::size_t>(dim));
  const bool defocused = config.defocus_nm != 0.0;
  // Same association order as pupil_value's phase expression.
  const double phase_scale =
      -M_PI * config.wavelength_nm * config.defocus_nm;
  std::vector<double> phases;
  std::vector<char> in_band;
  if (defocused) {
    phases.resize(static_cast<std::size_t>(dim));
    in_band.resize(static_cast<std::size_t>(dim));
  }
  for (const SourcePoint& s : source) {
    bool any = false;
    for (int i = 0; i < dim; ++i) {
      const auto [kx, ky] = result.support[static_cast<std::size_t>(i)];
      const double fx = s.fx + kx * df;
      const double fy = s.fy + ky * df;
      const double f2 = fx * fx + fy * fy;
      const bool inside = !(f2 > cutoff * cutoff);
      if (inside) any = true;
      if (defocused) {
        in_band[static_cast<std::size_t>(i)] = inside ? 1 : 0;
        phases[static_cast<std::size_t>(i)] = phase_scale * f2;
      } else {
        p[static_cast<std::size_t>(i)] =
            inside ? std::complex<double>(1.0, 0.0)
                   : std::complex<double>(0.0, 0.0);
      }
    }
    if (!any) continue;
    if (defocused) {
      kernels::table().cis_f64(phases.data(), p.data(),
                               static_cast<std::size_t>(dim));
      for (int i = 0; i < dim; ++i)
        if (in_band[static_cast<std::size_t>(i)] == 0)
          p[static_cast<std::size_t>(i)] = {0.0, 0.0};
    }
    for (int i = 0; i < dim; ++i) {
      if (p[static_cast<std::size_t>(i)] == std::complex<double>(0.0, 0.0))
        continue;
      const std::complex<double> pi = j_weight * p[static_cast<std::size_t>(i)];
      for (int j = i; j < dim; ++j)
        result.matrix[static_cast<std::size_t>(i) * dim + j] +=
            pi * std::conj(p[static_cast<std::size_t>(j)]);
    }
  }
  // Mirror to the lower triangle (Hermitian).
  for (int i = 0; i < dim; ++i)
    for (int j = i + 1; j < dim; ++j)
      result.matrix[static_cast<std::size_t>(j) * dim + i] =
          std::conj(result.matrix[static_cast<std::size_t>(i) * dim + j]);
  return result;
}

}  // namespace ldmo::litho
