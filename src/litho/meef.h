// Mask error enhancement factor (MEEF) analysis.
//
// MEEF = d(wafer CD) / d(mask CD): how much a mask-dimension error is
// amplified on the wafer. Near the resolution limit MEEF rises well above
// 1 and is a standard manufacturability metric for contact layers —
// a natural companion to the EPE metrology when qualifying the masks the
// LDMO flow produces.
//
// Measurement: the masks are morphologically biased by one pixel
// (isotropic grow/shrink), the printed contact CDs are re-measured through
// the full optical model, and MEEF is the CD delta ratio.
#pragma once

#include <vector>

#include "layout/layout.h"
#include "litho/simulator.h"

namespace ldmo::litho {

/// Per-pattern MEEF measurement.
struct MeefEntry {
  int pattern_id = -1;
  double nominal_cd_nm = 0.0;  ///< printed CD at nominal mask
  double meef = 0.0;           ///< d(wafer CD) / d(mask CD)
  bool valid = false;  ///< false when the pattern failed to print somewhere
};

struct MeefReport {
  std::vector<MeefEntry> entries;
  double mean_meef = 0.0;  ///< over valid entries
  double max_meef = 0.0;
};

/// Morphological bias of a binary mask grid by +/- 1 pixel (4-neighbor
/// dilation for +1, erosion for -1). Exposed for tests.
GridF bias_mask(const GridF& mask, int pixels);

/// Measures the printed horizontal CD of each pattern (contour-to-contour
/// distance through the pattern center along x, sub-pixel). Returns -1 for
/// patterns that do not print. Exposed for tests.
std::vector<double> measure_printed_cds(const LithoSimulator& simulator,
                                        const GridF& response,
                                        const layout::Layout& layout);

/// Full MEEF analysis of a mask pair against a layout.
MeefReport measure_meef(const LithoSimulator& simulator, const GridF& mask1,
                        const GridF& mask2, const layout::Layout& layout);

}  // namespace ldmo::litho
