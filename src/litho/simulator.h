// High-level lithography facade tying optics, resist and metrology together.
//
// This is the component the rest of the framework talks to: it prints mask
// grids (or raw decompositions) and scores the result with the paper's
// combined printability score (Eq. 9):
//     score = alpha * L2 + beta * #EPE + gamma * #violations.
#pragma once

#include "layout/layout.h"
#include "layout/raster.h"
#include "litho/aerial.h"
#include "litho/config.h"
#include "litho/metrics.h"

namespace ldmo::litho {

/// Eq. 9 coefficients (alpha, beta, gamma) = (1, 3500, 8000) in the paper.
struct ScoreWeights {
  double alpha = 1.0;
  double beta = 3500.0;
  double gamma = 8000.0;
};

/// Full printability evaluation of one printed image.
struct PrintabilityReport {
  double l2 = 0.0;
  EpeReport epe;
  ViolationReport violations;

  /// Raw Eq. 9 score (z-scoring happens at training-set level).
  double score(const ScoreWeights& weights = {}) const {
    return weights.alpha * l2 + weights.beta * epe.violation_count +
           weights.gamma * violations.total();
  }
};

/// Lithography simulator for one optical configuration. Construction builds
/// (or fetches from the process cache) the SOCS kernels.
class LithoSimulator {
 public:
  explicit LithoSimulator(const LithoConfig& config = {});

  const LithoConfig& config() const { return config_; }
  const AerialSimulator& aerial() const { return aerial_; }
  int grid_size() const { return config_.grid_size; }

  /// Raster transform for a layout. The layout clip must match the
  /// simulator field size (grid_size * pixel_nm); throws otherwise.
  layout::RasterTransform transform_for(const layout::Layout& layout) const;

  /// Resist response of a single exposure given its mask grid.
  GridF expose(const GridF& mask) const;

  /// Out-param variant: aerial intensity streams through pooled workspace
  /// scratch (fields are never materialized) and `out` is reshaped and
  /// fully overwritten — allocation-free at steady state.
  void expose_into(const GridF& mask, GridF& out) const;

  /// Combined DPL response from two mask grids (Eq. 2 + Eq. 3).
  GridF print(const GridF& mask1, const GridF& mask2) const;

  /// Out-param variant of print (same reuse contract as expose_into).
  void print_into(const GridF& mask1, const GridF& mask2, GridF& out) const;

  /// N-exposure generalization (triple patterning and beyond).
  GridF print_masks(const std::vector<GridF>& masks) const;

  /// Out-param variant over caller scratch: `responses` is resized to
  /// masks.size() and holds the per-exposure resist responses after
  /// return; `out` gets the combined print. Reusing both across calls
  /// makes the k-mask print allocation-free at steady state.
  void print_masks_into(const std::vector<GridF>& masks,
                        std::vector<GridF>& responses, GridF& out) const;

  /// Prints a decomposition using the raw (un-OPCed) pattern rasters —
  /// what the layout looks like before any mask optimization.
  GridF print_decomposition(const layout::Layout& layout,
                            const layout::Assignment& assignment) const;

  /// k-mask variant of print_decomposition (assignment values in
  /// [0, mask_count)).
  GridF print_decomposition_k(const layout::Layout& layout,
                              const layout::Assignment& assignment,
                              int mask_count) const;

  /// Full metrology against the layout target.
  PrintabilityReport evaluate(const GridF& response,
                              const layout::Layout& layout) const;

 private:
  LithoConfig config_;
  AerialSimulator aerial_;
};

}  // namespace ldmo::litho
