#include "litho/kernels.h"

#include <map>
#include <memory>
#include <mutex>

#include "common/error.h"
#include "common/log.h"
#include "layout/raster.h"
#include "litho/aerial.h"
#include "litho/eig.h"
#include "litho/metrics.h"
#include "litho/tcc.h"

namespace ldmo::litho {
namespace {

// Raw (uncalibrated) kernels from the TCC eigendecomposition.
SocsKernels decompose(const LithoConfig& config) {
  const TccResult tcc = build_tcc(config);
  const int dim = tcc.dimension();
  const HermitianEig eig = hermitian_eigendecompose(tcc.matrix, dim);

  double trace = 0.0;
  for (double v : eig.eigenvalues) trace += std::max(v, 0.0);

  SocsKernels kernels;
  kernels.config = config;
  const int n = config.grid_size;
  const int keep = std::min(config.kernel_count, dim);
  double captured = 0.0;
  for (int k = 0; k < keep; ++k) {
    const double value = eig.eigenvalues[static_cast<std::size_t>(k)];
    if (value <= 0.0) break;  // PSD spectrum exhausted
    captured += value;
    fft::GridC freq(n, n, {0.0, 0.0});
    for (int i = 0; i < dim; ++i) {
      const auto [kx, ky] = tcc.support[static_cast<std::size_t>(i)];
      // Lattice offset -> FFT bin with wraparound.
      const int bx = (kx + n) % n;
      const int by = (ky + n) % n;
      freq.at(by, bx) =
          eig.eigenvectors[static_cast<std::size_t>(k)]
                          [static_cast<std::size_t>(i)];
    }
    kernels.kernel_ffts.push_back(std::move(freq));
    kernels.weights.push_back(value);
  }
  require(!kernels.weights.empty(), "SOCS: no positive eigenvalues");

  // Spatial L1 norms: ||h_k||_1 = sum_x |IFFT(h_hat_k)(x)|. With mask
  // values in [0,1], every field obeys |E_k(x)| <= ||h_k||_1, so each
  // kernel's worst-case intensity contribution is w_k * ||h_k||_1^2.
  const fft::Fft2DPlan& plan = fft::plan_for(n, n);
  for (const fft::GridC& freq : kernels.kernel_ffts) {
    fft::GridC spatial = freq;
    plan.inverse(spatial);
    double l1 = 0.0;
    for (std::size_t i = 0; i < spatial.size(); ++i)
      l1 += std::abs(spatial[i]);
    kernels.kernel_l1_norms.push_back(l1);
  }

  // Energy-based truncation: keep the shortest prefix reaching the
  // requested fraction of the TCC trace, and account every dropped
  // kernel's worst case into the provable pointwise intensity bound.
  if (config.kernel_keep_energy < 1.0 && trace > 0.0) {
    std::size_t keep_k = kernels.weights.size();
    double cum = 0.0;
    for (std::size_t k = 0; k < kernels.weights.size(); ++k) {
      cum += kernels.weights[k];
      if (cum / trace >= config.kernel_keep_energy) {
        keep_k = k + 1;
        break;
      }
    }
    for (std::size_t k = keep_k; k < kernels.weights.size(); ++k) {
      kernels.truncation_error_bound +=
          kernels.weights[k] * kernels.kernel_l1_norms[k] *
          kernels.kernel_l1_norms[k];
      ++kernels.dropped_kernel_count;
    }
    kernels.kernel_ffts.resize(keep_k);
    kernels.weights.resize(keep_k);
    kernels.kernel_l1_norms.resize(keep_k);
    captured = 0.0;
    for (double w : kernels.weights) captured += w;
  }
  kernels.captured_energy = trace > 0.0 ? captured / trace : 1.0;
  return kernels;
}

// Rescales weights so an isolated contact-sized square prints exactly on
// target: its aerial intensity at the edge midpoint equals the resist
// threshold. This anchors the exposure dose to the workload's feature size
// the way a contact-layer process is dosed.
void calibrate(SocsKernels& kernels) {
  const LithoConfig& cfg = kernels.config;
  const int n = cfg.grid_size;
  const double field = cfg.field_nm();
  const double size = cfg.calibration_feature_nm;

  layout::Layout probe;
  probe.clip = geometry::Rect::from_size(
      {0, 0}, static_cast<std::int64_t>(field),
      static_cast<std::int64_t>(field));
  const auto lo = static_cast<std::int64_t>((field - size) / 2.0);
  probe.add_pattern(geometry::Rect::from_size(
      {lo, lo}, static_cast<std::int64_t>(size),
      static_cast<std::int64_t>(size)));

  AerialSimulator aerial(kernels);
  const GridF intensity = aerial.intensity(layout::rasterize_target(probe, n));

  // Edge midpoint of the probe square, sampled with sub-pixel accuracy.
  const layout::RasterTransform transform{probe.clip, n};
  const double edge_x = static_cast<double>(lo) + size;  // right edge
  const double mid_y = static_cast<double>(lo) + size / 2.0;
  const double edge = sample_bilinear(intensity, transform.to_px_x(edge_x),
                                      transform.to_px_y(mid_y));
  require(edge > 1e-9, "SOCS calibration: degenerate edge intensity");
  const double scale = cfg.intensity_threshold / edge;
  for (double& w : kernels.weights) w *= scale;
  // The truncation bound is linear in the weights, so it calibrates with
  // the same dose scale into final intensity units.
  kernels.truncation_error_bound *= scale;
  kernels.calibration_scale = scale;
}

}  // namespace

SocsKernels build_socs_kernels(const LithoConfig& config) {
  config.validate();
  SocsKernels kernels = decompose(config);
  calibrate(kernels);
  log_debug("SOCS kernels built: ", kernels.kernel_count(), " kernels, ",
            kernels.captured_energy * 100.0, "% energy captured");
  return kernels;
}

const SocsKernels& cached_kernels(const LithoConfig& config) {
  // Simulators may now be constructed from pool tasks; the cache map needs
  // real locking (the returned kernels stay valid forever — entries are
  // heap-owned and never erased).
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<SocsKernels>> cache;
  const std::string key = config.kernel_cache_key();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::make_unique<SocsKernels>(
                                build_socs_kernels(config)))
             .first;
  }
  return *it->second;
}

}  // namespace ldmo::litho
