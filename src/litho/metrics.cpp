#include "litho/metrics.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/error.h"
#include "kernels/kernels.h"
#include "runtime/workspace.h"

namespace ldmo::litho {
namespace {

// Adds checkpoints along one edge from (x0,y0) to (x1,y1) with outward
// normal (nx, ny).
void add_edge_checkpoints(std::vector<EpeCheckpoint>& out, int pattern_id,
                          double x0, double y0, double x1, double y1,
                          double nx, double ny, double interval_nm) {
  const double length = std::hypot(x1 - x0, y1 - y0);
  int count = 1;
  if (length >= 1.5 * interval_nm)
    count = static_cast<int>(std::floor(length / interval_nm));
  for (int i = 0; i < count; ++i) {
    const double t = (i + 0.5) / count;
    out.push_back({x0 + t * (x1 - x0), y0 + t * (y1 - y0), nx, ny,
                   pattern_id});
  }
}

}  // namespace

std::vector<EpeCheckpoint> make_checkpoints(const layout::Layout& layout,
                                            double interval_nm) {
  require(interval_nm > 0.0, "make_checkpoints: interval must be positive");
  std::vector<EpeCheckpoint> checkpoints;
  for (const layout::Pattern& p : layout.patterns) {
    const double x0 = static_cast<double>(p.shape.lo.x);
    const double y0 = static_cast<double>(p.shape.lo.y);
    const double x1 = static_cast<double>(p.shape.hi.x);
    const double y1 = static_cast<double>(p.shape.hi.y);
    add_edge_checkpoints(checkpoints, p.id, x0, y0, x1, y0, 0, -1,
                         interval_nm);  // bottom
    add_edge_checkpoints(checkpoints, p.id, x0, y1, x1, y1, 0, 1,
                         interval_nm);  // top
    add_edge_checkpoints(checkpoints, p.id, x0, y0, x0, y1, -1, 0,
                         interval_nm);  // left
    add_edge_checkpoints(checkpoints, p.id, x1, y0, x1, y1, 1, 0,
                         interval_nm);  // right
  }
  return checkpoints;
}

double sample_bilinear(const GridF& grid, double px, double py) {
  // Pixel-center convention: value at center (x + 0.5, y + 0.5).
  const double fx = std::clamp(px - 0.5, 0.0,
                               static_cast<double>(grid.width() - 1));
  const double fy = std::clamp(py - 0.5, 0.0,
                               static_cast<double>(grid.height() - 1));
  const int x0 = std::min(static_cast<int>(fx), grid.width() - 1);
  const int y0 = std::min(static_cast<int>(fy), grid.height() - 1);
  const int x1 = std::min(x0 + 1, grid.width() - 1);
  const int y1 = std::min(y0 + 1, grid.height() - 1);
  const double tx = fx - x0;
  const double ty = fy - y0;
  const double top = grid.at(y1, x0) * (1 - tx) + grid.at(y1, x1) * tx;
  const double bottom = grid.at(y0, x0) * (1 - tx) + grid.at(y0, x1) * tx;
  return bottom * (1 - ty) + top * ty;
}

EpeReport measure_epe(const GridF& response, const layout::Layout& layout,
                      const layout::RasterTransform& transform,
                      const LithoConfig& config) {
  EpeReport report;
  const std::vector<EpeCheckpoint> checkpoints = make_checkpoints(layout);
  const double range = config.epe_search_range_nm;
  const double step = std::min(1.0, transform.nm_per_pixel() / 4.0);
  // Index-based sample positions s_i = -range + i*step (the same walk as
  // the old accumulating loop, minus its rounding drift) let the whole
  // normal scan run as one batched bilinear kernel call per checkpoint.
  const int count =
      static_cast<int>(std::floor((2.0 * range + 1e-9) / step)) + 1;
  const double npp = transform.nm_per_pixel();
  const kernels::KernelTable& kt = kernels::table();
  runtime::PooledVector<double> samples =
      runtime::Workspace::this_thread().vec_f64(
          static_cast<std::size_t>(count));
  double epe_sum = 0.0;

  for (const EpeCheckpoint& cp : checkpoints) {
    // Sample the resist response along the normal: s < 0 inside the
    // pattern, s > 0 outside. The printed contour is T = 0.5.
    EpeMeasurement m;
    m.checkpoint = cp;

    kt.bilinear_line_f64(
        response.data(), response.height(), response.width(),
        transform.to_px_x(cp.x_nm + cp.normal_x * -range),
        transform.to_px_y(cp.y_nm + cp.normal_y * -range),
        cp.normal_x * step / npp, cp.normal_y * step / npp, count,
        samples.data());
    double prev_s = -range;
    double prev_t = samples.data()[0];
    double best_crossing = std::numeric_limits<double>::infinity();
    for (int i = 1; i < count; ++i) {
      const double s = -range + i * step;
      const double t = samples.data()[i];
      if ((prev_t - 0.5) * (t - 0.5) <= 0.0 && prev_t != t) {
        // Linear interpolation for the sub-step crossing position.
        const double frac = (0.5 - prev_t) / (t - prev_t);
        const double crossing = prev_s + frac * (s - prev_s);
        if (std::abs(crossing) < std::abs(best_crossing))
          best_crossing = crossing;
      }
      prev_s = s;
      prev_t = t;
    }

    if (std::isfinite(best_crossing)) {
      m.contour_found = true;
      m.epe_nm = std::abs(best_crossing);
    } else {
      // No contour within range: the pattern is either entirely missing
      // (response below threshold everywhere) or bridged deep into its
      // neighborhood. Either way the displacement exceeds the range.
      m.contour_found = false;
      m.epe_nm = range;
    }
    m.violation = m.epe_nm > config.epe_threshold_nm;
    if (m.violation) ++report.violation_count;
    report.max_epe_nm = std::max(report.max_epe_nm, m.epe_nm);
    epe_sum += m.epe_nm;
    report.measurements.push_back(m);
  }
  if (!report.measurements.empty())
    report.mean_epe_nm = epe_sum / static_cast<double>(report.measurements.size());
  return report;
}

double l2_error(const GridF& response, const GridF& target) {
  require(response.same_shape(target), "l2_error: shape mismatch");
  return kernels::table().sq_diff_sum_f64(response.data(), target.data(),
                                          response.size());
}

ViolationReport detect_print_violations(
    const GridU8& printed, const layout::Layout& layout,
    const layout::RasterTransform& transform) {
  ViolationReport report;
  const int h = printed.height();
  const int w = printed.width();

  // Label 4-connected printed components.
  Grid<int> label(h, w, -1);
  int component_count = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (printed.at(y, x) == 0 || label.at(y, x) != -1) continue;
      std::queue<std::pair<int, int>> frontier;
      frontier.push({y, x});
      label.at(y, x) = component_count;
      while (!frontier.empty()) {
        const auto [cy, cx] = frontier.front();
        frontier.pop();
        const int dy[4] = {1, -1, 0, 0};
        const int dx[4] = {0, 0, 1, -1};
        for (int d = 0; d < 4; ++d) {
          const int ny = cy + dy[d];
          const int nx = cx + dx[d];
          if (ny < 0 || ny >= h || nx < 0 || nx >= w) continue;
          if (printed.at(ny, nx) == 0 || label.at(ny, nx) != -1) continue;
          label.at(ny, nx) = component_count;
          frontier.push({ny, nx});
        }
      }
      ++component_count;
    }
  }

  // Per-pattern printed coverage and per-component pattern contacts.
  std::vector<std::vector<int>> component_patterns(
      static_cast<std::size_t>(component_count));
  std::vector<int> component_area(static_cast<std::size_t>(component_count),
                                  0);
  std::vector<bool> component_touches_pattern(
      static_cast<std::size_t>(component_count), false);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      if (label.at(y, x) >= 0)
        ++component_area[static_cast<std::size_t>(label.at(y, x))];

  for (const layout::Pattern& p : layout.patterns) {
    const int px0 = std::max(
        0, static_cast<int>(std::floor(
               transform.to_px_x(static_cast<double>(p.shape.lo.x)))));
    const int px1 = std::min(
        w - 1, static_cast<int>(std::ceil(transform.to_px_x(
                   static_cast<double>(p.shape.hi.x)))) - 1);
    const int py0 = std::max(
        0, static_cast<int>(std::floor(
               transform.to_px_y(static_cast<double>(p.shape.lo.y)))));
    const int py1 = std::min(
        h - 1, static_cast<int>(std::ceil(transform.to_px_y(
                   static_cast<double>(p.shape.hi.y)))) - 1);
    int covered = 0;
    int total = 0;
    for (int y = py0; y <= py1; ++y) {
      for (int x = px0; x <= px1; ++x) {
        ++total;
        const int c = label.at(y, x);
        if (c >= 0) {
          ++covered;
          auto& patterns = component_patterns[static_cast<std::size_t>(c)];
          if (patterns.empty() || patterns.back() != p.id)
            patterns.push_back(p.id);
          component_touches_pattern[static_cast<std::size_t>(c)] = true;
        }
      }
    }
    if (total == 0 || covered < total * 3 / 10) ++report.missing;
  }

  for (int c = 0; c < component_count; ++c) {
    auto& patterns = component_patterns[static_cast<std::size_t>(c)];
    std::sort(patterns.begin(), patterns.end());
    patterns.erase(std::unique(patterns.begin(), patterns.end()),
                   patterns.end());
    if (patterns.size() >= 2)
      report.bridges += static_cast<int>(patterns.size()) - 1;
    if (!component_touches_pattern[static_cast<std::size_t>(c)] &&
        component_area[static_cast<std::size_t>(c)] >= 4)
      ++report.extra;
  }
  return report;
}

}  // namespace ldmo::litho
