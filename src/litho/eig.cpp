#include "litho/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace ldmo::litho {
namespace {

double off_diagonal_norm(const std::vector<double>& a, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      sum += a[static_cast<std::size_t>(i) * n + j] *
             a[static_cast<std::size_t>(i) * n + j];
  return std::sqrt(2.0 * sum);
}

}  // namespace

SymmetricEig jacobi_eigendecompose(const std::vector<double>& matrix, int n,
                                   int max_sweeps) {
  require(n >= 1, "jacobi: empty matrix");
  require(matrix.size() == static_cast<std::size_t>(n) * n,
          "jacobi: size mismatch");
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      require(std::abs(matrix[static_cast<std::size_t>(i) * n + j] -
                       matrix[static_cast<std::size_t>(j) * n + i]) <
                  1e-9 * (1.0 + std::abs(matrix[static_cast<std::size_t>(i) *
                                                    n +
                                                j])),
              "jacobi: matrix not symmetric");

  std::vector<double> a = matrix;
  std::vector<double> v(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i) * n + i] = 1.0;

  const double initial_off = off_diagonal_norm(a, n);
  const double tol = std::max(1e-14, 1e-12 * initial_off);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm(a, n) <= tol) break;
    for (int p = 0; p < n - 1; ++p) {
      for (int q = p + 1; q < n; ++q) {
        const double apq = a[static_cast<std::size_t>(p) * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[static_cast<std::size_t>(p) * n + p];
        const double aqq = a[static_cast<std::size_t>(q) * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation G(p, q, theta) on both sides of A.
        for (int k = 0; k < n; ++k) {
          const double akp = a[static_cast<std::size_t>(k) * n + p];
          const double akq = a[static_cast<std::size_t>(k) * n + q];
          a[static_cast<std::size_t>(k) * n + p] = c * akp - s * akq;
          a[static_cast<std::size_t>(k) * n + q] = s * akp + c * akq;
        }
        for (int k = 0; k < n; ++k) {
          const double apk = a[static_cast<std::size_t>(p) * n + k];
          const double aqk = a[static_cast<std::size_t>(q) * n + k];
          a[static_cast<std::size_t>(p) * n + k] = c * apk - s * aqk;
          a[static_cast<std::size_t>(q) * n + k] = s * apk + c * aqk;
        }
        // Accumulate eigenvectors (columns of V).
        for (int k = 0; k < n; ++k) {
          const double vkp = v[static_cast<std::size_t>(k) * n + p];
          const double vkq = v[static_cast<std::size_t>(k) * n + q];
          v[static_cast<std::size_t>(k) * n + p] = c * vkp - s * vkq;
          v[static_cast<std::size_t>(k) * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs descending by eigenvalue.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int x, int y) {
    return a[static_cast<std::size_t>(x) * n + x] >
           a[static_cast<std::size_t>(y) * n + y];
  });

  SymmetricEig result;
  result.eigenvalues.reserve(static_cast<std::size_t>(n));
  result.eigenvectors.reserve(static_cast<std::size_t>(n));
  for (int idx : order) {
    result.eigenvalues.push_back(a[static_cast<std::size_t>(idx) * n + idx]);
    std::vector<double> vec(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k)
      vec[static_cast<std::size_t>(k)] =
          v[static_cast<std::size_t>(k) * n + idx];
    result.eigenvectors.push_back(std::move(vec));
  }
  return result;
}

HermitianEig hermitian_eigendecompose(
    const std::vector<std::complex<double>>& matrix, int n, int max_sweeps) {
  require(n >= 1, "hermitian eig: empty matrix");
  require(matrix.size() == static_cast<std::size_t>(n) * n,
          "hermitian eig: size mismatch");
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      require(std::abs(matrix[static_cast<std::size_t>(i) * n + j] -
                       std::conj(matrix[static_cast<std::size_t>(j) * n + i])) <
                  1e-9,
              "hermitian eig: matrix not Hermitian");

  // Real embedding: H = A + iB (A symmetric, B antisymmetric) maps to the
  // 2n x 2n symmetric matrix [[A, -B], [B, A]]. Each complex eigenpair
  // (lambda, x + iy) of H yields two embedded eigenpairs with the same
  // lambda: (x; y) and (-y; x).
  const int m = 2 * n;
  std::vector<double> embedded(static_cast<std::size_t>(m) * m, 0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const std::complex<double> h = matrix[static_cast<std::size_t>(i) * n + j];
      embedded[static_cast<std::size_t>(i) * m + j] = h.real();
      embedded[static_cast<std::size_t>(i) * m + (j + n)] = -h.imag();
      embedded[static_cast<std::size_t>(i + n) * m + j] = h.imag();
      embedded[static_cast<std::size_t>(i + n) * m + (j + n)] = h.real();
    }
  }

  const SymmetricEig real_eig = jacobi_eigendecompose(embedded, m, max_sweeps);

  // Convert embedded vectors back to complex and drop the duplicate of each
  // pair via Gram-Schmidt under the complex inner product.
  HermitianEig result;
  for (int k = 0; k < m && static_cast<int>(result.eigenvalues.size()) < n;
       ++k) {
    std::vector<std::complex<double>> candidate(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      candidate[static_cast<std::size_t>(i)] = std::complex<double>(
          real_eig.eigenvectors[static_cast<std::size_t>(k)]
                               [static_cast<std::size_t>(i)],
          real_eig.eigenvectors[static_cast<std::size_t>(k)]
                               [static_cast<std::size_t>(i + n)]);
    // Project out already-accepted vectors with (numerically) equal
    // eigenvalues; if nothing is left, this was the duplicate copy.
    for (std::size_t prev = 0; prev < result.eigenvectors.size(); ++prev) {
      if (std::abs(result.eigenvalues[prev] -
                   real_eig.eigenvalues[static_cast<std::size_t>(k)]) >
          1e-6 * (1.0 + std::abs(result.eigenvalues[prev])))
        continue;
      std::complex<double> dot(0, 0);
      for (int i = 0; i < n; ++i)
        dot += std::conj(result.eigenvectors[prev][static_cast<std::size_t>(i)]) *
               candidate[static_cast<std::size_t>(i)];
      for (int i = 0; i < n; ++i)
        candidate[static_cast<std::size_t>(i)] -=
            dot * result.eigenvectors[prev][static_cast<std::size_t>(i)];
    }
    double norm_sq = 0.0;
    for (const auto& c : candidate) norm_sq += std::norm(c);
    if (norm_sq < 1e-12) continue;  // duplicate of an accepted eigenvector
    const double inv_norm = 1.0 / std::sqrt(norm_sq);
    for (auto& c : candidate) c *= inv_norm;
    result.eigenvalues.push_back(
        real_eig.eigenvalues[static_cast<std::size_t>(k)]);
    result.eigenvectors.push_back(std::move(candidate));
  }
  LDMO_ASSERT(static_cast<int>(result.eigenvalues.size()) == n);
  return result;
}

}  // namespace ldmo::litho
