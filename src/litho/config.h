// Lithography model configuration.
//
// The paper relies on an industrial 193nm model; we rebuild the same model
// class from first principles (Hopkins partially coherent imaging with a
// circular pupil and annular illumination, sum-of-coherent-systems
// decomposition, sigmoid resist with constant threshold). The resist
// constants are the paper's: theta_z = 120, I_th = 0.039 (Section II).
//
// The optics are chosen so double patterning is *necessary*: with
// NA = 0.75 (dry 193nm) and an annular 0.4-0.6 source the minimum printable
// pitch is lambda / ((1 + sigma_out) * NA) ~ 161nm, so same-mask contact
// pairs at the paper's conflict spacings (< nmin = 80nm, i.e. pitch < 145nm)
// cannot be fixed even by full ILT, pairs in the VP band (80-98nm) print
// with degraded quality, and split pairs (effective pitch doubled) print
// cleanly — exactly the regime Fig. 1 depicts. Empirically validated in
// tests/test_litho.cpp and tests/test_opc.cpp.
#pragma once

#include <cstdint>
#include <string>

namespace ldmo::litho {

/// Full optical + resist + grid configuration.
struct LithoConfig {
  // --- raster grid ---
  int grid_size = 128;          ///< pixels per side (power of two)
  double pixel_nm = 8.0;        ///< physical pixel pitch

  // --- projection optics ---
  double wavelength_nm = 193.0;
  double numerical_aperture = 0.75;
  double sigma_inner = 0.4;     ///< annular source inner partial coherence
  double sigma_outer = 0.6;     ///< annular source outer partial coherence
  double defocus_nm = 0.0;      ///< defocus aberration (0 = in focus)
  int kernel_count = 6;         ///< SOCS kernels kept from the TCC spectrum
  /// Energy-based SOCS truncation: keep the shortest eigenkernel prefix
  /// whose cumulative eigenvalue mass reaches this fraction of the TCC
  /// trace (1.0 = disabled; kernel_count still caps the rank either way).
  /// Each dropped kernel k perturbs the aerial intensity by at most
  /// w_k * ||h_k||_1^2 at any pixel for masks in [0,1]; the summed bound is
  /// reported in SocsKernels::truncation_error_bound.
  double kernel_keep_energy = 1.0;

  // --- resist model (paper Section II) ---
  double theta_z = 120.0;       ///< resist sigmoid slope
  double intensity_threshold = 0.039;  ///< constant threshold I_th
  /// Dose calibration anchor: kernel weights are scaled once so an isolated
  /// square of this size prints exactly on target (edge intensity = I_th).
  /// Set to the workload's contact size — contact layers are dosed for
  /// contacts, not for large pads.
  double calibration_feature_nm = 65.0;

  // --- metrology ---
  double epe_threshold_nm = 10.0;  ///< EPE violation threshold (Def. 1)
  double epe_search_range_nm = 60.0;  ///< contour search span per checkpoint

  /// Field of view in nm.
  double field_nm() const { return grid_size * pixel_nm; }

  /// Pupil cutoff frequency NA / lambda in 1/nm.
  double cutoff_frequency() const {
    return numerical_aperture / wavelength_nm;
  }

  /// Validates invariants (power-of-two grid, positive optics, sigma order).
  /// Throws ldmo::Error on violation.
  void validate() const;

  /// Stable cache key covering every field that affects the SOCS kernels.
  std::string kernel_cache_key() const;
};

}  // namespace ldmo::litho
