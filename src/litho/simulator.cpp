#include "litho/simulator.h"

#include <cmath>

#include "common/error.h"
#include "common/failpoint.h"
#include "layout/raster.h"
#include "litho/resist.h"
#include "obs/metrics.h"
#include "runtime/parallel_for.h"
#include "runtime/workspace.h"

namespace ldmo::litho {

LithoSimulator::LithoSimulator(const LithoConfig& config)
    : config_(config), aerial_(cached_kernels(config)) {}

layout::RasterTransform LithoSimulator::transform_for(
    const layout::Layout& layout) const {
  const double field = config_.field_nm();
  require(std::abs(static_cast<double>(layout.clip.width()) - field) < 1e-6 &&
              std::abs(static_cast<double>(layout.clip.height()) - field) <
                  1e-6,
          "LithoSimulator: layout clip does not match the simulation field (" +
              std::to_string(field) + "nm)");
  return {layout.clip, config_.grid_size};
}

GridF LithoSimulator::expose(const GridF& mask) const {
  GridF out;
  expose_into(mask, out);
  return out;
}

void LithoSimulator::expose_into(const GridF& mask, GridF& out) const {
  // Every aerial+resist simulation of one mask counts here — the
  // denominator of the paper's "simulations the CNN avoided" economy.
  static obs::Counter& exposure_counter = obs::counter("litho.exposures");
  exposure_counter.inc();
  fail::maybe_fail("litho.expose", FlowStage::kLitho);
  runtime::PooledGrid<double> intensity =
      runtime::Workspace::this_thread().grid_f_uninit(config_.grid_size,
                                                      config_.grid_size);
  aerial_.intensity(mask, *intensity);  // fully overwrites the scratch
  resist_response_into(*intensity, config_, out);
}

GridF LithoSimulator::print(const GridF& mask1, const GridF& mask2) const {
  GridF out;
  print_into(mask1, mask2, out);
  return out;
}

void LithoSimulator::print_into(const GridF& mask1, const GridF& mask2,
                                GridF& out) const {
  static obs::Counter& print_counter = obs::counter("litho.prints");
  print_counter.inc();
  runtime::Workspace& ws = runtime::Workspace::this_thread();
  runtime::PooledGrid<double> t1 =
      ws.grid_f_uninit(config_.grid_size, config_.grid_size);
  runtime::PooledGrid<double> t2 =
      ws.grid_f_uninit(config_.grid_size, config_.grid_size);
  expose_into(mask1, *t1);  // fully overwrites
  expose_into(mask2, *t2);
  combine_exposures_into(*t1, *t2, out);
}

GridF LithoSimulator::print_masks(const std::vector<GridF>& masks) const {
  std::vector<GridF> responses;
  GridF out;
  print_masks_into(masks, responses, out);
  return out;
}

void LithoSimulator::print_masks_into(const std::vector<GridF>& masks,
                                      std::vector<GridF>& responses,
                                      GridF& out) const {
  require(!masks.empty(), "print_masks: no masks");
  static obs::Counter& print_counter = obs::counter("litho.prints");
  print_counter.inc();
  // Exposures of different masks are independent simulations; indexed
  // slots keep the combine order identical to the serial loop.
  responses.resize(masks.size());
  runtime::parallel_for(masks.size(), [&](std::size_t m) {
    expose_into(masks[m], responses[m]);
  });
  combine_exposures_n_into(responses, out);
}

GridF LithoSimulator::print_decomposition(
    const layout::Layout& layout, const layout::Assignment& assignment) const {
  transform_for(layout);  // validates geometry compatibility
  const GridF m1 =
      layout::rasterize_mask(layout, assignment, 0, config_.grid_size);
  const GridF m2 =
      layout::rasterize_mask(layout, assignment, 1, config_.grid_size);
  return print(m1, m2);
}

GridF LithoSimulator::print_decomposition_k(
    const layout::Layout& layout, const layout::Assignment& assignment,
    int mask_count) const {
  require(mask_count >= 1, "print_decomposition_k: bad mask count");
  transform_for(layout);
  std::vector<GridF> masks;
  masks.reserve(static_cast<std::size_t>(mask_count));
  for (int m = 0; m < mask_count; ++m)
    masks.push_back(
        layout::rasterize_mask(layout, assignment, m, config_.grid_size));
  return print_masks(masks);
}

PrintabilityReport LithoSimulator::evaluate(
    const GridF& response, const layout::Layout& layout) const {
  static obs::Counter& evaluate_counter = obs::counter("litho.evaluations");
  evaluate_counter.inc();
  const layout::RasterTransform transform = transform_for(layout);
  PrintabilityReport report;
  report.l2 =
      l2_error(response, layout::rasterize_target(layout, config_.grid_size));
  report.epe = measure_epe(response, layout, transform, config_);
  report.violations =
      detect_print_violations(binarize(response), layout, transform);
  return report;
}

}  // namespace ldmo::litho
