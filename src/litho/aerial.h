// Aerial image computation: mask -> intensity via the SOCS expansion.
//
// The simulator owns the FFT plan and scratch buffers so repeated calls
// (every ILT iteration, every candidate evaluation) allocate nothing. The
// per-kernel complex fields E_k = M conv h_k can be retained for the ILT
// gradient, which reuses them to avoid recomputing the forward pass.
#pragma once

#include <vector>

#include "fft/fft.h"
#include "litho/kernels.h"

namespace ldmo::litho {

/// Forward-pass byproducts needed by the ILT gradient.
struct AerialFields {
  /// Per-kernel space-domain fields E_k = M conv h_k.
  std::vector<fft::GridC> fields;
  /// Resulting intensity I = sum_k w_k |E_k|^2.
  GridF intensity;
};

/// FFT-based Hopkins/SOCS aerial image simulator for one optical model.
class AerialSimulator {
 public:
  /// Keeps a reference to `kernels`; the caller must keep them alive
  /// (cached_kernels() returns process-lifetime storage).
  explicit AerialSimulator(const SocsKernels& kernels);

  const SocsKernels& kernels() const { return kernels_; }
  int grid_size() const { return kernels_.config.grid_size; }

  /// Intensity only (forward pass).
  GridF intensity(const GridF& mask) const;

  /// Intensity plus the per-kernel fields (for gradient reuse).
  AerialFields intensity_with_fields(const GridF& mask) const;

  /// ILT adjoint: given dL/dI and the forward fields of the same mask,
  /// returns dL/dM = sum_k 2 w_k Re[ (dLdI * conj(E_k)) conv flip(h_k) ].
  GridF backpropagate(const GridF& dldi, const AerialFields& fields) const;

 private:
  const SocsKernels& kernels_;
  fft::Fft2DPlan plan_;
};

}  // namespace ldmo::litho
