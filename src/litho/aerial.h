// Aerial image computation: mask -> intensity via the SOCS expansion.
//
// The simulator shares the process-wide FFT plan for its grid size and
// draws all transient scratch (mask spectrum, per-kernel field/spectrum
// stacks) from the calling thread's Workspace, so repeated calls — every
// ILT iteration, every candidate evaluation — allocate nothing at steady
// state. The per-kernel complex fields E_k = M conv h_k can be retained
// in caller-owned AerialFields storage for the ILT gradient, which reuses
// them to avoid recomputing the forward pass.
#pragma once

#include <vector>

#include "fft/fft.h"
#include "litho/kernels.h"

namespace ldmo::litho {

/// Forward-pass byproducts needed by the ILT gradient. Reused across
/// iterations via the out-param intensity_with_fields overload: the grids
/// keep their storage, so steady-state refills are allocation-free.
struct AerialFields {
  /// Per-kernel space-domain fields E_k = M conv h_k.
  std::vector<fft::GridC> fields;
  /// Resulting intensity I = sum_k w_k |E_k|^2.
  GridF intensity;
};

/// FFT-based Hopkins/SOCS aerial image simulator for one optical model.
class AerialSimulator {
 public:
  /// Keeps a reference to `kernels`; the caller must keep them alive
  /// (cached_kernels() returns process-lifetime storage).
  explicit AerialSimulator(const SocsKernels& kernels);

  const SocsKernels& kernels() const { return kernels_; }
  int grid_size() const { return kernels_.config.grid_size; }

  /// Intensity only (forward pass).
  GridF intensity(const GridF& mask) const;

  /// Intensity-only path into a caller buffer: per-kernel fields stream
  /// through pooled scratch and are never materialized, which skips the
  /// AerialFields copy churn when no gradient is needed. `out` is
  /// reshaped if needed and fully overwritten; results are bit-identical
  /// to intensity_with_fields(mask).intensity.
  void intensity(const GridF& mask, GridF& out) const;

  /// Intensity plus the per-kernel fields (for gradient reuse).
  AerialFields intensity_with_fields(const GridF& mask) const;

  /// Out-param variant: refills `out` in place, reusing its field grids
  /// (allocation-free once shapes are warm).
  void intensity_with_fields(const GridF& mask, AerialFields& out) const;

  /// ILT adjoint: given dL/dI and the forward fields of the same mask,
  /// returns dL/dM = sum_k 2 w_k Re[ (dLdI * conj(E_k)) conv flip(h_k) ].
  GridF backpropagate(const GridF& dldi, const AerialFields& fields) const;

  /// Out-param variant of the adjoint (same reuse contract as above).
  void backpropagate(const GridF& dldi, const AerialFields& fields,
                     GridF& grad_out) const;

 private:
  const SocsKernels& kernels_;
  const fft::Fft2DPlan& plan_;  ///< process-lifetime plan from plan_for()
};

}  // namespace ldmo::litho
