// Transmission cross coefficients (TCC) of Hopkins partially coherent
// imaging, assembled over the discrete frequency lattice of the simulation
// field.
//
// TCC(f1, f2) = sum_s J(s) P(s + f1) conj(P(s + f2))
//
// where J is the (annular) illumination source and P the projection pupil.
// Because the simulation field is periodic, mask spectra live exactly on the
// lattice f = k / field, so restricting TCC to lattice points inside the
// imaging band |f| <= (1 + sigma_outer) * NA / lambda is exact, not an
// approximation. The source integral is evaluated on a finer off-lattice
// grid (P is analytic, so source points need not be lattice points).
#pragma once

#include <complex>
#include <utility>
#include <vector>

#include "litho/config.h"

namespace ldmo::litho {

/// TCC restricted to the in-band frequency lattice.
struct TccResult {
  /// Lattice offsets (kx, ky) in [-N/2, N/2) of the in-band samples;
  /// index i of this list is row/column i of `matrix`.
  std::vector<std::pair<int, int>> support;
  /// Row-major Hermitian PSD matrix, size support.size()^2.
  std::vector<std::complex<double>> matrix;

  int dimension() const { return static_cast<int>(support.size()); }
};

/// Pupil transmission at spatial frequency (fx, fy) in 1/nm: 1 inside the
/// NA circle (with defocus phase when configured), 0 outside.
std::complex<double> pupil_value(const LithoConfig& config, double fx,
                                 double fy);

/// True if (fx, fy) lies inside the annular source.
bool source_contains(const LithoConfig& config, double fx, double fy);

/// Assembles the TCC matrix. `source_supersample` subdivides the lattice
/// pitch for the source integral (4 is plenty for our annuli).
TccResult build_tcc(const LithoConfig& config, int source_supersample = 4);

}  // namespace ldmo::litho
