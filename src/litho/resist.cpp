#include "litho/resist.h"

#include <cmath>

#include "common/error.h"
#include "kernels/kernels.h"

namespace ldmo::litho {

double sigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

GridF resist_response(const GridF& intensity, const LithoConfig& config) {
  GridF t;
  resist_response_into(intensity, config, t);
  return t;
}

void resist_response_into(const GridF& intensity, const LithoConfig& config,
                          GridF& out) {
  out.resize(intensity.height(), intensity.width());
  kernels::table().sigmoid_affine_f64(intensity.data(), out.data(),
                                      intensity.size(), config.theta_z,
                                      config.intensity_threshold);
}

GridF resist_derivative(const GridF& response, const LithoConfig& config) {
  GridF d;
  resist_derivative_into(response, config, d);
  return d;
}

void resist_derivative_into(const GridF& response, const LithoConfig& config,
                            GridF& out) {
  out.resize(response.height(), response.width());
  kernels::table().resist_deriv_f64(response.data(), out.data(),
                                    response.size(), config.theta_z);
}

GridF combine_exposures(const GridF& t1, const GridF& t2) {
  GridF t;
  combine_exposures_into(t1, t2, t);
  return t;
}

void combine_exposures_into(const GridF& t1, const GridF& t2, GridF& out) {
  require(t1.same_shape(t2), "combine_exposures: shape mismatch");
  out.resize(t1.height(), t1.width());
  kernels::table().add_clamp1_f64(t1.data(), t2.data(), out.data(),
                                  out.size());
}

GridF combine_exposures_n(const std::vector<GridF>& responses) {
  GridF t;
  combine_exposures_n_into(responses, t);
  return t;
}

void combine_exposures_n_into(const std::vector<GridF>& responses,
                              GridF& out) {
  require(!responses.empty(), "combine_exposures_n: no exposures");
  const GridF& first = responses.front();
  out.resize(first.height(), first.width());
  const kernels::KernelTable& kt = kernels::table();
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = first[i];
  for (std::size_t e = 1; e < responses.size(); ++e) {
    require(out.same_shape(responses[e]),
            "combine_exposures_n: shape mismatch");
    kt.add_f64(responses[e].data(), out.data(), out.size());
  }
  kt.clamp_max_f64(out.data(), out.size(), 1.0);
}

GridF combine_gradient_mask(const GridF& t1, const GridF& t2) {
  GridF mask;
  combine_gradient_mask_into(t1, t2, mask);
  return mask;
}

void combine_gradient_mask_into(const GridF& t1, const GridF& t2,
                                GridF& out) {
  require(t1.same_shape(t2), "combine_gradient_mask: shape mismatch");
  out.resize(t1.height(), t1.width());
  kernels::table().gate_lt1_f64(t1.data(), t2.data(), out.data(),
                                out.size());
}

GridU8 binarize(const GridF& response, double threshold) {
  GridU8 b(response.height(), response.width());
  for (std::size_t i = 0; i < response.size(); ++i)
    b[i] = response[i] >= threshold ? 1 : 0;
  return b;
}

}  // namespace ldmo::litho
