#include "litho/resist.h"

#include <cmath>

#include "common/error.h"

namespace ldmo::litho {

double sigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double e = std::exp(x);
  return e / (1.0 + e);
}

GridF resist_response(const GridF& intensity, const LithoConfig& config) {
  GridF t(intensity.height(), intensity.width());
  for (std::size_t i = 0; i < intensity.size(); ++i)
    t[i] = sigmoid(config.theta_z * (intensity[i] - config.intensity_threshold));
  return t;
}

GridF resist_derivative(const GridF& response, const LithoConfig& config) {
  GridF d(response.height(), response.width());
  for (std::size_t i = 0; i < response.size(); ++i)
    d[i] = config.theta_z * response[i] * (1.0 - response[i]);
  return d;
}

GridF combine_exposures(const GridF& t1, const GridF& t2) {
  require(t1.same_shape(t2), "combine_exposures: shape mismatch");
  GridF t(t1.height(), t1.width());
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = std::min(t1[i] + t2[i], 1.0);
  return t;
}

GridF combine_exposures_n(const std::vector<GridF>& responses) {
  require(!responses.empty(), "combine_exposures_n: no exposures");
  GridF t = responses.front();
  for (std::size_t e = 1; e < responses.size(); ++e) {
    require(t.same_shape(responses[e]), "combine_exposures_n: shape mismatch");
    for (std::size_t i = 0; i < t.size(); ++i) t[i] += responses[e][i];
  }
  for (std::size_t i = 0; i < t.size(); ++i) t[i] = std::min(t[i], 1.0);
  return t;
}

GridF combine_gradient_mask(const GridF& t1, const GridF& t2) {
  require(t1.same_shape(t2), "combine_gradient_mask: shape mismatch");
  GridF mask(t1.height(), t1.width());
  for (std::size_t i = 0; i < mask.size(); ++i)
    mask[i] = (t1[i] + t2[i] < 1.0) ? 1.0 : 0.0;
  return mask;
}

GridU8 binarize(const GridF& response, double threshold) {
  GridU8 b(response.height(), response.width());
  for (std::size_t i = 0; i < response.size(); ++i)
    b[i] = response[i] >= threshold ? 1 : 0;
  return b;
}

}  // namespace ldmo::litho
