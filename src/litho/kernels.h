// Sum-of-coherent-systems (SOCS) kernels from the TCC spectrum.
//
// The Hopkins bilinear image I = sum_{f1,f2} TCC(f1,f2) M(f1) conj(M(f2))
// is approximated by the rank-K expansion
//     I(x) = sum_k w_k |(M conv h_k)(x)|^2
// where (w_k, h_k) are the leading TCC eigenpairs. Kernels are stored as
// frequency-domain grids on the simulation FFT lattice, so one mask FFT
// plus K inverse FFTs evaluate the full forward model.
//
// Calibration: weights are rescaled once so a large feature's edge intensity
// equals the resist threshold I_th — then big patterns print on target by
// construction and all EPE signal comes from proximity effects, matching the
// behaviour of the paper's industrial model.
#pragma once

#include <vector>

#include "fft/fft.h"
#include "litho/config.h"

namespace ldmo::litho {

/// The rank-K optical model, ready for FFT-based convolution.
struct SocsKernels {
  LithoConfig config;
  /// Frequency-domain kernels on the grid_size^2 FFT lattice.
  std::vector<fft::GridC> kernel_ffts;
  /// Corresponding (calibrated) nonnegative weights.
  std::vector<double> weights;
  /// Spatial L1 norms ||h_k||_1 of the kept kernels (same order as
  /// weights). For masks in [0,1] they bound each field: |E_k| <= ||h_k||_1.
  std::vector<double> kernel_l1_norms;
  /// Fraction of total TCC trace captured by the kept kernels (diagnostic).
  double captured_energy = 0.0;
  /// Kernels removed by the kernel_keep_energy truncation (beyond the
  /// kernel_count cap, which is not counted here).
  int dropped_kernel_count = 0;
  /// Provable pointwise intensity-error bound of the truncation, in
  /// calibrated intensity units: sum over dropped kernels of
  /// w_k * ||h_k||_1^2. Zero when nothing was truncated.
  double truncation_error_bound = 0.0;
  /// Scale applied to raw eigenvalues during calibration.
  double calibration_scale = 1.0;

  int kernel_count() const { return static_cast<int>(weights.size()); }
};

/// Builds and calibrates the kernels for `config` (TCC assembly + Jacobi
/// eigendecomposition + edge calibration). Cost is a one-time ~O(dim^3).
SocsKernels build_socs_kernels(const LithoConfig& config);

/// Process-wide cache: builds on first use per distinct kernel_cache_key().
/// Returned reference stays valid for the process lifetime. Not thread-safe
/// (the whole framework is single-threaded by design).
const SocsKernels& cached_kernels(const LithoConfig& config);

}  // namespace ldmo::litho
