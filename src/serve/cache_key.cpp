#include "serve/cache_key.h"

#include "common/hash.h"
#include "layout/fingerprint.h"

namespace ldmo::serve {

std::uint64_t config_fingerprint(const core::FlowEngineConfig& config,
                                 const std::string& predictor_name,
                                 std::uint64_t warm_start_version) {
  common::Fnv1a h;
  // Version tag: bump when the flow's semantics change in a way the fields
  // below cannot express (e.g. a new phase, different score weights).
  h.str("ldmo.serve.config.v1");

  const litho::LithoConfig& l = config.litho;
  h.i64(l.grid_size).f64(l.pixel_nm);
  h.f64(l.wavelength_nm).f64(l.numerical_aperture);
  h.f64(l.sigma_inner).f64(l.sigma_outer).f64(l.defocus_nm);
  h.i64(l.kernel_count);
  h.f64(l.theta_z).f64(l.intensity_threshold).f64(l.calibration_feature_nm);
  h.f64(l.epe_threshold_nm).f64(l.epe_search_range_nm);

  const mpl::GenerationConfig& g = config.flow.generation;
  h.f64(g.classify.nmin_nm).f64(g.classify.nmax_nm);
  h.i64(g.strength_sp_vp).i64(g.strength_np);
  h.u64(g.seed).i64(g.max_candidates);

  const opc::IltConfig& i = config.flow.ilt;
  h.f64(i.theta_m).i64(i.max_iterations);
  h.i64(i.violation_check_interval).i64(i.violation_check_warmup);
  h.f64(i.step_size).f64(i.step_decay).f64(i.initial_p);
  h.f64(i.theta_m_anneal);
  h.u64(i.binarize_thresholds.size());
  for (double t : i.binarize_thresholds) h.f64(t);
  h.f64(i.edge_weight);

  h.i64(config.flow.max_fallbacks);
  h.str(predictor_name);

  // Warm-start identity: the enabled flag and iteration cap change the
  // masks, and so does the seed model itself — its weight fingerprint
  // stands in for the weights. All three hash even when disabled so
  // toggling the flag always moves the key.
  const core::WarmStartConfig& w = config.flow.warm_start;
  h.u64(w.enabled ? 1 : 0).i64(w.max_iterations);
  h.u64(w.enabled ? warm_start_version : 0);
  return h.digest();
}

std::uint64_t result_cache_key(std::uint64_t config_fp,
                               const layout::Layout& layout) {
  common::Fnv1a h;
  h.str("ldmo.serve.result.v1");
  h.u64(config_fp).u64(layout::fingerprint(layout));
  return h.digest();
}

std::uint64_t score_cache_key(std::uint64_t config_fp,
                              std::uint64_t layout_fp,
                              const layout::Assignment& assignment) {
  common::Fnv1a h;
  h.str("ldmo.serve.score.v1");
  h.u64(config_fp).u64(layout_fp);
  h.u64(assignment.size());
  for (int mask : assignment) h.i64(mask);
  return h.digest();
}

std::size_t estimated_bytes(const core::LdmoResult& result) {
  std::size_t bytes = sizeof(core::LdmoResult);
  bytes += result.ilt.mask1.size() * sizeof(float);
  bytes += result.ilt.mask2.size() * sizeof(float);
  bytes += result.ilt.response.size() * sizeof(float);
  bytes += result.ilt.trajectory.capacity() *
           sizeof(opc::IltIterationStats);
  bytes += result.chosen.capacity() * sizeof(int);
  return bytes;
}

}  // namespace ldmo::serve
