// Request/response vocabulary of the LDMO serving layer.
//
// A request is one layout to decompose and optimize; a response is the
// terminal record of what happened to it. The serving determinism contract
// (DESIGN.md §10) is that a kOk, kCached or batched response carries masks
// and scores bit-identical to a cold, solo FlowEngine::run of the same
// layout under the same configuration.
#pragma once

#include <cstdint>
#include <string>

#include "core/ldmo_flow.h"
#include "layout/layout.h"

namespace ldmo::serve {

/// Admission priority classes, drained strictly in order (FIFO within a
/// class). Interactive beats normal beats batch whenever the queue holds a
/// choice; there is no aging — the queue is bounded, so starvation is
/// capped by capacity.
enum class Priority { kInteractive = 0, kNormal = 1, kBatch = 2 };

inline constexpr int kPriorityClasses = 3;

const char* priority_name(Priority p);

/// Terminal state of a request.
enum class ServeStatus {
  kOk,        ///< computed by a full flow run
  kCached,    ///< served from the result cache (bit-identical to kOk)
  kRejected,  ///< bounced at admission (queue full, reject policy)
  kTimeout,   ///< deadline expired before or during the run
  kCancelled, ///< caller cancelled via its ticket (or server shutdown)
  kFailed,    ///< a flow stage failed after all retries; see `error`
};

inline constexpr int kServeStatusCount = 6;

const char* status_name(ServeStatus s);

/// One unit of work submitted to the server.
struct ServeRequest {
  layout::Layout layout;
  Priority priority = Priority::kNormal;
  /// Relative deadline in seconds from submission; <= 0 means none. The
  /// deadline propagates into the flow as a cancellation-token deadline,
  /// so an expired request aborts its ILT loop within one iteration.
  double deadline_seconds = 0.0;
};

/// Terminal record handed back through the ticket future.
struct ServeResponse {
  ServeStatus status = ServeStatus::kCancelled;
  /// Populated only for kOk / kCached.
  core::LdmoResult result;
  std::uint64_t request_id = 0;
  /// Content-address of the request (config + layout geometry); 0 when the
  /// request never reached key computation (rejected at admission).
  std::uint64_t cache_key = 0;
  /// Position in the server's completion order (1-based) — lets tests and
  /// load generators observe priority scheduling without timing games.
  std::uint64_t completion_sequence = 0;
  double queue_seconds = 0.0;    ///< admission -> dispatch
  double service_seconds = 0.0;  ///< dispatch -> terminal state
  double total_seconds = 0.0;    ///< admission -> terminal state
  /// Stage-attributed cause of a kFailed response (the last attempt's
  /// error); default-constructed otherwise.
  FlowError error;
  /// Flow attempts consumed, counting the first: 1 means no retry.
  int attempts = 1;
  /// The run lost its CNN ranking and fell back to heuristic ordering
  /// (masks are real and violation-checked, but not cached).
  bool degraded = false;

  bool ok() const {
    return status == ServeStatus::kOk || status == ServeStatus::kCached;
  }
};

}  // namespace ldmo::serve
