// Serve-time result capture: the hook the online-learning flywheel hangs
// off the request path.
//
// The server calls the hook once per completed FRESH run — status kOk and
// not degraded. Cached responses are excluded because they replay work the
// hook already saw (or predate it), and degraded responses are excluded
// because their candidate ranking is generation-order, not model-driven:
// feeding them back into training would poison the fine-tune set with
// pairs the model never ranked (ISSUE-10 satellite 3).
//
// The hook runs on the dispatcher thread, after the response is computed
// but before the promise is fulfilled, so implementations must be cheap —
// copy out what they need and return (flywheel::TrainingLogSink does a
// bounded queue push; rasterization and file I/O happen on its own
// thread). Exceptions are swallowed and logged by the server: capture is
// telemetry, never allowed to fail a request.
#pragma once

#include "layout/layout.h"

namespace ldmo::serve {

class CaptureHook {
 public:
  virtual ~CaptureHook() = default;

  /// One completed non-degraded, non-cached run: the request layout, the
  /// decomposition the flow chose, and the actual post-ILT printability
  /// score (raw Eq. 9 units) — exactly a predictor training pair.
  virtual void on_result(const layout::Layout& layout,
                         const layout::Assignment& chosen,
                         double actual_score) = 0;
};

}  // namespace ldmo::serve
