#include "serve/admin.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/error.h"
#include "common/log.h"
#include "kernels/kernels.h"
#include "obs/exporter.h"
#include "obs/trace_export.h"
#include "runtime/thread_pool.h"
#include "serve/server.h"

namespace ldmo::serve {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;
constexpr int kListenBacklog = 16;
constexpr int kPollMillis = 100;  ///< stop-flag latency of the accept loop

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

void set_socket_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

/// Writes all of `data` (the socket has a send timeout; short writes loop).
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + ' ' +
                    reason_phrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

/// Reads until the header terminator (request bodies are not supported —
/// every admin endpoint is a GET).
std::string read_request_head(int fd) {
  std::string head;
  char buf[1024];
  while (head.size() < kMaxRequestBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos) break;
  }
  return head;
}

}  // namespace

AdminServer::AdminServer(const AdminConfig& config, Server& server)
    : config_(config), server_(&server), process_name_("serve") {
  bind_and_start();
}

AdminServer::AdminServer(const AdminConfig& config, std::string process_name)
    : config_(config),
      server_(nullptr),
      process_name_(std::move(process_name)) {
  bind_and_start();
}

void AdminServer::bind_and_start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  require(listen_fd_ >= 0, "AdminServer: cannot create socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, kListenBacklog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    raise("AdminServer: cannot bind 127.0.0.1:" +
          std::to_string(config_.port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));

  thread_ = std::thread([this] { listen_loop(); });
  log_info("admin: listening on http://127.0.0.1:", port_,
           " (/metrics /healthz /readyz /varz /trace /flightrecorder)");
}

AdminServer::~AdminServer() { stop(); }

void AdminServer::stop() {
  if (!thread_.joinable()) return;
  stopping_.store(true);
  thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AdminServer::listen_loop() {
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // timeout (stop-flag check) or EINTR
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    set_socket_timeout(client, 2.0);

    const std::string head = read_request_head(client);
    std::string method, path;
    const std::size_t method_end = head.find(' ');
    if (method_end != std::string::npos) {
      const std::size_t path_end = head.find(' ', method_end + 1);
      if (path_end != std::string::npos) {
        method = head.substr(0, method_end);
        path = head.substr(method_end + 1, path_end - method_end - 1);
        const std::size_t query = path.find('?');
        if (query != std::string::npos) path.resize(query);
      }
    }

    HttpResponse response;
    if (method.empty()) {
      response = {405, "text/plain", "malformed request\n"};
    } else {
      try {
        response = handle(method, path);
      } catch (const std::exception& e) {
        // An endpoint must never take down the listener.
        response = {503, "text/plain",
                    std::string("admin endpoint error: ") + e.what() + "\n"};
      }
    }
    send_all(client, serialize_response(response));
    ::close(client);
  }
}

HttpResponse AdminServer::handle(const std::string& method,
                                 const std::string& path) const {
  if (method != "GET")
    return {405, "text/plain", "only GET is supported\n"};

  if (path == "/metrics") {
    runtime::publish_metrics();  // fold pool/workspace gauges into the scrape
    return {200, "text/plain; version=0.0.4",
            obs::to_openmetrics(obs::registry().snapshot())};
  }
  if (path == "/healthz") {
    if (!server_)
      return {200, "text/plain", "ok (" + process_name_ + ")\n"};
    std::string detail;
    const bool healthy = server_->healthy(&detail);
    return {healthy ? 200 : 503, "text/plain", detail + "\n"};
  }
  if (path == "/readyz") {
    if (!server_)
      return {200, "text/plain", "ready (" + process_name_ + ")\n"};
    std::string detail;
    const bool ready = server_->ready(&detail);
    return {ready ? 200 : 503, "text/plain", detail + "\n"};
  }
  if (path == "/varz") {
    runtime::publish_metrics();
    if (!server_) {
      // Registry-only report: the router's net.* counters and gauges.
      obs::RunReport report("ldmo-" + process_name_);
      return {200, "application/json", report.to_json()};
    }
    return {200, "application/json", server_->report().to_json()};
  }
  if (path == "/trace")
    return {200, "application/json",
            obs::to_chrome_trace(obs::tracer().snapshot())};
  if (path == "/flightrecorder") {
    if (!server_)
      return {404, "text/plain",
              "no flight recorder in a " + process_name_ + " process\n"};
    return {200, "application/json", server_->flight_recorder().to_json()};
  }
  if (path == "/")
    return {200, "text/plain",
            "ldmo admin endpoints: /metrics /healthz /readyz /varz /trace "
            "/flightrecorder\n"
            "kernel backend: " + std::string(kernels::table().name) + " (" +
                kernels::cpu_features() + ")\n"};
  return {404, "text/plain", "unknown endpoint " + path + "\n"};
}

HttpResponse http_get(int port, const std::string& path,
                      double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "http_get: cannot create socket");
  set_socket_timeout(fd, timeout_seconds);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    raise("http_get: cannot connect to 127.0.0.1:" + std::to_string(port));
  }

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  if (!send_all(fd, request)) {
    ::close(fd);
    raise("http_get: send failed");
  }

  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t head_end = raw.find("\r\n\r\n");
  require(raw.compare(0, 9, "HTTP/1.1 ") == 0 &&
              head_end != std::string::npos,
          "http_get: malformed response");
  HttpResponse response;
  response.status = std::atoi(raw.c_str() + 9);
  response.body = raw.substr(head_end + 4);
  const std::size_t ct = raw.find("Content-Type: ");
  if (ct != std::string::npos && ct < head_end) {
    const std::size_t eol = raw.find("\r\n", ct);
    response.content_type =
        raw.substr(ct + 14, eol - ct - 14);
  }
  return response;
}

}  // namespace ldmo::serve
