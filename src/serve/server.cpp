#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "common/error.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "obs/span.h"
#include "runtime/thread_pool.h"

namespace ldmo::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

obs::Counter& status_counter(ServeStatus status) {
  return obs::counter(std::string("serve.requests.") + status_name(status));
}

constexpr const char* kLatencyHistogram = "serve.latency.seconds";

/// End-to-end latency of ok/cached responses. Log-spaced from sub-ms
/// cache hits to multi-second cold full-flow runs; quantiles come from
/// HistogramSample::quantile, so the report and the sliding window agree.
obs::Histogram& latency_histogram() {
  static obs::Histogram& h = obs::histogram(
      kLatencyHistogram, {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
                          0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0});
  return h;
}

}  // namespace

Server::Server(ServeConfig config,
               std::unique_ptr<core::PrintabilityPredictor> backend)
    : config_(std::move(config)),
      backend_simulator_(backend != nullptr
                             ? nullptr
                             : std::make_unique<litho::LithoSimulator>(
                                   config_.engine.litho)),
      backend_(backend != nullptr
                   ? std::move(backend)
                   : std::make_unique<core::RawPrintPredictor>(
                         *backend_simulator_)),
      config_fp_(serve::config_fingerprint(
          config_.engine, backend_->name(),
          config_.warm_start ? config_.warm_start->version() : 0)),
      batcher_(*backend_, config_.batcher),
      score_cache_(config_.score_cache,
                   [](const double&) { return sizeof(double); }),
      result_cache_(config_.result_cache, &estimated_bytes),
      queue_(config_.queue_capacity),
      paused_(config_.start_paused),
      started_(Clock::now()),
      flight_recorder_(config_.flight.capacity) {
  require(config_.dispatchers >= 1, "Server: dispatchers must be >= 1");
  engines_.reserve(static_cast<std::size_t>(config_.dispatchers));
  batch_predictors_.reserve(static_cast<std::size_t>(config_.dispatchers));
  for (int i = 0; i < config_.dispatchers; ++i) {
    auto predictor = std::make_unique<BatchingPredictor>(
        batcher_, &score_cache_, config_fp_.load());
    batch_predictors_.push_back(predictor.get());
    engines_.push_back(std::make_unique<core::FlowEngine>(
        config_.engine, std::move(predictor)));
    if (config_.warm_start) engines_.back()->set_warm_start(config_.warm_start);
  }
  dispatchers_.reserve(engines_.size());
  for (int i = 0; i < config_.dispatchers; ++i)
    dispatchers_.emplace_back([this, i] { dispatcher_loop(i); });
  if (config_.admin.enabled) {
    obs::WindowConfig window;
    window.interval_seconds = config_.admin.window_interval_seconds;
    window.capacity = config_.admin.window_capacity;
    window.pre_sample = [] { runtime::publish_metrics(); };
    window_ = std::make_unique<obs::WindowSampler>(std::move(window));
    window_->start();
    admin_ = std::make_unique<AdminServer>(config_.admin, *this);
  }
}

Server::~Server() { shutdown(/*drain=*/true); }

Server::Pending Server::make_pending(ServeRequest request) {
  Pending pending;
  pending.id = next_id_.fetch_add(1) + 1;
  pending.request = std::move(request);
  pending.cancel = std::make_shared<runtime::CancellationSource>();
  pending.submitted = Clock::now();
  pending.deadline =
      pending.request.deadline_seconds > 0.0
          ? pending.submitted +
                std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                        pending.request.deadline_seconds))
          : Clock::time_point::max();
  return pending;
}

RequestTicket Server::ticket_for(const Pending& pending) {
  RequestTicket ticket;
  ticket.id = pending.id;
  ticket.canceller = pending.cancel;
  return ticket;
}

ServeResponse Server::rejected_response(std::uint64_t id) {
  ServeResponse response;
  response.status = ServeStatus::kRejected;
  response.request_id = id;
  response.completion_sequence = completion_seq_.fetch_add(1) + 1;
  status_counts_[static_cast<std::size_t>(ServeStatus::kRejected)]
      .fetch_add(1);
  status_counter(ServeStatus::kRejected).inc();
  return response;
}

RequestTicket Server::submit(ServeRequest request) {
  obs::counter("serve.requests.submitted").inc();
  Pending pending = make_pending(std::move(request));
  RequestTicket ticket = ticket_for(pending);
  ticket.response = pending.promise.get_future();
  const Priority priority = pending.request.priority;
  const std::uint64_t id = pending.id;
  const bool admitted =
      config_.overflow == OverflowPolicy::kBlock
          ? queue_.push_blocking(std::move(pending), priority)
          : queue_.try_push(std::move(pending), priority);
  if (!admitted) {
    // The rejected Pending (and its promise) died with the failed push;
    // hand back a fresh, already-fulfilled future instead.
    std::promise<ServeResponse> promise;
    ticket.response = promise.get_future();
    promise.set_value(rejected_response(id));
  }
  return ticket;
}

std::optional<RequestTicket> Server::try_submit(ServeRequest request) {
  obs::counter("serve.requests.submitted").inc();
  Pending pending = make_pending(std::move(request));
  RequestTicket ticket = ticket_for(pending);
  ticket.response = pending.promise.get_future();
  const Priority priority = pending.request.priority;
  if (!queue_.try_push(std::move(pending), priority)) {
    status_counter(ServeStatus::kRejected).inc();
    status_counts_[static_cast<std::size_t>(ServeStatus::kRejected)]
        .fetch_add(1);
    return std::nullopt;
  }
  return ticket;
}

void Server::start() {
  std::lock_guard<std::mutex> lock(pause_mu_);
  paused_ = false;
  pause_cv_.notify_all();
}

void Server::shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  if (!drain) {
    std::vector<Pending> abandoned = queue_.drain();
    for (Pending& pending : abandoned) {
      ServeResponse response;
      response.status = ServeStatus::kCancelled;
      response.request_id = pending.id;
      response.completion_sequence = completion_seq_.fetch_add(1) + 1;
      status_counts_[static_cast<std::size_t>(ServeStatus::kCancelled)]
          .fetch_add(1);
      status_counter(ServeStatus::kCancelled).inc();
      pending.promise.set_value(std::move(response));
    }
  }
  start();  // unpark dispatchers so they can observe the closed queue
  for (std::thread& t : dispatchers_)
    if (t.joinable()) t.join();
  // The admin endpoint outlives the dispatchers (a scrape during drain
  // still answers; /readyz reports not-ready as soon as the queue closes)
  // and stops only once the server has no more state changes to publish.
  if (admin_) admin_->stop();
  if (window_) window_->stop();
  dump_flight_recorder("shutdown", /*rate_limited=*/false);
}

void Server::swap_backend(
    std::unique_ptr<core::PrintabilityPredictor> fresh) {
  require(fresh != nullptr, "swap_backend: null predictor");
  // Exclusive acquisition = every in-flight process() has finished and new
  // ones queue behind us. The batcher cannot be mid-flush either, but
  // set_backend still waits that condition out for belt and braces.
  std::unique_lock<std::shared_mutex> lock(backend_mu_);
  std::unique_ptr<core::PrintabilityPredictor> old = std::move(backend_);
  backend_ = std::move(fresh);
  batcher_.set_backend(*backend_);
  const std::uint64_t fp = serve::config_fingerprint(
      config_.engine, backend_->name(),
      config_.warm_start ? config_.warm_start->version() : 0);
  config_fp_.store(fp);
  for (BatchingPredictor* predictor : batch_predictors_)
    predictor->set_config_fp(fp);
  backend_swaps_.fetch_add(1);
  obs::counter("serve.backend_swaps").inc();
  log_info("serve: backend swapped to ", backend_->name(),
           " (config fingerprint ", fp, ")");
  // `old` destructs here, after the batcher stopped referencing it.
}

std::string Server::predictor_name() const {
  std::shared_lock<std::shared_mutex> lock(backend_mu_);
  return backend_->name();
}

void Server::dispatcher_loop(int index) {
  core::FlowEngine& engine = *engines_[static_cast<std::size_t>(index)];
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(pause_mu_);
      pause_cv_.wait(lock, [&] { return !paused_; });
    }
    std::optional<Pending> item = queue_.pop();
    if (!item) return;  // closed and drained
    process(engine, std::move(*item));
  }
}

void Server::process(core::FlowEngine& engine, Pending pending) {
  // Shared for the request's whole life: swap_backend's exclusive
  // acquisition therefore means "no request is touching the old backend",
  // without any pause/unpause dance on the dispatchers.
  std::shared_lock<std::shared_mutex> backend_lock(backend_mu_);
  obs::Span span("serve.request");
  span.attr("id", static_cast<double>(pending.id));
  const Clock::time_point dispatched = Clock::now();

  ServeResponse response;
  response.request_id = pending.id;
  response.queue_seconds = seconds_since(pending.submitted, dispatched);

  // The dispatcher's survival guarantee: whatever the request body throws,
  // the promise is fulfilled exactly once (here or with the computed
  // response) and the loop keeps draining. Before this catch existed, an
  // exception out of engine.run() unwound through the dispatcher thread and
  // took the whole process down via std::terminate, with every other
  // in-flight ticket's future left broken.
  try {
    compute(engine, pending, response, span);
  } catch (const std::exception& e) {
    response.status = ServeStatus::kFailed;
    if (const auto* tagged = dynamic_cast<const FlowException*>(&e))
      response.error = tagged->error();
    else
      response.error = {FlowStage::kUnknown, e.what()};
    record_error(response.error, span);
  } catch (...) {
    response.status = ServeStatus::kFailed;
    response.error = {FlowStage::kUnknown, "non-standard exception"};
    record_error(response.error, span);
  }
  // Training-data capture (capture.h): fresh, non-degraded completions
  // only. Capture is telemetry — a throwing hook costs a log line, never
  // the request.
  if (config_.capture && response.status == ServeStatus::kOk &&
      !response.degraded) {
    try {
      config_.capture->on_result(pending.request.layout,
                                 response.result.chosen,
                                 response.result.ilt.report.score());
    } catch (const std::exception& e) {
      log_warn("serve: capture hook failed: ", e.what());
    } catch (...) {
      log_warn("serve: capture hook failed: non-standard exception");
    }
  }
  finish(pending, std::move(response), dispatched);
}

void Server::compute(core::FlowEngine& engine, Pending& pending,
                     ServeResponse& response, obs::Span& span) {
  runtime::CancellationToken token = pending.cancel->token();
  if (pending.deadline != Clock::time_point::max())
    token = token.with_deadline(pending.deadline);

  const std::uint64_t key =
      result_cache_key(config_fp_.load(), pending.request.layout);
  response.cache_key = key;

  // A request dead on arrival (cancelled ticket, expired deadline) never
  // touches the engine.
  if (token.cancelled()) {
    response.status = pending.cancel->cancelled() ? ServeStatus::kCancelled
                                                  : ServeStatus::kTimeout;
    return;
  }

  // A broken cache degrades to a miss: the flow below recomputes, so a
  // cache fault costs latency, never the request (it is still counted
  // against the cache stage).
  try {
    fail::maybe_fail("serve.cache", FlowStage::kCache);
    if (std::optional<core::LdmoResult> hit = result_cache_.get(key)) {
      response.status = ServeStatus::kCached;
      response.result = std::move(*hit);
      span.attr("cached", 1.0);
      return;
    }
  } catch (const std::exception& e) {
    record_error({FlowStage::kCache, e.what()}, span);
  }

  double backoff_ms = config_.retry.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    response.attempts = attempt;
    core::LdmoResult result = engine.run(pending.request.layout, token);
    if (result.cancelled) {
      response.status = pending.cancel->cancelled() ? ServeStatus::kCancelled
                                                    : ServeStatus::kTimeout;
      return;
    }
    if (result.failed) {
      record_error(result.error, span);
      if (attempt >= config_.retry.max_attempts || token.cancelled()) {
        response.status = ServeStatus::kFailed;
        response.error = std::move(result.error);
        return;
      }
      retry_count_.fetch_add(1);
      obs::counter("serve.retries").inc();
      span.attr("retries", static_cast<double>(attempt));
      // Back off before retrying, but never past the deadline: sleep the
      // smaller of the backoff and the time remaining, then let the next
      // engine.run observe the (possibly fired) token.
      auto wait = std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(backoff_ms / 1000.0));
      if (pending.deadline != Clock::time_point::max()) {
        const Clock::time_point now = Clock::now();
        if (pending.deadline > now)
          wait = std::min(wait, pending.deadline - now);
        else
          wait = Clock::duration::zero();
      }
      if (wait > Clock::duration::zero()) std::this_thread::sleep_for(wait);
      backoff_ms *= config_.retry.backoff_multiplier;
      continue;
    }
    response.degraded = result.degraded;
    if (result.degraded) {
      degraded_count_.fetch_add(1);
      obs::counter("serve.degraded").inc();
      span.attr("degraded", 1.0);
    }
    response.status = ServeStatus::kOk;
    // Degraded results are kept out of the cache: once the predictor
    // recovers, the same layout should get its CNN-ranked masks rather
    // than a cached heuristic fallback.
    if (!result.degraded) {
      try {
        fail::maybe_fail("serve.cache", FlowStage::kCache);
        result_cache_.put(key, result);
      } catch (const std::exception& e) {
        record_error({FlowStage::kCache, e.what()}, span);
      }
    }
    response.result = std::move(result);
    return;
  }
}

void Server::record_error(const FlowError& error, obs::Span& span) {
  error_counts_[static_cast<std::size_t>(error.stage)].fetch_add(1);
  obs::counter(std::string("serve.errors.") + stage_name(error.stage)).inc();
  span.attr("error_stage", stage_name(error.stage));
  span.attr("error", error.message);
  log_warn("serve: request error in stage ", stage_name(error.stage), ": ",
           error.message);
}

void Server::finish(Pending& pending, ServeResponse response,
                    Clock::time_point dispatched) {
  const Clock::time_point done = Clock::now();
  response.service_seconds = seconds_since(dispatched, done);
  response.total_seconds = seconds_since(pending.submitted, done);
  response.completion_sequence = completion_seq_.fetch_add(1) + 1;
  status_counts_[static_cast<std::size_t>(response.status)].fetch_add(1);
  status_counter(response.status).inc();
  if (response.ok()) latency_histogram().observe(response.total_seconds);

  obs::FlightEvent event;
  event.id = response.request_id;
  event.queue_seconds = response.queue_seconds;
  event.total_seconds = response.total_seconds;
  event.attempts = response.attempts;
  event.degraded = response.degraded;
  event.set_status(status_name(response.status));
  if (response.status == ServeStatus::kFailed) {
    event.set_stage(stage_name(response.error.stage));
    event.set_error(response.error.message);
  }
  flight_recorder_.record(event);
  if (response.status == ServeStatus::kFailed)
    dump_flight_recorder("failed response", /*rate_limited=*/true);

  pending.promise.set_value(std::move(response));
}

void Server::dump_flight_recorder(const char* reason, bool rate_limited) {
  if (config_.flight.dump_path.empty()) return;
  if (rate_limited) {
    const long long now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - started_)
            .count();
    long long last = last_flight_dump_ms_.load();
    if (now_ms - last < 1000 ||
        !last_flight_dump_ms_.compare_exchange_strong(last, now_ms))
      return;
  }
  std::ofstream out(config_.flight.dump_path,
                    std::ios::binary | std::ios::trunc);
  if (!out) {
    log_warn("serve: cannot write flight recorder dump to ",
             config_.flight.dump_path);
    return;
  }
  out << flight_recorder_.to_json() << '\n';
  log_info("serve: flight recorder dumped to ", config_.flight.dump_path,
           " (", reason, ")");
}

bool Server::healthy(std::string* detail) const {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) {
      if (detail) *detail = "unhealthy: shut down";
      return false;
    }
  }
  if (!window_) {
    if (detail) *detail = "ok (no window sampler; liveness only)";
    return true;
  }
  long long terminal = 0;
  for (int s = 0; s < kServeStatusCount; ++s)
    terminal += window_->counter_delta(
        std::string("serve.requests.") +
        status_name(static_cast<ServeStatus>(s)));
  const long long failed =
      window_->counter_delta("serve.requests.failed");
  const double ratio =
      terminal > 0
          ? static_cast<double>(failed) / static_cast<double>(terminal)
          : 0.0;
  char line[128];
  std::snprintf(line, sizeof line,
                "failed %lld of %lld terminal responses in the last %.1fs "
                "(ratio %.2f, threshold %.2f)",
                failed, terminal, window_->window_seconds(), ratio,
                config_.admin.unhealthy_failed_ratio);
  const bool ok =
      failed == 0 || ratio < config_.admin.unhealthy_failed_ratio;
  if (detail) *detail = std::string(ok ? "ok: " : "unhealthy: ") + line;
  return ok;
}

bool Server::ready(std::string* detail) const {
  if (queue_.closed()) {
    if (detail) *detail = "not ready: admission closed";
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(pause_mu_);
    if (paused_) {
      if (detail) *detail = "not ready: dispatchers parked (start_paused)";
      return false;
    }
  }
  if (detail)
    *detail = "ready: queue depth " + std::to_string(queue_.depth()) + "/" +
              std::to_string(queue_.capacity());
  return true;
}

obs::RunReport Server::report() const {
  obs::RunReport report("ldmo-serve");
  report.meta("predictor", predictor_name());

  // Latency quantiles come from the serve.latency.seconds histogram (the
  // registry is process-wide, so with several servers in one process this
  // aggregates across them, like every other serve.* metric). Copied by
  // value: the section lambda renders after this snapshot dies.
  obs::HistogramSample latency;
  {
    const obs::MetricsSnapshot metrics_now = obs::registry().snapshot();
    if (const obs::HistogramSample* h =
            metrics_now.find_histogram(kLatencyHistogram))
      latency = *h;
  }

  struct StatusRow {
    const char* name;
    long long count;
  };
  std::vector<StatusRow> rows;
  for (std::size_t s = 0; s < status_counts_.size(); ++s)
    rows.push_back({status_name(static_cast<ServeStatus>(s)),
                    status_counts_[s].load()});
  long long completed = 0;
  for (const StatusRow& row : rows) completed += row.count;
  const double elapsed = seconds_since(started_, Clock::now());

  std::vector<StatusRow> error_rows;
  for (std::size_t s = 0; s < error_counts_.size(); ++s)
    error_rows.push_back({stage_name(static_cast<FlowStage>(s)),
                          error_counts_[s].load()});
  const long long retries = retry_count_.load();
  const long long degraded = degraded_count_.load();

  const std::size_t queue_depth_now = queue_.depth();
  const std::size_t queue_capacity = queue_.capacity();
  const long long cache_hits = result_cache_.hits();
  const long long cache_misses = result_cache_.misses();
  const std::size_t cache_entries = result_cache_.entries();
  const std::size_t cache_bytes = result_cache_.bytes();

  report.section("serve", [=](obs::JsonWriter& w) {
    w.begin_object();
    w.key("requests");
    w.begin_object();
    for (const StatusRow& row : rows) w.kv(row.name, row.count);
    w.kv("completed", completed);
    w.end_object();
    w.key("latency_seconds");
    w.begin_object();
    w.kv("count", latency.count);
    w.kv("p50", latency.quantile(0.50));
    w.kv("p95", latency.quantile(0.95));
    w.kv("p99", latency.quantile(0.99));
    w.end_object();
    w.kv("elapsed_seconds", elapsed);
    w.kv("throughput_rps",
         elapsed > 0.0 ? static_cast<double>(completed) / elapsed : 0.0);
    w.key("queue");
    w.begin_object();
    w.kv("depth", static_cast<long long>(queue_depth_now));
    w.kv("capacity", static_cast<long long>(queue_capacity));
    w.end_object();
    w.key("result_cache");
    w.begin_object();
    w.kv("hits", cache_hits);
    w.kv("misses", cache_misses);
    w.kv("entries", static_cast<long long>(cache_entries));
    w.kv("bytes", static_cast<long long>(cache_bytes));
    w.end_object();
    w.key("errors");
    w.begin_object();
    w.key("by_stage");
    w.begin_object();
    for (const StatusRow& row : error_rows) w.kv(row.name, row.count);
    w.end_object();
    w.kv("retries", retries);
    w.kv("degraded", degraded);
    w.end_object();
    w.end_object();
  });

  if (window_) {
    // Rolling SLO view: rates and quantiles cover only the sliding window,
    // plus per-interval timelines for queue depth and cache hits.
    struct WindowRow {
      double t = 0.0;
      double queue_depth = 0.0;
      long long requests = 0;
      long long cache_hits = 0;
    };
    std::vector<WindowRow> intervals;
    for (const obs::IntervalSample& s : window_->timeline()) {
      WindowRow row;
      row.t = s.t;
      if (const obs::GaugeSample* g =
              [&]() -> const obs::GaugeSample* {
            for (const obs::GaugeSample& gauge : s.delta.gauges)
              if (gauge.name == "serve.queue.depth") return &gauge;
            return nullptr;
          }())
        row.queue_depth = g->value;
      for (const obs::CounterDelta& c : s.delta.counters) {
        if (c.name.rfind("serve.requests.", 0) == 0 &&
            c.name != "serve.requests.submitted")
          row.requests += c.delta;
        if (c.name == "serve.cache.hits") row.cache_hits = c.delta;
      }
      intervals.push_back(row);
    }
    const double window_seconds = window_->window_seconds();
    const double request_rate =
        window_->counter_rate_prefix("serve.requests.") -
        window_->counter_rate("serve.requests.submitted");
    const double error_rate = window_->counter_rate_prefix("serve.errors.");
    const double wp50 = window_->quantile(kLatencyHistogram, 0.50);
    const double wp95 = window_->quantile(kLatencyHistogram, 0.95);
    const double wp99 = window_->quantile(kLatencyHistogram, 0.99);

    report.section("window", [=](obs::JsonWriter& w) {
      w.begin_object();
      w.kv("seconds", window_seconds);
      w.kv("request_rate", request_rate);
      w.kv("error_rate", error_rate);
      w.key("latency_seconds");
      w.begin_object();
      w.kv("p50", wp50);
      w.kv("p95", wp95);
      w.kv("p99", wp99);
      w.end_object();
      w.key("timeline");
      w.begin_array();
      for (const WindowRow& row : intervals) {
        w.begin_object();
        w.kv("t", row.t);
        w.kv("queue_depth", row.queue_depth);
        w.kv("requests", row.requests);
        w.kv("cache_hits", row.cache_hits);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    });
  }
  return report;
}

}  // namespace ldmo::serve
