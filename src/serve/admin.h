// HTTP/1.1 admin endpoint for a live Server — the repo's first networking
// code, and the deliberate stepping stone toward the multi-node wire
// protocol (ROADMAP item 3): a router needs health/readiness signals
// before it can exist.
//
// A single listener thread on 127.0.0.1 accepts and answers GET requests
// serially (scrape traffic is ~1 Hz; concurrent scrapers queue in the
// accept backlog). Endpoint catalog (DESIGN.md §12):
//
//   /metrics          OpenMetrics text exposition of the registry
//   /healthz          200 while the recent failed-request ratio is under
//                     the configured threshold; 503 otherwise (a fault
//                     drill flips it, the sliding window recovers it)
//   /readyz           200 while admission is open and dispatchers run
//   /varz             JSON: registry snapshot + serve state + window stats
//   /trace            Chrome trace JSON of finished spans (Perfetto)
//   /flightrecorder   JSON ring of recent request events
//
// Everything here runs on scrape/admin threads; the serve hot path is
// never touched (its instrumentation stays one relaxed atomic op).
#pragma once

#include <atomic>
#include <string>
#include <thread>

namespace ldmo::serve {

class Server;

struct AdminConfig {
  bool enabled = false;
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back via AdminServer::port()).
  int port = 0;
  /// Sliding-window sampler cadence and width (window = interval * capacity).
  double window_interval_seconds = 1.0;
  std::size_t window_capacity = 30;
  /// /healthz flips to 503 when failed requests exceed this fraction of
  /// terminal responses within the window.
  double unhealthy_failed_ratio = 0.5;
};

/// One parsed HTTP exchange (also the return type of http_get).
struct HttpResponse {
  int status = 0;
  std::string content_type;
  std::string body;

  bool ok() const { return status == 200; }
};

class AdminServer {
 public:
  /// Binds and starts the listener thread; throws ldmo::Error when the
  /// port cannot be bound. `server` must outlive the AdminServer.
  AdminServer(const AdminConfig& config, Server& server);

  /// Server-less admin endpoint: the registry-backed endpoints (/metrics,
  /// /varz, /trace) work as usual — net.* counters included — while the
  /// server-backed ones answer a static liveness line. This is what the
  /// router process runs: it has no serve::Server, but its per-shard
  /// routing and connection stats still need a scrape target.
  /// `process_name` labels /healthz//readyz/ ("ok (<name>)").
  AdminServer(const AdminConfig& config, std::string process_name);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Actually-bound port (differs from config.port when that was 0).
  int port() const { return port_; }

  /// Closes the listener and joins the thread (idempotent).
  void stop();

  /// Routes one request — the transport-free core of the listener, also
  /// used directly by tests.
  HttpResponse handle(const std::string& method,
                      const std::string& path) const;

 private:
  void listen_loop();
  void bind_and_start();

  const AdminConfig config_;
  Server* server_ = nullptr;  ///< null in the server-less (router) mode
  std::string process_name_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Minimal blocking HTTP GET against 127.0.0.1:`port` — scrape loops and
/// tests. Throws ldmo::Error on connect/read failure or timeout.
HttpResponse http_get(int port, const std::string& path,
                      double timeout_seconds = 5.0);

}  // namespace ldmo::serve
