#include "serve/batcher.h"

#include <chrono>
#include <utility>

#include "common/error.h"
#include "layout/fingerprint.h"

namespace ldmo::serve {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

InferenceBatcher::InferenceBatcher(core::PrintabilityPredictor& backend,
                                   BatcherConfig config)
    : backend_(&backend),
      config_(config),
      flush_counter_(obs::counter("serve.batch.flushes")),
      job_counter_(obs::counter("serve.batch.jobs")),
      candidate_counter_(obs::counter("serve.batch.candidates")),
      coalesced_flush_counter_(
          obs::counter("serve.batch.coalesced_flushes")) {
  require(config_.flush_candidates >= 1,
          "InferenceBatcher: flush_candidates must be >= 1");
  require(config_.flush_timeout_ms >= 0.0,
          "InferenceBatcher: negative flush timeout");
}

void InferenceBatcher::set_backend(core::PrintabilityPredictor& backend) {
  std::unique_lock<std::mutex> lock(mu_);
  // A straggling flush still holds the old backend outside the lock; wait
  // it out so the swap never yanks a model mid-inference.
  cv_.wait(lock, [&] { return !flush_in_progress_; });
  backend_ = &backend;
}

std::vector<double> InferenceBatcher::score(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  if (candidates.empty()) return {};

  std::unique_lock<std::mutex> lock(mu_);

  if (!config_.enabled) {
    // Direct path, still one-caller-at-a-time through the backend.
    cv_.wait(lock, [&] { return !flush_in_progress_; });
    flush_in_progress_ = true;
    std::vector<double> scores;
    std::exception_ptr error;
    lock.unlock();
    try {
      scores = backend_->score_batch(layout, candidates);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    flush_in_progress_ = false;
    cv_.notify_all();
    if (error) std::rethrow_exception(error);
    return scores;
  }

  // Join (or open) the coalescing batch.
  if (!open_) open_ = std::make_shared<Batch>();
  std::shared_ptr<Batch> batch = open_;
  const std::size_t my_index = batch->jobs.size();
  batch->jobs.push_back({&layout, &candidates});
  batch->candidates += candidates.size();
  const bool leader = my_index == 0;
  if (batch->candidates >=
      static_cast<std::size_t>(config_.flush_candidates))
    cv_.notify_all();  // wake the leader: batch is full

  if (leader) {
    // The leader parks until the batch is full or its timeout lapses, then
    // flushes — but never while another flush holds the backend.
    const Clock::time_point deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(
                               config_.flush_timeout_ms / 1000.0));
    for (;;) {
      const bool full =
          batch->candidates >=
          static_cast<std::size_t>(config_.flush_candidates);
      if (!flush_in_progress_ && (full || Clock::now() >= deadline)) break;
      if (flush_in_progress_)
        cv_.wait(lock);
      else
        cv_.wait_until(lock, deadline);
    }
    flush(batch, lock);
  } else {
    cv_.wait(lock, [&] { return batch->flushed; });
  }

  if (batch->failed) {
    // Fresh exception per joiner; see the Batch comment in batcher.h.
    if (batch->stage_tagged)
      throw FlowException(batch->error.stage, batch->error.message);
    throw Error(batch->error.message);
  }
  return std::move(batch->results[my_index]);
}

void InferenceBatcher::flush(std::shared_ptr<Batch> batch,
                             std::unique_lock<std::mutex>& lock) {
  // Close the generation: late arrivals open a fresh batch and their
  // leader queues behind flush_in_progress_.
  if (open_ == batch) open_.reset();
  flush_in_progress_ = true;
  flush_counter_.inc();
  job_counter_.inc(static_cast<long long>(batch->jobs.size()));
  candidate_counter_.inc(static_cast<long long>(batch->candidates));
  if (batch->jobs.size() > 1) coalesced_flush_counter_.inc();

  std::vector<core::ScoringJob> jobs = batch->jobs;  // stable copy
  lock.unlock();
  std::vector<std::vector<double>> results;
  bool failed = false, tagged = false;
  FlowError error;
  try {
    results = backend_->score_batch_multi(jobs);
  } catch (const FlowException& e) {
    failed = true;
    tagged = true;
    error = e.error();
  } catch (const std::exception& e) {
    failed = true;
    error = {FlowStage::kUnknown, e.what()};
  } catch (...) {
    failed = true;
    error = {FlowStage::kUnknown, "unknown scoring backend exception"};
  }
  lock.lock();
  batch->results = std::move(results);
  batch->failed = failed;
  batch->stage_tagged = tagged;
  batch->error = std::move(error);
  batch->flushed = true;
  flush_in_progress_ = false;
  cv_.notify_all();
}

BatchingPredictor::BatchingPredictor(InferenceBatcher& batcher,
                                     ShardedLruCache<double>* score_cache,
                                     std::uint64_t config_fp)
    : batcher_(batcher), score_cache_(score_cache), config_fp_(config_fp) {}

double BatchingPredictor::score(const layout::Layout& layout,
                                const layout::Assignment& assignment) {
  return score_batch(layout, {assignment}).front();
}

std::vector<double> BatchingPredictor::score_batch(
    const layout::Layout& layout,
    const std::vector<layout::Assignment>& candidates) {
  if (score_cache_ == nullptr || !score_cache_->enabled())
    return batcher_.score(layout, candidates);

  // Score tier: cached doubles are the exact values a cold run computed,
  // so mixing hits with fresh inference preserves bit-identity.
  const std::uint64_t layout_fp = layout::fingerprint(layout);
  const std::uint64_t config_fp = config_fp_.load(std::memory_order_relaxed);
  std::vector<double> scores(candidates.size());
  std::vector<std::uint64_t> keys(candidates.size());
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    keys[i] = score_cache_key(config_fp, layout_fp, candidates[i]);
    if (std::optional<double> hit = score_cache_->get(keys[i]))
      scores[i] = *hit;
    else
      missing.push_back(i);
  }
  if (!missing.empty()) {
    std::vector<layout::Assignment> fresh;
    fresh.reserve(missing.size());
    for (std::size_t i : missing) fresh.push_back(candidates[i]);
    const std::vector<double> fresh_scores = batcher_.score(layout, fresh);
    for (std::size_t j = 0; j < missing.size(); ++j) {
      scores[missing[j]] = fresh_scores[j];
      score_cache_->put(keys[missing[j]], fresh_scores[j]);
    }
  }
  return scores;
}

}  // namespace ldmo::serve
