// Bounded, priority-classed admission queue — the server's backpressure
// valve.
//
// Capacity counts queued-but-undispatched requests across all priority
// classes. When full, try_push bounces immediately (reject-with-status
// semantics) and push_blocking parks the producer until a consumer makes
// room (block semantics); the server picks between them per its configured
// OverflowPolicy. pop() drains strictly by class (interactive before normal
// before batch), FIFO within a class, and keeps returning queued items
// after close() until the queue is empty — shutdown-with-drain is the
// default server teardown.
//
// The queue publishes its depth to the "serve.queue.depth" gauge on every
// mutation, so run reports capture the backlog at snapshot time.
#pragma once

#include <array>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "serve/request.h"

namespace ldmo::serve {

template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity)
      : capacity_(capacity), depth_gauge_(obs::gauge("serve.queue.depth")) {
    require(capacity >= 1, "AdmissionQueue: capacity must be >= 1");
  }

  /// Non-blocking admission; false when full or closed.
  bool try_push(T item, Priority priority) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || size_ >= capacity_) return false;
    push_locked(std::move(item), priority);
    return true;
  }

  /// Blocking admission: waits for capacity. False only when the queue is
  /// closed (while waiting or before).
  bool push_blocking(T item, Priority priority) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || size_ < capacity_; });
    if (closed_) return false;
    push_locked(std::move(item), priority);
    return true;
  }

  /// Blocks for the next item (best priority class first, FIFO within).
  /// Returns nullopt once the queue is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || size_ > 0; });
    if (size_ == 0) return std::nullopt;  // closed and drained
    for (auto& cls : classes_) {
      if (cls.empty()) continue;
      T item = std::move(cls.front());
      cls.pop_front();
      --size_;
      depth_gauge_.set(static_cast<double>(size_));
      not_full_.notify_one();
      return item;
    }
    LDMO_ASSERT(false);  // size_ > 0 guarantees a non-empty class
    return std::nullopt;
  }

  /// Closes admission and wakes every waiter. Queued items stay poppable.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Removes and returns everything still queued (any state). The server's
  /// non-draining shutdown uses this to fail pending requests explicitly.
  std::vector<T> drain() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<T> items;
    items.reserve(size_);
    for (auto& cls : classes_) {
      for (T& item : cls) items.push_back(std::move(item));
      cls.clear();
    }
    size_ = 0;
    depth_gauge_.set(0.0);
    not_full_.notify_all();
    return items;
  }

  std::size_t depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }
  std::size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  void push_locked(T item, Priority priority) {
    classes_[static_cast<std::size_t>(priority)].push_back(std::move(item));
    ++size_;
    depth_gauge_.set(static_cast<double>(size_));
    not_empty_.notify_one();
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::array<std::deque<T>, kPriorityClasses> classes_;
  std::size_t size_ = 0;
  const std::size_t capacity_;
  bool closed_ = false;
  obs::Gauge& depth_gauge_;
};

}  // namespace ldmo::serve
