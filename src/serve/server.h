// The LDMO server: admission control in front, a pool of dispatcher-owned
// FlowEngine sessions in the middle, cross-request inference batching and a
// two-tier content-addressed cache underneath.
//
//   submit/try_submit
//     -> AdmissionQueue (bounded, priority-classed; reject or block on
//        overflow per policy)
//     -> dispatcher threads, each owning a FlowEngine session whose
//        predictor is a BatchingPredictor over the server-shared
//        InferenceBatcher + score cache
//     -> result cache (config+geometry content address) consulted before
//        and populated after every full run
//     -> ServeResponse through the ticket future.
//
// Dispatchers are dedicated std::threads, not ThreadPool tasks: the
// process ThreadPool has zero workers under --threads 1 (callers execute
// tasks inline at wait points), so a request body enqueued there would
// never start. Each dispatched run still lands its compute on the pool
// through the flow's TaskGroups and parallel_for — the dispatchers only
// pump the queue.
//
// Determinism contract (DESIGN.md §10): kOk, kCached and
// batching-coalesced responses are bit-identical — memcmp on masks, exact
// score equality — to a cold, solo FlowEngine::run of the same layout
// under the same FlowEngineConfig.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/flow_error.h"
#include "core/flow_engine.h"
#include "obs/flight_recorder.h"
#include "obs/report.h"
#include "obs/span.h"
#include "obs/window.h"
#include "runtime/cancellation.h"
#include "serve/admin.h"
#include "serve/admission_queue.h"
#include "serve/batcher.h"
#include "serve/cache_key.h"
#include "serve/capture.h"
#include "serve/request.h"
#include "serve/result_cache.h"

namespace ldmo::serve {

/// What submit() does when the admission queue is full.
enum class OverflowPolicy {
  kReject,  ///< bounce immediately with ServeStatus::kRejected
  kBlock,   ///< park the submitting thread until capacity frees up
};

struct ServeConfig {
  core::FlowEngineConfig engine;
  /// Learned ILT warm-start model, shared by every dispatcher engine (the
  /// implementation serializes concurrent predictions internally). Only
  /// consulted when engine.flow.warm_start.enabled; its weight version is
  /// folded into the config fingerprint so cached results retire on model
  /// swap.
  std::shared_ptr<const core::MaskInitializer> warm_start;
  /// Training-data capture hook (serve/capture.h): invoked on the
  /// dispatcher thread for every completed kOk non-degraded run. Null
  /// disables capture. Shared so a daemon blue/green swap carries the same
  /// sink into the replacement server.
  std::shared_ptr<CaptureHook> capture;
  int dispatchers = 2;
  std::size_t queue_capacity = 64;
  OverflowPolicy overflow = OverflowPolicy::kReject;
  /// Construct with dispatchers parked; requests queue (and can overflow)
  /// until start(). Deterministic backpressure/priority tests live on this.
  bool start_paused = false;
  BatcherConfig batcher;
  /// Result tier (full LdmoResults). Disable via result_cache.enabled.
  CacheConfig result_cache;
  /// Score tier (per-candidate predictions, much smaller values).
  CacheConfig score_cache{
      .enabled = true,
      .budget_bytes = 8ull << 20,
      .shards = 8,
      .metric_prefix = "serve.score_cache",
  };
  /// Bounded retry of stage-failed flow runs. max_attempts counts the
  /// first try, so 1 (the default) means fail fast. Backoff grows
  /// geometrically per retry and is clipped to the request's remaining
  /// deadline; a request whose token fires mid-backoff terminates with
  /// its cancellation status, never a stale retry.
  struct RetryPolicy {
    int max_attempts = 1;
    double initial_backoff_ms = 5.0;
    double backoff_multiplier = 2.0;
  };
  RetryPolicy retry;
  /// Live-telemetry admin endpoint (off by default). Enabling it also
  /// starts the sliding-window sampler that powers /healthz and the
  /// report()'s "window" section.
  AdminConfig admin;
  /// Flight recorder: ring capacity and the optional JSON dump target
  /// (written on kFailed responses — rate-limited — and at shutdown).
  struct FlightConfig {
    std::size_t capacity = 256;
    std::string dump_path;  ///< empty = no automatic file dumps
  };
  FlightConfig flight;
};

/// Caller's handle on a submitted request.
struct RequestTicket {
  std::uint64_t id = 0;
  std::future<ServeResponse> response;

  /// Cooperative cancel: pending requests terminate kCancelled at
  /// dispatch; in-flight runs abort their ILT loop within one iteration.
  void cancel() {
    if (canceller) canceller->cancel();
  }

  std::shared_ptr<runtime::CancellationSource> canceller;
};

class Server {
 public:
  /// `backend` is the shared scoring model (e.g. a trained CnnPredictor);
  /// null falls back to a RawPrintPredictor over a server-owned simulator.
  /// Dispatcher threads spawn here (parked when config.start_paused).
  explicit Server(ServeConfig config,
                  std::unique_ptr<core::PrintabilityPredictor> backend =
                      nullptr);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits per the configured OverflowPolicy. Always returns a ticket; on
  /// rejection (kReject policy, full queue — or a closed server) the
  /// future already holds a kRejected response.
  RequestTicket submit(ServeRequest request);

  /// Non-blocking admission regardless of policy; nullopt when full/closed.
  std::optional<RequestTicket> try_submit(ServeRequest request);

  /// Unparks the dispatchers (no-op unless start_paused).
  void start();

  /// Closes admission and joins the dispatchers. drain=true (default)
  /// finishes everything queued first; drain=false fails queued requests
  /// with kCancelled. Idempotent; the destructor calls shutdown(true).
  void shutdown(bool drain = true);

  /// In-process blue/green weight promotion (the flywheel's local path).
  /// Quiesces the dispatchers (blocks until in-flight requests finish and
  /// new ones wait), replaces the scoring backend, recomputes the config
  /// fingerprint from the new predictor's name — retiring every cached
  /// result and score key, exactly like the daemon's wire swap — and
  /// resumes. Queued requests are NOT lost; they proceed on the new model.
  /// Wrap the backend in core::VersionedPredictor so the name (and with it
  /// the fingerprint) actually changes.
  void swap_backend(std::unique_ptr<core::PrintabilityPredictor> fresh);

  /// Number of completed swap_backend calls.
  long long backend_swaps() const { return backend_swaps_.load(); }

  const ServeConfig& config() const { return config_; }
  std::uint64_t config_fingerprint() const { return config_fp_.load(); }
  std::size_t queue_depth() const { return queue_.depth(); }
  long long status_count(ServeStatus status) const {
    return status_counts_[static_cast<std::size_t>(status)].load();
  }
  /// Flow failures observed per stage (every attempt counts, so with
  /// retries this can exceed the kFailed response count).
  long long error_count(FlowStage stage) const {
    return error_counts_[static_cast<std::size_t>(stage)].load();
  }
  long long retry_count() const { return retry_count_.load(); }
  long long degraded_count() const { return degraded_count_.load(); }

  /// Liveness signal behind /healthz: false once shut down, or while
  /// failed requests exceed config.admin.unhealthy_failed_ratio of the
  /// terminal responses inside the sliding window (requires the admin
  /// sampler; without it only shutdown flips health). `detail` (optional)
  /// receives a one-line explanation either way.
  bool healthy(std::string* detail = nullptr) const;
  /// Readiness signal behind /readyz: admission open, dispatchers running
  /// and unparked.
  bool ready(std::string* detail = nullptr) const;

  /// Recent-request ring (always on; /flightrecorder serves it).
  const obs::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }
  /// Sliding-window sampler; null unless config.admin.enabled.
  const obs::WindowSampler* window() const { return window_.get(); }
  /// Bound admin port; -1 when the admin endpoint is disabled.
  int admin_port() const { return admin_ ? admin_->port() : -1; }

  /// Run report with a "serve" section: per-status request counts, ok/cached
  /// latency percentiles (p50/p95/p99), throughput, queue and cache state —
  /// on top of the standard registry snapshot (serve.cache.*,
  /// serve.batch.*, serve.queue.depth live there).
  obs::RunReport report() const;

  /// Copies the result-cache contents out, least-recently-used first (the
  /// snapshot/restore and hot-swap handoff hook — net/snapshot.h writes
  /// these to disk, ServeDaemon carries them across a blue/green server
  /// swap). Safe during traffic; see ShardedLruCache::export_entries.
  std::vector<std::pair<std::uint64_t, core::LdmoResult>>
  export_result_cache() {
    return result_cache_.export_entries();
  }

  /// Result-cache observability for the wire protocol's stats message.
  /// Entries are per-instance; hits/misses read the process-global
  /// "serve.cache.*" counters (cumulative across blue/green server
  /// generations, which is what a scraper wants).
  std::size_t result_cache_entries() const { return result_cache_.entries(); }
  long long result_cache_hits() const { return result_cache_.hits(); }
  long long result_cache_misses() const { return result_cache_.misses(); }

  /// Name of the active scoring backend (what config_fingerprint() folded
  /// in — the wire stats message reports it for swap verification).
  std::string predictor_name() const;

  /// Replays exported entries into the result cache (in order, so recency
  /// survives the round trip) and returns how many were admitted. Keys are
  /// content addresses that embed the config fingerprint, so entries from a
  /// different configuration are harmless — they can never be looked up —
  /// but callers should filter on config_fingerprint() to avoid dead
  /// weight.
  std::size_t import_result_cache(
      std::vector<std::pair<std::uint64_t, core::LdmoResult>> entries) {
    if (!result_cache_.enabled()) return 0;
    for (auto& [key, result] : entries)
      result_cache_.put(key, std::move(result));
    return entries.size();
  }

 private:
  using Clock = std::chrono::steady_clock;

  /// A queued request with its terminal-state machinery.
  struct Pending {
    std::uint64_t id = 0;
    ServeRequest request;
    std::shared_ptr<runtime::CancellationSource> cancel;
    Clock::time_point submitted;
    Clock::time_point deadline;  ///< max() when none
    std::promise<ServeResponse> promise;
  };

  Pending make_pending(ServeRequest request);
  RequestTicket ticket_for(const Pending& pending);
  ServeResponse rejected_response(std::uint64_t id);
  void dispatcher_loop(int index);
  void process(core::FlowEngine& engine, Pending pending);
  /// Fills `response` with the request's terminal state (cache lookup,
  /// retry loop around FlowEngine::run, cache fill). Plain returns only —
  /// process() owns the promise and fulfills it exactly once, catching
  /// anything compute() lets escape as a kFailed response.
  void compute(core::FlowEngine& engine, Pending& pending,
               ServeResponse& response, obs::Span& span);
  void record_error(const FlowError& error, obs::Span& span);
  void finish(Pending& pending, ServeResponse response,
              Clock::time_point dispatched);
  /// Writes the flight-recorder JSON to config.flight.dump_path (no-op
  /// when that is empty); kFailed-triggered dumps are rate-limited to one
  /// per second so an error storm cannot turn into an I/O storm.
  void dump_flight_recorder(const char* reason, bool rate_limited);

  ServeConfig config_;
  std::unique_ptr<litho::LithoSimulator> backend_simulator_;  ///< default only
  /// Guards backend_ replacement against in-flight request processing:
  /// process() holds it shared for the life of a request, swap_backend
  /// holds it exclusive. Requests are seconds and swaps are rare, so the
  /// rwlock costs one uncontended shared acquisition per request.
  mutable std::shared_mutex backend_mu_;
  std::unique_ptr<core::PrintabilityPredictor> backend_;
  std::atomic<std::uint64_t> config_fp_{0};

  InferenceBatcher batcher_;
  ShardedLruCache<double> score_cache_;
  ShardedLruCache<core::LdmoResult> result_cache_;

  AdmissionQueue<Pending> queue_;
  std::vector<std::unique_ptr<core::FlowEngine>> engines_;
  /// The BatchingPredictor each engine owns (non-owning view), so
  /// swap_backend can push the new fingerprint into the score-cache
  /// namespacing of every dispatcher.
  std::vector<BatchingPredictor*> batch_predictors_;
  std::vector<std::thread> dispatchers_;
  std::atomic<long long> backend_swaps_{0};

  mutable std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> completion_seq_{0};
  std::array<std::atomic<long long>, kServeStatusCount> status_counts_{};
  std::array<std::atomic<long long>, kFlowStageCount> error_counts_{};
  std::atomic<long long> retry_count_{0};
  std::atomic<long long> degraded_count_{0};
  Clock::time_point started_;

  obs::FlightRecorder flight_recorder_;
  std::atomic<long long> last_flight_dump_ms_{-1000000};
  std::unique_ptr<obs::WindowSampler> window_;
  std::unique_ptr<AdminServer> admin_;

  mutable std::mutex shutdown_mu_;
  bool shut_down_ = false;
};

}  // namespace ldmo::serve
