// Sharded LRU cache with a byte budget — the serving layer's
// content-addressed result store.
//
// Keys are 64-bit content fingerprints (serve/cache_key.h); values are
// whatever the tier stores: full LdmoResults for the result tier, predicted
// scores for the score tier. Shard selection mixes the key so one hot
// layout cannot serialize every lookup; each shard owns an independent
// mutex, LRU list and slice of the byte budget, and evicts least-recently-
// used entries until an insertion fits. Values whose own footprint exceeds
// a shard's budget are not cached at all (counted, not fatal) — one huge
// result must not wipe a whole shard.
//
// get() returns a COPY under the shard lock. That is the thread-safety
// contract (a reference could be evicted under the reader) and the
// determinism contract (the caller owns an immutable snapshot bit-identical
// to what was stored).
//
// Hit/miss/eviction/insert counters and byte/entry gauges are published
// under "<metric_prefix>.*" ("serve.cache.*" for the result tier), so run
// reports capture cache effectiveness for free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"

namespace ldmo::serve {

/// Sizing and naming knobs of one cache tier.
struct CacheConfig {
  bool enabled = true;
  std::size_t budget_bytes = 64ull << 20;  ///< across all shards
  int shards = 8;
  std::string metric_prefix = "serve.cache";
};

template <typename V>
class ShardedLruCache {
 public:
  /// `bytes_of` prices a value for budget accounting (entry bookkeeping
  /// overhead is added internally).
  using BytesFn = std::function<std::size_t(const V&)>;

  ShardedLruCache(CacheConfig config, BytesFn bytes_of)
      : config_(std::move(config)),
        bytes_of_(std::move(bytes_of)),
        hits_(obs::counter(config_.metric_prefix + ".hits")),
        misses_(obs::counter(config_.metric_prefix + ".misses")),
        evictions_(obs::counter(config_.metric_prefix + ".evictions")),
        insertions_(obs::counter(config_.metric_prefix + ".insertions")),
        oversize_(obs::counter(config_.metric_prefix + ".oversize_skips")),
        bytes_gauge_(obs::gauge(config_.metric_prefix + ".bytes")),
        entries_gauge_(obs::gauge(config_.metric_prefix + ".entries")) {
    require(config_.shards >= 1, "ShardedLruCache: shards must be >= 1");
    require(bytes_of_ != nullptr, "ShardedLruCache: null bytes function");
    shards_ = std::vector<Shard>(static_cast<std::size_t>(config_.shards));
    shard_budget_ = config_.budget_bytes / shards_.size();
  }

  /// Copy of the cached value, refreshing its recency; nullopt on miss.
  std::optional<V> get(std::uint64_t key) {
    if (!config_.enabled) return std::nullopt;
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.inc();
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    hits_.inc();
    return it->second->value;
  }

  /// Inserts (or refreshes) `key`, evicting LRU entries until the shard's
  /// budget fits. Oversize values are skipped.
  void put(std::uint64_t key, V value) {
    if (!config_.enabled) return;
    const std::size_t bytes = bytes_of_(value) + kEntryOverhead;
    Shard& shard = shard_of(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      // Refresh: replace in place and re-front.
      shard.bytes -= it->second->bytes;
      adjust_totals(-static_cast<long long>(it->second->bytes));
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      shard.bytes += bytes;
      adjust_totals(static_cast<long long>(bytes));
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      evict_over_budget(shard);
      return;
    }
    if (bytes > shard_budget_) {
      oversize_.inc();
      return;
    }
    shard.lru.push_front(Entry{key, std::move(value), bytes});
    shard.index.emplace(key, shard.lru.begin());
    shard.bytes += bytes;
    adjust_totals(static_cast<long long>(bytes), +1);
    insertions_.inc();
    evict_over_budget(shard);
  }

  /// Copies every entry out, least-recently-used first within each shard —
  /// replaying the result through put() in order reproduces the recency
  /// ranking (the last put is the most recent). Powers the serving layer's
  /// cache snapshot/restore (net/snapshot.h); shards are locked one at a
  /// time, so a snapshot during traffic is consistent per shard and never
  /// blocks the whole cache.
  std::vector<std::pair<std::uint64_t, V>> export_entries() {
    std::vector<std::pair<std::uint64_t, V>> out;
    if (!config_.enabled) return out;
    out.reserve(entries());
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it)
        out.emplace_back(it->key, it->value);
    }
    return out;
  }

  bool enabled() const { return config_.enabled; }
  const CacheConfig& config() const { return config_; }

  std::size_t entries() const {
    return static_cast<std::size_t>(entries_total_.load());
  }
  std::size_t bytes() const {
    return static_cast<std::size_t>(bytes_total_.load());
  }
  long long hits() const { return hits_.value(); }
  long long misses() const { return misses_.value(); }
  long long evictions() const { return evictions_.value(); }

 private:
  struct Entry {
    std::uint64_t key;
    V value;
    std::size_t bytes;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< front = most recently used
    std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
        index;
    std::size_t bytes = 0;
  };

  /// Map + list node bookkeeping charged per entry so a tier of tiny
  /// values (the score cache) still respects its budget.
  static constexpr std::size_t kEntryOverhead = 64;

  Shard& shard_of(std::uint64_t key) {
    // splitmix64 finalizer: cache keys are already hashes, but shard
    // selection uses different bits than any caller-side partitioning.
    std::uint64_t x = key + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    return shards_[x % shards_.size()];
  }

  void evict_over_budget(Shard& shard) {
    while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
      Entry& victim = shard.lru.back();
      shard.bytes -= victim.bytes;
      adjust_totals(-static_cast<long long>(victim.bytes), -1);
      shard.index.erase(victim.key);
      shard.lru.pop_back();
      evictions_.inc();
    }
  }

  void adjust_totals(long long byte_delta, long long entry_delta = 0) {
    bytes_gauge_.set(static_cast<double>(
        bytes_total_.fetch_add(byte_delta) + byte_delta));
    if (entry_delta != 0)
      entries_gauge_.set(static_cast<double>(
          entries_total_.fetch_add(entry_delta) + entry_delta));
  }

  CacheConfig config_;
  BytesFn bytes_of_;
  std::vector<Shard> shards_;
  std::size_t shard_budget_ = 0;
  std::atomic<long long> bytes_total_{0};
  std::atomic<long long> entries_total_{0};
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;
  obs::Counter& insertions_;
  obs::Counter& oversize_;
  obs::Gauge& bytes_gauge_;
  obs::Gauge& entries_gauge_;
};

}  // namespace ldmo::serve
