// Cross-request inference batching.
//
// The flow's predict phase scores every candidate of one layout in one
// score_batch call. Under concurrent serving, many dispatchers hit that
// phase at overlapping times with small candidate lists; scoring each list
// solo leaves the CNN's fixed-size inference batches mostly empty. The
// InferenceBatcher coalesces: concurrent score() calls join an open batch,
// the first joiner (the leader) flushes it through the backend's
// score_batch_multi once the batch holds enough candidates or a flush
// timeout expires, and every joiner wakes with exactly its own scores.
//
// Determinism: score_batch_multi is REQUIRED (predictor.h) to return
// bit-identical scores to a solo score_batch per job, so coalescing never
// changes a response — only its latency. The batcher serializes backend
// entry (one flush at a time; the direct path takes the same mutex), so
// backends need not be thread-safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "common/flow_error.h"
#include "core/predictor.h"
#include "obs/metrics.h"
#include "serve/cache_key.h"
#include "serve/result_cache.h"

namespace ldmo::serve {

struct BatcherConfig {
  /// Disabled = every score() goes straight to the backend (still
  /// serialized); the serve-bench --no-batch baseline.
  bool enabled = true;
  /// Flush as soon as the open batch holds this many candidates.
  int flush_candidates = 16;
  /// Flush a non-full batch this long after its first joiner arrived.
  double flush_timeout_ms = 2.0;
};

class InferenceBatcher {
 public:
  /// `backend` must outlive the batcher. All backend entry happens under
  /// the batcher's serialization, whatever `config.enabled` says.
  InferenceBatcher(core::PrintabilityPredictor& backend,
                   BatcherConfig config);

  /// Scores `candidates` for `layout`, possibly coalesced with concurrent
  /// callers. Blocks until this caller's scores are ready; rethrows any
  /// backend exception in every joined caller. The referenced layout and
  /// candidate list must stay alive for the duration of the call.
  std::vector<double> score(const layout::Layout& layout,
                            const std::vector<layout::Assignment>& candidates);

  /// Repoints the batcher at a new backend (the server's in-process
  /// blue/green swap). Waits out any in-flight flush under the batcher
  /// lock; the caller (Server::swap_backend) additionally quiesces the
  /// dispatchers, so no score() can be mid-join. The new backend must
  /// outlive the batcher or the next set_backend.
  void set_backend(core::PrintabilityPredictor& backend);

  const BatcherConfig& config() const { return config_; }
  core::PrintabilityPredictor& backend() { return *backend_; }

 private:
  /// One coalescing generation: jobs joined before its flush started.
  /// A backend failure is captured as a FlowError VALUE, not an
  /// exception_ptr: rethrowing one shared exception_ptr would hand every
  /// joiner thread the same underlying exception object, racing one
  /// thread's catch-cleanup against another's reads. Each joiner throws
  /// its own fresh exception built from the value instead.
  struct Batch {
    std::vector<core::ScoringJob> jobs;
    std::vector<std::vector<double>> results;  ///< aligned with jobs
    std::size_t candidates = 0;
    bool flushed = false;
    bool failed = false;
    bool stage_tagged = false;  ///< original exception was a FlowException
    FlowError error;
  };

  void flush(std::shared_ptr<Batch> batch,
             std::unique_lock<std::mutex>& lock);

  core::PrintabilityPredictor* backend_;  ///< never null; swaps under mu_
  const BatcherConfig config_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::shared_ptr<Batch> open_;     ///< batch accepting joiners (may be null)
  bool flush_in_progress_ = false;  ///< serializes backend entry

  obs::Counter& flush_counter_;
  obs::Counter& job_counter_;
  obs::Counter& candidate_counter_;
  obs::Counter& coalesced_flush_counter_;
};

/// Per-dispatcher predictor adapter: routes the flow's predict phase
/// through the score cache and the shared batcher. Each dispatcher's
/// FlowEngine owns one; they all reference the server's shared batcher and
/// cache, so inference coalesces and scores dedupe across dispatchers.
class BatchingPredictor : public core::PrintabilityPredictor {
 public:
  /// `batcher` (and its backend) must outlive this predictor;
  /// `score_cache` may be null to disable the score tier. `config_fp`
  /// namespaces cached scores by flow configuration.
  BatchingPredictor(InferenceBatcher& batcher,
                    ShardedLruCache<double>* score_cache,
                    std::uint64_t config_fp);

  double score(const layout::Layout& layout,
               const layout::Assignment& assignment) override;
  std::vector<double> score_batch(
      const layout::Layout& layout,
      const std::vector<layout::Assignment>& candidates) override;
  /// Backend's name: the adapter must not change the config fingerprint.
  std::string name() const override { return batcher_.backend().name(); }

  /// Re-namespaces cached scores after a backend swap (the new fingerprint
  /// embeds the new predictor name, so scores from the old model become
  /// unreachable). Called by Server::swap_backend while dispatchers are
  /// quiesced; atomic so a racing reader sees old or new, never torn.
  void set_config_fp(std::uint64_t config_fp) {
    config_fp_.store(config_fp, std::memory_order_relaxed);
  }

 private:
  InferenceBatcher& batcher_;
  ShardedLruCache<double>* score_cache_;
  std::atomic<std::uint64_t> config_fp_;
};

}  // namespace ldmo::serve
