#include "serve/request.h"

namespace ldmo::serve {

const char* priority_name(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kNormal:
      return "normal";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

const char* status_name(ServeStatus s) {
  switch (s) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kCached:
      return "cached";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kTimeout:
      return "timeout";
    case ServeStatus::kCancelled:
      return "cancelled";
    case ServeStatus::kFailed:
      return "failed";
  }
  return "unknown";
}

}  // namespace ldmo::serve
