// Content-address computation for the serving caches.
//
// A result-cache key must change whenever anything that could change the
// produced masks changes: the layout geometry OR any flow configuration
// knob (optics, resist, metrology, generation, ILT hyperparameters, the
// predictor that ranks candidates). Two keys:
//
//   result key = H(version, config fingerprint, layout fingerprint)
//   score  key = H(version, config fingerprint, layout fingerprint,
//                  candidate assignment)
//
// Layout names are deliberately excluded (layout::fingerprint hashes
// geometry only): the same clip submitted under two names is the same
// work. Hashing the geometry is equivalent to hashing the raster the CNN
// and simulator consume, because rasterization is a pure function of
// geometry + config — and the config is already in the key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/flow_engine.h"
#include "layout/layout.h"

namespace ldmo::serve {

/// Fingerprint of every configuration field that can affect a flow result.
/// `predictor_name` folds the candidate-ranking model identity in (swap
/// the predictor, invalidate the cache). `warm_start_version` is the
/// MaskInitializer weight fingerprint (0 when no initializer is
/// installed): with the warm-start flag on, retraining the seed model
/// changes the produced masks, so it must retire every cached result.
std::uint64_t config_fingerprint(const core::FlowEngineConfig& config,
                                 const std::string& predictor_name,
                                 std::uint64_t warm_start_version = 0);

/// Result-tier key: one full LdmoResult per (config, layout geometry).
std::uint64_t result_cache_key(std::uint64_t config_fp,
                               const layout::Layout& layout);

/// Score-tier key: one predicted score per (config, layout geometry,
/// candidate assignment).
std::uint64_t score_cache_key(std::uint64_t config_fp,
                              std::uint64_t layout_fp,
                              const layout::Assignment& assignment);

/// Approximate resident footprint of a cached result, for the cache's byte
/// budget (grids dominate; trajectory rows and the report are counted too).
std::size_t estimated_bytes(const core::LdmoResult& result);

}  // namespace ldmo::serve
