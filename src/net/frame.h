// Length-prefixed binary framing over TCP.
//
// Every message on the wire is one frame:
//
//   offset  size  field
//   0       4     magic "LDMO"
//   4       2     protocol version (u16 LE) = 1
//   6       2     message type (u16 LE)
//   8       4     payload length (u32 LE, <= 64 MiB)
//   12      8     payload checksum (u64 LE) = fnv1a(payload bytes)
//   20      n     payload (a wire.h message, or raw bytes for weight blobs)
//
// The 20-byte header is decoded with the same WireReader as payloads, so a
// corrupt header fails with peer attribution and byte offset. A clean EOF
// exactly on a frame boundary is not an error (read_frame returns nullopt);
// EOF anywhere else — mid-header or mid-payload — throws
// FlowException(FlowStage::kNet) naming the peer and how far it got.
//
// Failpoint sites: "net.frame.read" fires before reading a frame,
// "net.frame.write" before writing one — both throw as kNet faults, which
// to the remote side is indistinguishable from a connection cut mid-frame.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ldmo::net {

inline constexpr char kFrameMagic[4] = {'L', 'D', 'M', 'O'};
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
inline constexpr std::size_t kMaxPayloadBytes = 64ull << 20;

/// Frame vocabulary. Values are wire format — never renumber; append only.
enum class MessageType : std::uint16_t {
  kSubmitRequest = 1,   ///< wire request  -> worker (payload: "rq1")
  kSubmitResponse = 2,  ///< worker -> caller (payload: "rp1")
  kPing = 3,            ///< liveness probe (empty payload)
  kPong = 4,            ///< liveness answer (empty payload)
  kStats = 5,           ///< stats query (empty payload)
  kStatsResponse = 6,   ///< worker -> caller (payload: "st1")
  kSwapWeights = 7,     ///< weight hot-swap (payload: u64 version +
                        ///< u32 blob length + serialized weights; an empty
                        ///< blob means "rolling restart, same weights")
  kSwapAck = 8,         ///< swap applied (payload: u64 active version)
  kError = 9,           ///< request-level failure (payload: u8 stage + str)
};

const char* message_type_name(MessageType type);

/// One decoded frame.
struct Frame {
  MessageType type = MessageType::kPing;
  std::vector<std::uint8_t> payload;
};

/// Serializes header + payload into one contiguous buffer (the only
/// allocation on the send path; written with a single send loop so a frame
/// is never interleaved with another thread's bytes on the same socket).
std::vector<std::uint8_t> encode_frame(MessageType type,
                                       const std::vector<std::uint8_t>& payload);

/// Writes one frame to `fd`. Throws FlowException(kNet) naming `peer` on
/// send failure or when the "net.frame.write" failpoint fires.
void write_frame(int fd, MessageType type,
                 const std::vector<std::uint8_t>& payload,
                 const std::string& peer);

/// Reads one frame from `fd`. Returns nullopt on clean EOF at a frame
/// boundary (orderly peer close). Throws FlowException(kNet) — with `peer`
/// and the byte offset reached — on mid-frame EOF, bad magic, version or
/// type, oversized payload, or checksum mismatch; also when the
/// "net.frame.read" failpoint fires.
std::optional<Frame> read_frame(int fd, const std::string& peer);

/// Writes a kError frame (u8 stage + message string). Best-effort: a send
/// failure is swallowed — the caller is about to close the connection
/// anyway.
void send_error_frame(int fd, const std::string& peer, int stage,
                      const std::string& message);

}  // namespace ldmo::net
