// Result-cache snapshot file: persists a worker's warm cache across a
// process restart, so a rolling restart (or a kSwapWeights with an empty
// blob) does not cost the cluster its hit rate.
//
// File layout (all wire.h little-endian encoding):
//
//   magic "LDSN", u16 snapshot version = 1,
//   u64 config fingerprint of the server that exported the entries,
//   u32 entry count, then per entry: u64 cache key + "rs1" result message.
//
// Entries are stored least-recently-used first (the export order of
// ShardedLruCache::export_entries), so replaying them through put() in file
// order reconstructs the recency ranking. Loading validates magic, version
// and byte-exact decode; the config fingerprint lets the loader refuse a
// snapshot taken under a different configuration (those keys could never be
// looked up — carrying them would only burn cache budget).
//
// Writes go to `<path>.tmp` then rename into place, the same atomic
// discipline as nn::save_parameters: a crash mid-write never destroys the
// previous snapshot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/ldmo_flow.h"

namespace ldmo::net {

struct CacheSnapshot {
  std::uint64_t config_fingerprint = 0;
  std::vector<std::pair<std::uint64_t, core::LdmoResult>> entries;
};

/// Serializes `snapshot` to `path` (tmp-then-rename). Throws
/// FlowException(FlowStage::kNet) on I/O failure.
void save_cache_snapshot(const std::string& path,
                         const CacheSnapshot& snapshot);

/// Loads a snapshot. Returns nullopt when `path` does not exist (a cold
/// start, not an error). Throws FlowException(kNet) — message carries the
/// path and byte offset — on truncation, corruption or version mismatch.
std::optional<CacheSnapshot> load_cache_snapshot(const std::string& path);

}  // namespace ldmo::net
