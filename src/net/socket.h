// Thin RAII TCP plumbing for the wire protocol: an owned socket fd, a
// loopback connect with bounded retry, and a poll-based listener.
//
// The listener reuses the stop-flag pattern proven by the serve admin
// endpoint (serve/admin.cpp): accept() only after poll() reports POLLIN
// with a 100 ms timeout, so a stop flag is honored within one poll tick and
// shutdown never hangs in a blocking accept. Binding port 0 picks an
// ephemeral port, read back via port() — the cluster tests depend on this
// to run many processes without port collisions.
#pragma once

#include <atomic>
#include <string>

namespace ldmo::net {

/// Owned socket fd; closes on destruction. Movable, not copyable.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();

  /// Send/receive timeout on the fd (guards against a hung peer wedging a
  /// frame read forever).
  void set_timeout(double seconds);

 private:
  int fd_ = -1;
};

/// Connects to 127.0.0.1:`port` with up to `attempts` tries spaced
/// `retry_delay_seconds` apart (a just-forked worker needs a beat to bind).
/// Failpoint site "net.connect" fires as a kNet fault before each attempt.
/// Throws FlowException(FlowStage::kNet) naming the endpoint when every
/// attempt fails.
Socket connect_loopback(int port, double timeout_seconds = 10.0,
                        int attempts = 1,
                        double retry_delay_seconds = 0.05);

/// Listening socket on 127.0.0.1 with poll-gated accept.
class TcpListener {
 public:
  /// Binds and listens; port 0 picks an ephemeral port. Throws
  /// FlowException(kNet) when the port cannot be bound.
  explicit TcpListener(int port);

  int port() const { return port_; }

  /// Accepts one connection, polling at 100 ms so `stop` is honored
  /// promptly. Returns an invalid Socket once `stop` is set.
  Socket accept(const std::atomic<bool>& stop);

 private:
  Socket listen_;
  int port_ = 0;
};

/// "127.0.0.1:<port>" — the context string used in frame/decode errors.
std::string endpoint_name(int port);

}  // namespace ldmo::net
