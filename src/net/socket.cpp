#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <thread>

#include "common/failpoint.h"
#include "common/flow_error.h"
#include "obs/metrics.h"

namespace ldmo::net {

namespace {

constexpr int kListenBacklog = 64;
constexpr int kPollMillis = 100;  ///< stop-flag latency of accept()

sockaddr_in loopback_addr(int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  return addr;
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_timeout(double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

Socket connect_loopback(int port, double timeout_seconds, int attempts,
                        double retry_delay_seconds) {
  const std::string endpoint = endpoint_name(port);
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(retry_delay_seconds));
    try {
      fail::maybe_fail("net.connect", FlowStage::kNet);
    } catch (...) {
      obs::counter("net.connect.errors").inc();
      if (attempt + 1 == attempts) throw;
      continue;
    }
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) continue;
    sock.set_timeout(timeout_seconds);
    const int one = 1;
    setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const sockaddr_in addr = loopback_addr(port);
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      obs::counter("net.connect.ok").inc();
      return sock;
    }
    obs::counter("net.connect.errors").inc();
  }
  throw FlowException(FlowStage::kNet,
                      "connect (" + endpoint + "): no connection after " +
                          std::to_string(attempts) + " attempt(s)");
}

TcpListener::TcpListener(int port) {
  listen_ = Socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!listen_.valid())
    throw FlowException(FlowStage::kNet, "listener: cannot create socket");
  const int one = 1;
  setsockopt(listen_.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  const sockaddr_in addr = loopback_addr(port);
  if (::bind(listen_.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_.fd(), kListenBacklog) != 0)
    throw FlowException(FlowStage::kNet,
                        "listener: cannot bind " + endpoint_name(port));

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  getsockname(listen_.fd(), reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

Socket TcpListener::accept(const std::atomic<bool>& stop) {
  while (!stop.load()) {
    pollfd pfd{};
    pfd.fd = listen_.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // timeout (stop-flag check) or EINTR
    const int client = ::accept(listen_.fd(), nullptr, nullptr);
    if (client < 0) continue;
    Socket sock(client);
    const int one = 1;
    setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    obs::counter("net.listener.accepts").inc();
    return sock;
  }
  return Socket();
}

std::string endpoint_name(int port) {
  return "127.0.0.1:" + std::to_string(port);
}

}  // namespace ldmo::net
