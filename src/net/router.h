// Consistent-hash router: the cluster's front door.
//
// Clients speak the same wire protocol to the router as to a worker; the
// router forwards each submit to the worker shard that owns its route key
// and relays the response. The route key is the content address the result
// caches already use — Fnv1a over (config fingerprint, layout geometry
// fingerprint) — so the same layout under the same configuration always
// lands on the same worker, and cache affinity across the cluster comes
// free: N workers hold N disjoint warm sets instead of N copies of one.
//
// The ring hashes each worker endpoint at `replicas` virtual points
// (Fnv1a("ldmo.net.ring") over endpoint and replica index); a key routes
// to the first point clockwise. lookup_n() yields distinct workers in ring
// order — the failover sequence: when the owner is unreachable (connect
// refused, frame fault after client retries), the router retries the next
// shard and counts a net.router.failover. Requests are idempotent, so
// failover is always safe; it costs only a cold cache on the substitute.
//
// Per-shard counters land in the process registry as
// net.router.shard.<port>.{forwarded,errors} next to the aggregate
// net.router.* set — all exported through /metrics and /varz by the
// router's server-less AdminServer.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "serve/admin.h"

namespace ldmo::net {

/// Consistent-hash ring over worker ports (loopback cluster).
class HashRing {
 public:
  explicit HashRing(std::vector<int> worker_ports, int replicas = 64);

  /// Route key of one request: the cluster-wide content address.
  static std::uint64_t route_key(std::uint64_t config_fp,
                                 std::uint64_t layout_fp);

  /// Owning worker port for `key`.
  int lookup(std::uint64_t key) const;

  /// Up to `n` distinct worker ports in ring (failover) order, starting at
  /// the owner.
  std::vector<int> lookup_n(std::uint64_t key, int n) const;

  std::size_t worker_count() const { return ports_.size(); }
  const std::vector<int>& worker_ports() const { return ports_; }

 private:
  std::vector<int> ports_;
  std::vector<std::pair<std::uint64_t, int>> points_;  ///< sorted by hash
};

struct RouterConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port.
  int listen_port = 0;
  std::vector<int> worker_ports;
  int ring_replicas = 64;
  /// Per-forward client transport settings (short connect schedule — a
  /// dead worker should fail over fast, not hang the request).
  double worker_timeout_seconds = 120.0;
  int worker_net_retries = 1;
  /// Optional admin endpoint (server-less mode: /metrics, /varz, /healthz).
  serve::AdminConfig admin;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  int port() const { return listener_.port(); }
  int admin_port() const { return admin_ ? admin_->port() : -1; }
  const HashRing& ring() const { return ring_; }

  /// Stops accepting and joins every connection thread (idempotent; the
  /// destructor calls it).
  void stop();

 private:
  /// One worker connection + its lock (a forward holds the lock for the
  /// whole round trip; concurrent requests to the same shard serialize,
  /// matching the one-connection-per-thread client discipline).
  struct Shard {
    int port = 0;
    std::mutex mu;
    std::unique_ptr<Client> client;
    obs::Counter* forwarded = nullptr;
    obs::Counter* errors = nullptr;
  };

  void accept_loop();
  void handle_connection(Socket sock, const std::string& peer);
  bool handle_frame(int fd, const std::string& peer);
  void handle_submit(int fd, const std::string& peer,
                     const std::vector<std::uint8_t>& payload);
  void handle_stats(int fd, const std::string& peer);
  void handle_swap(int fd, const std::string& peer,
                   const std::vector<std::uint8_t>& payload);
  Shard& shard_for_port(int port);

  /// Cluster config fingerprint, fetched lazily from any worker's stats
  /// (the router carries no flow configuration of its own); 0 until known.
  std::uint64_t config_fingerprint();

  RouterConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> config_fp_{0};

  TcpListener listener_;
  std::unique_ptr<serve::AdminServer> admin_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  bool stopped_ = false;
};

}  // namespace ldmo::net
