#include "net/frame.h"

#include <sys/socket.h>

#include <cstring>

#include "common/failpoint.h"
#include "common/hash.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace ldmo::net {

namespace {

[[noreturn]] void frame_fail(const std::string& peer, const std::string& what,
                             std::size_t offset) {
  obs::counter("net.frame.errors").inc();
  throw FlowException(FlowStage::kNet,
                      "frame (" + peer + "): " + what + " at byte " +
                          std::to_string(offset));
}

/// recv() exactly `len` bytes. Returns the byte count actually read, which
/// is short only when the connection closed (or errored) first.
std::size_t recv_exact(int fd, std::uint8_t* out, std::size_t len) {
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::recv(fd, out + got, len - got, 0);
    if (n <= 0) break;
    got += static_cast<std::size_t>(n);
  }
  return got;
}

}  // namespace

const char* message_type_name(MessageType type) {
  switch (type) {
    case MessageType::kSubmitRequest: return "submit-request";
    case MessageType::kSubmitResponse: return "submit-response";
    case MessageType::kPing: return "ping";
    case MessageType::kPong: return "pong";
    case MessageType::kStats: return "stats";
    case MessageType::kStatsResponse: return "stats-response";
    case MessageType::kSwapWeights: return "swap-weights";
    case MessageType::kSwapAck: return "swap-ack";
    case MessageType::kError: return "error";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_frame(
    MessageType type, const std::vector<std::uint8_t>& payload) {
  WireWriter header;
  header.u8(static_cast<std::uint8_t>(kFrameMagic[0]));
  header.u8(static_cast<std::uint8_t>(kFrameMagic[1]));
  header.u8(static_cast<std::uint8_t>(kFrameMagic[2]));
  header.u8(static_cast<std::uint8_t>(kFrameMagic[3]));
  header.u16(kProtocolVersion);
  header.u16(static_cast<std::uint16_t>(type));
  header.u32(static_cast<std::uint32_t>(payload.size()));
  header.u64(common::fnv1a(payload.data(), payload.size()));
  std::vector<std::uint8_t> out = header.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void write_frame(int fd, MessageType type,
                 const std::vector<std::uint8_t>& payload,
                 const std::string& peer) {
  fail::maybe_fail("net.frame.write", FlowStage::kNet);
  if (payload.size() > kMaxPayloadBytes)
    frame_fail(peer, "payload too large to send (" +
                         std::to_string(payload.size()) + " bytes)", 0);
  const std::vector<std::uint8_t> bytes = encode_frame(type, payload);
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0)
      frame_fail(peer, std::string("send failed mid-") +
                           message_type_name(type) + "-frame", sent);
    sent += static_cast<std::size_t>(n);
  }
  obs::counter("net.frame.writes").inc();
  obs::counter("net.frame.bytes_sent").inc(
      static_cast<long long>(bytes.size()));
}

std::optional<Frame> read_frame(int fd, const std::string& peer) {
  fail::maybe_fail("net.frame.read", FlowStage::kNet);

  std::uint8_t header[kFrameHeaderBytes];
  const std::size_t head_got = recv_exact(fd, header, kFrameHeaderBytes);
  if (head_got == 0) return std::nullopt;  // clean EOF between frames
  if (head_got < kFrameHeaderBytes)
    frame_fail(peer, "connection closed mid-header", head_got);

  WireReader r(header, kFrameHeaderBytes, peer + " frame header");
  for (char magic : kFrameMagic) {
    if (r.u8() != static_cast<std::uint8_t>(magic))
      frame_fail(peer, "bad magic (not an LDMO frame)", r.offset() - 1);
  }
  const std::uint16_t version = r.u16();
  if (version != kProtocolVersion)
    frame_fail(peer,
               "protocol version " + std::to_string(version) +
                   " (this build speaks " + std::to_string(kProtocolVersion) +
                   ")",
               4);
  const std::uint16_t raw_type = r.u16();
  if (raw_type < static_cast<std::uint16_t>(MessageType::kSubmitRequest) ||
      raw_type > static_cast<std::uint16_t>(MessageType::kError))
    frame_fail(peer, "unknown message type " + std::to_string(raw_type), 6);
  const std::uint32_t payload_len = r.u32();
  if (payload_len > kMaxPayloadBytes)
    frame_fail(peer,
               "payload length " + std::to_string(payload_len) +
                   " exceeds the " + std::to_string(kMaxPayloadBytes) +
                   "-byte cap",
               8);
  const std::uint64_t checksum = r.u64();

  Frame frame;
  frame.type = static_cast<MessageType>(raw_type);
  frame.payload.resize(payload_len);
  const std::size_t body_got =
      recv_exact(fd, frame.payload.data(), payload_len);
  if (body_got < payload_len)
    frame_fail(peer,
               std::string("connection closed mid-") +
                   message_type_name(frame.type) + "-payload",
               kFrameHeaderBytes + body_got);
  const std::uint64_t actual =
      common::fnv1a(frame.payload.data(), frame.payload.size());
  if (actual != checksum)
    frame_fail(peer,
               std::string("payload checksum mismatch on ") +
                   message_type_name(frame.type) + " frame",
               kFrameHeaderBytes);

  obs::counter("net.frame.reads").inc();
  obs::counter("net.frame.bytes_received").inc(
      static_cast<long long>(kFrameHeaderBytes + payload_len));
  return frame;
}

void send_error_frame(int fd, const std::string& peer, int stage,
                      const std::string& message) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(stage));
  w.str(message);
  try {
    write_frame(fd, MessageType::kError, w.bytes(), peer);
  } catch (const FlowException&) {
    // Connection already dead; caller closes it.
  }
}

}  // namespace ldmo::net
