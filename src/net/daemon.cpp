#include "net/daemon.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <fstream>
#include <utility>

#include "common/flow_error.h"
#include "common/log.h"
#include "core/predictor.h"
#include "net/frame.h"
#include "net/snapshot.h"
#include "net/wire.h"
#include "nn/resnet.h"
#include "obs/metrics.h"
#include "warmstart/warm_start.h"

namespace ldmo::net {

namespace {

constexpr int kPollMillis = 100;        ///< stop-flag latency per connection
constexpr double kFrameTimeout = 30.0;  ///< mid-frame stall guard

std::vector<std::uint8_t> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw FlowException(FlowStage::kNet,
                        "daemon: cannot read weights file " + path);
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
}

std::string peer_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return "peer";
  return "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
}

void send_error(int fd, const std::string& peer, FlowStage stage,
                const std::string& message) {
  send_error_frame(fd, peer, static_cast<int>(stage), message);
}

void stage_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  if (!out)
    throw FlowException(FlowStage::kNet,
                        "daemon: cannot stage weights at " + path);
}

}  // namespace

ServeDaemon::ServeDaemon(DaemonConfig config)
    : config_(std::move(config)), listener_(config_.listen_port) {
  if (!config_.weights_path.empty())
    weights_blob_ = read_file_bytes(config_.weights_path);
  server_ = build_server(0);

  if (!config_.snapshot_path.empty()) {
    if (std::optional<CacheSnapshot> snapshot =
            load_cache_snapshot(config_.snapshot_path)) {
      if (snapshot->config_fingerprint == server_->config_fingerprint()) {
        restored_entries_ =
            server_->import_result_cache(std::move(snapshot->entries));
        obs::counter("net.daemon.snapshot.restored")
            .inc(static_cast<long long>(restored_entries_));
        log_info("daemon: restored ", restored_entries_,
                 " cache entries from ", config_.snapshot_path);
      } else {
        log_warn("daemon: snapshot ", config_.snapshot_path,
                 " was taken under a different configuration; ignoring");
      }
    }
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  log_info("daemon: listening on ", endpoint_name(port()), " (predictor ",
           server_->predictor_name(), ")");
}

ServeDaemon::~ServeDaemon() { stop(); }

std::shared_ptr<serve::Server> ServeDaemon::build_server(
    std::uint64_t version) {
  std::unique_ptr<core::PrintabilityPredictor> backend;
  if (!weights_blob_.empty()) {
    // Reconstitute the CNN from the blob via the nn serializer (it
    // validates the parameter layout, so an architecture mismatch fails
    // loudly here instead of scoring garbage).
    const std::string tmp =
        stage_path(".v" + std::to_string(version));
    stage_bytes(tmp, weights_blob_);
    auto cnn = std::make_unique<core::CnnPredictor>(
        std::make_unique<nn::ResNetRegressor>());
    cnn->load(tmp);
    std::remove(tmp.c_str());
    backend =
        std::make_unique<core::VersionedPredictor>(std::move(cnn), version);
  }
  // Null backend -> the server's raw-print fallback. Its name is version-
  // independent, so an empty-blob swap (rolling restart) keeps the same
  // config fingerprint and the cache handoff applies.
  return std::make_shared<serve::Server>(config_.serve, std::move(backend));
}

void ServeDaemon::stop() {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (std::thread& thread : connections) thread.join();

  std::shared_ptr<serve::Server> server;
  {
    std::lock_guard<std::mutex> lock(swap_mu_);
    server = server_;
  }
  server->shutdown(true);

  if (!config_.snapshot_path.empty()) {
    CacheSnapshot snapshot;
    snapshot.config_fingerprint = server->config_fingerprint();
    snapshot.entries = server->export_result_cache();
    save_cache_snapshot(config_.snapshot_path, snapshot);
    obs::counter("net.daemon.snapshot.saved")
        .inc(static_cast<long long>(snapshot.entries.size()));
    log_info("daemon: saved ", snapshot.entries.size(),
             " cache entries to ", config_.snapshot_path);
  }
}

void ServeDaemon::accept_loop() {
  while (!stopping_.load()) {
    Socket sock = listener_.accept(stopping_);
    if (!sock.valid()) break;
    sock.set_timeout(kFrameTimeout);
    const std::string peer = peer_of(sock.fd());
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) break;  // raced with stop(); drop the connection
    connections_.emplace_back(
        [this, s = std::move(sock), peer]() mutable {
          handle_connection(std::move(s), peer);
        });
  }
}

void ServeDaemon::handle_connection(Socket sock, const std::string& peer) {
  obs::counter("net.daemon.connections").inc();
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = sock.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // stop-flag poll tick
    if (!handle_frame(sock.fd(), peer)) break;
  }
}

bool ServeDaemon::handle_frame(int fd, const std::string& peer) {
  std::optional<Frame> frame;
  try {
    frame = read_frame(fd, peer);
    if (!frame) return false;  // orderly close
    switch (frame->type) {
      case MessageType::kSubmitRequest:
        handle_submit(fd, peer, frame->payload);
        return true;
      case MessageType::kPing:
        write_frame(fd, MessageType::kPong, {}, peer);
        return true;
      case MessageType::kStats:
        handle_stats(fd, peer);
        return true;
      case MessageType::kSwapWeights:
        handle_swap(fd, peer, frame->payload);
        return true;
      default:
        send_error(fd, peer, FlowStage::kNet,
                   std::string("unexpected ") +
                       message_type_name(frame->type) +
                       " frame on a worker connection");
        return true;
    }
  } catch (const FlowException& e) {
    if (e.stage() == FlowStage::kNet) {
      // Transport fault: the stream framing is unsynchronized; drop the
      // connection (the client's retry resubmits — requests are
      // idempotent, so nothing is lost).
      log_warn("daemon: dropping ", peer, ": ", e.what());
      return false;
    }
    send_error(fd, peer, e.stage(), e.what());
    return true;
  } catch (const std::exception& e) {
    send_error(fd, peer, FlowStage::kUnknown, e.what());
    return true;
  }
}

void ServeDaemon::handle_submit(int fd, const std::string& peer,
                                const std::vector<std::uint8_t>& payload) {
  WireReader r(payload, peer);
  serve::ServeRequest request = read_request(r);
  r.expect_end();
  obs::counter("net.daemon.requests").inc();

  std::shared_ptr<serve::Server> server = this->server();
  serve::RequestTicket ticket = server->submit(std::move(request));
  serve::ServeResponse response = ticket.response.get();
  if (response.status == serve::ServeStatus::kRejected &&
      this->server() != server) {
    // The submit raced a blue/green swap into a draining server; one
    // retry lands it on the replacement.
    WireReader replay_reader(payload, peer);
    serve::ServeRequest replay = read_request(replay_reader);
    ticket = this->server()->submit(std::move(replay));
    response = ticket.response.get();
  }

  WireWriter w;
  write_response(w, response);
  write_frame(fd, MessageType::kSubmitResponse, w.bytes(), peer);
}

void ServeDaemon::handle_stats(int fd, const std::string& peer) {
  std::shared_ptr<serve::Server> server = this->server();
  WorkerStats stats;
  stats.config_fingerprint = server->config_fingerprint();
  stats.weights_version = weights_version_.load();
  stats.predictor = server->predictor_name();
  for (int i = 0; i < serve::kServeStatusCount; ++i)
    stats.status_counts[i] =
        server->status_count(static_cast<serve::ServeStatus>(i));
  stats.cache_hits = server->result_cache_hits();
  stats.cache_misses = server->result_cache_misses();
  stats.cache_entries = server->result_cache_entries();
  stats.queue_depth = server->queue_depth();

  WireWriter w;
  write_stats(w, stats);
  write_frame(fd, MessageType::kStatsResponse, w.bytes(), peer);
}

std::string ServeDaemon::stage_path(const std::string& suffix) const {
  return (config_.snapshot_path.empty()
              ? "/tmp/ldmo_weights_" + std::to_string(::getpid())
              : config_.snapshot_path + ".weights") +
         suffix;
}

std::uint64_t ServeDaemon::swap_weights(
    std::uint64_t requested_version, const std::vector<std::uint8_t>& blob,
    const std::vector<std::uint8_t>& warm_blob) {
  std::shared_ptr<serve::Server> old_server;
  std::uint64_t version;
  {
    // Swap critical section: building a Server is seconds of kernel setup,
    // and holding swap_mu_ for it parks concurrent server() readers — an
    // accepted cost; swaps are rare operator actions, not hot path.
    std::lock_guard<std::mutex> lock(swap_mu_);
    if (!blob.empty()) {
      weights_blob_ = blob;
      version = requested_version != 0 ? requested_version
                                       : weights_version_.load() + 1;
    } else {
      version = weights_version_.load();  // rolling restart, same weights
    }
    if (!warm_blob.empty()) {
      // Fresh warm-start model from the pushed weights. Its version is the
      // weight fingerprint, which serve::config_fingerprint folds in — so
      // even a warm-only push (empty predictor blob) changes the
      // fingerprint, skips the cache handoff below, and retires every
      // cached result the old MaskNet contributed to. Before this path
      // existed a weight push left workers serving with the boot-time
      // MaskNet forever.
      const std::string tmp = stage_path(".warm");
      stage_bytes(tmp, warm_blob);
      auto warm = std::make_shared<warmstart::MaskWarmStart>(config_.warm_net);
      warm->load(tmp);
      std::remove(tmp.c_str());
      config_.serve.warm_start = std::move(warm);
      config_.serve.engine.flow.warm_start.enabled = true;
    }
    std::shared_ptr<serve::Server> fresh = build_server(version);
    if (fresh->config_fingerprint() == server_->config_fingerprint()) {
      const std::size_t moved =
          fresh->import_result_cache(server_->export_result_cache());
      obs::counter("net.daemon.swap.cache_handoff")
          .inc(static_cast<long long>(moved));
    }
    old_server = server_;
    server_ = std::move(fresh);
    weights_version_.store(version);
  }
  // Drain outside the lock: in-flight requests finish on the old server
  // while new submits already land on the replacement.
  old_server->shutdown(true);
  obs::counter("net.daemon.swaps").inc();
  log_info("daemon: weights swapped to version ", version, " (predictor ",
           this->server()->predictor_name(), ")");
  return version;
}

void ServeDaemon::handle_swap(int fd, const std::string& peer,
                              const std::vector<std::uint8_t>& payload) {
  WireReader r(payload, peer);
  const std::uint64_t requested_version = r.u64();
  const std::vector<std::uint8_t> blob = r.blob();
  // The warm-start section is optional: its absence is byte-identical to
  // the pre-warm payload format, so old clients keep working.
  std::vector<std::uint8_t> warm_blob;
  if (r.remaining() > 0) warm_blob = r.blob();
  r.expect_end();

  const std::uint64_t version =
      swap_weights(requested_version, blob, warm_blob);

  WireWriter w;
  w.u64(version);
  write_frame(fd, MessageType::kSwapAck, w.bytes(), peer);
}

}  // namespace ldmo::net
