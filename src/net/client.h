// Client side of the wire protocol: a blocking connection to one worker or
// router, and an async wrapper that pumps a bounded number of concurrent
// connections.
//
// Submits are idempotent by construction — the result of a request is a
// pure function of (configuration, layout geometry), and the server's
// content-addressed cache serves a replayed request bit-identically — so
// the client retries a kNet fault (connection cut, corrupt frame, armed
// failpoint) by reconnecting and resending. That retry is what turns
// "connection dropped mid-frame" into "zero lost requests" in the fault
// drill; non-kNet failures (the worker computed and said kFailed) are
// answers, not transport faults, and are never retried here.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.h"
#include "net/socket.h"
#include "net/wire.h"
#include "serve/request.h"

namespace ldmo::net {

struct ClientConfig {
  int port = 0;
  /// Socket send/receive timeout. Covers one full flow computation, so it
  /// is generous by default.
  double timeout_seconds = 120.0;
  /// connect() retry schedule (a just-spawned worker needs a beat to bind).
  int connect_attempts = 20;
  double connect_retry_seconds = 0.05;
  /// Transport-level retries per request (total attempts = 1 + retries).
  int net_retries = 2;
};

/// Blocking client: one connection, lazily (re)established. Not
/// thread-safe — one Client per thread, or external locking.
class Client {
 public:
  explicit Client(ClientConfig config);

  /// Round-trips one request. Retries kNet faults per config.net_retries
  /// (reconnect + resend); rethrows the last fault when they are exhausted.
  serve::ServeResponse submit(const serve::ServeRequest& request);

  /// Liveness probe; false on any transport fault.
  bool ping();

  /// Worker identity and counters. Throws FlowException(kNet) on transport
  /// fault (after retries).
  WorkerStats stats();

  /// Pushes a weight blob (empty = rolling restart with current weights)
  /// and returns the version the worker acknowledged as active.
  /// `warm_blob` (optional) carries new warm-start MaskNet weights in the
  /// same swap; the daemon loads them into a fresh MaskWarmStart whose
  /// bumped version retires warm-start-dependent cache keys (ISSUE-10
  /// satellite 2 — previously a weight push left workers on the old
  /// MaskNet). Empty keeps the current warm-start model.
  std::uint64_t swap_weights(std::uint64_t version,
                             const std::vector<std::uint8_t>& blob,
                             const std::vector<std::uint8_t>& warm_blob = {});

  int port() const { return config_.port; }

  /// Drops the connection; the next call reconnects.
  void disconnect() { sock_.close(); }

 private:
  /// One request/response exchange; throws FlowException(kNet) on any
  /// transport fault (and drops the connection so the next try is clean).
  Frame roundtrip(MessageType type, const std::vector<std::uint8_t>& payload,
                  MessageType expected);
  void ensure_connected();

  ClientConfig config_;
  Socket sock_;
  std::string peer_;
};

/// Async facade: `workers` threads, each owning its own Client connection,
/// drain a bounded submit queue. submit() returns a future that resolves to
/// the worker's ServeResponse (or rethrows the transport fault).
class AsyncClient {
 public:
  AsyncClient(ClientConfig config, int workers = 4);
  ~AsyncClient();

  AsyncClient(const AsyncClient&) = delete;
  AsyncClient& operator=(const AsyncClient&) = delete;

  std::future<serve::ServeResponse> submit(serve::ServeRequest request);

  /// Finishes queued work and joins the worker threads (idempotent; the
  /// destructor calls it).
  void shutdown();

 private:
  struct Job {
    serve::ServeRequest request;
    std::promise<serve::ServeResponse> promise;
  };

  void worker_loop();

  ClientConfig config_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool closed_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace ldmo::net
