// Canonical byte serialization for the multi-node wire protocol.
//
// Every multi-byte value is little-endian, explicitly assembled byte by
// byte (never memcpy of in-memory representations) — the same discipline as
// common::Fnv1a, so encoded bytes are identical across platforms, runs and
// build types. That stability is load-bearing twice over: golden-vector
// tests pin the format (tests/test_net.cpp), and the cache snapshot file
// (net/snapshot.h) must be readable by the next process.
//
// Primitive encodings:
//   u8            1 byte
//   u16/u32/u64   little-endian, fixed width
//   i32/i64       two's complement via the unsigned encodings
//   f64           IEEE-754 bit pattern as u64 (bit-identical round trip,
//                 matching the repo-wide determinism contract)
//   str           u32 byte length + raw bytes (no terminator)
//   grid          i32 height, i32 width, then height*width f64 row-major
//
// Compound messages (layout, config, request, response, stats) each start
// with a short ASCII tag string so a decoder pointed at the wrong payload
// fails loudly with attribution instead of misparsing garbage.
//
// Decode errors throw FlowException(FlowStage::kNet) carrying the decoder's
// context string (peer or path) and the byte offset where decoding stopped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/flow_error.h"
#include "common/grid.h"
#include "core/flow_engine.h"
#include "serve/request.h"

namespace ldmo::net {

/// Append-only little-endian byte assembler. Feeds return *this so
/// encodings chain like the Fnv1a hasher.
class WireWriter {
 public:
  WireWriter& u8(std::uint8_t v);
  WireWriter& u16(std::uint16_t v);
  WireWriter& u32(std::uint32_t v);
  WireWriter& u64(std::uint64_t v);
  WireWriter& i32(std::int32_t v) {
    return u32(static_cast<std::uint32_t>(v));
  }
  WireWriter& i64(std::int64_t v) {
    return u64(static_cast<std::uint64_t>(v));
  }
  WireWriter& f64(double v);
  WireWriter& str(std::string_view s);
  /// u32 byte length + raw bytes — the length-prefixed framing that lets a
  /// payload carry several independent blobs (the swap verb's weight and
  /// warm-start sections) without end-of-payload arithmetic.
  WireWriter& blob(const std::vector<std::uint8_t>& b);
  WireWriter& grid(const GridF& g);

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  std::size_t size() const { return bytes_.size(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over a byte span. `context` names
/// the byte source (a peer "127.0.0.1:4021" or a snapshot path) and lands,
/// with the current byte offset, in every decode error.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}
  WireReader(const std::vector<std::uint8_t>& bytes, std::string context)
      : WireReader(bytes.data(), bytes.size(), std::move(context)) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  std::string str();
  std::vector<std::uint8_t> blob();
  GridF grid();

  /// Consumes and checks a compound-message tag; throws on mismatch.
  void expect_tag(std::string_view tag);

  std::size_t offset() const { return offset_; }
  std::size_t remaining() const { return size_ - offset_; }

  /// Throws unless every byte was consumed — trailing garbage after a
  /// well-formed message is a framing bug, not padding.
  void expect_end() const;

  /// Decode failure with context + byte offset, always thrown as
  /// FlowException(FlowStage::kNet).
  [[noreturn]] void fail(const std::string& what) const;

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  std::string context_;
};

// --- canonical message codecs ---

/// Layout: tag "ly1", name, clip (4 x i64), pattern count, rects (4 x i64
/// each; pattern ids are implicit — they equal the index by construction).
void write_layout(WireWriter& w, const layout::Layout& layout);
layout::Layout read_layout(WireReader& r);

/// Full flow-engine configuration (litho optics + LdmoConfig knobs): tag
/// "cf1", every field that serve::config_fingerprint hashes, plus
/// degrade_on_predict_failure. Field order is frozen by the golden test;
/// append new fields at the end under a bumped tag.
void write_config(WireWriter& w, const core::FlowEngineConfig& config);
core::FlowEngineConfig read_config(WireReader& r);

/// Serve request: tag "rq1", layout, priority, deadline.
void write_request(WireWriter& w, const serve::ServeRequest& request);
serve::ServeRequest read_request(WireReader& r);

/// Full LdmoResult: tag "rs1", chosen assignment, ILT masks/response/
/// metrology (EPE measurements included), trajectory, phase timing, flags.
/// A decoded result is field-identical to the encoded one, so a snapshot-
/// restored cache entry serves the same bytes a live run would have.
void write_result(WireWriter& w, const core::LdmoResult& result);
core::LdmoResult read_result(WireReader& r);

/// Serve response: tag "rp1", terminal status and timings, error record,
/// and — for ok()/failed-with-partial cases — the embedded result.
void write_response(WireWriter& w, const serve::ServeResponse& response);
serve::ServeResponse read_response(WireReader& r);

/// Worker identity + counters returned by the stats message: tag "st1".
struct WorkerStats {
  std::uint64_t config_fingerprint = 0;
  std::uint64_t weights_version = 0;
  std::string predictor;
  long long status_counts[serve::kServeStatusCount] = {};
  long long cache_hits = 0;
  long long cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t queue_depth = 0;
};

void write_stats(WireWriter& w, const WorkerStats& stats);
WorkerStats read_stats(WireReader& r);

}  // namespace ldmo::net
