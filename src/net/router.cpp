#include "net/router.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/hash.h"
#include "common/log.h"
#include "layout/fingerprint.h"
#include "net/frame.h"
#include "net/wire.h"

namespace ldmo::net {

namespace {

constexpr int kPollMillis = 100;
constexpr double kFrameTimeout = 30.0;

/// splitmix64 finalizer on top of the FNV-1a digest. FNV diffuses a byte
/// difference upward only, so endpoints that differ in their final digits
/// ("127.0.0.1:5001" vs "...:5003", with the port digits last and followed
/// by the mostly-zero replica bytes) hash to points at a near-constant
/// offset from each other — the shards cluster on the ring instead of
/// interleaving, and one shard can end up owning almost no key space. A
/// full-avalanche pass restores uniform ownership. Ring points are
/// per-router state, not wire format, so the mix is free to change.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

std::string peer_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    return "peer";
  return "127.0.0.1:" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

HashRing::HashRing(std::vector<int> worker_ports, int replicas)
    : ports_(std::move(worker_ports)) {
  require(!ports_.empty(), "HashRing: no worker ports");
  require(replicas >= 1, "HashRing: replicas must be >= 1");
  points_.reserve(ports_.size() * static_cast<std::size_t>(replicas));
  for (int port : ports_) {
    const std::string endpoint = endpoint_name(port);
    for (int replica = 0; replica < replicas; ++replica) {
      const std::uint64_t point =
          mix64(common::Fnv1a()
                    .str("ldmo.net.ring")
                    .str(endpoint)
                    .u64(static_cast<std::uint64_t>(replica))
                    .digest());
      points_.emplace_back(point, port);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::uint64_t HashRing::route_key(std::uint64_t config_fp,
                                  std::uint64_t layout_fp) {
  return mix64(common::Fnv1a()
                   .str("ldmo.net.route")
                   .u64(config_fp)
                   .u64(layout_fp)
                   .digest());
}

int HashRing::lookup(std::uint64_t key) const {
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(key, 0));
  if (it == points_.end()) it = points_.begin();  // wrap
  return it->second;
}

std::vector<int> HashRing::lookup_n(std::uint64_t key, int n) const {
  std::vector<int> out;
  if (n <= 0) return out;
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(key, 0));
  for (std::size_t step = 0;
       step < points_.size() && out.size() < static_cast<std::size_t>(n) &&
       out.size() < ports_.size();
       ++step, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (std::find(out.begin(), out.end(), it->second) == out.end())
      out.push_back(it->second);
  }
  return out;
}

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      ring_(config_.worker_ports, config_.ring_replicas),
      listener_(config_.listen_port) {
  shards_.reserve(config_.worker_ports.size());
  for (int port : config_.worker_ports) {
    auto shard = std::make_unique<Shard>();
    shard->port = port;
    const std::string prefix =
        "net.router.shard." + std::to_string(port) + ".";
    shard->forwarded = &obs::counter(prefix + "forwarded");
    shard->errors = &obs::counter(prefix + "errors");
    shards_.push_back(std::move(shard));
  }
  if (config_.admin.enabled)
    admin_ = std::make_unique<serve::AdminServer>(config_.admin, "router");
  accept_thread_ = std::thread([this] { accept_loop(); });
  log_info("router: listening on ", endpoint_name(port()), " over ",
           shards_.size(), " worker(s)");
}

Router::~Router() { stop(); }

void Router::stop() {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    connections.swap(connections_);
  }
  for (std::thread& thread : connections) thread.join();
  if (admin_) admin_->stop();
}

void Router::accept_loop() {
  while (!stopping_.load()) {
    Socket sock = listener_.accept(stopping_);
    if (!sock.valid()) break;
    sock.set_timeout(kFrameTimeout);
    const std::string peer = peer_of(sock.fd());
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (stopping_.load()) break;
    connections_.emplace_back(
        [this, s = std::move(sock), peer]() mutable {
          handle_connection(std::move(s), peer);
        });
  }
}

void Router::handle_connection(Socket sock, const std::string& peer) {
  obs::counter("net.router.connections").inc();
  while (!stopping_.load()) {
    pollfd pfd{};
    pfd.fd = sock.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;
    if (!handle_frame(sock.fd(), peer)) break;
  }
}

bool Router::handle_frame(int fd, const std::string& peer) {
  std::optional<Frame> frame;
  try {
    frame = read_frame(fd, peer);
    if (!frame) return false;
    switch (frame->type) {
      case MessageType::kSubmitRequest:
        handle_submit(fd, peer, frame->payload);
        return true;
      case MessageType::kPing:
        write_frame(fd, MessageType::kPong, {}, peer);
        return true;
      case MessageType::kStats:
        handle_stats(fd, peer);
        return true;
      case MessageType::kSwapWeights:
        handle_swap(fd, peer, frame->payload);
        return true;
      default:
        send_error_frame(fd, peer, static_cast<int>(FlowStage::kNet),
                         std::string("unexpected ") +
                             message_type_name(frame->type) +
                             " frame on a router connection");
        return true;
    }
  } catch (const FlowException& e) {
    if (e.stage() == FlowStage::kNet) {
      log_warn("router: dropping ", peer, ": ", e.what());
      return false;
    }
    send_error_frame(fd, peer, static_cast<int>(e.stage()), e.what());
    return true;
  } catch (const std::exception& e) {
    send_error_frame(fd, peer, static_cast<int>(FlowStage::kUnknown),
                     e.what());
    return true;
  }
}

Router::Shard& Router::shard_for_port(int port) {
  for (auto& shard : shards_)
    if (shard->port == port) return *shard;
  // lookup_n only returns ring ports, which all have shards.
  return *shards_.front();
}

std::uint64_t Router::config_fingerprint() {
  std::uint64_t fp = config_fp_.load();
  if (fp != 0) return fp;
  // Lazily learn the cluster's config fingerprint from any worker's stats
  // (the router holds no flow configuration of its own).
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    try {
      if (!shard->client)
        shard->client = std::make_unique<Client>(ClientConfig{
            .port = shard->port,
            .timeout_seconds = config_.worker_timeout_seconds,
            .connect_attempts = 3,
            .net_retries = config_.worker_net_retries,
        });
      fp = shard->client->stats().config_fingerprint;
      config_fp_.store(fp);
      return fp;
    } catch (const FlowException&) {
      shard->errors->inc();
    }
  }
  return 0;  // every worker unreachable; route on layout alone for now
}

void Router::handle_submit(int fd, const std::string& peer,
                           const std::vector<std::uint8_t>& payload) {
  WireReader r(payload, peer);
  serve::ServeRequest request = read_request(r);
  r.expect_end();
  obs::counter("net.router.requests").inc();

  const std::uint64_t key = HashRing::route_key(
      config_fingerprint(), layout::fingerprint(request.layout));
  const std::vector<int> order =
      ring_.lookup_n(key, static_cast<int>(ring_.worker_count()));

  FlowError last{FlowStage::kNet, "no workers configured"};
  for (std::size_t i = 0; i < order.size(); ++i) {
    Shard& shard = shard_for_port(order[i]);
    std::lock_guard<std::mutex> lock(shard.mu);
    try {
      if (!shard.client)
        shard.client = std::make_unique<Client>(ClientConfig{
            .port = shard.port,
            .timeout_seconds = config_.worker_timeout_seconds,
            .connect_attempts = 3,
            .net_retries = config_.worker_net_retries,
        });
      const serve::ServeResponse response = shard.client->submit(request);
      shard.forwarded->inc();
      if (i > 0) obs::counter("net.router.failovers").inc();
      WireWriter w;
      write_response(w, response);
      write_frame(fd, MessageType::kSubmitResponse, w.bytes(), peer);
      return;
    } catch (const FlowException& e) {
      if (e.stage() != FlowStage::kNet) throw;  // a worker answered: real
      shard.errors->inc();
      shard.client.reset();  // next use reconnects from scratch
      last = e.error();
      log_warn("router: worker ", endpoint_name(shard.port),
               " unreachable (", e.what(), "), trying next shard");
    }
  }
  obs::counter("net.router.exhausted").inc();
  send_error_frame(fd, peer, static_cast<int>(FlowStage::kNet),
                   "router: every worker shard failed; last: " +
                       last.message);
}

void Router::handle_stats(int fd, const std::string& peer) {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    try {
      if (!shard->client)
        shard->client = std::make_unique<Client>(ClientConfig{
            .port = shard->port,
            .timeout_seconds = config_.worker_timeout_seconds,
            .connect_attempts = 3,
            .net_retries = config_.worker_net_retries,
        });
      const WorkerStats stats = shard->client->stats();
      config_fp_.store(stats.config_fingerprint);
      WireWriter w;
      write_stats(w, stats);
      write_frame(fd, MessageType::kStatsResponse, w.bytes(), peer);
      return;
    } catch (const FlowException& e) {
      if (e.stage() != FlowStage::kNet) throw;
      shard->errors->inc();
      shard->client.reset();
    }
  }
  send_error_frame(fd, peer, static_cast<int>(FlowStage::kNet),
                   "router: no reachable worker for stats");
}

void Router::handle_swap(int fd, const std::string& peer,
                         const std::vector<std::uint8_t>& payload) {
  // Broadcast: every worker swaps to the same version; the ack carries the
  // version the last worker reported. A shard that is down simply misses
  // the swap (it restarts with its own weights; the operator re-issues).
  std::uint64_t version = 0;
  int reached = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    try {
      if (!shard->client)
        shard->client = std::make_unique<Client>(ClientConfig{
            .port = shard->port,
            .timeout_seconds = config_.worker_timeout_seconds,
            .connect_attempts = 3,
            .net_retries = config_.worker_net_retries,
        });
      WireReader r(payload, peer);
      const std::uint64_t requested = r.u64();
      const std::uint32_t blob_len = r.u32();
      if (static_cast<std::size_t>(blob_len) != r.remaining())
        r.fail("weight blob length " + std::to_string(blob_len) +
               " does not match payload");
      std::vector<std::uint8_t> blob(payload.end() - blob_len,
                                     payload.end());
      version = shard->client->swap_weights(requested, blob);
      ++reached;
    } catch (const FlowException& e) {
      if (e.stage() != FlowStage::kNet) throw;
      shard->errors->inc();
      shard->client.reset();
      log_warn("router: shard ", endpoint_name(shard->port),
               " missed the weight swap: ", e.what());
    }
  }
  obs::counter("net.router.swap_broadcasts").inc();
  if (reached == 0) {
    send_error_frame(fd, peer, static_cast<int>(FlowStage::kNet),
                     "router: no worker reachable for weight swap");
    return;
  }
  WireWriter w;
  w.u64(version);
  write_frame(fd, MessageType::kSwapAck, w.bytes(), peer);
}

}  // namespace ldmo::net
