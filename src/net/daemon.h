// The serve daemon: a TCP front end that drains wire-protocol frames into
// an in-process serve::Server.
//
// Threading: one accept loop (poll-gated, admin-listener pattern) plus one
// thread per connection. A connection handles its frames serially —
// concurrency comes from multiple connections, and the server's inference
// batcher still coalesces scoring work across all of them. All threads are
// joined on stop(), so a daemon is TSan-clean to construct and destroy in
// a test.
//
// Weight hot-swap (kSwapWeights) is blue/green: the daemon builds a brand
// new serve::Server around the new weights, moves the public shared_ptr to
// it, then drains and destroys the old one. In-flight requests finish on
// the server that admitted them; new connections land on the new one. The
// predictor is wrapped so its name carries the weight version ("cnn@v3") —
// serve::config_fingerprint hashes the predictor name, so new weights
// change every cache key and stale results become unreachable rather than
// wrong. An empty blob keeps the current weights (a rolling restart): the
// fingerprint is unchanged, and the warm result cache is carried across
// the swap via export/import.
//
// Cache persistence: when configured with a snapshot path the daemon
// restores the result cache from it at startup (if the fingerprint
// matches) and writes it back on stop() — net/snapshot.h holds the file
// format.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "serve/server.h"
#include "warmstart/masknet.h"

namespace ldmo::net {

struct DaemonConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read via port()).
  int listen_port = 0;
  serve::ServeConfig serve;
  /// Optional CNN weights to serve with (nn::save_parameters format);
  /// empty serves the raw-print fallback predictor.
  std::string weights_path;
  /// Optional result-cache snapshot file: restored at startup, written at
  /// stop(). Empty disables persistence.
  std::string snapshot_path;
  /// Architecture for warm-start MaskNet weights arriving over the wire
  /// (the swap verb's optional warm section); must match what the weights
  /// were trained with. grid_size should equal serve.engine.litho.grid_size.
  warmstart::MaskNetConfig warm_net;
};

class ServeDaemon {
 public:
  /// Builds the server (restoring the cache snapshot when one matches) and
  /// starts listening. Throws on bind failure or unreadable weights.
  explicit ServeDaemon(DaemonConfig config);
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  int port() const { return listener_.port(); }

  /// Currently active server (swaps under kSwapWeights; grab a copy).
  std::shared_ptr<serve::Server> server() {
    std::lock_guard<std::mutex> lock(swap_mu_);
    return server_;
  }

  std::uint64_t weights_version() const { return weights_version_.load(); }

  /// Blue/green weight promotion — the wire verb (kSwapWeights) delegates
  /// here, and in-process callers (the flywheel's serve --flywheel loop)
  /// call it directly. `blob` carries new predictor CNN weights (empty =
  /// rolling restart on current weights); `warm_blob` optionally carries
  /// new warm-start MaskNet weights, loaded into a fresh MaskWarmStart
  /// whose weight-fingerprint version feeds the config fingerprint — so a
  /// warm-start push retires every warm-start-dependent cache key instead
  /// of leaving workers on the old MaskNet. Returns the active version.
  std::uint64_t swap_weights(std::uint64_t requested_version,
                             const std::vector<std::uint8_t>& blob,
                             const std::vector<std::uint8_t>& warm_blob = {});

  /// Cache entries restored from the snapshot at startup.
  std::size_t restored_entries() const { return restored_entries_; }

  /// Stops accepting, joins every connection thread, drains the server and
  /// writes the cache snapshot. Idempotent; the destructor calls it.
  void stop();

 private:
  void accept_loop();
  void handle_connection(Socket sock, const std::string& peer);
  /// One frame in, one frame out. Returns false when the connection should
  /// close (clean EOF).
  bool handle_frame(int fd, const std::string& peer);
  void handle_submit(int fd, const std::string& peer,
                     const std::vector<std::uint8_t>& payload);
  void handle_stats(int fd, const std::string& peer);
  void handle_swap(int fd, const std::string& peer,
                   const std::vector<std::uint8_t>& payload);

  /// Builds a Server around the given weight blob (empty = current
  /// fallback/weights identity) with the version folded into the predictor
  /// name.
  std::shared_ptr<serve::Server> build_server(std::uint64_t version);
  /// Scratch file for staging weight blobs through the nn serializer.
  std::string stage_path(const std::string& suffix) const;

  DaemonConfig config_;
  /// Current CNN weight blob (file bytes); empty = raw-print fallback.
  std::vector<std::uint8_t> weights_blob_;
  std::atomic<std::uint64_t> weights_version_{0};
  std::size_t restored_entries_ = 0;

  std::mutex swap_mu_;  ///< guards server_ swaps and weights_blob_
  std::shared_ptr<serve::Server> server_;

  TcpListener listener_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::vector<std::thread> connections_;
  bool stopped_ = false;
};

}  // namespace ldmo::net
