#include "net/wire.h"

#include <algorithm>
#include <bit>
#include <cstring>

namespace ldmo::net {

namespace {

/// Decoded dimensions above this are a corrupt frame, not a real grid (the
/// largest simulator grid is 128; 1<<14 leaves generous headroom while
/// keeping a hostile length from requesting terabytes).
constexpr int kMaxGridSide = 1 << 14;

std::uint64_t f64_bits(double v) { return std::bit_cast<std::uint64_t>(v); }
double bits_f64(std::uint64_t v) { return std::bit_cast<double>(v); }

}  // namespace

// --- WireWriter ---

WireWriter& WireWriter::u8(std::uint8_t v) {
  bytes_.push_back(v);
  return *this;
}

WireWriter& WireWriter::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v & 0xff));
  bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
  return *this;
}

WireWriter& WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  return *this;
}

WireWriter& WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    bytes_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  return *this;
}

WireWriter& WireWriter::f64(double v) { return u64(f64_bits(v)); }

WireWriter& WireWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  bytes_.insert(bytes_.end(), s.begin(), s.end());
  return *this;
}

WireWriter& WireWriter::blob(const std::vector<std::uint8_t>& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  bytes_.insert(bytes_.end(), b.begin(), b.end());
  return *this;
}

WireWriter& WireWriter::grid(const GridF& g) {
  i32(g.height()).i32(g.width());
  for (std::size_t i = 0; i < g.size(); ++i) f64(g[i]);
  return *this;
}

// --- WireReader ---

void WireReader::fail(const std::string& what) const {
  throw FlowException(FlowStage::kNet,
                      "wire decode (" + context_ + "): " + what +
                          " at byte " + std::to_string(offset_) + " of " +
                          std::to_string(size_));
}

std::uint8_t WireReader::u8() {
  if (offset_ + 1 > size_) fail("short read (u8)");
  return data_[offset_++];
}

std::uint16_t WireReader::u16() {
  if (offset_ + 2 > size_) fail("short read (u16)");
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i)
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>(data_[offset_ + i]) << (8 * i));
  offset_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  if (offset_ + 4 > size_) fail("short read (u32)");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[offset_ + i]) << (8 * i);
  offset_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  if (offset_ + 8 > size_) fail("short read (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[offset_ + i]) << (8 * i);
  offset_ += 8;
  return v;
}

double WireReader::f64() { return bits_f64(u64()); }

std::string WireReader::str() {
  const std::uint32_t len = u32();
  if (static_cast<std::size_t>(len) > remaining())
    fail("string length " + std::to_string(len) + " exceeds remaining " +
         std::to_string(remaining()) + " bytes");
  std::string s(reinterpret_cast<const char*>(data_ + offset_), len);
  offset_ += len;
  return s;
}

std::vector<std::uint8_t> WireReader::blob() {
  const std::uint32_t len = u32();
  if (static_cast<std::size_t>(len) > remaining())
    fail("blob length " + std::to_string(len) + " exceeds remaining " +
         std::to_string(remaining()) + " bytes");
  std::vector<std::uint8_t> b(data_ + offset_, data_ + offset_ + len);
  offset_ += len;
  return b;
}

GridF WireReader::grid() {
  const std::int32_t h = i32();
  const std::int32_t w = i32();
  if (h < 0 || w < 0 || h > kMaxGridSide || w > kMaxGridSide)
    fail("implausible grid shape " + std::to_string(h) + "x" +
         std::to_string(w));
  const std::size_t cells =
      static_cast<std::size_t>(h) * static_cast<std::size_t>(w);
  if (cells * 8 > remaining())
    fail("grid payload " + std::to_string(cells * 8) +
         " bytes exceeds remaining " + std::to_string(remaining()));
  GridF g(h, w);
  for (std::size_t i = 0; i < cells; ++i) g[i] = f64();
  return g;
}

void WireReader::expect_tag(std::string_view tag) {
  const std::string got = str();
  if (got != tag)
    fail("message tag mismatch (want '" + std::string(tag) + "', got '" +
         got + "')");
}

void WireReader::expect_end() const {
  if (offset_ != size_)
    fail("trailing garbage: " + std::to_string(size_ - offset_) +
         " unconsumed bytes");
}

// --- layout ---

void write_layout(WireWriter& w, const layout::Layout& layout) {
  w.str("ly1");
  w.str(layout.name);
  w.i64(layout.clip.lo.x).i64(layout.clip.lo.y);
  w.i64(layout.clip.hi.x).i64(layout.clip.hi.y);
  w.u32(static_cast<std::uint32_t>(layout.patterns.size()));
  for (const layout::Pattern& p : layout.patterns) {
    w.i64(p.shape.lo.x).i64(p.shape.lo.y);
    w.i64(p.shape.hi.x).i64(p.shape.hi.y);
  }
}

layout::Layout read_layout(WireReader& r) {
  r.expect_tag("ly1");
  layout::Layout layout;
  layout.name = r.str();
  geometry::Point lo, hi;
  lo.x = r.i64();
  lo.y = r.i64();
  hi.x = r.i64();
  hi.y = r.i64();
  layout.clip = geometry::Rect::make(lo, hi);
  const std::uint32_t count = r.u32();
  // 32 bytes per pattern: a count beyond the remaining payload is corrupt.
  if (static_cast<std::size_t>(count) * 32 > r.remaining())
    r.fail("pattern count " + std::to_string(count) +
           " exceeds remaining payload");
  for (std::uint32_t i = 0; i < count; ++i) {
    lo.x = r.i64();
    lo.y = r.i64();
    hi.x = r.i64();
    hi.y = r.i64();
    layout.add_pattern(geometry::Rect::make(lo, hi));
  }
  return layout;
}

// --- config ---

void write_config(WireWriter& w, const core::FlowEngineConfig& config) {
  w.str("cf1");
  const litho::LithoConfig& l = config.litho;
  w.i32(l.grid_size).f64(l.pixel_nm);
  w.f64(l.wavelength_nm).f64(l.numerical_aperture);
  w.f64(l.sigma_inner).f64(l.sigma_outer).f64(l.defocus_nm);
  w.i32(l.kernel_count);
  w.f64(l.theta_z).f64(l.intensity_threshold).f64(l.calibration_feature_nm);
  w.f64(l.epe_threshold_nm).f64(l.epe_search_range_nm);

  const mpl::GenerationConfig& g = config.flow.generation;
  w.f64(g.classify.nmin_nm).f64(g.classify.nmax_nm);
  w.i32(g.strength_sp_vp).i32(g.strength_np);
  w.u64(g.seed).i32(g.max_candidates);

  const opc::IltConfig& i = config.flow.ilt;
  w.f64(i.theta_m).i32(i.max_iterations);
  w.i32(i.violation_check_interval).i32(i.violation_check_warmup);
  w.f64(i.step_size).f64(i.step_decay).f64(i.initial_p);
  w.f64(i.theta_m_anneal);
  w.u32(static_cast<std::uint32_t>(i.binarize_thresholds.size()));
  for (double t : i.binarize_thresholds) w.f64(t);
  w.f64(i.edge_weight);

  w.i32(config.flow.max_fallbacks);
  w.u8(config.flow.degrade_on_predict_failure ? 1 : 0);
}

core::FlowEngineConfig read_config(WireReader& r) {
  r.expect_tag("cf1");
  core::FlowEngineConfig config;
  litho::LithoConfig& l = config.litho;
  l.grid_size = r.i32();
  l.pixel_nm = r.f64();
  l.wavelength_nm = r.f64();
  l.numerical_aperture = r.f64();
  l.sigma_inner = r.f64();
  l.sigma_outer = r.f64();
  l.defocus_nm = r.f64();
  l.kernel_count = r.i32();
  l.theta_z = r.f64();
  l.intensity_threshold = r.f64();
  l.calibration_feature_nm = r.f64();
  l.epe_threshold_nm = r.f64();
  l.epe_search_range_nm = r.f64();

  mpl::GenerationConfig& g = config.flow.generation;
  g.classify.nmin_nm = r.f64();
  g.classify.nmax_nm = r.f64();
  g.strength_sp_vp = r.i32();
  g.strength_np = r.i32();
  g.seed = r.u64();
  g.max_candidates = r.i32();

  opc::IltConfig& i = config.flow.ilt;
  i.theta_m = r.f64();
  i.max_iterations = r.i32();
  i.violation_check_interval = r.i32();
  i.violation_check_warmup = r.i32();
  i.step_size = r.f64();
  i.step_decay = r.f64();
  i.initial_p = r.f64();
  i.theta_m_anneal = r.f64();
  const std::uint32_t thresholds = r.u32();
  if (static_cast<std::size_t>(thresholds) * 8 > r.remaining())
    r.fail("threshold count exceeds remaining payload");
  i.binarize_thresholds.clear();
  for (std::uint32_t t = 0; t < thresholds; ++t)
    i.binarize_thresholds.push_back(r.f64());
  i.edge_weight = r.f64();

  config.flow.max_fallbacks = r.i32();
  config.flow.degrade_on_predict_failure = r.u8() != 0;
  return config;
}

// --- request ---

void write_request(WireWriter& w, const serve::ServeRequest& request) {
  w.str("rq1");
  write_layout(w, request.layout);
  w.u8(static_cast<std::uint8_t>(request.priority));
  w.f64(request.deadline_seconds);
}

serve::ServeRequest read_request(WireReader& r) {
  r.expect_tag("rq1");
  serve::ServeRequest request;
  request.layout = read_layout(r);
  const std::uint8_t priority = r.u8();
  if (priority >= serve::kPriorityClasses)
    r.fail("priority class " + std::to_string(priority) + " out of range");
  request.priority = static_cast<serve::Priority>(priority);
  request.deadline_seconds = r.f64();
  return request;
}

// --- result ---

namespace {

void write_flow_error(WireWriter& w, const FlowError& error) {
  w.u8(static_cast<std::uint8_t>(error.stage));
  w.str(error.message);
}

FlowError read_flow_error(WireReader& r) {
  FlowError error;
  const std::uint8_t stage = r.u8();
  if (stage >= kFlowStageCount)
    r.fail("flow stage " + std::to_string(stage) + " out of range");
  error.stage = static_cast<FlowStage>(stage);
  error.message = r.str();
  return error;
}

void write_report(WireWriter& w, const litho::PrintabilityReport& report) {
  w.f64(report.l2);
  w.i32(report.epe.violation_count);
  w.f64(report.epe.max_epe_nm).f64(report.epe.mean_epe_nm);
  w.u32(static_cast<std::uint32_t>(report.epe.measurements.size()));
  for (const litho::EpeMeasurement& m : report.epe.measurements) {
    w.f64(m.checkpoint.x_nm).f64(m.checkpoint.y_nm);
    w.f64(m.checkpoint.normal_x).f64(m.checkpoint.normal_y);
    w.i32(m.checkpoint.pattern_id);
    w.f64(m.epe_nm);
    w.u8(m.violation ? 1 : 0).u8(m.contour_found ? 1 : 0);
  }
  w.i32(report.violations.missing);
  w.i32(report.violations.bridges);
  w.i32(report.violations.extra);
}

litho::PrintabilityReport read_report(WireReader& r) {
  litho::PrintabilityReport report;
  report.l2 = r.f64();
  report.epe.violation_count = r.i32();
  report.epe.max_epe_nm = r.f64();
  report.epe.mean_epe_nm = r.f64();
  const std::uint32_t measurements = r.u32();
  if (static_cast<std::size_t>(measurements) * 46 > r.remaining())
    r.fail("EPE measurement count exceeds remaining payload");
  report.epe.measurements.reserve(measurements);
  for (std::uint32_t i = 0; i < measurements; ++i) {
    litho::EpeMeasurement m;
    m.checkpoint.x_nm = r.f64();
    m.checkpoint.y_nm = r.f64();
    m.checkpoint.normal_x = r.f64();
    m.checkpoint.normal_y = r.f64();
    m.checkpoint.pattern_id = r.i32();
    m.epe_nm = r.f64();
    m.violation = r.u8() != 0;
    m.contour_found = r.u8() != 0;
    report.epe.measurements.push_back(m);
  }
  report.violations.missing = r.i32();
  report.violations.bridges = r.i32();
  report.violations.extra = r.i32();
  return report;
}

}  // namespace

void write_result(WireWriter& w, const core::LdmoResult& result) {
  w.str("rs1");
  w.u32(static_cast<std::uint32_t>(result.chosen.size()));
  for (int mask : result.chosen) w.i32(mask);

  w.grid(result.ilt.mask1).grid(result.ilt.mask2).grid(result.ilt.response);
  write_report(w, result.ilt.report);
  w.u32(static_cast<std::uint32_t>(result.ilt.trajectory.size()));
  for (const opc::IltIterationStats& s : result.ilt.trajectory) {
    w.i32(s.iteration).f64(s.l2);
    w.i32(s.epe_violations).i32(s.print_violations);
  }
  w.i32(result.ilt.iterations_run);
  w.u8(result.ilt.aborted_on_violation ? 1 : 0);
  w.u8(result.ilt.cancelled ? 1 : 0);

  w.i32(result.candidates_generated).i32(result.candidates_tried);
  // Phase buckets in sorted order: PhaseTimer iteration order is
  // unordered_map order, which is not canonical.
  std::vector<std::string> phases = result.timing.phases();
  std::sort(phases.begin(), phases.end());
  w.u32(static_cast<std::uint32_t>(phases.size()));
  for (const std::string& phase : phases) {
    w.str(phase);
    w.f64(result.timing.get(phase)).f64(result.timing.get_cpu(phase));
  }
  w.f64(result.total_seconds);
  w.u8(result.cancelled ? 1 : 0);
  w.u8(result.failed ? 1 : 0);
  write_flow_error(w, result.error);
  w.u8(result.degraded ? 1 : 0);
}

core::LdmoResult read_result(WireReader& r) {
  r.expect_tag("rs1");
  core::LdmoResult result;
  const std::uint32_t chosen = r.u32();
  if (static_cast<std::size_t>(chosen) * 4 > r.remaining())
    r.fail("assignment length exceeds remaining payload");
  result.chosen.reserve(chosen);
  for (std::uint32_t i = 0; i < chosen; ++i)
    result.chosen.push_back(r.i32());

  result.ilt.mask1 = r.grid();
  result.ilt.mask2 = r.grid();
  result.ilt.response = r.grid();
  result.ilt.report = read_report(r);
  const std::uint32_t trajectory = r.u32();
  if (static_cast<std::size_t>(trajectory) * 20 > r.remaining())
    r.fail("trajectory length exceeds remaining payload");
  result.ilt.trajectory.reserve(trajectory);
  for (std::uint32_t i = 0; i < trajectory; ++i) {
    opc::IltIterationStats s;
    s.iteration = r.i32();
    s.l2 = r.f64();
    s.epe_violations = r.i32();
    s.print_violations = r.i32();
    result.ilt.trajectory.push_back(s);
  }
  result.ilt.iterations_run = r.i32();
  result.ilt.aborted_on_violation = r.u8() != 0;
  result.ilt.cancelled = r.u8() != 0;

  result.candidates_generated = r.i32();
  result.candidates_tried = r.i32();
  const std::uint32_t phases = r.u32();
  for (std::uint32_t i = 0; i < phases; ++i) {
    const std::string phase = r.str();
    const double wall = r.f64();
    const double cpu = r.f64();
    result.timing.add(phase, wall, cpu);
  }
  result.total_seconds = r.f64();
  result.cancelled = r.u8() != 0;
  result.failed = r.u8() != 0;
  result.error = read_flow_error(r);
  result.degraded = r.u8() != 0;
  return result;
}

// --- response ---

void write_response(WireWriter& w, const serve::ServeResponse& response) {
  w.str("rp1");
  w.u8(static_cast<std::uint8_t>(response.status));
  w.u64(response.request_id).u64(response.cache_key);
  w.u64(response.completion_sequence);
  w.f64(response.queue_seconds).f64(response.service_seconds);
  w.f64(response.total_seconds);
  w.i32(response.attempts);
  w.u8(response.degraded ? 1 : 0);
  write_flow_error(w, response.error);
  // The result payload travels only when it is populated (kOk / kCached);
  // terminal failures stay compact.
  w.u8(response.ok() ? 1 : 0);
  if (response.ok()) write_result(w, response.result);
}

serve::ServeResponse read_response(WireReader& r) {
  r.expect_tag("rp1");
  serve::ServeResponse response;
  const std::uint8_t status = r.u8();
  if (status >= serve::kServeStatusCount)
    r.fail("serve status " + std::to_string(status) + " out of range");
  response.status = static_cast<serve::ServeStatus>(status);
  response.request_id = r.u64();
  response.cache_key = r.u64();
  response.completion_sequence = r.u64();
  response.queue_seconds = r.f64();
  response.service_seconds = r.f64();
  response.total_seconds = r.f64();
  response.attempts = r.i32();
  response.degraded = r.u8() != 0;
  response.error = read_flow_error(r);
  if (r.u8() != 0) response.result = read_result(r);
  return response;
}

// --- stats ---

void write_stats(WireWriter& w, const WorkerStats& stats) {
  w.str("st1");
  w.u64(stats.config_fingerprint).u64(stats.weights_version);
  w.str(stats.predictor);
  for (long long count : stats.status_counts) w.i64(count);
  w.i64(stats.cache_hits).i64(stats.cache_misses);
  w.u64(stats.cache_entries).u64(stats.queue_depth);
}

WorkerStats read_stats(WireReader& r) {
  r.expect_tag("st1");
  WorkerStats stats;
  stats.config_fingerprint = r.u64();
  stats.weights_version = r.u64();
  stats.predictor = r.str();
  for (long long& count : stats.status_counts) count = r.i64();
  stats.cache_hits = r.i64();
  stats.cache_misses = r.i64();
  stats.cache_entries = r.u64();
  stats.queue_depth = r.u64();
  return stats;
}

}  // namespace ldmo::net
