#include "net/client.h"

#include <utility>

#include "common/flow_error.h"
#include "obs/metrics.h"

namespace ldmo::net {

Client::Client(ClientConfig config)
    : config_(config), peer_(endpoint_name(config.port)) {}

void Client::ensure_connected() {
  if (sock_.valid()) return;
  sock_ = connect_loopback(config_.port, config_.timeout_seconds,
                           config_.connect_attempts,
                           config_.connect_retry_seconds);
}

Frame Client::roundtrip(MessageType type,
                        const std::vector<std::uint8_t>& payload,
                        MessageType expected) {
  try {
    ensure_connected();
    write_frame(sock_.fd(), type, payload, peer_);
    std::optional<Frame> reply = read_frame(sock_.fd(), peer_);
    if (!reply)
      throw FlowException(FlowStage::kNet,
                          "frame (" + peer_ + "): connection closed while "
                          "awaiting " + message_type_name(expected));
    if (reply->type == MessageType::kError) {
      // Protocol-level refusal: decode the carried (stage, message) and
      // rethrow it as our own — the server could not even form a response.
      WireReader r(reply->payload, peer_ + " error frame");
      const auto stage = static_cast<FlowStage>(r.u8());
      const std::string message = r.str();
      throw FlowException(
          stage < FlowStage::kUnknown ? stage : FlowStage::kUnknown,
          "remote (" + peer_ + "): " + message);
    }
    if (reply->type != expected)
      throw FlowException(FlowStage::kNet,
                          "frame (" + peer_ + "): expected " +
                              message_type_name(expected) + ", got " +
                              message_type_name(reply->type));
    return std::move(*reply);
  } catch (const FlowException& e) {
    // Any transport fault poisons the stream framing; reconnect next time.
    if (e.error().stage == FlowStage::kNet) sock_.close();
    throw;
  }
}

serve::ServeResponse Client::submit(const serve::ServeRequest& request) {
  WireWriter w;
  write_request(w, request);
  const std::vector<std::uint8_t> payload = w.take();

  for (int attempt = 0;; ++attempt) {
    try {
      const Frame reply = roundtrip(MessageType::kSubmitRequest, payload,
                                    MessageType::kSubmitResponse);
      WireReader r(reply.payload, peer_);
      serve::ServeResponse response = read_response(r);
      r.expect_end();
      return response;
    } catch (const FlowException& e) {
      if (e.error().stage != FlowStage::kNet ||
          attempt >= config_.net_retries)
        throw;
      obs::counter("net.client.retries").inc();
    }
  }
}

bool Client::ping() {
  try {
    roundtrip(MessageType::kPing, {}, MessageType::kPong);
    return true;
  } catch (const FlowException&) {
    return false;
  }
}

WorkerStats Client::stats() {
  for (int attempt = 0;; ++attempt) {
    try {
      const Frame reply = roundtrip(MessageType::kStats, {},
                                    MessageType::kStatsResponse);
      WireReader r(reply.payload, peer_);
      WorkerStats stats = read_stats(r);
      r.expect_end();
      return stats;
    } catch (const FlowException& e) {
      if (e.error().stage != FlowStage::kNet ||
          attempt >= config_.net_retries)
        throw;
      obs::counter("net.client.retries").inc();
    }
  }
}

std::uint64_t Client::swap_weights(
    std::uint64_t version, const std::vector<std::uint8_t>& blob,
    const std::vector<std::uint8_t>& warm_blob) {
  WireWriter w;
  w.u64(version);
  w.blob(blob);
  // The warm-start section is appended only when present: an old-style
  // payload (u64 + blob) and a new-style one without warm weights are
  // byte-identical, so the wire format stays compatible both ways.
  if (!warm_blob.empty()) w.blob(warm_blob);
  // No transport retry: a swap is not idempotent from the cache's point of
  // view (the blue/green handoff runs once); the caller decides whether to
  // re-issue after a fault.
  const Frame reply = roundtrip(MessageType::kSwapWeights, w.take(),
                                MessageType::kSwapAck);
  WireReader r(reply.payload, peer_);
  const std::uint64_t active = r.u64();
  r.expect_end();
  return active;
}

AsyncClient::AsyncClient(ClientConfig config, int workers)
    : config_(config) {
  if (workers < 1) workers = 1;
  threads_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

AsyncClient::~AsyncClient() { shutdown(); }

std::future<serve::ServeResponse> AsyncClient::submit(
    serve::ServeRequest request) {
  Job job;
  job.request = std::move(request);
  std::future<serve::ServeResponse> future = job.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      job.promise.set_exception(std::make_exception_ptr(FlowException(
          FlowStage::kNet, "AsyncClient: submit after shutdown")));
      return future;
    }
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
  return future;
}

void AsyncClient::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
}

void AsyncClient::worker_loop() {
  Client client(config_);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) return;  // closed and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    try {
      job.promise.set_value(client.submit(job.request));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

}  // namespace ldmo::net
