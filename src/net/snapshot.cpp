#include "net/snapshot.h"

#include <cstdio>
#include <fstream>

#include "common/flow_error.h"
#include "net/wire.h"

namespace ldmo::net {

namespace {

constexpr char kSnapshotMagic[4] = {'L', 'D', 'S', 'N'};
constexpr std::uint16_t kSnapshotVersion = 1;

}  // namespace

void save_cache_snapshot(const std::string& path,
                         const CacheSnapshot& snapshot) {
  WireWriter w;
  for (char magic : kSnapshotMagic)
    w.u8(static_cast<std::uint8_t>(magic));
  w.u16(kSnapshotVersion);
  w.u64(snapshot.config_fingerprint);
  // Degraded results never persist: the live server refuses to cache them
  // (a recovered predictor should re-rank the layout, not replay a
  // heuristic fallback), and the snapshot must not resurrect across a
  // restart what the cache policy evicted at serve time. Counted first so
  // the header count matches the records written.
  std::uint32_t kept = 0;
  for (const auto& [key, result] : snapshot.entries)
    if (!result.degraded) ++kept;
  w.u32(kept);
  for (const auto& [key, result] : snapshot.entries) {
    if (result.degraded) continue;
    w.u64(key);
    write_result(w, result);
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw FlowException(FlowStage::kNet,
                          "snapshot: cannot open " + tmp + " for writing");
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.size()));
    if (!out)
      throw FlowException(FlowStage::kNet, "snapshot: write to " + tmp +
                                               " failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw FlowException(FlowStage::kNet,
                        "snapshot: cannot rename " + tmp + " to " + path);
}

std::optional<CacheSnapshot> load_cache_snapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;  // cold start
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};

  WireReader r(bytes, path);
  for (char magic : kSnapshotMagic) {
    if (r.u8() != static_cast<std::uint8_t>(magic))
      r.fail("bad snapshot magic (not an LDSN file)");
  }
  const std::uint16_t version = r.u16();
  if (version != kSnapshotVersion)
    r.fail("snapshot version " + std::to_string(version) +
           " (this build reads " + std::to_string(kSnapshotVersion) + ")");

  CacheSnapshot snapshot;
  snapshot.config_fingerprint = r.u64();
  const std::uint32_t count = r.u32();
  snapshot.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t key = r.u64();
    snapshot.entries.emplace_back(key, read_result(r));
  }
  r.expect_end();
  return snapshot;
}

}  // namespace ldmo::net
