// Combinatorial covering arrays over binary factors (n-wise method).
//
// The paper generates decomposition candidates with PICT's n-wise arrays:
// each row is one decomposition, each column a pattern, and the value the
// mask assignment. A strength-n array guarantees every combination of any
// n patterns' assignments appears in some row while keeping the row count
// near-minimal (logarithmic in the factor count). This module is our
// from-scratch PICT replacement: a greedy AETG-style generator plus an
// exhaustive coverage verifier used by tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ldmo::coverage {

/// A covering array: rows x factors. Entry (r, f) is a level in
/// [0, arities[f]). The paper's decomposition use is binary (two masks);
/// the k-ary form supports the triple-patterning extension (arity 3+) and
/// mixed-arity factor sets (e.g. 6-level component-permutation factors).
struct CoveringArray {
  int factor_count = 0;
  int strength = 0;
  /// Levels per factor; all 2 for the binary constructor.
  std::vector<int> arities;
  std::vector<std::vector<std::uint8_t>> rows;
};

/// Options for the greedy generator.
struct GeneratorOptions {
  /// Candidate rows scored per emitted row (AETG parameter); higher gives
  /// smaller arrays but costs more time.
  int candidates_per_row = 24;
  /// RNG seed for candidate generation (arrays are deterministic per seed).
  std::uint64_t seed = 1;
};

/// Generates a binary covering array of the given strength.
///
/// - strength >= factor_count degenerates to the full Cartesian product
///   (2^factor_count rows), matching the paper's remark.
/// - factor_count == 0 yields a single empty row (the unique empty
///   assignment), so downstream candidate counts multiply correctly.
///
/// Throws on negative inputs or strength < 1 (unless factor_count == 0).
CoveringArray generate_covering_array(int factor_count, int strength,
                                      const GeneratorOptions& options = {});

/// Mixed-arity covering array: factor f takes levels [0, arities[f]).
/// Same degenerate cases as the binary form (full Cartesian product when
/// strength >= factor count; a single empty row for zero factors).
/// Throws when any arity is < 2 or the Cartesian-product fallback would
/// exceed 2^20 rows.
CoveringArray generate_covering_array_mixed(
    std::vector<int> arities, int strength,
    const GeneratorOptions& options = {});

/// Exhaustively checks the strength-t coverage property: for every choice
/// of `strength` columns, all combinations of those columns' levels appear
/// in some row.
bool verify_coverage(const CoveringArray& array);

/// Number of distinct (column-set, value) tuples a strength-t array over
/// `factor_count` binary factors must cover: C(f, t) * 2^t.
std::uint64_t required_tuple_count(int factor_count, int strength);

}  // namespace ldmo::coverage
