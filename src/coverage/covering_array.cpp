#include "coverage/covering_array.h"

#include <algorithm>
#include <unordered_set>

#include "common/error.h"

namespace ldmo::coverage {
namespace {

using Row = std::vector<std::uint8_t>;

// Enumerates all C(f, t) column subsets of size t in lexicographic order,
// invoking fn(columns).
template <typename Fn>
void for_each_column_subset(int factor_count, int strength, Fn&& fn) {
  std::vector<int> cols(static_cast<std::size_t>(strength));
  for (int i = 0; i < strength; ++i) cols[static_cast<std::size_t>(i)] = i;
  while (true) {
    fn(cols);
    int i = strength - 1;
    while (i >= 0 &&
           cols[static_cast<std::size_t>(i)] == factor_count - strength + i)
      --i;
    if (i < 0) break;
    ++cols[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < strength; ++j)
      cols[static_cast<std::size_t>(j)] =
          cols[static_cast<std::size_t>(j - 1)] + 1;
  }
}

// Mixed-radix index of a row's values on one column subset.
std::size_t value_index(const std::vector<int>& cols,
                        const std::vector<int>& arities, const Row& row) {
  std::size_t index = 0;
  for (int c : cols) {
    index = index * static_cast<std::size_t>(
                        arities[static_cast<std::size_t>(c)]) +
            row[static_cast<std::size_t>(c)];
  }
  return index;
}

// Number of level combinations on one column subset.
std::size_t combo_count(const std::vector<int>& cols,
                        const std::vector<int>& arities) {
  std::size_t n = 1;
  for (int c : cols) n *= static_cast<std::size_t>(
      arities[static_cast<std::size_t>(c)]);
  return n;
}

// Tracks uncovered tuples across all column subsets of the given strength.
class TupleTracker {
 public:
  TupleTracker(const std::vector<int>& arities, int strength)
      : arities_(arities), strength_(strength) {
    const int f = static_cast<int>(arities.size());
    std::size_t offset = 0;
    for_each_column_subset(f, strength, [&](const std::vector<int>& cols) {
      column_sets_.push_back(cols);
      offsets_.push_back(offset);
      offset += combo_count(cols, arities_);
    });
    covered_.assign(offset, false);
    uncovered_count_ = offset;
  }

  std::size_t uncovered_count() const { return uncovered_count_; }

  std::size_t gain(const Row& row) const {
    std::size_t g = 0;
    for (std::size_t s = 0; s < column_sets_.size(); ++s)
      if (!covered_[offsets_[s] + value_index(column_sets_[s], arities_, row)])
        ++g;
    return g;
  }

  void cover(const Row& row) {
    for (std::size_t s = 0; s < column_sets_.size(); ++s) {
      const std::size_t idx =
          offsets_[s] + value_index(column_sets_[s], arities_, row);
      if (!covered_[idx]) {
        covered_[idx] = true;
        --uncovered_count_;
      }
    }
  }

  // An arbitrary uncovered tuple as (columns, values).
  std::pair<std::vector<int>, Row> any_uncovered() const {
    for (std::size_t s = 0; s < column_sets_.size(); ++s) {
      const std::size_t combos = combo_count(column_sets_[s], arities_);
      for (std::size_t v = 0; v < combos; ++v) {
        if (covered_[offsets_[s] + v]) continue;
        // Decode mixed-radix v back into per-column levels.
        Row values(static_cast<std::size_t>(strength_));
        std::size_t rest = v;
        for (int b = strength_ - 1; b >= 0; --b) {
          const int arity = arities_[static_cast<std::size_t>(
              column_sets_[s][static_cast<std::size_t>(b)])];
          values[static_cast<std::size_t>(b)] =
              static_cast<std::uint8_t>(rest % static_cast<std::size_t>(arity));
          rest /= static_cast<std::size_t>(arity);
        }
        return {column_sets_[s], values};
      }
    }
    raise("TupleTracker::any_uncovered: all tuples covered");
  }

 private:
  std::vector<int> arities_;
  int strength_;
  std::vector<std::vector<int>> column_sets_;
  std::vector<std::size_t> offsets_;
  std::vector<bool> covered_;
  std::size_t uncovered_count_ = 0;
};

CoveringArray cartesian_product(const std::vector<int>& arities,
                                int strength) {
  std::size_t rows = 1;
  for (int a : arities) {
    rows *= static_cast<std::size_t>(a);
    require(rows <= (std::size_t{1} << 20),
            "covering array: Cartesian product too large");
  }
  CoveringArray array;
  array.factor_count = static_cast<int>(arities.size());
  array.strength = strength;
  array.arities = arities;
  array.rows.reserve(rows);
  Row row(arities.size(), 0);
  for (std::size_t r = 0; r < rows; ++r) {
    array.rows.push_back(row);
    // Increment the mixed-radix counter.
    for (std::size_t f = 0; f < arities.size(); ++f) {
      if (++row[f] < arities[f]) break;
      row[f] = 0;
    }
  }
  return array;
}

}  // namespace

CoveringArray generate_covering_array_mixed(std::vector<int> arities,
                                            int strength,
                                            const GeneratorOptions& options) {
  const int factor_count = static_cast<int>(arities.size());
  if (factor_count == 0) {
    CoveringArray array;
    array.strength = strength;
    array.rows.push_back({});
    return array;
  }
  require(strength >= 1, "covering array: strength must be >= 1");
  for (int a : arities)
    require(a >= 2 && a <= 255, "covering array: arity out of [2, 255]");
  if (strength >= factor_count) return cartesian_product(arities, strength);

  TupleTracker tracker(arities, strength);
  Rng rng(options.seed);
  CoveringArray array;
  array.factor_count = factor_count;
  array.strength = strength;
  array.arities = arities;

  while (tracker.uncovered_count() > 0) {
    // Seed every candidate with one uncovered tuple, fill the rest
    // randomly, keep the candidate covering the most new tuples (AETG).
    const auto [seed_cols, seed_vals] = tracker.any_uncovered();
    Row best_row;
    std::size_t best_gain = 0;
    for (int c = 0; c < std::max(1, options.candidates_per_row); ++c) {
      Row row(static_cast<std::size_t>(factor_count));
      for (int f = 0; f < factor_count; ++f)
        row[static_cast<std::size_t>(f)] = static_cast<std::uint8_t>(
            rng.uniform_int(0, arities[static_cast<std::size_t>(f)] - 1));
      for (std::size_t i = 0; i < seed_cols.size(); ++i)
        row[static_cast<std::size_t>(seed_cols[i])] = seed_vals[i];
      const std::size_t g = tracker.gain(row);
      if (g > best_gain) {
        best_gain = g;
        best_row = std::move(row);
      }
    }
    LDMO_ASSERT(best_gain > 0);  // seeded tuple is always newly covered
    tracker.cover(best_row);
    array.rows.push_back(std::move(best_row));
  }
  return array;
}

CoveringArray generate_covering_array(int factor_count, int strength,
                                      const GeneratorOptions& options) {
  require(factor_count >= 0, "covering array: negative factor count");
  require(factor_count <= 62, "covering array: too many factors");
  if (factor_count > 0)
    require(strength >= 1, "covering array: strength must be >= 1");
  return generate_covering_array_mixed(
      std::vector<int>(static_cast<std::size_t>(factor_count), 2), strength,
      options);
}

bool verify_coverage(const CoveringArray& array) {
  if (array.factor_count == 0) return !array.rows.empty();
  std::vector<int> arities = array.arities;
  if (arities.empty())
    arities.assign(static_cast<std::size_t>(array.factor_count), 2);
  const int t = std::min(array.strength, array.factor_count);
  bool ok = true;
  for_each_column_subset(
      array.factor_count, t, [&](const std::vector<int>& cols) {
        if (!ok) return;
        std::unordered_set<std::size_t> seen;
        for (const auto& row : array.rows)
          seen.insert(value_index(cols, arities, row));
        if (seen.size() != combo_count(cols, arities)) ok = false;
      });
  return ok;
}

std::uint64_t required_tuple_count(int factor_count, int strength) {
  if (strength > factor_count) strength = factor_count;
  // C(f, t)
  std::uint64_t c = 1;
  for (int i = 1; i <= strength; ++i)
    c = c * static_cast<std::uint64_t>(factor_count - strength + i) /
        static_cast<std::uint64_t>(i);
  return c << strength;
}

}  // namespace ldmo::coverage
