// Radix-2 fast Fourier transforms (1-D and 2-D).
//
// Hopkins imaging evaluates K convolutions of each mask with the SOCS
// kernels per lithography forward pass, and the ILT gradient needs as many
// again with flipped kernels; all of them run through this module as
// frequency-domain products. Plans precompute bit-reversal tables and
// twiddle factors once per size, since the same 2-D shape is transformed
// thousands of times per ILT run.
#pragma once

#include <complex>
#include <vector>

#include "common/grid.h"

namespace ldmo::fft {

using Complex = std::complex<double>;
using GridC = Grid<Complex>;

/// Returns the smallest power of two >= n (n >= 1).
int next_pow2(int n);

/// True if n is a power of two (n >= 1).
bool is_pow2(int n);

/// Precomputed plan for 1-D transforms of a fixed power-of-two size.
class FftPlan {
 public:
  explicit FftPlan(int size);

  int size() const { return size_; }

  /// In-place forward DFT (engineering sign convention, no scaling).
  void forward(Complex* data) const;

  /// In-place inverse DFT including the 1/N scaling.
  void inverse(Complex* data) const;

 private:
  void transform(Complex* data, bool inverse) const;

  int size_;
  int log2_size_;
  std::vector<int> bit_reverse_;
  // Stage-major twiddles: the stage with butterfly span `len` owns the
  // len/2 contiguous entries starting at offset len/2 - 1, so each
  // butterfly pass reads its table sequentially (SIMD-friendly) instead of
  // striding through one size/2 table. Values are gathered from the same
  // cos/sin evaluations as the classic layout — bit-identical butterflies.
  std::vector<Complex> stage_twiddle_forward_;
  std::vector<Complex> stage_twiddle_inverse_;
};

/// Precomputed plan for 2-D transforms of a fixed power-of-two shape.
/// Plans are immutable after construction and safe to share across threads
/// (per-call scratch comes from the calling thread's Workspace).
class Fft2DPlan {
 public:
  Fft2DPlan(int height, int width);

  int height() const { return height_; }
  int width() const { return width_; }

  /// In-place 2-D forward DFT of a row-major grid.
  void forward(GridC& grid) const;

  /// In-place 2-D inverse DFT (scaled by 1/(H*W)).
  void inverse(GridC& grid) const;

  /// Raw-pointer variants over row-major height()*width() storage — used
  /// by callers that transform slices of one flat pooled buffer.
  void forward(Complex* data) const;
  void inverse(Complex* data) const;

  /// 2-D forward DFT of a REAL grid (masks, resist targets): packs row
  /// pairs as re+i*im so each row FFT transforms two rows at once, then
  /// transforms only columns [0, W/2] and reconstructs the rest from the
  /// Hermitian symmetry F(v, W-u) = conj(F((H-v) mod H, u)) — just under
  /// half the butterfly work of forward(to_complex(src)). The spectrum is
  /// mathematically identical; rounding differs at the ~1 ulp level
  /// because the pack/unpack reassociates row-transform arithmetic.
  void forward_real(const GridF& src, GridC& out) const;
  void forward_real(const double* src, Complex* out) const;

  /// Frequency-domain convolution into a caller buffer:
  /// out = IFFT(spectrum .* kernel_freq). `out` is reshaped if needed and
  /// fully overwritten — at steady state (same shape every call) this
  /// performs no allocation. `out` must not alias either input.
  void convolve_spectrum(const GridC& spectrum, const GridC& kernel_freq,
                         GridC& out) const;

 private:
  void transform_rows(Complex* data, bool inverse) const;
  void transform_cols(Complex* data, bool inverse) const;
  /// Column FFTs restricted to columns [x_begin, x_end) — the Hermitian
  /// real-input path only transforms the non-redundant half.
  void transform_cols_range(Complex* data, int x_begin, int x_end,
                            bool inverse) const;

  int height_;
  int width_;
  FftPlan row_plan_;
  FftPlan col_plan_;
};

/// Process-wide plan cache: one immutable Fft2DPlan per (height, width),
/// built on first use. The returned reference lives for the process
/// lifetime, so long-lived sessions (FlowEngine) and short-lived
/// simulators share the same tables.
const Fft2DPlan& plan_for(int height, int width);

/// Copies a real grid into a complex grid of the same shape.
GridC to_complex(const GridF& real);

/// Out-param variant: reshapes `out` if needed and fully overwrites it
/// (allocation-free when the shape already matches).
void to_complex(const GridF& real, GridC& out);

/// Extracts the real part.
GridF real_part(const GridC& grid);

/// Out-param variant of real_part (same reuse contract as to_complex).
void real_part(const GridC& grid, GridF& out);

/// Pointwise product: a *= b. Shapes must match.
void multiply_inplace(GridC& a, const GridC& b);

/// Pointwise product with the conjugate of b: a *= conj(b).
void multiply_conj_inplace(GridC& a, const GridC& b);

}  // namespace ldmo::fft
