#include "fft/fft.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/error.h"
#include "runtime/workspace.h"

namespace ldmo::fft {

int next_pow2(int n) {
  require(n >= 1, "next_pow2: n must be >= 1");
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(int n) { return n >= 1 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(int size) : size_(size) {
  require(is_pow2(size), "FftPlan: size must be a power of two");
  log2_size_ = 0;
  while ((1 << log2_size_) < size_) ++log2_size_;

  bit_reverse_.resize(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    int rev = 0;
    for (int b = 0; b < log2_size_; ++b)
      if (i & (1 << b)) rev |= 1 << (log2_size_ - 1 - b);
    bit_reverse_[static_cast<std::size_t>(i)] = rev;
  }

  twiddle_forward_.resize(static_cast<std::size_t>(size_ / 2));
  twiddle_inverse_.resize(static_cast<std::size_t>(size_ / 2));
  for (int k = 0; k < size_ / 2; ++k) {
    const double angle = -2.0 * M_PI * k / size_;
    twiddle_forward_[static_cast<std::size_t>(k)] =
        Complex(std::cos(angle), std::sin(angle));
    twiddle_inverse_[static_cast<std::size_t>(k)] =
        Complex(std::cos(angle), -std::sin(angle));
  }
}

void FftPlan::transform(Complex* data, bool inverse) const {
  // Bit-reversal permutation.
  for (int i = 0; i < size_; ++i) {
    const int j = bit_reverse_[static_cast<std::size_t>(i)];
    if (i < j) std::swap(data[i], data[j]);
  }
  const auto& twiddle = inverse ? twiddle_inverse_ : twiddle_forward_;
  // Iterative Cooley-Tukey butterflies.
  for (int len = 2; len <= size_; len <<= 1) {
    const int half = len >> 1;
    const int stride = size_ / len;
    for (int start = 0; start < size_; start += len) {
      for (int k = 0; k < half; ++k) {
        const Complex w = twiddle[static_cast<std::size_t>(k * stride)];
        Complex& a = data[start + k];
        Complex& b = data[start + k + half];
        const Complex t = w * b;
        b = a - t;
        a += t;
      }
    }
  }
}

void FftPlan::forward(Complex* data) const { transform(data, false); }

void FftPlan::inverse(Complex* data) const {
  transform(data, true);
  const double scale = 1.0 / size_;
  for (int i = 0; i < size_; ++i) data[i] *= scale;
}

Fft2DPlan::Fft2DPlan(int height, int width)
    : height_(height), width_(width), row_plan_(width), col_plan_(height) {}

void Fft2DPlan::transform_rows(Complex* data, bool inverse) const {
  for (int y = 0; y < height_; ++y) {
    Complex* row = data + static_cast<std::size_t>(y) * width_;
    if (inverse)
      row_plan_.inverse(row);
    else
      row_plan_.forward(row);
  }
}

void Fft2DPlan::transform_cols(Complex* data, bool inverse) const {
  // Blocked gather/scatter: kColBlock columns move through pooled scratch
  // together, so the row-major walk touches each grid cache line once per
  // block instead of once per column. The per-column butterflies are
  // unchanged, so results are bit-identical to the single-column walk.
  constexpr int kColBlock = 8;
  runtime::PooledVector<Complex> scratch =
      runtime::Workspace::this_thread().vec_c128_uninit(
          static_cast<std::size_t>(height_) * kColBlock);
  Complex* buf = scratch.data();
  for (int x0 = 0; x0 < width_; x0 += kColBlock) {
    const int block = std::min(kColBlock, width_ - x0);
    for (int y = 0; y < height_; ++y) {
      const Complex* row = data + static_cast<std::size_t>(y) * width_;
      for (int b = 0; b < block; ++b)
        buf[static_cast<std::size_t>(b) * height_ + y] = row[x0 + b];
    }
    for (int b = 0; b < block; ++b) {
      Complex* column = buf + static_cast<std::size_t>(b) * height_;
      if (inverse)
        col_plan_.inverse(column);
      else
        col_plan_.forward(column);
    }
    for (int y = 0; y < height_; ++y) {
      Complex* row = data + static_cast<std::size_t>(y) * width_;
      for (int b = 0; b < block; ++b)
        row[x0 + b] = buf[static_cast<std::size_t>(b) * height_ + y];
    }
  }
}

void Fft2DPlan::forward(GridC& grid) const {
  require(grid.height() == height_ && grid.width() == width_,
          "Fft2DPlan::forward: shape mismatch");
  forward(grid.data());
}

void Fft2DPlan::inverse(GridC& grid) const {
  require(grid.height() == height_ && grid.width() == width_,
          "Fft2DPlan::inverse: shape mismatch");
  inverse(grid.data());
}

void Fft2DPlan::forward(Complex* data) const {
  transform_rows(data, false);
  transform_cols(data, false);
}

void Fft2DPlan::inverse(Complex* data) const {
  transform_rows(data, true);
  transform_cols(data, true);
}

void Fft2DPlan::convolve_spectrum(const GridC& spectrum,
                                  const GridC& kernel_freq,
                                  GridC& out) const {
  require(spectrum.height() == height_ && spectrum.width() == width_ &&
              spectrum.same_shape(kernel_freq),
          "convolve_spectrum: shape mismatch");
  out = spectrum;  // vector copy-assign reuses out's storage when it fits
  multiply_inplace(out, kernel_freq);
  inverse(out);
}

const Fft2DPlan& plan_for(int height, int width) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, std::unique_ptr<Fft2DPlan>>* cache =
      new std::map<std::pair<int, int>, std::unique_ptr<Fft2DPlan>>();
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<Fft2DPlan>& slot = (*cache)[{height, width}];
  if (!slot) slot = std::make_unique<Fft2DPlan>(height, width);
  return *slot;
}

GridC to_complex(const GridF& real) {
  GridC out;
  to_complex(real, out);
  return out;
}

void to_complex(const GridF& real, GridC& out) {
  out.resize(real.height(), real.width());
  for (std::size_t i = 0; i < real.size(); ++i) out[i] = Complex(real[i], 0.0);
}

GridF real_part(const GridC& grid) {
  GridF out;
  real_part(grid, out);
  return out;
}

void real_part(const GridC& grid, GridF& out) {
  out.resize(grid.height(), grid.width());
  for (std::size_t i = 0; i < grid.size(); ++i) out[i] = grid[i].real();
}

void multiply_inplace(GridC& a, const GridC& b) {
  require(a.same_shape(b), "multiply_inplace: shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= b[i];
}

void multiply_conj_inplace(GridC& a, const GridC& b) {
  require(a.same_shape(b), "multiply_conj_inplace: shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= std::conj(b[i]);
}

}  // namespace ldmo::fft
