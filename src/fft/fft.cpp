#include "fft/fft.h"

#include <cmath>

#include "common/error.h"

namespace ldmo::fft {

int next_pow2(int n) {
  require(n >= 1, "next_pow2: n must be >= 1");
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(int n) { return n >= 1 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(int size) : size_(size) {
  require(is_pow2(size), "FftPlan: size must be a power of two");
  log2_size_ = 0;
  while ((1 << log2_size_) < size_) ++log2_size_;

  bit_reverse_.resize(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    int rev = 0;
    for (int b = 0; b < log2_size_; ++b)
      if (i & (1 << b)) rev |= 1 << (log2_size_ - 1 - b);
    bit_reverse_[static_cast<std::size_t>(i)] = rev;
  }

  twiddle_forward_.resize(static_cast<std::size_t>(size_ / 2));
  twiddle_inverse_.resize(static_cast<std::size_t>(size_ / 2));
  for (int k = 0; k < size_ / 2; ++k) {
    const double angle = -2.0 * M_PI * k / size_;
    twiddle_forward_[static_cast<std::size_t>(k)] =
        Complex(std::cos(angle), std::sin(angle));
    twiddle_inverse_[static_cast<std::size_t>(k)] =
        Complex(std::cos(angle), -std::sin(angle));
  }
}

void FftPlan::transform(Complex* data, bool inverse) const {
  // Bit-reversal permutation.
  for (int i = 0; i < size_; ++i) {
    const int j = bit_reverse_[static_cast<std::size_t>(i)];
    if (i < j) std::swap(data[i], data[j]);
  }
  const auto& twiddle = inverse ? twiddle_inverse_ : twiddle_forward_;
  // Iterative Cooley-Tukey butterflies.
  for (int len = 2; len <= size_; len <<= 1) {
    const int half = len >> 1;
    const int stride = size_ / len;
    for (int start = 0; start < size_; start += len) {
      for (int k = 0; k < half; ++k) {
        const Complex w = twiddle[static_cast<std::size_t>(k * stride)];
        Complex& a = data[start + k];
        Complex& b = data[start + k + half];
        const Complex t = w * b;
        b = a - t;
        a += t;
      }
    }
  }
}

void FftPlan::forward(Complex* data) const { transform(data, false); }

void FftPlan::inverse(Complex* data) const {
  transform(data, true);
  const double scale = 1.0 / size_;
  for (int i = 0; i < size_; ++i) data[i] *= scale;
}

Fft2DPlan::Fft2DPlan(int height, int width)
    : height_(height), width_(width), row_plan_(width), col_plan_(height) {}

void Fft2DPlan::transform_rows(GridC& grid, bool inverse) const {
  for (int y = 0; y < height_; ++y) {
    Complex* row = grid.data() + static_cast<std::size_t>(y) * width_;
    if (inverse)
      row_plan_.inverse(row);
    else
      row_plan_.forward(row);
  }
}

void Fft2DPlan::transform_cols(GridC& grid, bool inverse) const {
  std::vector<Complex> column(static_cast<std::size_t>(height_));
  for (int x = 0; x < width_; ++x) {
    for (int y = 0; y < height_; ++y)
      column[static_cast<std::size_t>(y)] = grid.at(y, x);
    if (inverse)
      col_plan_.inverse(column.data());
    else
      col_plan_.forward(column.data());
    for (int y = 0; y < height_; ++y)
      grid.at(y, x) = column[static_cast<std::size_t>(y)];
  }
}

void Fft2DPlan::forward(GridC& grid) const {
  require(grid.height() == height_ && grid.width() == width_,
          "Fft2DPlan::forward: shape mismatch");
  transform_rows(grid, false);
  transform_cols(grid, false);
}

void Fft2DPlan::inverse(GridC& grid) const {
  require(grid.height() == height_ && grid.width() == width_,
          "Fft2DPlan::inverse: shape mismatch");
  transform_rows(grid, true);
  transform_cols(grid, true);
}

GridC to_complex(const GridF& real) {
  GridC out(real.height(), real.width());
  for (std::size_t i = 0; i < real.size(); ++i) out[i] = Complex(real[i], 0.0);
  return out;
}

GridF real_part(const GridC& grid) {
  GridF out(grid.height(), grid.width());
  for (std::size_t i = 0; i < grid.size(); ++i) out[i] = grid[i].real();
  return out;
}

void multiply_inplace(GridC& a, const GridC& b) {
  require(a.same_shape(b), "multiply_inplace: shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= b[i];
}

void multiply_conj_inplace(GridC& a, const GridC& b) {
  require(a.same_shape(b), "multiply_conj_inplace: shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= std::conj(b[i]);
}

}  // namespace ldmo::fft
