#include "fft/fft.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/error.h"
#include "kernels/kernels.h"
#include "runtime/workspace.h"

namespace ldmo::fft {

int next_pow2(int n) {
  require(n >= 1, "next_pow2: n must be >= 1");
  int p = 1;
  while (p < n) p <<= 1;
  return p;
}

bool is_pow2(int n) { return n >= 1 && (n & (n - 1)) == 0; }

FftPlan::FftPlan(int size) : size_(size) {
  require(is_pow2(size), "FftPlan: size must be a power of two");
  log2_size_ = 0;
  while ((1 << log2_size_) < size_) ++log2_size_;

  bit_reverse_.resize(static_cast<std::size_t>(size_));
  for (int i = 0; i < size_; ++i) {
    int rev = 0;
    for (int b = 0; b < log2_size_; ++b)
      if (i & (1 << b)) rev |= 1 << (log2_size_ - 1 - b);
    bit_reverse_[static_cast<std::size_t>(i)] = rev;
  }

  // Classic half-size twiddle table, then regrouped stage-major: the stage
  // with span `len` reads entries k*stride (stride = size/len) — copying
  // them out contiguously keeps the butterfly values bit-identical while
  // letting each pass stream its table.
  std::vector<Complex> forward_tw(static_cast<std::size_t>(size_ / 2));
  std::vector<Complex> inverse_tw(static_cast<std::size_t>(size_ / 2));
  for (int k = 0; k < size_ / 2; ++k) {
    const double angle = -2.0 * M_PI * k / size_;
    forward_tw[static_cast<std::size_t>(k)] =
        Complex(std::cos(angle), std::sin(angle));
    inverse_tw[static_cast<std::size_t>(k)] =
        Complex(std::cos(angle), -std::sin(angle));
  }
  // Stage offsets: span len owns len/2 entries at offset len/2 - 1
  // (1 + 2 + ... + len/4 = len/2 - 1), size-1 entries total.
  stage_twiddle_forward_.resize(size_ > 1 ? static_cast<std::size_t>(size_ - 1)
                                          : 0);
  stage_twiddle_inverse_.resize(stage_twiddle_forward_.size());
  for (int len = 2; len <= size_; len <<= 1) {
    const int half = len >> 1;
    const int stride = size_ / len;
    for (int k = 0; k < half; ++k) {
      const std::size_t dst = static_cast<std::size_t>(half - 1 + k);
      const std::size_t src = static_cast<std::size_t>(k * stride);
      stage_twiddle_forward_[dst] = forward_tw[src];
      stage_twiddle_inverse_[dst] = inverse_tw[src];
    }
  }
}

void FftPlan::transform(Complex* data, bool inverse) const {
  // Bit-reversal permutation.
  for (int i = 0; i < size_; ++i) {
    const int j = bit_reverse_[static_cast<std::size_t>(i)];
    if (i < j) std::swap(data[i], data[j]);
  }
  const auto& twiddle =
      inverse ? stage_twiddle_inverse_ : stage_twiddle_forward_;
  // Iterative Cooley-Tukey: one dispatched butterfly pass per stage.
  const kernels::KernelTable& kt = kernels::table();
  for (int len = 2; len <= size_; len <<= 1) {
    const int half = len >> 1;
    kt.fft_pass_f64(data, twiddle.data() + (half - 1), size_, len);
  }
}

void FftPlan::forward(Complex* data) const { transform(data, false); }

void FftPlan::inverse(Complex* data) const {
  transform(data, true);
  kernels::table().scale_complex_f64(data, 1.0 / size_,
                                     static_cast<std::size_t>(size_));
}

Fft2DPlan::Fft2DPlan(int height, int width)
    : height_(height), width_(width), row_plan_(width), col_plan_(height) {}

void Fft2DPlan::transform_rows(Complex* data, bool inverse) const {
  for (int y = 0; y < height_; ++y) {
    Complex* row = data + static_cast<std::size_t>(y) * width_;
    if (inverse)
      row_plan_.inverse(row);
    else
      row_plan_.forward(row);
  }
}

void Fft2DPlan::transform_cols(Complex* data, bool inverse) const {
  transform_cols_range(data, 0, width_, inverse);
}

void Fft2DPlan::transform_cols_range(Complex* data, int x_begin, int x_end,
                                     bool inverse) const {
  // Blocked gather/scatter: kColBlock columns move through pooled scratch
  // together, so the row-major walk touches each grid cache line once per
  // block instead of once per column. The per-column butterflies are
  // unchanged, so results are bit-identical to the single-column walk.
  constexpr int kColBlock = 8;
  runtime::PooledVector<Complex> scratch =
      runtime::Workspace::this_thread().vec_c128_uninit(
          static_cast<std::size_t>(height_) * kColBlock);
  Complex* buf = scratch.data();
  for (int x0 = x_begin; x0 < x_end; x0 += kColBlock) {
    const int block = std::min(kColBlock, x_end - x0);
    for (int y = 0; y < height_; ++y) {
      const Complex* row = data + static_cast<std::size_t>(y) * width_;
      for (int b = 0; b < block; ++b)
        buf[static_cast<std::size_t>(b) * height_ + y] = row[x0 + b];
    }
    for (int b = 0; b < block; ++b) {
      Complex* column = buf + static_cast<std::size_t>(b) * height_;
      if (inverse)
        col_plan_.inverse(column);
      else
        col_plan_.forward(column);
    }
    for (int y = 0; y < height_; ++y) {
      Complex* row = data + static_cast<std::size_t>(y) * width_;
      for (int b = 0; b < block; ++b)
        row[x0 + b] = buf[static_cast<std::size_t>(b) * height_ + y];
    }
  }
}

void Fft2DPlan::forward(GridC& grid) const {
  require(grid.height() == height_ && grid.width() == width_,
          "Fft2DPlan::forward: shape mismatch");
  forward(grid.data());
}

void Fft2DPlan::inverse(GridC& grid) const {
  require(grid.height() == height_ && grid.width() == width_,
          "Fft2DPlan::inverse: shape mismatch");
  inverse(grid.data());
}

void Fft2DPlan::forward(Complex* data) const {
  transform_rows(data, false);
  transform_cols(data, false);
}

void Fft2DPlan::inverse(Complex* data) const {
  transform_rows(data, true);
  transform_cols(data, true);
}

void Fft2DPlan::forward_real(const GridF& src, GridC& out) const {
  require(src.height() == height_ && src.width() == width_,
          "Fft2DPlan::forward_real: shape mismatch");
  out.resize(height_, width_);
  forward_real(src.data(), out.data());
}

void Fft2DPlan::forward_real(const double* src, Complex* out) const {
  const std::size_t cells =
      static_cast<std::size_t>(height_) * static_cast<std::size_t>(width_);
  if (height_ < 2) {
    // Degenerate single-row grid: no pairing possible.
    for (std::size_t i = 0; i < cells; ++i) out[i] = Complex(src[i], 0.0);
    forward(out);
    return;
  }
  // Row stage: pack rows (y, y+1) as re + i*im, one FFT per pair, then
  // split with A(u) = (Z(u) + conj(Z(W-u)))/2, B(u) = (Z(u) - conj(Z(W-u)))/2i.
  const int w = width_;
  const int half_w = w / 2;
  for (int y = 0; y < height_; y += 2) {
    const double* r0 = src + static_cast<std::size_t>(y) * w;
    const double* r1 = r0 + w;
    Complex* a = out + static_cast<std::size_t>(y) * w;
    Complex* b = a + w;
    for (int x = 0; x < w; ++x) a[x] = Complex(r0[x], r1[x]);
    row_plan_.forward(a);
    // Self-conjugate bins (u = 0 and u = W/2) split without a partner.
    const Complex z0 = a[0];
    a[0] = Complex(z0.real(), 0.0);
    b[0] = Complex(z0.imag(), 0.0);
    if (w >= 2) {
      const Complex zh = a[half_w];
      a[half_w] = Complex(zh.real(), 0.0);
      b[half_w] = Complex(zh.imag(), 0.0);
    }
    for (int u = 1; u < half_w; ++u) {
      const int v = w - u;
      const Complex zu = a[u];
      const Complex zv = a[v];
      a[u] = Complex(0.5 * (zu.real() + zv.real()),
                     0.5 * (zu.imag() - zv.imag()));
      b[u] = Complex(0.5 * (zu.imag() + zv.imag()),
                     0.5 * (zv.real() - zu.real()));
      a[v] = Complex(0.5 * (zv.real() + zu.real()),
                     0.5 * (zv.imag() - zu.imag()));
      b[v] = Complex(0.5 * (zv.imag() + zu.imag()),
                     0.5 * (zu.real() - zv.real()));
    }
  }
  // Column stage: every row above is the spectrum of a real row, so
  // column W-u is the conjugate mirror of column u. Transform only
  // [0, W/2] and reconstruct the rest via
  // F(v, W-u) = conj(F((H-v) mod H, u)).
  transform_cols_range(out, 0, half_w + 1, false);
  for (int u = 1; u < half_w; ++u) {
    const int uc = w - u;
    out[uc] = std::conj(out[u]);
    for (int v = 1; v < height_; ++v)
      out[static_cast<std::size_t>(v) * w + uc] = std::conj(
          out[static_cast<std::size_t>(height_ - v) * w + u]);
  }
}

void Fft2DPlan::convolve_spectrum(const GridC& spectrum,
                                  const GridC& kernel_freq,
                                  GridC& out) const {
  require(spectrum.height() == height_ && spectrum.width() == width_ &&
              spectrum.same_shape(kernel_freq),
          "convolve_spectrum: shape mismatch");
  out.resize(height_, width_);  // reuses out's storage when it fits
  kernels::table().cmul_to_f64(spectrum.data(), kernel_freq.data(),
                               out.data(), spectrum.size());
  inverse(out);
}

const Fft2DPlan& plan_for(int height, int width) {
  static std::mutex mu;
  static std::map<std::pair<int, int>, std::unique_ptr<Fft2DPlan>>* cache =
      new std::map<std::pair<int, int>, std::unique_ptr<Fft2DPlan>>();
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<Fft2DPlan>& slot = (*cache)[{height, width}];
  if (!slot) slot = std::make_unique<Fft2DPlan>(height, width);
  return *slot;
}

GridC to_complex(const GridF& real) {
  GridC out;
  to_complex(real, out);
  return out;
}

void to_complex(const GridF& real, GridC& out) {
  out.resize(real.height(), real.width());
  for (std::size_t i = 0; i < real.size(); ++i) out[i] = Complex(real[i], 0.0);
}

GridF real_part(const GridC& grid) {
  GridF out;
  real_part(grid, out);
  return out;
}

void real_part(const GridC& grid, GridF& out) {
  out.resize(grid.height(), grid.width());
  for (std::size_t i = 0; i < grid.size(); ++i) out[i] = grid[i].real();
}

void multiply_inplace(GridC& a, const GridC& b) {
  require(a.same_shape(b), "multiply_inplace: shape mismatch");
  kernels::table().cmul_f64(a.data(), b.data(), a.size());
}

void multiply_conj_inplace(GridC& a, const GridC& b) {
  require(a.same_shape(b), "multiply_conj_inplace: shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= std::conj(b[i]);
}

}  // namespace ldmo::fft
