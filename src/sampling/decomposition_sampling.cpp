#include "sampling/decomposition_sampling.h"

#include <set>

#include "common/error.h"
#include "common/rng.h"
#include "coverage/covering_array.h"
#include "graph/mst.h"
#include "mpl/classify.h"

namespace ldmo::sampling {

std::vector<layout::Assignment> sample_decompositions(
    const layout::Layout& layout,
    const DecompositionSamplingConfig& config) {
  require(layout.pattern_count() > 0, "sample_decompositions: empty layout");
  require(config.max_samples >= 1, "sample_decompositions: bad max_samples");

  // Single-threshold split: SP = patterns with a neighbor closer than nmin.
  std::vector<int> sp;
  std::vector<int> np;
  for (const layout::Pattern& p : layout.patterns) {
    if (layout.nearest_distance(p.id) <= config.nmin_nm)
      sp.push_back(p.id);
    else
      np.push_back(p.id);
  }

  const graph::Graph sp_graph =
      mpl::build_conflict_graph(layout, sp, config.nmin_nm);
  const graph::MstResult mst = graph::minimum_spanning_forest(sp_graph);
  const std::vector<int> sp_color =
      graph::two_color_forest(static_cast<int>(sp.size()), mst.edges);

  // One 3-wise array over component orientations + NP patterns.
  const int factors = mst.component_count + static_cast<int>(np.size());
  coverage::GeneratorOptions options;
  options.seed = config.seed;
  const coverage::CoveringArray array =
      coverage::generate_covering_array(factors, config.strength, options);

  std::set<layout::Assignment> seen;
  std::vector<layout::Assignment> samples;
  for (const auto& row : array.rows) {
    layout::Assignment assignment(
        static_cast<std::size_t>(layout.pattern_count()), 0);
    for (std::size_t i = 0; i < sp.size(); ++i)
      assignment[static_cast<std::size_t>(sp[i])] =
          sp_color[i] ^
          row[static_cast<std::size_t>(mst.component[i])];
    for (std::size_t i = 0; i < np.size(); ++i)
      assignment[static_cast<std::size_t>(np[i])] =
          row[static_cast<std::size_t>(mst.component_count) + i];
    assignment = layout::canonicalize(std::move(assignment));
    if (seen.insert(assignment).second) {
      samples.push_back(std::move(assignment));
      if (static_cast<int>(samples.size()) >= config.max_samples) break;
    }
  }
  LDMO_ASSERT(!samples.empty());
  return samples;
}

std::vector<layout::Assignment> random_decompositions(
    const layout::Layout& layout, int count, std::uint64_t seed) {
  require(layout.pattern_count() > 0 && count >= 1,
          "random_decompositions: bad arguments");
  Rng rng(seed);
  std::set<layout::Assignment> seen;
  std::vector<layout::Assignment> samples;
  // Bounded retries: tiny layouts can exhaust their assignment space.
  for (int attempt = 0; attempt < count * 20 &&
                        static_cast<int>(samples.size()) < count;
       ++attempt) {
    layout::Assignment assignment(
        static_cast<std::size_t>(layout.pattern_count()), 0);
    for (int& v : assignment) v = rng.bernoulli(0.5) ? 1 : 0;
    assignment = layout::canonicalize(std::move(assignment));
    if (seen.insert(assignment).second)
      samples.push_back(std::move(assignment));
  }
  return samples;
}

}  // namespace ldmo::sampling
