#include "sampling/training_set.h"

#include <atomic>
#include <mutex>

#include "common/error.h"
#include "layout/raster.h"
#include "runtime/parallel_for.h"

namespace ldmo::sampling {

nn::Tensor decomposition_tensor(const layout::Layout& layout,
                                const layout::Assignment& assignment,
                                int image_size) {
  const GridF image =
      layout::decomposition_image(layout, assignment, image_size);
  nn::Tensor tensor({1, image_size, image_size});
  for (std::size_t i = 0; i < image.size(); ++i)
    tensor[i] = static_cast<float>(image[i]);
  return tensor;
}

TrainingSet build_training_set(
    const std::vector<layout::Layout>& layouts,
    const std::vector<std::vector<layout::Assignment>>& decompositions,
    const opc::IltEngine& engine, const TrainingSetConfig& config,
    const std::function<void(int, int)>& progress) {
  require(layouts.size() == decompositions.size(),
          "build_training_set: layouts / decompositions size mismatch");
  require(config.image_size >= 16, "build_training_set: image too small");

  int total = 0;
  for (const auto& list : decompositions)
    total += static_cast<int>(list.size());
  require(total > 0, "build_training_set: nothing to label");

  // Flatten the (layout, candidate) pairs so the expensive, independent
  // ILT labelings can run as parallel tasks into pre-sized slots — the
  // labeled order stays the serial loop's. Progress calls are serialized
  // (counts arrive monotonically, completion order may interleave).
  struct Pair {
    std::size_t layout_index;
    const layout::Assignment* assignment;
  };
  std::vector<Pair> pairs;
  pairs.reserve(static_cast<std::size_t>(total));
  for (std::size_t li = 0; li < layouts.size(); ++li)
    for (const layout::Assignment& assignment : decompositions[li])
      pairs.push_back({li, &assignment});

  TrainingSet set;
  set.labeled.resize(pairs.size());
  std::atomic<int> done{0};
  std::mutex progress_mu;
  runtime::parallel_for(pairs.size(), [&](std::size_t i) {
    const Pair& pair = pairs[i];
    const opc::IltResult result =
        engine.optimize(layouts[pair.layout_index], *pair.assignment);
    LabeledDecomposition& labeled = set.labeled[i];
    labeled.layout_index = static_cast<int>(pair.layout_index);
    labeled.assignment = *pair.assignment;
    labeled.report = result.report;
    labeled.raw_score = result.report.score(config.score_weights);
    const int count = done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (progress) {
      std::lock_guard<std::mutex> lock(progress_mu);
      progress(count, total);
    }
  });

  std::vector<double> raw;
  raw.reserve(set.labeled.size());
  for (const auto& l : set.labeled) raw.push_back(l.raw_score);
  set.normalizer.fit(raw);

  // Per-layout normalizers (used only when configured).
  std::vector<ZScoreNormalizer> per_layout(layouts.size());
  if (config.per_layout_zscore) {
    for (std::size_t li = 0; li < layouts.size(); ++li) {
      std::vector<double> scores;
      for (const auto& l : set.labeled)
        if (l.layout_index == static_cast<int>(li))
          scores.push_back(l.raw_score);
      if (!scores.empty()) per_layout[li].fit(scores);
    }
  }

  set.examples.reserve(set.labeled.size());
  for (const auto& l : set.labeled) {
    nn::Example example;
    example.image = decomposition_tensor(
        layouts[static_cast<std::size_t>(l.layout_index)], l.assignment,
        config.image_size);
    const ZScoreNormalizer& norm =
        config.per_layout_zscore
            ? per_layout[static_cast<std::size_t>(l.layout_index)]
            : set.normalizer;
    example.label = static_cast<float>(norm.transform(l.raw_score));
    set.examples.push_back(std::move(example));
  }
  return set;
}

namespace {

// Transforms a [1, S, S] image by one of the 8 dihedral symmetries.
nn::Tensor transform_image(const nn::Tensor& image, int symmetry) {
  const int s = image.dim(1);
  nn::Tensor out({1, s, s});
  for (int y = 0; y < s; ++y) {
    for (int x = 0; x < s; ++x) {
      int sy = y, sx = x;
      if (symmetry & 4) sx = s - 1 - sx;       // mirror
      switch (symmetry & 3) {                  // rotation
        case 0: break;
        case 1: { const int t = sy; sy = sx; sx = s - 1 - t; break; }
        case 2: sy = s - 1 - sy; sx = s - 1 - sx; break;
        case 3: { const int t = sy; sy = s - 1 - sx; sx = t; break; }
      }
      out[static_cast<std::size_t>(y) * s + x] =
          image[static_cast<std::size_t>(sy) * s + sx];
    }
  }
  return out;
}

}  // namespace

std::vector<nn::Example> augment_with_symmetries(
    const std::vector<nn::Example>& examples) {
  std::vector<nn::Example> augmented;
  augmented.reserve(examples.size() * 8);
  for (const nn::Example& example : examples) {
    require(example.image.rank() == 3 &&
                example.image.dim(1) == example.image.dim(2),
            "augment_with_symmetries: need square [1, S, S] images");
    for (int symmetry = 0; symmetry < 8; ++symmetry)
      augmented.push_back(
          {transform_image(example.image, symmetry), example.label});
  }
  return augmented;
}

}  // namespace ldmo::sampling
