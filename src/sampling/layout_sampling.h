// Layout sampling (paper Section IV-A).
//
// The layout corpus is effectively unbounded, so the training set should
// cover its *shape*, not its volume: rasterize each layout, extract SIFT
// features, compute pairwise layout distances (Alg. 2), cluster with
// k-medoids (robust medoid centers, SLD objective), and randomly draw a few
// layouts per cluster. The paper uses m = 50 clusters, c = 60 distance
// terms and 5 layouts per cluster at its 8000-layout scale; defaults here
// scale those down proportionally for CI-sized corpora.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/layout.h"
#include "vision/kmedoids.h"
#include "vision/sift.h"
#include "vision/similarity.h"

namespace ldmo::sampling {

struct LayoutSamplingConfig {
  int raster_size = 128;  ///< raster resolution for SIFT
  vision::SiftConfig sift;
  vision::SimilarityConfig similarity;
  int clusters = 8;        ///< m (50 in the paper at full corpus scale)
  int per_cluster = 2;     ///< layouts drawn per cluster (5 in the paper)
  std::uint64_t seed = 11;
};

struct LayoutSamplingResult {
  /// Indices into the input corpus, selected for training.
  std::vector<int> selected;
  /// Clustering diagnostics.
  vision::KMedoidsResult clustering;
};

/// Our sampling strategy: SIFT + k-medoids + per-cluster draws.
LayoutSamplingResult sample_layouts(const std::vector<layout::Layout>& corpus,
                                    const LayoutSamplingConfig& config = {});

/// The Fig. 8 baseline: uniform random draw of the same count.
std::vector<int> random_layout_indices(int corpus_size, int count,
                                       std::uint64_t seed);

}  // namespace ldmo::sampling
