#include "sampling/layout_sampling.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "layout/raster.h"
#include "runtime/parallel_for.h"

namespace ldmo::sampling {

LayoutSamplingResult sample_layouts(const std::vector<layout::Layout>& corpus,
                                    const LayoutSamplingConfig& config) {
  require(!corpus.empty(), "sample_layouts: empty corpus");
  require(config.clusters >= 1 && config.per_cluster >= 1,
          "sample_layouts: bad sampling configuration");
  const int n = static_cast<int>(corpus.size());
  const int clusters = std::min(config.clusters, n);

  // SIFT features of each layout's raster — per-layout independent, filled
  // into indexed slots so the feature order matches the serial loop.
  std::vector<std::vector<vision::SiftFeature>> features(corpus.size());
  runtime::parallel_for(corpus.size(), [&](std::size_t i) {
    features[i] = vision::detect_sift(
        layout::rasterize_target(corpus[i], config.raster_size), config.sift);
  });

  // Pairwise layout distances (Alg. 2) and k-medoids clustering.
  const std::vector<double> distances =
      vision::distance_matrix(features, config.similarity);
  vision::KMedoidsConfig kconfig;
  kconfig.clusters = clusters;
  kconfig.seed = config.seed;
  LayoutSamplingResult result;
  result.clustering = vision::kmedoids(distances, n, kconfig);

  // Random draw per cluster (each cluster contributes up to per_cluster).
  Rng rng(config.seed ^ 0xA5A5A5A5ULL);
  for (int cluster = 0; cluster < clusters; ++cluster) {
    std::vector<int> members;
    for (int i = 0; i < n; ++i)
      if (result.clustering.assignment[static_cast<std::size_t>(i)] ==
          cluster)
        members.push_back(i);
    rng.shuffle(members);
    const int take =
        std::min<int>(config.per_cluster, static_cast<int>(members.size()));
    for (int t = 0; t < take; ++t) result.selected.push_back(members[t]);
  }
  std::sort(result.selected.begin(), result.selected.end());
  return result;
}

std::vector<int> random_layout_indices(int corpus_size, int count,
                                       std::uint64_t seed) {
  require(corpus_size >= 1 && count >= 1,
          "random_layout_indices: bad arguments");
  std::vector<int> all(static_cast<std::size_t>(corpus_size));
  for (int i = 0; i < corpus_size; ++i) all[static_cast<std::size_t>(i)] = i;
  Rng rng(seed);
  rng.shuffle(all);
  all.resize(static_cast<std::size_t>(std::min(count, corpus_size)));
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace ldmo::sampling
