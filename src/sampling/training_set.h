// Training-set construction: label decompositions with full ILT runs and
// package them as normalized CNN examples (Fig. 5 pipeline, right half).
//
// Each (layout, decomposition) pair is optimized with the ILT engine and
// scored with Eq. 9 (alpha L2 + beta #EPE + gamma #violations); the raw
// scores are z-score normalized across the whole set (the paper's "z-score
// regularization ... to make the score comparable") and the decomposition
// image becomes the CNN input.
#pragma once

#include <functional>
#include <vector>

#include "common/stats.h"
#include "layout/layout.h"
#include "litho/simulator.h"
#include "nn/trainer.h"
#include "opc/ilt.h"

namespace ldmo::sampling {

struct TrainingSetConfig {
  int image_size = 64;  ///< CNN input side (224 in the paper)
  litho::ScoreWeights score_weights;  ///< Eq. 9 coefficients
  /// false: one global z-score over all labels (the paper's Eq. 9 text).
  /// true: z-score per source layout. Candidate selection only ever
  /// compares decompositions of the SAME layout, and per-layout
  /// normalization stops the network from spending capacity on predicting
  /// between-layout score offsets that never matter at inference time.
  bool per_layout_zscore = false;
};

/// One labeled decomposition before normalization.
struct LabeledDecomposition {
  int layout_index = 0;
  layout::Assignment assignment;
  double raw_score = 0.0;
  litho::PrintabilityReport report;
};

/// The packaged result.
struct TrainingSet {
  std::vector<LabeledDecomposition> labeled;
  ZScoreNormalizer normalizer;  ///< fitted on the raw scores
  std::vector<nn::Example> examples;  ///< normalized labels, CNN images
};

/// Converts a decomposition to the CNN input tensor ([1, S, S], gray levels
/// 1.0 / 0.5 per mask as in the paper's grayscale encoding).
nn::Tensor decomposition_tensor(const layout::Layout& layout,
                                const layout::Assignment& assignment,
                                int image_size);

/// Labels every (layout, candidate) pair by running full ILT, fits the
/// z-score normalizer and builds the example list. `progress` (optional) is
/// called after each labeled pair with (done, total).
TrainingSet build_training_set(
    const std::vector<layout::Layout>& layouts,
    const std::vector<std::vector<layout::Assignment>>& decompositions,
    const opc::IltEngine& engine, const TrainingSetConfig& config = {},
    const std::function<void(int, int)>& progress = nullptr);

/// Expands a training set with the dihedral symmetries of the optical
/// model (8x: rotations by 90 degrees and mirror images). The annular
/// source and circular pupil are rotation- and reflection-invariant, so a
/// transformed decomposition image has exactly the same printability —
/// free, physically exact data augmentation.
std::vector<nn::Example> augment_with_symmetries(
    const std::vector<nn::Example>& examples);

}  // namespace ldmo::sampling
