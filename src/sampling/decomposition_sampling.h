// Decomposition sampling for training-set construction (Section IV-B).
//
// A layout with n patterns has 2^(n-1) decompositions — far too many to
// label with full ILT runs. The paper's strategy: classify with a single
// threshold (patterns with a neighbor closer than nmin form SP, everything
// else NP — labeling is so expensive that the finer VP split is skipped),
// solve the SP MST, and build ONE three-wise array over the component
// orientations plus the NP patterns. Any sub-region of three interacting
// patterns then has all its combinations represented in the training set,
// which is what a translation-invariant CNN needs.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/layout.h"

namespace ldmo::sampling {

struct DecompositionSamplingConfig {
  double nmin_nm = 80.0;
  int strength = 3;  ///< "setting n to 3 is a trade-off" (Section IV-B)
  std::uint64_t seed = 13;
  int max_samples = 512;
};

/// Our sampling strategy: MST + 3-wise, canonicalized and deduplicated.
std::vector<layout::Assignment> sample_decompositions(
    const layout::Layout& layout,
    const DecompositionSamplingConfig& config = {});

/// The Fig. 8 baseline: `count` uniform random canonical assignments
/// (deduplicated, so fewer may come back for tiny layouts).
std::vector<layout::Assignment> random_decompositions(
    const layout::Layout& layout, int count, std::uint64_t seed);

}  // namespace ldmo::sampling
