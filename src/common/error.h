// Error handling primitives shared across all ldmo libraries.
//
// The library reports contract violations (bad arguments, broken invariants)
// via ldmo::Error exceptions so callers can recover or surface a clean
// message; internal "this cannot happen" conditions use LDMO_ASSERT which
// aborts in all build types (cheap checks only on hot paths).
#pragma once

#include <stdexcept>
#include <string>

namespace ldmo {

/// Exception type thrown for all recoverable errors in the ldmo libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws ldmo::Error with the given message.
[[noreturn]] void raise(const std::string& message);

/// Throws ldmo::Error if `condition` is false. The const char* overload is
/// what string literals bind to; it defers all string construction to the
/// throw, so a passing check on a hot path performs no allocation.
void require(bool condition, const char* message);
void require(bool condition, const std::string& message);

namespace detail {
[[noreturn]] void assert_fail(const char* expr, const char* file, int line);
}  // namespace detail

}  // namespace ldmo

/// Hard internal invariant; active in all build types.
#define LDMO_ASSERT(expr)                                         \
  do {                                                            \
    if (!(expr)) ::ldmo::detail::assert_fail(#expr, __FILE__, __LINE__); \
  } while (false)
