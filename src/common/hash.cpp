#include "common/hash.h"

#include <bit>

namespace ldmo::common {

Fnv1a& Fnv1a::bytes(const void* data, std::size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = state_;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= kFnv1aPrime;
  }
  state_ = h;
  return *this;
}

Fnv1a& Fnv1a::u64(std::uint64_t v) {
  unsigned char le[8];
  for (int i = 0; i < 8; ++i)
    le[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffu);
  return bytes(le, sizeof(le));
}

Fnv1a& Fnv1a::f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

Fnv1a& Fnv1a::str(std::string_view s) {
  u64(s.size());
  return bytes(s.data(), s.size());
}

std::uint64_t fnv1a(const void* data, std::size_t len) {
  return Fnv1a().bytes(data, len).digest();
}

std::uint64_t fnv1a(std::string_view s) { return fnv1a(s.data(), s.size()); }

}  // namespace ldmo::common
