// Deterministic pseudo-random number generation.
//
// All stochastic components of the framework (layout generation, sampling,
// network initialization, data shuffling) draw from ldmo::Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256** (Blackman & Vigna), which is fast, has a 256-bit state and
// passes BigCrush; we deliberately avoid std::mt19937 so results are stable
// across standard-library implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace ldmo {

/// Deterministic xoshiro256** generator with convenience distributions.
class Rng {
 public:
  /// Seeds the full 256-bit state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability `p` of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(next_u64() % static_cast<std::uint64_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Derives an independent child stream for parallel work. Deterministic
  /// in (current state, stream id) and const — splitting does not advance
  /// this generator — so `master.split(0..k)` yields the same k streams on
  /// every run and on every thread count. Concurrent work units must each
  /// own their split; sharing one Rng across tasks is a data race AND
  /// nondeterministic under scheduling.
  ///
  /// Streams are decorrelated by remixing the full 256-bit state with the
  /// golden-ratio-weighted stream id through splitmix64 (the same
  /// construction used for seeding); distinct ids give overlapping
  /// sequences only with ~2^-256 probability.
  Rng split(std::uint64_t stream) const;

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ldmo
