#include "common/timer.h"

namespace ldmo {

void PhaseTimer::add(const std::string& phase, double seconds) {
  buckets_[phase] += seconds;
}

double PhaseTimer::get(const std::string& phase) const {
  const auto it = buckets_.find(phase);
  return it == buckets_.end() ? 0.0 : it->second;
}

double PhaseTimer::total() const {
  double sum = 0.0;
  for (const auto& [name, value] : buckets_) sum += value;
  return sum;
}

double PhaseTimer::fraction(const std::string& phase) const {
  const double t = total();
  return t > 0.0 ? get(phase) / t : 0.0;
}

}  // namespace ldmo
