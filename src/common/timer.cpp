#include "common/timer.h"

#include <ctime>

namespace ldmo {

double Timer::process_cpu_seconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
#endif
  // Fallback: std::clock is process CPU time on POSIX.
  return static_cast<double>(std::clock()) / CLOCKS_PER_SEC;
}

void PhaseTimer::add(const std::string& phase, double seconds,
                     double cpu_seconds) {
  Bucket& bucket = buckets_[phase];
  bucket.wall += seconds;
  bucket.cpu += cpu_seconds;
}

double PhaseTimer::get(const std::string& phase) const {
  const auto it = buckets_.find(phase);
  return it == buckets_.end() ? 0.0 : it->second.wall;
}

double PhaseTimer::get_cpu(const std::string& phase) const {
  const auto it = buckets_.find(phase);
  return it == buckets_.end() ? 0.0 : it->second.cpu;
}

double PhaseTimer::total() const {
  double sum = 0.0;
  for (const auto& [name, bucket] : buckets_) sum += bucket.wall;
  return sum;
}

double PhaseTimer::fraction(const std::string& phase) const {
  const double t = total();
  return t > 0.0 ? get(phase) / t : 0.0;
}

std::vector<std::string> PhaseTimer::phases() const {
  std::vector<std::string> names;
  names.reserve(buckets_.size());
  for (const auto& [name, bucket] : buckets_) names.push_back(name);
  return names;
}

}  // namespace ldmo
