// Small statistics helpers: mean / stddev / z-score normalization.
//
// The paper (Eq. 9) z-score-regularizes the printability score labels before
// CNN regression; ZScoreNormalizer implements exactly that transform and its
// inverse so predicted scores can be compared in raw units.
#pragma once

#include <cstddef>
#include <vector>

namespace ldmo {

/// Arithmetic mean; 0 for an empty vector.
double mean(const std::vector<double>& values);

/// Population standard deviation; 0 for fewer than 2 values.
double stddev(const std::vector<double>& values);

/// Median (average of middle two for even sizes); 0 for empty input.
double median(std::vector<double> values);

/// Spearman rank correlation between two equal-length samples, with
/// average ranks for ties (the textbook definition: Pearson correlation of
/// the rank vectors). Returns a value in [-1, 1]; 0 when either sample has
/// fewer than 2 values or zero rank variance (all tied). This is the
/// promotion gate's "does the predictor still order candidates correctly"
/// signal — rank-based because the flow only consumes the ordering, and
/// a model can drift in scale while ranking perfectly.
double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// Fit-once, apply-many z-score transform: z = (x - mean) / stddev.
/// A degenerate fit (stddev == 0) maps every value to 0.
class ZScoreNormalizer {
 public:
  /// Fits mean and stddev on `values`. Throws on empty input.
  void fit(const std::vector<double>& values);

  /// Normalizes one value. Requires fit() first.
  double transform(double value) const;

  /// Inverse transform back to raw units. Requires fit() first.
  double inverse(double z) const;

  /// Normalizes a whole vector.
  std::vector<double> transform(const std::vector<double>& values) const;

  bool fitted() const { return fitted_; }
  double fitted_mean() const { return mean_; }
  double fitted_stddev() const { return stddev_; }

 private:
  bool fitted_ = false;
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

}  // namespace ldmo
