// Fault injection: named failpoints compiled into error-prone sites.
//
// A failpoint is a named site (e.g. "litho.expose") that tests, the CLI
// fault drill (`ldmo_cli serve-bench --inject`) and the LDMO_FAILPOINTS
// environment variable can arm with a firing mode:
//
//   off          never fires (the default for every site)
//   once         fires on the first evaluation after arming, then disarms
//   every:N      fires on every Nth evaluation (N >= 1)
//   prob:P[:S]   fires with probability P per evaluation, seeded Rng S
//
// A fired failpoint throws FlowException with the stage declared at the
// site, exactly like a real failure of that component — so the whole
// fault-tolerance ladder (stage catches in run_ldmo_flow, degradation,
// server retry, kFailed responses) is exercised by the same code paths a
// production fault would take.
//
// Cost when disarmed: one relaxed atomic load per evaluation (the armed
// count), nothing else — no lock, no map lookup, no string work. Sites are
// therefore safe on hot paths. All mutable state is mutex-guarded or
// atomic; concurrent evaluation is TSan-clean, and `once` fires exactly
// once across threads.
//
// Environment activation: LDMO_FAILPOINTS="site=mode[,site=mode...]" is
// parsed on the first evaluation of any failpoint, e.g.
//   LDMO_FAILPOINTS="nn.load=once,litho.expose=prob:0.01:42"
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/flow_error.h"

namespace ldmo::fail {

enum class Mode { kOff, kOnce, kEveryNth, kProbability };

/// One site's firing rule.
struct Spec {
  Mode mode = Mode::kOff;
  int every_nth = 1;          ///< kEveryNth period
  double probability = 0.0;   ///< kProbability chance per evaluation
  std::uint64_t seed = 0;     ///< kProbability Rng seed
};

/// Arms `site` with the given rule (replacing any previous rule). Arming
/// with Mode::kOff is equivalent to disarm().
void arm(const std::string& site, Spec spec);

/// Convenience constructors for the three firing modes.
Spec once();
Spec every_nth(int n);
Spec probability(double p, std::uint64_t seed = 0);

void disarm(const std::string& site);
void disarm_all();

/// Number of currently armed sites.
int armed_count();

/// Names of currently armed sites (sorted).
std::vector<std::string> armed_sites();

/// Times `site` has fired since process start (survives disarm).
long long fire_count(const std::string& site);

/// Parses an LDMO_FAILPOINTS-style spec string ("a=once,b=every:3,
/// c=prob:0.5:42") and arms each site. Throws ldmo::Error on syntax errors.
void arm_from_spec(const std::string& spec);

namespace detail {
extern std::atomic<int> armed_state;  ///< -1 env-unchecked, else armed count
bool should_fail_slow(const char* site);
}  // namespace detail

/// Evaluates `site`: true when the site is armed and its rule fires now.
/// The disarmed fast path is a single relaxed atomic load.
inline bool should_fail(const char* site) {
  const int state = detail::armed_state.load(std::memory_order_relaxed);
  if (state == 0) return false;  // env parsed, nothing armed
  return detail::should_fail_slow(site);
}

/// Evaluates `site` and, when it fires, throws FlowException carrying
/// `stage` — the standard way a failpoint site simulates a component fault.
inline void maybe_fail(const char* site, FlowStage stage) {
  if (should_fail(site))
    throw FlowException(stage,
                        std::string("failpoint fired: ") + site);
}

}  // namespace ldmo::fail
