#include "common/failpoint.h"

#include <cstdlib>
#include <map>
#include <mutex>

#include "common/error.h"
#include "common/rng.h"
#include "obs/metrics.h"

namespace ldmo::fail {

namespace {

/// Per-site state. Everything is guarded by the registry mutex: the slow
/// path only runs while at least one site is armed (drills and failure
/// tests), so a single lock keeps `once` exactly-once across threads and
/// the probability Rng race-free without per-site machinery.
struct SiteState {
  Spec spec;
  long long calls = 0;  ///< evaluations since arming (kEveryNth phase)
  long long fired = 0;  ///< lifetime fires (survives disarm)
  Rng rng{0};
};

struct Registry {
  std::mutex mu;
  std::map<std::string, SiteState> sites;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: alive for process exit
  return *r;
}

void refresh_armed_locked(Registry& r) {
  int armed = 0;
  for (const auto& [name, state] : r.sites)
    if (state.spec.mode != Mode::kOff) ++armed;
  detail::armed_state.store(armed, std::memory_order_relaxed);
}

void arm_locked(Registry& r, const std::string& site, Spec spec) {
  require(spec.mode != Mode::kEveryNth || spec.every_nth >= 1,
          "failpoint: every-Nth period must be >= 1");
  require(spec.mode != Mode::kProbability ||
              (spec.probability >= 0.0 && spec.probability <= 1.0),
          "failpoint: probability must be in [0, 1]");
  SiteState& state = r.sites[site];
  state.spec = spec;
  state.calls = 0;
  if (spec.mode == Mode::kProbability) state.rng = Rng(spec.seed);
}

void arm_from_spec_locked(Registry& r, const std::string& spec_string) {
  // Grammar: site=mode[,site=mode...] with mode one of
  // once | every:N | prob:P[:SEED]. Whitespace is not tolerated: specs
  // come from tests and env vars, not humans typing free-form.
  std::size_t pos = 0;
  while (pos < spec_string.size()) {
    std::size_t end = spec_string.find(',', pos);
    if (end == std::string::npos) end = spec_string.size();
    const std::string entry = spec_string.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    require(eq != std::string::npos && eq > 0,
            "failpoint spec entry is not site=mode: " + entry);
    const std::string site = entry.substr(0, eq);
    const std::string mode = entry.substr(eq + 1);
    Spec spec;
    if (mode == "once") {
      spec = once();
    } else if (mode.rfind("every:", 0) == 0) {
      spec = every_nth(std::atoi(mode.c_str() + 6));
    } else if (mode.rfind("prob:", 0) == 0) {
      const std::string args = mode.substr(5);
      const std::size_t colon = args.find(':');
      const double p = std::atof(args.substr(0, colon).c_str());
      const std::uint64_t seed =
          colon == std::string::npos
              ? 0
              : static_cast<std::uint64_t>(
                    std::atoll(args.c_str() + colon + 1));
      spec = probability(p, seed);
    } else if (mode == "off") {
      spec = Spec{};
    } else {
      raise("failpoint spec has unknown mode: " + entry);
    }
    arm_locked(r, site, spec);
  }
}

/// Parses LDMO_FAILPOINTS exactly once, before the first arm/evaluate.
void ensure_env_parsed_locked(Registry& r) {
  static bool parsed = false;  // guarded by r.mu
  if (parsed) return;
  parsed = true;
  if (const char* env = std::getenv("LDMO_FAILPOINTS"))
    arm_from_spec_locked(r, env);
  refresh_armed_locked(r);
}

}  // namespace

namespace detail {

std::atomic<int> armed_state{-1};  // -1: LDMO_FAILPOINTS not yet parsed

bool should_fail_slow(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return false;
  SiteState& state = it->second;
  bool fires = false;
  switch (state.spec.mode) {
    case Mode::kOff:
      break;
    case Mode::kOnce:
      fires = true;
      state.spec.mode = Mode::kOff;  // exactly once, across threads
      refresh_armed_locked(r);
      break;
    case Mode::kEveryNth:
      state.calls += 1;
      fires = state.calls % state.spec.every_nth == 0;
      break;
    case Mode::kProbability:
      fires = state.rng.bernoulli(state.spec.probability);
      break;
  }
  if (fires) {
    state.fired += 1;
    obs::counter(std::string("failpoint.fired.") + site).inc();
  }
  return fires;
}

}  // namespace detail

Spec once() {
  Spec spec;
  spec.mode = Mode::kOnce;
  return spec;
}

Spec every_nth(int n) {
  Spec spec;
  spec.mode = Mode::kEveryNth;
  spec.every_nth = n;
  return spec;
}

Spec probability(double p, std::uint64_t seed) {
  Spec spec;
  spec.mode = Mode::kProbability;
  spec.probability = p;
  spec.seed = seed;
  return spec;
}

void arm(const std::string& site, Spec spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  arm_locked(r, site, spec);
  refresh_armed_locked(r);
}

void disarm(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  auto it = r.sites.find(site);
  if (it != r.sites.end()) it->second.spec = Spec{};
  refresh_armed_locked(r);
}

void disarm_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  for (auto& [name, state] : r.sites) state.spec = Spec{};
  refresh_armed_locked(r);
}

int armed_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  const int state = detail::armed_state.load(std::memory_order_relaxed);
  return state < 0 ? 0 : state;
}

std::vector<std::string> armed_sites() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  std::vector<std::string> names;
  for (const auto& [name, state] : r.sites)
    if (state.spec.mode != Mode::kOff) names.push_back(name);
  return names;  // map iteration is already sorted
}

long long fire_count(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fired;
}

void arm_from_spec(const std::string& spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  ensure_env_parsed_locked(r);
  arm_from_spec_locked(r, spec);
  refresh_armed_locked(r);
}

}  // namespace ldmo::fail
