// Minimal leveled logging to stderr. Default level is Info; benches raise it
// to Warn to keep their stdout tables clean.
//
// Output format is selectable: the default text format, or one JSON object
// per line ({"ts":...,"level":...,"msg":...}) for machine-parseable serve
// logs — set LDMO_LOG_FORMAT=json or call set_log_format.
#pragma once

#include <sstream>
#include <string>

namespace ldmo {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global minimum level that is emitted (thread-safe).
void set_log_level(LogLevel level);

/// Current global level. Defaults to Info, or to the LDMO_LOG_LEVEL
/// environment variable ("debug"/"info"/"warn"/"error"/"off", any case)
/// when it is set at process startup.
LogLevel log_level();

/// Parses a level name (case-insensitive); returns `fallback` when `name`
/// is not a known level.
LogLevel parse_log_level(const std::string& name, LogLevel fallback);

enum class LogFormat { Text = 0, Json = 1 };

/// Sets the global output format (thread-safe).
void set_log_format(LogFormat format);

/// Current format. Defaults to Text, or to the LDMO_LOG_FORMAT environment
/// variable ("text"/"json", any case) when set at process startup.
LogFormat log_format();

namespace detail {
/// Renders one log line in the active format, without the trailing
/// newline — text: "[ts] [LEVEL] message"; json: {"ts":...,"level":...,
/// "msg":...} with full JSON escaping. Split from log_emit so tests can
/// check the format without capturing stderr.
std::string format_log_line(LogLevel level, const std::string& message);
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

/// Formats with ostream semantics and emits if `level` passes the filter.
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  std::ostringstream oss;
  (oss << ... << args);
  detail::log_emit(level, oss.str());
}

template <typename... Args>
void log_debug(const Args&... args) { log(LogLevel::Debug, args...); }
template <typename... Args>
void log_info(const Args&... args) { log(LogLevel::Info, args...); }
template <typename... Args>
void log_warn(const Args&... args) { log(LogLevel::Warn, args...); }
template <typename... Args>
void log_error(const Args&... args) { log(LogLevel::Error, args...); }

}  // namespace ldmo
