#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ldmo {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

namespace {

/// Average ranks (1-based): tied values share the mean of the positions
/// they occupy, so e.g. {3, 1, 1} ranks to {3, 1.5, 1.5}.
std::vector<double> average_ranks(const std::vector<double>& values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double rank = 0.5 * (static_cast<double>(i) +
                               static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman_rank_correlation(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  require(a.size() == b.size(),
          "spearman_rank_correlation: size mismatch");
  if (a.size() < 2) return 0.0;
  const std::vector<double> ra = average_ranks(a);
  const std::vector<double> rb = average_ranks(b);
  const double ma = mean(ra);
  const double mb = mean(rb);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    const double da = ra[i] - ma;
    const double db = rb[i] - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

void ZScoreNormalizer::fit(const std::vector<double>& values) {
  require(!values.empty(), "ZScoreNormalizer::fit: empty input");
  mean_ = mean(values);
  stddev_ = stddev(values);
  fitted_ = true;
}

double ZScoreNormalizer::transform(double value) const {
  require(fitted_, "ZScoreNormalizer: transform before fit");
  if (stddev_ <= 0.0) return 0.0;
  return (value - mean_) / stddev_;
}

double ZScoreNormalizer::inverse(double z) const {
  require(fitted_, "ZScoreNormalizer: inverse before fit");
  return mean_ + z * stddev_;
}

std::vector<double> ZScoreNormalizer::transform(
    const std::vector<double>& values) const {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(transform(v));
  return out;
}

}  // namespace ldmo
