#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace ldmo {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - m) * (v - m);
  return std::sqrt(sq / static_cast<double>(values.size()));
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  if (n % 2 == 1) return values[n / 2];
  return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

void ZScoreNormalizer::fit(const std::vector<double>& values) {
  require(!values.empty(), "ZScoreNormalizer::fit: empty input");
  mean_ = mean(values);
  stddev_ = stddev(values);
  fitted_ = true;
}

double ZScoreNormalizer::transform(double value) const {
  require(fitted_, "ZScoreNormalizer: transform before fit");
  if (stddev_ <= 0.0) return 0.0;
  return (value - mean_) / stddev_;
}

double ZScoreNormalizer::inverse(double z) const {
  require(fitted_, "ZScoreNormalizer: inverse before fit");
  return mean_ + z * stddev_;
}

std::vector<double> ZScoreNormalizer::transform(
    const std::vector<double>& values) const {
  std::vector<double> out;
  out.reserve(values.size());
  for (double v : values) out.push_back(transform(v));
  return out;
}

}  // namespace ldmo
