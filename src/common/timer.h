// Wall-clock timing used by the benchmark harnesses (Table I "Time" column,
// Fig. 1(c) runtime breakdown). Phase timing is built on obs::Span so the
// span tracer and the PhaseTimer buckets share one measurement.
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>

#include "obs/span.h"

namespace ldmo {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named time buckets; used to split a flow's runtime into
/// phases (e.g. decomposition selection vs. mask optimization, Fig. 1(c)).
class PhaseTimer {
 public:
  /// Adds `seconds` to bucket `phase`.
  void add(const std::string& phase, double seconds);

  /// Total seconds recorded in `phase` (0 if never recorded).
  double get(const std::string& phase) const;

  /// Sum over all phases.
  double total() const;

  /// Fraction of the total spent in `phase` (0 when total is 0).
  double fraction(const std::string& phase) const;

 private:
  std::unordered_map<std::string, double> buckets_;
};

namespace detail {

/// Books a span's elapsed time into a PhaseTimer bucket on destruction,
/// so a throwing phase body still accounts its wall time.
class PhaseRecordGuard {
 public:
  PhaseRecordGuard(PhaseTimer& timer, std::string phase,
                   const obs::Span& span)
      : timer_(timer), phase_(std::move(phase)), span_(span) {}
  ~PhaseRecordGuard() { timer_.add(phase_, span_.seconds()); }
  PhaseRecordGuard(const PhaseRecordGuard&) = delete;
  PhaseRecordGuard& operator=(const PhaseRecordGuard&) = delete;

 private:
  PhaseTimer& timer_;
  std::string phase_;
  const obs::Span& span_;
};

}  // namespace detail

/// Runs `fn` inside an obs::Span named `phase`, adds the span's wall time
/// to `timer[phase]` (even when `fn` throws), and returns fn's result.
template <typename Fn>
auto timed_phase(PhaseTimer& timer, const std::string& phase, Fn&& fn) {
  obs::Span span(phase);
  const detail::PhaseRecordGuard guard(timer, phase, span);
  return fn();
}

}  // namespace ldmo
