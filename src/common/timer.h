// Wall-clock timing used by the benchmark harnesses (Table I "Time" column,
// Fig. 1(c) runtime breakdown).
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>

namespace ldmo {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named time buckets; used to split a flow's runtime into
/// phases (e.g. decomposition selection vs. mask optimization, Fig. 1(c)).
class PhaseTimer {
 public:
  /// Adds `seconds` to bucket `phase`.
  void add(const std::string& phase, double seconds);

  /// Total seconds recorded in `phase` (0 if never recorded).
  double get(const std::string& phase) const;

  /// Sum over all phases.
  double total() const;

  /// Fraction of the total spent in `phase` (0 when total is 0).
  double fraction(const std::string& phase) const;

 private:
  std::unordered_map<std::string, double> buckets_;
};

/// Runs `fn`, adds its wall time to `timer[phase]`, and returns fn's result.
template <typename Fn>
auto timed_phase(PhaseTimer& timer, const std::string& phase, Fn&& fn) {
  Timer t;
  if constexpr (std::is_void_v<decltype(fn())>) {
    fn();
    timer.add(phase, t.seconds());
  } else {
    auto result = fn();
    timer.add(phase, t.seconds());
    return result;
  }
}

}  // namespace ldmo
