// Wall-clock timing used by the benchmark harnesses (Table I "Time" column,
// Fig. 1(c) runtime breakdown). Phase timing is built on obs::Span so the
// span tracer and the PhaseTimer buckets share one measurement.
#pragma once

#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/span.h"

namespace ldmo {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// CPU seconds consumed by the whole process (all threads) so far.
  /// Paired with wall time this separates "parallel and busy" from
  /// "serial and waiting": at N threads a perfectly parallel phase shows
  /// cpu ~ N x wall, a serial one cpu ~ wall.
  static double process_cpu_seconds();

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named time buckets; used to split a flow's runtime into
/// phases (e.g. decomposition selection vs. mask optimization, Fig. 1(c)).
class PhaseTimer {
 public:
  /// Adds `seconds` of wall time (and optionally process CPU time) to
  /// bucket `phase`.
  void add(const std::string& phase, double seconds, double cpu_seconds = 0.0);

  /// Total wall seconds recorded in `phase` (0 if never recorded).
  double get(const std::string& phase) const;

  /// Total process-CPU seconds recorded in `phase` (0 if never recorded).
  double get_cpu(const std::string& phase) const;

  /// Sum of wall seconds over all phases.
  double total() const;

  /// Fraction of the total wall time spent in `phase` (0 when total is 0).
  double fraction(const std::string& phase) const;

  /// Phase names recorded so far (unordered).
  std::vector<std::string> phases() const;

 private:
  struct Bucket {
    double wall = 0.0;
    double cpu = 0.0;
  };
  std::unordered_map<std::string, Bucket> buckets_;
};

namespace detail {

/// Books a span's elapsed wall time plus the process-CPU delta into a
/// PhaseTimer bucket on destruction, so a throwing phase body still
/// accounts its time.
class PhaseRecordGuard {
 public:
  PhaseRecordGuard(PhaseTimer& timer, std::string phase,
                   const obs::Span& span)
      : timer_(timer),
        phase_(std::move(phase)),
        span_(span),
        cpu_start_(Timer::process_cpu_seconds()) {}
  ~PhaseRecordGuard() {
    timer_.add(phase_, span_.seconds(),
               Timer::process_cpu_seconds() - cpu_start_);
  }
  PhaseRecordGuard(const PhaseRecordGuard&) = delete;
  PhaseRecordGuard& operator=(const PhaseRecordGuard&) = delete;

 private:
  PhaseTimer& timer_;
  std::string phase_;
  const obs::Span& span_;
  double cpu_start_;
};

}  // namespace detail

/// Runs `fn` inside an obs::Span named `phase`, adds the span's wall time
/// to `timer[phase]` (even when `fn` throws), and returns fn's result.
template <typename Fn>
auto timed_phase(PhaseTimer& timer, const std::string& phase, Fn&& fn) {
  obs::Span span(phase);
  const detail::PhaseRecordGuard guard(timer, phase, span);
  return fn();
}

}  // namespace ldmo
