// Stable content hashing (64-bit FNV-1a).
//
// The serving layer's content-addressed caches key on these digests, so the
// contract is stronger than "a good hash function": the digest of a given
// byte sequence is identical across runs, platforms and build types. All
// multi-byte feeds serialize explicitly to little-endian bytes (never via
// memcpy of in-memory representations), and floating-point values hash
// their exact IEEE-754 bit pattern — two doubles hash equal iff they
// compare bit-identical, which matches the repo-wide bit-identity
// determinism contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ldmo::common {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

/// Incremental 64-bit FNV-1a hasher. Feeds return *this so key derivations
/// chain: Fnv1a().str("v1").u64(a).f64(b).digest().
class Fnv1a {
 public:
  /// Raw bytes, in order.
  Fnv1a& bytes(const void* data, std::size_t len);

  /// Fixed-width little-endian integer feeds (8 bytes each, so u64(1) and
  /// str("\1") hash differently and field boundaries cannot alias).
  Fnv1a& u64(std::uint64_t v);
  Fnv1a& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

  /// Exact IEEE-754 bit pattern of `v` (8 bytes).
  Fnv1a& f64(double v);

  /// Length-prefixed string feed: str("ab").str("c") differs from
  /// str("a").str("bc").
  Fnv1a& str(std::string_view s);

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kFnv1aOffsetBasis;
};

/// One-shot digest of a byte range.
std::uint64_t fnv1a(const void* data, std::size_t len);

/// One-shot digest of a string's bytes (no length prefix; matches the
/// classic FNV-1a reference vectors).
std::uint64_t fnv1a(std::string_view s);

}  // namespace ldmo::common
