#include "common/error.h"

#include <cstdio>
#include <cstdlib>

namespace ldmo {

void raise(const std::string& message) { throw Error(message); }

void require(bool condition, const char* message) {
  if (!condition) throw Error(message);
}

void require(bool condition, const std::string& message) {
  if (!condition) throw Error(message);
}

namespace detail {

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "LDMO_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace detail
}  // namespace ldmo
