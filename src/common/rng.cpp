#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace ldmo {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  require(lo <= hi, "Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi) - lo + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  double u2 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t n) {
  require(n > 0, "Rng::index: empty range");
  return static_cast<std::size_t>(next_u64() % n);
}

Rng Rng::split(std::uint64_t stream) const {
  // Fold the whole parent state and the stream id into one splitmix64
  // chain; (stream + 1) keeps stream 0 from degenerating into a plain
  // state copy.
  std::uint64_t x = 0x9E3779B97F4A7C15ULL * (stream + 1);
  Rng child(0);
  for (int w = 0; w < 4; ++w) {
    x ^= state_[w];
    child.state_[w] = splitmix64(x);
  }
  return child;
}

}  // namespace ldmo
