// Dense row-major 2-D array, the workhorse container for raster images,
// aerial intensities, mask parameter fields and frequency-domain data.
#pragma once

#include <vector>

#include "common/error.h"

namespace ldmo {

/// Row-major H x W grid of T with bounds-checked accessors.
template <typename T>
class Grid {
 public:
  Grid() = default;

  Grid(int height, int width, T fill = T{})
      : height_(height),
        width_(width),
        data_(static_cast<std::size_t>(height) * static_cast<std::size_t>(width),
              fill) {
    require(height >= 0 && width >= 0, "Grid: negative dimensions");
  }

  int height() const { return height_; }
  int width() const { return width_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(int y, int x) {
    LDMO_ASSERT(y >= 0 && y < height_ && x >= 0 && x < width_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }
  const T& at(int y, int x) const {
    LDMO_ASSERT(y >= 0 && y < height_ && x >= 0 && x < width_);
    return data_[static_cast<std::size_t>(y) * width_ + x];
  }

  /// Unchecked linear access for hot loops.
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  /// True if (y, x) is a valid coordinate.
  bool in_bounds(int y, int x) const {
    return y >= 0 && y < height_ && x >= 0 && x < width_;
  }

  void fill(T value) { std::fill(data_.begin(), data_.end(), value); }

  /// Reshapes in place, reusing the existing storage when it suffices.
  /// Same-shape calls keep the contents untouched; shape changes leave the
  /// contents value-initialized (like a fresh Grid). The out-param "_into"
  /// APIs rely on this to stay allocation-free at steady state.
  void resize(int height, int width) {
    require(height >= 0 && width >= 0, "Grid::resize: negative dimensions");
    if (height == height_ && width == width_) return;
    height_ = height;
    width_ = width;
    data_.assign(
        static_cast<std::size_t>(height) * static_cast<std::size_t>(width),
        T{});
  }

  bool same_shape(const Grid& other) const {
    return height_ == other.height_ && width_ == other.width_;
  }

  friend bool operator==(const Grid&, const Grid&) = default;

 private:
  int height_ = 0;
  int width_ = 0;
  std::vector<T> data_;
};

using GridF = Grid<double>;
using GridU8 = Grid<unsigned char>;

}  // namespace ldmo
