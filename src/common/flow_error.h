// Structured flow errors: which stage of the LDMO pipeline failed, and why.
//
// The paper's flow is a fallback chain (abandon a violating candidate, try
// the next best); the serving layer generalizes that stance to every kind
// of failure — a stage that throws must become a per-request outcome, never
// a process outcome. FlowError is the record of such an outcome: a stage
// tag plus a human-readable message. It travels inside LdmoResult (flow
// level), FlowEngine session stats (session level) and ServeResponse
// (request level), and drives the flow.errors.* / serve.errors.* counters.
//
// Lives in common (not core) so low layers — litho, opc, nn, io — can
// throw a stage-tagged FlowException without depending on the flow.
#pragma once

#include <string>

#include "common/error.h"

namespace ldmo {

/// Pipeline stage a failure is attributed to. kUnknown covers exceptions
/// that escaped without a stage tag from a site the flow cannot classify.
enum class FlowStage {
  kLayout,     ///< layout construction / (de)serialization / rasterization
  kDecompose,  ///< decomposition candidate generation (Algorithm 1)
  kPredict,    ///< printability prediction (CNN / oracle / raw-print)
  kIlt,        ///< ILT mask optimization
  kLitho,      ///< lithography simulation (optics / resist)
  kCache,      ///< serve-layer result/score cache access
  kNet,        ///< wire-protocol framing / connection faults (src/net)
  kUnknown,    ///< escaped exception with no stage attribution
};

/// Number of FlowStage values (for per-stage counter arrays).
inline constexpr int kFlowStageCount = 8;

const char* stage_name(FlowStage stage);

/// The structured failure record threaded through results and responses.
struct FlowError {
  FlowStage stage = FlowStage::kUnknown;
  std::string message;
};

/// Exception carrying a stage attribution. Deep components (litho, nn, io)
/// throw this so the flow's catch sites can attribute the failure to the
/// component that actually broke instead of the phase that observed it.
class FlowException : public Error {
 public:
  FlowException(FlowStage stage, const std::string& message)
      : Error(message), stage_(stage) {}

  FlowStage stage() const { return stage_; }
  FlowError error() const { return {stage_, what()}; }

 private:
  FlowStage stage_;
};

}  // namespace ldmo
