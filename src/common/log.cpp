#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"
#include "obs/report.h"

namespace ldmo {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("LDMO_LOG_LEVEL");
  if (!env) return LogLevel::Info;
  return parse_log_level(env, LogLevel::Info);
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

std::string lowercase(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return lower;
}

LogFormat initial_format() {
  const char* env = std::getenv("LDMO_LOG_FORMAT");
  if (!env) return LogFormat::Text;
  return lowercase(env) == "json" ? LogFormat::Json : LogFormat::Text;
}

std::atomic<LogFormat>& format_storage() {
  static std::atomic<LogFormat> format{initial_format()};
  return format;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  return level_storage().load(std::memory_order_relaxed);
}

void set_log_format(LogFormat format) {
  format_storage().store(format, std::memory_order_relaxed);
}

LogFormat log_format() {
  return format_storage().load(std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name, LogLevel fallback) {
  const std::string lower = lowercase(name);
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return fallback;
}

namespace detail {

std::string format_log_line(LogLevel level, const std::string& message) {
  if (log_format() == LogFormat::Json) {
    obs::JsonWriter w;
    w.begin_object();
    w.kv("ts", obs::iso8601_utc_now());
    w.kv("level", lowercase(level_name(level)));
    w.kv("msg", message);
    w.end_object();
    return w.str();
  }
  return "[" + obs::iso8601_utc_now() + "] [" + level_name(level) + "] " +
         message;
}

void log_emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "%s\n", format_log_line(level, message).c_str());
}

}  // namespace detail

}  // namespace ldmo
