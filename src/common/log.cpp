#include "common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "obs/report.h"

namespace ldmo {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("LDMO_LOG_LEVEL");
  if (!env) return LogLevel::Info;
  return parse_log_level(env, LogLevel::Info);
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{initial_level()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) {
  level_storage().store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  return level_storage().load(std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name)
    lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return fallback;
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  std::fprintf(stderr, "[%s] [%s] %s\n", obs::iso8601_utc_now().c_str(),
               level_name(level), message.c_str());
}
}  // namespace detail

}  // namespace ldmo
