#include "common/flow_error.h"

namespace ldmo {

const char* stage_name(FlowStage stage) {
  switch (stage) {
    case FlowStage::kLayout:
      return "layout";
    case FlowStage::kDecompose:
      return "decompose";
    case FlowStage::kPredict:
      return "predict";
    case FlowStage::kIlt:
      return "ilt";
    case FlowStage::kLitho:
      return "litho";
    case FlowStage::kCache:
      return "cache";
    case FlowStage::kNet:
      return "net";
    case FlowStage::kUnknown:
      return "unknown";
  }
  return "unknown";
}

}  // namespace ldmo
