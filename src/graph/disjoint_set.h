// Union-find with path compression and union by rank.
#pragma once

#include <vector>

namespace ldmo::graph {

/// Disjoint-set forest over elements 0..n-1.
class DisjointSet {
 public:
  explicit DisjointSet(int n);

  /// Representative of the set containing `x` (with path compression).
  int find(int x);

  /// Merges the sets of `a` and `b`; returns true if they were distinct.
  bool unite(int a, int b);

  /// True if `a` and `b` are in the same set.
  bool connected(int a, int b);

  /// Number of disjoint sets remaining.
  int set_count() const { return set_count_; }

  int size() const { return static_cast<int>(parent_.size()); }

 private:
  std::vector<int> parent_;
  std::vector<int> rank_;
  int set_count_;
};

}  // namespace ldmo::graph
