#include "graph/graph.h"

#include <queue>

#include "common/error.h"

namespace ldmo::graph {

Graph::Graph(int vertex_count)
    : vertex_count_(vertex_count),
      adjacency_(static_cast<std::size_t>(vertex_count)) {
  require(vertex_count >= 0, "Graph: negative vertex count");
}

void Graph::add_edge(int u, int v, double weight) {
  require(u >= 0 && u < vertex_count_ && v >= 0 && v < vertex_count_,
          "Graph::add_edge: vertex out of range");
  require(u != v, "Graph::add_edge: self-loop");
  edges_.push_back({u, v, weight});
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
}

const std::vector<int>& Graph::neighbors(int v) const {
  require(v >= 0 && v < vertex_count_, "Graph::neighbors: out of range");
  return adjacency_[static_cast<std::size_t>(v)];
}

int Graph::degree(int v) const {
  return static_cast<int>(neighbors(v).size());
}

std::pair<std::vector<int>, int> Graph::connected_components() const {
  std::vector<int> label(static_cast<std::size_t>(vertex_count_), -1);
  int count = 0;
  for (int start = 0; start < vertex_count_; ++start) {
    if (label[static_cast<std::size_t>(start)] != -1) continue;
    std::queue<int> frontier;
    frontier.push(start);
    label[static_cast<std::size_t>(start)] = count;
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop();
      for (int n : adjacency_[static_cast<std::size_t>(v)]) {
        if (label[static_cast<std::size_t>(n)] == -1) {
          label[static_cast<std::size_t>(n)] = count;
          frontier.push(n);
        }
      }
    }
    ++count;
  }
  return {label, count};
}

}  // namespace ldmo::graph
