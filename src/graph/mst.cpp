#include "graph/mst.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <tuple>

#include "common/error.h"
#include "graph/disjoint_set.h"

namespace ldmo::graph {

MstResult minimum_spanning_forest(const Graph& g) {
  MstResult result;
  std::tie(result.component, result.component_count) =
      g.connected_components();

  // Sort edge *indices* by weight so equal weights keep input order.
  std::vector<std::size_t> order(g.edges().size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return g.edges()[a].weight < g.edges()[b].weight;
                   });

  DisjointSet dsu(g.vertex_count());
  for (std::size_t idx : order) {
    const Edge& e = g.edges()[idx];
    if (dsu.unite(e.u, e.v)) {
      result.edges.push_back(e);
      result.total_weight += e.weight;
    }
  }
  return result;
}

std::vector<int> two_color_forest(int vertex_count,
                                  const std::vector<Edge>& edges) {
  std::vector<std::vector<int>> adjacency(
      static_cast<std::size_t>(vertex_count));
  for (const Edge& e : edges) {
    require(e.u >= 0 && e.u < vertex_count && e.v >= 0 && e.v < vertex_count,
            "two_color_forest: vertex out of range");
    adjacency[static_cast<std::size_t>(e.u)].push_back(e.v);
    adjacency[static_cast<std::size_t>(e.v)].push_back(e.u);
  }

  std::vector<int> color(static_cast<std::size_t>(vertex_count), -1);
  int visited_edges = 0;
  for (int start = 0; start < vertex_count; ++start) {
    if (color[static_cast<std::size_t>(start)] != -1) continue;
    color[static_cast<std::size_t>(start)] = 0;
    std::queue<int> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const int v = frontier.front();
      frontier.pop();
      for (int n : adjacency[static_cast<std::size_t>(v)]) {
        if (color[static_cast<std::size_t>(n)] == -1) {
          color[static_cast<std::size_t>(n)] =
              1 - color[static_cast<std::size_t>(v)];
          frontier.push(n);
          ++visited_edges;
        }
      }
    }
  }
  // A forest has exactly one tree edge per non-root vertex; any extra edge
  // means the input had a cycle.
  require(visited_edges == static_cast<int>(edges.size()),
          "two_color_forest: input edges contain a cycle");
  return color;
}

}  // namespace ldmo::graph
